package cdfpoison

import (
	"context"
	"io"

	"cdfpoison/internal/alex"
	"cdfpoison/internal/blackbox"
	"cdfpoison/internal/btree"
	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/nn"
	"cdfpoison/internal/pla"
	"cdfpoison/internal/regression"
	"cdfpoison/internal/rmi"
	"cdfpoison/internal/robust"
	"cdfpoison/internal/serve"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/workload"
	"cdfpoison/internal/xrand"
)

// ---------------------------------------------------------------------------
// Key sets
// ---------------------------------------------------------------------------

// KeySet is an immutable, sorted, duplicate-free set of non-negative integer
// keys — the index's training data.
type KeySet = keys.Set

// Gap is a maximal run of unoccupied interior keys, the feasible region for
// poisoning insertions.
type Gap = keys.Gap

// NewKeySet builds a KeySet from arbitrary input, sorting and deduplicating.
func NewKeySet(input []int64) (KeySet, error) { return keys.New(input) }

// NewKeySetStrict is NewKeySet but rejects duplicate keys.
func NewKeySetStrict(input []int64) (KeySet, error) { return keys.NewStrict(input) }

// ReadKeysText parses one decimal key per line ('#' comments allowed).
func ReadKeysText(r io.Reader) (KeySet, error) { return keys.ReadText(r) }

// ReadKeysBinary reads the compact binary key format.
func ReadKeysBinary(r io.Reader) (KeySet, error) { return keys.ReadBinary(r) }

// ---------------------------------------------------------------------------
// Randomness and datasets
// ---------------------------------------------------------------------------

// RNG is the deterministic random generator used across the library.
type RNG = xrand.RNG

// NewRNG returns a deterministic generator for the seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// UniformKeys draws n unique keys uniformly from [0, m).
func UniformKeys(rng *RNG, n int, m int64) (KeySet, error) { return dataset.Uniform(rng, n, m) }

// NormalKeys draws n unique keys from the paper's truncated normal over
// [0, m) (mean m/2, stddev m/3 — the Figure 8 workload).
func NormalKeys(rng *RNG, n int, m int64) (KeySet, error) { return dataset.Normal(rng, n, m) }

// LogNormalKeys draws n unique keys whose continuous law is log-normal with
// log-space parameters (mu, sigma) scaled into [0, m) — the paper's skewed
// synthetic workload uses mu=0, sigma=2.
func LogNormalKeys(rng *RNG, n int, m int64, mu, sigma float64) (KeySet, error) {
	return dataset.LogNormal(rng, n, m, mu, sigma)
}

// MiamiSalaries simulates the paper's Miami-Dade salary dataset (n=5,300
// unique salaries in [22,733, 190,034]).
func MiamiSalaries(rng *RNG) (KeySet, error) { return dataset.MiamiSalaries(rng) }

// OSMLatitudes simulates the paper's OpenStreetMap school-latitude dataset
// (n=302,973 keys in [0, 1,200,000)).
func OSMLatitudes(rng *RNG) (KeySet, error) { return dataset.OSMLatitudes(rng) }

// ---------------------------------------------------------------------------
// Linear regression on CDFs (the model under attack)
// ---------------------------------------------------------------------------

// Line is a fitted line rank ≈ W·key + B.
type Line = regression.Line

// Model is a fitted CDF regression with its in-sample MSE.
type Model = regression.Model

// FitCDF fits the least-squares line through (key, rank) — Theorem 1's
// closed form, computed with translation-stable centered moments.
func FitCDF(ks KeySet) (Model, error) { return regression.FitCDF(ks) }

// EvaluateCDF scores an arbitrary line against a key set's CDF (mean squared
// error over ranks 1..n).
func EvaluateCDF(l Line, ks KeySet) (float64, error) { return regression.EvaluateCDF(l, ks) }

// ---------------------------------------------------------------------------
// Parallel execution
// ---------------------------------------------------------------------------

// AttackOption tunes how an attack entry point executes (worker count,
// cancellation) without changing what it computes: for any parallelism the
// result is byte-identical to the sequential run. See internal/engine for
// the determinism contract.
type AttackOption = core.Option

// WithParallelism bounds the attack's worker pool: n == 1 runs
// sequentially on the calling goroutine (the default), n > 1 uses exactly
// n workers, and n <= 0 uses one worker per core.
func WithParallelism(n int) AttackOption { return core.WithWorkers(n) }

// WithCancellation makes the attack abort with ctx.Err() once ctx is
// cancelled, checking between candidate evaluations.
func WithCancellation(ctx context.Context) AttackOption { return core.WithContext(ctx) }

// WithExhaustiveScan disables the closed-form pruned scan (DESIGN.md §11)
// and forces the classic exhaustive gap-endpoint sweep. Results are
// bit-identical either way; use it for ablations or when the classic
// 2(n−1)-candidate accounting is wanted.
func WithExhaustiveScan() AttackOption { return core.WithFullScan() }

// WithPerKeyEval disables the sorted-batch probe kernel (DESIGN.md §12) on
// the scenario evaluation paths and forces the classic per-key lookup
// loop. Every measured column is bit-identical either way; the switch
// exists for ablations and the CLI's -no-batch-eval flag, and the
// EvalStats on each scenario result records which path ran.
func WithPerKeyEval() AttackOption { return core.WithPerKeyEval() }

// EvalStats reports how many probe evaluations a scenario ran through the
// sorted-batch kernel versus the per-key reference loop.
type EvalStats = core.EvalStats

// ---------------------------------------------------------------------------
// Poisoning attacks (the paper's contribution)
// ---------------------------------------------------------------------------

// SinglePointResult reports an optimal single-key poisoning.
type SinglePointResult = core.SinglePointResult

// GreedyResult reports a greedy multi-point poisoning (Algorithm 1).
type GreedyResult = core.GreedyResult

// LossPoint is one entry of the loss sequence L(kp).
type LossPoint = core.LossPoint

// RMIAttackOptions parameterizes the two-stage RMI attack (Algorithm 2).
type RMIAttackOptions = core.RMIAttackOptions

// RMIAttackResult reports the RMI attack outcome.
type RMIAttackResult = core.RMIAttackResult

// ModelReport describes one second-stage model after the RMI attack.
type ModelReport = core.ModelReport

// ErrNoGap and ErrTooFew are the attack feasibility errors.
var (
	ErrNoGap  = core.ErrNoGap
	ErrTooFew = core.ErrTooFew
)

// OptimalSinglePoint finds the poisoning key maximizing the retrained MSE.
// Only gap endpoints are candidates (Theorem 2), and a closed-form bound
// prunes whole blocks of gaps before evaluation (DESIGN.md §11), so the
// scan is sublinear in practice with an O(n) worst case — bit-identical to
// the exhaustive sweep either way (see WithExhaustiveScan). The result's
// BlocksVisited/BlocksTotal fields report how much the pruning saved.
func OptimalSinglePoint(ks KeySet, opts ...AttackOption) (SinglePointResult, error) {
	return core.OptimalSinglePoint(ks, opts...)
}

// BruteForceSinglePoint evaluates every unoccupied interior key — the
// correctness oracle and ablation baseline for OptimalSinglePoint.
func BruteForceSinglePoint(ks KeySet, opts ...AttackOption) (SinglePointResult, error) {
	return core.BruteForceSinglePoint(ks, opts...)
}

// GreedyMultiPoint inserts up to p poisoning keys, each locally optimal
// (Algorithm 1); it stops early if the domain saturates or no insertion can
// increase the loss. Each step runs the pruned endpoint scan (DESIGN.md
// §11), and WithParallelism spreads the surviving candidate blocks across
// workers — neither changes any result byte.
func GreedyMultiPoint(ks KeySet, p int, opts ...AttackOption) (GreedyResult, error) {
	return core.GreedyMultiPoint(ks, p, opts...)
}

// LossSequence evaluates the poisoned loss for every feasible poisoning key
// (the Figure 3 curve); the second result is the clean loss.
func LossSequence(ks KeySet, opts ...AttackOption) ([]LossPoint, float64, error) {
	return core.LossSequence(ks, opts...)
}

// RMIAttack poisons the second stage of a two-stage RMI (Algorithm 2):
// greedy volume allocation across models under a per-model threshold.
// WithParallelism fans the per-model attacks out across workers; the
// result is identical for every worker count.
func RMIAttack(ks KeySet, opts RMIAttackOptions, execOpts ...AttackOption) (RMIAttackResult, error) {
	return core.RMIAttack(ks, opts, execOpts...)
}

// RemovalResult reports an optimal single-key removal attack.
type RemovalResult = core.RemovalResult

// GreedyRemovalResult reports a greedy multi-key removal attack.
type GreedyRemovalResult = core.GreedyRemovalResult

// OptimalSingleRemoval finds the stored key whose deletion maximizes the
// retrained MSE in O(n) — the deletion adversary the paper lists as future
// work (Section VI).
func OptimalSingleRemoval(ks KeySet) (RemovalResult, error) {
	return core.OptimalSingleRemoval(ks)
}

// GreedyRemoval deletes up to p keys, each locally optimal, stopping early
// when no deletion can increase the loss.
func GreedyRemoval(ks KeySet, p int) (GreedyRemovalResult, error) {
	return core.GreedyRemoval(ks, p)
}

// ModificationResult reports a greedy multi-modification attack.
type ModificationResult = core.ModificationResult

// GreedyModification applies up to p key modifications (one deletion plus
// one insertion each, keeping the key count constant) — the third adversary
// capability the paper's Section VI anticipates.
func GreedyModification(ks KeySet, p int) (ModificationResult, error) {
	return core.GreedyModification(ks, p)
}

// ---------------------------------------------------------------------------
// Dynamic indexes and online poisoning
// ---------------------------------------------------------------------------

// DynamicIndex is an updatable learned index: a CDF model over a base key
// set plus a sorted delta buffer, merged and retrained per its policy. It
// is the victim of the online poisoning scenario.
type DynamicIndex = dynamic.Index

// RetrainPolicy selects when a DynamicIndex merges its delta buffer and
// refits its model.
type RetrainPolicy = dynamic.RetrainPolicy

// DynamicLookupResult reports a point query against a DynamicIndex.
type DynamicLookupResult = dynamic.LookupResult

// DynamicStats summarizes a DynamicIndex's state.
type DynamicStats = dynamic.Stats

// RetrainManually retrains only on explicit Retrain() calls (in the online
// scenario: one forced retrain at the end of every epoch).
func RetrainManually() RetrainPolicy { return dynamic.ManualPolicy() }

// RetrainEvery retrains after every k-th insert call — a write-count
// maintenance schedule the adversary's own writes tick forward.
func RetrainEvery(k int) RetrainPolicy { return dynamic.EveryKInserts(k) }

// RetrainAtBufferSize retrains once the delta buffer holds k accepted keys
// — the bounded-buffer merge policy of dynamic learned indexes.
func RetrainAtBufferSize(k int) RetrainPolicy { return dynamic.BufferLimit(k) }

// NewDynamicIndex builds an updatable learned index over the initial keys
// (>= 2) and trains the first model.
func NewDynamicIndex(ks KeySet, policy RetrainPolicy) (*DynamicIndex, error) {
	return dynamic.New(ks, policy)
}

// OnlineOptions parameterizes OnlinePoisonAttack.
type OnlineOptions = core.OnlineOptions

// OnlineResult reports the online poisoning scenario, one EpochReport per
// retrain cycle.
type OnlineResult = core.OnlineResult

// EpochReport is one epoch's end-state: injected keys, retrains, loss ratio
// against the clean counterfactual, and lookup probe costs.
type EpochReport = core.EpochReport

// OnlineOracle selects the attacker's per-epoch poisoning oracle.
type OnlineOracle = core.OnlineOracle

// Per-epoch oracles: Algorithm 1 against the full visible content, or
// Algorithm 2 against the partitioning a future RMI rebuild would use.
const (
	OracleRegression = core.OracleRegression
	OracleRMI        = core.OracleRMI
)

// OnlinePoisonAttack mounts the dynamic-index poisoning scenario: an
// adversary with a per-epoch key budget injects poison into an updatable
// learned index between retrains, interleaved with an honest insert stream,
// and the damage is tracked per epoch against a clean counterfactual index
// running the same retrain policy. WithParallelism fans out the per-epoch
// oracle scans and probe evaluation without changing any result byte.
func OnlinePoisonAttack(initial KeySet, opts OnlineOptions, execOpts ...AttackOption) (OnlineResult, error) {
	return core.OnlinePoisonAttack(initial, opts, execOpts...)
}

// ---------------------------------------------------------------------------
// Index backends, sharding, workloads, and the serving scenario
// ---------------------------------------------------------------------------

// IndexBackend is the contract every index substrate serves through,
// composed of three planes: IndexReader (immutable snapshots), IndexWriter
// (delta-plane inserts), and IndexAdmin (explicit retrains + stats), plus
// direct probe-counted reads against the current state. DynamicIndex,
// BTree, SingleModelIndex, ShardedIndex, GuardedBackend, and
// RetrainPipeline all satisfy it, and the scenarios (OnlinePoisonAttack,
// ServeAttack, ChurnAttack) drive victims only through it.
type IndexBackend = index.Backend

// IndexReader is the read plane: it publishes the immutable Snapshot
// lookups should be served from.
type IndexReader = index.Reader

// IndexWriter is the write plane: inserts into the backend's delta area.
type IndexWriter = index.Writer

// IndexAdmin is the maintenance plane: explicit Retrain plus Stats.
type IndexAdmin = index.Admin

// IndexSnapshot is an immutable point-in-time view of a backend's content:
// its answers are frozen at capture, surviving any later mutation or
// retrain of the backend it came from.
type IndexSnapshot = index.Snapshot

// BackendLookupResult reports a probe-counted backend point query.
type BackendLookupResult = index.LookupResult

// BackendStats is the uniform backend summary.
type BackendStats = index.Stats

// BackendFactory builds a fresh backend over an initial key set; scenarios
// call it once per index they need (victim + clean counterfactual).
type BackendFactory = core.BackendFactory

// ParseRetrainPolicy parses the policy spec syntax shared by the lispoison
// online and serve subcommands: "manual", "every:K", or "buffer:K".
func ParseRetrainPolicy(s string) (RetrainPolicy, error) { return dynamic.ParsePolicy(s) }

// SingleModelIndex is the single-model (fanout-1) RMI path behind the
// backend contract: a static learned index whose inserts are staged until
// an explicit Retrain rebuilds the model — the paper's own victim shape.
type SingleModelIndex = rmi.Single

// NewSingleModelIndex builds the fanout-1 learned index over the keys.
func NewSingleModelIndex(ks KeySet) (*SingleModelIndex, error) { return rmi.NewSingle(ks) }

// ShardedIndex is a range-partitioned serving index: a router fitted over
// the initial key CDF in front of independent dynamic shards. See
// DESIGN.md §6 for the router invariants.
type ShardedIndex = shard.Index

// NewShardedIndex builds a sharded index over the initial keys: the router
// is frozen at construction and each shard runs its own copy of the
// retrain policy. Requires at least two initial keys per shard.
func NewShardedIndex(ks KeySet, shards int, policy RetrainPolicy) (*ShardedIndex, error) {
	return shard.New(ks, shards, policy)
}

// Workload parameterizes a deterministic read/write operation stream for
// the serving scenario (reads by rank over the stored keys, uniform writes
// over the key universe).
type Workload = workload.Spec

// WorkloadOp is one operation of a workload stream.
type WorkloadOp = workload.Op

// WorkloadGenerator produces a workload's deterministic operation stream.
type WorkloadGenerator = workload.Generator

// UniformWorkload reads every stored rank equally often; readPct is the
// percentage of operations that are reads.
func UniformWorkload(readPct float64) Workload { return workload.NewUniform(readPct) }

// ZipfWorkload reads rank r with probability ∝ 1/r^theta — the classic
// skewed-popularity serving mix.
func ZipfWorkload(theta, readPct float64) Workload { return workload.NewZipf(theta, readPct) }

// HotspotWorkload concentrates reads on a hot window covering hotPct
// percent of the rank space — the adversarial mix.
func HotspotWorkload(hotPct, readPct float64) Workload {
	return workload.NewHotspot(hotPct, readPct)
}

// ParseWorkload parses the workload spec syntax of `lispoison serve`:
// "uniform[:R]", "zipf[:T[:R]]", or "hotspot[:H[:R]]".
func ParseWorkload(s string) (Workload, error) { return workload.ParseSpec(s) }

// NewWorkloadGenerator builds the deterministic stream generator: reads
// target initial by rank, writes are uniform over [0, domain).
func NewWorkloadGenerator(w Workload, initial KeySet, domain int64, seed uint64) (*WorkloadGenerator, error) {
	return workload.NewGenerator(w, initial, domain, seed)
}

// RebuildCostModel prices one index rebuild in logical ticks (fixed plus
// per-key components); the zero value makes every rebuild publish
// instantly — the synchronous golden path.
type RebuildCostModel = index.CostModel

// ParseRebuildCost parses the rebuild-cost spec syntax of the churn and
// serve subcommands: "zero", "fixed:F", or "linear:F:P[:U]".
func ParseRebuildCost(s string) (RebuildCostModel, error) { return index.ParseCostModel(s) }

// RetrainPipeline wraps any IndexBackend with the deterministic
// background-retrain schedule: a retrain triggered at logical tick T keeps
// the read plane on the pre-rebuild snapshot until tick T+cost, with
// coalescing, staleness, and publish-latency accounting. It is itself an
// IndexBackend. See DESIGN.md §7.
type RetrainPipeline = index.Pipeline

// PipelineChurnStats is a RetrainPipeline's cumulative accounting:
// triggers, coalesces, publishes, stale ticks, and publish latency.
type PipelineChurnStats = index.ChurnStats

// NewRetrainPipeline wraps a backend with the given rebuild cost model.
func NewRetrainPipeline(b IndexBackend, cost RebuildCostModel) *RetrainPipeline {
	return index.NewPipeline(b, cost)
}

// ServeOptions parameterizes ServeAttack.
type ServeOptions = core.ServeOptions

// ServeResult reports the serving scenario, one ServeEpochReport per epoch.
type ServeResult = core.ServeResult

// ServeEpochReport is one serving epoch's end state: loss ratios
// (aggregate and per shard), probe totals over the epoch's reads, shard
// imbalance, buffer depth, and retrain counts.
type ServeEpochReport = core.ServeEpochReport

// ServeShardReport is one shard's end-of-epoch state within an epoch
// report.
type ServeShardReport = core.ServeShardReport

// ServeAttack mounts the attack-under-load scenario: an adversary with a
// per-epoch key budget poisons a sharded serving index (NewShardedIndex)
// while an honest population reads and writes it, tracked against a clean
// counterfactual running the identical operation stream. WithParallelism
// fans out the oracle scans and the read-probe evaluation without changing
// any result byte.
func ServeAttack(initial KeySet, opts ServeOptions, execOpts ...AttackOption) (ServeResult, error) {
	return core.ServeAttack(initial, opts, execOpts...)
}

// ChurnOptions parameterizes ChurnAttack.
type ChurnOptions = core.ChurnOptions

// ChurnResult reports the retrain-churn scenario, one ChurnEpochReport per
// epoch plus both pipelines' final accounting.
type ChurnResult = core.ChurnResult

// ChurnEpochReport is one churn epoch's end state: stale-read fractions,
// publish latency in ticks, rebuild cost, coalescing, loss ratio against
// the clean counterfactual, and inline probe costs.
type ChurnEpochReport = core.ChurnEpochReport

// ChurnAttack mounts the retrain-churn scenario: an adversary drip-feeds
// its per-epoch budget into the ONE shard where each key buys the most
// rebuild work, maximizing retrain frequency × rebuild cost × stale-window
// exposure on a sharded index behind a RetrainPipeline, against a clean
// counterfactual running the identical pipeline and operation stream.
// WithParallelism fans out the oracle scans and rebuild fan-out without
// changing any result byte.
func ChurnAttack(initial KeySet, opts ChurnOptions, execOpts ...AttackOption) (ChurnResult, error) {
	return core.ChurnAttack(initial, opts, execOpts...)
}

// AlexIndex is the ALEX-style two-level gapped-array learned index
// (DESIGN.md §9): model-based inserts into slot gaps, exponential-search
// fallback, leaf splits at the density threshold, and a full rebuild
// cascade when splitting overflows the root's fanout limit. It implements
// IndexBackend, COW snapshots, and parallel retraining.
type AlexIndex = alex.Index

// AlexStructStats is an AlexIndex's cumulative structural-maintenance
// accounting: slot writes from insert shifts, leaf splits, and fanout
// cascades. Cost() folds them into total slot writes — the currency the
// cascade attacker maximizes.
type AlexStructStats = alex.StructStats

// NewAlexIndex builds a gapped-array index over the initial keys at ~50%
// leaf occupancy. leafTarget is the bulk-load keys-per-leaf (0 selects the
// default); smaller leaves mean a tighter fanout limit.
func NewAlexIndex(ks KeySet, leafTarget int) (*AlexIndex, error) {
	return alex.New(ks, leafTarget)
}

// CascadeOptions parameterizes CascadeAttack.
type CascadeOptions = core.CascadeOptions

// CascadeResult reports the split-cascade scenario, one CascadeEpochReport
// per epoch plus both indexes' final structural accounting.
type CascadeResult = core.CascadeResult

// CascadeEpochReport is one cascade epoch's end state: cumulative shift
// writes, splits, and cascades for victim and clean counterfactual, the
// structural-cost and probe ratios, and the epoch's damage score.
type CascadeEpochReport = core.CascadeEpochReport

// CascadeAttack mounts the split-cascade scenario: an adversary drip-feeds
// its per-epoch budget into the DENSEST leaf of a gapped-array index —
// where every insert shifts the longest occupied runs and the split
// threshold is nearest — forcing cascading splits and fanout-overflow
// rebuilds, against a clean counterfactual running the identical operation
// stream. WithParallelism fans out the insert-cost oracle without changing
// any result byte.
func CascadeAttack(initial KeySet, opts CascadeOptions, execOpts ...AttackOption) (CascadeResult, error) {
	return core.CascadeAttack(initial, opts, execOpts...)
}

// ServingPlaneOptions are the concurrent serving plane's knobs: reader
// goroutine count and read-batch size. The zero value is valid; neither
// knob affects any metric — only wall-clock throughput (the scheduler-
// equivalence contract, DESIGN.md §8).
type ServingPlaneOptions = serve.Options

// ServingScenarioOptions parameterizes one serving scenario: a workload
// stream served for Epochs epochs of OpsPerEpoch operations, with
// EpochBudget poison keys per epoch drip-fed into the write plane by the
// PoisonOracle.
type ServingScenarioOptions = serve.ScenarioOptions

// ServingEpochMetrics is one epoch's deterministic result: tail-latency
// percentiles in probes (p50/p99/p999), stale-read fraction, content loss,
// and pipeline churn counters — byte-identical under the tick oracle and
// the concurrent plane, for any reader count.
type ServingEpochMetrics = serve.EpochMetrics

// ProbeHistogram is the deterministic HDR-style histogram behind the
// percentiles: fixed log-bucket layout, exact below 64, relative error
// ≤ 1/32 above, with a merge that is commutative and associative.
type ProbeHistogram = serve.Histogram

// PoisonOracle computes a poison key sequence against the currently
// visible content; the scenario calls it once per epoch.
type PoisonOracle = serve.Oracle

// GreedyPoisonOracle adapts GreedyMultiPoint (Algorithm 1) to the serving
// scenario's per-epoch oracle shape.
func GreedyPoisonOracle(opts ...AttackOption) PoisonOracle {
	return func(visible KeySet, budget int) ([]int64, error) {
		g, err := core.GreedyMultiPoint(visible, budget, opts...)
		if err != nil {
			return nil, err
		}
		return g.Poison, nil
	}
}

// ServeScenarioTick runs the serving scenario on the single-threaded tick
// scheduler — the golden oracle the concurrent plane is tested against.
func ServeScenarioTick(b IndexBackend, o ServingScenarioOptions) ([]ServingEpochMetrics, error) {
	return serve.RunTick(b, o)
}

// ServeScenarioConcurrent runs the serving scenario on the goroutine-
// concurrent plane: lock-free lookups off immutable snapshots published
// through an atomic version chain, a single writer, and true background
// retrains. Deterministic metrics are identical to ServeScenarioTick.
func ServeScenarioConcurrent(ctx context.Context, b IndexBackend, o ServingScenarioOptions, p ServingPlaneOptions) ([]ServingEpochMetrics, error) {
	return serve.RunConcurrent(ctx, b, o, p)
}

// PredictionOracle is query access to a deployed index's raw position
// predictions — the observable of the black-box threat model.
type PredictionOracle = blackbox.Oracle

// BlackBoxInference is the recovered second-stage architecture.
type BlackBoxInference = blackbox.InferenceResult

// BlackBoxAttackResult couples inference with the mounted attack.
type BlackBoxAttackResult = blackbox.AttackResult

// InferSecondStage recovers a deployed RMI's second-stage models (fanout,
// boundaries, and each linear model's parameters) from one prediction probe
// per known key — the black-box variant the paper sketches in Section VI.
func InferSecondStage(o PredictionOracle, known KeySet) (BlackBoxInference, error) {
	return blackbox.InferSecondStage(o, known)
}

// BlackBoxRMIAttack infers the architecture through the oracle and mounts
// Algorithm 2 against it; opts.NumModels is overridden by the inference.
func BlackBoxRMIAttack(o PredictionOracle, known KeySet, opts RMIAttackOptions) (BlackBoxAttackResult, error) {
	return blackbox.Attack(o, known, opts)
}

// ---------------------------------------------------------------------------
// Index substrates
// ---------------------------------------------------------------------------

// Index is the two-stage recursive model index.
type Index = rmi.Index

// RMIConfig configures BuildRMI.
type RMIConfig = rmi.Config

// RootKind selects the RMI's stage-1 model.
type RootKind = rmi.RootKind

// Stage-1 model kinds.
const (
	RootPerfect = rmi.RootPerfect
	RootLinear  = rmi.RootLinear
	RootNN      = rmi.RootNN
)

// NNConfig configures stage-1 neural-network training.
type NNConfig = nn.Config

// LookupResult reports an index point query.
type LookupResult = rmi.LookupResult

// IndexStats summarizes an index's lookup-cost structure.
type IndexStats = rmi.Stats

// BuildRMI constructs a two-stage RMI over the key set.
func BuildRMI(ks KeySet, cfg RMIConfig) (*Index, error) { return rmi.Build(ks, cfg) }

// ReadRMIBinary deserializes an index previously saved with
// (*Index).WriteBinary; the loaded index answers queries identically.
func ReadRMIBinary(r io.Reader) (*Index, error) { return rmi.ReadBinary(r) }

// PLAIndex is an error-bounded piecewise-linear learned index (the
// FITing-tree / PGM-index family). Against it, CDF poisoning surfaces as
// segment-count (memory) inflation rather than lookup error.
type PLAIndex = pla.Index

// BuildPLA constructs a piecewise-linear index with the given guaranteed
// error bound epsilon (the fewest one-pass greedy segments).
func BuildPLA(ks KeySet, epsilon int) (*PLAIndex, error) { return pla.Build(ks, epsilon) }

// ReadPLABinary deserializes an index previously saved with
// (*PLAIndex).WriteBinary.
func ReadPLABinary(r io.Reader) (*PLAIndex, error) { return pla.ReadBinary(r) }

// PLAInflationResult reports the segment-inflation attack outcome.
type PLAInflationResult = pla.InflationResult

// PLAInflationAttack injects up to budget keys to maximize the number of
// ε-bounded segments a rebuild needs — the attack objective that actually
// transfers to PGM/FITing-tree-style indexes (see EXPERIMENTS.md, Ext. F).
func PLAInflationAttack(ks KeySet, budget, epsilon int) (PLAInflationResult, error) {
	return pla.InflationAttack(ks, budget, epsilon)
}

// Quad is a fitted quadratic CDF model; QuadModel adds its loss.
type Quad = regression.Quad

// QuadModel is the result of a quadratic CDF fit.
type QuadModel = regression.QuadModel

// FitQuadCDF fits rank ≈ a·k² + b·k + c on the key set's CDF — the "more
// complex second-stage model" mitigation the paper's Discussion weighs.
func FitQuadCDF(ks KeySet) (QuadModel, error) { return regression.FitQuadCDF(ks) }

// BTree is the traditional baseline index.
type BTree = btree.Tree

// NewBTree returns an empty B-Tree of the given minimum degree.
func NewBTree(degree int) (*BTree, error) { return btree.New(degree) }

// BuildBTree bulk-loads a B-Tree from keys.
func BuildBTree(degree int, ks []int64) (*BTree, error) { return btree.Bulk(degree, ks) }

// ---------------------------------------------------------------------------
// Defenses
// ---------------------------------------------------------------------------

// TrimOptions tunes the TRIM defense.
type TrimOptions = defense.TrimOptions

// TrimResult reports the TRIM defense outcome.
type TrimResult = defense.TrimResult

// DefenseEval quantifies a defense against ground truth.
type DefenseEval = defense.Eval

// TrimDefense runs TRIM adapted to CDFs: iteratively keep the cleanCount
// best-fitting keys, re-ranking the candidate subset on every round.
func TrimDefense(poisoned KeySet, cleanCount int, opts TrimOptions) (TrimResult, error) {
	return defense.TrimCDF(poisoned, cleanCount, opts)
}

// EvaluateDefense scores flagged keys against the known poison set.
func EvaluateDefense(clean, poison, flagged, kept KeySet) (DefenseEval, error) {
	return defense.Evaluate(clean, poison, flagged, kept)
}

// RangeFilter drops keys outside [lo, hi] — the sanitizer the attack's
// interior-only keys are designed to evade.
func RangeFilter(ks KeySet, lo, hi int64) (kept, removed KeySet) {
	return defense.RangeFilter(ks, lo, hi)
}

// DensityFlagger flags keys in abnormally dense neighbourhoods (local
// density more than zThreshold standard deviations above the mean).
func DensityFlagger(ks KeySet, window int, zThreshold float64) KeySet {
	return defense.DensityFlagger(ks, window, zThreshold)
}

// GuardOptions tunes NewGuardedBackend's density screen.
type GuardOptions = defense.GuardOptions

// GuardedBackend is an online insert sanitizer wrapping any IndexBackend:
// reads pass through, writes are screened by a local-density heuristic at
// insert time. It is itself an IndexBackend, so guards compose with every
// backend and every scenario.
type GuardedBackend = defense.Guard

// NewGuardedBackend wraps a backend with the density screen.
func NewGuardedBackend(b IndexBackend, opts GuardOptions) *GuardedBackend {
	return defense.NewGuard(b, opts)
}

// ---------------------------------------------------------------------------
// Defense & robustness plane
// ---------------------------------------------------------------------------

// CDFFitter is a robust alternative to the OLS CDF fit: a deterministic
// estimator the learned backends can retrain with so that poison mass does
// not drag the model (internal/robust).
type CDFFitter = robust.Fitter

// OLSFitter is the baseline ordinary-least-squares CDF fit behind the
// Fitter interface.
type OLSFitter = robust.OLS

// TheilSenFitter is the deterministic Theil–Sen median-of-slopes estimator:
// up to ~29% contamination moves the fit only marginally.
type TheilSenFitter = robust.TheilSen

// TrimmedFitter is iteratively trimmed least squares: refit OLS on the
// (100-Pct)% best-fitting keys until the kept set stabilizes.
type TrimmedFitter = robust.Trimmed

// ParseCDFFitter parses a fitter spec: "ols" | "theilsen" | "trimmed:P".
func ParseCDFFitter(s string) (CDFFitter, error) { return robust.ParseFitter(s) }

// NewDynamicIndexWithFit is NewDynamicIndex with a pluggable CDF trainer
// (nil fit keeps OLS); pass a CDFFitter's Fit method to retrain robustly.
func NewDynamicIndexWithFit(ks KeySet, policy RetrainPolicy, fit func(KeySet) (Model, error)) (*DynamicIndex, error) {
	return dynamic.NewWithFit(ks, policy, fit)
}

// NewShardedIndexWithFit is NewShardedIndex with a pluggable per-shard CDF
// trainer (nil fit keeps OLS).
func NewShardedIndexWithFit(ks KeySet, shards int, policy RetrainPolicy, fit func(KeySet) (Model, error)) (*ShardedIndex, error) {
	return shard.NewWithFit(ks, shards, policy, fit)
}

// NewSingleModelIndexWithFit is NewSingleModelIndex with a pluggable
// stage-2 trainer (nil fit keeps OLS).
func NewSingleModelIndexWithFit(ks KeySet, fit func(KeySet) (Model, error)) (*SingleModelIndex, error) {
	return rmi.NewSingleWithFit(ks, fit)
}

// NewBalancedAlexIndex is NewAlexIndex with the density-balancing split
// policy: splits partition at the widest key-space gap instead of the
// occupancy midpoint, denying the cascade attacker its dense corner.
func NewBalancedAlexIndex(ks KeySet, leafTarget int) (*AlexIndex, error) {
	return alex.NewBalanced(ks, leafTarget)
}

// GuardPolicy is one composable insert-screening detector for the guarded
// backend; chain them in GuardOptions.Policies.
type GuardPolicy = defense.Policy

// DensityGuardPolicy screens one-sided rank-window density.
type DensityGuardPolicy = defense.DensityPolicy

// DupMassGuardPolicy screens near-duplicate key mass.
type DupMassGuardPolicy = defense.DupMassPolicy

// GapOutlierGuardPolicy screens gap-edge asymmetry.
type GapOutlierGuardPolicy = defense.GapOutlierPolicy

// LossSpikeGuardPolicy screens retrain-loss spikes using the attacker's own
// closed-form oracle.
type LossSpikeGuardPolicy = defense.LossSpikePolicy

// ParseGuardPolicyChain parses the '|'-separated detector-chain spec
// ("density:8:3|dupmass:3:3|gapout:6|lossspike:2"; "none" for the empty
// chain). It is total — any input yields a chain or an error.
func ParseGuardPolicyChain(spec string) ([]GuardPolicy, error) {
	return defense.ParsePolicyChain(spec)
}

// GuardPolicyChainSpec renders a chain back to its canonical spec string.
func GuardPolicyChainSpec(ps []GuardPolicy) string { return defense.ChainSpec(ps) }

// WriteRateLimiter enforces a per-source write budget over a sliding window
// of logical operations, deterministically.
type WriteRateLimiter = defense.RateLimiter

// NewWriteRateLimiter builds a limiter allowing budget write attempts per
// source per window logical ops (both >= 1).
func NewWriteRateLimiter(budget, window int) (*WriteRateLimiter, error) {
	return defense.NewRateLimiter(budget, window)
}

// ScenarioDefense arms the defense plane of any attack scenario (static,
// online, serve, churn, cascade): detector chain, robust fitter, per-source
// rate limiting, and the balanced split policy. The zero value changes
// nothing.
type ScenarioDefense = core.DefenseSpec

// ScenarioDefenseReport is a scenario's defense-plane accounting, split by
// origin (victim honest/poison, clean twin).
type ScenarioDefenseReport = core.DefenseReport

// StaticAttackOptions parameterizes StaticScenarioAttack.
type StaticAttackOptions = core.StaticOptions

// StaticAttackResult reports StaticScenarioAttack.
type StaticAttackResult = core.StaticResult

// StaticScenarioAttack mounts the paper's one-shot (Algorithm 1) attack as
// a defense-aware scenario: the computed poison drips through the victim's
// write path — where a guard chain, rate limiter, or robust fitter can
// fight back — interleaved with honest writes, against a clean twin.
func StaticScenarioAttack(initial KeySet, opts StaticAttackOptions, execOpts ...AttackOption) (StaticAttackResult, error) {
	return core.StaticAttack(initial, opts, execOpts...)
}
