package blackbox

import (
	"errors"
	"math"
	"testing"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/rmi"
	"cdfpoison/internal/xrand"
)

func buildIndex(t *testing.T, seed uint64, n, fanout int) (keys.Set, *rmi.Index) {
	t.Helper()
	rng := xrand.New(seed)
	ks, err := dataset.Uniform(rng, n, int64(n)*20)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := rmi.Build(ks, rmi.Config{Fanout: fanout})
	if err != nil {
		t.Fatal(err)
	}
	return ks, idx
}

func TestInferenceRecoversFanout(t *testing.T) {
	ks, idx := buildIndex(t, 1, 2000, 20)
	inf, err := InferSecondStage(idx, ks)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct uniform partitions virtually never share an exact line, so
	// the inferred fanout should match the architecture.
	if inf.NumModels() != 20 {
		t.Fatalf("inferred %d models, want 20", inf.NumModels())
	}
	if inf.Probes != ks.Len() {
		t.Fatalf("probes %d, want n=%d", inf.Probes, ks.Len())
	}
	// Segments must partition [0, n) contiguously.
	next := 0
	for _, s := range inf.Segments {
		if s.Lo != next || s.Hi < s.Lo {
			t.Fatalf("segment gap/overlap at %d: %+v", next, s)
		}
		next = s.Hi + 1
	}
	if next != ks.Len() {
		t.Fatalf("segments cover %d of %d keys", next, ks.Len())
	}
}

func TestInferenceMatchesOracleExactly(t *testing.T) {
	ks, idx := buildIndex(t, 2, 1500, 15)
	inf, err := InferSecondStage(idx, ks)
	if err != nil {
		t.Fatal(err)
	}
	if worst := Verify(idx, ks, inf); worst > 1e-6 {
		t.Fatalf("inferred lines disagree with oracle by %v", worst)
	}
}

func TestInferenceSegmentBoundariesMatchPartition(t *testing.T) {
	ks, idx := buildIndex(t, 3, 1000, 10)
	inf, err := InferSecondStage(idx, ks)
	if err != nil {
		t.Fatal(err)
	}
	// RootPerfect partitions 1000 keys into 10 chunks of exactly 100.
	for i, s := range inf.Segments {
		if s.Lo != i*100 || s.Hi != i*100+99 {
			t.Fatalf("segment %d = [%d,%d], want [%d,%d]", i, s.Lo, s.Hi, i*100, i*100+99)
		}
	}
}

func TestInferenceErrors(t *testing.T) {
	_, idx := buildIndex(t, 4, 100, 4)
	single, err := keys.New([]int64{5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferSecondStage(idx, single); !errors.Is(err, ErrNoKeys) {
		t.Fatalf("want ErrNoKeys, got %v", err)
	}
}

func TestBlackBoxAttackMatchesWhiteBox(t *testing.T) {
	ks, idx := buildIndex(t, 5, 2000, 20)
	opts := core.RMIAttackOptions{Percent: 10, Alpha: 3, MaxMoves: 20}

	bb, err := Attack(idx, ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	wbOpts := opts
	wbOpts.NumModels = 20
	wb, err := core.RMIAttack(ks, wbOpts)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Inference.NumModels() != 20 {
		t.Fatalf("inference fanout %d", bb.Inference.NumModels())
	}
	// Same data, same recovered architecture → identical attack outcome.
	if !bb.Attack.Poison.Equal(wb.Poison) {
		t.Fatal("black-box attack chose different poison keys than white-box")
	}
	if math.Abs(bb.Attack.RMIRatio()-wb.RMIRatio()) > 1e-12 {
		t.Fatalf("ratios differ: %v vs %v", bb.Attack.RMIRatio(), wb.RMIRatio())
	}
	if bb.Attack.RMIRatio() <= 1 {
		t.Fatalf("attack ineffective: %v", bb.Attack.RMIRatio())
	}
}

func TestInferenceWithLinearRoot(t *testing.T) {
	// A realistic stage-1 (linear router) produces unequal, possibly empty
	// assignments; inference must still exactly replicate the oracle.
	rng := xrand.New(6)
	ks, err := dataset.LogNormal(rng, 3000, 150000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := rmi.Build(ks, rmi.Config{Fanout: 30, Root: rmi.RootLinear})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := InferSecondStage(idx, ks)
	if err != nil {
		t.Fatal(err)
	}
	if worst := Verify(idx, ks, inf); worst > 1e-6 {
		t.Fatalf("linear-root inference disagrees by %v", worst)
	}
	if inf.NumModels() < 2 {
		t.Fatalf("implausible fanout %d", inf.NumModels())
	}
}

func TestTrailingSingletonSegment(t *testing.T) {
	// Craft an oracle whose last key sits alone in a segment.
	ks, err := keys.New([]int64{0, 10, 20, 1000})
	if err != nil {
		t.Fatal(err)
	}
	o := fakeOracle{f: func(k int64) float64 {
		if k >= 1000 {
			return 4
		}
		return float64(k)/10 + 1
	}}
	inf, err := InferSecondStage(o, ks)
	if err != nil {
		t.Fatal(err)
	}
	last := inf.Segments[len(inf.Segments)-1]
	if last.Lo != 3 || last.Hi != 3 {
		t.Fatalf("trailing segment = %+v", last)
	}
}

type fakeOracle struct{ f func(int64) float64 }

func (o fakeOracle) PredictPosition(k int64) float64 { return o.f(k) }
