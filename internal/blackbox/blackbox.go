// Package blackbox implements the black-box variant of the RMI poisoning
// attack that the paper sketches as future work (Section VI): the adversary
// knows the training keys (the standard poisoning assumption) but NOT the
// index's model parameters, and must first infer them through query access.
//
// The paper's observation makes this tractable: "the architecture choices
// are limited and it would be enough to infer the parameters of the
// second-stage models, which are linear regressions." A linear model is
// fully determined by two of its predictions, so probing the index's
// position prediction at every known key recovers, exactly:
//
//   - the partition boundaries (where the prediction slope changes), and
//   - each second-stage model's (w, b).
//
// With the architecture recovered, the white-box attack of internal/core
// applies unchanged.
package blackbox

import (
	"errors"
	"fmt"
	"math"

	"cdfpoison/internal/core"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// Oracle is the adversary's only access to the deployed index: submit a
// key, observe the predicted position the index computes before its
// last-mile search. rmi.Index satisfies this via PredictPosition.
type Oracle interface {
	PredictPosition(key int64) float64
}

// ErrNoKeys is returned when inference is attempted with no known keys.
var ErrNoKeys = errors.New("blackbox: need at least two known keys to infer a linear model")

// Segment is one inferred second-stage model: the contiguous run of known
// keys it serves and the recovered line.
type Segment struct {
	// Lo and Hi are 0-based positions into the known sorted key set
	// (inclusive) served by this model.
	Lo, Hi int
	Line   regression.Line
	Probes int // oracle queries spent on this segment
}

// InferenceResult reports the recovered architecture.
type InferenceResult struct {
	Segments []Segment
	Probes   int // total oracle queries
}

// NumModels returns the inferred second-stage fanout.
func (r InferenceResult) NumModels() int { return len(r.Segments) }

// InferSecondStage recovers the second-stage models serving the known keys.
// It probes the oracle once per key (n queries), groups consecutive keys
// with a consistent linear response, and solves each group's (w, b) from
// two probe points. Adjacent models that happen to share the exact same
// line are indistinguishable through the oracle and merge into one segment
// — harmless for the attack, which only needs the response function.
func InferSecondStage(o Oracle, known keys.Set) (InferenceResult, error) {
	n := known.Len()
	if n < 2 {
		return InferenceResult{}, ErrNoKeys
	}
	preds := make([]float64, n)
	for i := 0; i < n; i++ {
		preds[i] = o.PredictPosition(known.At(i))
	}
	res := InferenceResult{Probes: n}

	const tol = 1e-6 // relative tolerance on predicted positions
	start := 0
	for start < n {
		if start == n-1 {
			// A trailing singleton: constant model.
			res.Segments = append(res.Segments, Segment{
				Lo: start, Hi: start,
				Line:   regression.Line{W: 0, B: preds[start]},
				Probes: 1,
			})
			break
		}
		// Solve the line through the first two points of the group.
		k0, k1 := known.At(start), known.At(start+1)
		w := (preds[start+1] - preds[start]) / float64(k1-k0)
		b := preds[start] - w*float64(k0)
		line := regression.Line{W: w, B: b}
		end := start + 1
		for end+1 < n {
			next := known.At(end + 1)
			want := line.Predict(next)
			if math.Abs(want-preds[end+1]) > tol*(1+math.Abs(want)) {
				break
			}
			end++
		}
		res.Segments = append(res.Segments, Segment{
			Lo: start, Hi: end, Line: line, Probes: end - start + 1,
		})
		start = end + 1
	}
	return res, nil
}

// Verify replays every known key through the inferred segments and returns
// the largest absolute disagreement with the oracle — the adversary's own
// confidence check before spending the poisoning budget.
func Verify(o Oracle, known keys.Set, inf InferenceResult) float64 {
	worst := 0.0
	for _, seg := range inf.Segments {
		for i := seg.Lo; i <= seg.Hi; i++ {
			k := known.At(i)
			d := math.Abs(seg.Line.Predict(k) - o.PredictPosition(k))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// AttackResult couples the inference with the mounted white-box attack.
type AttackResult struct {
	Inference InferenceResult
	Attack    core.RMIAttackResult
}

// Attack runs the full black-box pipeline: infer the second-stage
// architecture through the oracle, then mount Algorithm 2 against the
// recovered fanout. Options' NumModels is overridden by the inference.
func Attack(o Oracle, known keys.Set, opts core.RMIAttackOptions) (AttackResult, error) {
	inf, err := InferSecondStage(o, known)
	if err != nil {
		return AttackResult{}, err
	}
	if inf.NumModels() == 0 {
		return AttackResult{}, fmt.Errorf("blackbox: inference recovered no models")
	}
	opts.NumModels = inf.NumModels()
	atk, err := core.RMIAttack(known, opts)
	if err != nil {
		return AttackResult{}, fmt.Errorf("blackbox: attack on inferred architecture: %w", err)
	}
	return AttackResult{Inference: inf, Attack: atk}, nil
}
