package alex

// Fuzz harness: adversarial operation streams against the gapped array,
// replayed against the full structural oracle (checkInvariants). The
// checked-in corpus under testdata/fuzz seeds the shapes that stress
// split/cascade mechanics — dense ascending runs, descending runs, repeated
// keys, boundary-hugging inserts — and CI replays it alongside the
// keys/pla/index corpora.

import (
	"encoding/binary"
	"testing"

	"cdfpoison/internal/keys"
)

// FuzzAlexOps decodes data as [leafTarget byte][9-byte records: op byte +
// big-endian key] and drives an index through it. Every record leaves the
// structure invariant-clean; any panic or invariant break is a finding.
func FuzzAlexOps(f *testing.F) {
	mk := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	rec := func(op byte, k uint64) []byte {
		var b [9]byte
		b[0] = op
		binary.BigEndian.PutUint64(b[1:], k)
		return b[:]
	}
	// Dense ascending run into one region (the cascade attacker's shape).
	asc := []byte{2}
	for i := uint64(0); i < 40; i++ {
		asc = mk(asc, rec(0, 1000+i))
	}
	f.Add(asc)
	// Descending run with interleaved lookups and a retrain.
	desc := []byte{4}
	for i := uint64(0); i < 30; i++ {
		desc = mk(desc, rec(0, 5000-i), rec(2, 5000-i))
	}
	f.Add(mk(desc, rec(3, 0)))
	// Duplicates, negatives (high bit set), and far-out probes.
	f.Add(mk([]byte{8},
		rec(0, 7), rec(0, 7), rec(0, 1<<63|5), rec(0, 1<<40),
		rec(2, 1<<62), rec(1, 9), rec(3, 0)))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		leafTarget := 2 + int(data[0]%16)
		data = data[1:]
		initial, err := keys.NewStrict([]int64{100, 200, 300, 400, 500})
		if err != nil {
			t.Fatal(err)
		}
		x, err := New(initial, leafTarget)
		if err != nil {
			t.Fatal(err)
		}
		mirror := initial
		snapKeys := []keys.Set{}
		snapViews := []interface {
			Len() int
			Keys() keys.Set
		}{}
		ops := 0
		for len(data) >= 9 && ops < 512 {
			op, k := data[0]%4, int64(binary.BigEndian.Uint64(data[1:9]))
			data = data[9:]
			ops++
			switch op {
			case 0, 1: // insert (duplicates, negatives, extremes included)
				acc, _ := x.Insert(k)
				wantAcc := k >= 0 && !mirror.Contains(k)
				if acc != wantAcc {
					t.Fatalf("Insert(%d) accepted=%v, want %v", k, acc, wantAcc)
				}
				if acc {
					mirror, _ = mirror.Insert(k)
				}
			case 2: // lookup
				if r := x.Lookup(k); r.Found != (k >= 0 && mirror.Contains(k)) {
					t.Fatalf("Lookup(%d).Found=%v diverges from mirror", k, r.Found)
				}
			case 3: // maintenance + snapshot capture
				s := x.Snapshot()
				snapKeys = append(snapKeys, s.Keys().Clone())
				snapViews = append(snapViews, s)
				x.Retrain()
			}
			checkInvariants(t, x, mirror)
		}
		// Held snapshots survived every later insert, split, and rebuild.
		for i, s := range snapViews {
			if !s.Keys().Equal(snapKeys[i]) {
				t.Fatalf("snapshot %d content drifted under mutation", i)
			}
		}
	})
}
