package alex

// Sorted-batch probe kernel (index.BatchReader, DESIGN.md §12). Every
// comparison a lookup makes — the router's boundary walk and the leaf's
// exponential+binary lower-bound search — tests `array[i] >= k` (or the
// boundary's `> k`) against a non-decreasing array, so each outcome is a
// pure function of the key's lower/upper-bound rank. The final leaf index
// is monotone in k, so a sorted batch visits leaves left-to-right: one
// gallop cursor over the routing boundaries, one per-leaf gallop cursor
// over the slots (reset at each leaf change), and arithmetic replay of the
// walk and search loops per key. (probes, notFound) are bit-identical to
// the per-key reference.

import (
	"sort"

	"cdfpoison/internal/index"
)

var (
	_ index.BatchReader = (*Index)(nil)
	_ index.BatchReader = (*snapshot)(nil)
)

// gallopUpper returns the smallest i in [from, len(a)) with a[i] > k,
// assuming a is sorted and a[j] <= k for all j < from — GallopLower's
// upper-bound twin, kept local because only the router walk needs it.
func gallopUpper(a []int64, k int64, from int) int {
	n := len(a)
	if from >= n || a[from] > k {
		return from
	}
	step := 1
	for from+step < n && a[from+step] <= k {
		step <<= 1
	}
	lo := from + step>>1 + 1
	hi := from + step
	if hi > n {
		hi = n
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return a[lo+i] > k })
}

// routeReplay replays view.route arithmetically: u is the upper-bound rank
// of k in v.lows (lows[j] > k ⟺ j >= u), j the clamped router prediction.
func routeReplay(nNodes, j, u int) (leaf, probes int) {
	for j > 0 {
		probes++
		if j >= u {
			j--
		} else {
			break
		}
	}
	for j+1 < nNodes {
		probes++
		if j+1 < u {
			j++
		} else {
			break
		}
	}
	return j, probes
}

// lowerBoundReplay replays node.lowerBound arithmetically: every slot
// comparison `slots[i] >= k` is `i >= posL` (slots are non-decreasing with
// gap copies), so the exponential and binary phases run on indices alone.
func lowerBoundReplay(n, pred, posL int) (probes int) {
	lo, hi := -1, n
	probes++
	if pred >= posL {
		hi = pred
		step := 1
		for i := pred - 1; i >= 0; i -= step {
			probes++
			if i >= posL {
				hi = i
				step <<= 1
			} else {
				lo = i
				break
			}
		}
	} else {
		lo = pred
		step := 1
		for i := pred + 1; i < n; i += step {
			probes++
			if i < posL {
				lo = i
				step <<= 1
			} else {
				hi = i
				break
			}
		}
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		probes++
		if mid >= posL {
			hi = mid
		} else {
			lo = mid
		}
	}
	return probes
}

func (v *view) probeSumSorted(sorted []int64) (probes int64, notFound int) {
	cu := 0 // gallop cursor over v.lows (router upper bound)
	lastLeaf := -1
	posL := 0 // gallop cursor over the current leaf's slots
	for _, k := range sorted {
		leaf, rp := 0, 0
		if len(v.nodes) > 1 {
			cu = gallopUpper(v.lows, k, cu)
			j := clampSlot(v.router.at(k), len(v.nodes))
			leaf, rp = routeReplay(len(v.nodes), j, cu)
		}
		nd := v.nodes[leaf]
		if leaf != lastLeaf {
			lastLeaf, posL = leaf, 0
		}
		posL = index.GallopLower(nd.slots, k, posL)
		n := len(nd.slots)
		pred := clampSlot(nd.model.at(k), n)
		p := rp + lowerBoundReplay(n, pred, posL)
		found := false
		if posL < n {
			p++
			found = nd.slots[posL] == k
		}
		probes += int64(p)
		if !found {
			notFound++
		}
	}
	return probes, notFound
}

// ProbeSumSorted evaluates a sorted (non-decreasing) query batch against
// the current state, bit-identical to ProbeSum on the same batch.
func (x *Index) ProbeSumSorted(sorted []int64) (int64, int) { return x.v.probeSumSorted(sorted) }

// ProbeSumSorted is the snapshot-side batch kernel.
func (s *snapshot) ProbeSumSorted(sorted []int64) (int64, int) { return s.v.probeSumSorted(sorted) }
