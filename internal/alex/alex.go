// Package alex is the ALEX-family gapped-array learned index: the dynamic
// substrate whose *structure* — not just its model — adapts to the data,
// and therefore the richest poisoning surface in the repository ("Poisoning
// Learned Index Structures: Static and Dynamic Adversarial Attacks on
// ALEX", PAPERS.md; design notes in DESIGN.md §9).
//
// Layout. Two levels. A root routes keys through a linear model over the
// leaves' lower boundaries; each leaf is a GAPPED ARRAY: a slot array kept
// deliberately under-full so that model-based inserts usually land in an
// empty slot next to where the leaf's linear model predicts the key
// belongs. Search goes model prediction → exponential search → binary
// search, with every slot comparison counted as a probe. Empty slots hold a
// copy of their nearest occupied left neighbour (leading gaps copy the
// first key), so the slot array is globally non-decreasing and membership
// is a single lower-bound search: an absent key can never collide with a
// gap's copy.
//
// Structural maintenance — the attack surface:
//
//   - A model-based insert whose predicted region has no free slot SHIFTS
//     the occupied run toward the nearest gap, paying one slot write per
//     element moved. Dense clusters push gaps far away, so shifts grow.
//   - A leaf whose occupancy crosses the split-density threshold SPLITS
//     into two half-full leaves (fresh models, fresh gaps).
//   - When splitting drives the root's fanout past its limit, the whole
//     index REBUILDS (the split cascade): every key is repartitioned into
//     fresh leaves — the O(n) event core.CascadeAttack farms.
//
// Everything is deterministic: no RNG, no clocks, no map iteration;
// identical call sequences produce identical structures, bit for bit, so
// the scenario equivalence tests hold for this backend too.
package alex

import (
	"math"
)

const (
	// DefaultLeafTarget is the bulk-load/rebuild leaf size (keys per leaf).
	DefaultLeafTarget = 64
	// minSlots is the smallest leaf slot-array capacity.
	minSlots = 8
	// minFanout is the smallest root fanout limit.
	minFanout = 4
)

// line is a linear model y ≈ w*x + b.
type line struct{ w, b float64 }

func (l line) at(k int64) float64 { return l.w*float64(k) + l.b }

// clampSlot converts a (possibly wildly overshooting) float prediction into
// a valid slot index in [0, n). The clamp happens in FLOAT space, before
// the integer conversion: a skewed model fed an absent far-out key (1<<40
// in the conformance queries) predicts positions far outside the array, and
// converting those to int first is exactly the out-of-range bug class fixed
// twice before in shard and rmi — TestSearchPredictionOvershoot pins it
// here at the backend's birth.
func clampSlot(f float64, n int) int {
	if math.IsNaN(f) || f < 0 {
		return 0
	}
	if f > float64(n-1) {
		return n - 1
	}
	return int(math.Round(f))
}

// fitLine least-squares fits y=i (the rank) on x=xs[i]. Centered sums keep
// the arithmetic stable for far-apart keys; a degenerate spread falls back
// to the flat model. Pure float64 on one goroutine — bit-identical under
// any worker count because a fit is never split across tasks.
func fitLine(xs []int64) line {
	n := len(xs)
	if n < 2 {
		return line{}
	}
	var mx, my float64
	for i, x := range xs {
		mx += float64(x)
		my += float64(i)
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, sxy float64
	for i, x := range xs {
		dx := float64(x) - mx
		sxx += dx * dx
		sxy += dx * (float64(i) - my)
	}
	if sxx <= 0 {
		return line{b: my}
	}
	w := sxy / sxx
	return line{w: w, b: my - w*mx}
}

// node is one gapped-array leaf. slots is globally non-decreasing: occupied
// positions hold their key, free positions hold a copy of the nearest
// occupied key to the left (leading gaps copy the first key). occ is the
// occupancy bitmap, used the occupied count. model predicts the slot of a
// key; sseFit/fitN record its in-sample squared error at fit time. shared
// marks a node aliased by a snapshot: mutators must clone it first (the
// copy-on-write node page of DESIGN.md §9).
type node struct {
	slots  []int64
	occ    []bool
	used   int
	model  line
	sseFit float64
	fitN   int
	shared bool
}

// buildNode bulk-loads one leaf from its sorted keys: fit the rank model,
// stretch it over a slot array at ~50% density, place every key at its
// (monotonically corrected) predicted slot, then fill the gaps with their
// left-neighbour copies.
func buildNode(ks []int64) *node {
	used := len(ks)
	capSlots := 2 * used
	if capSlots < minSlots {
		capSlots = minSlots
	}
	nd := &node{slots: make([]int64, capSlots), occ: make([]bool, capSlots), used: used, fitN: used}
	rank := fitLine(ks)
	spread := float64(capSlots) / float64(used)
	nd.model = line{w: rank.w * spread, b: rank.b * spread}
	prev := -1
	for i, k := range ks {
		p := clampSlot(nd.model.at(k), capSlots)
		if p < prev+1 {
			p = prev + 1
		}
		if hi := capSlots - (used - i); p > hi {
			p = hi
		}
		nd.slots[p] = k
		nd.occ[p] = true
		e := float64(p) - nd.model.at(k)
		nd.sseFit += e * e
		prev = p
	}
	nd.refill(0, capSlots)
	return nd
}

// refill restores the gap-copy invariant on [lo, hi): every free slot takes
// the value of its nearest occupied left neighbour (searching below lo when
// needed), and leading gaps take the node's first key.
func (nd *node) refill(lo, hi int) {
	left, seen := int64(0), false
	for i := lo - 1; i >= 0; i-- {
		if nd.occ[i] {
			left, seen = nd.slots[i], true
			break
		}
	}
	if !seen {
		left = nd.firstKey()
	}
	for i := lo; i < hi; i++ {
		if nd.occ[i] {
			left = nd.slots[i]
			continue
		}
		nd.slots[i] = left
	}
}

// firstKey returns the smallest stored key (nodes are never empty).
func (nd *node) firstKey() int64 {
	for i, ok := range nd.occ {
		if ok {
			return nd.slots[i]
		}
	}
	panic("alex: empty node")
}

// keysInto appends the node's stored keys in order.
func (nd *node) keysInto(out []int64) []int64 {
	for i, ok := range nd.occ {
		if ok {
			out = append(out, nd.slots[i])
		}
	}
	return out
}

func (nd *node) clone() *node {
	cp := *nd
	cp.slots = append([]int64(nil), nd.slots...)
	cp.occ = append([]bool(nil), nd.occ...)
	cp.shared = false
	return &cp
}

// lowerBound returns the first slot index with slots[i] >= k (len(slots)
// when none), the slot comparisons performed, and the bracket width the
// exponential phase handed to the binary phase — the per-query search
// window the model actually guaranteed.
func (nd *node) lowerBound(k int64) (pos, probes, window int) {
	n := len(nd.slots)
	pred := clampSlot(nd.model.at(k), n)
	lo, hi := -1, n // invariant: slots[lo] < k <= slots[hi] at the virtual ends
	probes++
	if nd.slots[pred] >= k {
		hi = pred
		step := 1
		for i := pred - 1; i >= 0; i -= step {
			probes++
			if nd.slots[i] >= k {
				hi = i
				step <<= 1
			} else {
				lo = i
				break
			}
		}
	} else {
		lo = pred
		step := 1
		for i := pred + 1; i < n; i += step {
			probes++
			if nd.slots[i] < k {
				lo = i
				step <<= 1
			} else {
				hi = i
				break
			}
		}
	}
	window = hi - lo
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		probes++
		if nd.slots[mid] >= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, probes, window
}

// contains reports membership: the gap-copy invariant makes slots[pos] == k
// at the lower bound equivalent to "k is stored".
func (nd *node) contains(k int64) bool {
	pos, _, _ := nd.lowerBound(k)
	return pos < len(nd.slots) && nd.slots[pos] == k
}

func (nd *node) prevOcc(i int) int {
	for ; i >= 0; i-- {
		if nd.occ[i] {
			return i
		}
	}
	return -1
}

func (nd *node) nextOcc(i int) int {
	for ; i < len(nd.slots); i++ {
		if nd.occ[i] {
			return i
		}
	}
	return len(nd.slots)
}

func (nd *node) prevFree(i int) int {
	for ; i >= 0; i-- {
		if !nd.occ[i] {
			return i
		}
	}
	return -1
}

func (nd *node) nextFree(i int) int {
	for ; i < len(nd.slots); i++ {
		if !nd.occ[i] {
			return i
		}
	}
	return len(nd.slots)
}

// insertPlan is the placement decision for one key: either a free slot
// inside the gap run bracketing the key (gap=true; writes counts the key
// write plus the gap copies to refresh), or a shift of the occupied run
// toward the nearest free slot (gap=false; writes counts the moves plus the
// key write). The plan is a pure function of node state, so the cascade
// attacker's oracle can price candidate keys in parallel without mutating.
type insertPlan struct {
	gap          bool
	target       int // slot the key lands in
	loOcc, hiOcc int // occupied neighbours bracketing the key (-1 / len)
	shiftFrom    int // free slot absorbing the shifted run (gap=false)
	writes       int
}

// plan computes the insert placement for an ABSENT key k. The node must
// have at least one free slot — guaranteed because leaves split strictly
// below full occupancy.
func (nd *node) plan(k int64) insertPlan {
	n := len(nd.slots)
	pos, _, _ := nd.lowerBound(k)
	loOcc := nd.prevOcc(pos - 1)
	hiOcc := nd.nextOcc(pos)
	pred := clampSlot(nd.model.at(k), n)
	if hiOcc-loOcc > 1 {
		// A gap run brackets the key: land on the predicted slot inside it.
		target := pred
		if target < loOcc+1 {
			target = loOcc + 1
		}
		if target > hiOcc-1 {
			target = hiOcc - 1
		}
		writes := 1 + (hiOcc - 1 - target) // gap copies right of the landing slot
		if loOcc < 0 {
			writes += target // a new minimum refreshes the leading gap copies
		}
		return insertPlan{gap: true, target: target, loOcc: loOcc, hiOcc: hiOcc, writes: writes}
	}
	// Dense region: shift the occupied run toward the nearest free slot.
	gl := nd.prevFree(loOcc)
	gr := nd.nextFree(hiOcc)
	costL, costR := math.MaxInt, math.MaxInt
	if gl >= 0 {
		costL = loOcc - gl
	}
	if gr < n {
		costR = gr - hiOcc
	}
	if costL == math.MaxInt && costR == math.MaxInt {
		panic("alex: insert into full node")
	}
	if costR <= costL {
		return insertPlan{target: hiOcc, loOcc: loOcc, hiOcc: hiOcc, shiftFrom: gr, writes: costR + 1}
	}
	return insertPlan{target: loOcc, loOcc: loOcc, hiOcc: hiOcc, shiftFrom: gl, writes: costL + 1}
}

// insert places an absent key, returning the slot writes performed (the
// shift/fill cost the structural attacker maximizes).
func (nd *node) insert(k int64) int {
	p := nd.plan(k)
	if p.gap {
		nd.slots[p.target] = k
		nd.occ[p.target] = true
		for i := p.target + 1; i < p.hiOcc; i++ {
			nd.slots[i] = k // their nearest occupied left neighbour is now k
		}
		if p.loOcc < 0 {
			for i := 0; i < p.target; i++ {
				nd.slots[i] = k // k is the new first key: leading gaps copy it
			}
		}
		nd.used++
		return p.writes
	}
	if p.shiftFrom >= p.hiOcc {
		// Shift the run [hiOcc, shiftFrom) one slot right into the free slot.
		for i := p.shiftFrom; i > p.hiOcc; i-- {
			nd.slots[i] = nd.slots[i-1]
			nd.occ[i] = true
		}
	} else {
		// Shift the run (shiftFrom, loOcc] one slot left into the free slot.
		for i := p.shiftFrom; i < p.loOcc; i++ {
			nd.slots[i] = nd.slots[i+1]
			nd.occ[i] = true
		}
	}
	nd.slots[p.target] = k
	nd.occ[p.target] = true
	nd.used++
	return p.writes
}

// splitDue reports whether occupancy has crossed the split-density
// threshold (80%). Leaves split strictly before filling up, which is what
// guarantees insert always finds a free slot.
func (nd *node) splitDue() bool { return nd.used*5 >= len(nd.slots)*4 }

// nearSplit reports whether ONE more accepted key could cross the
// threshold — the conservative TriggerPredictor signal.
func (nd *node) nearSplit() bool { return (nd.used+1)*5 >= len(nd.slots)*4 }
