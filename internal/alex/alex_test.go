package alex

import (
	"context"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func fixture(t testing.TB, n int, seed uint64) keys.Set {
	t.Helper()
	ks, err := dataset.Uniform(xrand.New(seed), n, int64(n)*50)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestNewValidation(t *testing.T) {
	if _, err := New(keys.Set{}, 0); err == nil {
		t.Fatal("empty set accepted")
	}
	ks := fixture(t, 10, 1)
	if _, err := New(ks, 1); err == nil {
		t.Fatal("leaf target 1 accepted")
	}
	x, err := New(ks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.leafTarget != DefaultLeafTarget {
		t.Fatalf("leaf target defaulted to %d", x.leafTarget)
	}
}

func TestInsertRejections(t *testing.T) {
	ks := fixture(t, 100, 2)
	x, err := New(ks, 16)
	if err != nil {
		t.Fatal(err)
	}
	if acc, _ := x.Insert(-5); acc {
		t.Fatal("negative key accepted")
	}
	if acc, _ := x.Insert(ks.At(17)); acc {
		t.Fatal("duplicate accepted")
	}
	if x.Len() != 100 {
		t.Fatalf("Len moved to %d on rejected inserts", x.Len())
	}
}

// TestSearchPredictionOvershoot pins the lowerBound-style out-of-range bug
// class fixed in shard (PR 1) and rmi (PR 5) for this backend at birth: a
// heavily skewed leaf model fed absent keys far outside the stored range
// predicts slots far past either end of the array. The float-space clamp in
// clampSlot must absorb it — no panic, no wrong membership — for the live
// index, its snapshot, and the raw node search alike.
func TestSearchPredictionOvershoot(t *testing.T) {
	// One far outlier drags the leaf's least-squares slope near zero and its
	// router off-scale — the same seed family rmi's regression test uses.
	skewed := append([]int64{}, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 1<<40)
	ks, err := keys.NewStrict(skewed)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(ks, 4)
	if err != nil {
		t.Fatal(err)
	}
	probes := []int64{0, 1, 9, 20, 1 << 39, 1<<40 - 1, 1<<40 + 1, 1 << 62}
	snap := x.Snapshot()
	for _, k := range probes {
		if r := x.Lookup(k); r.Found {
			t.Fatalf("absent key %d reported found", k)
		}
		if r := snap.Lookup(k); r.Found {
			t.Fatalf("absent key %d reported found via snapshot", k)
		}
	}
	for i := 0; i < ks.Len(); i++ {
		if r := x.Lookup(ks.At(i)); !r.Found {
			t.Fatalf("stored key %d lost under skew", ks.At(i))
		}
	}
	// Raw node-level: a model whose prediction is negative or beyond the
	// array must still clamp and search correctly.
	nd := buildNode([]int64{1 << 30, 1<<30 + 1, 1<<30 + 2})
	nd.model = line{w: 1e12, b: -1e15} // adversarial: wild slope, wild intercept
	for _, k := range []int64{0, 1 << 29, 1 << 30, 1 << 40} {
		pos, pr, win := nd.lowerBound(k)
		if pos < 0 || pos > len(nd.slots) || pr < 1 || win < 1 {
			t.Fatalf("lowerBound(%d) = (%d, %d, %d) out of contract", k, pos, pr, win)
		}
	}
	if !nd.contains(1 << 30) {
		t.Fatal("stored key lost under adversarial model")
	}
	if nd.contains(1<<30 + 3) {
		t.Fatal("absent key found under adversarial model")
	}
}

// TestSplitAndCascadeAccounting drives one leaf past its density threshold
// and the root past its fanout limit, checking the structural counters and
// the RebuildSizer face along the way.
func TestSplitAndCascadeAccounting(t *testing.T) {
	ks := fixture(t, 48, 3)
	x, err := New(ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Struct(); got.Splits != 0 || got.Cascades != 0 || got.ShiftWrites != 0 {
		t.Fatalf("fresh index has structural history: %+v", got)
	}
	base := ks.At(ks.Len() / 2)
	sawSplit := false
	for d := int64(1); d <= 600 && x.Struct().Cascades == 0; d++ {
		acc, retrained := x.Insert(base + d)
		if retrained {
			sawSplit = true
			if !acc {
				t.Fatal("retrained without accepting")
			}
			// A split prices its leaf; a cascade prices the whole index.
			if x.LastRebuildSize() < 2 {
				t.Fatalf("LastRebuildSize = %d after a structural event", x.LastRebuildSize())
			}
		}
	}
	st := x.Struct()
	if !sawSplit || st.Splits == 0 {
		t.Fatal("clustered inserts never split")
	}
	if st.Cascades == 0 {
		t.Fatal("fanout overflow never cascaded")
	}
	if st.ShiftWrites == 0 {
		t.Fatal("no shift writes recorded")
	}
	if got, want := st.Cost(), st.ShiftWrites+st.SplitKeys+st.CascadeKeys; got != want {
		t.Fatalf("Cost() = %d, want %d", got, want)
	}
	if x.LastRebuildSize() != x.Len() {
		t.Fatalf("cascade rebuild sized %d, index holds %d", x.LastRebuildSize(), x.Len())
	}
	if x.Stats().Retrains == 0 {
		t.Fatal("structural maintenance did not count as retrains")
	}
}

// TestRetrainParallelEquivalence: the pool-fanned rebuild is bit-identical
// to the sequential one — same stats, same probe counts, same structure.
func TestRetrainParallelEquivalence(t *testing.T) {
	ks := fixture(t, 700, 4)
	queries := append(append([]int64(nil), ks.Keys()...), 1, 3, 5, 7, 1<<40)
	mk := func() *Index {
		x, err := New(ks, 32)
		if err != nil {
			t.Fatal(err)
		}
		for d := int64(1); d < 300; d += 2 {
			x.Insert(ks.Min() + d)
		}
		return x
	}
	seq, par := mk(), mk()
	seq.Retrain()
	if err := par.RetrainParallel(context.Background(), engine.New(4)); err != nil {
		t.Fatal(err)
	}
	if seq.Stats() != par.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", seq.Stats(), par.Stats())
	}
	if seq.Struct() != par.Struct() {
		t.Fatalf("struct stats diverge: %+v vs %+v", seq.Struct(), par.Struct())
	}
	sp, sm := seq.ProbeSum(queries)
	pp, pm := par.ProbeSum(queries)
	if sp != pp || sm != pm {
		t.Fatalf("probe sums diverge: (%d,%d) vs (%d,%d)", sp, sm, pp, pm)
	}
	// A cancelled pool falls back to the sequential path and reports the
	// cancellation, leaving the index fully rebuilt either way.
	cancelled, cause := context.WithCancel(context.Background())
	cause()
	third := mk()
	if err := third.RetrainParallel(cancelled, engine.New(4)); err == nil {
		t.Fatal("cancelled rebuild reported success")
	}
	if third.Stats() != seq.Stats() {
		t.Fatalf("fallback rebuild diverges: %+v vs %+v", third.Stats(), seq.Stats())
	}
}

// TestInsertCostOracle: the pure cost oracle prices exactly what the real
// insert then pays.
func TestInsertCostOracle(t *testing.T) {
	ks := fixture(t, 200, 5)
	x, err := New(ks, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(99)
	for i := 0; i < 300; i++ {
		k := rng.Int63n(ks.Max() + 100)
		j, _ := x.v.route(k)
		if x.v.nodes[j].contains(k) {
			continue
		}
		want := x.InsertCost(j, k)
		before := x.shiftWrites
		if acc, _ := x.Insert(k); !acc {
			t.Fatalf("fresh key %d rejected", k)
		}
		if got := x.shiftWrites - before; got != int64(want) {
			t.Fatalf("InsertCost(%d)=%d but insert paid %d", k, want, got)
		}
	}
}
