package alex

// Property tests: for random seeded insert sequences, the gapped-array
// invariants hold after EVERY operation. checkInvariants is the single
// structural oracle — the fuzz harness replays it on adversarial byte
// streams, the property tests on seeded random streams.

import (
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// checkInvariants asserts every structural invariant of the index:
//
//   - per leaf: the slot array is non-decreasing, occupied keys strictly
//     increase, every free slot copies its nearest occupied left neighbour
//     (leading gaps copy the first key), and used matches the bitmap;
//   - across leaves: key ranges are disjoint and ordered, every stored key
//     routes back to the leaf holding it, and lows[i] bounds leaf i's keys
//     from below (leaf 0 absorbs anything smaller);
//   - density: no leaf sits at or above the split threshold (splits resolve
//     within the insert that crossed them), so inserts always find a gap;
//   - fanout: the leaf count respects the root's fanout limit (cascades
//     resolve within the triggering insert);
//   - search: every stored key is found, with the model's prediction error
//     covered by the exponential-search envelope (probes and window >= 1);
//   - content: Len/Keys equal the reference mirror exactly.
func checkInvariants(t testing.TB, x *Index, mirror keys.Set) {
	t.Helper()
	total := 0
	for i, nd := range x.v.nodes {
		capSlots := len(nd.slots)
		used := 0
		prevKey := int64(-1)
		firstSeen := false
		var left int64
		for s := 0; s < capSlots; s++ {
			if s > 0 && nd.slots[s] < nd.slots[s-1] {
				t.Fatalf("leaf %d: slots decrease at %d (%d -> %d)", i, s, nd.slots[s-1], nd.slots[s])
			}
			if nd.occ[s] {
				used++
				if nd.slots[s] <= prevKey && firstSeen {
					t.Fatalf("leaf %d: occupied keys not strictly increasing at slot %d", i, s)
				}
				prevKey, left, firstSeen = nd.slots[s], nd.slots[s], true
				continue
			}
			want := left
			if !firstSeen {
				want = nd.firstKey()
			}
			if nd.slots[s] != want {
				t.Fatalf("leaf %d: gap slot %d holds %d, want copy %d", i, s, nd.slots[s], want)
			}
		}
		if used != nd.used {
			t.Fatalf("leaf %d: used=%d but bitmap counts %d", i, nd.used, used)
		}
		if used == 0 {
			t.Fatalf("leaf %d: empty", i)
		}
		if nd.splitDue() {
			t.Fatalf("leaf %d: at split density %d/%d after op", i, nd.used, capSlots)
		}
		if i > 0 && nd.firstKey() < x.v.lows[i] {
			t.Fatalf("leaf %d: min key %d below routing boundary %d", i, nd.firstKey(), x.v.lows[i])
		}
		if i+1 < len(x.v.nodes) {
			info := x.NodeInfo(i)
			if info.MaxKey >= x.v.lows[i+1] {
				t.Fatalf("leaf %d: max key %d reaches next boundary %d", i, info.MaxKey, x.v.lows[i+1])
			}
		}
		total += used
	}
	if total != x.v.total {
		t.Fatalf("total=%d but leaves hold %d", x.v.total, total)
	}
	if len(x.v.nodes) > x.fanoutLimit {
		t.Fatalf("fanout %d exceeds limit %d after op", len(x.v.nodes), x.fanoutLimit)
	}
	if x.Len() != mirror.Len() {
		t.Fatalf("Len=%d, mirror has %d", x.Len(), mirror.Len())
	}
	if !x.Keys().Equal(mirror) {
		t.Fatal("content diverged from mirror")
	}
	st := x.Stats()
	for i := 0; i < mirror.Len(); i++ {
		r := x.Lookup(mirror.At(i))
		if !r.Found {
			t.Fatalf("stored key %d not found", mirror.At(i))
		}
		if r.Probes < 1 || r.Window < 1 {
			t.Fatalf("lookup of %d: probes=%d window=%d", mirror.At(i), r.Probes, r.Window)
		}
		if r.Window > st.Window {
			t.Fatalf("lookup window %d exceeds the stats envelope %d", r.Window, st.Window)
		}
	}
}

func TestGappedArrayInvariantsRandom(t *testing.T) {
	for _, seed := range []uint64{1, 7, 5416} {
		rng := xrand.New(seed)
		initial, err := dataset.Uniform(rng, 150, 7500)
		if err != nil {
			t.Fatal(err)
		}
		x, err := New(initial, 16)
		if err != nil {
			t.Fatal(err)
		}
		mirror := initial
		checkInvariants(t, x, mirror)
		for op := 0; op < 500; op++ {
			k := rng.Int63n(9000)
			acc, _ := x.Insert(k)
			if acc != !mirror.Contains(k) {
				t.Fatalf("seed %d op %d: Insert(%d) accepted=%v, mirror says %v",
					seed, op, k, acc, !mirror.Contains(k))
			}
			if acc {
				mirror, _ = mirror.Insert(k)
			}
			checkInvariants(t, x, mirror)
		}
		// An explicit rebuild restores ~50% density everywhere and keeps
		// every invariant and every key.
		x.Retrain()
		checkInvariants(t, x, mirror)
	}
}

// TestGappedArrayInvariantsClustered drives the adversarial shape the
// cascade attack exploits — tightly clustered inserts into one region —
// through the same oracle, checking shifts, splits, and cascades leave the
// structure sound at every step.
func TestGappedArrayInvariantsClustered(t *testing.T) {
	initial, err := dataset.Uniform(xrand.New(3), 64, 64_000)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(initial, 8)
	if err != nil {
		t.Fatal(err)
	}
	mirror := initial
	base := initial.At(initial.Len() / 2)
	for d := int64(1); d <= 400; d++ {
		for _, k := range []int64{base + d, base - d} {
			if acc, _ := x.Insert(k); acc {
				mirror, _ = mirror.Insert(k)
			}
			checkInvariants(t, x, mirror)
		}
	}
	if x.Struct().Splits == 0 {
		t.Fatal("clustered inserts never split a leaf — the scenario exercised nothing")
	}
	if x.Struct().Cascades == 0 {
		t.Fatal("clustered inserts never cascaded — the scenario exercised nothing")
	}
}
