package alex

// The index.Backend face: three planes plus the structural-accounting
// surface core.CascadeAttack reads. The read state is a view — the node
// table, routing boundaries, and router model — copied by value into
// snapshots; node pages are copy-on-write (shared flags), so Snapshot() is
// O(#leaves) and a held snapshot survives arbitrary later inserts, splits,
// cascades, and retrains (DESIGN.md §9).

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
)

var (
	_ index.Backend           = (*Index)(nil)
	_ index.RebuildSizer      = (*Index)(nil)
	_ index.ParallelRetrainer = (*Index)(nil)
	_ index.TriggerPredictor  = (*Index)(nil)
)

// view is the immutable-by-convention read state: leaves in key order, each
// leaf's routing lower boundary (keys in [lows[i], lows[i+1]) live in leaf
// i; leaf 0 additionally absorbs anything below lows[0]), and the root's
// linear router over those boundaries.
type view struct {
	nodes  []*node
	lows   []int64
	router line
	total  int
}

// route picks the leaf for k: clamped router prediction, then a boundary
// walk (each boundary comparison is a probe).
func (v *view) route(k int64) (leaf, probes int) {
	if len(v.nodes) == 1 {
		return 0, 0
	}
	j := clampSlot(v.router.at(k), len(v.nodes))
	for j > 0 {
		probes++
		if v.lows[j] > k {
			j--
		} else {
			break
		}
	}
	for j+1 < len(v.nodes) {
		probes++
		if v.lows[j+1] <= k {
			j++
		} else {
			break
		}
	}
	return j, probes
}

func (v *view) lookup(k int64) index.LookupResult {
	j, rp := v.route(k)
	nd := v.nodes[j]
	pos, np, win := nd.lowerBound(k)
	res := index.LookupResult{Probes: rp + np, Window: win}
	if pos < len(nd.slots) {
		res.Probes++
		res.Found = nd.slots[pos] == k
	}
	return res
}

func (v *view) probeSum(queryKeys []int64) (probes int64, notFound int) {
	for _, k := range queryKeys {
		r := v.lookup(k)
		probes += int64(r.Probes)
		if !r.Found {
			notFound++
		}
	}
	return probes, notFound
}

func (v *view) keySet() keys.Set {
	out := make([]int64, 0, v.total)
	for _, nd := range v.nodes {
		out = nd.keysInto(out)
	}
	return keys.FromSorted(out)
}

// losses computes the Stats model columns in one pass: the in-sample MSE
// recorded at each leaf's last fit (ModelLoss), the CURRENT models' MSE
// against the CURRENT slot placements (ContentLoss — gap inserts and shifts
// move keys off their predicted slots, so structural churn is visible here
// before any rebuild absorbs it), and the widest per-leaf error envelope as
// the guaranteed search window.
func (v *view) losses() (model, content float64, window int) {
	var sseFit, fitN, sseNow float64
	var maxErr float64
	for _, nd := range v.nodes {
		sseFit += nd.sseFit
		fitN += float64(nd.fitN)
		// A leaf's guaranteed window never exceeds its own slot array — the
		// exponential search is bounded by the array ends — so the error
		// contribution is capped there too (extreme keys can push raw model
		// error past integer range otherwise).
		errCap := float64(len(nd.slots))
		for i, ok := range nd.occ {
			if !ok {
				continue
			}
			e := float64(i) - nd.model.at(nd.slots[i])
			sseNow += e * e
			a := math.Abs(e)
			if a > errCap {
				a = errCap
			}
			if a > maxErr {
				maxErr = a
			}
		}
	}
	if fitN > 0 {
		model = sseFit / fitN
	}
	if v.total > 0 {
		content = sseNow / float64(v.total)
	}
	return model, content, 2*int(math.Ceil(maxErr)) + 1
}

// snapshot is the frozen read plane: a value copy of the view whose node
// pages are marked shared at capture.
type snapshot struct{ v view }

func (s *snapshot) Lookup(k int64) index.LookupResult { return s.v.lookup(k) }
func (s *snapshot) ProbeSum(q []int64) (int64, int)   { return s.v.probeSum(q) }
func (s *snapshot) Len() int                          { return s.v.total }
func (s *snapshot) Keys() keys.Set                    { return s.v.keySet() }

// StructStats is the cumulative structural-maintenance accounting — the raw
// material of the cascade attack's damage score. ShiftWrites counts every
// slot write paid by model-based inserts (gap copies and shifts);
// SplitKeys/CascadeKeys count the keys rehomed by leaf splits and by
// fanout-overflow rebuilds.
type StructStats struct {
	ShiftWrites int64
	Splits      int
	SplitKeys   int64
	Cascades    int
	CascadeKeys int64
	Nodes       int
	FanoutLimit int
}

// Cost is the total slot-write cost attributable to structural
// maintenance: shift/fill writes plus every key rehomed by a split or a
// cascade rebuild.
func (s StructStats) Cost() int64 { return s.ShiftWrites + s.SplitKeys + s.CascadeKeys }

// NodeInfo is one leaf's externally visible shape.
type NodeInfo struct {
	Used, Cap      int
	RouteLo        int64 // routing lower boundary (lows[i])
	MinKey, MaxKey int64 // stored key range
}

// Density is the leaf's occupancy fraction — what the cascade attacker
// ranks targets by.
func (n NodeInfo) Density() float64 { return float64(n.Used) / float64(n.Cap) }

// Index is the two-level gapped-array learned index. Like every backend it
// is single-writer: Insert/Retrain must not run concurrently with anything,
// while the read plane may be fanned out between mutations.
type Index struct {
	v           view
	viewShared  bool // v.nodes / v.lows aliased by a snapshot
	leafTarget  int
	fanoutLimit int
	// balancedSplit switches leaf splits from the midpoint count cut to the
	// widest key-space gap near the middle (the density-balancing defense;
	// see NewBalanced).
	balancedSplit bool

	retrains    int
	lastRebuild int

	shiftWrites int64
	splits      int
	splitKeys   int64
	cascades    int
	cascadeKeys int64
}

// New bulk-loads the index. leafTarget is the keys-per-leaf target for bulk
// load and rebuilds (<= 0 selects DefaultLeafTarget); smaller targets mean
// more, smaller leaves — and a fanout limit that cascades sooner.
func New(ks keys.Set, leafTarget int) (*Index, error) {
	if ks.Len() == 0 {
		return nil, errors.New("alex: need at least one key")
	}
	if leafTarget <= 0 {
		leafTarget = DefaultLeafTarget
	}
	if leafTarget < 2 {
		return nil, fmt.Errorf("alex: leaf target %d below minimum 2", leafTarget)
	}
	x := &Index{leafTarget: leafTarget}
	x.install(x.buildLeaves(ks.Keys(), nil))
	x.lastRebuild = ks.Len()
	return x, nil
}

// NewBalanced is New with density-balancing splits: instead of cutting an
// overflowing leaf at its midpoint count, the split lands on the widest
// KEY-SPACE gap in the middle half of the leaf. A cascade attacker's poison
// is a dense run of adjacent keys; a midpoint cut leaves that run straddling
// both halves so the next few drips re-trip both, while the gap cut isolates
// the dense run in one half and hands the other a wide, cheap range — the
// cost-aware structural defense the defense sweep measures (DESIGN.md §10).
// Lookups, snapshots, and every invariant are unchanged; only where splits
// cut differs.
func NewBalanced(ks keys.Set, leafTarget int) (*Index, error) {
	x, err := New(ks, leafTarget)
	if err != nil {
		return nil, err
	}
	x.balancedSplit = true
	return x, nil
}

// partition splits n keys into balanced chunks of ~leafTarget keys and
// returns the chunk boundaries (len = chunks+1).
func (x *Index) partition(n int) []int {
	chunks := (n + x.leafTarget - 1) / x.leafTarget
	if chunks < 1 {
		chunks = 1
	}
	base, rem := n/chunks, n%chunks
	bounds := make([]int, chunks+1)
	for c := 0; c < chunks; c++ {
		size := base
		if c < rem {
			size++
		}
		bounds[c+1] = bounds[c] + size
	}
	return bounds
}

// buildLeaves bulk-loads fresh leaves from the sorted key slice, fanning
// the per-leaf builds over the pool when one is supplied. Each leaf's fit
// runs entirely inside one task, so any worker count produces bit-identical
// leaves (the determinism contract).
func (x *Index) buildLeaves(sorted []int64, build func(chunks int, one func(c int) *node) []*node) []*node {
	bounds := x.partition(len(sorted))
	chunks := len(bounds) - 1
	one := func(c int) *node { return buildNode(sorted[bounds[c]:bounds[c+1]]) }
	if build != nil {
		return build(chunks, one)
	}
	nodes := make([]*node, chunks)
	for c := range nodes {
		nodes[c] = one(c)
	}
	return nodes
}

// install publishes a fresh leaf table: routing boundaries, router refit,
// fanout limit, and total — the slices are new, so any held snapshot keeps
// its own.
func (x *Index) install(nodes []*node) {
	lows := make([]int64, len(nodes))
	total := 0
	for i, nd := range nodes {
		lows[i] = nd.firstKey()
		total += nd.used
	}
	x.v = view{nodes: nodes, lows: lows, router: fitLine(lows), total: total}
	x.viewShared = false
	x.fanoutLimit = 2 * len(nodes)
	if x.fanoutLimit < minFanout {
		x.fanoutLimit = minFanout
	}
}

// Lookup is the probe-counted point query against the current state.
func (x *Index) Lookup(k int64) index.LookupResult { return x.v.lookup(k) }

// ProbeSum runs a lookup per query key; integer sums are
// partition-invariant, so callers may chunk across workers and fold.
func (x *Index) ProbeSum(queryKeys []int64) (int64, int) { return x.v.probeSum(queryKeys) }

// Len returns the stored key count.
func (x *Index) Len() int { return x.v.total }

// Keys materializes the content as a sorted set — the visible state an
// insertion adversary computes poison against.
func (x *Index) Keys() keys.Set { return x.v.keySet() }

// Snapshot freezes the read plane: the view is copied by value and every
// node page is marked shared, so later mutations clone pages instead of
// touching the captured ones. O(#leaves), no key copying.
func (x *Index) Snapshot() index.Snapshot {
	for _, nd := range x.v.nodes {
		nd.shared = true
	}
	x.viewShared = true
	return &snapshot{v: x.v}
}

// Insert places k through the router and the target leaf's model, shifting
// or gap-filling as the layout demands; accepted is false for duplicates
// and negative keys, retrained is true when the insert crossed a leaf's
// split threshold (and possibly cascaded into a full rebuild).
func (x *Index) Insert(k int64) (accepted, retrained bool) {
	if k < 0 {
		return false, false
	}
	j, _ := x.v.route(k)
	if x.v.nodes[j].contains(k) {
		return false, false
	}
	if x.viewShared {
		x.v.nodes = append([]*node(nil), x.v.nodes...)
		x.v.lows = append([]int64(nil), x.v.lows...)
		x.viewShared = false
	}
	nd := x.v.nodes[j]
	if nd.shared {
		nd = nd.clone()
		x.v.nodes[j] = nd
	}
	x.shiftWrites += int64(nd.insert(k))
	x.v.total++
	if !nd.splitDue() {
		return true, false
	}
	x.split(j)
	return true, true
}

// split replaces leaf i with two half-full leaves, refits the router, and
// cascades into a full rebuild when the fanout limit overflows.
func (x *Index) split(i int) {
	nd := x.v.nodes[i]
	ks := nd.keysInto(make([]int64, 0, nd.used))
	mid := x.splitPoint(ks)
	left, right := buildNode(ks[:mid]), buildNode(ks[mid:])
	nodes := make([]*node, 0, len(x.v.nodes)+1)
	nodes = append(nodes, x.v.nodes[:i]...)
	nodes = append(nodes, left, right)
	nodes = append(nodes, x.v.nodes[i+1:]...)
	lows := make([]int64, 0, len(x.v.lows)+1)
	lows = append(lows, x.v.lows[:i+1]...) // left keeps the old routing boundary
	lows = append(lows, right.firstKey())
	lows = append(lows, x.v.lows[i+1:]...)
	x.v.nodes, x.v.lows = nodes, lows
	x.v.router = fitLine(lows)
	x.viewShared = false
	x.splits++
	x.splitKeys += int64(len(ks))
	x.retrains++
	x.lastRebuild = len(ks)
	if len(nodes) > x.fanoutLimit {
		x.cascades++
		x.cascadeKeys += int64(x.v.total)
		x.rebuild(nil)
	}
}

// splitPoint picks where a split cuts the leaf's key run: the midpoint by
// default, or — under balanced splits — the widest key-space gap within the
// middle half [len/4, 3·len/4], ties broken toward the midpoint and then
// the lower index. Both halves are always non-empty, and the choice is a
// pure function of the key run, so determinism is untouched.
func (x *Index) splitPoint(ks []int64) int {
	mid := len(ks) / 2
	if !x.balancedSplit {
		return mid
	}
	lo, hi := len(ks)/4, 3*len(ks)/4
	if lo < 1 {
		lo = 1
	}
	if hi > len(ks)-1 {
		hi = len(ks) - 1
	}
	best, bestGap := mid, int64(-1)
	for j := lo; j <= hi; j++ {
		g := ks[j] - ks[j-1]
		switch {
		case g > bestGap:
			best, bestGap = j, g
		case g == bestGap && absInt(j-mid) < absInt(best-mid):
			best = j
		}
	}
	return best
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// rebuild repartitions every key into fresh leaves (the cascade / explicit
// retrain path).
func (x *Index) rebuild(build func(chunks int, one func(c int) *node) []*node) {
	sorted := make([]int64, 0, x.v.total)
	for _, nd := range x.v.nodes {
		sorted = nd.keysInto(sorted)
	}
	n := len(sorted)
	x.install(x.buildLeaves(sorted, build))
	x.retrains++
	x.lastRebuild = n
}

// Retrain is the explicit maintenance hook: a full rebuild at the leaf
// target (every leaf back to ~50% density, fresh models, fresh router).
func (x *Index) Retrain() { x.rebuild(nil) }

// RetrainParallel fans the rebuild's per-leaf bulk loads across the pool
// (index.ParallelRetrainer). Results are bit-identical to Retrain: leaves
// are built in task-index order and each fit stays inside one task.
func (x *Index) RetrainParallel(ctx context.Context, pool *engine.Pool) error {
	var failed error
	x.rebuild(func(chunks int, one func(c int) *node) []*node {
		nodes, err := engine.Map(ctx, pool, chunks, func(c int) (*node, error) { return one(c), nil })
		if err != nil {
			failed = err
			nodes = make([]*node, chunks)
			for c := range nodes {
				nodes[c] = one(c)
			}
		}
		return nodes
	})
	return failed
}

// RetrainPossible reports whether the NEXT insert could split a leaf
// (index.TriggerPredictor): true iff some leaf is one accepted key from its
// threshold. Exact for the leaf the key routes to, conservative overall.
func (x *Index) RetrainPossible() bool {
	for _, nd := range x.v.nodes {
		if nd.nearSplit() {
			return true
		}
	}
	return false
}

// LastRebuildSize reports the keys rehomed by the most recent maintenance
// event (index.RebuildSizer): a split prices its leaf, a cascade or
// explicit retrain the whole index.
func (x *Index) LastRebuildSize() int { return x.lastRebuild }

// Stats reports the uniform backend summary. Buffered is always zero —
// gapped arrays absorb writes in place; what other backends express as
// buffer staleness shows up here as ContentLoss drift and structural cost.
func (x *Index) Stats() index.Stats {
	model, content, window := x.v.losses()
	return index.Stats{
		Keys:        x.v.total,
		Retrains:    x.retrains,
		ModelLoss:   model,
		ContentLoss: content,
		Window:      window,
	}
}

// Struct returns the cumulative structural-maintenance accounting.
func (x *Index) Struct() StructStats {
	return StructStats{
		ShiftWrites: x.shiftWrites,
		Splits:      x.splits,
		SplitKeys:   x.splitKeys,
		Cascades:    x.cascades,
		CascadeKeys: x.cascadeKeys,
		Nodes:       len(x.v.nodes),
		FanoutLimit: x.fanoutLimit,
	}
}

// NumNodes returns the current leaf count.
func (x *Index) NumNodes() int { return len(x.v.nodes) }

// NodeInfo describes leaf i's shape — the structural state the cascade
// attacker targets by density.
func (x *Index) NodeInfo(i int) NodeInfo {
	nd := x.v.nodes[i]
	info := NodeInfo{Used: nd.used, Cap: len(nd.slots), RouteLo: x.v.lows[i], MinKey: nd.firstKey()}
	for j := len(nd.slots) - 1; j >= 0; j-- {
		if nd.occ[j] {
			info.MaxKey = nd.slots[j]
			break
		}
	}
	return info
}

// NodeKeys returns leaf i's stored keys in order.
func (x *Index) NodeKeys(i int) []int64 {
	nd := x.v.nodes[i]
	return nd.keysInto(make([]int64, 0, nd.used))
}

// InsertCost prices an insert of k into leaf i — the slot writes the
// current layout would pay — WITHOUT mutating anything. It is a pure read
// (safe to fan across workers between mutations); the caller must route k
// to leaf i and k must be absent. This is the cascade attacker's oracle.
func (x *Index) InsertCost(i int, k int64) int {
	return x.v.nodes[i].plan(k).writes
}
