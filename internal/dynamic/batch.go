package dynamic

// Sorted-batch probe kernel (index.BatchReader, DESIGN.md §12). For a
// sorted query batch the per-key Lookup's memory walks are redundant: every
// comparison outcome inside the envelope binary search is a pure function
// of the key's lower-bound rank in the base, and likewise for the buffer
// fallback. One merged gallop pass over base and buffer resolves all ranks,
// then each key's probe count is an O(1) read from the shared probe-depth
// tables (index.ProbeDepths) — the count depends only on (window size,
// rank in window) — so (probes, notFound) are bit-identical to view.Lookup
// summed per key with no mid-sequence walk at all.

import (
	"math"

	"cdfpoison/internal/index"
)

var (
	_ index.BatchReader = (*Index)(nil)
	_ index.BatchReader = (*view)(nil)
)

// ProbeSumSorted evaluates a sorted (non-decreasing) query batch against
// the current state, bit-identical to ProbeSum on the same batch.
func (x *Index) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	return x.v.ProbeSumSorted(sorted)
}

// ProbeSumSorted is the snapshot-side batch kernel: one forward gallop
// cursor per array (base, buffer), O(1) arithmetic replay per key via the
// shared probe-depth tables (index.ProbeDepths). The envelope search's
// probe count is a pure function of (window size, rank in window): Hit for
// base keys — the retrain-time envelope guarantees their rank lies inside
// the window — and Gap (clamped) for everything else, which exhausts the
// window on the same descent the per-key loop walks.
func (v *view) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	base := v.base.Keys()
	nb := len(base)
	buffer := v.buffer
	var bufTab *index.SearchDepths
	if len(buffer) > 0 {
		bufTab = index.ProbeDepths(len(buffer))
	}
	// An unclamped window's size is a pure function of the envelope span
	// and the prediction's fractional part: with f = frac(pred+eLo),
	// s = ceil(f + span) + 1 ∈ {ceil(span)+1, ceil(span)+2}. Prefetch both
	// tables once so the hot loop selects by arithmetic, not by lock; only
	// windows clamped at the array edges fall back to the shared cache,
	// through a 2-entry MRU so a run of edge keys pays the lock once.
	eLo, eHi := v.eLo, v.eHi
	s0 := int(math.Ceil(eHi-eLo)) + 1
	var pair [2]*index.SearchDepths
	if nb > 0 {
		pair[0] = index.ProbeDepths(s0)
		pair[1] = index.ProbeDepths(s0 + 1)
	}
	var mruTabs [2]*index.SearchDepths
	mruSizes := [2]int{-1, -1}
	posB, posU := 0, 0
	for _, k := range sorted {
		// Gallop fast path: over a dense sorted batch the cursor advances
		// by 0 or 1 almost always; gallop only for real jumps.
		if posB < nb && base[posB] < k {
			posB++
			if posB < nb && base[posB] < k {
				posB = index.GallopLower(base, k, posB+1)
			}
		}
		foundBase := posB < nb && base[posB] == k
		pred := v.model.Predict(k)
		lo := int(math.Floor(pred+eLo)) - 1
		hi := int(math.Ceil(pred+eHi)) - 1
		clamped := false
		if lo < 0 {
			lo, clamped = 0, true
		}
		if hi > nb-1 {
			hi, clamped = nb-1, true
		}
		found := false
		if lo <= hi {
			s := hi - lo + 1
			var baseTab *index.SearchDepths
			if !clamped {
				baseTab = pair[s-s0]
			} else {
				switch s {
				case mruSizes[0]:
					baseTab = mruTabs[0]
				case mruSizes[1]:
					baseTab = mruTabs[1]
				default:
					baseTab = index.ProbeDepths(s)
					mruSizes[1], mruTabs[1] = mruSizes[0], mruTabs[0]
					mruSizes[0], mruTabs[0] = s, baseTab
				}
			}
			if foundBase && posB >= lo && posB <= hi {
				probes += int64(baseTab.Hit[posB-lo])
				found = true
			} else {
				g := posB - lo
				if g < 0 {
					g = 0
				} else if g > s {
					g = s
				}
				probes += int64(baseTab.Gap[g])
			}
		}
		if !found && bufTab != nil {
			// Buffer fallback: the plain binary search over the whole
			// buffer, replayed from the same tables.
			posU = index.GallopLower(buffer, k, posU)
			if posU < len(buffer) && buffer[posU] == k {
				probes += int64(bufTab.Hit[posU])
				found = true
			} else {
				probes += int64(bufTab.Gap[posU])
			}
		}
		if !found {
			notFound++
		}
	}
	return probes, notFound
}
