package dynamic

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePolicy turns the retrain-policy spec syntax shared by the lispoison
// online and serve subcommands — "manual", "every:K", or "buffer:K" with
// K >= 1 — into a RetrainPolicy. It is total: any input yields either a
// valid policy or an error, never a panic (FuzzParsePolicy enforces this),
// and every successful parse round-trips through RetrainPolicy.String
// modulo the ':' vs '-' separator.
func ParsePolicy(s string) (RetrainPolicy, error) {
	switch {
	case s == "manual":
		return ManualPolicy(), nil
	case strings.HasPrefix(s, "every:"):
		k, err := parsePolicyK(strings.TrimPrefix(s, "every:"))
		if err != nil {
			return RetrainPolicy{}, fmt.Errorf("policy %q: want every:K with K >= 1", s)
		}
		return EveryKInserts(k), nil
	case strings.HasPrefix(s, "buffer:"):
		k, err := parsePolicyK(strings.TrimPrefix(s, "buffer:"))
		if err != nil {
			return RetrainPolicy{}, fmt.Errorf("policy %q: want buffer:K with K >= 1", s)
		}
		return BufferLimit(k), nil
	default:
		return RetrainPolicy{}, fmt.Errorf("unknown policy %q (want manual | every:K | buffer:K)", s)
	}
}

func parsePolicyK(s string) (int, error) {
	k, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("K must be >= 1, got %d", k)
	}
	return k, nil
}
