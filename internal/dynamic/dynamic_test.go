package dynamic

import (
	"reflect"
	"testing"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func mustSet(t *testing.T, ks []int64) keys.Set {
	t.Helper()
	s, err := keys.NewStrict(ks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(mustSet(t, []int64{1}), ManualPolicy()); err == nil {
		t.Fatal("single-key index accepted")
	}
	if _, err := New(keys.Set{}, ManualPolicy()); err == nil {
		t.Fatal("empty index accepted")
	}
	if _, err := New(mustSet(t, []int64{1, 5}), EveryKInserts(0)); err == nil {
		t.Fatal("EveryK with K=0 accepted")
	}
	if _, err := New(mustSet(t, []int64{1, 5}), BufferLimit(-1)); err == nil {
		t.Fatal("BufferLimit with K=-1 accepted")
	}
	if _, err := New(mustSet(t, []int64{1, 5}), RetrainPolicy{Kind: PolicyKind(99)}); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, tc := range []struct{ got, want string }{
		{ManualPolicy().String(), "manual"},
		{EveryKInserts(8).String(), "every-k-8"},
		{BufferLimit(64).String(), "buffer-64"},
		{Manual.String(), "manual"},
		{EveryK.String(), "every-k"},
		{BufferThreshold.String(), "buffer"},
		{PolicyKind(42).String(), "PolicyKind(42)"},
	} {
		if tc.got != tc.want {
			t.Errorf("policy string %q, want %q", tc.got, tc.want)
		}
	}
}

// TestEmptyBufferRetrain: retraining with nothing buffered must advance the
// retrain counter, keep the key content identical, and refit to the exact
// same model bytes (the fit is deterministic).
func TestEmptyBufferRetrain(t *testing.T) {
	ks := mustSet(t, []int64{2, 10, 11, 40, 41, 90})
	x, err := New(ks, ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	before := x.Model()
	x.Retrain()
	x.Retrain()
	if x.Retrains() != 2 {
		t.Fatalf("retrains = %d, want 2", x.Retrains())
	}
	if !reflect.DeepEqual(x.Model(), before) {
		t.Fatalf("empty-buffer retrain changed the model: %v -> %v", before, x.Model())
	}
	if !x.Keys().Equal(ks) {
		t.Fatal("empty-buffer retrain changed the content")
	}
}

// TestRetrainOnEveryInsert: EveryKInserts(1) must merge immediately, so the
// buffer never survives an Insert call and every call retrains.
func TestRetrainOnEveryInsert(t *testing.T) {
	x, err := New(mustSet(t, []int64{0, 100}), EveryKInserts(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []int64{50, 25, 75} {
		accepted, retrained := x.Insert(k)
		if !accepted || !retrained {
			t.Fatalf("insert %d: accepted=%v retrained=%v, want true/true", k, accepted, retrained)
		}
		if x.BufferLen() != 0 {
			t.Fatalf("buffer holds %d keys after immediate-merge insert", x.BufferLen())
		}
		if x.Retrains() != i+1 {
			t.Fatalf("retrains = %d after %d inserts", x.Retrains(), i+1)
		}
	}
	if got := x.Base().Len(); got != 5 {
		t.Fatalf("base has %d keys, want 5", got)
	}
}

// TestDuplicateInsert: duplicates are rejected; under EveryK they still
// advance the write counter (a write-count schedule ticks on writes), while
// under BufferThreshold they do not move the buffer toward its limit.
func TestDuplicateInsert(t *testing.T) {
	x, err := New(mustSet(t, []int64{0, 100}), EveryKInserts(2))
	if err != nil {
		t.Fatal(err)
	}
	if accepted, retrained := x.Insert(100); accepted || retrained {
		t.Fatalf("duplicate of base key: accepted=%v retrained=%v", accepted, retrained)
	}
	// The duplicate above counted as write #1; this accepted write is #2 and
	// must trigger the EveryK(2) retrain.
	if accepted, retrained := x.Insert(50); !accepted || !retrained {
		t.Fatalf("second write: accepted=%v retrained=%v, want true/true", accepted, retrained)
	}

	y, err := New(mustSet(t, []int64{0, 100}), BufferLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	y.Insert(50)
	for i := 0; i < 5; i++ {
		if accepted, retrained := y.Insert(50); accepted || retrained {
			t.Fatalf("buffered duplicate: accepted=%v retrained=%v", accepted, retrained)
		}
	}
	if y.BufferLen() != 1 || y.Retrains() != 0 {
		t.Fatalf("duplicates advanced the buffer policy: buffer=%d retrains=%d", y.BufferLen(), y.Retrains())
	}
	if _, retrained := y.Insert(60); !retrained {
		t.Fatal("buffer limit 2 did not trigger at the second distinct key")
	}

	if accepted, _ := x.Insert(-3); accepted {
		t.Fatal("negative key accepted")
	}
}

// TestBufferThresholdBoundary: the retrain fires exactly when the buffer
// REACHES the limit, not before.
func TestBufferThresholdBoundary(t *testing.T) {
	x, err := New(mustSet(t, []int64{0, 1000}), BufferLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{10, 20} {
		if _, retrained := x.Insert(k); retrained {
			t.Fatalf("retrained at buffer size %d < 3", x.BufferLen())
		}
	}
	if x.BufferLen() != 2 {
		t.Fatalf("buffer = %d, want 2", x.BufferLen())
	}
	if _, retrained := x.Insert(30); !retrained {
		t.Fatal("no retrain at buffer size 3")
	}
	if x.BufferLen() != 0 || x.Base().Len() != 5 {
		t.Fatalf("merge failed: buffer=%d base=%d", x.BufferLen(), x.Base().Len())
	}
}

// TestMergedEqualsFreshBuild: after any insert/retrain sequence, the index
// must be indistinguishable from one built directly over the final content —
// same model, same envelope, same lookup costs (golden determinism).
func TestMergedEqualsFreshBuild(t *testing.T) {
	rng := xrand.New(7)
	initial, err := keys.New(xrand.SampleInt64s(rng, 500, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(initial, BufferLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		x.Insert(rng.Int63n(20_000))
	}
	x.Retrain() // flush the tail so base == full content

	fresh, err := New(x.Keys(), BufferLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x.Model(), fresh.Model()) {
		t.Fatalf("merged model %v != fresh model %v", x.Model(), fresh.Model())
	}
	if x.v.eLo != fresh.v.eLo || x.v.eHi != fresh.v.eHi {
		t.Fatalf("envelope (%v,%v) != fresh (%v,%v)", x.v.eLo, x.v.eHi, fresh.v.eLo, fresh.v.eHi)
	}
	for i := 0; i < x.Keys().Len(); i += 7 {
		k := x.Keys().At(i)
		a, b := x.Lookup(k), fresh.Lookup(k)
		if a != b {
			t.Fatalf("lookup(%d): merged %+v != fresh %+v", k, a, b)
		}
	}
}

// TestLookupFindsEverything: every stored key is found (base keys through
// the model envelope, buffered keys through the buffer search), and absent
// keys are not.
func TestLookupFindsEverything(t *testing.T) {
	rng := xrand.New(3)
	initial, err := keys.New(xrand.SampleInt64s(rng, 300, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(initial, ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var buffered []int64
	for len(buffered) < 40 {
		k := rng.Int63n(10_000)
		if accepted, _ := x.Insert(k); accepted {
			buffered = append(buffered, k)
		}
	}
	for i := 0; i < initial.Len(); i++ {
		r := x.Lookup(initial.At(i))
		if !r.Found || r.InBuffer {
			t.Fatalf("base key %d: %+v", initial.At(i), r)
		}
		if r.Probes < 1 {
			t.Fatalf("base key %d found with %d probes", initial.At(i), r.Probes)
		}
	}
	for _, k := range buffered {
		r := x.Lookup(k)
		if !r.Found || !r.InBuffer {
			t.Fatalf("buffered key %d: %+v", k, r)
		}
	}
	full := x.Keys()
	misses := 0
	for k := int64(0); k < 10_000 && misses < 50; k++ {
		if !full.Contains(k) {
			if r := x.Lookup(k); r.Found {
				t.Fatalf("absent key %d reported found", k)
			}
			misses++
		}
	}
}

// TestProbeSumMatchesLookups: ProbeSum must be the exact sum of per-key
// Lookup probes, and must be partition-invariant (the parallel-evaluation
// contract).
func TestProbeSumMatchesLookups(t *testing.T) {
	rng := xrand.New(11)
	initial, err := keys.New(xrand.SampleInt64s(rng, 400, 8_000))
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(initial, ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	queries := append(append([]int64{}, initial.Keys()...), 7777, 1)
	var want int64
	wantMiss := 0
	for _, k := range queries {
		r := x.Lookup(k)
		want += int64(r.Probes)
		if !r.Found {
			wantMiss++
		}
	}
	got, miss := x.ProbeSum(queries)
	if got != want || miss != wantMiss {
		t.Fatalf("ProbeSum = (%d, %d), want (%d, %d)", got, miss, want, wantMiss)
	}
	mid := len(queries) / 3
	a1, m1 := x.ProbeSum(queries[:mid])
	a2, m2 := x.ProbeSum(queries[mid:])
	if a1+a2 != want || m1+m2 != wantMiss {
		t.Fatal("ProbeSum is not partition-invariant")
	}
}

// TestStatsAndGrowth: growing the buffer degrades lookups measurably and
// Stats reports the state truthfully.
func TestStatsAndGrowth(t *testing.T) {
	initial := mustSet(t, []int64{0, 10, 20, 30, 40, 1000})
	x, err := New(initial, ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	st := x.Stats()
	if st.Keys != 6 || st.Buffered != 0 || st.Retrains != 0 || st.Window < 1 {
		t.Fatalf("initial stats: %+v", st)
	}
	for k := int64(100); k < 140; k++ {
		x.Insert(k)
	}
	st = x.Stats()
	if st.Keys != 46 || st.Buffered != 40 {
		t.Fatalf("post-insert stats: %+v", st)
	}
	x.Retrain()
	st = x.Stats()
	if st.Buffered != 0 || st.Retrains != 1 || st.Keys != 46 {
		t.Fatalf("post-retrain stats: %+v", st)
	}
	if x.Model().N != 46 {
		t.Fatalf("model trained on %d keys, want 46", x.Model().N)
	}
}
