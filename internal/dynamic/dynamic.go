// Package dynamic implements an updatable learned index: a CDF regression
// model trained over a base key set, plus a sorted delta buffer absorbing
// inserts between retrains, with pluggable merge-and-retrain policies.
//
// The paper attacks a STATIC index — trained once over data the adversary
// poisons before initialization. Its successors ("Poisoning Learned Index
// Structures: Static and Dynamic Adversarial Attacks on ALEX"; "Algorithmic
// Complexity Attacks on Dynamic Learned Indexes") show the more realistic
// threat is an adversary drip-feeding keys into an UPDATABLE index across
// retrain cycles. This package provides the victim for that online scenario
// (core.OnlinePoisonAttack): a delta-buffer index in the style of ALEX /
// PGM's dynamic variants, reduced to the same single-regression substrate
// the rest of the repository measures.
//
// Structure:
//
//   - The BASE is an immutable keys.Set the current model was trained on;
//     lookups over it use the model's prediction plus the guaranteed error
//     envelope recorded at training time (exactly the rmi package's
//     last-mile contract, for one model).
//   - The BUFFER is a small sorted slice of keys accepted since the last
//     retrain; lookups fall back to plain binary search over it. A growing
//     buffer degrades lookups even when the model is clean — one of the two
//     costs the online attacker can drive.
//   - A RETRAIN merges buffer into base and refits the model. When it
//     happens is the RetrainPolicy: after every K-th insert call, when the
//     buffer reaches a size threshold, or only on explicit Retrain() calls.
//
// The full read state (base, model, envelope, buffer) lives in one value —
// the VIEW — and Snapshot() freezes it in O(1): the base and model are
// immutable by construction and the buffer is copy-on-write (the next
// mutation clones it instead of editing in place), so a handed-out snapshot
// keeps answering from the state at capture time no matter what the live
// index does afterwards. This is the read plane of index.Backend (DESIGN.md
// §7) and what the background-retrain pipeline publishes.
//
// Everything is deterministic: no RNG, no map iteration, no wall clock.
// Identical insert sequences produce identical indexes, which the online
// attack's worker-equivalence tests rely on.
package dynamic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// Index implements index.Backend, the contract the serving scenarios and
// the backend comparison sweep are written against.
var _ index.Backend = (*Index)(nil)

// ErrTooFew is returned when constructing an index over fewer than two keys:
// a CDF regression needs at least two points to be meaningful.
var ErrTooFew = errors.New("dynamic: need at least two initial keys")

// PolicyKind enumerates the merge-and-retrain triggers.
type PolicyKind int

const (
	// Manual never retrains automatically; the owner calls Retrain().
	// In the online scenario this models a victim that rebuilds on a
	// maintenance schedule (one forced retrain per epoch).
	Manual PolicyKind = iota
	// EveryK retrains after every K-th call to Insert, counting attempts —
	// accepted or not. This models write-count maintenance schedules
	// (e.g. "rebuild every 10k writes"), which an adversary can tick
	// forward with duplicate inserts that never enter the data.
	EveryK
	// BufferThreshold retrains as soon as the delta buffer holds K accepted
	// keys — the classic bounded-buffer merge policy of dynamic learned
	// indexes (duplicates do not advance it).
	BufferThreshold
)

// String names the kind for reports and CSV cells.
func (k PolicyKind) String() string {
	switch k {
	case Manual:
		return "manual"
	case EveryK:
		return "every-k"
	case BufferThreshold:
		return "buffer"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// RetrainPolicy selects when the index merges its buffer and refits.
// The zero value is Manual.
type RetrainPolicy struct {
	Kind PolicyKind
	// K is the trigger parameter: insert-call period for EveryK, buffer
	// size for BufferThreshold; ignored by Manual.
	K int
}

// ManualPolicy retrains only on explicit Retrain() calls.
func ManualPolicy() RetrainPolicy { return RetrainPolicy{Kind: Manual} }

// EveryKInserts retrains after every k-th Insert call (k >= 1).
func EveryKInserts(k int) RetrainPolicy { return RetrainPolicy{Kind: EveryK, K: k} }

// BufferLimit retrains when the delta buffer reaches size k (k >= 1).
func BufferLimit(k int) RetrainPolicy { return RetrainPolicy{Kind: BufferThreshold, K: k} }

func (p RetrainPolicy) validate() error {
	switch p.Kind {
	case Manual:
		return nil
	case EveryK, BufferThreshold:
		if p.K < 1 {
			return fmt.Errorf("dynamic: %s policy needs K >= 1, got %d", p.Kind, p.K)
		}
		return nil
	default:
		return fmt.Errorf("dynamic: unknown policy kind %d", int(p.Kind))
	}
}

// String renders the policy compactly ("manual", "every-8", "buffer-64").
func (p RetrainPolicy) String() string {
	if p.Kind == Manual {
		return "manual"
	}
	return fmt.Sprintf("%s-%d", p.Kind, p.K)
}

// view is the complete read state of the index at one instant: the base
// set the model was trained on, the fitted model with its guaranteed error
// envelope, and the delta buffer. A *view is also the index's
// index.Snapshot: the base and model never mutate after a fit, and the
// buffer slice is copy-on-write (see Index.bufShared), so a view handed
// out by Snapshot() is frozen for good.
type view struct {
	base  keys.Set         // keys the current model was trained on
	model regression.Model // fitted on base at the last retrain
	// eLo/eHi bound (actual rank − predicted rank) over base, recorded at
	// retrain time: the guaranteed last-mile search envelope.
	eLo, eHi float64

	buffer []int64 // sorted, duplicate-free keys accepted since last retrain
}

var _ index.Snapshot = (*view)(nil)

// Index is an updatable learned index: base set + model + delta buffer.
// It is NOT safe for concurrent mutation; the online attack drives it from
// a single goroutine and parallelizes only pure reads.
// FitFunc is a pluggable CDF trainer: given the base set, produce the model
// lookups will navigate by. nil means regression.FitCDF — the exact
// least-squares fit the paper attacks. internal/robust provides
// poisoning-resistant implementations (Theil–Sen, trimmed least squares);
// the defense plane threads them in through NewWithFit (DESIGN.md §10).
type FitFunc func(keys.Set) (regression.Model, error)

type Index struct {
	policy RetrainPolicy
	// fitFn is the pluggable trainer; nil selects regression.FitCDF.
	fitFn FitFunc

	v view
	// bufShared marks the buffer slice as aliased by a handed-out snapshot:
	// the next buffer mutation must clone instead of editing in place, so
	// the snapshot keeps its capture-time contents.
	bufShared bool

	inserts  int // Insert calls since the last retrain (EveryK counter)
	retrains int // completed retrains (the initial fit is not counted)
	// lastFit is the size of the base the most recent (re)fit covered — what
	// a rebuild cost model prices (index.RebuildSizer).
	lastFit int
}

// New builds an index over the initial key set (>= 2 keys) and trains the
// first model. The initial fit does not count as a retrain.
func New(initial keys.Set, policy RetrainPolicy) (*Index, error) {
	return NewWithFit(initial, policy, nil)
}

// NewWithFit is New with a pluggable trainer: every (re)fit — the initial
// one and every policy or explicit retrain — goes through fit instead of
// regression.FitCDF. The error envelope is still recorded over the FULL
// base against the returned model, so lookups stay exact no matter which
// keys the trainer chose to down-weight or ignore. A nil fit selects
// regression.FitCDF (byte-identical to New).
func NewWithFit(initial keys.Set, policy RetrainPolicy, fit FitFunc) (*Index, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	if initial.Len() < 2 {
		return nil, ErrTooFew
	}
	x := &Index{policy: policy, fitFn: fit}
	if err := x.fit(initial); err != nil {
		return nil, err
	}
	return x, nil
}

// fit retrains the model and error envelope on the given base set. Handed-
// out snapshots are unaffected: they copied the view value, and fit only
// reassigns the live index's fields.
func (x *Index) fit(base keys.Set) error {
	train := x.fitFn
	if train == nil {
		train = regression.FitCDF
	}
	m, err := train(base)
	if err != nil {
		return err
	}
	x.v.base = base
	x.v.model = m
	x.v.eLo, x.v.eHi = math.Inf(1), math.Inf(-1)
	for i := 0; i < base.Len(); i++ {
		d := float64(i+1) - m.Predict(base.At(i))
		if d < x.v.eLo {
			x.v.eLo = d
		}
		if d > x.v.eHi {
			x.v.eHi = d
		}
	}
	x.lastFit = base.Len()
	return nil
}

// LastRebuildSize reports how many keys the most recent retrain refit —
// the size the background-retrain pipeline's cost model prices
// (index.RebuildSizer).
func (x *Index) LastRebuildSize() int { return x.lastFit }

// RetrainPossible reports whether the next Insert call could trigger a
// policy retrain (index.TriggerPredictor, conservative): never under
// Manual, at the K-th write under EveryK, and when one more accepted key
// would fill the buffer under BufferThreshold (a duplicate would not — the
// answer is a possibility, not a certainty).
func (x *Index) RetrainPossible() bool {
	switch x.policy.Kind {
	case EveryK:
		return x.inserts+1 >= x.policy.K
	case BufferThreshold:
		return len(x.v.buffer)+1 >= x.policy.K
	default: // Manual
		return false
	}
}

// Insert offers a key to the index. accepted is false when k is negative or
// already present (base or buffer); retrained is true when this call
// triggered a policy retrain. Note that with EveryK even a rejected
// duplicate advances the retrain counter — it was a write, and write-count
// schedules tick on writes.
func (x *Index) Insert(k int64) (accepted, retrained bool) {
	x.inserts++
	if k >= 0 && !x.contains(k) {
		i := sort.Search(len(x.v.buffer), func(i int) bool { return x.v.buffer[i] >= k })
		x.insertBuffer(i, k)
		accepted = true
	}
	switch x.policy.Kind {
	case EveryK:
		if x.inserts >= x.policy.K {
			retrained = true
		}
	case BufferThreshold:
		if len(x.v.buffer) >= x.policy.K {
			retrained = true
		}
	}
	if retrained {
		x.Retrain()
	}
	return accepted, retrained
}

// insertBuffer places k at buffer position i. When the buffer is aliased by
// a snapshot the whole slice is cloned (same O(len) cost as the in-place
// shift, plus one allocation); otherwise it shifts in place exactly as the
// pre-snapshot implementation did.
func (x *Index) insertBuffer(i int, k int64) {
	x.v.buffer = keys.InsertAt(x.v.buffer, i, k, x.bufShared)
	x.bufShared = false
}

// contains reports whether k is in the base or the buffer.
func (x *Index) contains(k int64) bool {
	if x.v.base.Contains(k) {
		return true
	}
	i := sort.Search(len(x.v.buffer), func(i int) bool { return x.v.buffer[i] >= k })
	return i < len(x.v.buffer) && x.v.buffer[i] == k
}

// Retrain merges the buffer into the base and refits the model. Retraining
// with an empty buffer is legal and counted: the model refits to the same
// data (byte-identically — the fit is deterministic) and the retrain
// counter still advances, which is what a wall-clock maintenance schedule
// does on an idle index.
func (x *Index) Retrain() {
	if len(x.v.buffer) > 0 {
		merged := x.v.base.Keys()
		out := make([]int64, 0, len(merged)+len(x.v.buffer))
		i, j := 0, 0
		for i < len(merged) && j < len(x.v.buffer) {
			if merged[i] < x.v.buffer[j] {
				out = append(out, merged[i])
				i++
			} else {
				out = append(out, x.v.buffer[j])
				j++
			}
		}
		out = append(out, merged[i:]...)
		out = append(out, x.v.buffer[j:]...)
		// fit cannot fail here: the merged set has >= 2 keys by construction.
		if err := x.fit(keys.FromSorted(out)); err != nil {
			panic(fmt.Sprintf("dynamic: refit after merge: %v", err))
		}
		x.v.buffer = nil
		x.bufShared = false
	} else if err := x.fit(x.v.base); err != nil {
		panic(fmt.Sprintf("dynamic: refit on empty buffer: %v", err))
	}
	x.inserts = 0
	x.retrains++
}

// Snapshot freezes the current read state in O(1): the returned view shares
// the immutable base and model, and marks the buffer copy-on-write so the
// next mutation clones rather than edits it. The snapshot's probe counts
// are identical to the live index's at capture time.
func (x *Index) Snapshot() index.Snapshot {
	x.bufShared = true
	s := x.v
	return &s
}

// Len returns the total number of stored keys (base + buffer).
func (x *Index) Len() int { return x.v.Len() }

// BufferLen returns the number of keys waiting in the delta buffer.
func (x *Index) BufferLen() int { return len(x.v.buffer) }

// Retrains returns the number of completed retrains.
func (x *Index) Retrains() int { return x.retrains }

// Policy returns the index's retrain policy.
func (x *Index) Policy() RetrainPolicy { return x.policy }

// Base returns the key set the current model was trained on.
func (x *Index) Base() keys.Set { return x.v.base }

// Model returns the current fitted model (trained at the last retrain).
func (x *Index) Model() regression.Model { return x.v.model }

// Keys materializes the full current content (base ∪ buffer) as a fresh
// key set. O(n); used by evaluation code, not by lookups.
func (x *Index) Keys() keys.Set { return x.v.Keys() }

// LookupResult reports a point query against the dynamic index: Probes
// counts key comparisons across the base window plus the buffer search,
// Window is the guaranteed base search-window width for this query, and
// InBuffer marks keys served from the delta buffer.
type LookupResult = index.LookupResult

// Lookup finds a key, counting comparisons. Base keys are searched within
// the model's guaranteed error envelope (always found); buffer keys fall
// back to binary search over the buffer. The probe count is the
// implementation-independent cost metric the online attack degrades.
func (x *Index) Lookup(k int64) LookupResult { return x.v.Lookup(k) }

// ProbeSum runs a lookup for every query key and returns the exact total
// probe count plus how many were not found. Integer sums are
// order-independent, so callers may partition queryKeys across workers and
// add the partial sums in any grouping without changing the result — the
// property core.OnlinePoisonAttack's parallel evaluation leans on.
func (x *Index) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return x.v.ProbeSum(queryKeys)
}

// Lookup is the shared probe-counted point query both the live index and
// its snapshots serve through.
func (v *view) Lookup(k int64) LookupResult {
	var res LookupResult
	pred := v.model.Predict(k)
	lo := int(math.Floor(pred+v.eLo)) - 1 // 1-based rank → 0-based index
	hi := int(math.Ceil(pred+v.eHi)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > v.base.Len()-1 {
		hi = v.base.Len() - 1
	}
	if lo <= hi {
		res.Window = hi - lo + 1
		for lo <= hi {
			mid := (lo + hi) / 2
			res.Probes++
			switch c := v.base.At(mid); {
			case c == k:
				res.Found = true
				return res
			case c < k:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
	}
	// Not in base: the buffer is unmodeled, plain binary search.
	blo, bhi := 0, len(v.buffer)-1
	for blo <= bhi {
		mid := (blo + bhi) / 2
		res.Probes++
		switch c := v.buffer[mid]; {
		case c == k:
			res.Found = true
			res.InBuffer = true
			return res
		case c < k:
			blo = mid + 1
		default:
			bhi = mid - 1
		}
	}
	return res
}

// ProbeSum is the snapshot's batch evaluation; integer sums are
// partition-invariant, exactly as on the live index.
func (v *view) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	for _, k := range queryKeys {
		r := v.Lookup(k)
		probes += int64(r.Probes)
		if !r.Found {
			notFound++
		}
	}
	return probes, notFound
}

// Len returns the total number of keys visible in this view.
func (v *view) Len() int { return v.base.Len() + len(v.buffer) }

// Keys materializes the view's full content (base ∪ buffer).
func (v *view) Keys() keys.Set {
	if len(v.buffer) == 0 {
		return v.base
	}
	bufSet := keys.FromSorted(v.buffer)
	return v.base.Union(bufSet)
}

// Stats is the uniform backend summary (index.Stats).
type Stats = index.Stats

// Stats computes the summary. ContentLoss evaluates the current model
// against the full current content (base ∪ buffer), so staleness between
// retrains is visible; ModelLoss is the in-sample MSE on the base alone.
func (x *Index) Stats() Stats {
	w := int(math.Ceil(x.v.eHi)-math.Floor(x.v.eLo)) + 1
	if w < 1 {
		w = 1
	}
	// EvaluateCDF cannot fail here: the index always holds >= 2 keys.
	content, _ := regression.EvaluateCDF(x.v.model.Line, x.Keys())
	return Stats{
		Keys:        x.Len(),
		Buffered:    len(x.v.buffer),
		Retrains:    x.retrains,
		ModelLoss:   x.v.model.Loss,
		ContentLoss: content,
		Window:      w,
	}
}
