// Package dynamic implements an updatable learned index: a CDF regression
// model trained over a base key set, plus a sorted delta buffer absorbing
// inserts between retrains, with pluggable merge-and-retrain policies.
//
// The paper attacks a STATIC index — trained once over data the adversary
// poisons before initialization. Its successors ("Poisoning Learned Index
// Structures: Static and Dynamic Adversarial Attacks on ALEX"; "Algorithmic
// Complexity Attacks on Dynamic Learned Indexes") show the more realistic
// threat is an adversary drip-feeding keys into an UPDATABLE index across
// retrain cycles. This package provides the victim for that online scenario
// (core.OnlinePoisonAttack): a delta-buffer index in the style of ALEX /
// PGM's dynamic variants, reduced to the same single-regression substrate
// the rest of the repository measures.
//
// Structure:
//
//   - The BASE is an immutable keys.Set the current model was trained on;
//     lookups over it use the model's prediction plus the guaranteed error
//     envelope recorded at training time (exactly the rmi package's
//     last-mile contract, for one model).
//   - The BUFFER is a small sorted slice of keys accepted since the last
//     retrain; lookups fall back to plain binary search over it. A growing
//     buffer degrades lookups even when the model is clean — one of the two
//     costs the online attacker can drive.
//   - A RETRAIN merges buffer into base and refits the model. When it
//     happens is the RetrainPolicy: after every K-th insert call, when the
//     buffer reaches a size threshold, or only on explicit Retrain() calls.
//
// Everything is deterministic: no RNG, no map iteration, no wall clock.
// Identical insert sequences produce identical indexes, which the online
// attack's worker-equivalence tests rely on.
package dynamic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// Index implements index.Backend, the contract the serving scenarios and
// the backend comparison sweep are written against.
var _ index.Backend = (*Index)(nil)

// ErrTooFew is returned when constructing an index over fewer than two keys:
// a CDF regression needs at least two points to be meaningful.
var ErrTooFew = errors.New("dynamic: need at least two initial keys")

// PolicyKind enumerates the merge-and-retrain triggers.
type PolicyKind int

const (
	// Manual never retrains automatically; the owner calls Retrain().
	// In the online scenario this models a victim that rebuilds on a
	// maintenance schedule (one forced retrain per epoch).
	Manual PolicyKind = iota
	// EveryK retrains after every K-th call to Insert, counting attempts —
	// accepted or not. This models write-count maintenance schedules
	// (e.g. "rebuild every 10k writes"), which an adversary can tick
	// forward with duplicate inserts that never enter the data.
	EveryK
	// BufferThreshold retrains as soon as the delta buffer holds K accepted
	// keys — the classic bounded-buffer merge policy of dynamic learned
	// indexes (duplicates do not advance it).
	BufferThreshold
)

// String names the kind for reports and CSV cells.
func (k PolicyKind) String() string {
	switch k {
	case Manual:
		return "manual"
	case EveryK:
		return "every-k"
	case BufferThreshold:
		return "buffer"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// RetrainPolicy selects when the index merges its buffer and refits.
// The zero value is Manual.
type RetrainPolicy struct {
	Kind PolicyKind
	// K is the trigger parameter: insert-call period for EveryK, buffer
	// size for BufferThreshold; ignored by Manual.
	K int
}

// ManualPolicy retrains only on explicit Retrain() calls.
func ManualPolicy() RetrainPolicy { return RetrainPolicy{Kind: Manual} }

// EveryKInserts retrains after every k-th Insert call (k >= 1).
func EveryKInserts(k int) RetrainPolicy { return RetrainPolicy{Kind: EveryK, K: k} }

// BufferLimit retrains when the delta buffer reaches size k (k >= 1).
func BufferLimit(k int) RetrainPolicy { return RetrainPolicy{Kind: BufferThreshold, K: k} }

func (p RetrainPolicy) validate() error {
	switch p.Kind {
	case Manual:
		return nil
	case EveryK, BufferThreshold:
		if p.K < 1 {
			return fmt.Errorf("dynamic: %s policy needs K >= 1, got %d", p.Kind, p.K)
		}
		return nil
	default:
		return fmt.Errorf("dynamic: unknown policy kind %d", int(p.Kind))
	}
}

// String renders the policy compactly ("manual", "every-8", "buffer-64").
func (p RetrainPolicy) String() string {
	if p.Kind == Manual {
		return "manual"
	}
	return fmt.Sprintf("%s-%d", p.Kind, p.K)
}

// Index is an updatable learned index: base set + model + delta buffer.
// It is NOT safe for concurrent mutation; the online attack drives it from
// a single goroutine and parallelizes only pure reads.
type Index struct {
	policy RetrainPolicy

	base  keys.Set         // keys the current model was trained on
	model regression.Model // fitted on base at the last retrain
	// eLo/eHi bound (actual rank − predicted rank) over base, recorded at
	// retrain time: the guaranteed last-mile search envelope.
	eLo, eHi float64

	buffer []int64 // sorted, duplicate-free keys accepted since last retrain

	inserts  int // Insert calls since the last retrain (EveryK counter)
	retrains int // completed retrains (the initial fit is not counted)
}

// New builds an index over the initial key set (>= 2 keys) and trains the
// first model. The initial fit does not count as a retrain.
func New(initial keys.Set, policy RetrainPolicy) (*Index, error) {
	if err := policy.validate(); err != nil {
		return nil, err
	}
	if initial.Len() < 2 {
		return nil, ErrTooFew
	}
	x := &Index{policy: policy}
	if err := x.fit(initial); err != nil {
		return nil, err
	}
	return x, nil
}

// fit retrains the model and error envelope on the given base set.
func (x *Index) fit(base keys.Set) error {
	m, err := regression.FitCDF(base)
	if err != nil {
		return err
	}
	x.base = base
	x.model = m
	x.eLo, x.eHi = math.Inf(1), math.Inf(-1)
	for i := 0; i < base.Len(); i++ {
		d := float64(i+1) - m.Predict(base.At(i))
		if d < x.eLo {
			x.eLo = d
		}
		if d > x.eHi {
			x.eHi = d
		}
	}
	return nil
}

// Insert offers a key to the index. accepted is false when k is negative or
// already present (base or buffer); retrained is true when this call
// triggered a policy retrain. Note that with EveryK even a rejected
// duplicate advances the retrain counter — it was a write, and write-count
// schedules tick on writes.
func (x *Index) Insert(k int64) (accepted, retrained bool) {
	x.inserts++
	if k >= 0 && !x.contains(k) {
		i := sort.Search(len(x.buffer), func(i int) bool { return x.buffer[i] >= k })
		x.buffer = append(x.buffer, 0)
		copy(x.buffer[i+1:], x.buffer[i:])
		x.buffer[i] = k
		accepted = true
	}
	switch x.policy.Kind {
	case EveryK:
		if x.inserts >= x.policy.K {
			retrained = true
		}
	case BufferThreshold:
		if len(x.buffer) >= x.policy.K {
			retrained = true
		}
	}
	if retrained {
		x.Retrain()
	}
	return accepted, retrained
}

// contains reports whether k is in the base or the buffer.
func (x *Index) contains(k int64) bool {
	if x.base.Contains(k) {
		return true
	}
	i := sort.Search(len(x.buffer), func(i int) bool { return x.buffer[i] >= k })
	return i < len(x.buffer) && x.buffer[i] == k
}

// Retrain merges the buffer into the base and refits the model. Retraining
// with an empty buffer is legal and counted: the model refits to the same
// data (byte-identically — the fit is deterministic) and the retrain
// counter still advances, which is what a wall-clock maintenance schedule
// does on an idle index.
func (x *Index) Retrain() {
	if len(x.buffer) > 0 {
		merged := x.base.Keys()
		out := make([]int64, 0, len(merged)+len(x.buffer))
		i, j := 0, 0
		for i < len(merged) && j < len(x.buffer) {
			if merged[i] < x.buffer[j] {
				out = append(out, merged[i])
				i++
			} else {
				out = append(out, x.buffer[j])
				j++
			}
		}
		out = append(out, merged[i:]...)
		out = append(out, x.buffer[j:]...)
		// fit cannot fail here: the merged set has >= 2 keys by construction.
		if err := x.fit(keys.FromSorted(out)); err != nil {
			panic(fmt.Sprintf("dynamic: refit after merge: %v", err))
		}
		x.buffer = nil
	} else if err := x.fit(x.base); err != nil {
		panic(fmt.Sprintf("dynamic: refit on empty buffer: %v", err))
	}
	x.inserts = 0
	x.retrains++
}

// Len returns the total number of stored keys (base + buffer).
func (x *Index) Len() int { return x.base.Len() + len(x.buffer) }

// BufferLen returns the number of keys waiting in the delta buffer.
func (x *Index) BufferLen() int { return len(x.buffer) }

// Retrains returns the number of completed retrains.
func (x *Index) Retrains() int { return x.retrains }

// Policy returns the index's retrain policy.
func (x *Index) Policy() RetrainPolicy { return x.policy }

// Base returns the key set the current model was trained on.
func (x *Index) Base() keys.Set { return x.base }

// Model returns the current fitted model (trained at the last retrain).
func (x *Index) Model() regression.Model { return x.model }

// Keys materializes the full current content (base ∪ buffer) as a fresh
// key set. O(n); used by evaluation code, not by lookups.
func (x *Index) Keys() keys.Set {
	if len(x.buffer) == 0 {
		return x.base
	}
	bufSet := keys.FromSorted(x.buffer)
	return x.base.Union(bufSet)
}

// LookupResult reports a point query against the dynamic index: Probes
// counts key comparisons across the base window plus the buffer search,
// Window is the guaranteed base search-window width for this query, and
// InBuffer marks keys served from the delta buffer.
type LookupResult = index.LookupResult

// Lookup finds a key, counting comparisons. Base keys are searched within
// the model's guaranteed error envelope (always found); buffer keys fall
// back to binary search over the buffer. The probe count is the
// implementation-independent cost metric the online attack degrades.
func (x *Index) Lookup(k int64) LookupResult {
	var res LookupResult
	pred := x.model.Predict(k)
	lo := int(math.Floor(pred+x.eLo)) - 1 // 1-based rank → 0-based index
	hi := int(math.Ceil(pred+x.eHi)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > x.base.Len()-1 {
		hi = x.base.Len() - 1
	}
	if lo <= hi {
		res.Window = hi - lo + 1
		for lo <= hi {
			mid := (lo + hi) / 2
			res.Probes++
			switch c := x.base.At(mid); {
			case c == k:
				res.Found = true
				return res
			case c < k:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
	}
	// Not in base: the buffer is unmodeled, plain binary search.
	blo, bhi := 0, len(x.buffer)-1
	for blo <= bhi {
		mid := (blo + bhi) / 2
		res.Probes++
		switch c := x.buffer[mid]; {
		case c == k:
			res.Found = true
			res.InBuffer = true
			return res
		case c < k:
			blo = mid + 1
		default:
			bhi = mid - 1
		}
	}
	return res
}

// ProbeSum runs a lookup for every query key and returns the exact total
// probe count plus how many were not found. Integer sums are
// order-independent, so callers may partition queryKeys across workers and
// add the partial sums in any grouping without changing the result — the
// property core.OnlinePoisonAttack's parallel evaluation leans on.
func (x *Index) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	for _, k := range queryKeys {
		r := x.Lookup(k)
		probes += int64(r.Probes)
		if !r.Found {
			notFound++
		}
	}
	return probes, notFound
}

// Stats is the uniform backend summary (index.Stats).
type Stats = index.Stats

// Stats computes the summary. ContentLoss evaluates the current model
// against the full current content (base ∪ buffer), so staleness between
// retrains is visible; ModelLoss is the in-sample MSE on the base alone.
func (x *Index) Stats() Stats {
	w := int(math.Ceil(x.eHi)-math.Floor(x.eLo)) + 1
	if w < 1 {
		w = 1
	}
	// EvaluateCDF cannot fail here: the index always holds >= 2 keys.
	content, _ := regression.EvaluateCDF(x.model.Line, x.Keys())
	return Stats{
		Keys:        x.Len(),
		Buffered:    len(x.buffer),
		Retrains:    x.retrains,
		ModelLoss:   x.model.Loss,
		ContentLoss: content,
		Window:      w,
	}
}
