package dynamic

import (
	"fmt"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]RetrainPolicy{
		"manual":    ManualPolicy(),
		"every:1":   EveryKInserts(1),
		"every:500": EveryKInserts(500),
		"buffer:64": BufferLimit(64),
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%q -> %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{
		"", "Manual", "every", "every:", "every:0", "every:-3", "every:x",
		"buffer", "buffer:0", "buffer:1e3", "buffer:9999999999999999999999",
		"every:3:4", "manual:1",
	} {
		if p, err := ParsePolicy(bad); err == nil {
			t.Errorf("%q accepted as %+v", bad, p)
		}
	}
}

// FuzzParsePolicy: the policy parser shared by the lispoison online and
// serve subcommands must be total (no panics) and must only ever return
// policies that validate. The checked-in corpus replays in CI.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"manual", "every:8", "buffer:256", "", "every:", "buffer:-1",
		"every:0x10", "buffer:999999999999999999999", "every:+3", "x:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if verr := p.validate(); verr != nil {
			t.Fatalf("ParsePolicy(%q) returned invalid policy %+v: %v", s, p, verr)
		}
		// Every accepted policy round-trips through the spec syntax.
		rendered := "manual"
		switch p.Kind {
		case EveryK:
			rendered = fmt.Sprintf("every:%d", p.K)
		case BufferThreshold:
			rendered = fmt.Sprintf("buffer:%d", p.K)
		}
		back, err := ParsePolicy(rendered)
		if err != nil || back != p {
			t.Fatalf("round trip of %q via %q: %+v, %v", s, rendered, back, err)
		}
	})
}
