package dynamic

import (
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/xrand"
)

// TestEveryKDuplicateAccountingProperty pins the adversarial lever the
// EveryK doc comment claims: the retrain counter ticks on Insert CALLS,
// accepted or not, so rejected duplicates (and negative keys) drive the
// write-count schedule — while BufferThreshold advances only on ACCEPTED
// keys and is immune to the same stream. The property is checked over
// random interleavings of fresh keys, duplicates, and negatives: after any
// prefix of the stream,
//
//	EveryK(K) retrains  == floor(total insert calls / K)
//	Buffer(K) retrains  == what the accepted count alone dictates
func TestEveryKDuplicateAccountingProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		rng := xrand.New(seed)
		initial, err := dataset.Uniform(rng.Split(), 100, 4_000)
		if err != nil {
			t.Fatal(err)
		}
		K := 2 + rng.Intn(9) // K in [2, 10]
		every, err := New(initial, EveryKInserts(K))
		if err != nil {
			t.Fatal(err)
		}
		buffer, err := New(initial, BufferLimit(K))
		if err != nil {
			t.Fatal(err)
		}

		calls, accepted := 0, 0
		bufDepth, bufRetrains := 0, 0
		for op := 0; op < 600; op++ {
			var k int64
			switch rng.Intn(3) {
			case 0: // fresh-or-collision draw over the whole domain
				k = rng.Int63n(4_000)
			case 1: // guaranteed duplicate: a key already in the index
				full := every.Keys()
				k = full.At(rng.Intn(full.Len()))
			default: // rejected outright
				k = -1 - rng.Int63n(100)
			}

			calls++
			eAccepted, eRetrained := every.Insert(k)
			bAccepted, bRetrained := buffer.Insert(k)

			// Both indexes hold identical content at every step (same
			// stream, acceptance is content-determined), so acceptance
			// must agree.
			if eAccepted != bAccepted {
				t.Fatalf("seed %d op %d: acceptance diverged on %d: every=%v buffer=%v",
					seed, op, k, eAccepted, bAccepted)
			}
			if eAccepted {
				accepted++
			}

			// EveryK: the counter ticks on calls. Retrain fires exactly at
			// call multiples of K, duplicate or not.
			wantRetrain := calls%K == 0
			if eRetrained != wantRetrain {
				t.Fatalf("seed %d op %d (K=%d): EveryK retrained=%v at call %d, want %v (accepted=%v)",
					seed, op, K, eRetrained, calls, wantRetrain, eAccepted)
			}
			if got, want := every.Retrains(), calls/K; got != want {
				t.Fatalf("seed %d op %d (K=%d): EveryK retrains=%d, want floor(%d/%d)=%d",
					seed, op, K, got, calls, K, want)
			}

			// BufferThreshold: only accepted keys advance it; a rejected
			// duplicate can never trigger it.
			if bAccepted {
				bufDepth++
			}
			wantBufRetrain := bufDepth >= K
			if bRetrained != wantBufRetrain {
				t.Fatalf("seed %d op %d (K=%d): buffer retrained=%v with depth %d, want %v",
					seed, op, K, bRetrained, bufDepth, wantBufRetrain)
			}
			if bRetrained {
				bufDepth = 0
				bufRetrains++
			}
			if !bAccepted && bRetrained {
				t.Fatalf("seed %d op %d: rejected insert retrained the buffer policy", seed, op)
			}
			if got := buffer.Retrains(); got != bufRetrains {
				t.Fatalf("seed %d op %d: buffer retrains=%d, model says %d", seed, op, got, bufRetrains)
			}
		}

		// The contrast the doc comment sells: with enough duplicates in the
		// stream, EveryK retrained strictly more often than the buffer
		// policy at the same K — the duplicate-write lever.
		if calls > accepted && every.Retrains() <= buffer.Retrains() {
			t.Fatalf("seed %d: EveryK retrains %d <= buffer retrains %d despite %d rejected writes",
				seed, every.Retrains(), buffer.Retrains(), calls-accepted)
		}
	}
}
