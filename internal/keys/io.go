package keys

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary serialization format: a fixed magic, a little-endian uint64 count,
// then delta-encoded varint keys. Delta coding keeps files small because the
// set is sorted; varints come from encoding/binary (stdlib only).
var binaryMagic = [8]byte{'C', 'D', 'F', 'K', 'E', 'Y', 'S', '1'}

// WriteBinary serializes the set to w in the repository's binary format.
func (s Set) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("keys: write magic: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(s.ks)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("keys: write count: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	prev := int64(0)
	for _, k := range s.ks {
		n := binary.PutUvarint(buf[:], uint64(k-prev))
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("keys: write key: %w", err)
		}
		prev = k
	}
	return bw.Flush()
}

// ReadBinary deserializes a set written by WriteBinary.
func ReadBinary(r io.Reader) (Set, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Set{}, fmt.Errorf("keys: read magic: %w", err)
	}
	if magic != binaryMagic {
		return Set{}, fmt.Errorf("keys: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Set{}, fmt.Errorf("keys: read count: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxReasonable = 1 << 33
	if n > maxReasonable {
		return Set{}, fmt.Errorf("keys: implausible key count %d", n)
	}
	// Cap the preallocation independently of the declared count: a hostile
	// header can claim 2^33 keys backed by no data, and the varint loop
	// below will error out long before append ever grows that far.
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	ks := make([]int64, 0, capHint)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return Set{}, fmt.Errorf("keys: read key %d: %w", i, err)
		}
		k := prev + int64(d)
		if i > 0 && d == 0 {
			return Set{}, fmt.Errorf("keys: duplicate key %d in stream", k)
		}
		if k < prev {
			return Set{}, fmt.Errorf("keys: key overflow at index %d", i)
		}
		ks = append(ks, k)
		prev = k
	}
	return Set{ks: ks}, nil
}

// WriteText writes one decimal key per line — the interchange format of the
// cmd/lispoison CLI.
func (s Set) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, k := range s.ks {
		if _, err := fmt.Fprintln(bw, k); err != nil {
			return fmt.Errorf("keys: write text: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText parses one decimal key per line. Blank lines and lines starting
// with '#' are skipped. The input need not be sorted or duplicate-free; the
// result is canonicalized via New.
func ReadText(r io.Reader) (Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ks []int64
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		k, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return Set{}, fmt.Errorf("keys: line %d: %w", line, err)
		}
		ks = append(ks, k)
	}
	if err := sc.Err(); err != nil {
		return Set{}, fmt.Errorf("keys: scan: %w", err)
	}
	return New(ks)
}
