package keys

import (
	"bytes"
	"strings"
	"testing"

	"cdfpoison/internal/xrand"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := xrand.New(5)
	for _, n := range []int{0, 1, 2, 100, 5000} {
		raw := xrand.SampleInt64s(rng, n, 1<<40)
		s := mustNew(t, raw)
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			t.Fatalf("write n=%d: %v", n, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("read n=%d: %v", n, err)
		}
		if !got.Equal(s) {
			t.Fatalf("round trip mismatch at n=%d", n)
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	s := mustNew(t, []int64{1, 2, 3, 1000})
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestBinaryRejectsImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := mustNew(t, []int64{3, 1, 4, 159, 26535})
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("text round trip mismatch: %v vs %v", got, s)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n10\n\n 20 \n#30\n5\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := mustNew(t, []int64{5, 10, 20})
	if !got.Equal(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	if _, err := ReadText(strings.NewReader("12\nbanana\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestReadTextCanonicalizes(t *testing.T) {
	got, err := ReadText(strings.NewReader("5\n1\n5\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := mustNew(t, []int64{1, 3, 5})
	if !got.Equal(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
