// Package keys provides the key-set substrate shared by every component of
// the repository: validated, sorted, duplicate-free sets of non-negative
// integer keys, together with the rank and gap machinery that the CDF
// poisoning attacks operate on.
//
// Terminology follows the paper (Section III): a key set K of size n is a
// subset of a key universe [0, m); the rank of a key is its 1-based position
// in the sorted order of K; the density of K is n/m. Poisoning keys must be
// unoccupied integers strictly between the minimum and maximum legitimate
// key, so the central iteration primitive here is the enumeration of
// "gaps" — maximal runs of unoccupied keys between consecutive stored keys.
package keys

import (
	"errors"
	"fmt"
	"sort"
)

// ErrEmpty is returned by operations that require at least one key.
var ErrEmpty = errors.New("keys: empty key set")

// ErrDuplicate is returned by strict constructors when the input contains a
// repeated key. The paper's key sets contain no multiplicities.
var ErrDuplicate = errors.New("keys: duplicate key")

// ErrNegative is returned when a key is negative; the paper assumes keys are
// non-negative integers so that a total order is always defined.
var ErrNegative = errors.New("keys: negative key")

// Set is an immutable, sorted, duplicate-free collection of non-negative
// integer keys. The zero value is an empty set. Construct with New,
// NewStrict, or FromSorted; all accessors are safe on the zero value.
type Set struct {
	ks []int64
}

// New builds a Set from arbitrary input: it copies, sorts, and removes
// duplicates. Negative keys yield an error. Use NewStrict when duplicates
// should be rejected rather than collapsed.
func New(input []int64) (Set, error) {
	ks := make([]int64, len(input))
	copy(ks, input)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	out := ks[:0]
	var prev int64 = -1
	for _, k := range ks {
		if k < 0 {
			return Set{}, fmt.Errorf("%w: %d", ErrNegative, k)
		}
		if k == prev && len(out) > 0 {
			continue
		}
		out = append(out, k)
		prev = k
	}
	return Set{ks: out}, nil
}

// NewStrict is like New but returns ErrDuplicate if the input contains any
// repeated key instead of silently deduplicating.
func NewStrict(input []int64) (Set, error) {
	ks := make([]int64, len(input))
	copy(ks, input)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for i, k := range ks {
		if k < 0 {
			return Set{}, fmt.Errorf("%w: %d", ErrNegative, k)
		}
		if i > 0 && ks[i-1] == k {
			return Set{}, fmt.Errorf("%w: %d", ErrDuplicate, k)
		}
	}
	return Set{ks: ks}, nil
}

// FromSorted adopts a slice that the caller guarantees is strictly
// increasing and non-negative; it panics otherwise. It does not copy, so the
// caller must not mutate the slice afterwards. It exists for the hot paths
// (partitioning a large set into thousands of per-model subsets).
func FromSorted(sorted []int64) Set {
	for i, k := range sorted {
		if k < 0 {
			panic("keys: FromSorted with negative key")
		}
		if i > 0 && sorted[i-1] >= k {
			panic("keys: FromSorted with unsorted or duplicate keys")
		}
	}
	return Set{ks: sorted}
}

// Len returns the number of keys n.
func (s Set) Len() int { return len(s.ks) }

// At returns the key of rank i+1 (0-based index into the sorted order).
func (s Set) At(i int) int64 { return s.ks[i] }

// Min returns the smallest key; it panics on an empty set.
func (s Set) Min() int64 { return s.ks[0] }

// Max returns the largest key; it panics on an empty set.
func (s Set) Max() int64 { return s.ks[len(s.ks)-1] }

// Keys returns the backing sorted slice. Callers must treat it as read-only.
func (s Set) Keys() []int64 { return s.ks }

// Clone returns a Set backed by a fresh copy of the keys.
func (s Set) Clone() Set {
	ks := make([]int64, len(s.ks))
	copy(ks, s.ks)
	return Set{ks: ks}
}

// Contains reports whether k is stored in the set.
func (s Set) Contains(k int64) bool {
	i := sort.Search(len(s.ks), func(i int) bool { return s.ks[i] >= k })
	return i < len(s.ks) && s.ks[i] == k
}

// Rank returns the 1-based rank of k if present, or 0 and false otherwise.
func (s Set) Rank(k int64) (int, bool) {
	i := sort.Search(len(s.ks), func(i int) bool { return s.ks[i] >= k })
	if i < len(s.ks) && s.ks[i] == k {
		return i + 1, true
	}
	return 0, false
}

// CountLess returns |{x in S : x < k}|, i.e. the 0-based insertion index.
// For an absent key k this is exactly (rank k would take) − 1.
func (s Set) CountLess(k int64) int {
	return sort.Search(len(s.ks), func(i int) bool { return s.ks[i] >= k })
}

// InsertedRank returns the 1-based rank the key k would take if inserted.
// If k is already present the second result is false.
func (s Set) InsertedRank(k int64) (int, bool) {
	i := s.CountLess(k)
	if i < len(s.ks) && s.ks[i] == k {
		return 0, false
	}
	return i + 1, true
}

// Insert returns a new Set containing k. If k is already present ok is
// false and the receiver is returned unchanged. The receiver is never
// mutated; Insert copies, costing O(n) — acceptable for attack loops that
// insert at most 0.2·n keys.
func (s Set) Insert(k int64) (Set, bool) {
	if k < 0 {
		return s, false
	}
	i := s.CountLess(k)
	if i < len(s.ks) && s.ks[i] == k {
		return s, false
	}
	out := make([]int64, len(s.ks)+1)
	copy(out, s.ks[:i])
	out[i] = k
	copy(out[i+1:], s.ks[i:])
	return Set{ks: out}, true
}

// Remove returns a new Set without k. If k is absent ok is false and the
// receiver is returned unchanged. The receiver is never mutated; the survivor
// keys are produced by one copy around the removed position — no re-sort, no
// re-validation — because deleting from a sorted duplicate-free slice cannot
// break either invariant.
func (s Set) Remove(k int64) (Set, bool) {
	i := s.CountLess(k)
	if i >= len(s.ks) || s.ks[i] != k {
		return s, false
	}
	out := make([]int64, len(s.ks)-1)
	copy(out, s.ks[:i])
	copy(out[i:], s.ks[i+1:])
	return Set{ks: out}, true
}

// Union returns the union of s and other (both already duplicate-free).
func (s Set) Union(other Set) Set {
	out := make([]int64, 0, len(s.ks)+len(other.ks))
	i, j := 0, 0
	for i < len(s.ks) && j < len(other.ks) {
		switch {
		case s.ks[i] < other.ks[j]:
			out = append(out, s.ks[i])
			i++
		case s.ks[i] > other.ks[j]:
			out = append(out, other.ks[j])
			j++
		default:
			out = append(out, s.ks[i])
			i++
			j++
		}
	}
	out = append(out, s.ks[i:]...)
	out = append(out, other.ks[j:]...)
	return Set{ks: out}
}

// Slice returns the sub-set of keys with 0-based sorted positions [lo, hi).
// The result shares backing storage with s.
func (s Set) Slice(lo, hi int) Set {
	return Set{ks: s.ks[lo:hi]}
}

// Density returns n/m for a universe of size m, or 0 when m <= 0.
func (s Set) Density(m int64) float64 {
	if m <= 0 {
		return 0
	}
	return float64(len(s.ks)) / float64(m)
}

// Gap is a maximal run of consecutive unoccupied keys strictly between two
// stored keys. Lo and Hi are the first and last unoccupied keys of the run
// (inclusive); Rank is the 1-based rank any key inserted in this gap would
// take. Width = Hi − Lo + 1 >= 1.
type Gap struct {
	Lo, Hi int64
	Rank   int
}

// Width returns the number of unoccupied keys in the gap.
func (g Gap) Width() int64 { return g.Hi - g.Lo + 1 }

// Gaps returns every gap between consecutive stored keys, in increasing key
// order. Out-of-range positions (below Min or above Max) are deliberately
// excluded: the paper restricts poisoning keys to the interior so that they
// cannot be filtered as out-of-range values or outliers (Section IV-C).
// A set with fewer than two keys has no interior and hence no gaps.
func (s Set) Gaps() []Gap {
	var gaps []Gap
	for i := 0; i+1 < len(s.ks); i++ {
		if s.ks[i+1]-s.ks[i] >= 2 {
			gaps = append(gaps, Gap{Lo: s.ks[i] + 1, Hi: s.ks[i+1] - 1, Rank: i + 2})
		}
	}
	return gaps
}

// GapCount returns the number of gaps without allocating.
func (s Set) GapCount() int {
	c := 0
	for i := 0; i+1 < len(s.ks); i++ {
		if s.ks[i+1]-s.ks[i] >= 2 {
			c++
		}
	}
	return c
}

// FreeSlots returns the total number of unoccupied interior keys — the size
// of the feasible poisoning-key space.
func (s Set) FreeSlots() int64 {
	var total int64
	for i := 0; i+1 < len(s.ks); i++ {
		total += s.ks[i+1] - s.ks[i] - 1
	}
	return total
}

// Saturated reports whether the interior has no unoccupied key, i.e. the set
// is a run of consecutive integers (or has fewer than two keys). A saturated
// set cannot be poisoned under the paper's in-range constraint.
func (s Set) Saturated() bool { return s.FreeSlots() == 0 }

// Partition splits the set into fanout contiguous chunks whose sizes differ
// by at most one (the first n mod fanout chunks get the extra key), mirroring
// the equal-size key partition the RMI designer performs at initialization
// (Section V). It panics if fanout <= 0. Sets smaller than fanout yield
// some empty chunks at the tail.
func (s Set) Partition(fanout int) []Set {
	if fanout <= 0 {
		panic("keys: Partition with fanout <= 0")
	}
	n := len(s.ks)
	out := make([]Set, fanout)
	base := n / fanout
	extra := n % fanout
	lo := 0
	for i := 0; i < fanout; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = Set{ks: s.ks[lo : lo+size]}
		lo += size
	}
	return out
}

// Equal reports whether two sets contain exactly the same keys.
func (s Set) Equal(other Set) bool {
	if len(s.ks) != len(other.ks) {
		return false
	}
	for i := range s.ks {
		if s.ks[i] != other.ks[i] {
			return false
		}
	}
	return true
}

// String renders small sets fully and large sets as a summary.
func (s Set) String() string {
	if len(s.ks) <= 16 {
		return fmt.Sprintf("keys.Set%v", s.ks)
	}
	return fmt.Sprintf("keys.Set{n=%d, min=%d, max=%d}", len(s.ks), s.Min(), s.Max())
}
