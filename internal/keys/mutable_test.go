package keys

import (
	"testing"
)

func TestRemove(t *testing.T) {
	s := mustNew(t, []int64{2, 5, 9, 14})
	got, ok := s.Remove(9)
	if !ok {
		t.Fatal("present key not removed")
	}
	if want := mustNew(t, []int64{2, 5, 14}); !got.Equal(want) {
		t.Fatalf("Remove(9) = %v, want %v", got, want)
	}
	// Receiver untouched.
	if !s.Equal(mustNew(t, []int64{2, 5, 9, 14})) {
		t.Fatal("Remove mutated the receiver")
	}
	// Absent key: unchanged, ok=false.
	if got, ok := s.Remove(7); ok || !got.Equal(s) {
		t.Fatalf("Remove(absent) = (%v, %v)", got, ok)
	}
	// Endpoints.
	if got, _ := s.Remove(2); !got.Equal(mustNew(t, []int64{5, 9, 14})) {
		t.Fatal("Remove(min) wrong")
	}
	if got, _ := s.Remove(14); !got.Equal(mustNew(t, []int64{2, 5, 9})) {
		t.Fatal("Remove(max) wrong")
	}
	// Down to empty.
	one := mustNew(t, []int64{3})
	if got, ok := one.Remove(3); !ok || got.Len() != 0 {
		t.Fatalf("Remove to empty = (%v, %v)", got, ok)
	}
	// Empty set.
	if _, ok := (Set{}).Remove(1); ok {
		t.Fatal("Remove on empty set claimed success")
	}
}

// TestRemoveMatchesRebuild: Remove must agree with the historical
// filter-and-revalidate construction on random sets.
func TestRemoveMatchesRebuild(t *testing.T) {
	s := mustNew(t, []int64{0, 3, 4, 8, 15, 16, 23, 42, 99})
	for i := 0; i < s.Len(); i++ {
		k := s.At(i)
		fast, ok := s.Remove(k)
		if !ok {
			t.Fatalf("Remove(%d) failed", k)
		}
		var filtered []int64
		for _, v := range s.Keys() {
			if v != k {
				filtered = append(filtered, v)
			}
		}
		want, err := NewStrict(filtered)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(want) {
			t.Fatalf("Remove(%d) = %v, rebuild = %v", k, fast, want)
		}
	}
}

func TestMutableSetInsert(t *testing.T) {
	s := mustNew(t, []int64{10, 20, 30})
	m := NewMutable(s, 3)
	if m.Len() != 3 || m.Cap() != 6 {
		t.Fatalf("len/cap = %d/%d, want 3/6", m.Len(), m.Cap())
	}
	pos, ok := m.Insert(25)
	if !ok || pos != 2 {
		t.Fatalf("Insert(25) = (%d, %v), want (2, true)", pos, ok)
	}
	if _, ok := m.Insert(25); ok {
		t.Fatal("duplicate insert accepted")
	}
	if _, ok := m.Insert(-1); ok {
		t.Fatal("negative insert accepted")
	}
	if pos, ok := m.Insert(5); !ok || pos != 0 {
		t.Fatalf("Insert(5) = (%d, %v), want (0, true)", pos, ok)
	}
	if pos, ok := m.Insert(40); !ok || pos != 5 {
		t.Fatalf("Insert(40) = (%d, %v), want (5, true)", pos, ok)
	}
	want := mustNew(t, []int64{5, 10, 20, 25, 30, 40})
	if !m.View().Equal(want) {
		t.Fatalf("content %v, want %v", m.View(), want)
	}
	// NewMutable must not alias the source set.
	if !s.Equal(mustNew(t, []int64{10, 20, 30})) {
		t.Fatal("NewMutable mutated its source")
	}
}

func TestMutableSetInsertZeroAllocWithinReserve(t *testing.T) {
	s := mustNew(t, []int64{0, 1_000_000})
	// AllocsPerRun calls the function once extra as warm-up, so reserve two
	// batches of inserts.
	m := NewMutable(s, 128)
	next := int64(1)
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 64; i++ {
			if _, ok := m.Insert(next); !ok {
				t.Fatal("insert failed")
			}
			next += 7
		}
	})
	if allocs > 0 {
		t.Fatalf("Insert allocated %v times within the reserve", allocs)
	}
}

func TestMutableSetGrowthBeyondReserve(t *testing.T) {
	m := NewMutable(mustNew(t, []int64{0, 100}), 0)
	for _, k := range []int64{50, 25, 75} {
		if _, ok := m.Insert(k); !ok {
			t.Fatalf("growth insert %d failed", k)
		}
	}
	if !m.View().Equal(mustNew(t, []int64{0, 25, 50, 75, 100})) {
		t.Fatalf("content after growth: %v", m.View())
	}
}

func TestMutableSetFreezeIsIndependent(t *testing.T) {
	m := NewMutable(mustNew(t, []int64{1, 5}), 2)
	snap := m.Freeze()
	m.Insert(3)
	if !snap.Equal(mustNew(t, []int64{1, 5})) {
		t.Fatalf("Freeze aliased the mutable storage: %v", snap)
	}
	if !m.Freeze().Equal(mustNew(t, []int64{1, 3, 5})) {
		t.Fatal("post-insert freeze wrong")
	}
}

func TestMutableSetRankHelpers(t *testing.T) {
	m := NewMutable(mustNew(t, []int64{10, 20}), 1)
	if c := m.CountLess(15); c != 1 {
		t.Fatalf("CountLess(15) = %d", c)
	}
	if r, free := m.InsertedRank(15); !free || r != 2 {
		t.Fatalf("InsertedRank(15) = (%d, %v)", r, free)
	}
	if _, free := m.InsertedRank(20); free {
		t.Fatal("InsertedRank on present key claimed free")
	}
	if m.At(1) != 20 {
		t.Fatalf("At(1) = %d", m.At(1))
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
	if NewMutable(Set{}, -5).Cap() != 0 {
		t.Fatal("negative reserve not clamped")
	}
}
