package keys

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"cdfpoison/internal/xrand"
)

func mustNew(t *testing.T, ks []int64) Set {
	t.Helper()
	s, err := New(ks)
	if err != nil {
		t.Fatalf("New(%v): %v", ks, err)
	}
	return s
}

func TestNewSortsAndDedups(t *testing.T) {
	s := mustNew(t, []int64{5, 1, 3, 3, 1, 9})
	want := []int64{1, 3, 5, 9}
	if got := s.Keys(); len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
}

func TestNewRejectsNegative(t *testing.T) {
	if _, err := New([]int64{1, -2, 3}); !errors.Is(err, ErrNegative) {
		t.Fatalf("want ErrNegative, got %v", err)
	}
}

func TestNewStrictRejectsDuplicates(t *testing.T) {
	if _, err := NewStrict([]int64{1, 2, 2}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
	if _, err := NewStrict([]int64{3, 1, 2}); err != nil {
		t.Fatalf("NewStrict on distinct keys: %v", err)
	}
}

func TestFromSortedPanics(t *testing.T) {
	for name, ks := range map[string][]int64{
		"unsorted":  {2, 1},
		"duplicate": {1, 1},
		"negative":  {-1, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromSorted %s did not panic", name)
				}
			}()
			FromSorted(ks)
		}()
	}
}

func TestEmptySetAccessors(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Contains(1) || s.GapCount() != 0 || s.FreeSlots() != 0 {
		t.Fatal("zero-value Set misbehaves")
	}
	if !s.Saturated() {
		t.Fatal("empty set should count as saturated (nowhere to poison)")
	}
}

func TestRankAndContains(t *testing.T) {
	s := mustNew(t, []int64{2, 6, 7, 12})
	cases := []struct {
		k    int64
		rank int
		ok   bool
	}{{2, 1, true}, {6, 2, true}, {7, 3, true}, {12, 4, true}, {1, 0, false}, {8, 0, false}, {13, 0, false}}
	for _, c := range cases {
		r, ok := s.Rank(c.k)
		if r != c.rank || ok != c.ok {
			t.Errorf("Rank(%d) = (%d,%v), want (%d,%v)", c.k, r, ok, c.rank, c.ok)
		}
		if s.Contains(c.k) != c.ok {
			t.Errorf("Contains(%d) = %v, want %v", c.k, !c.ok, c.ok)
		}
	}
}

func TestInsertedRank(t *testing.T) {
	s := mustNew(t, []int64{2, 6, 7, 12})
	cases := []struct {
		k    int64
		rank int
		ok   bool
	}{{0, 1, true}, {3, 2, true}, {5, 2, true}, {8, 4, true}, {13, 5, true}, {6, 0, false}}
	for _, c := range cases {
		r, ok := s.InsertedRank(c.k)
		if r != c.rank || ok != c.ok {
			t.Errorf("InsertedRank(%d) = (%d,%v), want (%d,%v)", c.k, r, ok, c.rank, c.ok)
		}
	}
}

func TestInsertImmutable(t *testing.T) {
	s := mustNew(t, []int64{1, 5})
	s2, ok := s.Insert(3)
	if !ok || s2.Len() != 3 || s.Len() != 2 {
		t.Fatal("Insert must produce a new 3-key set and leave the receiver intact")
	}
	if _, ok := s.Insert(5); ok {
		t.Fatal("Insert of existing key must report !ok")
	}
	if _, ok := s.Insert(-1); ok {
		t.Fatal("Insert of negative key must report !ok")
	}
}

func TestGapsExample(t *testing.T) {
	// The paper's running example (Section IV-C): keys 2,6,7,12 over [1,13]
	// have interior gaps {3,4,5} and {8,9,10,11}; the out-of-range slots
	// {1} and {13} are excluded by design.
	s := mustNew(t, []int64{2, 6, 7, 12})
	gaps := s.Gaps()
	want := []Gap{{Lo: 3, Hi: 5, Rank: 2}, {Lo: 8, Hi: 11, Rank: 4}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	if got := s.FreeSlots(); got != 7 {
		t.Errorf("FreeSlots = %d, want 7", got)
	}
	if s.GapCount() != 2 {
		t.Errorf("GapCount = %d, want 2", s.GapCount())
	}
}

func TestSaturated(t *testing.T) {
	if s := mustNew(t, []int64{4, 5, 6, 7}); !s.Saturated() {
		t.Error("consecutive run should be saturated")
	}
	if s := mustNew(t, []int64{4, 6}); s.Saturated() {
		t.Error("set with a gap should not be saturated")
	}
	if s := mustNew(t, []int64{9}); !s.Saturated() {
		t.Error("singleton has no interior and should be saturated")
	}
}

func TestPartitionSizes(t *testing.T) {
	s := mustNew(t, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	parts := s.Partition(3)
	sizes := []int{4, 4, 3} // 11 = 4+4+3, first n%N get the extra
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	for i, p := range parts {
		if p.Len() != sizes[i] {
			t.Errorf("part %d size %d, want %d", i, p.Len(), sizes[i])
		}
		total += p.Len()
	}
	if total != s.Len() {
		t.Errorf("partition loses keys: %d != %d", total, s.Len())
	}
	// Contiguity: each part's max < next part's min.
	for i := 0; i+1 < len(parts); i++ {
		if parts[i].Max() >= parts[i+1].Min() {
			t.Errorf("parts %d and %d overlap", i, i+1)
		}
	}
}

func TestPartitionMoreModelsThanKeys(t *testing.T) {
	s := mustNew(t, []int64{10, 20})
	parts := s.Partition(5)
	nonEmpty := 0
	for _, p := range parts {
		if p.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("want 2 non-empty parts, got %d", nonEmpty)
	}
}

func TestUnionAgainstReference(t *testing.T) {
	rng := xrand.New(99)
	f := func(aRaw, bRaw []uint16) bool {
		toSet := func(raw []uint16) Set {
			ks := make([]int64, len(raw))
			for i, v := range raw {
				ks[i] = int64(v)
			}
			s, err := New(ks)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			return s
		}
		a, b := toSet(aRaw), toSet(bRaw)
		u := a.Union(b)
		ref := map[int64]bool{}
		for _, k := range a.Keys() {
			ref[k] = true
		}
		for _, k := range b.Keys() {
			ref[k] = true
		}
		if u.Len() != len(ref) {
			return false
		}
		for _, k := range u.Keys() {
			if !ref[k] {
				return false
			}
		}
		return sort.SliceIsSorted(u.Keys(), func(i, j int) bool { return u.Keys()[i] < u.Keys()[j] })
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGapsCoverAllFreeSlots(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		raw := xrand.SampleInt64s(rng, n, 200)
		s := mustNew(t, raw)
		var fromGaps int64
		for _, g := range s.Gaps() {
			fromGaps += g.Width()
			// Every key in the gap must be absent and interior.
			if g.Lo <= s.Min() || g.Hi >= s.Max() {
				t.Fatalf("gap %v not interior for %v", g, s)
			}
			for k := g.Lo; k <= g.Hi; k++ {
				if s.Contains(k) {
					t.Fatalf("gap %v contains stored key %d", g, k)
				}
			}
			// Rank consistency with InsertedRank.
			r, ok := s.InsertedRank(g.Lo)
			if !ok || r != g.Rank {
				t.Fatalf("gap rank %d, InsertedRank %d", g.Rank, r)
			}
		}
		if fromGaps != s.FreeSlots() {
			t.Fatalf("gap widths %d != FreeSlots %d", fromGaps, s.FreeSlots())
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := mustNew(t, []int64{1, 2, 3})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.ks[0] = 99 // mutating the clone must not affect the original
	if s.At(0) != 1 {
		t.Fatal("clone shares storage with original")
	}
	if s.Equal(mustNew(t, []int64{1, 2})) || s.Equal(mustNew(t, []int64{1, 2, 4})) {
		t.Fatal("Equal false positives")
	}
}

func TestSliceSharesStorage(t *testing.T) {
	s := mustNew(t, []int64{1, 2, 3, 4, 5})
	sub := s.Slice(1, 4)
	if sub.Len() != 3 || sub.Min() != 2 || sub.Max() != 4 {
		t.Fatalf("Slice(1,4) = %v", sub)
	}
}

func TestDensity(t *testing.T) {
	s := mustNew(t, []int64{0, 1, 2, 3})
	if got := s.Density(16); got != 0.25 {
		t.Errorf("Density = %v, want 0.25", got)
	}
	if got := s.Density(0); got != 0 {
		t.Errorf("Density(0) = %v, want 0", got)
	}
}

func TestCountLess(t *testing.T) {
	s := mustNew(t, []int64{10, 20, 30})
	for _, c := range []struct {
		k    int64
		want int
	}{{5, 0}, {10, 0}, {11, 1}, {20, 1}, {25, 2}, {35, 3}} {
		if got := s.CountLess(c.k); got != c.want {
			t.Errorf("CountLess(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestStringForms(t *testing.T) {
	small := mustNew(t, []int64{1, 2})
	if small.String() == "" {
		t.Error("small String empty")
	}
	big := make([]int64, 100)
	for i := range big {
		big[i] = int64(i)
	}
	if s := mustNew(t, big).String(); s == "" {
		t.Error("big String empty")
	}
}
