package keys

import (
	"bytes"
	"testing"
)

// FuzzReadText: any input either fails to parse or canonicalizes into a set
// whose text serialization round-trips exactly. Sets that fit the binary
// format's domain (non-negative keys) must round-trip through it too.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("1\n2\n3\n"))
	f.Add([]byte("# comment\n\n42\n7\n42\n"))
	f.Add([]byte("  17 \n0\n9223372036854775807\n"))
	f.Add([]byte("-5\n0\n12\n"))
	f.Add([]byte("1e9\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		for i := 1; i < s.Len(); i++ {
			if s.At(i) <= s.At(i-1) {
				t.Fatalf("ReadText produced unsorted/duplicate keys: %v", s)
			}
		}
		var buf bytes.Buffer
		if err := s.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		s2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("text round-trip parse: %v", err)
		}
		if !s.Equal(s2) {
			t.Fatalf("text round-trip changed the set: %v != %v", s, s2)
		}
		// The binary format delta-encodes from 0, so it only represents
		// non-negative keys; text accepts negatives, so gate the cross-check.
		if s.Len() == 0 || s.Min() >= 0 {
			buf.Reset()
			if err := s.WriteBinary(&buf); err != nil {
				t.Fatalf("WriteBinary: %v", err)
			}
			s3, err := ReadBinary(&buf)
			if err != nil {
				t.Fatalf("binary round-trip parse: %v", err)
			}
			if !s.Equal(s3) {
				t.Fatalf("binary round-trip changed the set: %v != %v", s, s3)
			}
		}
	})
}

// FuzzReadBinary: arbitrary bytes either fail to parse or yield a strictly
// increasing set that re-serializes and re-parses to itself.
func FuzzReadBinary(f *testing.F) {
	seed := func(ks []int64) []byte {
		s, err := NewStrict(ks)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed([]int64{0, 1, 2}))
	f.Add(seed([]int64{5, 900, 1 << 40}))
	f.Add(seed([]int64{}))
	f.Add([]byte("CDFKEYS1"))                                 // magic only, truncated header
	f.Add([]byte("CDFKEYS1\xff\xff\xff\xff\xff\xff\xff\xff")) // hostile count
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 1; i < s.Len(); i++ {
			if s.At(i) <= s.At(i-1) {
				t.Fatalf("ReadBinary produced unsorted/duplicate keys: %v", s)
			}
		}
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		s2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		if !s.Equal(s2) {
			t.Fatalf("round-trip changed the set: %v != %v", s, s2)
		}
	})
}
