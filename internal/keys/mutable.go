package keys

import (
	"fmt"
)

// InsertAt places k at position i of the sorted slice buf and returns the
// resulting slice. With clone=false it shifts in place (amortized append,
// exactly the historical delta-buffer insert); with clone=true it builds a
// fresh slice and leaves buf's backing array untouched — the copy-on-write
// step the snapshot-isolated backends (dynamic.Index, rmi.Single) take on
// the first mutation after handing out a snapshot that aliases buf. Both
// backends share THIS implementation so the COW invariant lives in one
// place.
func InsertAt(buf []int64, i int, k int64, clone bool) []int64 {
	if clone {
		nb := make([]int64, len(buf)+1)
		copy(nb, buf[:i])
		nb[i] = k
		copy(nb[i+1:], buf[i:])
		return nb
	}
	buf = append(buf, 0)
	copy(buf[i+1:], buf[i:])
	buf[i] = k
	return buf
}

// MutableSet is the mutable companion of Set for the attack hot loops: a
// sorted, duplicate-free key slice with pre-reserved tail capacity so that
// Insert is a single in-place memmove — no allocation, no re-sort — until
// the reserve is exhausted. It backs the incremental attack kernel
// (regression.NewPrefixMutable), where Algorithm 1 inserts up to p poisoning
// keys one at a time and the historical copy-on-insert of Set cost O(n)
// allocations per step (see DESIGN.md §3, "Allocation budget").
//
// A MutableSet is NOT safe for concurrent mutation. Concurrent readers are
// safe between mutations, which is exactly the discipline the greedy attack
// follows: the parallel candidate scan reads a View, the chosen key is
// inserted sequentially, and only then does the next scan start.
type MutableSet struct {
	ks []int64
}

// NewMutable copies s into a MutableSet with capacity for reserve further
// inserts. reserve < 0 is treated as 0.
func NewMutable(s Set, reserve int) *MutableSet {
	if reserve < 0 {
		reserve = 0
	}
	ks := make([]int64, s.Len(), s.Len()+reserve)
	copy(ks, s.Keys())
	return &MutableSet{ks: ks}
}

// Len returns the number of keys currently stored.
func (m *MutableSet) Len() int { return len(m.ks) }

// Cap returns the total capacity (stored keys + remaining reserve).
func (m *MutableSet) Cap() int { return cap(m.ks) }

// At returns the key of rank i+1.
func (m *MutableSet) At(i int) int64 { return m.ks[i] }

// View returns the current content as a Set WITHOUT copying. The view
// shares the backing array: it is valid only until the next Insert, which
// shifts keys underneath it. Callers that need a durable snapshot must use
// Freeze.
func (m *MutableSet) View() Set { return Set{ks: m.ks} }

// Freeze returns an independent immutable copy of the current content.
func (m *MutableSet) Freeze() Set { return m.View().Clone() }

// CountLess returns |{x : x < k}|, the 0-based insertion index of k.
// Rank arithmetic delegates through the zero-cost View so the mutable and
// immutable paths can never diverge.
func (m *MutableSet) CountLess(k int64) int { return m.View().CountLess(k) }

// InsertedRank returns the 1-based rank k would take if inserted; the second
// result is false if k is already present.
func (m *MutableSet) InsertedRank(k int64) (int, bool) { return m.View().InsertedRank(k) }

// Insert adds k in place, returning its 0-based position. If k is negative
// or already present, ok is false and the set is unchanged. Within the
// reserved capacity the cost is one binary search plus one memmove and zero
// allocations; beyond it the backing array grows (append semantics), which
// the attack kernels avoid by reserving their full poison budget up front.
func (m *MutableSet) Insert(k int64) (pos int, ok bool) {
	if k < 0 {
		return 0, false
	}
	i := m.CountLess(k)
	if i < len(m.ks) && m.ks[i] == k {
		return 0, false
	}
	n := len(m.ks)
	if n < cap(m.ks) {
		m.ks = m.ks[:n+1]
	} else {
		m.ks = append(m.ks, 0) // reserve exhausted: pay the growth once
	}
	copy(m.ks[i+1:], m.ks[i:n])
	m.ks[i] = k
	return i, true
}

// String renders like Set.
func (m *MutableSet) String() string {
	return fmt.Sprintf("keys.MutableSet{n=%d, cap=%d}", len(m.ks), cap(m.ks))
}
