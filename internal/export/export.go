// Package export renders experiment results: CSV files for downstream
// plotting, and ASCII tables, boxplots, and line charts so that every figure
// of the paper can be inspected directly in a terminal (the lisbench tool
// emits both forms).
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"cdfpoison/internal/stats"
)

// WriteCSV writes a header plus rows. Cells are stringified by the caller.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: csv header: %w", err)
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("export: row %d has %d cells, header has %d", i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("export: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float compactly for tables and CSV (6 significant digits).
func F(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	default:
		return fmt.Sprintf("%.6g", v)
	}
}

// Table accumulates rows and renders a monospace-aligned ASCII table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column names.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV returns the table contents as header+rows for WriteCSV.
func (t *Table) CSV() ([]string, [][]string) { return t.header, t.rows }

// RenderBoxplot draws one horizontal ASCII boxplot scaled to [lo, hi]:
//
//	|----[==M==]------|        · outliers
//
// width is the number of character cells the axis occupies (>= 10).
func RenderBoxplot(b stats.Boxplot, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if hi <= lo {
		hi = lo + 1
	}
	cell := func(v float64) int {
		p := (v - lo) / (hi - lo)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		c := int(p * float64(width-1))
		return c
	}
	buf := make([]byte, width)
	for i := range buf {
		buf[i] = ' '
	}
	set := func(i int, c byte) {
		if i >= 0 && i < width {
			buf[i] = c
		}
	}
	wLo, q1, med, q3, wHi := cell(b.WhiskerLo), cell(b.Q1), cell(b.Median), cell(b.Q3), cell(b.WhiskerHi)
	for i := wLo; i <= wHi; i++ {
		set(i, '-')
	}
	for i := q1; i <= q3; i++ {
		set(i, '=')
	}
	set(wLo, '|')
	set(wHi, '|')
	set(q1, '[')
	set(q3, ']')
	set(med, 'M')
	for _, o := range b.Outliers {
		set(cell(o), '*')
	}
	return string(buf)
}

// Series is a named sequence of (x, y) points for line charts.
type Series struct {
	Name string
	X, Y []float64
}

// RenderChart draws one or more series as an ASCII scatter/line chart of the
// given dimensions. Each series uses its own glyph ('#', 'o', '+', …).
// The axes are annotated with their ranges.
func RenderChart(w io.Writer, title string, series []Series, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xLo, xHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xLo = math.Min(xLo, s.X[i])
			xHi = math.Max(xHi, s.X[i])
			yLo = math.Min(yLo, s.Y[i])
			yHi = math.Max(yHi, s.Y[i])
		}
	}
	if math.IsInf(xLo, 1) {
		return fmt.Errorf("export: chart %q has no points", title)
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'#', 'o', '+', 'x', '@', '%'}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int((s.X[i] - xLo) / (xHi - xLo) * float64(width-1))
			r := int((s.Y[i] - yLo) / (yHi - yLo) * float64(height-1))
			r = height - 1 - r // origin bottom-left
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = g
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = leftPad(F(yHi), 8)
		}
		if r == height-1 {
			label = leftPad(F(yLo), 8)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s\n", strings.Repeat(" ", 8),
		F(xLo), leftPad(F(xHi), width-len(F(xLo)))); err != nil {
		return err
	}
	for si, s := range series {
		if s.Name == "" {
			continue
		}
		if _, err := fmt.Fprintf(w, "          %c = %s\n", glyphs[si%len(glyphs)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func leftPad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}
