package export

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cdfpoison/internal/stats"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"x,y", "3"}})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\n1,2\n\"x,y\",3\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestWriteCSVRowMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("mismatched row accepted")
	}
}

func TestFFormats(t *testing.T) {
	for _, c := range []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "nan"},
	} {
		if got := F(c.in); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("very-long-name", "22")
	tb.AddRow("short") // padded
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	h, rows := tb.CSV()
	if len(h) != 2 || len(rows) != 3 {
		t.Fatalf("CSV export wrong: %v %v", h, rows)
	}
}

func TestRenderBoxplot(t *testing.T) {
	b := stats.NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 100})
	s := RenderBoxplot(b, 0, 110, 60)
	if len(s) != 60 {
		t.Fatalf("width %d, want 60", len(s))
	}
	for _, ch := range []string{"[", "]", "M", "|", "*"} {
		if !strings.Contains(s, ch) {
			t.Errorf("boxplot missing %q: %q", ch, s)
		}
	}
	// Median left of the outlier.
	if strings.Index(s, "M") > strings.Index(s, "*") {
		t.Errorf("median not left of outlier: %q", s)
	}
}

func TestRenderBoxplotClamps(t *testing.T) {
	b := stats.NewBoxplot([]float64{5, 6, 7})
	// Degenerate range and tiny width must not panic.
	s := RenderBoxplot(b, 10, 10, 3)
	if len(s) != 10 {
		t.Fatalf("clamped width %d, want 10", len(s))
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	err := RenderChart(&buf, "test chart", []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("legend missing")
	}
}

func TestRenderChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, "empty", nil, 40, 10); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestRenderChartConstant(t *testing.T) {
	var buf bytes.Buffer
	err := RenderChart(&buf, "const", []Series{
		{X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
}
