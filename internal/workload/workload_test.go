package workload

import (
	"math"
	"reflect"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func fixture(t testing.TB, n int) keys.Set {
	t.Helper()
	ks, err := dataset.Uniform(xrand.New(3), n, int64(n)*20)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestSpecValidation(t *testing.T) {
	for name, spec := range map[string]Spec{
		"negative-read":  NewUniform(-1),
		"read-over-100":  NewUniform(101),
		"nan-read":       NewUniform(math.NaN()),
		"zero-theta":     NewZipf(0, 90),
		"negative-theta": NewZipf(-1, 90),
		"inf-theta":      NewZipf(math.Inf(1), 90),
		"zero-hot":       NewHotspot(0, 90),
		"hot-over-100":   NewHotspot(101, 90),
		"unknown-kind":   {Kind: Kind(42), ReadPct: 90},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: invalid spec %+v accepted", name, spec)
		}
	}
	for _, spec := range []Spec{NewUniform(0), NewUniform(100), NewZipf(1.1, 90), NewHotspot(1, 50)} {
		if err := spec.Validate(); err != nil {
			t.Errorf("valid spec %+v rejected: %v", spec, err)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	ks := fixture(t, 50)
	if _, err := NewGenerator(NewZipf(0, 90), ks, 1000, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewGenerator(NewUniform(90), keys.Set{}, 1000, 1); err == nil {
		t.Fatal("empty initial set accepted")
	}
	if _, err := NewGenerator(NewUniform(90), ks, 0, 1); err == nil {
		t.Fatal("zero domain accepted")
	}
}

// TestStreamDeterminism: identical arguments produce identical streams;
// different seeds produce different ones.
func TestStreamDeterminism(t *testing.T) {
	ks := fixture(t, 200)
	for _, spec := range []Spec{NewUniform(90), NewZipf(1.1, 90), NewHotspot(2, 90)} {
		a, err := NewGenerator(spec, ks, 10_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewGenerator(spec, ks, 10_000, 7)
		c, _ := NewGenerator(spec, ks, 10_000, 8)
		opsA, opsB, opsC := a.Ops(500), b.Ops(500), c.Ops(500)
		if !reflect.DeepEqual(opsA, opsB) {
			t.Fatalf("%s: same seed diverged", spec)
		}
		if reflect.DeepEqual(opsA, opsC) {
			t.Fatalf("%s: different seeds produced identical streams", spec)
		}
	}
}

// TestSourceAttribution: SetSources tags ops round-robin from the op
// counter WITHOUT consuming RNG draws, so the (Read, Key) stream is
// byte-identical with sources on or off — the invariant that keeps every
// recorded scenario CSV stable when a defense sweep turns attribution on.
func TestSourceAttribution(t *testing.T) {
	ks := fixture(t, 200)
	for _, spec := range []Spec{NewUniform(90), NewZipf(1.1, 90), NewHotspot(2, 90)} {
		plain, err := NewGenerator(spec, ks, 10_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		tagged, _ := NewGenerator(spec, ks, 10_000, 7)
		tagged.SetSources(4)
		po, to := plain.Ops(500), tagged.Ops(500)
		for i := range po {
			if po[i].Read != to[i].Read || po[i].Key != to[i].Key {
				t.Fatalf("%s: op %d (Read, Key) changed under source tagging", spec, i)
			}
			if po[i].Source != 0 {
				t.Fatalf("%s: untagged op %d has Source %d", spec, i, po[i].Source)
			}
			if to[i].Source != i%4 {
				t.Fatalf("%s: op %d Source = %d, want %d", spec, i, to[i].Source, i%4)
			}
		}
	}
	// n <= 1 disables attribution.
	g, _ := NewGenerator(NewUniform(50), ks, 10_000, 7)
	g.SetSources(1)
	for i, op := range g.Ops(20) {
		if op.Source != 0 {
			t.Fatalf("SetSources(1): op %d has Source %d", i, op.Source)
		}
	}
}

// TestOpsInto: the buffer-reusing draw produces the identical stream to
// Ops, reuses a large-enough destination in place, and grows a short one.
func TestOpsInto(t *testing.T) {
	ks := fixture(t, 200)
	a, err := NewGenerator(NewZipf(1.1, 80), ks, 10_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewGenerator(NewZipf(1.1, 80), ks, 10_000, 7)

	want := a.Ops(300)
	buf := make([]Op, 0, 300)
	got := b.OpsInto(buf, 300)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("OpsInto stream diverged from Ops")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("OpsInto reallocated despite sufficient capacity")
	}
	// Second epoch into the same buffer: stream continues, buffer reused.
	want = a.Ops(300)
	got2 := b.OpsInto(got, 300)
	if !reflect.DeepEqual(want, got2) {
		t.Fatal("second OpsInto epoch diverged from Ops")
	}
	if &got2[0] != &got[0] {
		t.Fatal("second OpsInto epoch reallocated")
	}
	// Undersized destination grows.
	short := b.OpsInto(make([]Op, 2), 10)
	if len(short) != 10 {
		t.Fatalf("undersized dst drew %d ops, want 10", len(short))
	}
}

// TestReadWriteMix: the read fraction tracks ReadPct, reads always target
// stored keys, and writes stay inside the domain.
func TestReadWriteMix(t *testing.T) {
	ks := fixture(t, 300)
	const domain = 9_000
	for _, spec := range []Spec{NewUniform(80), NewZipf(1.2, 80), NewHotspot(5, 80)} {
		g, err := NewGenerator(spec, ks, domain, 13)
		if err != nil {
			t.Fatal(err)
		}
		reads := 0
		const total = 5_000
		for _, op := range g.Ops(total) {
			if op.Read {
				reads++
				if !ks.Contains(op.Key) {
					t.Fatalf("%s: read key %d not stored", spec, op.Key)
				}
			} else if op.Key < 0 || op.Key >= domain {
				t.Fatalf("%s: write key %d outside [0, %d)", spec, op.Key, domain)
			}
		}
		frac := float64(reads) / total * 100
		if frac < 75 || frac > 85 {
			t.Fatalf("%s: read fraction %.1f%%, want ~80%%", spec, frac)
		}
	}
}

// TestZipfSkew: under Zipf the hottest rank must receive far more reads
// than a deep rank, and skew must grow with theta.
func TestZipfSkew(t *testing.T) {
	ks := fixture(t, 500)
	counts := func(theta float64) map[int64]int {
		g, err := NewGenerator(NewZipf(theta, 100), ks, 1_000, 21)
		if err != nil {
			t.Fatal(err)
		}
		c := map[int64]int{}
		for _, op := range g.Ops(30_000) {
			c[op.Key]++
		}
		return c
	}
	mild, hard := counts(0.8), counts(1.5)
	top := ks.At(0)
	deep := ks.At(400)
	if mild[top] <= mild[deep]*3 {
		t.Fatalf("theta=0.8: rank-1 count %d not ≫ rank-401 count %d", mild[top], mild[deep])
	}
	if hard[top] <= mild[top] {
		t.Fatalf("skew did not grow with theta: %d vs %d", hard[top], mild[top])
	}
}

// TestHotspotConcentration: most reads land inside the hot rank window.
func TestHotspotConcentration(t *testing.T) {
	ks := fixture(t, 1_000)
	const hotPct = 2.0
	g, err := NewGenerator(NewHotspot(hotPct, 100), ks, 1_000, 31)
	if err != nil {
		t.Fatal(err)
	}
	width := int(float64(ks.Len()) * hotPct / 100)
	lo := (ks.Len() - width) / 2
	hi := lo + width - 1
	inWindow := 0
	const total = 20_000
	for _, op := range g.Ops(total) {
		r, ok := ks.Rank(op.Key)
		if !ok {
			t.Fatalf("read key %d not stored", op.Key)
		}
		if r-1 >= lo && r-1 <= hi {
			inWindow++
		}
	}
	frac := float64(inWindow) / total
	// hotWindowShare (0.9) plus the uniform tail's contribution.
	if frac < 0.85 {
		t.Fatalf("only %.1f%% of hotspot reads in the hot window", frac*100)
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, spec := range []Spec{NewUniform(90), NewUniform(42.5), NewZipf(1.1, 90), NewHotspot(2, 75)} {
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if back != spec {
			t.Fatalf("round trip %s -> %+v, want %+v", spec, back, spec)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := map[string]Spec{
		"uniform":      NewUniform(90),
		"uniform:80":   NewUniform(80),
		"zipf":         NewZipf(1.1, 90),
		"zipf:1.5":     NewZipf(1.5, 90),
		"zipf:1.5:70":  NewZipf(1.5, 70),
		"hotspot":      NewHotspot(1, 90),
		"hotspot:5":    NewHotspot(5, 90),
		"hotspot:5:60": NewHotspot(5, 60),
	}
	for in, want := range cases {
		got, err := ParseSpec(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%q -> %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{
		"", "zip", "uniform:x", "uniform:101", "uniform:-1", "uniform:80:90",
		"zipf:0", "zipf:-2:50", "zipf:1:2:3", "hotspot:0", "hotspot:200",
		"hotspot:5:x", "zipf:NaN", "uniform:NaN", "zipf:+Inf",
	} {
		if spec, err := ParseSpec(bad); err == nil {
			t.Errorf("%q accepted as %+v", bad, spec)
		}
	}
}
