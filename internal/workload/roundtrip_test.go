package workload

// The spec round-trip PROPERTY test: FuzzParseSpec checks parser-side
// round trips over arbitrary strings, but only inputs the fuzzer happens
// to synthesize; this test quantifies over the CONSTRUCTOR side — specs
// built programmatically (as the bench sweeps and API callers do) must
// survive String → ParseSpec exactly, for a deterministic sample of the
// whole parameter space plus its boundary values.

import (
	"testing"

	"cdfpoison/internal/xrand"
)

func TestSpecRoundTripProperty(t *testing.T) {
	check := func(s Spec) {
		t.Helper()
		if err := s.Validate(); err != nil {
			t.Fatalf("generated spec %+v invalid: %v", s, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if back != s {
			t.Fatalf("round trip of %+v via %q: got %+v", s, s.String(), back)
		}
	}

	// Boundary values of every field.
	for _, s := range []Spec{
		NewUniform(0), NewUniform(100), NewUniform(12.5),
		NewZipf(0.0625, 0), NewZipf(1.1, 90), NewZipf(4, 100),
		NewHotspot(0.25, 0), NewHotspot(100, 100), NewHotspot(1, 90),
	} {
		check(s)
	}

	// Deterministic random sample across the parameter space. Parameters
	// are drawn on a binary grid (multiples of 1/16) so every value prints
	// exactly under %g and the property isolates PARSER fidelity, not
	// decimal float formatting.
	rng := xrand.New(99)
	grid := func(lo, hi float64) float64 {
		steps := int((hi - lo) * 16)
		return lo + float64(rng.Intn(steps+1))/16
	}
	for i := 0; i < 500; i++ {
		readPct := grid(0, 100)
		switch rng.Intn(3) {
		case 0:
			check(NewUniform(readPct))
		case 1:
			check(NewZipf(grid(0.0625, 8), readPct))
		default:
			check(NewHotspot(grid(0.0625, 100), readPct))
		}
	}
}
