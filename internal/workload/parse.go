package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the workload spec syntax of `lispoison serve`, the
// serving-layer sibling of the retrain-policy syntax (dynamic.ParsePolicy):
//
//	uniform[:READ%]          e.g. "uniform", "uniform:80"
//	zipf[:THETA[:READ%]]     e.g. "zipf", "zipf:1.2", "zipf:1.2:80"
//	hotspot[:HOT%[:READ%]]   e.g. "hotspot", "hotspot:5", "hotspot:5:80"
//
// Omitted fields default to READ% = 90, THETA = 1.1, HOT% = 1. ParseSpec is
// total: any input yields a valid Spec or an error, never a panic
// (FuzzParseSpec enforces this), and Spec.String round-trips through it.
func ParseSpec(s string) (Spec, error) {
	fields := strings.Split(s, ":")
	const defaultReadPct = 90
	var spec Spec
	var maxFields int
	switch fields[0] {
	case "uniform":
		spec = NewUniform(defaultReadPct)
		maxFields = 2
	case "zipf":
		spec = NewZipf(1.1, defaultReadPct)
		maxFields = 3
	case "hotspot":
		spec = NewHotspot(1, defaultReadPct)
		maxFields = 3
	default:
		return Spec{}, fmt.Errorf("unknown workload %q (want uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]])", s)
	}
	if len(fields) > maxFields {
		return Spec{}, fmt.Errorf("workload %q: too many ':' fields", s)
	}
	parse := func(raw, what string, dst *float64) error {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("workload %q: bad %s %q", s, what, raw)
		}
		*dst = v
		return nil
	}
	if len(fields) >= 2 {
		switch spec.Kind {
		case Zipf:
			if err := parse(fields[1], "theta", &spec.Theta); err != nil {
				return Spec{}, err
			}
		case Hotspot:
			if err := parse(fields[1], "hot%", &spec.HotPct); err != nil {
				return Spec{}, err
			}
		default:
			if err := parse(fields[1], "read%", &spec.ReadPct); err != nil {
				return Spec{}, err
			}
		}
	}
	if len(fields) == 3 {
		if err := parse(fields[2], "read%", &spec.ReadPct); err != nil {
			return Spec{}, err
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, fmt.Errorf("workload %q: %w", s, err)
	}
	return spec, nil
}
