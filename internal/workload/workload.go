// Package workload generates deterministic read/write operation streams for
// the serving scenarios: an honest population issuing point lookups over the
// stored keys interleaved with fresh inserts, with the read-key distribution
// selectable between uniform, Zipf-over-rank, and an adversarial hotspot
// mix. Streams are pure functions of (spec, initial key set, domain, seed) —
// seeded via internal/xrand, no clocks, no global state — so every scenario
// replay and every worker-equivalence test sees byte-identical traffic.
//
// Read keys are drawn by RANK into the initial key set (the population
// queries what it stored), which keeps read workloads meaningful as the
// backend absorbs new writes: a lookup always targets a key that is present,
// so probe counts measure cost, not miss rates. Write keys are drawn
// uniformly from the key universe [0, domain) and may collide with stored
// keys — the backend's accept/reject bookkeeping handles that, as in the
// online scenario.
package workload

import (
	"fmt"
	"math"
	"sort"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// Kind selects the read-key distribution over ranks.
type Kind int

const (
	// Uniform reads hit every stored rank equally often.
	Uniform Kind = iota
	// Zipf reads follow a Zipf law over rank: rank r drawn with probability
	// ∝ 1/r^Theta — the classic skewed-popularity serving workload.
	Zipf
	// Hotspot reads concentrate on a small contiguous rank window (the
	// middle HotPct percent of ranks): hotWindowShare of reads land in the
	// window, the rest are uniform. This is the adversarial mix — an
	// attacker who poisons the ranges the population actually reads
	// multiplies per-query damage.
	Hotspot
)

// String names the kind for specs and CSV cells.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// hotWindowShare is the fraction of reads a Hotspot spec sends into the hot
// rank window; the remainder are uniform over all ranks.
const hotWindowShare = 0.9

// Spec parameterizes a workload stream. The zero value is invalid;
// construct with NewUniform/NewZipf/NewHotspot or ParseSpec.
type Spec struct {
	Kind Kind
	// ReadPct is the percentage of operations that are reads, in [0, 100].
	ReadPct float64
	// Theta is the Zipf exponent (> 0); ignored by other kinds.
	Theta float64
	// HotPct is the hot window's size as a percentage of the rank space,
	// in (0, 100]; ignored by other kinds.
	HotPct float64
}

// NewUniform returns a uniform-read spec with the given read percentage.
func NewUniform(readPct float64) Spec { return Spec{Kind: Uniform, ReadPct: readPct} }

// NewZipf returns a Zipf-over-rank spec with exponent theta.
func NewZipf(theta, readPct float64) Spec {
	return Spec{Kind: Zipf, ReadPct: readPct, Theta: theta}
}

// NewHotspot returns a hotspot spec whose hot window covers hotPct percent
// of the rank space.
func NewHotspot(hotPct, readPct float64) Spec {
	return Spec{Kind: Hotspot, ReadPct: readPct, HotPct: hotPct}
}

// Validate reports whether the spec's parameters are in range.
func (s Spec) Validate() error {
	if s.ReadPct < 0 || s.ReadPct > 100 || math.IsNaN(s.ReadPct) {
		return fmt.Errorf("workload: read%% %v outside [0, 100]", s.ReadPct)
	}
	switch s.Kind {
	case Uniform:
	case Zipf:
		if !(s.Theta > 0) || math.IsInf(s.Theta, 0) {
			return fmt.Errorf("workload: zipf theta %v must be a positive finite number", s.Theta)
		}
	case Hotspot:
		if !(s.HotPct > 0 && s.HotPct <= 100) {
			return fmt.Errorf("workload: hotspot%% %v outside (0, 100]", s.HotPct)
		}
	default:
		return fmt.Errorf("workload: unknown kind %d", int(s.Kind))
	}
	return nil
}

// String renders the spec in the syntax ParseSpec accepts.
func (s Spec) String() string {
	switch s.Kind {
	case Zipf:
		return fmt.Sprintf("zipf:%g:%g", s.Theta, s.ReadPct)
	case Hotspot:
		return fmt.Sprintf("hotspot:%g:%g", s.HotPct, s.ReadPct)
	default:
		return fmt.Sprintf("uniform:%g", s.ReadPct)
	}
}

// Op is one operation of the stream.
type Op struct {
	Read bool
	Key  int64
	// Source identifies the logical client that issued the op, for
	// per-source rate limiting in the defense plane (internal/defense).
	// Generators assign it round-robin from an op counter — see SetSources —
	// so it consumes no RNG draws and streams stay byte-identical in
	// (Read, Key) whether or not sources are enabled. Always 0 until
	// SetSources is called with n >= 2.
	Source int
}

// Generator produces the deterministic operation stream for one spec.
type Generator struct {
	spec    Spec
	initial keys.Set
	domain  int64
	rng     *xrand.RNG
	// cum is the cumulative Zipf weight table over ranks (Zipf only):
	// cum[i] = Σ_{r<=i+1} r^-Theta, normalized to cum[n-1] == 1.
	cum []float64
	// hotLo/hotHi bound the hot rank window (Hotspot only), inclusive.
	hotLo, hotHi int
	// sources > 0 spreads ops round-robin across that many logical clients
	// (see SetSources); opCount is the counter driving the rotation.
	sources int
	opCount int
}

// SetSources spreads subsequent ops round-robin across n logical clients:
// op i is attributed to client i mod n. n <= 1 disables attribution
// (Source stays 0). The assignment is driven by a plain op counter, NOT the
// RNG, so enabling sources never perturbs the (Read, Key) stream — the
// byte-identity every recorded scenario CSV depends on.
func (g *Generator) SetSources(n int) {
	if n <= 1 {
		n = 0
	}
	g.sources = n
}

// NewGenerator builds the stream generator. Reads target the initial key
// set by rank; writes are uniform over [0, domain). The generator is
// deterministic: identical arguments produce identical streams.
func NewGenerator(spec Spec, initial keys.Set, domain int64, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if initial.Len() < 1 {
		return nil, fmt.Errorf("workload: need a non-empty initial key set")
	}
	if domain < 1 {
		return nil, fmt.Errorf("workload: need domain >= 1, got %d", domain)
	}
	g := &Generator{spec: spec, initial: initial, domain: domain, rng: xrand.New(seed)}
	n := initial.Len()
	switch spec.Kind {
	case Zipf:
		g.cum = make([]float64, n)
		sum := 0.0
		for r := 1; r <= n; r++ {
			sum += math.Pow(float64(r), -spec.Theta)
			g.cum[r-1] = sum
		}
		for i := range g.cum {
			g.cum[i] /= sum
		}
	case Hotspot:
		width := int(float64(n) * spec.HotPct / 100)
		if width < 1 {
			width = 1
		}
		g.hotLo = (n - width) / 2
		g.hotHi = g.hotLo + width - 1
	}
	return g, nil
}

// readRank draws the next read's 0-based rank.
func (g *Generator) readRank() int {
	n := g.initial.Len()
	switch g.spec.Kind {
	case Zipf:
		u := g.rng.Float64()
		return sort.SearchFloat64s(g.cum, u)
	case Hotspot:
		if g.rng.Float64() < hotWindowShare {
			return g.hotLo + g.rng.Intn(g.hotHi-g.hotLo+1)
		}
		return g.rng.Intn(n)
	default:
		return g.rng.Intn(n)
	}
}

// Next draws the next operation of the stream.
func (g *Generator) Next() Op {
	var src int
	if g.sources > 0 {
		src = g.opCount % g.sources
	}
	g.opCount++
	if g.rng.Float64()*100 < g.spec.ReadPct {
		return Op{Read: true, Key: g.initial.At(g.readRank()), Source: src}
	}
	return Op{Key: g.rng.Int63n(g.domain), Source: src}
}

// Ops draws the next n operations.
func (g *Generator) Ops(n int) []Op {
	return g.OpsInto(nil, n)
}

// OpsInto draws the next n operations into dst, reusing its backing array
// when it is large enough — the allocation-free path the epoch loop of the
// concurrent serving scenario uses to re-draw each epoch's stream into one
// buffer. The stream is identical to n calls of Next.
func (g *Generator) OpsInto(dst []Op, n int) []Op {
	if cap(dst) < n {
		dst = make([]Op, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = g.Next()
	}
	return dst
}
