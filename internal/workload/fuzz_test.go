package workload

import (
	"math"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// fixtureKeys is the shared fuzz fixture (fuzz targets cannot take
// testing.TB helpers in the corpus path).
func fixtureKeys() keys.Set {
	ks, err := dataset.Uniform(xrand.New(9), 200, 4_000)
	if err != nil {
		panic(err)
	}
	return ks
}

// FuzzParseSpec: the workload spec parser shared by `lispoison serve` must
// be total — any input yields a valid Spec or an error, never a panic —
// and every accepted spec must validate and round-trip through String.
// The checked-in corpus under testdata/fuzz replays in CI.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"uniform", "uniform:90", "zipf", "zipf:1.1", "zipf:1.1:90",
		"hotspot", "hotspot:2", "hotspot:2:90", "", ":", "zipf::",
		"uniform:1e309", "hotspot:-0", "zipf:0x1p-10:50", "uniform:+90",
		"zipf:NaN", "zipf:Inf:50", "uniform:90:", "hotspot:2:90:7",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec %+v: %v", s, spec, verr)
		}
		if math.IsNaN(spec.ReadPct) || math.IsNaN(spec.Theta) || math.IsNaN(spec.HotPct) {
			t.Fatalf("ParseSpec(%q) produced NaN fields: %+v", s, spec)
		}
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("round trip of %q via %q failed: %v", s, spec.String(), err)
		}
		if back != spec {
			t.Fatalf("round trip of %q: %+v != %+v", s, back, spec)
		}
	})
}

// FuzzGenerator: every accepted spec must drive the generator without
// panicking, and the stream must respect the read/write key contracts.
func FuzzGenerator(f *testing.F) {
	f.Add("uniform:50", uint64(1))
	f.Add("zipf:1.3:80", uint64(2))
	f.Add("hotspot:3:70", uint64(3))
	ks := fixtureKeys()
	f.Fuzz(func(t *testing.T, s string, seed uint64) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		g, err := NewGenerator(spec, ks, 10_000, seed)
		if err != nil {
			t.Fatalf("valid spec %+v rejected by NewGenerator: %v", spec, err)
		}
		for _, op := range g.Ops(64) {
			if op.Read && !ks.Contains(op.Key) {
				t.Fatalf("spec %q: read key %d not stored", s, op.Key)
			}
			if !op.Read && (op.Key < 0 || op.Key >= 10_000) {
				t.Fatalf("spec %q: write key %d out of domain", s, op.Key)
			}
		}
	})
}
