// Package stats supplies the statistical primitives the experiments rely on:
// exact and streaming moments, quantiles, five-number boxplot summaries (the
// paper reports every evaluation as a boxplot of ratio losses), and fixed-bin
// histograms for CDF visualization.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates count, mean, and variance using Welford's online
// algorithm, which is numerically stable for the wide magnitude ranges that
// key data produces. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance (divides by n), matching the paper's
// moment-based formulation Var_X = M_X² − (M_X)². Returns 0 when n == 0.
func (m *Moments) Var() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVar returns the Bessel-corrected variance (divides by n−1).
func (m *Moments) SampleVar() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// It panics on an empty slice or q outside [0,1]. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v outside [0,1]", q))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Boxplot is the five-number summary plus Tukey whiskers and outliers — the
// exact information a matplotlib-style boxplot (as in Figures 5–8) draws.
type Boxplot struct {
	N                   int
	Min, Q1, Median, Q3 float64
	Max                 float64
	WhiskerLo           float64 // smallest observation >= Q1 − 1.5·IQR
	WhiskerHi           float64 // largest observation <= Q3 + 1.5·IQR
	Outliers            []float64
	Mean                float64
}

// NewBoxplot computes the summary of xs. It panics on empty input.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		panic("stats: NewBoxplot of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	b := Boxplot{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   Mean(sorted),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo = b.Max
	b.WhiskerHi = b.Min
	for _, x := range sorted {
		if x >= loFence && x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x <= hiFence && x > b.WhiskerHi {
			b.WhiskerHi = x
		}
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b
}

// String renders the summary on one line.
func (b Boxplot) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records an observation; values outside [Lo, Hi) are tallied in
// under/overflow counters rather than dropped silently.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.under++
		return
	}
	if x >= h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i == len(h.Counts) { // defensive: x == Hi after rounding
		i--
	}
	h.Counts[i]++
}

// Total returns the count of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// OutOfRange returns the number of observations below Lo and at-or-above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// GeoMean returns the geometric mean of strictly positive values; it returns
// 0 if xs is empty or contains a non-positive value. Ratio losses are
// naturally summarized geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
