package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cdfpoison/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMomentsAgainstDirect(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 1000)
	var m Moments
	for i := range xs {
		xs[i] = rng.NormFloat64()*50 + 1e9 // large offset stresses stability
		m.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	wantVar := ss / float64(len(xs))
	if !almost(m.Mean(), mean, 1e-3) {
		t.Errorf("mean %v vs direct %v", m.Mean(), mean)
	}
	if !almost(m.Var(), wantVar, wantVar*1e-9+1e-9) {
		t.Errorf("var %v vs direct %v", m.Var(), wantVar)
	}
	if m.N() != 1000 {
		t.Errorf("N = %d", m.N())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Var() != 0 || m.SampleVar() != 0 {
		t.Error("empty moments not zero")
	}
	m.Add(5)
	if m.Mean() != 5 || m.Var() != 0 || m.SampleVar() != 0 {
		t.Error("single-observation moments wrong")
	}
}

func TestSampleVarBessel(t *testing.T) {
	var m Moments
	for _, x := range []float64{1, 2, 3, 4} {
		m.Add(x)
	}
	// mean 2.5, ss = 2.25+0.25+0.25+2.25 = 5; var = 1.25, sample var = 5/3.
	if !almost(m.Var(), 1.25, 1e-12) {
		t.Errorf("Var = %v", m.Var())
	}
	if !almost(m.SampleVar(), 5.0/3, 1e-12) {
		t.Errorf("SampleVar = %v", m.SampleVar())
	}
	if !almost(m.Std(), math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v", m.Std())
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{3, 1, 2, 4} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileSingleton(t *testing.T) {
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":   func() { Quantile(nil, 0.5) },
		"q>1":     func() { Quantile([]float64{1}, 1.5) },
		"q<0":     func() { Quantile([]float64{1}, -0.1) },
		"boxplot": func() { NewBoxplot(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := xrand.New(2)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestBoxplotKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100} // 100 is an outlier
	b := NewBoxplot(xs)
	if b.N != 9 || b.Min != 1 || b.Max != 100 {
		t.Fatalf("basic fields wrong: %+v", b)
	}
	if b.Median != 5 {
		t.Errorf("median = %v, want 5", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHi != 8 {
		t.Errorf("whisker high = %v, want 8", b.WhiskerHi)
	}
	if b.WhiskerLo != 1 {
		t.Errorf("whisker low = %v, want 1", b.WhiskerLo)
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

func TestBoxplotOrderingInvariant(t *testing.T) {
	// Note: WhiskerLo <= Q1 is NOT an invariant — quantiles interpolate, so
	// a dataset like {0, 100, 101, 102} has Q1 = 75 while every observation
	// below the box is an outlier and the low whisker clamps to 100. The
	// true invariants are the quartile ordering, whisker ordering, and that
	// whiskers are actual observations within [Min, Max].
	f := func(seed uint32) bool {
		r := xrand.New(uint64(seed))
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		b := NewBoxplot(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Min <= b.WhiskerLo && b.WhiskerLo <= b.WhiskerHi && b.WhiskerHi <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// The documented counterexample.
	b := NewBoxplot([]float64{0, 100, 101, 102})
	if b.WhiskerLo <= b.Q1 {
		t.Fatalf("expected WhiskerLo (%v) above interpolated Q1 (%v) on the counterexample", b.WhiskerLo, b.Q1)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 42} {
		h.Add(x)
	}
	if got := h.Total(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("out of range = (%d,%d), want (1,2)", under, over)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != wantCounts[i] {
			t.Errorf("bin %d = %d, want %d", i, c, wantCounts[i])
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bins":  func() { NewHistogram(0, 1, 0) },
		"range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); !almost(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean degenerate cases wrong")
	}
}
