// Package robust provides poisoning-resistant CDF fitters behind a common
// Fitter interface, pluggable into every learned substrate's retrain path
// (dynamic.NewWithFit, shard.NewWithFit, rmi.NewSingleWithFit). The OLS fit
// the paper attacks minimizes squared error, so a handful of adversarial
// keys can swing the slope arbitrarily; the estimators here bound a single
// key's influence instead — Theil–Sen by taking a median over pairwise
// slopes, trimmed least squares by refitting after discarding the
// worst-residual keys ("Testing the Robustness of Learned Index
// Structures", PAPERS.md).
//
// Every fitter is deterministic (no RNG, no map iteration) and offers a
// FitParallel path that fans the per-key work over an engine.Pool while
// producing a byte-identical Model for any worker count: each slope or
// residual is computed independently at its own index and the
// order-sensitive steps (sorting, selection) stay sequential. See DESIGN.md
// §10 for the fitter contract.
package robust

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// Fitter is the pluggable CDF-training contract: given a sorted key set,
// produce a regression.Model predicting 1-based ranks. Name() is the
// canonical spec form and round-trips through ParseFitter. Fit and
// FitParallel return byte-identical models for the same input; FitParallel
// merely spreads the per-key arithmetic over the pool.
//
// Model semantics match regression.FitCDF: Loss is the MSE of the returned
// line over the FULL input set (poison included — the fit may ignore keys,
// the loss may not, so ContentLoss comparisons across fitters stay
// apples-to-apples) and N is the full input size.
type Fitter interface {
	Name() string
	Fit(ks keys.Set) (regression.Model, error)
	FitParallel(ctx context.Context, pool *engine.Pool, ks keys.Set) (regression.Model, error)
}

// fitGrainFloor keeps parallel fan-out coarse enough that tiny fits stay on
// one task (same floor discipline as the serve-plane probe scans).
const fitGrainFloor = 256

// OLS is the undefended baseline: the exact least-squares fit the paper
// attacks (regression.FitCDF). Its presence makes "no robust training" a
// point on the same sweep axis as the robust estimators.
type OLS struct{}

// Name returns the canonical spec "ols".
func (OLS) Name() string { return "ols" }

// Fit delegates to the closed-form least-squares fit.
func (OLS) Fit(ks keys.Set) (regression.Model, error) { return regression.FitCDF(ks) }

// FitParallel is identical to Fit: the closed form is already a single
// exact pass, so there is nothing to fan out.
func (OLS) FitParallel(_ context.Context, _ *engine.Pool, ks keys.Set) (regression.Model, error) {
	return regression.FitCDF(ks)
}

// TheilSen is a deterministic Theil–Sen CDF estimator: the slope is the
// median of the n/2 disjoint pairwise slopes (key i paired with key i+n/2 —
// the Siegel-style pairing that keeps the estimator O(n log n) instead of
// O(n²) while preserving the 29% breakdown point), and the intercept is the
// median residual at that slope. A poisoning key moves one slope and one
// residual — never the median by more than one order statistic.
type TheilSen struct{}

// Name returns the canonical spec "theilsen".
func (TheilSen) Name() string { return "theilsen" }

// Fit runs the estimator sequentially.
func (TheilSen) Fit(ks keys.Set) (regression.Model, error) {
	return theilSen(context.Background(), nil, ks)
}

// FitParallel fans the slope and residual computations over the pool; the
// medians are taken over the same values in the same order, so the model is
// byte-identical for any worker count.
func (TheilSen) FitParallel(ctx context.Context, pool *engine.Pool, ks keys.Set) (regression.Model, error) {
	return theilSen(ctx, pool, ks)
}

func theilSen(ctx context.Context, pool *engine.Pool, ks keys.Set) (regression.Model, error) {
	n := ks.Len()
	if n == 0 {
		return regression.Model{}, regression.ErrTooFew
	}
	if n == 1 {
		// Degenerate single-key fit, mirroring regression.FitCDF: predict
		// rank 1 everywhere.
		return regression.Model{Line: regression.Line{W: 0, B: 1}, Loss: 0, N: 1}, nil
	}
	h := n / 2
	// Disjoint-pair slopes: rank distance is exactly h, key distance is
	// positive (keys are strictly increasing), so every slope is finite.
	slopes := fill(ctx, pool, n-h, func(i int) float64 {
		return float64(h) / float64(ks.At(i+h)-ks.At(i))
	})
	w := median(slopes)
	resid := fill(ctx, pool, n, func(i int) float64 {
		return float64(i+1) - w*float64(ks.At(i))
	})
	b := median(resid)
	line := regression.Line{W: w, B: b}
	loss, err := regression.EvaluateCDF(line, ks)
	if err != nil {
		return regression.Model{}, err
	}
	return regression.Model{Line: line, Loss: loss, N: n}, nil
}

// Trimmed is iterated trimmed least squares: fit, discard the Pct% of keys
// with the largest absolute rank residuals, refit on the survivors against
// their ORIGINAL ranks, for a fixed two rounds. Discarded keys still count
// in the reported Loss — the defense may refuse to train on a key, but the
// key is still stored and still costs probes.
type Trimmed struct {
	// Pct is the percentage of keys discarded per round, in (0, 50).
	Pct float64
}

// Name returns the canonical spec "trimmed:P".
func (t Trimmed) Name() string { return fmt.Sprintf("trimmed:%g", t.Pct) }

const trimRounds = 2

// Fit runs the estimator sequentially.
func (t Trimmed) Fit(ks keys.Set) (regression.Model, error) {
	return t.fit(context.Background(), nil, ks)
}

// FitParallel fans the residual scoring over the pool; selection and
// refitting stay sequential, so the model is byte-identical for any worker
// count.
func (t Trimmed) FitParallel(ctx context.Context, pool *engine.Pool, ks keys.Set) (regression.Model, error) {
	return t.fit(ctx, pool, ks)
}

func (t Trimmed) fit(ctx context.Context, pool *engine.Pool, ks keys.Set) (regression.Model, error) {
	if math.IsNaN(t.Pct) || t.Pct <= 0 || t.Pct >= 50 {
		return regression.Model{}, fmt.Errorf("robust: trim percentage %g outside (0, 50)", t.Pct)
	}
	n := ks.Len()
	full, err := regression.FitCDF(ks)
	if err != nil || n <= 2 {
		return full, err
	}
	drop := int(float64(n) * t.Pct / 100)
	if n-drop < 2 {
		drop = n - 2
	}
	if drop == 0 {
		return full, nil
	}
	// kept holds the surviving key indices, always in ascending order.
	kept := make([]int, n)
	for i := range kept {
		kept[i] = i
	}
	line := full.Line
	type scored struct {
		idx int
		r   float64
	}
	for round := 0; round < trimRounds; round++ {
		resid := fill(ctx, pool, len(kept), func(j int) scored {
			i := kept[j]
			d := line.Predict(ks.At(i)) - float64(i+1)
			return scored{idx: i, r: math.Abs(d)}
		})
		// Keep the len(kept)-drop smallest residuals; ties break on the
		// lower original index so the selection is deterministic.
		sort.Slice(resid, func(a, b int) bool {
			if resid[a].r != resid[b].r {
				return resid[a].r < resid[b].r
			}
			return resid[a].idx < resid[b].idx
		})
		keepN := len(kept) - drop
		if keepN < 2 {
			keepN = 2
		}
		next := make([]int, keepN)
		for j := 0; j < keepN; j++ {
			next[j] = resid[j].idx
		}
		sort.Ints(next)
		kept = next
		// Refit the survivors against their ORIGINAL 1-based ranks: the
		// model must still predict positions in the full stored array.
		x := make([]float64, len(kept))
		y := make([]float64, len(kept))
		for j, i := range kept {
			x[j] = float64(ks.At(i))
			y[j] = float64(i + 1)
		}
		line, err = regression.FitXY(x, y)
		if err != nil {
			return regression.Model{}, err
		}
	}
	loss, err := regression.EvaluateCDF(line, ks)
	if err != nil {
		return regression.Model{}, err
	}
	return regression.Model{Line: line, Loss: loss, N: n}, nil
}

// fill computes out[i] = fn(i) for i in [0, n), over the pool when one is
// supplied and the input is large enough to be worth fanning out. Every
// element is computed independently at its own index, so the output is
// byte-identical for any worker count.
func fill[T any](ctx context.Context, pool *engine.Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if pool == nil || pool.Workers() == 1 || n < fitGrainFloor {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	grain := engine.GrainForMin(n, pool, fitGrainFloor)
	// Chunk errors are impossible (fn is total); ignore the error path.
	_, _ = engine.MapChunks(ctx, pool, n, grain, func(lo, hi int) (struct{}, error) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
		return struct{}{}, nil
	})
	return out
}

// median returns the median of xs (mean of the central pair for even
// lengths), sorting a copy. xs must be non-empty.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s)
	if m%2 == 1 {
		return s[m/2]
	}
	return (s[m/2-1] + s[m/2]) / 2
}

// ParseFitter parses the fitter spec syntax shared by the defense sweep and
// the lispoison defense subcommand:
//
//	ols              the undefended least-squares baseline
//	theilsen         deterministic Theil–Sen median-of-slopes
//	trimmed:P        trimmed least squares discarding P% per round (0<P<50)
//
// ParseFitter is total: any input yields a Fitter or an error, never a
// panic, and Fitter.Name round-trips through it.
func ParseFitter(s string) (Fitter, error) {
	fields := strings.Split(s, ":")
	switch fields[0] {
	case "ols":
		if len(fields) > 1 {
			return nil, fmt.Errorf("fitter %q: ols takes no parameters", s)
		}
		return OLS{}, nil
	case "theilsen":
		if len(fields) > 1 {
			return nil, fmt.Errorf("fitter %q: theilsen takes no parameters", s)
		}
		return TheilSen{}, nil
	case "trimmed":
		if len(fields) != 2 {
			return nil, fmt.Errorf("fitter %q: want trimmed:P", s)
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fitter %q: bad percentage %q", s, fields[1])
		}
		if math.IsNaN(p) || p <= 0 || p >= 50 {
			return nil, fmt.Errorf("fitter %q: percentage %g outside (0, 50)", s, p)
		}
		return Trimmed{Pct: p}, nil
	default:
		return nil, fmt.Errorf("unknown fitter %q (want ols | theilsen | trimmed:P)", s)
	}
}
