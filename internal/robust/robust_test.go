package robust

import (
	"context"
	"math"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
	"cdfpoison/internal/xrand"
)

func mustSet(t *testing.T, ks []int64) keys.Set {
	t.Helper()
	s, err := keys.New(ks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// progression builds the exact line fixture: keys a, a+step, a+2*step, ...
func progression(t *testing.T, a, step int64, n int) keys.Set {
	t.Helper()
	out := make([]int64, n)
	for i := range out {
		out[i] = a + step*int64(i)
	}
	return mustSet(t, out)
}

// poisoned returns the progression plus a dense adversarial cluster at the
// high end — the shape GreedyMultiPoint produces.
func poisoned(t *testing.T, clean keys.Set, cluster int) keys.Set {
	t.Helper()
	out := append([]int64(nil), clean.Keys()...)
	base := clean.Max() - int64(cluster) - 1
	for i := 0; i < cluster; i++ {
		out = append(out, base+int64(i))
	}
	s, err := keys.New(out)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func allFitters() []Fitter {
	return []Fitter{OLS{}, TheilSen{}, Trimmed{Pct: 10}, Trimmed{Pct: 25}}
}

func TestOLSMatchesFitCDF(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(7), 300, 15000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := regression.FitCDF(ks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OLS{}.Fit(ks)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("OLS.Fit = %+v, FitCDF = %+v", got, want)
	}
}

func TestTheilSenExactOnPerfectLine(t *testing.T) {
	ks := progression(t, 100, 7, 201)
	m, err := TheilSen{}.Fit(ks)
	if err != nil {
		t.Fatal(err)
	}
	if w := 1.0 / 7.0; math.Abs(m.Line.W-w) > 1e-12 {
		t.Fatalf("W = %v, want %v", m.Line.W, w)
	}
	if m.Loss > 1e-18 {
		t.Fatalf("Loss = %v on a perfect line", m.Loss)
	}
	if m.N != ks.Len() {
		t.Fatalf("N = %d, want %d", m.N, ks.Len())
	}
}

// TestRobustFittersResistCluster is the point of the package: a dense
// poison cluster drags the OLS slope, while Theil–Sen and trimmed LS stay
// materially closer to the clean fit.
func TestRobustFittersResistCluster(t *testing.T) {
	clean := progression(t, 1000, 50, 200)
	cleanFit, err := regression.FitCDF(clean)
	if err != nil {
		t.Fatal(err)
	}
	bad := poisoned(t, clean, 40)
	ols, err := OLS{}.Fit(bad)
	if err != nil {
		t.Fatal(err)
	}
	olsDrift := math.Abs(ols.Line.W - cleanFit.Line.W)
	if olsDrift == 0 {
		t.Fatal("fixture too weak: poison did not move the OLS slope")
	}
	for _, f := range []Fitter{TheilSen{}, Trimmed{Pct: 20}} {
		m, err := f.Fit(bad)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		drift := math.Abs(m.Line.W - cleanFit.Line.W)
		if drift >= olsDrift/2 {
			t.Errorf("%s slope drift %v not under half the OLS drift %v", f.Name(), drift, olsDrift)
		}
	}
}

// TestFitDeterminism: two sequential fits of the same input are
// byte-identical (comparable Model struct).
func TestFitDeterminism(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(13), 500, 40000)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range allFitters() {
		a, err := f.Fit(ks)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		b, err := f.Fit(ks)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if a != b {
			t.Errorf("%s: repeated fits differ: %+v vs %+v", f.Name(), a, b)
		}
	}
}

// TestFitWorkerEquivalence is the determinism contract: FitParallel over a
// multi-worker pool returns a Model byte-identical to the sequential Fit,
// for sizes on both sides of the grain floor.
func TestFitWorkerEquivalence(t *testing.T) {
	pools := []*engine.Pool{engine.New(1), engine.New(0), engine.New(5)}
	for _, n := range []int{2, 17, 255, 256, 2000} {
		ks, err := dataset.Uniform(xrand.New(uint64(n)), n, int64(n)*60)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range allFitters() {
			want, err := f.Fit(ks)
			if err != nil {
				t.Fatalf("%s n=%d: %v", f.Name(), n, err)
			}
			for _, p := range pools {
				got, err := f.FitParallel(context.Background(), p, ks)
				if err != nil {
					t.Fatalf("%s n=%d workers=%d: %v", f.Name(), n, p.Workers(), err)
				}
				if got != want {
					t.Errorf("%s n=%d workers=%d: parallel %+v != sequential %+v",
						f.Name(), n, p.Workers(), got, want)
				}
			}
		}
	}
}

func TestFitDegenerateSizes(t *testing.T) {
	for _, f := range allFitters() {
		if _, err := f.Fit(keys.Set{}); err == nil {
			t.Errorf("%s: no error on empty set", f.Name())
		}
		one := mustSet(t, []int64{42})
		m, err := f.Fit(one)
		if err != nil {
			t.Errorf("%s: single-key fit failed: %v", f.Name(), err)
		} else if m.Predict(42) != 1 {
			t.Errorf("%s: single-key fit predicts %v for the only key", f.Name(), m.Predict(42))
		}
		two := mustSet(t, []int64{10, 20})
		if _, err := f.Fit(two); err != nil {
			t.Errorf("%s: two-key fit failed: %v", f.Name(), err)
		}
	}
}

func TestTrimmedRejectsBadPct(t *testing.T) {
	ks := progression(t, 0, 3, 50)
	for _, pct := range []float64{0, -5, 50, 80, math.NaN()} {
		if _, err := (Trimmed{Pct: pct}).Fit(ks); err == nil {
			t.Errorf("Trimmed{%v}.Fit accepted an out-of-range percentage", pct)
		}
	}
}

func TestParseFitterRoundTrip(t *testing.T) {
	for _, spec := range []string{"ols", "theilsen", "trimmed:10", "trimmed:2.5"} {
		f, err := ParseFitter(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if f.Name() != spec {
			t.Errorf("ParseFitter(%q).Name() = %q", spec, f.Name())
		}
		again, err := ParseFitter(f.Name())
		if err != nil {
			t.Errorf("Name %q does not re-parse: %v", f.Name(), err)
		} else if again.Name() != f.Name() {
			t.Errorf("round trip drifted: %q -> %q", f.Name(), again.Name())
		}
	}
}

func TestParseFitterRejects(t *testing.T) {
	for _, spec := range []string{"", "huber", "ols:1", "theilsen:2", "trimmed",
		"trimmed:", "trimmed:0", "trimmed:50", "trimmed:-3", "trimmed:NaN", "trimmed:x", "trimmed:1:2"} {
		if _, err := ParseFitter(spec); err == nil {
			t.Errorf("ParseFitter(%q) accepted an invalid spec", spec)
		}
	}
}
