// Package xrand provides a small, deterministic pseudo-random toolkit used by
// every experiment in this repository.
//
// The standard library's math/rand is perfectly serviceable, but its default
// Source changed behaviour across Go releases and its global state makes
// experiments order-dependent. All results in EXPERIMENTS.md must be exactly
// reproducible from a seed, on any Go release, so we implement a tiny,
// well-known generator (splitmix64 seeding a xoshiro256**) along with the few
// samplers the paper's workloads need: uniform integers, normal and
// log-normal variates, and sampling without replacement.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**
// seeded by splitmix64). The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns an RNG deterministically derived from seed. Any seed,
// including zero, yields a well-mixed initial state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new RNG whose stream is independent of r's, derived from
// r's current state. It is used to give each experiment cell its own stream
// so that cells can be reordered or run in parallel without changing results.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63n returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire-style rejection keeps the distribution exactly uniform.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	un := uint64(n)
	// Rejection sampling on the top bits avoids modulo bias.
	mask := ^uint64(0)
	if un&(un-1) == 0 { // power of two
		return int64(r.Uint64() & (un - 1))
	}
	limit := mask - mask%un
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % un)
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method, which needs only Float64 and is branch-simple.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormFloat64 returns exp(mu + sigma*Z) with Z standard normal: a
// log-normal variate with the given log-space parameters. The paper's
// synthetic skewed workload uses mu=0, sigma=2 (Section V-B).
func (r *RNG) LogNormFloat64(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleInt64s draws k distinct integers from [0, m) uniformly at random.
// It panics if k > m or either argument is negative.
//
// Two strategies keep it O(k) expected space/time at any density:
//   - dense draws (k > m/4): shuffle-prefix over the full domain,
//   - sparse draws: Floyd's algorithm with a hash set.
//
// The result is NOT sorted; callers that need order sort it themselves.
func SampleInt64s(r *RNG, k int, m int64) []int64 {
	if k < 0 || m < 0 || int64(k) > m {
		panic("xrand: SampleInt64s requires 0 <= k <= m")
	}
	if k == 0 {
		return nil
	}
	if int64(k) > m/4 && m <= 1<<27 {
		// Dense: partial Fisher–Yates over an explicit domain array.
		domain := make([]int64, m)
		for i := range domain {
			domain[i] = int64(i)
		}
		for i := 0; i < k; i++ {
			j := int64(i) + r.Int63n(m-int64(i))
			domain[i], domain[j] = domain[j], domain[i]
		}
		return domain[:k]
	}
	// Sparse: Floyd's sampling — uniform over k-subsets, O(k) expected.
	seen := make(map[int64]struct{}, k)
	out := make([]int64, 0, k)
	for j := m - int64(k); j < m; j++ {
		t := r.Int63n(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
