package xrand

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverge at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values out of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := make([]uint64, 50)
	c := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split stream repeats parent stream: %d/50 matches", same)
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(3)
	for _, n := range []int64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	New(1).Int63n(0)
}

func TestInt63nRoughUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Int63n(n)]++
	}
	want := float64(trials) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f too far from 1", variance)
	}
}

func TestLogNormFloat64Positive(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormFloat64(0, 2); v <= 0 {
			t.Fatalf("log-normal variate %v not positive", v)
		}
	}
}

func TestLogNormMedian(t *testing.T) {
	// Median of LogNormal(mu, sigma) is exp(mu).
	r := New(17)
	const trials = 100001
	vs := make([]float64, trials)
	for i := range vs {
		vs[i] = r.LogNormFloat64(1, 0.5)
	}
	sort.Float64s(vs)
	med := vs[trials/2]
	if want := math.E; math.Abs(med-want)/want > 0.05 {
		t.Errorf("log-normal median %.4f, want about %.4f", med, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestSampleInt64sProperties(t *testing.T) {
	r := New(31)
	f := func(kRaw uint16, mRaw uint32) bool {
		m := int64(mRaw%100000) + 1
		k := int(int64(kRaw) % (m + 1))
		s := SampleInt64s(r, k, m)
		if len(s) != k {
			return false
		}
		seen := map[int64]bool{}
		for _, v := range s {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleInt64sDense(t *testing.T) {
	r := New(37)
	// k == m must return the full domain.
	s := SampleInt64s(r, 1000, 1000)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, v := range s {
		if v != int64(i) {
			t.Fatalf("dense full sample missing %d (got %d)", i, v)
		}
	}
}

func TestSampleInt64sSparseUnbiasedMean(t *testing.T) {
	r := New(41)
	const m = 1 << 30
	var sum float64
	const k, reps = 100, 200
	for rep := 0; rep < reps; rep++ {
		for _, v := range SampleInt64s(r, k, m) {
			sum += float64(v)
		}
	}
	mean := sum / (k * reps)
	want := float64(m) / 2
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("sparse sample mean %.0f too far from %.0f", mean, want)
	}
}

func TestSampleInt64sPanics(t *testing.T) {
	for _, tc := range []struct{ k, m int64 }{{-1, 10}, {11, 10}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleInt64s(%d, %d) did not panic", tc.k, tc.m)
				}
			}()
			SampleInt64s(New(1), int(tc.k), tc.m)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
