package defense

import (
	"testing"

	"cdfpoison/internal/keys"
)

func policySet(t *testing.T, ks []int64) keys.Set {
	t.Helper()
	s, err := keys.New(ks)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sparse builds the honest fixture: keys spaced widely and evenly.
func sparse(t *testing.T, n int, step int64) keys.Set {
	t.Helper()
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i+1) * step
	}
	return policySet(t, out)
}

func TestDupMassPolicy(t *testing.T) {
	base := sparse(t, 100, 100) // 100, 200, ... 10000
	// A poison run of adjacent keys around 5000.
	withRun := base.Union(policySet(t, []int64{5001, 5002, 5003}))
	p := DupMassPolicy{Window: 3, Count: 3}
	if p.Suspicious(NewContent(base), 5050) {
		t.Error("mid-gap honest key flagged by dupmass")
	}
	if !p.Suspicious(NewContent(withRun), 5004) {
		t.Error("key extending a dense adjacent run not flagged")
	}
	// Extreme keys must not overflow the window arithmetic.
	c := NewContent(base)
	p.Suspicious(c, 1<<62)
	p.Suspicious(c, -(1 << 62))
}

func TestGapOutlierPolicy(t *testing.T) {
	base := sparse(t, 50, 1000)
	p := GapOutlierPolicy{Ratio: 8}
	c := NewContent(base)
	if p.Suspicious(c, 5500) {
		t.Error("mid-gap honest key flagged by gapout")
	}
	if !p.Suspicious(c, 5001) {
		t.Error("gap-edge key (the cascade attack's shape) not flagged")
	}
	if !p.Suspicious(c, 5999) {
		t.Error("far-gap-edge key not flagged")
	}
	if p.Suspicious(c, 1) || p.Suspicious(c, 1<<40) {
		t.Error("key outside the stored range flagged despite having one side")
	}
	if p.Suspicious(c, 5000) {
		t.Error("stored duplicate flagged (the backend's job)")
	}
}

func TestLossSpikePolicy(t *testing.T) {
	// A near-perfect line: any mid-gap insert barely moves the loss, while a
	// far-corner insert into the widest gap spikes it.
	base := sparse(t, 200, 10)
	p := LossSpikePolicy{Ratio: 3}
	c := NewContent(base)
	if p.Suspicious(c, 1005) {
		t.Error("mid-gap honest key flagged by lossspike on a near-perfect line")
	}
	// Two keys is too few for the oracle: the policy must abstain.
	tiny := NewContent(policySet(t, []int64{5}))
	if p.Suspicious(tiny, 7) {
		t.Error("lossspike fired without a loss oracle")
	}
}

func TestChainSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"none",
		"density:8:4",
		"dupmass:3:3",
		"gapout:8",
		"lossspike:1.5",
		"density:8:4|dupmass:3:3|gapout:8|lossspike:1.5",
	} {
		ps, err := ParsePolicyChain(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if got := ChainSpec(ps); got != spec {
			t.Errorf("round trip drifted: %q -> %q", spec, got)
		}
	}
}

func TestParsePolicyChainRejects(t *testing.T) {
	for _, spec := range []string{
		"", "|", "density", "density:8", "density:0:4", "density:8:0", "density:8:NaN",
		"density:8:+Inf", "dupmass:3", "dupmass:0:3", "dupmass:3:0", "dupmass:x:3",
		"gapout", "gapout:0.5", "gapout:x", "lossspike", "lossspike:0.9", "lossspike:",
		"none|gapout:8", "unknown:1", "density:8:4|", "|density:8:4", "density:8:4:9",
	} {
		if _, err := ParsePolicyChain(spec); err == nil {
			t.Errorf("ParsePolicyChain(%q) accepted an invalid spec", spec)
		}
	}
}

func TestRateLimiter(t *testing.T) {
	if _, err := NewRateLimiter(0, 10); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := NewRateLimiter(2, 0); err == nil {
		t.Error("window 0 accepted")
	}
	rl, err := NewRateLimiter(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Source 1 gets two writes per 10-op window; source 2 is independent.
	if !rl.Allow(1, 0) || !rl.Allow(1, 3) {
		t.Fatal("writes within budget refused")
	}
	if rl.Allow(1, 5) {
		t.Fatal("third write in the window allowed")
	}
	if !rl.Allow(2, 5) {
		t.Fatal("independent source throttled by source 1's spend")
	}
	if !rl.Allow(1, 10) {
		t.Fatal("budget did not refresh at the window boundary")
	}
}

// TestRateLimiterDeterministic: identical call sequences produce identical
// verdicts (the replay property scenarios depend on).
func TestRateLimiterDeterministic(t *testing.T) {
	run := func() []bool {
		rl, err := NewRateLimiter(3, 7)
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for op := 0; op < 100; op++ {
			out = append(out, rl.Allow(op%5, op))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identical runs", i)
		}
	}
}

// FuzzParsePolicyChain pins the parser's totality (never panics) and the
// canonical round trip: any accepted spec re-parses from its ChainSpec
// rendering to the same canonical form. The checked-in corpus is replayed
// in CI.
func FuzzParsePolicyChain(f *testing.F) {
	for _, s := range []string{
		"none", "density:8:4", "dupmass:3:3", "gapout:8", "lossspike:1.5",
		"density:8:4|dupmass:3:3|gapout:8|lossspike:1.5",
		"density:8:4|density:2:16", "", "|", "density::", "gapout:1e308",
		"lossspike:0x1p-2", "dupmass:9223372036854775807:1", "density:8:4:",
		"none|none", "DENSITY:8:4", "gapout:+8", "lossspike:1_0",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		ps, err := ParsePolicyChain(spec)
		if err != nil {
			return
		}
		canon := ChainSpec(ps)
		again, err := ParsePolicyChain(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, spec, err)
		}
		if got := ChainSpec(again); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
	})
}
