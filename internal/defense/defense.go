// Package defense implements the mitigation side of the paper's Discussion
// (Section VI): the TRIM robust-regression defense of Jagielski et al.
// adapted to CDF training data, plus two simpler sanitizers (range filtering
// and local-density flagging).
//
// TRIM's premise is that poisoning points incur large residuals under the
// model fitted on the clean majority, so iteratively keeping the n
// best-fitting points recovers the clean set. On CDFs the adaptation is
// expensive and fragile, exactly as the paper predicts: ranks depend on
// *which* subset is kept, so every iteration must re-rank its candidate
// subset, and the attack's poison keys sit inside dense legitimate regions
// where their residuals look ordinary. This package exists to make those
// claims measurable.
package defense

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
	"cdfpoison/internal/xrand"
)

// ErrBadCount is returned when the presumed clean count is not in
// (1, len(poisoned)].
var ErrBadCount = errors.New("defense: clean count must be in (1, n_poisoned]")

// TrimOptions tunes TrimCDF.
type TrimOptions struct {
	// MaxIters bounds the refit loop; default 64.
	MaxIters int
	// Restarts runs TRIM from additional random initial subsets and keeps
	// the lowest-loss outcome (the original paper's stochastic variant);
	// default 0 (single deterministic run from the best-residual init).
	Restarts int
	// Seed drives the random restarts.
	Seed uint64
}

func (o *TrimOptions) fill() {
	if o.MaxIters <= 0 {
		o.MaxIters = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TrimResult reports the outcome of the TRIM defense.
type TrimResult struct {
	// Kept is the subset TRIM believes is clean (size == cleanCount).
	Kept keys.Set
	// Removed is everything flagged as poisoning.
	Removed keys.Set
	// Model is the regression fitted on Kept (with Kept's own re-ranking).
	Model regression.Model
	// Iterations counts refit rounds across all restarts; Converged reports
	// whether the final run reached a fixed point before MaxIters.
	Iterations int
	Converged  bool
}

// TrimCDF runs the TRIM defense against a (possibly) poisoned key set,
// keeping cleanCount keys. The defender re-ranks every candidate subset
// before fitting — the re-calibration overhead the paper highlights — and
// scores excluded keys by the rank they would take if inserted.
func TrimCDF(poisoned keys.Set, cleanCount int, opts TrimOptions) (TrimResult, error) {
	total := poisoned.Len()
	if cleanCount <= 1 || cleanCount > total {
		return TrimResult{}, fmt.Errorf("%w: clean=%d, total=%d", ErrBadCount, cleanCount, total)
	}
	opts.fill()

	best := TrimResult{}
	bestLoss := math.Inf(1)
	run := func(initial []int64) error {
		kept, model, iters, converged, err := trimOnce(poisoned, initial, cleanCount, opts.MaxIters)
		if err != nil {
			return err
		}
		best.Iterations += iters
		if model.Loss < bestLoss {
			bestLoss = model.Loss
			best.Kept = kept
			best.Model = model
			best.Converged = converged
		}
		return nil
	}

	// Deterministic init: fit on everything, keep the cleanCount keys with
	// the smallest residuals against the full set's own ranks.
	full, err := regression.FitCDF(poisoned)
	if err != nil {
		return TrimResult{}, err
	}
	init := selectSmallestResiduals(poisoned, poisoned, full.Line, cleanCount)
	if err := run(init); err != nil {
		return TrimResult{}, err
	}

	rng := xrand.New(opts.Seed)
	for r := 0; r < opts.Restarts; r++ {
		perm := rng.Perm(total)
		sub := make([]int64, cleanCount)
		for i := 0; i < cleanCount; i++ {
			sub[i] = poisoned.At(perm[i])
		}
		sort.Slice(sub, func(i, j int) bool { return sub[i] < sub[j] })
		if err := run(sub); err != nil {
			return TrimResult{}, err
		}
	}

	// Removed = poisoned \ kept.
	removedRaw := make([]int64, 0, total-cleanCount)
	for _, k := range poisoned.Keys() {
		if !best.Kept.Contains(k) {
			removedRaw = append(removedRaw, k)
		}
	}
	removed, err := keys.NewStrict(removedRaw)
	if err != nil {
		return TrimResult{}, fmt.Errorf("defense: internal: %w", err)
	}
	best.Removed = removed
	return best, nil
}

// trimOnce iterates fit → re-rank → reselect until the kept subset is a
// fixed point.
func trimOnce(poisoned keys.Set, initial []int64, cleanCount, maxIters int) (keys.Set, regression.Model, int, bool, error) {
	kept, err := keys.NewStrict(initial)
	if err != nil {
		return keys.Set{}, regression.Model{}, 0, false, fmt.Errorf("defense: bad initial subset: %w", err)
	}
	var model regression.Model
	for iter := 1; iter <= maxIters; iter++ {
		model, err = regression.FitCDF(kept)
		if err != nil {
			return keys.Set{}, regression.Model{}, iter, false, err
		}
		next := selectSmallestResiduals(poisoned, kept, model.Line, cleanCount)
		nextSet, err := keys.NewStrict(next)
		if err != nil {
			return keys.Set{}, regression.Model{}, iter, false, fmt.Errorf("defense: internal: %w", err)
		}
		if nextSet.Equal(kept) {
			return kept, model, iter, true, nil
		}
		kept = nextSet
	}
	model, err = regression.FitCDF(kept)
	if err != nil {
		return keys.Set{}, regression.Model{}, maxIters, false, err
	}
	return kept, model, maxIters, false, nil
}

// selectSmallestResiduals returns the cleanCount keys with the smallest
// absolute residual under the line, where each key is scored against the
// rank it holds in — or would take upon insertion into — the reference set
// the line was fitted on. Re-ranking every candidate against the current
// kept subset is the re-calibration step unique to CDF TRIM, and the source
// of the per-iteration overhead the paper points out.
func selectSmallestResiduals(poisoned, ref keys.Set, line regression.Line, cleanCount int) []int64 {
	type scored struct {
		key int64
		res float64
	}
	all := make([]scored, poisoned.Len())
	for i := 0; i < poisoned.Len(); i++ {
		k := poisoned.At(i)
		r, member := ref.Rank(k)
		if !member {
			r, _ = ref.InsertedRank(k)
		}
		all[i] = scored{key: k, res: math.Abs(line.Predict(k) - float64(r))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].res != all[j].res {
			return all[i].res < all[j].res
		}
		return all[i].key < all[j].key
	})
	out := make([]int64, cleanCount)
	for i := 0; i < cleanCount; i++ {
		out[i] = all[i].key
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RangeFilter is the trivial sanitizer the attack is designed to evade:
// drop keys outside [lo, hi]. With the paper's in-range poisoning keys it
// removes nothing.
func RangeFilter(ks keys.Set, lo, hi int64) (kept keys.Set, removed keys.Set) {
	var keep, drop []int64
	for _, k := range ks.Keys() {
		if k < lo || k > hi {
			drop = append(drop, k)
		} else {
			keep = append(keep, k)
		}
	}
	kept, _ = keys.New(keep)
	removed, _ = keys.New(drop)
	return kept, removed
}

// DensityFlagger flags keys that sit in abnormally dense neighbourhoods —
// a heuristic detector motivated by the observation that the greedy attack
// clusters poison keys in dense regions (Figure 4). Window is the
// half-width (in rank space) of the neighbourhood; a key is flagged when
// its local density exceeds zThreshold standard deviations above the mean
// local density. Even so, the attack's poisons hide next to legitimate
// dense regions, so recall stays poor — which is the point being measured.
func DensityFlagger(ks keys.Set, window int, zThreshold float64) keys.Set {
	n := ks.Len()
	if n < 3 || window < 1 {
		empty, _ := keys.New(nil)
		return empty
	}
	dens := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i-window, i+window
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		span := ks.At(hi) - ks.At(lo)
		if span <= 0 {
			span = 1
		}
		dens[i] = float64(hi-lo) / float64(span)
	}
	var mean, m2 float64
	for i, d := range dens {
		delta := d - mean
		mean += delta / float64(i+1)
		m2 += delta * (d - mean)
	}
	std := math.Sqrt(m2 / float64(n))
	var flagged []int64
	for i, d := range dens {
		if std > 0 && (d-mean)/std > zThreshold {
			flagged = append(flagged, ks.At(i))
		}
	}
	out, _ := keys.New(flagged)
	return out
}

// Eval quantifies a defense outcome against ground truth.
type Eval struct {
	TruePoison     int // actual poison keys present
	Flagged        int // keys the defense removed/flagged
	TruePositives  int // flagged keys that really are poison
	FalsePositives int // legitimate keys wrongly flagged
	Precision      float64
	Recall         float64
	// CleanLossBefore/After: MSE of the regression over the true clean set
	// vs over the defense's kept set — collateral damage shows up as kept
	// sets whose loss is far from the clean baseline.
	CleanLossBefore float64
	KeptLoss        float64
}

// Evaluate scores flagged keys against the known poison set, and the kept
// set's regression against the clean baseline. clean ∪ poison must be the
// poisoned input the defense saw.
func Evaluate(clean, poison, flagged, kept keys.Set) (Eval, error) {
	ev := Eval{TruePoison: poison.Len(), Flagged: flagged.Len()}
	for _, k := range flagged.Keys() {
		if poison.Contains(k) {
			ev.TruePositives++
		} else if clean.Contains(k) {
			ev.FalsePositives++
		}
	}
	if ev.Flagged > 0 {
		ev.Precision = float64(ev.TruePositives) / float64(ev.Flagged)
	}
	if ev.TruePoison > 0 {
		ev.Recall = float64(ev.TruePositives) / float64(ev.TruePoison)
	}
	cm, err := regression.FitCDF(clean)
	if err != nil {
		return Eval{}, err
	}
	ev.CleanLossBefore = cm.Loss
	if kept.Len() > 0 {
		km, err := regression.FitCDF(kept)
		if err != nil {
			return Eval{}, err
		}
		ev.KeptLoss = km.Loss
	}
	return ev, nil
}
