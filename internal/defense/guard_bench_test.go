package defense

// BenchmarkGuardProbeSum pins the batch-forwarding contract of
// Guard.ProbeSum: the guard hands the WHOLE query batch to the wrapped
// backend's batch path in one call, instead of looping single Lookups
// through two interface layers (the reference index.ProbeSum shape). The
// totals are identical either way — integer probe sums are
// partition-invariant — so the only difference is dispatch overhead on the
// serving scenarios' hottest evaluation path; this benchmark records the
// delta so a regression back to the per-key loop is visible.

import (
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/xrand"
)

func guardOver(b *testing.B, backend index.Backend) (*Guard, []int64) {
	b.Helper()
	g := NewGuard(backend, GuardOptions{})
	return g, backend.Keys().Keys()
}

func benchProbeSum(b *testing.B, build func(b *testing.B) index.Backend) {
	b.Run("forwarded", func(b *testing.B) {
		g, queries := guardOver(b, build(b))
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, _ := g.ProbeSum(queries)
			sink += p
		}
		_ = sink
	})
	b.Run("per-key-loop", func(b *testing.B) {
		g, queries := guardOver(b, build(b))
		var sink int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The shape Guard.ProbeSum would degenerate to without the
			// batch forward: one interface dispatch per key, through the
			// guard AND the backend.
			p, _ := index.ProbeSum(g, queries)
			sink += p
		}
		_ = sink
	})
}

func BenchmarkGuardProbeSum(b *testing.B) {
	ks, err := dataset.Uniform(xrand.New(3), 20_000, 800_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dynamic", func(b *testing.B) {
		benchProbeSum(b, func(b *testing.B) index.Backend {
			d, err := dynamic.New(ks, dynamic.ManualPolicy())
			if err != nil {
				b.Fatal(err)
			}
			return d
		})
	})
	b.Run("shard-8", func(b *testing.B) {
		benchProbeSum(b, func(b *testing.B) index.Backend {
			s, err := shard.New(ks, 8, dynamic.ManualPolicy())
			if err != nil {
				b.Fatal(err)
			}
			return s
		})
	})
}
