package defense_test

import (
	"errors"
	"testing"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func TestTrimValidation(t *testing.T) {
	ks, _ := keys.New([]int64{1, 2, 3, 4, 5})
	for _, c := range []int{0, 1, 6, -1} {
		if _, err := defense.TrimCDF(ks, c, defense.TrimOptions{}); !errors.Is(err, defense.ErrBadCount) {
			t.Errorf("cleanCount=%d: want defense.ErrBadCount, got %v", c, err)
		}
	}
}

func TestTrimKeepsRequestedCount(t *testing.T) {
	rng := xrand.New(1)
	clean, err := dataset.Uniform(rng, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.GreedyMultiPoint(clean, 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := defense.TrimCDF(g.Poisoned, 200, defense.TrimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept.Len() != 200 {
		t.Fatalf("kept %d, want 200", res.Kept.Len())
	}
	if res.Removed.Len() != 20 {
		t.Fatalf("removed %d, want 20", res.Removed.Len())
	}
	// Kept ∪ removed must reconstruct the poisoned input.
	if !res.Kept.Union(res.Removed).Equal(g.Poisoned) {
		t.Fatal("kept ∪ removed != input")
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestTrimRecoversNaiveMidRangeCluster(t *testing.T) {
	// The scenario TRIM is designed for: near-linear legitimate data plus a
	// naive (non-optimized) poison cluster dropped mid-range. The clean
	// subset is the unique low-loss size-n subset and TRIM must find it.
	var raw []int64
	for i := int64(0); i < 100; i++ {
		raw = append(raw, i*100)
	}
	clean, _ := keys.New(raw)
	var poison []int64
	for i := int64(0); i < 10; i++ {
		poison = append(poison, 5050+i)
	}
	poisonSet, _ := keys.New(poison)
	all := clean.Union(poisonSet)
	res, err := defense.TrimCDF(all, clean.Len(), defense.TrimOptions{Restarts: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := defense.Evaluate(clean, poisonSet, res.Removed, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Recall < 0.8 {
		t.Fatalf("TRIM missed naive cluster: recall %v", ev.Recall)
	}
	if ev.KeptLoss > ev.CleanLossBefore+1e-9 {
		t.Fatalf("kept loss %v above clean baseline %v", ev.KeptLoss, ev.CleanLossBefore)
	}
}

func TestTrimLeverageLimitation(t *testing.T) {
	// Documented limitation: a far-away poison block has such high leverage
	// that least squares chases it and TRIM keeps it. Real deployments pair
	// TRIM with range/quantile filtering; this test pins the behaviour so
	// the docs stay honest.
	raw := make([]int64, 0, 110)
	for i := int64(0); i < 100; i++ {
		raw = append(raw, 1000+i*3)
	}
	clean, _ := keys.New(raw)
	var poison []int64
	for i := int64(0); i < 10; i++ {
		poison = append(poison, 900000+i*5000)
	}
	poisonSet, _ := keys.New(poison)
	all := clean.Union(poisonSet)
	res, err := defense.TrimCDF(all, clean.Len(), defense.TrimOptions{Restarts: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := defense.Evaluate(clean, poisonSet, res.Removed, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Recall > 0.5 {
		t.Fatalf("leverage limitation no longer reproduces (recall %v); update docs", ev.Recall)
	}
	// The same block is trivially caught by quantile-based range filtering.
	lo, hi := clean.At(0), clean.At(clean.Len()-1)
	_, removed := defense.RangeFilter(all, lo, hi)
	if removed.Len() != poisonSet.Len() {
		t.Fatalf("range filter caught %d of %d far-block keys", removed.Len(), poisonSet.Len())
	}
}

func TestTrimStrugglesAgainstCDFAttack(t *testing.T) {
	// The paper's argument (Section VI): poison keys produced by the greedy
	// CDF attack cluster inside dense legitimate regions, so TRIM cannot
	// remove them without heavy collateral damage. We assert the attack
	// survives: after the defense, the kept set's loss remains well above
	// the clean baseline OR recall stays below one half.
	rng := xrand.New(2)
	clean, err := dataset.Uniform(rng, 300, 6000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.GreedyMultiPoint(clean, 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := defense.TrimCDF(g.Poisoned, 300, defense.TrimOptions{Restarts: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := defense.Evaluate(clean, poisonOf(t, g), res.Removed, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	attackSurvives := ev.KeptLoss > 2*ev.CleanLossBefore || ev.Recall < 0.5
	if !attackSurvives {
		t.Fatalf("TRIM unexpectedly defeated the CDF attack: recall=%.2f keptLoss=%.3g cleanLoss=%.3g",
			ev.Recall, ev.KeptLoss, ev.CleanLossBefore)
	}
}

func poisonOf(t *testing.T, g core.GreedyResult) keys.Set {
	t.Helper()
	s, err := keys.NewStrict(g.Poison)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTrimDeterministicWithoutRestarts(t *testing.T) {
	rng := xrand.New(3)
	clean, _ := dataset.Uniform(rng, 100, 1000)
	g, err := core.GreedyMultiPoint(clean, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := defense.TrimCDF(g.Poisoned, 100, defense.TrimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := defense.TrimCDF(g.Poisoned, 100, defense.TrimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Kept.Equal(b.Kept) {
		t.Fatal("TRIM without restarts is not deterministic")
	}
}

func TestRangeFilter(t *testing.T) {
	ks, _ := keys.New([]int64{1, 5, 10, 50, 100})
	kept, removed := defense.RangeFilter(ks, 5, 50)
	if kept.Len() != 3 || removed.Len() != 2 {
		t.Fatalf("kept %d removed %d", kept.Len(), removed.Len())
	}
	if !removed.Contains(1) || !removed.Contains(100) {
		t.Fatal("wrong keys removed")
	}
	// The paper's attack only uses interior keys: range filtering over the
	// legit min/max removes nothing.
	rng := xrand.New(4)
	clean, _ := dataset.Uniform(rng, 100, 1000)
	g, err := core.GreedyMultiPoint(clean, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, rm := defense.RangeFilter(g.Poisoned, clean.Min(), clean.Max())
	if rm.Len() != 0 {
		t.Fatalf("range filter caught %d in-range poison keys", rm.Len())
	}
}

func TestDensityFlaggerDegenerate(t *testing.T) {
	tiny, _ := keys.New([]int64{1, 2})
	if got := defense.DensityFlagger(tiny, 2, 2); got.Len() != 0 {
		t.Fatal("flagged keys in a 2-key set")
	}
	ks, _ := keys.New([]int64{1, 2, 3, 4, 5})
	if got := defense.DensityFlagger(ks, 0, 2); got.Len() != 0 {
		t.Fatal("window 0 flagged keys")
	}
}

func TestDensityFlaggerFindsPlantedCluster(t *testing.T) {
	// Sparse background + one very tight cluster: the detector must flag
	// mostly cluster members.
	var raw []int64
	for i := int64(0); i < 100; i++ {
		raw = append(raw, i*1000)
	}
	for i := int64(0); i < 20; i++ {
		raw = append(raw, 50_500+i) // tight cluster between background keys
	}
	ks, _ := keys.New(raw)
	flagged := defense.DensityFlagger(ks, 3, 2)
	if flagged.Len() == 0 {
		t.Fatal("planted cluster not flagged")
	}
	inCluster := 0
	for _, k := range flagged.Keys() {
		if k >= 50_400 && k < 50_600 {
			inCluster++
		}
	}
	if float64(inCluster) < 0.7*float64(flagged.Len()) {
		t.Fatalf("flagger noisy: %d/%d flags in cluster", inCluster, flagged.Len())
	}
}

func TestEvaluateCounts(t *testing.T) {
	clean, _ := keys.New([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	poison, _ := keys.New([]int64{10, 11})
	flagged, _ := keys.New([]int64{10, 5}) // one hit, one false positive
	kept, _ := keys.New([]int64{1, 2, 3, 4, 6, 7, 8, 11})
	ev, err := defense.Evaluate(clean, poison, flagged, kept)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TruePositives != 1 || ev.FalsePositives != 1 {
		t.Fatalf("tp=%d fp=%d", ev.TruePositives, ev.FalsePositives)
	}
	if ev.Precision != 0.5 || ev.Recall != 0.5 {
		t.Fatalf("precision=%v recall=%v", ev.Precision, ev.Recall)
	}
}
