package defense

// The serving-side face of this package: defenses that wrap a live
// index.Backend instead of sanitizing a training set after the fact. The
// wrapper pattern is what the backend-interface refactor buys the defender
// — a Guard composes with ANY backend (dynamic, sharded, single-model RMI,
// even the B-Tree) and with any scenario, because both sides only see
// index.Backend.

import (
	"context"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
)

var _ index.Backend = (*Guard)(nil)

// GuardOptions tunes NewGuard.
type GuardOptions struct {
	// Window is the rank half-width of the neighbourhood inspected around
	// each candidate insert; default 8. Used only when Policies is nil.
	Window int
	// Ratio is the density multiple above which an insert is rejected: a
	// key is refused when its window's local key density exceeds Ratio
	// times the backend's global density. Default 4. Used only when
	// Policies is nil.
	Ratio float64
	// Policies is the detector chain the guard screens inserts with; any
	// policy flagging a key rejects it. nil selects the single density
	// screen built from Window and Ratio (the historical Guard behavior);
	// an explicit empty, non-nil chain screens nothing.
	Policies []Policy
}

func (o *GuardOptions) fill() {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Ratio <= 0 {
		o.Ratio = 4
	}
	if o.Policies == nil {
		o.Policies = []Policy{DensityPolicy{Window: o.Window, Ratio: o.Ratio}}
	}
}

// Guard is an online insert sanitizer behind the index.Backend contract:
// reads pass straight through; writes are screened by the same
// local-density heuristic as DensityFlagger, evaluated at insert time
// against the backend's current content. The paper's greedy attack
// concentrates poison inside dense regions, so a density guard prices its
// keys up — but, exactly as with the offline flagger, poison placed next
// to legitimately dense regions slips through, and the Evaluate metrics
// quantify how much.
//
// Rejected inserts never reach the backend, so they do not tick
// write-count retrain policies — a guard also (incidentally) protects an
// EveryK schedule from the duplicate-write lever documented in
// internal/dynamic.
// A Guard is single-writer THROUGH the guard: once wrapped, all mutation
// must go through the Guard's Insert/Retrain (mutating the inner backend
// directly would stale the guard's content cache).
type Guard struct {
	backend  index.Backend
	policies []Policy
	flagged  int
	// content caches backend.Keys() (plus the lazily built loss oracle)
	// between mutations so the policy chain costs O(log n) per offered
	// insert instead of re-materializing the full content (O(n)) every time
	// — a poison storm is exactly many rejected inserts in a row against
	// unchanged content.
	content      *Content
	contentValid bool
}

// NewGuard wraps a backend with the detector chain (the single density
// screen by default; see GuardOptions.Policies).
func NewGuard(b index.Backend, opts GuardOptions) *Guard {
	opts.fill()
	return &Guard{backend: b, policies: opts.Policies}
}

// Flagged returns how many inserts the guard has rejected. The count is
// cumulative over the guard's lifetime — Retrain does not reset it — and is
// also surfaced as Stats().Flagged so sweeps read it without unwrapping.
func (g *Guard) Flagged() int { return g.flagged }

// Policies returns the guard's detector chain.
func (g *Guard) Policies() []Policy { return g.policies }

// Unwrap returns the guarded backend.
func (g *Guard) Unwrap() index.Backend { return g.backend }

// suspicious refreshes the content cache and runs the policy chain; any
// policy flagging k rejects it.
func (g *Guard) suspicious(k int64) bool {
	if !g.contentValid {
		g.content = NewContent(g.backend.Keys())
		g.contentValid = true
	}
	for _, p := range g.policies {
		if p.Suspicious(g.content, k) {
			return true
		}
	}
	return false
}

// Insert screens k and forwards it only when its neighbourhood density is
// unsuspicious; a rejected key reports (false, false) without touching the
// backend.
func (g *Guard) Insert(k int64) (accepted, retrained bool) {
	if k >= 0 && g.suspicious(k) {
		g.flagged++
		return false, false
	}
	accepted, retrained = g.backend.Insert(k)
	if accepted {
		g.contentValid = false
	}
	return accepted, retrained
}

// The read-side and maintenance methods delegate unchanged.

func (g *Guard) Lookup(k int64) index.LookupResult { return g.backend.Lookup(k) }

// Retrain delegates and drops the content cache (a retrain does not change
// the content, but keeping the invalidation tied to every mutation entry
// point is cheaper to reason about than proving it unnecessary).
func (g *Guard) Retrain() {
	g.backend.Retrain()
	g.contentValid = false
}

// RetrainParallel forwards the pooled rebuild when the wrapped backend
// supports it and falls back to the sequential Retrain otherwise, so a
// guard never hides the inner backend's parallel rebuild path from the
// retrain pipeline (index.ParallelRetrainer).
func (g *Guard) RetrainParallel(ctx context.Context, pool *engine.Pool) error {
	defer func() { g.contentValid = false }()
	if pr, ok := g.backend.(index.ParallelRetrainer); ok {
		return pr.RetrainParallel(ctx, pool)
	}
	g.backend.Retrain()
	return nil
}

// LastRebuildSize forwards the wrapped backend's rebuild size when it
// reports one, else the full length (index.RebuildSizer).
func (g *Guard) LastRebuildSize() int {
	if rs, ok := g.backend.(index.RebuildSizer); ok {
		return rs.LastRebuildSize()
	}
	return g.backend.Len()
}

// RetrainPossible forwards the wrapped backend's prediction
// (index.TriggerPredictor): the guard can only REJECT inserts, so the
// inner backend's answer is already conservative for the guarded path.
func (g *Guard) RetrainPossible() bool {
	if tp, ok := g.backend.(index.TriggerPredictor); ok {
		return tp.RetrainPossible()
	}
	return true
}
func (g *Guard) Len() int       { return g.backend.Len() }
func (g *Guard) Keys() keys.Set { return g.backend.Keys() }

// Stats reports the wrapped backend's summary with the guard's cumulative
// rejected-insert count in Flagged (index.Stats) — the defense-effect
// reading the Pareto sweeps consume. Flagged survives Retrain.
func (g *Guard) Stats() index.Stats {
	st := g.backend.Stats()
	st.Flagged = g.flagged
	return st
}

// Snapshot hands out the wrapped backend's snapshot unchanged: the guard
// screens writes, so its read plane IS the backend's read plane.
func (g *Guard) Snapshot() index.Snapshot { return g.backend.Snapshot() }

// ProbeSum forwards the whole batch to the wrapped backend's batch path in
// ONE call rather than looping single Lookups through the interface. The
// totals are identical either way (integer probe sums are
// partition-invariant), but the forwarded form keeps the inner backend's
// batch-level optimizations — and skips one interface dispatch per key —
// on the hot evaluation path; BenchmarkGuardProbeSum pins the delta
// against the per-key reference loop.
func (g *Guard) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return g.backend.ProbeSum(queryKeys)
}

// ProbeSumSorted forwards the sorted batch to the wrapped backend's batch
// kernel (index.BatchReader), falling back to the per-key reference when
// the backend has none — the guard screens writes, so the read plane's
// bit-identity contract is entirely the backend's (DESIGN.md §12).
func (g *Guard) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	return index.ProbeSumSorted(g.backend, sorted)
}
