package defense_test

import (
	"testing"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// TestGuardDelegatesReads: the guard is a transparent index.Backend on the
// read side — lookups, stats, and probe sums are the inner backend's.
func TestGuardDelegatesReads(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(17), 300, 15_000)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var b index.Backend = defense.NewGuard(inner, defense.GuardOptions{})
	if b.Len() != inner.Len() {
		t.Fatal("Len diverged")
	}
	for i := 0; i < ks.Len(); i += 7 {
		if b.Lookup(ks.At(i)) != inner.Lookup(ks.At(i)) {
			t.Fatalf("Lookup(%d) diverged", ks.At(i))
		}
	}
	gp, gm := b.ProbeSum(ks.Keys())
	ip, im := inner.ProbeSum(ks.Keys())
	if gp != ip || gm != im {
		t.Fatal("ProbeSum diverged")
	}
	if b.Stats() != inner.Stats() {
		t.Fatal("Stats diverged")
	}
}

// TestGuardScreensDensePoison: the greedy attack piles poison into dense
// regions, so the density guard must flag a meaningful share of an optimal
// poison set — and the guarded index must end up with strictly less model
// damage than an unguarded twin fed the same keys — while spread-out
// honest arrivals mostly pass.
func TestGuardScreensDensePoison(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(23), 400, 16_000)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := core.GreedyMultiPoint(ks, 40)
	if err != nil {
		t.Fatal(err)
	}

	unguarded, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	guarded := defense.NewGuard(inner, defense.GuardOptions{Window: 8, Ratio: 3})

	acceptedPlain, acceptedGuarded := 0, 0
	for _, k := range atk.Poison {
		if ok, _ := unguarded.Insert(k); ok {
			acceptedPlain++
		}
		if ok, _ := guarded.Insert(k); ok {
			acceptedGuarded++
		}
	}
	unguarded.Retrain()
	guarded.Retrain()
	if guarded.Flagged() == 0 {
		t.Fatal("guard flagged nothing from an optimal poison set")
	}
	if acceptedGuarded >= acceptedPlain {
		t.Fatalf("guard accepted %d of %d poison keys, unguarded %d",
			acceptedGuarded, len(atk.Poison), acceptedPlain)
	}
	if gl, ul := guarded.Stats().ContentLoss, unguarded.Stats().ContentLoss; gl >= ul {
		t.Fatalf("guarded loss %v >= unguarded %v — screening bought nothing", gl, ul)
	}

	// Honest arrivals spread across the domain mostly pass the screen.
	passed, offered := 0, 0
	rng := xrand.New(99)
	for i := 0; i < 100; i++ {
		k := rng.Int63n(16_000)
		if guarded.Keys().Contains(k) {
			continue
		}
		offered++
		if ok, _ := guarded.Insert(k); ok {
			passed++
		}
	}
	if offered == 0 || float64(passed)/float64(offered) < 0.5 {
		t.Fatalf("guard rejected honest traffic: %d/%d passed", passed, offered)
	}
}

// TestGuardFlaggedInStats: the cumulative rejected-insert count is surfaced
// through the uniform index.Stats plane (no Unwrap needed) and survives
// Retrain — the accounting contract the Pareto sweeps read.
func TestGuardFlaggedInStats(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(41), 300, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	g := defense.NewGuard(inner, defense.GuardOptions{Window: 8, Ratio: 3})
	atk, err := core.GreedyMultiPoint(ks, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range atk.Poison {
		g.Insert(k)
	}
	if g.Flagged() == 0 {
		t.Fatal("no rejects to account for — fixture too weak")
	}
	if got := g.Stats().Flagged; got != g.Flagged() {
		t.Fatalf("Stats().Flagged = %d, Flagged() = %d", got, g.Flagged())
	}
	before := g.Flagged()
	g.Retrain()
	if got := g.Stats().Flagged; got != before {
		t.Fatalf("Retrain reset Flagged: %d -> %d (must be cumulative)", before, got)
	}
	// A second retrain round with more rejects keeps accumulating.
	for _, k := range atk.Poison {
		g.Insert(k + 1)
	}
	g.Retrain()
	if got := g.Stats().Flagged; got < before {
		t.Fatalf("Flagged went backwards across retrains: %d -> %d", before, got)
	}
	// Bare backends always report 0.
	if st := inner.Stats(); st.Flagged != 0 {
		t.Fatalf("bare backend reports Flagged = %d", st.Flagged)
	}
}

// TestGuardPolicyChain: a guard built with an explicit multi-detector chain
// ORs the policies — a key any detector flags is rejected, mid-gap honest
// keys pass — and an explicit empty chain screens nothing.
func TestGuardPolicyChain(t *testing.T) {
	base := make([]int64, 100)
	for i := range base {
		base[i] = int64(i+1) * 100
	}
	ks, err := keys.New(base)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ps []defense.Policy) *defense.Guard {
		inner, err := dynamic.New(ks, dynamic.ManualPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return defense.NewGuard(inner, defense.GuardOptions{Policies: ps})
	}

	g := mk([]defense.Policy{
		defense.DupMassPolicy{Window: 3, Count: 3},
		defense.GapOutlierPolicy{Ratio: 8},
	})
	// Gap-edge key: dupmass abstains, gapout flags it.
	if ok, _ := g.Insert(5001); ok {
		t.Fatal("gap-edge key passed a chain containing gapout")
	}
	// Mid-gap key passes both detectors.
	if ok, _ := g.Insert(5050); !ok {
		t.Fatal("mid-gap honest key rejected by the chain")
	}
	// Keys adjacent to the just-accepted 5050 are gap-edge relative to it,
	// so the chain (via gapout) prices up an attacker trying to grow an
	// adjacent run — each attempt is one more reject, OR semantics.
	for _, k := range []int64{5051, 5052, 5053} {
		if ok, _ := g.Insert(k); ok {
			t.Fatalf("adjacent-run key %d passed the chain", k)
		}
	}
	if g.Flagged() != 4 {
		t.Fatalf("Flagged = %d, want 4", g.Flagged())
	}

	// Explicit empty (non-nil) chain: everything passes, nothing is flagged.
	open := mk([]defense.Policy{})
	for _, k := range []int64{5001, 5050, 5051, 5052, 5053} {
		if ok, _ := open.Insert(k); !ok {
			t.Fatalf("empty chain rejected %d", k)
		}
	}
	if open.Flagged() != 0 {
		t.Fatalf("empty chain flagged %d inserts", open.Flagged())
	}
}

// TestGuardUnderOnlineScenario: the guard rides core.OnlinePoisonAttack as
// the victim factory — the composition the backend interface exists for —
// and must reduce the attack's final damage relative to the bare index.
func TestGuardUnderOnlineScenario(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(31), 400, 16_000)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.OnlineOptions{
		Epochs:      3,
		EpochBudget: 20,
		Policy:      dynamic.ManualPolicy(),
	}
	bare, err := core.OnlinePoisonAttack(ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	withGuard := opts
	withGuard.Backend = func(initial keys.Set) (index.Backend, error) {
		inner, err := dynamic.New(initial, opts.Policy)
		if err != nil {
			return nil, err
		}
		return defense.NewGuard(inner, defense.GuardOptions{Window: 8, Ratio: 3}), nil
	}
	guarded, err := core.OnlinePoisonAttack(ks, withGuard)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Poison.Len() >= bare.Poison.Len() {
		t.Fatalf("guard let through %d poison keys, bare index took %d",
			guarded.Poison.Len(), bare.Poison.Len())
	}
	if guarded.FinalRatio() >= bare.FinalRatio() {
		t.Fatalf("guarded final ratio %v >= bare %v", guarded.FinalRatio(), bare.FinalRatio())
	}
}
