package defense_test

import (
	"testing"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// TestGuardDelegatesReads: the guard is a transparent index.Backend on the
// read side — lookups, stats, and probe sums are the inner backend's.
func TestGuardDelegatesReads(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(17), 300, 15_000)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var b index.Backend = defense.NewGuard(inner, defense.GuardOptions{})
	if b.Len() != inner.Len() {
		t.Fatal("Len diverged")
	}
	for i := 0; i < ks.Len(); i += 7 {
		if b.Lookup(ks.At(i)) != inner.Lookup(ks.At(i)) {
			t.Fatalf("Lookup(%d) diverged", ks.At(i))
		}
	}
	gp, gm := b.ProbeSum(ks.Keys())
	ip, im := inner.ProbeSum(ks.Keys())
	if gp != ip || gm != im {
		t.Fatal("ProbeSum diverged")
	}
	if b.Stats() != inner.Stats() {
		t.Fatal("Stats diverged")
	}
}

// TestGuardScreensDensePoison: the greedy attack piles poison into dense
// regions, so the density guard must flag a meaningful share of an optimal
// poison set — and the guarded index must end up with strictly less model
// damage than an unguarded twin fed the same keys — while spread-out
// honest arrivals mostly pass.
func TestGuardScreensDensePoison(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(23), 400, 16_000)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := core.GreedyMultiPoint(ks, 40)
	if err != nil {
		t.Fatal(err)
	}

	unguarded, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dynamic.New(ks, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	guarded := defense.NewGuard(inner, defense.GuardOptions{Window: 8, Ratio: 3})

	acceptedPlain, acceptedGuarded := 0, 0
	for _, k := range atk.Poison {
		if ok, _ := unguarded.Insert(k); ok {
			acceptedPlain++
		}
		if ok, _ := guarded.Insert(k); ok {
			acceptedGuarded++
		}
	}
	unguarded.Retrain()
	guarded.Retrain()
	if guarded.Flagged() == 0 {
		t.Fatal("guard flagged nothing from an optimal poison set")
	}
	if acceptedGuarded >= acceptedPlain {
		t.Fatalf("guard accepted %d of %d poison keys, unguarded %d",
			acceptedGuarded, len(atk.Poison), acceptedPlain)
	}
	if gl, ul := guarded.Stats().ContentLoss, unguarded.Stats().ContentLoss; gl >= ul {
		t.Fatalf("guarded loss %v >= unguarded %v — screening bought nothing", gl, ul)
	}

	// Honest arrivals spread across the domain mostly pass the screen.
	passed, offered := 0, 0
	rng := xrand.New(99)
	for i := 0; i < 100; i++ {
		k := rng.Int63n(16_000)
		if guarded.Keys().Contains(k) {
			continue
		}
		offered++
		if ok, _ := guarded.Insert(k); ok {
			passed++
		}
	}
	if offered == 0 || float64(passed)/float64(offered) < 0.5 {
		t.Fatalf("guard rejected honest traffic: %d/%d passed", passed, offered)
	}
}

// TestGuardUnderOnlineScenario: the guard rides core.OnlinePoisonAttack as
// the victim factory — the composition the backend interface exists for —
// and must reduce the attack's final damage relative to the bare index.
func TestGuardUnderOnlineScenario(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(31), 400, 16_000)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.OnlineOptions{
		Epochs:      3,
		EpochBudget: 20,
		Policy:      dynamic.ManualPolicy(),
	}
	bare, err := core.OnlinePoisonAttack(ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	withGuard := opts
	withGuard.Backend = func(initial keys.Set) (index.Backend, error) {
		inner, err := dynamic.New(initial, opts.Policy)
		if err != nil {
			return nil, err
		}
		return defense.NewGuard(inner, defense.GuardOptions{Window: 8, Ratio: 3}), nil
	}
	guarded, err := core.OnlinePoisonAttack(ks, withGuard)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Poison.Len() >= bare.Poison.Len() {
		t.Fatalf("guard let through %d poison keys, bare index took %d",
			guarded.Poison.Len(), bare.Poison.Len())
	}
	if guarded.FinalRatio() >= bare.FinalRatio() {
		t.Fatalf("guarded final ratio %v >= bare %v", guarded.FinalRatio(), bare.FinalRatio())
	}
}
