package defense

// The composable detector side of the serving-plane defense: Guard policies.
// Each Policy is one poisoning trigger evaluated at insert time against the
// backend's current content; a Guard runs a CHAIN of them and rejects a key
// any policy flags. The four detectors cover the repo's attack families
// (DESIGN.md §10):
//
//   - density:  one-sided local-density screen — the greedy attack's poison
//     runs are denser than anything honest.
//   - dupmass:  near-duplicate mass — poison that crowds within a few units
//     of existing keys (exact duplicates are already rejected by every
//     backend, so attackers sit AT the duplicate boundary).
//   - gapout:   gap-asymmetry outlier — cascade/greedy keys hug one edge of
//     a wide gap (a+1, b−1), honest writes land anywhere, so an extreme
//     near-side/far-side ratio is adversarial.
//   - lossspike: the defender runs the attacker's own O(1) loss oracle
//     (regression.Prefix) and refuses any key whose insertion would spike
//     the retrained MSE — the detector aligned exactly with the paper's
//     attack objective.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// Content is the screened backend's current content plus the lazily built
// loss oracle the lossspike policy consults. A Guard caches one Content
// between mutations, so a poison storm (many rejected inserts against
// unchanged content) prices each offer at O(log n).
type Content struct {
	Keys keys.Set

	prefix     *regression.Prefix
	prefixInit bool
}

// NewContent wraps a key set for policy evaluation (the Guard builds these
// internally; tests and offline screening can too).
func NewContent(ks keys.Set) *Content { return &Content{Keys: ks} }

// LossOracle returns the exact-moment loss oracle over the content, built
// on first use; nil when the content cannot support one (fewer than two
// keys, or keys outside the oracle's exact integer range), in which case
// loss-based policies abstain.
func (c *Content) LossOracle() *regression.Prefix {
	if !c.prefixInit {
		c.prefixInit = true
		if p, err := regression.NewPrefix(c.Keys); err == nil {
			c.prefix = p
		}
	}
	return c.prefix
}

// Policy is one poisoning detector in a Guard's chain. Suspicious reports
// whether inserting k into the content looks adversarial; it must be a pure
// function of (content, k) — no state, no RNG — so chains stay
// deterministic and order-independent. Name returns the canonical spec form
// and round-trips through ParsePolicyChain.
type Policy interface {
	Name() string
	Suspicious(c *Content, k int64) bool
}

// DensityPolicy is the one-sided local-density screen (the original Guard
// heuristic): each SIDE of the candidate's would-be position is measured
// against the global key density, and the denser side decides. One-sided
// windows matter because the greedy attack grows its poison run
// edge-outward — a centered window always straddles the wide gap beyond the
// run's edge and averages the cluster away, while the run-side window is
// pure cluster.
type DensityPolicy struct {
	// Window is the rank half-width of the neighbourhood inspected around
	// each candidate insert.
	Window int
	// Ratio is the density multiple above which an insert is rejected.
	Ratio float64
}

// Name returns the canonical spec "density:W:R".
func (p DensityPolicy) Name() string { return fmt.Sprintf("density:%d:%g", p.Window, p.Ratio) }

// Suspicious implements the screen.
func (p DensityPolicy) Suspicious(c *Content, k int64) bool {
	content := c.Keys
	n := content.Len()
	if n < 3 {
		return false
	}
	span := content.Max() - content.Min()
	if span <= 0 {
		return false
	}
	global := float64(n) / float64(span)
	pos := content.CountLess(k) // 0-based insertion index
	side := func(lo, hi int) float64 {
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		if hi <= lo {
			return 0
		}
		width := content.At(hi) - content.At(lo)
		if width <= 0 {
			width = 1
		}
		return float64(hi-lo) / float64(width)
	}
	left := side(pos-p.Window, pos-1)  // the Window keys below k
	right := side(pos, pos-1+p.Window) // the Window keys at/above k
	density := left
	if right > density {
		density = right
	}
	return density > p.Ratio*global
}

// DupMassPolicy flags near-duplicate mass: a key with Count or more
// existing keys within distance Window of it. Backends already reject exact
// duplicates, so adversaries emit the closest legal thing — runs of
// adjacent keys — which this counts directly; an honest uniform write into
// a sparse universe almost never lands within a few units of that many
// stored keys.
type DupMassPolicy struct {
	// Window is the key-space half-width of the neighbourhood.
	Window int64
	// Count is the neighbour count at which the insert is rejected.
	Count int
}

// Name returns the canonical spec "dupmass:W:C".
func (p DupMassPolicy) Name() string { return fmt.Sprintf("dupmass:%d:%d", p.Window, p.Count) }

// Suspicious counts stored keys in [k−Window, k+Window].
func (p DupMassPolicy) Suspicious(c *Content, k int64) bool {
	lo, hi := k-p.Window, k+p.Window
	if k < math.MinInt64+p.Window {
		lo = math.MinInt64
	}
	if k > math.MaxInt64-p.Window-1 {
		hi = math.MaxInt64 - 1
	}
	neighbours := c.Keys.CountLess(hi+1) - c.Keys.CountLess(lo)
	return neighbours >= p.Count
}

// GapOutlierPolicy flags gap-asymmetry: for an interior candidate, the
// distances to its stored predecessor and successor should be of the same
// order for honest traffic, while cascade and greedy poison hug one edge of
// a wide gap (a+1 or b−1 — near-side distance 1, far side the whole gap).
// An insert is rejected when the far side exceeds Ratio times the near
// side. Keys outside the stored range have only one side and pass.
type GapOutlierPolicy struct {
	// Ratio is the far-side/near-side distance multiple above which the
	// insert is rejected.
	Ratio float64
}

// Name returns the canonical spec "gapout:R".
func (p GapOutlierPolicy) Name() string { return fmt.Sprintf("gapout:%g", p.Ratio) }

// Suspicious measures the candidate's two gap sides.
func (p GapOutlierPolicy) Suspicious(c *Content, k int64) bool {
	content := c.Keys
	n := content.Len()
	pos := content.CountLess(k)
	if pos == 0 || pos == n {
		return false // at most one side exists; nothing to compare
	}
	lo := k - content.At(pos-1)
	hi := content.At(pos) - k
	if lo <= 0 || hi <= 0 {
		return false // duplicate; the backend rejects it anyway
	}
	near, far := lo, hi
	if near > far {
		near, far = far, near
	}
	return float64(far) > p.Ratio*float64(near)
}

// LossSpikePolicy turns the attacker's oracle against them: it prices every
// candidate with the same exact O(1) closed-form loss the greedy attack
// maximizes (regression.Prefix.PoisonedLossAuto) and rejects keys whose
// insertion would multiply the retrained MSE by more than Ratio. It
// abstains when the content cannot support the oracle.
type LossSpikePolicy struct {
	// Ratio is the poisoned/clean loss multiple above which the insert is
	// rejected (> 1; honest inserts sit near 1).
	Ratio float64
}

// Name returns the canonical spec "lossspike:R".
func (p LossSpikePolicy) Name() string { return fmt.Sprintf("lossspike:%g", p.Ratio) }

// Suspicious prices the candidate's retrain-loss impact.
func (p LossSpikePolicy) Suspicious(c *Content, k int64) bool {
	oracle := c.LossOracle()
	if oracle == nil {
		return false
	}
	clean := oracle.CleanLoss()
	if clean <= 0 {
		return false // a perfect line: any honest insert spikes it too
	}
	loss, ok := oracle.PoisonedLossAuto(k)
	if !ok {
		return false // duplicate or out of range; the backend handles it
	}
	return loss > p.Ratio*clean
}

// ChainSpec renders a policy chain in the canonical spec syntax
// ("density:8:4|lossspike:1.5"; "none" for an empty chain). It is the
// inverse of ParsePolicyChain.
func ChainSpec(ps []Policy) string {
	if len(ps) == 0 {
		return "none"
	}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name()
	}
	return strings.Join(names, "|")
}

// ParsePolicyChain parses the detector-chain spec syntax of `lispoison
// defense` and bench.DefenseSweep: '|'-separated policies, each
//
//	density:W:R      one-sided density screen (rank window W, ratio R)
//	dupmass:W:C      near-duplicate mass (key distance W, count C)
//	gapout:R         gap-asymmetry outlier (far/near ratio R)
//	lossspike:R      retrain-loss spike (poisoned/clean ratio R)
//	none             the empty chain (alone)
//
// ParsePolicyChain is total: any input yields a chain or an error, never a
// panic (FuzzParsePolicyChain enforces this), and ChainSpec round-trips
// through it.
func ParsePolicyChain(spec string) ([]Policy, error) {
	if spec == "none" {
		return nil, nil
	}
	parts := strings.Split(spec, "|")
	out := make([]Policy, 0, len(parts))
	for _, part := range parts {
		p, err := parsePolicy(part)
		if err != nil {
			return nil, fmt.Errorf("policy chain %q: %w", spec, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func parsePolicy(s string) (Policy, error) {
	fields := strings.Split(s, ":")
	bad := func(what, raw string) error {
		return fmt.Errorf("policy %q: bad %s %q", s, what, raw)
	}
	parseRatio := func(raw, what string, min float64) (float64, error) {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < min {
			return 0, bad(what, raw)
		}
		return v, nil
	}
	switch fields[0] {
	case "density":
		if len(fields) != 3 {
			return nil, fmt.Errorf("policy %q: want density:W:R", s)
		}
		w, err := strconv.Atoi(fields[1])
		if err != nil || w < 1 {
			return nil, bad("window", fields[1])
		}
		r, err := parseRatio(fields[2], "ratio", 1e-9)
		if err != nil {
			return nil, err
		}
		return DensityPolicy{Window: w, Ratio: r}, nil
	case "dupmass":
		if len(fields) != 3 {
			return nil, fmt.Errorf("policy %q: want dupmass:W:C", s)
		}
		w, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || w < 1 {
			return nil, bad("window", fields[1])
		}
		cnt, err := strconv.Atoi(fields[2])
		if err != nil || cnt < 1 {
			return nil, bad("count", fields[2])
		}
		return DupMassPolicy{Window: w, Count: cnt}, nil
	case "gapout":
		if len(fields) != 2 {
			return nil, fmt.Errorf("policy %q: want gapout:R", s)
		}
		r, err := parseRatio(fields[1], "ratio", 1)
		if err != nil {
			return nil, err
		}
		return GapOutlierPolicy{Ratio: r}, nil
	case "lossspike":
		if len(fields) != 2 {
			return nil, fmt.Errorf("policy %q: want lossspike:R", s)
		}
		r, err := parseRatio(fields[1], "ratio", 1)
		if err != nil {
			return nil, err
		}
		return LossSpikePolicy{Ratio: r}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want density:W:R | dupmass:W:C | gapout:R | lossspike:R)", s)
	}
}

// RateLimiter is the traffic-plane defense: a deterministic per-source
// write budget on a logical operation clock. Each source may have at most
// Budget ALLOWED writes within every Window-operation span; further writes
// from that source are refused until the next span. There is no wall clock
// and no RNG — the scenario's own op counter is the clock — so rate-limited
// runs replay byte-identically.
//
// The limiter does not know who is honest: the scenarios account refused
// attacker writes (poison rejected) and refused honest writes (honest
// throttled) separately, which is exactly the overhead-vs-damage trade the
// Pareto sweep measures.
type RateLimiter struct {
	budget int
	window int
	seen   map[int]int // source → last window index observed
	counts map[int]int // source → allowed writes in that window
}

// NewRateLimiter builds a limiter allowing budget writes per source per
// window ops (both >= 1).
func NewRateLimiter(budget, window int) (*RateLimiter, error) {
	if budget < 1 || window < 1 {
		return nil, fmt.Errorf("defense: rate limiter needs budget >= 1 and window >= 1, got %d/%d", budget, window)
	}
	return &RateLimiter{
		budget: budget,
		window: window,
		seen:   make(map[int]int),
		counts: make(map[int]int),
	}, nil
}

// Allow reports whether the write from source at logical operation op fits
// the source's budget, and consumes one unit when it does. op must be
// non-decreasing per source.
func (r *RateLimiter) Allow(source, op int) bool {
	w := op / r.window
	if last, ok := r.seen[source]; !ok || last != w {
		r.seen[source] = w
		r.counts[source] = 0
	}
	if r.counts[source] >= r.budget {
		return false
	}
	r.counts[source]++
	return true
}
