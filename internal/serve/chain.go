package serve

// The MVCC version chain: how the concurrent serving plane publishes
// immutable index snapshots to lock-free readers.
//
// The single writer wraps each `index.Snapshot` in a Version and publishes
// it through an atomic head pointer. Readers acquire the head with a
// confirm loop (load head → increment its refcount → re-check the head
// still points at it), which closes the classic race where a reader grabs
// a version in the instant the writer supersedes and reclaims it: if the
// confirm load still sees the version as head, the writer cannot yet have
// observed it superseded, so the refcount increment is visible to any
// later reclamation scan (sequentially consistent atomics). If the confirm
// fails, the reader backs its increment out and retries on the new head.
//
// Reclamation is deferred and writer-driven — an epoch-style scheme with
// the publish sequence as the epoch counter. The writer keeps every
// published version in a retained window and, at each publish (or an
// explicit Reclaim), drops the oldest superseded versions whose refcounts
// have drained to zero. Go's garbage collector does the actual freeing;
// "release" here means dropping the strong reference and marking the
// version dead, so the reclamation tests can assert the two invariants
// that matter: a version is never marked released while a reader holds it,
// and the retained window stays bounded — quiescent readers always leave
// the chain at length 1 (DESIGN.md §8).
//
// Everything except Acquire/Release is writer-only, matching the
// single-writer contract of the index planes underneath.

import (
	"sync/atomic"

	"cdfpoison/internal/index"
)

// Version is one published read-plane state: an immutable snapshot plus
// the reference count readers hold while serving lookups from it.
type Version struct {
	snap index.Snapshot
	seq  uint64
	refs atomic.Int64
	// released flips when the writer reclaims the version — only ever after
	// its refcount has drained AND a newer version has been published. The
	// stress tests assert no reader ever observes it set on a held version.
	released atomic.Bool
}

// Snapshot returns the frozen index state this version serves.
func (v *Version) Snapshot() index.Snapshot { return v.snap }

// Seq returns the publish sequence number (1 for the first publish).
func (v *Version) Seq() uint64 { return v.seq }

// Released reports whether the writer has reclaimed this version.
func (v *Version) Released() bool { return v.released.Load() }

// Release drops one reader reference acquired via Acquire (or the writer's
// AcquireCurrent). Safe from any goroutine.
func (v *Version) Release() {
	if v.refs.Add(-1) < 0 {
		panic("serve: version over-released")
	}
}

// Chain is the version chain: an atomic head readers acquire from, plus
// the writer-owned retained window that defers release until readers have
// drained.
type Chain struct {
	head atomic.Pointer[Version]
	// retained is writer-only: every version not yet reclaimed, oldest
	// first; the last element is always the current head.
	retained []*Version
	seq      uint64
	released uint64
}

// NewChain returns an empty chain (no version published yet).
func NewChain() *Chain { return &Chain{} }

// Publish wraps snap in a new version, makes it the head, and reclaims any
// drained predecessors. Writer-only.
func (c *Chain) Publish(snap index.Snapshot) *Version {
	c.seq++
	v := &Version{snap: snap, seq: c.seq}
	c.head.Store(v)
	c.retained = append(c.retained, v)
	c.Reclaim()
	return v
}

// Acquire returns the current head with a reference held, or nil when
// nothing has been published. Lock-free; safe from any goroutine
// concurrently with Publish/Reclaim.
func (c *Chain) Acquire() *Version {
	for {
		v := c.head.Load()
		if v == nil {
			return nil
		}
		v.refs.Add(1)
		if c.head.Load() == v {
			return v
		}
		// The writer superseded v between our load and confirm: the
		// reclamation scan may have missed our reference, so back out and
		// take the new head.
		v.refs.Add(-1)
	}
}

// AcquireCurrent is the writer's fast path: the writer is the only
// publisher, so the head cannot change underneath it and no confirm loop
// is needed.
func (c *Chain) AcquireCurrent() *Version {
	v := c.head.Load()
	if v != nil {
		v.refs.Add(1)
	}
	return v
}

// Reclaim drops superseded versions from the front of the retained window
// whose reader references have drained. Writer-only. The head itself is
// never reclaimed.
func (c *Chain) Reclaim() {
	i := 0
	for ; i < len(c.retained)-1; i++ {
		v := c.retained[i]
		if v.refs.Load() != 0 {
			break // an older version is still held; keep the prefix ordered
		}
		v.released.Store(true)
		c.released++
	}
	if i > 0 {
		c.retained = append(c.retained[:0], c.retained[i:]...)
	}
}

// Len returns the retained window length (writer-only): the published
// versions not yet reclaimed. Quiescent readers leave it at 1.
func (c *Chain) Len() int { return len(c.retained) }

// Released returns how many versions have been reclaimed so far
// (writer-only). Released + Len == total publishes, always.
func (c *Chain) Released() uint64 { return c.released }
