package serve

// Version-chain tests: publish/acquire/release semantics, the deferred
// (epoch-style) reclamation invariants — never release a held version,
// bounded retained window — and the 64-goroutine acquire/release stress
// run that the CI race step hammers with -count=3. All synchronization is
// logical (channels, WaitGroups, atomics): no sleeping, no polling clocks.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// fakeSnap is a minimal index.Snapshot for chain plumbing tests.
type fakeSnap struct{ id int64 }

func (f fakeSnap) Lookup(k int64) index.LookupResult {
	return index.LookupResult{Found: true, Probes: int(f.id%7) + 1}
}
func (f fakeSnap) ProbeSum(qs []int64) (int64, int) { return index.ProbeSum(f, qs) }
func (f fakeSnap) Len() int                         { return 1 }
func (f fakeSnap) Keys() keys.Set                   { return keys.FromSorted([]int64{f.id}) }

func TestChainPublishAcquireRelease(t *testing.T) {
	c := NewChain()
	if c.Acquire() != nil {
		t.Fatal("empty chain handed out a version")
	}
	if c.Len() != 0 || c.Released() != 0 {
		t.Fatal("empty chain has non-zero accounting")
	}

	v1 := c.Publish(fakeSnap{id: 1})
	if v1.Seq() != 1 {
		t.Fatalf("first publish seq = %d, want 1", v1.Seq())
	}
	got := c.Acquire()
	if got != v1 {
		t.Fatal("Acquire did not return the head")
	}
	if got.Snapshot().(fakeSnap).id != 1 {
		t.Fatal("version serves the wrong snapshot")
	}

	// A held predecessor must survive any number of publishes.
	for i := int64(2); i <= 5; i++ {
		c.Publish(fakeSnap{id: i})
	}
	if v1.Released() {
		t.Fatal("held version was released")
	}
	if c.Len() != 5 {
		t.Fatalf("retained window = %d, want 5 (head + 4 blocked by the held v1)", c.Len())
	}

	// Releasing the hold lets the next reclamation drain everything but
	// the head.
	got.Release()
	c.Reclaim()
	if c.Len() != 1 {
		t.Fatalf("retained window = %d after release+reclaim, want 1", c.Len())
	}
	if got := c.Released(); got != 4 {
		t.Fatalf("released count = %d, want 4", got)
	}
	if !v1.Released() {
		t.Fatal("drained superseded version not marked released")
	}
	if c.Acquire().Released() {
		t.Fatal("head must never be released")
	}
}

// TestChainReclamationBounded: with no holds, the retained window stays at
// 1 across N publishes — no version-chain leak — and the accounting always
// balances (Released + Len == publishes).
func TestChainReclamationBounded(t *testing.T) {
	c := NewChain()
	const n = 1000
	for i := int64(1); i <= n; i++ {
		v := c.Publish(fakeSnap{id: i})
		// Simulate the writer's own transient use: acquire + release.
		w := c.AcquireCurrent()
		if w != v {
			t.Fatal("AcquireCurrent did not return the head")
		}
		w.Release()
		if c.Len() != 1 {
			t.Fatalf("publish %d: retained window %d, want 1", i, c.Len())
		}
		if c.Released()+uint64(c.Len()) != uint64(i) {
			t.Fatalf("publish %d: accounting drifted: released %d + len %d != %d",
				i, c.Released(), c.Len(), i)
		}
	}
}

// TestChainOverReleasePanics: releasing a version more often than acquired
// is a bug the chain refuses to absorb silently.
func TestChainOverReleasePanics(t *testing.T) {
	c := NewChain()
	v := c.Publish(fakeSnap{id: 1})
	v.refs.Add(1)
	v.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	v.Release()
}

// TestChainStressAcquireRelease is the race-detector stress run: 64
// goroutines hammer Acquire/Lookup/Release while the single writer mutates
// a real dynamic backend, retrains it, and publishes fresh snapshots —
// exercising at once the confirm-loop against reclamation, the COW
// snapshot immutability under concurrent retrains, and the no-release-
// while-held invariant. CI runs this under -race with -count=3.
func TestChainStressAcquireRelease(t *testing.T) {
	const (
		readers   = 64
		publishes = 300
		// iters bounds each reader's work so the test stays fast on any
		// core count (on GOMAXPROCS=1 an unbounded spin loop would starve
		// the writer); the stop flag still ends readers early once the
		// writer has published everything.
		iters = 400
	)
	initial, err := dataset.Uniform(xrand.New(21), 500, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dynamic.New(initial, dynamic.BufferLimit(16))
	if err != nil {
		t.Fatal(err)
	}

	c := NewChain()
	c.Publish(b.Snapshot())
	var (
		stop  atomic.Bool
		start = make(chan struct{})
		wg    sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < iters && !stop.Load(); i++ {
				v := c.Acquire()
				if v == nil {
					t.Error("reader saw a nil head after first publish")
					return
				}
				if v.Released() {
					t.Errorf("reader %d acquired a released version (seq %d)", r, v.Seq())
					return
				}
				// Every version must still answer for the initial keys,
				// whatever the writer has done to the live backend since.
				k := initial.At((r + i) % initial.Len())
				if res := v.Snapshot().Lookup(k); !res.Found {
					t.Errorf("reader %d: initial key %d missing from seq %d", r, k, v.Seq())
					return
				}
				v.Release()
				if i%4 == 0 {
					runtime.Gosched() // interleave with the writer, no sleeping
				}
			}
		}(r)
	}

	close(start)
	rng := xrand.New(7)
	for i := 0; i < publishes; i++ {
		b.Insert(rng.Int63n(25_000))
		if i%17 == 0 {
			b.Retrain()
		}
		c.Publish(b.Snapshot())
		runtime.Gosched() // widen the interleaving space, no sleeping
	}
	stop.Store(true)
	wg.Wait()

	c.Reclaim()
	if c.Len() != 1 {
		t.Fatalf("retained window = %d after quiescence, want 1", c.Len())
	}
	if got, want := c.Released()+uint64(c.Len()), uint64(publishes+1); got != want {
		t.Fatalf("accounting drifted: released+retained = %d, want %d publishes", got, want)
	}
}
