package serve

// White-box unit tests of the deterministic latency histogram: bucket
// geometry, exact percentiles on known synthetic distributions, the
// commutative/associative merge the scheduler-equivalence argument leans
// on, and the zero-allocation record path.

import (
	"math"
	"reflect"
	"testing"

	"cdfpoison/internal/xrand"
)

// TestHistogramBucketBoundaries pins the bucket geometry: width-1 buckets
// below smallCutoff, 32 log sub-buckets per octave above, monotone
// indexing, and the ≤1/32 relative-error bound of the reported upper edge.
func TestHistogramBucketBoundaries(t *testing.T) {
	// Exact region: value == bucket == reported edge.
	for v := int64(0); v < smallCutoff; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketHigh(int(v)); got != v {
			t.Fatalf("bucketHigh(%d) = %d, want %d", v, got, v)
		}
	}
	// Negative values clamp to bucket 0.
	if bucketIndex(-5) != 0 {
		t.Fatal("negative value did not clamp to bucket 0")
	}
	// Hand-computed boundary: 499 lives in [496, 503].
	if got := bucketHigh(bucketIndex(499)); got != 503 {
		t.Fatalf("bucketHigh(bucketIndex(499)) = %d, want 503", got)
	}
	// First logarithmic bucket starts exactly at smallCutoff.
	if got := bucketIndex(smallCutoff); got != smallCutoff {
		t.Fatalf("bucketIndex(%d) = %d, want %d", int64(smallCutoff), got, smallCutoff)
	}
	// Monotonicity, coverage, and the relative-error bound across octaves.
	prev := -1
	for _, v := range []int64{0, 1, 31, 63, 64, 65, 95, 127, 128, 1000, 4097, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0, %d)", v, i, histBuckets)
		}
		hi := bucketHigh(i)
		if hi < v {
			t.Fatalf("bucketHigh(%d)=%d below the value %d it must bound", i, hi, v)
		}
		if v >= smallCutoff && float64(hi-v) > float64(v)/float64(histSubCount) {
			t.Fatalf("value %d reported as %d: relative error above 1/%d", v, hi, histSubCount)
		}
	}
	// Every bucket index round-trips through its upper edge.
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketHigh(i)); got != i {
			t.Fatalf("bucket %d upper edge %d maps back to bucket %d", i, bucketHigh(i), got)
		}
	}
}

// TestHistogramPercentilesExact: p50/p99/p999 on known synthetic
// distributions, exact in the width-1 region and pinned to the documented
// deterministic bucket edge above it.
func TestHistogramPercentilesExact(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// 1..50 once each: ranks are exact (all values < smallCutoff).
	for v := int64(1); v <= 50; v++ {
		h.Record(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{50, 25}, {99, 50}, {99.9, 50}, {100, 50}, {2, 1}, {1, 1}} {
		if got := h.Percentile(tc.q); got != tc.want {
			t.Fatalf("P%v over 1..50 = %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.Count() != 50 || h.Sum() != 50*51/2 || h.Min() != 1 || h.Max() != 50 {
		t.Fatalf("summary stats wrong: count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}

	// Uniform 0..999: the p50 rank (500) lands in bucket [496, 503] (width
	// 8 in the [256, 512) octave); the p999 rank (999) in [992, 1007]
	// (width 16 in the [512, 1024) octave) — the quantized-but-
	// deterministic regime, reported at the bucket's upper edge.
	h.Reset()
	for v := int64(0); v < 1000; v++ {
		h.Record(v)
	}
	if got := h.Percentile(50); got != 503 {
		t.Fatalf("P50 over 0..999 = %d, want 503", got)
	}
	if got := h.Percentile(99.9); got != 1007 {
		t.Fatalf("P99.9 over 0..999 = %d, want 1007", got)
	}
	if got := h.Percentile(100); got != 999 {
		t.Fatalf("P100 over 0..999 = %d, want exact max 999", got)
	}

	// A two-point SLO-style distribution: 999 fast lookups, 1 catastrophic.
	h.Reset()
	for i := 0; i < 999; i++ {
		h.Record(10)
	}
	h.Record(1 << 30)
	if got := h.Percentile(99); got != 10 {
		t.Fatalf("P99 of 999×10 + 1 outlier = %d, want 10", got)
	}
	if got := h.Percentile(99.9); got != 10 {
		t.Fatalf("P99.9 rank 1000... = %d", got)
	}
	if got := h.Percentile(99.95); got != h.Max() {
		t.Fatalf("P99.95 must surface the outlier: got %d, want %d", got, h.Max())
	}
}

// TestHistogramMergeAssociative: merge(a,b) == merge(b,a) and
// merge(merge(a,b),c) == merge(a,merge(b,c)) — full state, checksum
// included. Histograms are value types (fixed array), so plain copies
// clone them.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := xrand.New(5)
	mk := func(n int, shift uint) *Histogram {
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Record(rng.Int63n(1 << shift))
		}
		return h
	}
	a, b, c := mk(500, 8), mk(300, 20), mk(700, 4)

	equal := func(x, y *Histogram) bool {
		return reflect.DeepEqual(x.Counts(), y.Counts()) &&
			x.Count() == y.Count() && x.Sum() == y.Sum() &&
			x.Min() == y.Min() && x.Max() == y.Max() &&
			x.Checksum() == y.Checksum()
	}

	ab, ba := *a, *b
	ab.Merge(b)
	ba.Merge(a)
	if !equal(&ab, &ba) {
		t.Fatal("merge is not commutative")
	}

	left := ab // (a+b)
	left.Merge(c)
	bc := *b
	bc.Merge(c)
	right := *a
	right.Merge(&bc)
	if !equal(&left, &right) {
		t.Fatal("merge is not associative")
	}

	// Merging an empty histogram is the identity.
	id := *a
	id.Merge(&Histogram{})
	if !equal(&id, a) {
		t.Fatal("merging an empty histogram changed state")
	}
}

// TestHistogramRecordZeroAlloc pins the record path's allocation budget at
// zero — the property that keeps reader goroutines allocation-free per
// lookup.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := NewHistogram()
	v := int64(1)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = (v * 31) & 0xfffff
	}); allocs != 0 {
		t.Fatalf("Record allocates %v allocs/op, budget is 0", allocs)
	}
}

// BenchmarkHistogramRecord is the allocs/op budget pin in benchmark form
// (CI runs it with -benchtime 1x as a smoke check).
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i & 0xffff))
	}
}
