// Package serve is the goroutine-concurrent serving plane: N reader
// goroutines serve lock-free lookups off immutable index snapshots
// published through an atomic version chain (chain.go), while the single
// writer goroutine ingests the workload stream, injects poison, and drives
// index.Pipeline retrains in a true background goroutine.
//
// The package's contract is SCHEDULER EQUIVALENCE. The same scenario runs
// under two schedulers:
//
//   - the tick oracle (RunTick): everything inline on one goroutine, reads
//     served directly from the pipeline's read plane — the deterministic
//     golden reference, byte-compatible with the historical scenarios;
//   - the concurrent plane (RunConcurrent): reads batched to reader
//     goroutines against published versions, epoch-end retrains running on
//     a background retrainer while the read backlog drains.
//
// Both must produce IDENTICAL per-epoch metrics — loss, probe totals,
// stale windows, full latency-histogram state — because the two executors
// share one driver loop (identical pipeline call sequence), a published
// version answers probe-for-probe like the read plane it was captured from
// (the snapshot-immutability and probe-identity contracts of
// internal/index), and histogram/probe accounting is a commutative integer
// fold, invariant under the reader partition. TestConcurrentMatchesTickOracle
// pins this across every backend; the concurrent plane is therefore
// provably a scheduling change, not a semantic one (DESIGN.md §8).
//
// "Latency" throughout is the probe count — the machine-independent cost
// unit — so percentile cells are deterministic and CSV fingerprints hold
// across machines. Wall-clock throughput (ops/sec) is measured by callers
// (internal/bench) around RunConcurrent and reported separately, never
// fingerprinted.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/workload"
)

// Oracle computes a poison key sequence against the currently visible
// content. The scenario calls it once per epoch with the live key set and
// the epoch's budget; internal/bench injects the paper's greedy multi-point
// attack, tests inject cheap deterministic stand-ins.
type Oracle func(visible keys.Set, budget int) ([]int64, error)

// Options are the concurrent plane's knobs. The zero value is valid:
// Readers defaults to GOMAXPROCS, BatchSize to defaultBatchSize. Neither
// knob affects any metric — only wall-clock throughput (the worker-count
// equivalence the suite pins).
type Options struct {
	// Readers is the number of reader goroutines serving lookups.
	Readers int
	// BatchSize is how many reads the writer groups into one dispatch.
	BatchSize int
}

const defaultBatchSize = 64

// WithDefaults resolves the zero-value knobs to their documented defaults.
func (o Options) WithDefaults() Options {
	if o.Readers <= 0 {
		o.Readers = runtime.GOMAXPROCS(0)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = defaultBatchSize
	}
	return o
}

// ScenarioOptions parameterizes one serving scenario: a workload stream
// served for Epochs epochs of OpsPerEpoch operations (one pipeline tick
// each), with EpochBudget poison keys per epoch drip-fed into the write
// plane, and an optional explicit retrain closing each epoch.
type ScenarioOptions struct {
	Epochs      int
	OpsPerEpoch int
	// EpochBudget is the attacker's poison-insert budget per epoch; 0 runs
	// the clean baseline (no oracle calls).
	EpochBudget int
	// Workload is the honest population's read/write mix.
	Workload workload.Spec
	// Domain bounds honest write keys: uniform over [0, Domain).
	Domain int64
	// Seed drives the workload stream (and nothing else).
	Seed uint64
	// Cost prices background rebuilds in pipeline ticks.
	Cost index.CostModel
	// ManualRetrain forces an explicit Retrain at each epoch end — the
	// maintenance cadence for Manual-policy and model-free backends.
	ManualRetrain bool
	// Oracle supplies poison keys; required when EpochBudget > 0.
	Oracle Oracle
}

func (o ScenarioOptions) validate() error {
	if o.Epochs < 1 {
		return fmt.Errorf("serve: need epochs >= 1, got %d", o.Epochs)
	}
	if o.OpsPerEpoch < 1 {
		return fmt.Errorf("serve: need ops/epoch >= 1, got %d", o.OpsPerEpoch)
	}
	if o.EpochBudget < 0 {
		return fmt.Errorf("serve: negative epoch budget %d", o.EpochBudget)
	}
	if o.EpochBudget > 0 && o.Oracle == nil {
		return fmt.Errorf("serve: epoch budget %d without an oracle", o.EpochBudget)
	}
	return nil
}

// EpochMetrics is one epoch's deterministic report. Every field is a pure
// function of (backend initial state, ScenarioOptions) — independent of
// scheduler, reader count, and batch size; the equivalence suite compares
// these structs across schedulers with reflect.DeepEqual.
type EpochMetrics struct {
	Epoch int

	// Operation counts: honest reads/writes served, poison inserts accepted.
	Reads    int
	Writes   int
	Injected int

	// StaleReads counts reads served while a rebuild was in flight (the
	// frozen-snapshot window); StaleFrac = StaleReads/Reads.
	StaleReads int
	StaleFrac  float64

	// Probe-latency distribution over this epoch's reads.
	ProbeTotal   int64
	MeanProbes   float64
	P50          int64
	P99          int64
	P999         int64
	MaxProbes    int64
	HistChecksum uint64 // full-distribution fingerprint (Histogram.Checksum)

	// ContentLoss is the victim model's loss against its full content at
	// epoch end — the paper's damage metric, feeding the loss-ratio cells.
	ContentLoss float64

	// Pipeline accounting, per epoch (deltas of the cumulative ChurnStats);
	// MaxLatencyTicks is cumulative (a worst-case is not an epoch quantity).
	Retrains        int
	Publishes       int
	Coalesced       int
	StaleTicks      int64
	MaxLatencyTicks int64
}

// executor abstracts the scheduler: how reads are served and how the
// epoch-end retrain runs. The driver loop is shared verbatim between the
// two implementations — that sharing IS the equivalence argument.
type executor interface {
	bind(p *index.Pipeline)
	// read serves one lookup from the read plane.
	read(key int64)
	// retrain runs (tick) or dispatches (concurrent) the epoch-end retrain.
	retrain()
	// flush drains all outstanding work — read batches, the background
	// retrain — merges the epoch's read accounting into h, and returns the
	// epoch's probe total. After flush the pipeline is quiescent again.
	flush(h *Histogram) int64
}

// runScenario is the single driver both schedulers execute: per epoch it
// plans poison against the visible content, drip-feeds it through the
// honest stream (one pipeline tick per honest op), closes with an optional
// explicit retrain, and snapshots the metrics. Executors only decide WHERE
// reads and retrains run, never WHAT runs.
func runScenario(ctx context.Context, b index.Backend, o ScenarioOptions, ex executor) ([]EpochMetrics, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	initial := b.Keys()
	gen, err := workload.NewGenerator(o.Workload, initial, o.Domain, o.Seed)
	if err != nil {
		return nil, err
	}
	pipe := index.NewPipeline(b, o.Cost)
	ex.bind(pipe)

	var (
		out          = make([]EpochMetrics, 0, o.Epochs)
		ops          []workload.Op
		hist         Histogram
		prev         index.ChurnStats
		prevRetrains int
	)
	for e := 0; e < o.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		var poison []int64
		if o.EpochBudget > 0 {
			poison, err = o.Oracle(pipe.Keys(), o.EpochBudget)
			if err != nil {
				return out, fmt.Errorf("serve: poison oracle: %w", err)
			}
		}
		m := EpochMetrics{Epoch: e}
		inj := 0
		ops = gen.OpsInto(ops, o.OpsPerEpoch)
		for i, op := range ops {
			if i&63 == 0 && ctx.Err() != nil {
				ex.flush(&hist)
				return out, ctx.Err()
			}
			// Drip-feed the epoch's poison budget evenly through the stream.
			for inj < len(poison) && inj*o.OpsPerEpoch <= i*o.EpochBudget {
				if acc, _ := pipe.Insert(poison[inj]); acc {
					m.Injected++
				}
				inj++
			}
			pipe.Tick(1)
			if op.Read {
				m.Reads++
				if pipe.IsStale() {
					m.StaleReads++
				}
				ex.read(op.Key)
			} else {
				m.Writes++
				pipe.Insert(op.Key)
			}
		}
		if o.ManualRetrain {
			ex.retrain()
		}
		hist.Reset()
		m.ProbeTotal = ex.flush(&hist)

		st := pipe.Stats()
		cs := pipe.ChurnStats()
		m.ContentLoss = st.ContentLoss
		m.Retrains = st.Retrains - prevRetrains
		prevRetrains = st.Retrains
		m.Publishes = cs.Publishes - prev.Publishes
		m.Coalesced = cs.Coalesced - prev.Coalesced
		m.StaleTicks = cs.StaleTicks - prev.StaleTicks
		m.MaxLatencyTicks = cs.MaxLatencyTicks
		prev = cs
		if m.Reads > 0 {
			m.StaleFrac = float64(m.StaleReads) / float64(m.Reads)
		}
		m.MeanProbes = hist.Mean()
		m.P50 = hist.Percentile(50)
		m.P99 = hist.Percentile(99)
		m.P999 = hist.Percentile(99.9)
		m.MaxProbes = hist.Max()
		m.HistChecksum = hist.Checksum()
		out = append(out, m)
	}
	return out, nil
}

// RunTick runs the scenario under the tick oracle: fully inline,
// sequential, deterministic — the golden reference the concurrent plane is
// pinned against.
func RunTick(b index.Backend, o ScenarioOptions) ([]EpochMetrics, error) {
	return runScenario(context.Background(), b, o, &tickExec{})
}

// tickExec serves reads inline from the pipeline's read plane.
type tickExec struct {
	pipe   *index.Pipeline
	probes int64
	hist   Histogram
}

func (e *tickExec) bind(p *index.Pipeline) { e.pipe = p }

func (e *tickExec) read(key int64) {
	r := e.pipe.Lookup(key)
	e.probes += int64(r.Probes)
	e.hist.Record(int64(r.Probes))
}

func (e *tickExec) retrain() { e.pipe.Retrain() }

func (e *tickExec) flush(h *Histogram) int64 {
	h.Merge(&e.hist)
	p := e.probes
	e.hist.Reset()
	e.probes = 0
	return p
}

// RunConcurrent runs the scenario on the concurrent plane: a dedicated
// writer goroutine drives the scenario, dispatching read batches to the
// plane's reader goroutines against chain-published versions and epoch-end
// retrains to its background retrainer. Metrics are identical to RunTick's
// for the same backend and options. Cancellation via ctx returns the
// epochs completed so far with ctx's error; all goroutines are always
// drained before return.
func RunConcurrent(ctx context.Context, b index.Backend, o ScenarioOptions, popts Options) ([]EpochMetrics, error) {
	plane := NewPlane(popts)
	defer plane.Close()
	type result struct {
		m   []EpochMetrics
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := runScenario(ctx, b, o, newConcExec(plane))
		ch <- result{m, err}
	}()
	r := <-ch
	return r.m, r.err
}

// task is one read bound to the version it must be served from; the
// writer holds a reference on v for every enqueued task, the serving
// reader releases it.
type task struct {
	v   *Version
	key int64
}

// readerAcc is one reader goroutine's private accounting, merged by the
// writer at epoch flush (after the batch barrier, so no synchronization
// beyond the WaitGroup is needed).
type readerAcc struct {
	probes int64
	hist   Histogram
}

// Plane owns the concurrent machinery: the version chain, the reader
// goroutines with their batch channels, and the background retrainer.
// Create with NewPlane, dispose with Close (idempotent); Close drains and
// joins every goroutine the plane started — Goroutines() reports 0 after.
type Plane struct {
	opts  Options
	chain *Chain

	chans []chan []task
	free  chan []task
	acc   []readerAcc

	retrainCh   chan func()
	retrainDone chan struct{}

	wg      sync.WaitGroup // reader + retrainer goroutines
	batchWG sync.WaitGroup // outstanding read batches
	alive   atomic.Int64   // live goroutine count, for the leak tests
	once    sync.Once
}

// NewPlane starts the reader and retrainer goroutines.
func NewPlane(opts Options) *Plane {
	opts = opts.WithDefaults()
	p := &Plane{
		opts:        opts,
		chain:       NewChain(),
		chans:       make([]chan []task, opts.Readers),
		free:        make(chan []task, 4*opts.Readers),
		acc:         make([]readerAcc, opts.Readers),
		retrainCh:   make(chan func()),
		retrainDone: make(chan struct{}, 1),
	}
	for i := range p.chans {
		p.chans[i] = make(chan []task, 2)
		p.wg.Add(1)
		p.alive.Add(1)
		go p.reader(i)
	}
	p.wg.Add(1)
	p.alive.Add(1)
	go p.retrainer()
	return p
}

// reader serves one dispatch channel: look each task's key up in its
// pinned version, account probes locally, release the version reference.
func (p *Plane) reader(i int) {
	defer p.wg.Done()
	defer p.alive.Add(-1)
	acc := &p.acc[i]
	for b := range p.chans[i] {
		for _, t := range b {
			r := t.v.snap.Lookup(t.key)
			acc.probes += int64(r.Probes)
			acc.hist.Record(int64(r.Probes))
			t.v.Release()
		}
		p.putBuf(b)
		p.batchWG.Done()
	}
}

// retrainer runs epoch-end rebuild jobs off the writer's critical path;
// in-flight read batches drain concurrently against their frozen versions
// while the live backend rebuilds.
func (p *Plane) retrainer() {
	defer p.wg.Done()
	defer p.alive.Add(-1)
	for job := range p.retrainCh {
		job()
		p.retrainDone <- struct{}{}
	}
}

// Close shuts the plane down: channels close, readers drain their
// backlogs, every goroutine joins. Idempotent.
func (p *Plane) Close() {
	p.once.Do(func() {
		for _, ch := range p.chans {
			close(ch)
		}
		close(p.retrainCh)
		p.wg.Wait()
	})
}

// Goroutines reports the plane's live goroutine count (0 after Close) —
// the leak witness the clean-shutdown test asserts on.
func (p *Plane) Goroutines() int64 { return p.alive.Load() }

// Chain exposes the version chain (writer-side inspection in tests).
func (p *Plane) Chain() *Chain { return p.chain }

func (p *Plane) getBuf() []task {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]task, 0, p.opts.BatchSize)
	}
}

func (p *Plane) putBuf(b []task) {
	select {
	case p.free <- b:
	default:
	}
}

// concExec dispatches the shared driver's reads and retrains onto a Plane.
type concExec struct {
	plane *Plane
	pipe  *index.Pipeline

	cur     *Version
	lastRev uint64
	batch   []task
	next    int // round-robin reader cursor
	pending int // dispatched, un-joined retrains
}

func newConcExec(p *Plane) *concExec {
	return &concExec{plane: p, batch: p.getBuf()}
}

func (e *concExec) bind(p *index.Pipeline) { e.pipe = p }

// read pins the current read-plane version — re-capturing only when the
// pipeline's ReadRevision moved — and enqueues the lookup for the readers.
func (e *concExec) read(key int64) {
	if rev := e.pipe.ReadRevision(); e.cur == nil || rev != e.lastRev {
		e.cur = e.plane.chain.Publish(e.pipe.Snapshot())
		e.lastRev = rev
	}
	e.cur.refs.Add(1)
	e.batch = append(e.batch, task{v: e.cur, key: key})
	if len(e.batch) >= e.plane.opts.BatchSize {
		e.send()
	}
}

func (e *concExec) send() {
	if len(e.batch) == 0 {
		return
	}
	e.plane.batchWG.Add(1)
	e.plane.chans[e.next] <- e.batch
	e.next = (e.next + 1) % len(e.plane.chans)
	e.batch = e.plane.getBuf()
}

// retrain ships the pipeline's maintenance step to the background
// retrainer. The driver's next pipeline interaction goes through flush,
// which joins the job — single-writer discipline is preserved while
// already-dispatched read batches drain concurrently with the rebuild.
func (e *concExec) retrain() {
	pipe := e.pipe
	e.pending++
	e.plane.retrainCh <- func() { pipe.Retrain() }
}

// flush is the epoch barrier: dispatch the partial batch, wait for every
// read batch to drain, join the background retrain, then fold the readers'
// private accounting (a commutative integer merge — any reader partition
// yields identical bytes) and trim the version chain.
func (e *concExec) flush(h *Histogram) int64 {
	e.send()
	e.plane.batchWG.Wait()
	for ; e.pending > 0; e.pending-- {
		<-e.plane.retrainDone
	}
	var probes int64
	for i := range e.plane.acc {
		acc := &e.plane.acc[i]
		probes += acc.probes
		h.Merge(&acc.hist)
		acc.probes = 0
		acc.hist.Reset()
	}
	e.cur = nil
	e.plane.chain.Reclaim()
	return probes
}
