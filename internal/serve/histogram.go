package serve

// Deterministic HDR-style latency histogram. The serving plane's unit of
// "latency" is the PROBE COUNT of a lookup — the machine-independent cost
// metric every comparison in this repository uses — so p50/p99/p999 cells
// are byte-identical across machines, worker counts, and schedulers, and
// the throughput CSV can carry a pinned sha256 fingerprint (EXPERIMENTS.md).
//
// Layout. Values below smallCutoff get one bucket each (exact small-value
// percentiles — the regime where honest lookups live). Above that, each
// power-of-two octave is split into 2^histSubBits = 32 logarithmic
// sub-buckets, bounding the relative quantization error by 1/32 ≈ 3.1%.
// The bucket array is a fixed-size value field inside the struct: Record
// is a pure shift-and-index increment — no allocation, no branching on
// growth — which BenchmarkHistogramRecord pins at 0 allocs/op.
//
// Determinism. Counts are int64 adds, so Merge is commutative and
// associative: per-reader histograms folded in ANY grouping produce the
// identical final state, the property that lets the concurrent scheduler
// merge N reader-local histograms and still match the tick oracle's single
// sequential histogram bucket-for-bucket (TestHistogramMergeAssociative,
// DESIGN.md §8).

import "math/bits"

const (
	// histSubBits is the per-octave resolution: 2^histSubBits sub-buckets
	// per power of two.
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32
	// smallCutoff is the first value that shares a bucket with a neighbor:
	// values in [0, smallCutoff) are exact. 2*histSubCount keeps the
	// width-1 region aligned with the first logarithmic octave.
	smallCutoff = 2 * histSubCount // 64
	// smallExp is the octave exponent of the first logarithmic bucket:
	// values >= smallCutoff have bits.Len64(v)-1 >= smallExp.
	smallExp = histSubBits + 1 // 6
	// histBuckets covers every non-negative int64: the exact region plus
	// 32 sub-buckets for each octave 6..62.
	histBuckets = smallCutoff + (63-smallExp)*histSubCount // 1888
)

// Histogram is a fixed-bucket log-linear histogram over non-negative int64
// values (negative values are clamped to 0). The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket. Exact for v < smallCutoff;
// logarithmic with 1/32 relative width above.
func bucketIndex(v int64) int {
	if v < smallCutoff {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // in [smallExp, 62]
	sub := int(v>>(uint(exp)-histSubBits)) - histSubCount
	return smallCutoff + (exp-smallExp)*histSubCount + sub
}

// bucketHigh returns the largest value a bucket covers — the value
// Percentile reports, so every reported quantile is an upper bound of the
// true one (an SLO never reads optimistic).
func bucketHigh(i int) int64 {
	if i < smallCutoff {
		return int64(i)
	}
	i -= smallCutoff
	exp := smallExp + i/histSubCount
	sub := i % histSubCount
	width := int64(1) << (uint(exp) - histSubBits)
	low := int64(histSubCount+sub) * width
	return low + width - 1
}

// Record adds one observation. Zero allocations, no branches that depend
// on prior state beyond min/max maintenance.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.sum += v
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the exact sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max return the exact extremes (0 on an empty histogram).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum recorded value (0 on an empty histogram).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 on an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Merge folds o into h. Merging is commutative and associative: counts,
// totals and sums are integer adds; min/max take the extremes.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset zeroes the histogram for reuse.
func (h *Histogram) Reset() { *h = Histogram{} }

// Percentile returns the value at quantile q in (0, 100]: the upper bound
// of the bucket where the cumulative count first reaches ceil(q/100 ·
// total). On an empty histogram it returns 0; q=100 returns the exact Max.
func (h *Histogram) Percentile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := int64(float64(h.total) * q / 100)
	if float64(rank) < float64(h.total)*q/100 {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank >= h.total {
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketHigh(i)
		}
	}
	return h.max
}

// Checksum returns an FNV-1a fingerprint over the full bucket state —
// the "byte-identical distribution" witness the scheduler-equivalence
// suite compares per epoch, far stronger than matching three quantiles.
func (h *Histogram) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	mix := func(v int64) {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			hash ^= (u >> uint(s)) & 0xff
			hash *= prime64
		}
	}
	mix(h.total)
	mix(h.sum)
	for i, c := range h.counts {
		if c != 0 {
			mix(int64(i))
			mix(c)
		}
	}
	return hash
}

// Counts returns a copy of the raw bucket counts (tests and debugging).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts[:])
	return out
}
