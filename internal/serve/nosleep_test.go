package serve

// The flake-audit lint: nothing in this package — test or production —
// may synchronize by sleeping. Concurrency here is coordinated with
// channels, WaitGroups and atomics only; a wall-clock sleep in a test is
// a latent flake and in production code a latent stall. The needle is
// assembled from pieces so this file does not reject itself.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNoSleepInServePackage(t *testing.T) {
	needle := "time." + "Sleep"
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		src, err := os.ReadFile(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, needle) {
				t.Errorf("%s:%d: %s found — use channels/WaitGroups, not wall-clock sleeps", e.Name(), i+1, needle)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("lint walked only %d Go files; directory layout changed?", checked)
	}
}
