package serve_test

// The scheduler-equivalence suite — the contract that makes the concurrent
// plane provably a scheduling change: every serving/churn scenario shape,
// across every backend in the repository, must produce byte-identical
// per-epoch metrics under the tick oracle and the goroutine scheduler
// (full latency-histogram checksums included), for ANY reader count and
// batch size. Plus the lifecycle tests: clean shutdown, goroutine-leak
// accounting, and deterministic mid-run cancellation — all with logical
// synchronization only (the no-sleep lint test enforces that).

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"cdfpoison/internal/btree"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/rmi"
	"cdfpoison/internal/serve"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/workload"
	"cdfpoison/internal/xrand"
)

func fixture(t testing.TB, n int) keys.Set {
	t.Helper()
	ks, err := dataset.Uniform(xrand.New(11), n, int64(n)*40)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// factory describes one backend flavor for the table: manual-policy
// backends take the epoch-end explicit retrain, policy backends trigger
// organically (the churn-style shape).
type factory struct {
	build  func(keys.Set) (index.Backend, error)
	manual bool
}

// backendFactories enumerates every index.Backend implementation, plus the
// buffer-policy flavors of the two that have retrain policies.
func backendFactories() map[string]factory {
	return map[string]factory{
		"dynamic": {manual: true, build: func(ks keys.Set) (index.Backend, error) {
			return dynamic.New(ks, dynamic.ManualPolicy())
		}},
		"btree": {manual: true, build: func(ks keys.Set) (index.Backend, error) {
			return btree.Bulk(32, ks.Keys())
		}},
		"rmi-single": {manual: true, build: func(ks keys.Set) (index.Backend, error) {
			return rmi.NewSingle(ks)
		}},
		"shard-4": {manual: true, build: func(ks keys.Set) (index.Backend, error) {
			return shard.New(ks, 4, dynamic.ManualPolicy())
		}},
		"guarded-dynamic": {manual: true, build: func(ks keys.Set) (index.Backend, error) {
			b, err := dynamic.New(ks, dynamic.ManualPolicy())
			if err != nil {
				return nil, err
			}
			return defense.NewGuard(b, defense.GuardOptions{}), nil
		}},
		"dynamic-buffer": {build: func(ks keys.Set) (index.Backend, error) {
			return dynamic.New(ks, dynamic.BufferLimit(8))
		}},
		"shard-4-buffer": {build: func(ks keys.Set) (index.Backend, error) {
			return shard.New(ks, 4, dynamic.BufferLimit(8))
		}},
	}
}

// gapOracle is the tests' cheap deterministic poison oracle: repeatedly
// drop a key in the middle of the widest gap of the (simulated) content.
// It shares nothing with internal/core — the scenario's oracle is injected,
// so serve stays a substrate package.
func gapOracle(visible keys.Set, budget int) ([]int64, error) {
	cur := visible
	out := make([]int64, 0, budget)
	for i := 0; i < budget; i++ {
		var best keys.Gap
		for _, g := range cur.Gaps() {
			if g.Width() > best.Width() {
				best = g
			}
		}
		if best.Width() <= 0 {
			break
		}
		mid := best.Lo + (best.Hi-best.Lo)/2
		next, ok := cur.Insert(mid)
		if !ok {
			break
		}
		cur = next
		out = append(out, mid)
	}
	return out, nil
}

// TestConcurrentMatchesTickOracle is the equivalence suite: for every
// backend flavor × cost model × poison budget (plus workload-mix variants
// on the churn-style flavor), the concurrent scheduler must reproduce the
// tick oracle's per-epoch metrics exactly — reflect.DeepEqual over the
// full EpochMetrics slice, histogram checksums included.
func TestConcurrentMatchesTickOracle(t *testing.T) {
	costs := map[string]index.CostModel{
		"zero":   {},
		"fixed":  {Fixed: 30},
		"linear": {Fixed: 10, PerKey: 25, Unit: 100},
	}
	const n = 300
	base := serve.ScenarioOptions{
		Epochs:      3,
		OpsPerEpoch: 50,
		Workload:    workload.NewZipf(1.1, 85),
		Domain:      int64(n) * 40,
		Seed:        7,
		Oracle:      gapOracle,
	}
	for fname, f := range backendFactories() {
		for cname, cost := range costs {
			for _, budget := range []int{0, 5} {
				opts := base
				opts.Cost = cost
				opts.EpochBudget = budget
				opts.ManualRetrain = f.manual
				name := fname + "/" + cname + "/budget=" + string(rune('0'+budget))
				t.Run(name, func(t *testing.T) {
					assertSchedulerEquivalence(t, f, n, opts)
				})
			}
		}
	}
	// Workload-mix variants on the churn-style flavor.
	for _, mix := range []workload.Spec{workload.NewUniform(90), workload.NewHotspot(2, 80)} {
		opts := base
		opts.Cost = index.CostModel{Fixed: 20}
		opts.EpochBudget = 5
		opts.Workload = mix
		t.Run("dynamic-buffer/"+mix.String(), func(t *testing.T) {
			assertSchedulerEquivalence(t, backendFactories()["dynamic-buffer"], n, opts)
		})
	}
}

func assertSchedulerEquivalence(t *testing.T, f factory, n int, opts serve.ScenarioOptions) {
	t.Helper()
	initial := fixture(t, n)
	run := func(build func() ([]serve.EpochMetrics, error)) []serve.EpochMetrics {
		t.Helper()
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mk := func() index.Backend {
		b, err := f.build(initial)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	oracle := run(func() ([]serve.EpochMetrics, error) { return serve.RunTick(mk(), opts) })
	if len(oracle) != opts.Epochs {
		t.Fatalf("tick oracle produced %d epochs, want %d", len(oracle), opts.Epochs)
	}
	if opts.EpochBudget > 0 {
		inj := 0
		for _, m := range oracle {
			inj += m.Injected
		}
		if inj == 0 {
			t.Fatal("poisoned scenario injected nothing; the fixture lost its teeth")
		}
	}
	for _, po := range []serve.Options{
		{Readers: 1, BatchSize: 1},
		{Readers: 4, BatchSize: 8},
	} {
		conc := run(func() ([]serve.EpochMetrics, error) {
			return serve.RunConcurrent(context.Background(), mk(), opts, po)
		})
		if !reflect.DeepEqual(oracle, conc) {
			t.Errorf("readers=%d batch=%d diverged from tick oracle:\n tick: %+v\n conc: %+v",
				po.Readers, po.BatchSize, oracle, conc)
		}
	}
}

// TestConcurrentKnobInvariance: reader count and batch size are pure
// throughput knobs — sweeping them leaves every metric byte-identical.
func TestConcurrentKnobInvariance(t *testing.T) {
	initial := fixture(t, 300)
	opts := serve.ScenarioOptions{
		Epochs: 3, OpsPerEpoch: 60, EpochBudget: 4,
		Workload: workload.NewZipf(1.1, 85), Domain: 12_000, Seed: 9,
		Cost: index.CostModel{Fixed: 25}, Oracle: gapOracle,
	}
	var ref []serve.EpochMetrics
	for _, po := range []serve.Options{
		{}, // defaults: GOMAXPROCS readers
		{Readers: 1, BatchSize: 1},
		{Readers: 3, BatchSize: 7},
		{Readers: 8, BatchSize: 64},
	} {
		b, err := dynamic.New(initial, dynamic.BufferLimit(8))
		if err != nil {
			t.Fatal(err)
		}
		m, err := serve.RunConcurrent(context.Background(), b, opts, po)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = m
			continue
		}
		if !reflect.DeepEqual(ref, m) {
			t.Fatalf("readers=%d batch=%d changed the metrics", po.Readers, po.BatchSize)
		}
	}
}

// waitGoroutines spins (Gosched, never sleeps) until the runtime goroutine
// count drops back to the baseline or the bounded retry budget runs out.
func waitGoroutines(baseline int) int {
	now := runtime.NumGoroutine()
	for i := 0; i < 10_000 && now > baseline; i++ {
		runtime.Gosched()
		now = runtime.NumGoroutine()
	}
	return now
}

// TestPlaneCleanShutdown: Close drains and joins every plane goroutine —
// the plane's own counter reaches zero and the process goroutine count
// returns to its baseline (goleak-style before/after check).
func TestPlaneCleanShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := serve.NewPlane(serve.Options{Readers: 8})
	if got := p.Goroutines(); got != 9 { // 8 readers + 1 retrainer
		t.Fatalf("plane reports %d goroutines, want 9", got)
	}
	p.Close()
	if got := p.Goroutines(); got != 0 {
		t.Fatalf("plane reports %d goroutines after Close, want 0", got)
	}
	p.Close() // idempotent
	if now := waitGoroutines(baseline); now > baseline {
		t.Fatalf("goroutines leaked: %d before, %d after Close", baseline, now)
	}
}

// TestRunConcurrentCancellation: a context cancelled mid-run stops the
// scenario at the next deterministic checkpoint, returns the completed
// epochs with ctx's error, and leaks nothing. The cancel fires from inside
// the second epoch's oracle call — logical sync, no timing.
func TestRunConcurrentCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	initial := fixture(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	opts := serve.ScenarioOptions{
		Epochs: 5, OpsPerEpoch: 80, EpochBudget: 4,
		Workload: workload.NewZipf(1.1, 85), Domain: 12_000, Seed: 3,
		Cost: index.CostModel{Fixed: 25}, ManualRetrain: true,
		Oracle: func(ks keys.Set, budget int) ([]int64, error) {
			calls++
			if calls == 2 {
				cancel()
			}
			return gapOracle(ks, budget)
		},
	}
	b, err := dynamic.New(initial, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	m, err := serve.RunConcurrent(ctx, b, opts, serve.Options{Readers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(m) != 1 {
		t.Fatalf("completed epochs = %d, want exactly the first", len(m))
	}
	if now := waitGoroutines(baseline); now > baseline {
		t.Fatalf("goroutines leaked after cancellation: %d before, %d after", baseline, now)
	}

	// Already-cancelled context: nothing runs, nothing leaks.
	done, cancelled := context.WithCancel(context.Background())
	cancelled()
	m, err = serve.RunConcurrent(done, b, opts, serve.Options{Readers: 2})
	if !errors.Is(err, context.Canceled) || len(m) != 0 {
		t.Fatalf("pre-cancelled run returned (%d epochs, %v)", len(m), err)
	}
}

// TestScenarioOptionValidation: the runner rejects nonsense before
// touching the backend.
func TestScenarioOptionValidation(t *testing.T) {
	initial := fixture(t, 50)
	b, err := dynamic.New(initial, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	valid := serve.ScenarioOptions{
		Epochs: 1, OpsPerEpoch: 1, Workload: workload.NewUniform(90),
		Domain: 1000, Oracle: gapOracle,
	}
	for name, mut := range map[string]func(*serve.ScenarioOptions){
		"zero-epochs":           func(o *serve.ScenarioOptions) { o.Epochs = 0 },
		"zero-ops":              func(o *serve.ScenarioOptions) { o.OpsPerEpoch = 0 },
		"negative-budget":       func(o *serve.ScenarioOptions) { o.EpochBudget = -1 },
		"budget-without-oracle": func(o *serve.ScenarioOptions) { o.EpochBudget = 3; o.Oracle = nil },
		"bad-workload":          func(o *serve.ScenarioOptions) { o.Workload = workload.NewZipf(0, 90) },
		"bad-domain":            func(o *serve.ScenarioOptions) { o.Domain = 0 },
	} {
		o := valid
		mut(&o)
		if _, err := serve.RunTick(b, o); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
	if _, err := serve.RunTick(b, valid); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}
