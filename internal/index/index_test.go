package index_test

// Cross-backend conformance: every substrate behind index.Backend obeys the
// same observable contract, checked through the interface alone. This is
// the test that makes "swap any backend under any scenario" a guarantee
// rather than a hope: a new backend only has to join the factory table.

import (
	"testing"

	"cdfpoison/internal/alex"
	"cdfpoison/internal/btree"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/rmi"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/xrand"
)

// backendFactories enumerates every index.Backend implementation in the
// repository.
func backendFactories() map[string]func(keys.Set) (index.Backend, error) {
	return map[string]func(keys.Set) (index.Backend, error){
		"dynamic": func(ks keys.Set) (index.Backend, error) {
			return dynamic.New(ks, dynamic.ManualPolicy())
		},
		"btree": func(ks keys.Set) (index.Backend, error) {
			return btree.Bulk(32, ks.Keys())
		},
		"rmi-single": func(ks keys.Set) (index.Backend, error) {
			return rmi.NewSingle(ks)
		},
		"shard-4": func(ks keys.Set) (index.Backend, error) {
			return shard.New(ks, 4, dynamic.ManualPolicy())
		},
		"guarded-dynamic": func(ks keys.Set) (index.Backend, error) {
			b, err := dynamic.New(ks, dynamic.ManualPolicy())
			if err != nil {
				return nil, err
			}
			return defense.NewGuard(b, defense.GuardOptions{}), nil
		},
		// A guard running an explicit policy CHAIN over a sharded substrate:
		// exercises the composable-detector path through the full plane
		// contract. The chain is tuned so the conformance inserts (wide-gap
		// midpoints) always pass.
		"guarded-shard": func(ks keys.Set) (index.Backend, error) {
			b, err := shard.New(ks, 4, dynamic.ManualPolicy())
			if err != nil {
				return nil, err
			}
			return defense.NewGuard(b, defense.GuardOptions{Policies: []defense.Policy{
				defense.DupMassPolicy{Window: 2, Count: 3},
				defense.GapOutlierPolicy{Ratio: 32},
			}}), nil
		},
		"alex": func(ks keys.Set) (index.Backend, error) {
			return alex.New(ks, 32)
		},
		// The density guard over the balanced-split gapped array — the
		// cascade scenario's hardened victim, plane for plane.
		"guarded-alex": func(ks keys.Set) (index.Backend, error) {
			b, err := alex.NewBalanced(ks, 32)
			if err != nil {
				return nil, err
			}
			return defense.NewGuard(b, defense.GuardOptions{}), nil
		},
	}
}

func fixture(t *testing.T, n int) keys.Set {
	t.Helper()
	ks, err := dataset.Uniform(xrand.New(11), n, int64(n)*50)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestBackendConformance(t *testing.T) {
	initial := fixture(t, 500)
	queries := append(append([]int64(nil), initial.Keys()...), 1, 3, 5, 7, 1<<40)
	for name, build := range backendFactories() {
		t.Run(name, func(t *testing.T) {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			if b.Len() != initial.Len() {
				t.Fatalf("Len = %d, want %d", b.Len(), initial.Len())
			}
			if !b.Keys().Equal(initial) {
				t.Fatal("Keys() does not round-trip the initial set")
			}
			// Every stored key is found; probes are positive.
			for i := 0; i < initial.Len(); i++ {
				r := b.Lookup(initial.At(i))
				if !r.Found {
					t.Fatalf("stored key %d not found", initial.At(i))
				}
				if r.Probes < 1 {
					t.Fatalf("lookup of %d cost %d probes", initial.At(i), r.Probes)
				}
			}
			// ProbeSum is exactly the per-key Lookup sum (the reference
			// implementation in the index package).
			gotProbes, gotMiss := b.ProbeSum(queries)
			wantProbes, wantMiss := index.ProbeSum(b, queries)
			if gotProbes != wantProbes || gotMiss != wantMiss {
				t.Fatalf("ProbeSum = (%d, %d), reference = (%d, %d)",
					gotProbes, gotMiss, wantProbes, wantMiss)
			}
			// ProbeSum is partition-invariant: any split folds to the total.
			for _, cut := range []int{1, 7, len(queries) / 2, len(queries) - 1} {
				aProbes, aMiss := b.ProbeSum(queries[:cut])
				bProbes, bMiss := b.ProbeSum(queries[cut:])
				if aProbes+bProbes != gotProbes || aMiss+bMiss != gotMiss {
					t.Fatalf("ProbeSum not partition-invariant at cut %d", cut)
				}
			}
			// Duplicate inserts are rejected; a fresh interior key is
			// accepted, visible, and survives a retrain.
			if ok, _ := b.Insert(initial.At(0)); ok {
				t.Fatal("duplicate insert accepted")
			}
			fresh := freshKey(initial)
			if ok, _ := b.Insert(fresh); !ok {
				t.Fatalf("fresh key %d rejected", fresh)
			}
			if b.Len() != initial.Len()+1 {
				t.Fatalf("Len = %d after one accepted insert", b.Len())
			}
			if r := b.Lookup(fresh); !r.Found {
				t.Fatal("accepted key not found before retrain")
			}
			b.Retrain()
			if r := b.Lookup(fresh); !r.Found {
				t.Fatal("accepted key lost by retrain")
			}
			if st := b.Stats(); st.Keys != b.Len() {
				t.Fatalf("Stats().Keys = %d, Len = %d", st.Keys, b.Len())
			}
			if st := b.Stats(); st.Buffered != 0 {
				t.Fatalf("Stats().Buffered = %d after retrain", st.Buffered)
			}
		})
	}
}

// TestBackendPlanes pins the three-plane split: every backend's Snapshot()
// is probe-identical to its live read path at capture time, for stored and
// absent keys alike. This is the equivalence that lets the serving
// scenarios evaluate reads through snapshots without changing a byte.
func TestBackendPlanes(t *testing.T) {
	initial := fixture(t, 400)
	queries := append(append([]int64(nil), initial.Keys()...), 1, 3, 5, 7, 1<<40)
	for name, build := range backendFactories() {
		t.Run(name, func(t *testing.T) {
			// The planes are separately addressable...
			var b index.Backend
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			var _ index.Reader = b
			var _ index.Writer = b
			var _ index.Admin = b
			// ...and the read plane matches the live state exactly.
			checkSnapshot := func(when string) {
				t.Helper()
				snap := b.Snapshot()
				if snap.Len() != b.Len() {
					t.Fatalf("%s: snapshot Len %d != live %d", when, snap.Len(), b.Len())
				}
				if !snap.Keys().Equal(b.Keys()) {
					t.Fatalf("%s: snapshot content diverges from live content", when)
				}
				for _, k := range queries {
					if a, c := b.Lookup(k), snap.Lookup(k); a != c {
						t.Fatalf("%s: Lookup(%d) live %+v != snapshot %+v", when, k, a, c)
					}
				}
				lp, lm := b.ProbeSum(queries)
				sp, sm := snap.ProbeSum(queries)
				if lp != sp || lm != sm {
					t.Fatalf("%s: ProbeSum live (%d,%d) != snapshot (%d,%d)", when, lp, lm, sp, sm)
				}
			}
			checkSnapshot("fresh")
			b.Insert(freshKey(initial))
			checkSnapshot("after insert")
			b.Retrain()
			checkSnapshot("after retrain")
		})
	}
}

// TestSnapshotImmutability is the copy-on-retrain guarantee: a held
// Snapshot's every answer must survive arbitrary later mutation of the
// backend it came from — inserts, policy retrains, explicit retrains. This
// is what "lookups never observe a half-built model" means operationally:
// the read plane can keep serving a captured snapshot while the write and
// admin planes churn underneath it.
func TestSnapshotImmutability(t *testing.T) {
	initial := fixture(t, 400)
	queries := append(append([]int64(nil), initial.Keys()...), 1, 3, 5, 7, 1<<40)
	for name, build := range backendFactories() {
		t.Run(name, func(t *testing.T) {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			// Buffer a few keys first so the snapshot holds delta-plane
			// state too (the part a naive implementation would alias).
			inserted := 0
			for k := initial.Min() + 1; inserted < 8 && k < initial.Max(); k += 11 {
				if ok, _ := b.Insert(k); ok {
					inserted++
				}
			}
			snap := b.Snapshot()
			wantLen := snap.Len()
			wantKeys := snap.Keys().Clone()
			type answer struct {
				r index.LookupResult
				k int64
			}
			var want []answer
			for _, k := range queries {
				want = append(want, answer{r: snap.Lookup(k), k: k})
			}
			wantProbes, wantMiss := snap.ProbeSum(queries)

			// Mutate hard: a burst of inserts (bound to trip any policy),
			// then an explicit retrain, then more inserts.
			for k := initial.Min() + 2; k < initial.Max() && b.Len() < wantLen+60; k += 5 {
				b.Insert(k)
			}
			b.Retrain()
			b.Insert(freshKey(b.Keys()))

			if snap.Len() != wantLen {
				t.Fatalf("snapshot Len changed: %d -> %d", wantLen, snap.Len())
			}
			if !snap.Keys().Equal(wantKeys) {
				t.Fatal("snapshot content changed under mutation")
			}
			for _, w := range want {
				if got := snap.Lookup(w.k); got != w.r {
					t.Fatalf("snapshot Lookup(%d) changed: %+v -> %+v", w.k, w.r, got)
				}
			}
			if p, m := snap.ProbeSum(queries); p != wantProbes || m != wantMiss {
				t.Fatalf("snapshot ProbeSum changed: (%d,%d) -> (%d,%d)", wantProbes, wantMiss, p, m)
			}
		})
	}
}

// TestTriggerPredictorConservative pins the TriggerPredictor contract: a
// backend that answers RetrainPossible() == false must NOT retrain on the
// next Insert — false negatives would make the pipeline freeze the read
// plane at a post-rebuild state. (True is allowed to be wrong; false is a
// promise.) Policies that can trigger are exercised through their whole
// cycle, duplicates included.
func TestTriggerPredictorConservative(t *testing.T) {
	initial := fixture(t, 300)
	factories := backendFactories()
	factories["dynamic-buffer"] = func(ks keys.Set) (index.Backend, error) {
		return dynamic.New(ks, dynamic.BufferLimit(5))
	}
	factories["dynamic-everyk"] = func(ks keys.Set) (index.Backend, error) {
		return dynamic.New(ks, dynamic.EveryKInserts(7))
	}
	factories["shard-buffer"] = func(ks keys.Set) (index.Backend, error) {
		return shard.New(ks, 4, dynamic.BufferLimit(5))
	}
	factories["guarded-buffer"] = func(ks keys.Set) (index.Backend, error) {
		b, err := dynamic.New(ks, dynamic.BufferLimit(5))
		if err != nil {
			return nil, err
		}
		return defense.NewGuard(b, defense.GuardOptions{}), nil
	}
	for name, build := range factories {
		t.Run(name, func(t *testing.T) {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			tp, ok := b.(index.TriggerPredictor)
			if !ok {
				t.Fatal("backend does not implement TriggerPredictor")
			}
			rng := xrand.New(23)
			domain := 2 * (initial.Max() + 1)
			triggered := 0
			for i := 0; i < 400; i++ {
				possible := tp.RetrainPossible()
				_, retrained := b.Insert(rng.Int63n(domain))
				if retrained {
					triggered++
					if !possible {
						t.Fatalf("insert %d retrained after RetrainPossible() == false", i)
					}
				}
			}
			if kind := policyKindOf(name); kind != "" && triggered == 0 {
				t.Fatalf("%s backend never triggered in 400 inserts — the test exercised nothing", kind)
			}
		})
	}
}

// policyKindOf marks the factories whose policies are expected to actually
// fire during the predictor test.
func policyKindOf(name string) string {
	switch name {
	case "dynamic-buffer", "dynamic-everyk", "shard-buffer", "guarded-buffer":
		return name
	}
	return ""
}

// freshKey returns an interior key absent from the set: the midpoint of the
// first gap of width >= 3 (wide enough that no density guard flags it).
func freshKey(ks keys.Set) int64 {
	for i := 1; i < ks.Len(); i++ {
		if ks.At(i)-ks.At(i-1) >= 4 {
			return ks.At(i-1) + (ks.At(i)-ks.At(i-1))/2
		}
	}
	panic("fixture has no wide gap")
}

// TestBackendStalenessVisible: for the learned backends, an accepted but
// unmerged insert must raise ContentLoss above ModelLoss territory — the
// staleness signal the serving scenarios report — and a retrain must
// reconcile the two.
func TestBackendStalenessVisible(t *testing.T) {
	initial := fixture(t, 300)
	for _, name := range []string{"dynamic", "rmi-single", "shard-4"} {
		build := backendFactories()[name]
		t.Run(name, func(t *testing.T) {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			before := b.Stats()
			// Insert a burst of fresh keys into one region.
			inserted := 0
			for k := initial.Min() + 1; inserted < 40 && k < initial.Max(); k += 7 {
				if ok, _ := b.Insert(k); ok {
					inserted++
				}
			}
			if inserted == 0 {
				t.Fatal("no insert accepted")
			}
			mid := b.Stats()
			if mid.Buffered != inserted {
				t.Fatalf("Buffered = %d, inserted %d", mid.Buffered, inserted)
			}
			if mid.ContentLoss <= before.ContentLoss {
				t.Fatalf("ContentLoss %v did not rise above %v despite %d unmerged keys",
					mid.ContentLoss, before.ContentLoss, inserted)
			}
			b.Retrain()
			after := b.Stats()
			if after.Buffered != 0 {
				t.Fatalf("Buffered = %d after retrain", after.Buffered)
			}
			// Retrains is summed across shards for partitioned backends, so
			// one Retrain() call advances it by at least one.
			if after.Retrains <= before.Retrains {
				t.Fatalf("Retrains = %d did not advance from %d", after.Retrains, before.Retrains)
			}
		})
	}
}
