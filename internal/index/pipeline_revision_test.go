package index_test

// Tests of Pipeline.ReadRevision, the read-plane revision counter the
// concurrent serving plane (internal/serve) keys its snapshot captures off:
// a property test pinning the conservative contract — the revision may
// over-advance but never stays put across a visible read-plane change — and
// a direct test of the documented bump sites.

import (
	"testing"

	"cdfpoison/internal/index"
	"cdfpoison/internal/xrand"
)

// TestReadRevisionTracksReadPlane drives every backend behind every cost
// model with a deterministic op mix and asserts the contract callers rely
// on: whenever ReadRevision is unchanged between two observations, the read
// plane answers byte-identically.
func TestReadRevisionTracksReadPlane(t *testing.T) {
	costs := map[string]index.CostModel{
		"zero":   {},
		"fixed":  {Fixed: 7},
		"linear": {Fixed: 5, PerKey: 20, Unit: 100},
	}
	for name, build := range backendFactories() {
		for cname, cost := range costs {
			t.Run(name+"/"+cname, func(t *testing.T) {
				initial := fixture(t, 300)
				inner, err := build(initial)
				if err != nil {
					t.Fatal(err)
				}
				p := index.NewPipeline(inner, cost)
				queries := append(append([]int64(nil), initial.Keys()[:64]...), 1, 3, 1<<40)
				rng := xrand.New(99)
				domain := 2 * (initial.Max() + 1)

				lastRev := p.ReadRevision()
				lastProbes, lastMiss := p.ProbeSum(queries)
				observe := func(step int) {
					t.Helper()
					rev := p.ReadRevision()
					probes, miss := p.ProbeSum(queries)
					if rev < lastRev {
						t.Fatalf("step %d: revision ran backwards: %d -> %d", step, lastRev, rev)
					}
					if rev == lastRev && (probes != lastProbes || miss != lastMiss) {
						t.Fatalf("step %d: read plane changed (%d,%d) -> (%d,%d) with revision pinned at %d",
							step, lastProbes, lastMiss, probes, miss, rev)
					}
					lastRev, lastProbes, lastMiss = rev, probes, miss
				}
				for step := 0; step < 300; step++ {
					p.Tick(1)
					switch rng.Intn(12) {
					case 10:
						p.Retrain()
					case 11:
						p.Tick(rng.Intn(30))
					default:
						p.Insert(rng.Int63n(domain))
					}
					observe(step)
				}
			})
		}
	}
}

// TestReadRevisionBumpSites checks the documented bump sites directly on a
// buffer-policy dynamic index behind a costed pipeline.
func TestReadRevisionBumpSites(t *testing.T) {
	p, initial := pipeFixture(t, 4, index.CostModel{Fixed: 10})
	base := p.ReadRevision()

	// A rejected duplicate leaves the read plane — and the revision — alone.
	if acc, _ := p.Insert(initial.At(0)); acc {
		t.Fatal("duplicate insert unexpectedly accepted")
	}
	if got := p.ReadRevision(); got != base {
		t.Fatalf("rejected insert bumped revision: %d -> %d", base, got)
	}

	// Accepted inserts while live bump by exactly one; the insert that trips
	// the policy freezes the plane at the pre-insert state and must NOT bump.
	fresh := []int64{initial.Min() + 1, initial.Min() + 2, initial.Min() + 3, initial.Min() + 5}
	for i, k := range fresh {
		before := p.ReadRevision()
		acc, retrained := p.Insert(k)
		if !acc {
			t.Fatalf("fresh key %d rejected", k)
		}
		after := p.ReadRevision()
		if retrained {
			if !p.IsStale() {
				t.Fatalf("insert %d: trigger did not open a stale window", i)
			}
			if after != before {
				t.Fatalf("insert %d: triggering insert bumped revision %d -> %d", i, before, after)
			}
		} else if after != before+1 {
			t.Fatalf("insert %d: live accepted insert moved revision %d -> %d, want +1", i, before, after)
		}
	}
	if !p.IsStale() {
		t.Fatal("fixture did not reach a stale window; bufferK drifted?")
	}

	// While a rebuild is in flight, accepted inserts and coalesced retrains
	// mutate only the write plane: no bump.
	inFlight := p.ReadRevision()
	if acc, _ := p.Insert(initial.Max() + 100); !acc {
		t.Fatal("in-flight insert rejected")
	}
	p.Retrain() // coalesces behind the in-flight rebuild
	if got := p.ReadRevision(); got != inFlight {
		t.Fatalf("in-flight mutations bumped revision: %d -> %d", inFlight, got)
	}

	// Every publish bumps by one — including chained publishes of coalesced
	// rebuilds drained by a single large Tick.
	pubsBefore := p.ChurnStats().Publishes
	p.Tick(1000)
	pubs := p.ChurnStats().Publishes - pubsBefore
	if pubs == 0 {
		t.Fatal("tick published nothing")
	}
	if got, want := p.ReadRevision(), inFlight+uint64(pubs); got != want {
		t.Fatalf("after %d publishes revision is %d, want %d", pubs, got, want)
	}

	// A zero-cost explicit Retrain publishes instantly and must bump: the
	// refit changes probe counts even though the key content is unchanged.
	p2, _ := pipeFixture(t, 1<<20, index.CostModel{})
	r := p2.ReadRevision()
	p2.Retrain()
	if got := p2.ReadRevision(); got != r+1 {
		t.Fatalf("zero-cost explicit retrain moved revision %d -> %d, want +1", r, got)
	}
}
