package index

// The rebuild cost model of the background-retrain pipeline: a pure
// function from "how many keys does this rebuild cover" to "how many
// logical ticks does it take" — no wall clocks anywhere, so every scenario
// that prices rebuilds stays bit-reproducible (DESIGN.md §2, §7).

import (
	"fmt"
	"strconv"
	"strings"
)

// costLimit bounds every parsed cost parameter. It is generous (≈10¹²
// ticks) while keeping Ticks' int64 arithmetic safely away from overflow
// for any realistic key count.
const costLimit = int64(1) << 40

// DefaultCostUnit is the keys-per-tick denominator a linear cost spec gets
// when its unit field is omitted: one tick per thousand keys rebuilt.
const DefaultCostUnit = 1000

// CostModel prices one rebuild in logical ticks: Fixed flat ticks plus
// PerKey ticks for every Unit keys the rebuild covers. The zero value is
// the ZERO-COST model — rebuilds publish instantly, which makes a
// pipeline-wrapped backend byte-identical to the historical synchronous
// path (the golden equivalence the pipeline tests pin).
type CostModel struct {
	Fixed  int64 // flat ticks per rebuild
	PerKey int64 // ticks per Unit keys rebuilt
	Unit   int64 // keys per PerKey increment (DefaultCostUnit when 0 and PerKey > 0)
}

// Zero reports whether every rebuild costs zero ticks.
func (c CostModel) Zero() bool { return c.Fixed == 0 && c.PerKey == 0 }

// Ticks prices a rebuild covering n keys.
func (c CostModel) Ticks(n int) int64 {
	t := c.Fixed
	if c.PerKey > 0 {
		u := c.Unit
		if u < 1 {
			u = DefaultCostUnit
		}
		t += c.PerKey * (int64(n) / u)
	}
	return t
}

// Validate reports whether the model's parameters are in range.
func (c CostModel) Validate() error {
	for _, f := range []struct {
		name string
		v    int64
	}{{"fixed", c.Fixed}, {"per-key", c.PerKey}, {"unit", c.Unit}} {
		if f.v < 0 {
			return fmt.Errorf("index: negative %s cost %d", f.name, f.v)
		}
		if f.v > costLimit {
			return fmt.Errorf("index: %s cost %d exceeds limit %d", f.name, f.v, costLimit)
		}
	}
	if c.PerKey == 0 && c.Unit != 0 {
		return fmt.Errorf("index: cost unit %d without a per-key component", c.Unit)
	}
	return nil
}

// String renders the model in the syntax ParseCostModel accepts:
// "zero", "fixed:F", or "linear:F:P:U".
func (c CostModel) String() string {
	if c.Zero() {
		return "zero"
	}
	if c.PerKey == 0 {
		return fmt.Sprintf("fixed:%d", c.Fixed)
	}
	u := c.Unit
	if u < 1 {
		u = DefaultCostUnit
	}
	return fmt.Sprintf("linear:%d:%d:%d", c.Fixed, c.PerKey, u)
}

// ParseCostModel parses the rebuild-cost spec syntax of the churn scenario
// (`lispoison churn -cost …`), the pipeline sibling of the retrain-policy
// (dynamic.ParsePolicy) and workload (workload.ParseSpec) syntaxes:
//
//	zero                     rebuilds publish instantly (the synchronous golden path)
//	fixed:F                  every rebuild takes F ticks
//	linear:F:P[:U]           F flat ticks + P ticks per U keys rebuilt (U defaults to 1000)
//
// ParseCostModel is total: any input yields a valid CostModel or an error,
// never a panic (FuzzParseCostModel enforces this), and the result is
// normalized so CostModel.String round-trips through it.
func ParseCostModel(s string) (CostModel, error) {
	fields := strings.Split(s, ":")
	parse := func(raw, what string, dst *int64) error {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return fmt.Errorf("cost %q: bad %s %q", s, what, raw)
		}
		*dst = v
		return nil
	}
	var c CostModel
	switch fields[0] {
	case "zero":
		if len(fields) > 1 {
			return CostModel{}, fmt.Errorf("cost %q: zero takes no parameters", s)
		}
		return CostModel{}, nil
	case "fixed":
		if len(fields) != 2 {
			return CostModel{}, fmt.Errorf("cost %q: want fixed:F", s)
		}
		if err := parse(fields[1], "fixed ticks", &c.Fixed); err != nil {
			return CostModel{}, err
		}
	case "linear":
		if len(fields) < 3 || len(fields) > 4 {
			return CostModel{}, fmt.Errorf("cost %q: want linear:F:P[:U]", s)
		}
		if err := parse(fields[1], "fixed ticks", &c.Fixed); err != nil {
			return CostModel{}, err
		}
		if err := parse(fields[2], "per-key ticks", &c.PerKey); err != nil {
			return CostModel{}, err
		}
		if len(fields) == 4 {
			if err := parse(fields[3], "unit", &c.Unit); err != nil {
				return CostModel{}, err
			}
			if c.Unit < 1 {
				return CostModel{}, fmt.Errorf("cost %q: unit must be >= 1", s)
			}
		}
		if c.PerKey > 0 && c.Unit == 0 {
			c.Unit = DefaultCostUnit
		}
		if c.PerKey == 0 {
			// Normalize "linear with no slope" to the fixed form so String
			// round-trips.
			c.Unit = 0
		}
	default:
		return CostModel{}, fmt.Errorf("unknown cost model %q (want zero | fixed:F | linear:F:P[:U])", s)
	}
	if err := c.Validate(); err != nil {
		return CostModel{}, fmt.Errorf("cost %q: %w", s, err)
	}
	return c, nil
}
