package index_test

// Differential conformance: the gapped-array learned index and the
// model-free B-Tree are driven through IDENTICAL seeded workload streams
// and must give identical answers at every step — Lookup hit/miss per
// operation, Len and Keys at every epoch boundary. Probe counts are free to
// differ (that difference IS the paper's subject); membership is not. The
// B-Tree is the trusted reference: it has no model to poison and rebalances
// locally, so any divergence is an alex structural bug, caught at the exact
// operation that introduced it.

import (
	"testing"

	"cdfpoison/internal/alex"
	"cdfpoison/internal/btree"
	"cdfpoison/internal/index"
	"cdfpoison/internal/workload"
)

func TestDifferentialAlexVsBTree(t *testing.T) {
	initial := fixture(t, 600)
	specs := map[string]workload.Spec{
		"zipf-read-heavy":  workload.NewZipf(1.1, 80),
		"uniform-balanced": workload.NewUniform(50),
		"hotspot-writes":   workload.NewHotspot(10, 20),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			var a index.Backend
			a, err := alex.New(initial, 24)
			if err != nil {
				t.Fatal(err)
			}
			b, err := btree.Bulk(32, initial.Keys())
			if err != nil {
				t.Fatal(err)
			}
			// Two generators, same seed: byte-identical op streams.
			domain := 2 * (initial.Max() + 1)
			genA, err := workload.NewGenerator(spec, initial, domain, 42)
			if err != nil {
				t.Fatal(err)
			}
			genB, err := workload.NewGenerator(spec, initial, domain, 42)
			if err != nil {
				t.Fatal(err)
			}
			const epochs, opsPerEpoch = 6, 400
			for e := 0; e < epochs; e++ {
				for op := 0; op < opsPerEpoch; op++ {
					oa, ob := genA.Next(), genB.Next()
					if oa != ob {
						t.Fatalf("epoch %d op %d: generators diverged (%+v vs %+v)", e, op, oa, ob)
					}
					if oa.Read {
						ra, rb := a.Lookup(oa.Key), b.Lookup(oa.Key)
						if ra.Found != rb.Found {
							t.Fatalf("epoch %d op %d: Lookup(%d) alex found=%v, btree found=%v",
								e, op, oa.Key, ra.Found, rb.Found)
						}
						continue
					}
					accA, _ := a.Insert(oa.Key)
					accB, _ := b.Insert(ob.Key)
					if accA != accB {
						t.Fatalf("epoch %d op %d: Insert(%d) alex accepted=%v, btree accepted=%v",
							e, op, oa.Key, accA, accB)
					}
				}
				// Epoch boundary: content must agree exactly. Mid-stream
				// retrains on alex (a structural rebuild) must not change it.
				if a.Len() != b.Len() {
					t.Fatalf("epoch %d: Len alex=%d btree=%d", e, a.Len(), b.Len())
				}
				if !a.Keys().Equal(b.Keys()) {
					t.Fatalf("epoch %d: key sets diverged", e)
				}
				if e == epochs/2 {
					a.Retrain()
					b.Retrain()
				}
			}
		})
	}
}
