package index

import (
	"testing"
)

func TestCostModelTicks(t *testing.T) {
	for _, tc := range []struct {
		c    CostModel
		n    int
		want int64
	}{
		{CostModel{}, 1_000_000, 0},
		{CostModel{Fixed: 7}, 0, 7},
		{CostModel{Fixed: 7}, 1_000_000, 7},
		{CostModel{PerKey: 2, Unit: 100}, 250, 4},
		{CostModel{Fixed: 5, PerKey: 2, Unit: 100}, 250, 9},
		{CostModel{PerKey: 3}, 2_500, 6}, // Unit defaults to 1000
		{CostModel{PerKey: 3}, 999, 0},
	} {
		if got := tc.c.Ticks(tc.n); got != tc.want {
			t.Errorf("%v.Ticks(%d) = %d, want %d", tc.c, tc.n, got, tc.want)
		}
	}
}

func TestParseCostModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CostModel
	}{
		{"zero", CostModel{}},
		{"fixed:0", CostModel{}},
		{"fixed:40", CostModel{Fixed: 40}},
		{"linear:5:2", CostModel{Fixed: 5, PerKey: 2, Unit: 1000}},
		{"linear:5:2:250", CostModel{Fixed: 5, PerKey: 2, Unit: 250}},
		{"linear:5:0", CostModel{Fixed: 5}},
		{"linear:0:0", CostModel{}},
	} {
		got, err := ParseCostModel(tc.in)
		if err != nil {
			t.Errorf("ParseCostModel(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCostModel(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{
		"", "nope", "fixed", "fixed:", "fixed:x", "fixed:-1", "fixed:1:2",
		"linear", "linear:1", "linear:1:2:3:4", "linear:1:2:0", "linear:1:2:-5",
		"zero:0", "fixed:99999999999999999999", "linear:1:1099511627777",
	} {
		if _, err := ParseCostModel(bad); err == nil {
			t.Errorf("ParseCostModel(%q) accepted", bad)
		}
	}
}

// TestCostModelRoundTrip: every parsed model re-parses from its String to
// the identical value — the property the fuzz harness checks over
// arbitrary inputs and the CLI's -cost flag relies on for help text.
func TestCostModelRoundTrip(t *testing.T) {
	for _, in := range []string{
		"zero", "fixed:0", "fixed:1", "fixed:1099511627776",
		"linear:0:1", "linear:3:2:7", "linear:9:0", "linear:0:0",
	} {
		c, err := ParseCostModel(in)
		if err != nil {
			t.Fatalf("ParseCostModel(%q): %v", in, err)
		}
		back, err := ParseCostModel(c.String())
		if err != nil {
			t.Fatalf("re-parse of %q via %q: %v", in, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip of %q: %+v != %+v", in, back, c)
		}
	}
}

// FuzzParseCostModel: the churn scenario's cost-spec parser must be total —
// any input yields a valid CostModel or an error, never a panic — and every
// accepted spec must validate and round-trip through String. The checked-in
// corpus under testdata/fuzz replays in CI.
func FuzzParseCostModel(f *testing.F) {
	for _, seed := range []string{
		"zero", "fixed:40", "fixed:0", "linear:5:2", "linear:5:2:250",
		"", ":", "zero:", "fixed:", "fixed:-1", "fixed:+40", "fixed:1e3",
		"linear:1:2:3:4", "linear::2", "linear:9223372036854775807:1",
		"linear:1:1:0", "fixed:0x10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCostModel(s)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("ParseCostModel(%q) accepted an invalid model %+v: %v", s, c, verr)
		}
		back, err := ParseCostModel(c.String())
		if err != nil {
			t.Fatalf("round trip of %q via %q failed: %v", s, c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip of %q: %+v != %+v", s, back, c)
		}
		if c.Ticks(0) < 0 || c.Ticks(1<<20) < 0 {
			t.Fatalf("ParseCostModel(%q): negative ticks from %+v", s, c)
		}
	})
}
