package index_test

// Behavior tests of the background-retrain pipeline (index.Pipeline): the
// zero-cost golden equivalence, the stale window, coalescing under churn,
// and the tick accounting. These live in the external test package so they
// can drive the pipeline over the real substrates.

import (
	"context"
	"testing"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/xrand"
)

// driveOps exercises a backend with a deterministic mix of inserts
// (duplicates included), explicit retrains, and clock ticks; tick is a
// no-op hook for bare backends.
func driveOps(b index.Writer, admin index.Admin, tick func(int), rng *xrand.RNG, domain int64, n int) {
	for i := 0; i < n; i++ {
		tick(1)
		switch rng.Intn(10) {
		case 9:
			admin.Retrain()
		default:
			b.Insert(rng.Int63n(domain))
		}
	}
}

// TestPipelineZeroCostTransparent is the zero-cost golden test: with the
// zero CostModel, a pipeline-wrapped backend answers every read, stat, and
// content query byte-identically to the bare backend under the identical
// operation sequence — the equivalence that keeps the rewritten serving
// scenario's CSV fingerprints unchanged.
func TestPipelineZeroCostTransparent(t *testing.T) {
	for name, build := range backendFactories() {
		t.Run(name, func(t *testing.T) {
			initial := fixture(t, 400)
			bare, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			inner, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			piped := index.NewPipeline(inner, index.CostModel{})

			queries := append(append([]int64(nil), initial.Keys()...), 1, 3, 1<<40)
			check := func(step int) {
				t.Helper()
				if piped.IsStale() {
					t.Fatalf("step %d: zero-cost pipeline reports a stale window", step)
				}
				for _, k := range queries {
					if a, b := bare.Lookup(k), piped.Lookup(k); a != b {
						t.Fatalf("step %d: Lookup(%d) bare %+v != piped %+v", step, k, a, b)
					}
				}
				ap, am := bare.ProbeSum(queries)
				bp, bm := piped.ProbeSum(queries)
				if ap != bp || am != bm {
					t.Fatalf("step %d: ProbeSum bare (%d,%d) != piped (%d,%d)", step, ap, am, bp, bm)
				}
				if as, bs := bare.Stats(), piped.Stats(); as != bs {
					t.Fatalf("step %d: Stats bare %+v != piped %+v", step, as, bs)
				}
				if !bare.Keys().Equal(piped.Keys()) {
					t.Fatalf("step %d: content diverged", step)
				}
				sp, sm := piped.Snapshot().ProbeSum(queries)
				if sp != ap || sm != am {
					t.Fatalf("step %d: snapshot ProbeSum (%d,%d) != bare (%d,%d)", step, sp, sm, ap, am)
				}
			}

			rngA, rngB := xrand.New(17), xrand.New(17)
			domain := 2 * (initial.Max() + 1)
			for step := 0; step < 8; step++ {
				driveOps(bare, bare, func(int) {}, rngA, domain, 25)
				driveOps(piped, piped, piped.Tick, rngB, domain, 25)
				check(step)
			}
			st := piped.ChurnStats()
			if st.StaleTicks != 0 || st.MaxLatencyTicks != 0 || st.Triggers != st.Publishes {
				t.Fatalf("zero-cost pipeline accrued stale accounting: %+v", st)
			}
		})
	}
}

// pipeFixture builds a buffer-policy dynamic index behind a pipeline with
// the given cost model.
func pipeFixture(t *testing.T, bufferK int, cost index.CostModel) (*index.Pipeline, keys.Set) {
	t.Helper()
	initial := fixture(t, 300)
	inner, err := dynamic.New(initial, dynamic.BufferLimit(bufferK))
	if err != nil {
		t.Fatal(err)
	}
	return index.NewPipeline(inner, cost), initial
}

// TestPipelineStaleWindow: a policy-triggered rebuild freezes the read
// plane at the pre-trigger state for exactly cost ticks; the write plane
// advances eagerly throughout.
func TestPipelineStaleWindow(t *testing.T) {
	p, initial := pipeFixture(t, 4, index.CostModel{Fixed: 10})
	fresh := []int64{initial.Min() + 1, initial.Min() + 2, initial.Min() + 3, initial.Min() + 5}
	for i, k := range fresh {
		if p.IsStale() {
			t.Fatalf("stale before insert %d", i)
		}
		acc, ret := p.Insert(k)
		if !acc {
			t.Fatalf("fresh key %d rejected", k)
		}
		if want := i == len(fresh)-1; ret != want {
			t.Fatalf("insert %d: retrained = %v, want %v", i, ret, want)
		}
	}
	if !p.IsStale() {
		t.Fatal("no stale window after the policy trigger")
	}
	// The triggering key is part of the rebuild being published, so the
	// read plane must NOT see it yet; earlier buffered keys (captured in
	// the pre-trigger snapshot) must still be served.
	last := fresh[len(fresh)-1]
	if p.Lookup(last).Found {
		t.Fatal("read plane sees the triggering key during the rebuild")
	}
	if !p.Lookup(fresh[0]).Found {
		t.Fatal("read plane lost a pre-trigger buffered key")
	}
	if !p.Unwrap().Lookup(last).Found {
		t.Fatal("write plane lost the triggering key")
	}
	// A write landing during the window is invisible until publish.
	during := initial.Min() + 7
	if acc, _ := p.Insert(during); !acc {
		t.Fatal("in-window insert rejected")
	}
	if p.Lookup(during).Found {
		t.Fatal("read plane sees an in-window write")
	}
	p.Tick(9)
	if !p.IsStale() {
		t.Fatal("window closed one tick early")
	}
	p.Tick(1)
	if p.IsStale() {
		t.Fatal("window still open after cost ticks")
	}
	for _, k := range append(fresh, during) {
		if !p.Lookup(k).Found {
			t.Fatalf("key %d invisible after publish", k)
		}
	}
	st := p.ChurnStats()
	if st.Triggers != 1 || st.Publishes != 1 || st.Coalesced != 0 {
		t.Fatalf("counts: %+v", st)
	}
	if st.StaleTicks != 10 || st.LatencyTicks != 10 || st.MaxLatencyTicks != 10 || st.RebuildTicks != 10 {
		t.Fatalf("tick accounting: %+v", st)
	}
}

// TestPipelineCoalescing: retrains triggered while a rebuild is in flight
// collapse into ONE chained follow-up; readers advance one version per
// publish and latency exceeds the raw rebuild cost — the churn attacker's
// objective function, pinned.
func TestPipelineCoalescing(t *testing.T) {
	p, initial := pipeFixture(t, 100, index.CostModel{Fixed: 10})
	a, b := initial.Min()+1, initial.Min()+3

	p.Insert(a)
	p.Retrain() // trigger 1 at tick 0: pre-snapshot excludes nothing, result merges a
	if !p.IsStale() {
		t.Fatal("no flight after explicit retrain")
	}
	p.Tick(3)
	p.Insert(b)
	p.Retrain() // coalesces at tick 3 (merges b eagerly)
	p.Tick(2)
	p.Retrain() // coalesces again at tick 5 — same queued rebuild
	st := p.ChurnStats()
	if st.Triggers != 3 || st.Coalesced != 2 || st.Publishes != 0 {
		t.Fatalf("mid-flight counts: %+v", st)
	}
	// Mid-flight version check: a sits in the pre-rebuild snapshot's delta
	// buffer (visible, unmerged); b arrived after the snapshot and is
	// invisible to readers even though the write plane holds it.
	if r := p.Lookup(a); !r.Found || !r.InBuffer {
		t.Fatalf("pre-rebuild view of a: %+v (want buffered hit)", r)
	}
	if p.Lookup(b).Found {
		t.Fatal("read plane sees an in-flight write")
	}

	p.Tick(5) // tick 10: rebuild 1 publishes, chained rebuild starts
	if !p.IsStale() {
		t.Fatal("chained rebuild did not keep the window open")
	}
	// Readers advanced exactly one version: a is now MERGED (rebuild 1's
	// result), b — merged eagerly by the coalesced trigger on the write
	// plane — remains invisible until the chained rebuild publishes.
	if r := p.Lookup(a); !r.Found || r.InBuffer {
		t.Fatalf("post-publish view of a: %+v (want merged hit)", r)
	}
	if p.Lookup(b).Found {
		t.Fatal("reader skipped ahead to the coalesced rebuild's result")
	}

	p.Tick(10) // tick 20: chained rebuild publishes
	if p.IsStale() {
		t.Fatal("window open after both publishes")
	}
	if !p.Lookup(b).Found {
		t.Fatal("coalesced rebuild's result never published")
	}
	st = p.ChurnStats()
	if st.Publishes != 2 {
		t.Fatalf("publishes: %+v", st)
	}
	// Latencies: rebuild 1 took 10 ticks; the chained rebuild's trigger
	// fired at tick 3 and published at tick 20 — 17 ticks, the queueing
	// delay the attacker maximizes.
	if st.LatencyTicks != 27 || st.MaxLatencyTicks != 17 {
		t.Fatalf("latency accounting: %+v", st)
	}
	if st.StaleTicks != 20 || st.RebuildTicks != 20 {
		t.Fatalf("window accounting: %+v", st)
	}
}

// TestPipelineParallelRetrainEquivalence: an explicit Retrain through the
// pooled rebuild path produces a backend byte-identical to the sequential
// one — the §2 determinism contract on the pipeline's rebuild fan-out.
func TestPipelineParallelRetrainEquivalence(t *testing.T) {
	initial := fixture(t, 600)
	build := func() *index.Pipeline {
		s, err := shard.New(initial, 4, dynamic.ManualPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return index.NewPipeline(s, index.CostModel{Fixed: 3})
	}
	seqP := build()
	parP := build().WithPool(context.Background(), engine.New(4))

	rngA, rngB := xrand.New(5), xrand.New(5)
	domain := 2 * (initial.Max() + 1)
	for round := 0; round < 3; round++ {
		driveOps(seqP, seqP, seqP.Tick, rngA, domain, 40)
		driveOps(parP, parP, parP.Tick, rngB, domain, 40)
		queries := initial.Keys()
		ap, am := seqP.ProbeSum(queries)
		bp, bm := parP.ProbeSum(queries)
		if ap != bp || am != bm {
			t.Fatalf("round %d: sequential (%d,%d) != pooled (%d,%d)", round, ap, am, bp, bm)
		}
		if as, bs := seqP.Stats(), parP.Stats(); as != bs {
			t.Fatalf("round %d: stats diverged: %+v vs %+v", round, as, bs)
		}
		if sa, sb := seqP.ChurnStats(), parP.ChurnStats(); sa != sb {
			t.Fatalf("round %d: churn stats diverged: %+v vs %+v", round, sa, sb)
		}
	}
}
