package index

// The sorted-batch probe kernel contract (DESIGN.md §12).
//
// Every scenario in the harness evaluates ProbeSum over the legit/eval key
// batch against both the victim and the clean twin, every epoch. The per-key
// reference (ProbeSum in index.go) re-runs model prediction, envelope
// computation, and routing from scratch for each key. When the batch is
// SORTED, a backend can instead resolve all ranks in one merged forward pass
// over its own sorted storage — a gallop cursor that only ever moves right —
// and replay each key's binary-search probe count arithmetically from the
// known rank, because every comparison outcome during a search over a sorted
// array is a pure function of the key's lower-bound position and membership.
//
// The hard invariant is BIT-IDENTITY: ProbeSumSorted must return exactly the
// (probes, notFound) the per-key reference returns on the same batch. Probe
// count is the paper's semantic metric; only wall-clock may change. The
// cross-backend differential suite (batch_test.go) and FuzzBatchProbeSum pin
// this for every backend, snapshot, and wrapper.
//
// Sortedness is a PRECONDITION, not a check: callers pass a non-decreasing
// batch (duplicates allowed) and kernels are free to produce garbage
// otherwise. Scenario callers sort once per epoch into a reusable scratch
// slice (internal/core's probeEval) so the steady state allocates nothing.

import (
	"sort"
	"sync"
)

// BatchReader is the optional fast path a PointReader may implement: batch
// probe evaluation over a SORTED (non-decreasing, duplicates allowed) query
// slice, bit-identical to the per-key reference ProbeSum on the same batch.
// Implementations must not retain or mutate the slice.
type BatchReader interface {
	ProbeSumSorted(sorted []int64) (probes int64, notFound int)
}

// ProbeSumSorted evaluates a sorted query batch against r, dispatching to
// the backend's native batch kernel when it implements BatchReader and
// falling back to the per-key reference otherwise. The precondition and the
// bit-identity contract are those of BatchReader.
func ProbeSumSorted(r PointReader, sorted []int64) (probes int64, notFound int) {
	if br, ok := r.(BatchReader); ok {
		return br.ProbeSumSorted(sorted)
	}
	return ProbeSum(r, sorted)
}

// GallopLower returns the smallest i in [from, len(a)) with a[i] >= k,
// assuming a is sorted ascending and a[j] < k for all j < from. It is the
// merged-pass cursor primitive shared by the batch kernels: for a sorted
// query batch, successive lower-bound positions are non-decreasing, so each
// call gallops forward from the previous answer — exponential probes then a
// binary search over the last gallop span — giving O(m log(n/m)) total work
// for an m-key batch against an n-key array instead of m full binary
// searches. These gallop probes are bookkeeping, NOT counted lookup probes;
// kernels reconstruct the reference probe count arithmetically from the
// returned position.
// SearchDepths tabulates the probe count of the canonical windowed binary
// search (mid = (lo+hi)/2, three-way compare) as a pure function of the
// target's rank within the window. For a window of size s:
//
//   - Hit[t] is the number of probes until mid == t, for a key stored at
//     window-relative rank t — the loop's depth+1 at the node t occupies in
//     the implicit search tree;
//   - Gap[g] is the number of probes until the window empties, for a key
//     whose lower-bound rank falls in gap g (between ranks g-1 and g) — the
//     depth of the g-th leaf. Ranks outside the window clamp to the
//     leftmost (0) or rightmost (s) gap, whose descent they replay exactly.
//
// This is what makes the batch kernels O(1) per key instead of O(log n):
// once a merged gallop pass has resolved a key's rank, its probe count is a
// table read — no mid-sequence walk, no data-dependent branches.
type SearchDepths struct {
	Hit []int32 // len s: probes to find rank t
	Gap []int32 // len s+1: probes to exhaust on gap g
}

var (
	depthMu    sync.RWMutex
	depthCache = map[int]*SearchDepths{}
)

// ProbeDepths returns the (process-wide, lazily built) depth tables for a
// search window of size s ≥ 1. Tables depend only on s, so they are shared
// across backends, views, and goroutines; the cache retains every size ever
// requested — sizes come from error envelopes and delta-buffer fills, a
// bounded set per run — so steady-state callers never allocate.
func ProbeDepths(s int) *SearchDepths {
	depthMu.RLock()
	t := depthCache[s]
	depthMu.RUnlock()
	if t != nil {
		return t
	}
	t = &SearchDepths{Hit: make([]int32, s), Gap: make([]int32, s+1)}
	type frame struct{ lo, hi, depth int32 }
	stack := make([]frame, 1, 64)
	stack[0] = frame{0, int32(s) - 1, 0}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.lo > f.hi {
			t.Gap[f.lo] = f.depth
			continue
		}
		mid := (f.lo + f.hi) >> 1
		t.Hit[mid] = f.depth + 1
		stack = append(stack,
			frame{f.lo, mid - 1, f.depth + 1},
			frame{mid + 1, f.hi, f.depth + 1})
	}
	depthMu.Lock()
	if prior := depthCache[s]; prior != nil {
		t = prior
	} else {
		depthCache[s] = t
	}
	depthMu.Unlock()
	return t
}

func GallopLower(a []int64, k int64, from int) int {
	n := len(a)
	if from >= n || a[from] >= k {
		return from
	}
	// Invariant: a[from+step/2] < k (checked), hunting for the first bound
	// with a[from+step] >= k.
	step := 1
	for from+step < n && a[from+step] < k {
		step <<= 1
	}
	lo := from + step>>1 + 1 // first untested index
	hi := from + step        // a[hi] >= k, or hi >= n
	if hi > n {
		hi = n
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return a[lo+i] >= k })
}
