// Package index defines the backend contract every index substrate in this
// repository serves through: probe-counted lookups, policy-driven inserts,
// explicit retrains, and a uniform stats surface. The attacks and sweeps
// above it (core.OnlinePoisonAttack, core.ServeAttack, the backend
// comparison sweep in internal/bench, the defense wrappers) are written
// against Backend alone, so any substrate — the updatable learned index
// (internal/dynamic), the B-Tree baseline (internal/btree), the single-model
// RMI path (internal/rmi), the range-partitioned sharded index
// (internal/shard), or a defense wrapper (internal/defense) — can be swapped
// under any scenario without touching the scenario.
//
// The package is a leaf: it depends only on internal/keys, so backends in
// any substrate package can import it without cycles, and internal/core can
// stay independent of the substrates it attacks (see DESIGN.md §1,
// dependency rules).
//
// Contract notes:
//
//   - Lookup and ProbeSum are pure reads: no memoization, no mutation, safe
//     to call concurrently with each other (but not with Insert/Retrain).
//     The probe count is the implementation-independent lookup-cost metric
//     every comparison in this repository uses.
//   - Insert reports (accepted, retrained): accepted is false for
//     duplicates (learned backends additionally reject negative keys, which
//     fall outside the paper's [0, m) key universe); retrained is true when
//     the call itself triggered a maintenance retrain (always false for
//     structures that rebalance incrementally, like the B-Tree).
//   - Retrain is the explicit maintenance hook. Model-free backends treat
//     it as a no-op; learned backends merge pending writes and refit.
//   - Everything is deterministic: identical call sequences produce
//     identical backends, which the scenario equivalence tests rely on.
package index

import "cdfpoison/internal/keys"

// LookupResult reports a probe-counted point query against a Backend.
type LookupResult struct {
	Found    bool
	InBuffer bool // served from a delta buffer / staged area, not the base
	Probes   int  // key comparisons performed
	Window   int  // guaranteed model search-window width (0 when model-free)
}

// Stats is the uniform backend summary the scenarios report on.
type Stats struct {
	Keys     int // total stored keys
	Buffered int // keys waiting in a delta buffer / staged area
	Retrains int // completed retrains (0 for structures that never retrain)
	// ModelLoss is the current model's in-sample MSE on the base it was
	// trained on; 0 for model-free backends.
	ModelLoss float64
	// ContentLoss evaluates the CURRENT model against the CURRENT full
	// content (base plus any buffered keys), so model staleness is visible
	// before a retrain absorbs it; 0 for model-free backends.
	ContentLoss float64
	// Window is the guaranteed search-window width of the base model
	// (maximum across shards for partitioned backends); 0 when model-free.
	Window int
}

// Backend is the index contract the scenarios drive. All implementations
// are single-writer: Insert and Retrain must not run concurrently with
// anything, while Lookup/ProbeSum/Len/Keys/Stats are read-only and may be
// fanned out across workers between mutations.
type Backend interface {
	// Lookup finds k, counting key comparisons.
	Lookup(k int64) LookupResult
	// Insert offers k; see the package comment for the (accepted,
	// retrained) semantics.
	Insert(k int64) (accepted, retrained bool)
	// Retrain runs the backend's maintenance step (no-op if model-free).
	Retrain()
	// Len returns the total number of stored keys.
	Len() int
	// Keys materializes the full current content as a sorted key set —
	// the "visible content" an insertion adversary computes poison against.
	Keys() keys.Set
	// Stats summarizes the backend state.
	Stats() Stats
	// ProbeSum runs a lookup for every query key and returns the exact
	// total probe count plus how many keys were not found. Integer sums
	// are partition-invariant, so callers may chunk queryKeys across
	// workers and fold partial sums in any grouping — the property the
	// serving scenarios' parallel evaluation leans on.
	ProbeSum(queryKeys []int64) (probes int64, notFound int)
}

// ProbeSum is the reference batch evaluation: the exact per-key Lookup sum.
// Backends embed or mirror it; tests use it to pin backend ProbeSum
// implementations to their Lookup.
func ProbeSum(b Backend, queryKeys []int64) (probes int64, notFound int) {
	for _, k := range queryKeys {
		r := b.Lookup(k)
		probes += int64(r.Probes)
		if !r.Found {
			notFound++
		}
	}
	return probes, notFound
}
