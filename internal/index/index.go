// Package index defines the contracts every index substrate in this
// repository serves through, split into three planes:
//
//   - Reader — the READ plane: hands out an immutable, probe-counted
//     Snapshot of the content. Lookups against a Snapshot never observe a
//     half-built model, because a Snapshot is frozen at capture time —
//     mutating or retraining the backend afterwards must not change any
//     answer an already-held Snapshot gives (the snapshot-immutability
//     conformance test in this package pins exactly that).
//   - Writer — the WRITE plane: inserts into the backend's delta area,
//     reporting (accepted, retrained) so callers see both duplicate
//     rejection and policy-triggered maintenance.
//   - Admin — the MAINTENANCE plane: explicit Retrain and the uniform
//     Stats surface.
//
// Backend composes the three planes plus the direct read conveniences
// (Lookup/ProbeSum/Len/Keys against the CURRENT state), so the attacks and
// sweeps above it (core.OnlinePoisonAttack, core.ServeAttack,
// core.ChurnAttack, the backend comparison sweep in internal/bench, the
// defense wrappers) are written against interfaces alone and any substrate
// — the updatable learned index (internal/dynamic), the B-Tree baseline
// (internal/btree), the single-model RMI path (internal/rmi), the
// range-partitioned sharded index (internal/shard), or a defense wrapper
// (internal/defense) — can be swapped under any scenario without touching
// the scenario.
//
// On top of the planes, this package provides the deterministic
// background-retrain pipeline (pipeline.go): a wrapper that decouples WHEN
// a rebuild's result becomes visible to the read plane from WHEN the write
// plane triggered it, on a logical tick clock — the substrate of the
// retrain-churn attack scenario (see DESIGN.md §7).
//
// The package is a near-leaf: it depends only on internal/keys and the
// parallel substrate internal/engine, so backends in any substrate package
// can import it without cycles, and internal/core can stay independent of
// the substrates it attacks (see DESIGN.md §1, dependency rules).
//
// Contract notes:
//
//   - Lookup and ProbeSum are pure reads: no memoization, no mutation, safe
//     to call concurrently with each other (but not with Insert/Retrain).
//     The probe count is the implementation-independent lookup-cost metric
//     every comparison in this repository uses.
//   - Snapshot() is cheap for the learned backends (copy-on-write delta
//     buffers; the immutable base set and model are shared) and O(n) for
//     the B-Tree (a structural clone — the tree mutates on every write, so
//     nothing smaller can be frozen).
//   - Insert reports (accepted, retrained): accepted is false for
//     duplicates (learned backends additionally reject negative keys, which
//     fall outside the paper's [0, m) key universe); retrained is true when
//     the call itself triggered a maintenance retrain (always false for
//     structures that rebalance incrementally, like the B-Tree).
//   - Retrain is the explicit maintenance hook. Model-free backends treat
//     it as a no-op; learned backends merge pending writes and refit.
//   - Everything is deterministic: identical call sequences produce
//     identical backends, which the scenario equivalence tests rely on.
package index

import "cdfpoison/internal/keys"

// LookupResult reports a probe-counted point query against a Backend.
type LookupResult struct {
	Found    bool
	InBuffer bool // served from a delta buffer / staged area, not the base
	Probes   int  // key comparisons performed
	Window   int  // guaranteed model search-window width (0 when model-free)
}

// Stats is the uniform backend summary the scenarios report on.
type Stats struct {
	Keys     int // total stored keys
	Buffered int // keys waiting in a delta buffer / staged area
	Retrains int // completed retrains (0 for structures that never retrain)
	// ModelLoss is the current model's in-sample MSE on the base it was
	// trained on; 0 for model-free backends.
	ModelLoss float64
	// ContentLoss evaluates the CURRENT model against the CURRENT full
	// content (base plus any buffered keys), so model staleness is visible
	// before a retrain absorbs it; 0 for model-free backends.
	ContentLoss float64
	// Window is the guaranteed search-window width of the base model
	// (maximum across shards for partitioned backends); 0 when model-free.
	Window int
	// Flagged counts inserts a defense wrapper (internal/defense) rejected
	// as suspected poison. It is CUMULATIVE over the backend's lifetime —
	// Retrain does not reset it, so sweeps can read the defense effect
	// straight off Stats without unwrapping. Always 0 for bare backends.
	Flagged int
}

// PointReader is the minimal probe-counted read surface. Both Backend
// (reads against the current state) and Snapshot (reads against a frozen
// state) satisfy it, so batch helpers and tests are written once.
type PointReader interface {
	// Lookup finds k, counting key comparisons.
	Lookup(k int64) LookupResult
	// ProbeSum runs a lookup for every query key and returns the exact
	// total probe count plus how many keys were not found. Integer sums
	// are partition-invariant, so callers may chunk queryKeys across
	// workers and fold partial sums in any grouping — the property the
	// serving scenarios' parallel evaluation leans on.
	ProbeSum(queryKeys []int64) (probes int64, notFound int)
	// Len returns the total number of stored keys.
	Len() int
	// Keys materializes the full content as a sorted key set — the
	// "visible content" an insertion adversary computes poison against.
	Keys() keys.Set
}

// Snapshot is an immutable point-in-time view of a backend's content: the
// read plane's unit of publication. A Snapshot's answers are frozen at
// capture: later Insert/Retrain calls on the backend it came from must not
// change them. Probe counts through a fresh Snapshot are identical to
// probe counts through the live backend at the moment of capture — the
// equivalence that makes snapshot-served reads byte-compatible with the
// historical direct-read paths (and that the zero-cost pipeline golden
// tests pin).
type Snapshot interface {
	PointReader
}

// Reader is the read plane: it publishes the Snapshot lookups should be
// served from. For a bare backend that is always the current state; behind
// a retrain Pipeline it is the most recently PUBLISHED state, which lags
// the write plane while a rebuild is in flight.
type Reader interface {
	Snapshot() Snapshot
}

// Writer is the write plane; see the package comment for the (accepted,
// retrained) semantics.
type Writer interface {
	Insert(k int64) (accepted, retrained bool)
}

// Admin is the maintenance plane: explicit retrains and the uniform stats
// surface.
type Admin interface {
	// Retrain runs the backend's maintenance step (no-op if model-free).
	Retrain()
	// Stats summarizes the backend state.
	Stats() Stats
}

// Backend is the full index contract the scenarios drive: the three planes
// plus direct reads against the current state. All implementations are
// single-writer: Insert and Retrain must not run concurrently with
// anything, while the read plane (Lookup/ProbeSum/Len/Keys/Stats/Snapshot)
// is read-only and may be fanned out across workers between mutations; a
// captured Snapshot additionally stays valid ACROSS mutations.
type Backend interface {
	Reader
	Writer
	Admin
	PointReader
}

// ProbeSum is the reference batch evaluation: the exact per-key Lookup sum.
// Backends and snapshots embed or mirror it; tests use it to pin ProbeSum
// implementations to their Lookup.
func ProbeSum(r PointReader, queryKeys []int64) (probes int64, notFound int) {
	for _, k := range queryKeys {
		res := r.Lookup(k)
		probes += int64(res.Probes)
		if !res.Found {
			notFound++
		}
	}
	return probes, notFound
}
