package index

// The deterministic background-retrain pipeline: the piece that decouples
// WHEN a rebuild is triggered (write plane) from WHEN its result becomes
// visible (read plane), on a logical tick clock — no wall clocks, no RNG,
// no goroutine races, so the workers=1 == workers=NumCPU byte-identity
// contract survives intact (DESIGN.md §7).
//
// Model. A serving system rebuilds its index in the background: a retrain
// triggered at tick T keeps SERVING the pre-rebuild snapshot until the
// rebuild completes at tick T+cost, and only then publishes. "Algorithmic
// Complexity Attacks on Dynamic Learned Indexes" (PAPERS.md) shows this
// window is itself an attack surface: an adversary who maximizes retrain
// frequency × rebuild cost keeps the read plane pinned to ever-staler
// snapshots. The Pipeline simulates exactly that, deterministically: the
// underlying backend's state advances eagerly (merges run at trigger
// time, so the computation is a pure function of the call sequence), but
// the READ plane lags behind it by the cost model's ticks.
//
// Semantics, precisely:
//
//   - While no rebuild is in flight, reads pass through to the live
//     backend — delta-buffer inserts are immediately visible, exactly the
//     historical synchronous behavior.
//   - A retrain triggered at tick T (explicit Retrain, or a policy retrain
//     reported by Insert) freezes the read plane at the PRE-rebuild
//     snapshot and schedules publication at T+cost(rebuild size).
//   - Retrains triggered while a rebuild is in flight COALESCE: the
//     backend still merges eagerly, but the read plane stays pinned, and
//     ONE follow-up rebuild starts when the in-flight one publishes —
//     publishing first the in-flight rebuild's own result, so readers
//     advance one version per completed rebuild, never skipping straight
//     to the freshest state. This chaining is the churn attacker's lever:
//     keep the rebuild worker saturated and the stale window never closes.
//   - Tick(n) advances the clock; publications happen when the clock
//     passes their ready tick.
//
// With the zero CostModel every rebuild publishes instantly: no snapshots
// are captured, reads always pass through, and a pipeline-wrapped backend
// is byte-identical (probe-for-probe, stat-for-stat) to the bare backend —
// the golden equivalence TestPipelineZeroCostTransparent pins and the
// serving scenario's unchanged CSV fingerprints depend on.

import (
	"context"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
)

var _ Backend = (*Pipeline)(nil)

// ParallelRetrainer is the optional backend face the pipeline uses to fan
// a full-index rebuild across a worker pool (shard.Index implements it:
// per-shard rebuilds are independent and deterministic, so any worker
// count produces identical bytes).
type ParallelRetrainer interface {
	RetrainParallel(ctx context.Context, pool *engine.Pool) error
}

// RebuildSizer is the optional backend face that reports how many keys the
// most recent retrain actually rebuilt. Partitioned backends rebuild one
// shard at a time on the policy path, so pricing every rebuild at the full
// index size would overstate cost N-fold; backends that don't implement it
// are priced at Len().
type RebuildSizer interface {
	LastRebuildSize() int
}

// TriggerPredictor is the optional backend face that reports whether the
// NEXT Insert call could trigger a policy retrain. Implementations must be
// CONSERVATIVE — false is a promise, true merely a possibility
// (TestTriggerPredictorConservative pins the no-false-negative contract
// for every backend). The pipeline uses it to capture a pre-insert
// snapshot only when a trigger is actually reachable: a Manual-policy or
// model-free backend answers false forever and pays nothing per write,
// and a BufferThreshold backend pays only on the inserts at its
// threshold's edge.
type TriggerPredictor interface {
	RetrainPossible() bool
}

// ChurnStats is the pipeline's cumulative accounting, the raw material of
// the churn scenario's per-epoch report.
type ChurnStats struct {
	Now       int64 // current logical tick
	Triggers  int   // retrain requests observed (explicit + policy)
	Coalesced int   // triggers that landed while a rebuild was in flight
	Publishes int   // snapshots published (zero-cost publishes included)
	// StaleTicks counts ticks spent with a rebuild in flight — the window
	// during which reads are served from a frozen pre-rebuild snapshot.
	StaleTicks int64
	// LatencyTicks sums trigger→publish latency over publishes;
	// MaxLatencyTicks is the worst single publish. Latency exceeds the raw
	// rebuild cost exactly when triggers coalesce behind a busy worker.
	LatencyTicks    int64
	MaxLatencyTicks int64
	// RebuildTicks sums the cost model's price of every rebuild started.
	RebuildTicks int64
}

// MeanLatency returns the mean trigger→publish latency in ticks.
func (s ChurnStats) MeanLatency() float64 {
	if s.Publishes == 0 {
		return 0
	}
	return float64(s.LatencyTicks) / float64(s.Publishes)
}

// Pipeline wraps a Backend with the deterministic background-retrain
// schedule. It is itself a Backend: the write and admin planes forward to
// the wrapped backend (triggering the schedule), while the read plane
// serves the published snapshot. Like every backend it is single-writer;
// reads may be fanned out between mutations, and a Snapshot() survives
// them.
type Pipeline struct {
	backend Backend
	cost    CostModel

	// pool, when non-nil, fans explicit Retrain calls across workers for
	// backends implementing ParallelRetrainer. ctx bounds those rebuilds.
	pool *engine.Pool
	ctx  context.Context

	now int64

	// published is non-nil exactly while a rebuild is in flight: the
	// frozen snapshot the read plane serves. result is what the in-flight
	// rebuild will hand to readers if another rebuild chains behind it.
	published Snapshot
	result    Snapshot
	readyAt   int64 // tick the in-flight rebuild publishes
	// triggeredAt is the tick the in-flight rebuild's trigger fired (for a
	// chained rebuild, the tick of its first coalesced trigger): the
	// latency clock. staleMark is the tick up to which StaleTicks has been
	// accounted — stale time accrues as the clock advances, so a rebuild
	// that never finishes still shows its open window in the stats.
	triggeredAt int64
	staleMark   int64
	// queuedAt is the tick of the FIRST coalesced trigger waiting behind
	// the in-flight rebuild (-1 when none).
	queuedAt int64

	// rev counts read-plane revisions: it advances whenever the answers the
	// read plane gives MAY have changed (see ReadRevision).
	rev uint64

	stats ChurnStats
}

// NewPipeline wraps a backend with the given rebuild cost model.
func NewPipeline(b Backend, cost CostModel) *Pipeline {
	return &Pipeline{backend: b, cost: cost, queuedAt: -1, ctx: context.Background()}
}

// WithPool makes explicit Retrain calls use the backend's parallel rebuild
// path (ParallelRetrainer) when available. Determinism is unaffected: the
// parallel rebuild produces bytes identical to the sequential one.
func (p *Pipeline) WithPool(ctx context.Context, pool *engine.Pool) *Pipeline {
	if ctx != nil {
		p.ctx = ctx
	}
	p.pool = pool
	return p
}

// Unwrap returns the wrapped backend (the live, write-plane state).
func (p *Pipeline) Unwrap() Backend { return p.backend }

// Now returns the current logical tick.
func (p *Pipeline) Now() int64 { return p.now }

// ChurnStats returns the cumulative pipeline accounting.
func (p *Pipeline) ChurnStats() ChurnStats {
	s := p.stats
	s.Now = p.now
	return s
}

// IsStale reports whether a rebuild is in flight — i.e. whether reads are
// currently served from a frozen pre-rebuild snapshot.
func (p *Pipeline) IsStale() bool { return p.published != nil }

// ReadRevision returns the read-plane revision: a counter that advances
// whenever the answers Snapshot/Lookup/ProbeSum give MAY differ from the
// previous call. A serving layer that materializes versions from Snapshot()
// (internal/serve, DESIGN.md §8) re-captures only when the revision moved,
// so a long stale window — where the read plane is pinned to one frozen
// snapshot while writes accumulate behind an in-flight rebuild — costs zero
// captures. The counter is CONSERVATIVE the safe way around: it may advance
// when the content happens to be identical (a no-op explicit Retrain), but
// it never stays put across a visible change. Concretely it advances on
//
//   - every publish (the read plane steps one version forward),
//   - an accepted Insert while no rebuild is in flight (the delta write is
//     immediately visible), and
//   - a Retrain that completes instantly (zero or free cost model), since
//     the refit changes probe counts even though the key content is equal.
//
// It does NOT advance while a rebuild is in flight: accepted inserts and
// coalesced retrains mutate only the live write plane, and the frozen
// published snapshot keeps answering identically until the next publish.
func (p *Pipeline) ReadRevision() uint64 { return p.rev }

// Tick advances the logical clock by n ticks (n >= 0), publishing every
// rebuild whose cost has elapsed and starting any coalesced follow-up.
func (p *Pipeline) Tick(n int) {
	if n < 0 {
		panic("index: pipeline clock cannot run backwards")
	}
	to := p.now + int64(n)
	for p.published != nil && p.readyAt <= to {
		p.publish()
	}
	if p.published != nil && to > p.staleMark {
		p.stats.StaleTicks += to - p.staleMark
		p.staleMark = to
	}
	p.now = to
}

// publish completes the in-flight rebuild at its ready tick and, when
// triggers coalesced behind it, chains the follow-up rebuild.
func (p *Pipeline) publish() {
	done := p.readyAt
	p.rev++
	p.stats.Publishes++
	if done > p.staleMark {
		p.stats.StaleTicks += done - p.staleMark
	}
	p.staleMark = done
	lat := done - p.triggeredAt
	p.stats.LatencyTicks += lat
	if lat > p.stats.MaxLatencyTicks {
		p.stats.MaxLatencyTicks = lat
	}
	if p.queuedAt < 0 {
		// Nothing waiting: the read plane snaps forward to the live state.
		p.published = nil
		p.result = nil
		return
	}
	// Chain the coalesced rebuild: readers advance to the finished
	// rebuild's result; the follow-up covers the live state as of now, its
	// latency clock started at the first coalesced trigger, and the stale
	// window continues from this publish.
	p.published = p.result
	p.triggeredAt = p.queuedAt
	p.queuedAt = -1
	p.result = p.backend.Snapshot()
	d := p.cost.Ticks(p.rebuildSize())
	p.stats.RebuildTicks += d
	p.readyAt = done + d
	if d <= 0 {
		p.publish()
	}
}

// rebuildSize is the key count the cost model prices for the most recent
// rebuild.
func (p *Pipeline) rebuildSize() int {
	if rs, ok := p.backend.(RebuildSizer); ok {
		return rs.LastRebuildSize()
	}
	return p.backend.Len()
}

// trigger records a retrain that just ran on the backend. pre is the read
// state captured immediately before it (nil when the cost model is zero —
// no window to serve it in).
func (p *Pipeline) trigger(pre Snapshot) {
	p.stats.Triggers++
	if p.cost.Zero() {
		p.stats.Publishes++
		return
	}
	if p.published != nil {
		p.stats.Coalesced++
		if p.queuedAt < 0 {
			p.queuedAt = p.now
		}
		return
	}
	d := p.cost.Ticks(p.rebuildSize())
	p.stats.RebuildTicks += d
	if d <= 0 {
		// This rebuild is free at the current size: publish instantly.
		p.stats.Publishes++
		return
	}
	p.published = pre
	p.result = p.backend.Snapshot()
	p.triggeredAt = p.now
	p.staleMark = p.now
	p.readyAt = p.now + d
}

// Insert forwards to the write plane. When the backend reports a policy
// retrain, the read plane freezes at the pre-insert snapshot until the
// rebuild's cost elapses. With the zero cost model this is a pure
// pass-through.
func (p *Pipeline) Insert(k int64) (accepted, retrained bool) {
	if p.cost.Zero() {
		accepted, retrained = p.backend.Insert(k)
		if retrained {
			p.trigger(nil)
		}
		if accepted || retrained {
			p.rev++
		}
		return accepted, retrained
	}
	var pre Snapshot
	if p.published == nil && p.retrainPossible() {
		// Capture the pre-insert view in case this insert trips the policy:
		// O(1) for the learned backends (copy-on-write buffers), and
		// skipped entirely when the backend promises no trigger is
		// reachable (TriggerPredictor).
		pre = p.backend.Snapshot()
	}
	accepted, retrained = p.backend.Insert(k)
	if retrained {
		if pre == nil && p.published == nil {
			// A backend broke the TriggerPredictor contract (retrained
			// after promising it could not). Degrade gracefully: serve the
			// post-rebuild state for the window rather than crash — the
			// conformance tests keep real backends off this path.
			pre = p.backend.Snapshot()
		}
		p.trigger(pre)
	}
	if (accepted || retrained) && p.published == nil {
		p.rev++
	}
	return accepted, retrained
}

// retrainPossible consults the backend's TriggerPredictor; backends
// without one are assumed always able to trigger.
func (p *Pipeline) retrainPossible() bool {
	if tp, ok := p.backend.(TriggerPredictor); ok {
		return tp.RetrainPossible()
	}
	return true
}

// RetrainPossible forwards the wrapped backend's prediction, so nested
// pipelines (and scenarios inspecting the pipeline as a Backend) see it.
func (p *Pipeline) RetrainPossible() bool { return p.retrainPossible() }

// Retrain runs the backend's maintenance step and schedules its
// publication. With a pool configured and a ParallelRetrainer backend the
// rebuild fans across workers (byte-identical results).
func (p *Pipeline) Retrain() {
	var pre Snapshot
	if !p.cost.Zero() && p.published == nil {
		pre = p.backend.Snapshot()
	}
	if pr, ok := p.backend.(ParallelRetrainer); ok && p.pool != nil && !p.pool.Sequential() {
		if err := pr.RetrainParallel(p.ctx, p.pool); err != nil {
			// Cancellation mid-rebuild: fall back to the sequential path so
			// the backend is never left half-retrained (the caller's context
			// error surfaces at its own next check).
			p.backend.Retrain()
		}
	} else {
		p.backend.Retrain()
	}
	p.trigger(pre)
	if p.published == nil {
		p.rev++
	}
}

// Snapshot returns the read plane's current view: the frozen pre-rebuild
// snapshot while a rebuild is in flight, the live state otherwise.
func (p *Pipeline) Snapshot() Snapshot {
	if p.published != nil {
		return p.published
	}
	return p.backend.Snapshot()
}

// Lookup serves from the read plane (stale during a rebuild).
func (p *Pipeline) Lookup(k int64) LookupResult {
	if p.published != nil {
		return p.published.Lookup(k)
	}
	return p.backend.Lookup(k)
}

// ProbeSum serves the batch from the read plane (stale during a rebuild).
func (p *Pipeline) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	if p.published != nil {
		return p.published.ProbeSum(queryKeys)
	}
	return p.backend.ProbeSum(queryKeys)
}

// ProbeSumSorted serves the sorted batch from the read plane (stale during
// a rebuild), dispatching to whichever plane is current via the BatchReader
// contract — the published snapshot's kernel while a rebuild is in flight,
// the live backend's otherwise (DESIGN.md §12).
func (p *Pipeline) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	if p.published != nil {
		return ProbeSumSorted(p.published, sorted)
	}
	return ProbeSumSorted(p.backend, sorted)
}

// Len reports the LIVE key count (write-plane truth: accepted inserts are
// counted immediately, whatever the read plane currently serves).
func (p *Pipeline) Len() int { return p.backend.Len() }

// Keys materializes the LIVE content — the visible state an insertion
// adversary with write access computes poison against.
func (p *Pipeline) Keys() keys.Set { return p.backend.Keys() }

// Stats reports the LIVE backend summary (admin-plane truth; the pipeline's
// own accounting is ChurnStats).
func (p *Pipeline) Stats() Stats { return p.backend.Stats() }
