package index_test

// Differential conformance for the sorted-batch probe kernel (DESIGN.md
// §12): for every backend, snapshot, wrapper, and pipeline state, and for
// random and adversarial sorted batches (duplicates, absent keys, universe
// extremes), ProbeSumSorted must be BIT-IDENTICAL to the per-key reference
// index.ProbeSum on the same batch. FuzzBatchProbeSum extends the same
// oracle to fuzzer-chosen batches and insert streams; its corpus is checked
// in under testdata/fuzz and replayed by CI's fuzz step.

import (
	"encoding/binary"
	"sort"
	"testing"

	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// sortedBatches builds the adversarial batch table for one content set:
// every batch is sorted (the kernel's precondition), mixing stored keys,
// absent keys, duplicate runs, and universe extremes.
func sortedBatches(initial keys.Set) map[string][]int64 {
	stored := append([]int64(nil), initial.Keys()...)
	mixed := append(append([]int64(nil), stored...), 0, 1, 3, 5, 7, 1<<40, initial.Max()+1)
	sort.Slice(mixed, func(i, j int) bool { return mixed[i] < mixed[j] })
	dups := make([]int64, 0, 3*len(stored))
	for _, k := range stored {
		dups = append(dups, k, k, k)
	}
	absent := []int64{-9, -1, initial.Min() - 1, initial.Max() + 1, 1 << 40, 1 << 41}
	return map[string][]int64{
		"stored":   stored,
		"mixed":    mixed,
		"dups":     dups,
		"absent":   absent,
		"empty":    nil,
		"single":   {initial.At(initial.Len() / 2)},
		"dup-miss": {5, 5, 5, 5},
	}
}

// checkBatchKernel pins one reader's batch kernel to the per-key reference
// over every batch in the table.
func checkBatchKernel(t *testing.T, when string, r index.PointReader, batches map[string][]int64) {
	t.Helper()
	if _, ok := r.(index.BatchReader); !ok {
		t.Fatalf("%s: reader %T does not implement index.BatchReader", when, r)
	}
	for name, batch := range batches {
		gotP, gotNF := index.ProbeSumSorted(r, batch)
		wantP, wantNF := index.ProbeSum(r, batch)
		if gotP != wantP || gotNF != wantNF {
			t.Fatalf("%s/%s: ProbeSumSorted = (%d, %d), reference = (%d, %d)",
				when, name, gotP, gotNF, wantP, wantNF)
		}
	}
}

// TestBatchProbeSumMatchesReference is the cross-backend differential
// suite: every factory backend, its snapshots, and its pipeline wrappers
// (zero-cost pass-through and frozen mid-rebuild) across fresh, buffered,
// and retrained states.
func TestBatchProbeSumMatchesReference(t *testing.T) {
	initial := fixture(t, 500)
	batches := sortedBatches(initial)
	for name, build := range backendFactories() {
		t.Run(name, func(t *testing.T) {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			checkBatchKernel(t, "fresh", b, batches)
			checkBatchKernel(t, "fresh-snapshot", b.Snapshot(), batches)

			// Buffered state: delta buffers / staged areas are non-empty.
			inserted := 0
			for k := initial.Min() + 1; inserted < 16 && k < initial.Max(); k += 11 {
				if ok, _ := b.Insert(k); ok {
					inserted++
				}
			}
			checkBatchKernel(t, "buffered", b, batches)
			checkBatchKernel(t, "buffered-snapshot", b.Snapshot(), batches)

			b.Retrain()
			checkBatchKernel(t, "retrained", b, batches)
			checkBatchKernel(t, "retrained-snapshot", b.Snapshot(), batches)
		})
	}
}

// TestBatchProbeSumPipeline pins the pipeline forwarding: the zero-cost
// pipeline is a pass-through, and a pipeline frozen mid-rebuild serves the
// batch kernel from the published snapshot — both bit-identical to their
// own per-key reference.
func TestBatchProbeSumPipeline(t *testing.T) {
	initial := fixture(t, 400)
	batches := sortedBatches(initial)
	for name, build := range backendFactories() {
		t.Run(name, func(t *testing.T) {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			zero := index.NewPipeline(b, index.CostModel{})
			checkBatchKernel(t, "zero-cost", zero, batches)

			b2, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			pipe := index.NewPipeline(b2, index.CostModel{Fixed: 1 << 30})
			pipe.Retrain() // freeze the read plane at the pre-rebuild snapshot
			if !pipe.IsStale() {
				t.Fatal("pipeline not stale after costed retrain")
			}
			// Mutate the live backend underneath the frozen read plane.
			for k := initial.Min() + 2; k < initial.Min()+200; k += 13 {
				pipe.Insert(k)
			}
			checkBatchKernel(t, "stale", pipe, batches)
			checkBatchKernel(t, "stale-snapshot", pipe.Snapshot(), batches)
		})
	}
}

// FuzzBatchProbeSum fuzzes the same oracle: the fuzzer chooses the content
// seed, an insert stream, and a raw query batch; the batch is sorted and
// evaluated through every backend's kernel against the per-key reference.
func FuzzBatchProbeSum(f *testing.F) {
	f.Add(uint64(11), []byte{})
	f.Add(uint64(7), []byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Add(uint64(42), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		n := 80 + int(seed%120)
		rng := xrand.New(1 + seed%(1<<32))
		uniq := map[int64]bool{}
		ks := make([]int64, 0, n)
		for len(ks) < n {
			k := rng.Int63n(int64(n) * 40)
			if !uniq[k] {
				uniq[k] = true
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		initial := keys.FromSorted(ks)

		// First half of the raw bytes drive inserts, second half the batch.
		var inserts, batch []int64
		for i := 0; i+8 <= len(raw); i += 8 {
			v := int64(binary.LittleEndian.Uint64(raw[i : i+8]))
			if (i/8)%2 == 0 {
				inserts = append(inserts, v)
			} else {
				batch = append(batch, v)
			}
		}
		// Always include some stored keys so the found path is exercised.
		batch = append(batch, ks[0], ks[len(ks)/2], ks[len(ks)-1])
		sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })

		for name, build := range backendFactories() {
			b, err := build(initial)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range inserts {
				b.Insert(k)
			}
			gotP, gotNF := index.ProbeSumSorted(b, batch)
			wantP, wantNF := index.ProbeSum(b, batch)
			if gotP != wantP || gotNF != wantNF {
				t.Fatalf("%s: ProbeSumSorted = (%d, %d), reference = (%d, %d)",
					name, gotP, gotNF, wantP, wantNF)
			}
			sp, snf := index.ProbeSumSorted(b.Snapshot(), batch)
			if sp != wantP || snf != wantNF {
				t.Fatalf("%s snapshot: ProbeSumSorted = (%d, %d), reference = (%d, %d)",
					name, sp, snf, wantP, wantNF)
			}
		}
	})
}
