package nn

import (
	"errors"
	"math"
	"testing"

	"cdfpoison/internal/xrand"
)

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
	if _, err := Train([]float64{1}, []float64{1, 2}, Config{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = float64(i) * 10
		y[i] = 3*x[i] + 7
	}
	m, err := Train(x, y, Config{Hidden: 8, Epochs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Relative RMSE under 2% of the output range.
	rng := y[len(y)-1] - y[0]
	if rmse := math.Sqrt(m.MSE(x, y)); rmse > 0.02*rng {
		t.Fatalf("linear fit rmse %v too large (range %v)", rmse, rng)
	}
}

func TestLearnsSmoothCDF(t *testing.T) {
	// A log-normal-like CDF: the exact first-stage task in the RMI.
	rng := xrand.New(2)
	n := 2000
	keysf := make([]float64, n)
	cur := 0.0
	for i := range keysf {
		cur += math.Exp(rng.NormFloat64() * 1.5)
		keysf[i] = cur
	}
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = float64(i)
	}
	m, err := Train(keysf, pos, Config{Hidden: 16, Epochs: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rmse := math.Sqrt(m.MSE(keysf, pos))
	if rmse > 0.08*float64(n) {
		t.Fatalf("CDF fit rmse %v too large for n=%d", rmse, n)
	}
}

func TestTrainingImprovesOverInit(t *testing.T) {
	rng := xrand.New(4)
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 100
		y[i] = math.Sin(x[i]/20)*50 + x[i]
	}
	short, err := Train(x, y, Config{Hidden: 12, Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(x, y, Config{Hidden: 12, Epochs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if long.MSE(x, y) >= short.MSE(x, y) {
		t.Fatalf("200 epochs (%v) not better than 1 epoch (%v)", long.MSE(x, y), short.MSE(x, y))
	}
}

func TestDeterministicTraining(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	a, _ := Train(x, y, Config{Seed: 9, Epochs: 50})
	b, _ := Train(x, y, Config{Seed: 9, Epochs: 50})
	for _, xi := range x {
		if a.Predict(xi) != b.Predict(xi) {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestConstantTarget(t *testing.T) {
	// Degenerate y range: the normalizer must not divide by zero.
	x := []float64{1, 2, 3}
	y := []float64{5, 5, 5}
	m, err := Train(x, y, Config{Epochs: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, xi := range x {
		if math.Abs(m.Predict(xi)-5) > 1 {
			t.Fatalf("constant fit predicts %v", m.Predict(xi))
		}
	}
}

func TestSingleSample(t *testing.T) {
	m, err := Train([]float64{3}, []float64{7}, Config{Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.Predict(3)) {
		t.Fatal("NaN prediction")
	}
}

func TestParamCount(t *testing.T) {
	m, err := Train([]float64{1, 2}, []float64{1, 2}, Config{Hidden: 10, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.ParamCount() != 31 || m.Hidden() != 10 {
		t.Fatalf("params %d hidden %d", m.ParamCount(), m.Hidden())
	}
}

func TestMSEEmpty(t *testing.T) {
	m, _ := Train([]float64{1, 2}, []float64{1, 2}, Config{Epochs: 1})
	if m.MSE(nil, nil) != 0 {
		t.Fatal("empty MSE not zero")
	}
}
