package nn

import (
	"bytes"
	"testing"
)

// FuzzReadBinary: arbitrary bytes either fail to parse or yield a network
// whose serialization is a fixed point — write(read(write(m))) must equal
// write(m) byte for byte. Comparing serialized bytes (not predictions)
// keeps the check exact even for NaN/Inf parameters smuggled in by the
// fuzzer, since float bit patterns pass through Float64bits unchanged.
func FuzzReadBinary(f *testing.F) {
	seed := func(hidden int) []byte {
		x := []float64{0, 100, 200, 300, 400, 500, 600, 700}
		y := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		m, err := Train(x, y, Config{Hidden: hidden, Epochs: 4})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(4))
	f.Add(seed(16))
	f.Add([]byte("CDFMLP01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var b1 bytes.Buffer
		if err := m.WriteBinary(&b1); err != nil {
			t.Fatalf("WriteBinary after successful read: %v", err)
		}
		m2, err := ReadBinary(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		var b2 bytes.Buffer
		if err := m2.WriteBinary(&b2); err != nil {
			t.Fatalf("second WriteBinary: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("serialization is not a fixed point across a round-trip")
		}
	})
}

// FuzzTrainRoundTrip trains a tiny network on fuzz-derived data and checks
// the serialized copy predicts identically everywhere it is probed.
func FuzzTrainRoundTrip(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40}, uint8(4))
	f.Add([]byte{1, 1, 1}, uint8(1))
	f.Fuzz(func(t *testing.T, deltas []byte, hiddenByte uint8) {
		if len(deltas) == 0 || len(deltas) > 256 {
			return
		}
		hidden := int(hiddenByte%8) + 1
		var x, y []float64
		cur := 0.0
		for i, d := range deltas {
			cur += float64(d) + 1
			x = append(x, cur)
			y = append(y, float64(i+1))
		}
		m, err := Train(x, y, Config{Hidden: hidden, Epochs: 2})
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		m2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		for _, k := range x {
			if got, want := m2.Predict(k), m.Predict(k); got != want {
				t.Fatalf("Predict(%v) diverged after round-trip: %v != %v", k, got, want)
			}
		}
	})
}
