package nn

import (
	"bytes"
	"strings"
	"testing"
)

func TestMLPBinaryRoundTrip(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i) * 3
		y[i] = float64(i)*2 + 5
	}
	orig, err := Train(x, y, Config{Hidden: 12, Epochs: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hidden() != orig.Hidden() || got.ParamCount() != orig.ParamCount() {
		t.Fatal("shape mismatch")
	}
	for _, xi := range x {
		if got.Predict(xi) != orig.Predict(xi) {
			t.Fatalf("prediction diverges at %v", xi)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOT_A_NET___")); err == nil {
		t.Fatal("garbage accepted")
	}
	m, err := Train([]float64{1, 2}, []float64{1, 2}, Config{Hidden: 4, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
