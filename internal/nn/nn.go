// Package nn implements a small feed-forward neural network (one hidden
// ReLU layer, scalar input and output) trained with Adam — the model class
// Kraska et al. use for the first stage of the recursive model index, where
// it learns the coarse shape of the key CDF and routes queries to
// second-stage models.
//
// The paper under reproduction never poisons the stage-1 network (queries on
// trained keys always route correctly, Section V), so this package's job is
// to be a *real* substrate: deterministic, dependency-free, and accurate
// enough that routing behaves like the original architecture.
package nn

import (
	"errors"
	"fmt"
	"math"

	"cdfpoison/internal/xrand"
)

// Config controls network shape and training.
type Config struct {
	Hidden int     // hidden units; default 16
	Epochs int     // full passes over the data; default 200
	Batch  int     // minibatch size; default 64
	LR     float64 // Adam learning rate; default 0.01
	Seed   uint64  // weight-init seed; default 1
}

func (c *Config) fill() {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// MLP is a 1 → Hidden → 1 network with ReLU activations, plus the affine
// input/output normalization fitted during training. The zero value is not
// usable; construct with Train.
type MLP struct {
	hidden int
	w1, b1 []float64
	w2     []float64
	b2     float64
	// Normalization: xn = (x − xShift) * xScale, y = yn/yScale + yShift.
	xShift, xScale float64
	yShift, yScale float64
}

// ErrBadInput is returned when training data is empty or mismatched.
var ErrBadInput = errors.New("nn: training inputs must be non-empty and of equal length")

// Train fits an MLP to (x, y) pairs by minimizing MSE with Adam. Inputs and
// outputs are affinely normalized to ~[0, 1] internally, so callers pass raw
// keys and raw positions. Training is deterministic given Config.Seed.
func Train(x, y []float64, cfg Config) (*MLP, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrBadInput, len(x), len(y))
	}
	cfg.fill()
	n := len(x)

	minmax := func(v []float64) (lo, hi float64) {
		lo, hi = v[0], v[0]
		for _, t := range v {
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
		return lo, hi
	}
	xLo, xHi := minmax(x)
	yLo, yHi := minmax(y)
	m := &MLP{
		hidden: cfg.Hidden,
		w1:     make([]float64, cfg.Hidden),
		b1:     make([]float64, cfg.Hidden),
		w2:     make([]float64, cfg.Hidden),
		xShift: xLo, xScale: safeInv(xHi - xLo),
		yShift: yLo, yScale: safeInv(yHi - yLo),
	}

	rng := xrand.New(cfg.Seed)
	for i := 0; i < cfg.Hidden; i++ {
		// He-style init scaled for a scalar input.
		m.w1[i] = rng.NormFloat64() * math.Sqrt(2)
		m.b1[i] = rng.Float64()*2 - 1 // spread ReLU hinges across the input range
		m.w2[i] = rng.NormFloat64() * math.Sqrt(2/float64(cfg.Hidden))
	}

	xn := make([]float64, n)
	yn := make([]float64, n)
	for i := range x {
		xn[i] = (x[i] - m.xShift) * m.xScale
		yn[i] = (y[i] - m.yShift) * m.yScale
	}

	// Adam state.
	type adam struct{ m, v float64 }
	aw1 := make([]adam, cfg.Hidden)
	ab1 := make([]adam, cfg.Hidden)
	aw2 := make([]adam, cfg.Hidden)
	var ab2 adam
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0
	update := func(a *adam, g, lr float64) float64 {
		a.m = beta1*a.m + (1-beta1)*g
		a.v = beta2*a.v + (1-beta2)*g*g
		mh := a.m / (1 - math.Pow(beta1, float64(step)))
		vh := a.v / (1 - math.Pow(beta2, float64(step)))
		return lr * mh / (math.Sqrt(vh) + eps)
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	gw1 := make([]float64, cfg.Hidden)
	gb1 := make([]float64, cfg.Hidden)
	gw2 := make([]float64, cfg.Hidden)
	h := make([]float64, cfg.Hidden)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < n; start += cfg.Batch {
			end := start + cfg.Batch
			if end > n {
				end = n
			}
			bs := float64(end - start)
			for i := range gw1 {
				gw1[i], gb1[i], gw2[i] = 0, 0, 0
			}
			gb2 := 0.0
			for _, j := range idx[start:end] {
				xi, yi := xn[j], yn[j]
				pred := m.b2
				for k := 0; k < cfg.Hidden; k++ {
					a := m.w1[k]*xi + m.b1[k]
					if a < 0 {
						a = 0
					}
					h[k] = a
					pred += m.w2[k] * a
				}
				d := 2 * (pred - yi) / bs
				gb2 += d
				for k := 0; k < cfg.Hidden; k++ {
					gw2[k] += d * h[k]
					if h[k] > 0 {
						gw1[k] += d * m.w2[k] * xi
						gb1[k] += d * m.w2[k]
					}
				}
			}
			step++
			for k := 0; k < cfg.Hidden; k++ {
				m.w1[k] -= update(&aw1[k], gw1[k], cfg.LR)
				m.b1[k] -= update(&ab1[k], gb1[k], cfg.LR)
				m.w2[k] -= update(&aw2[k], gw2[k], cfg.LR)
			}
			m.b2 -= update(&ab2, gb2, cfg.LR)
		}
	}
	return m, nil
}

func safeInv(d float64) float64 {
	if d == 0 {
		return 1
	}
	return 1 / d
}

// Predict returns the network output for a raw (unnormalized) input.
func (m *MLP) Predict(x float64) float64 {
	xi := (x - m.xShift) * m.xScale
	out := m.b2
	for k := 0; k < m.hidden; k++ {
		a := m.w1[k]*xi + m.b1[k]
		if a > 0 {
			out += m.w2[k] * a
		}
	}
	return out/m.yScale + m.yShift
}

// MSE returns the mean squared error of the network on (x, y).
func (m *MLP) MSE(x, y []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for i := range x {
		d := m.Predict(x[i]) - y[i]
		s += d * d
	}
	return s / float64(len(x))
}

// Hidden returns the hidden-layer width (for memory accounting).
func (m *MLP) Hidden() int { return m.hidden }

// ParamCount returns the number of trainable parameters.
func (m *MLP) ParamCount() int { return 3*m.hidden + 1 }
