package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization of a trained MLP: magic, hidden width, then all
// parameters and normalization constants as little-endian float64s. The
// format is versioned by the magic string.
var mlpMagic = [8]byte{'C', 'D', 'F', 'M', 'L', 'P', '0', '1'}

// WriteBinary serializes the network.
func (m *MLP) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(mlpMagic[:]); err != nil {
		return fmt.Errorf("nn: write magic: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(m.hidden))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: write header: %w", err)
	}
	fields := make([]float64, 0, 3*m.hidden+5)
	fields = append(fields, m.w1...)
	fields = append(fields, m.b1...)
	fields = append(fields, m.w2...)
	fields = append(fields, m.b2, m.xShift, m.xScale, m.yShift, m.yScale)
	for _, f := range fields {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("nn: write params: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a network written by WriteBinary.
func ReadBinary(r io.Reader) (*MLP, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("nn: read magic: %w", err)
	}
	if magic != mlpMagic {
		return nil, fmt.Errorf("nn: bad magic %q", magic[:])
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("nn: read header: %w", err)
	}
	hidden := int(binary.LittleEndian.Uint32(hdr[:]))
	if hidden <= 0 || hidden > 1<<20 {
		return nil, fmt.Errorf("nn: implausible hidden width %d", hidden)
	}
	readF := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	m := &MLP{
		hidden: hidden,
		w1:     make([]float64, hidden),
		b1:     make([]float64, hidden),
		w2:     make([]float64, hidden),
	}
	var err error
	for i := range m.w1 {
		if m.w1[i], err = readF(); err != nil {
			return nil, fmt.Errorf("nn: read w1: %w", err)
		}
	}
	for i := range m.b1 {
		if m.b1[i], err = readF(); err != nil {
			return nil, fmt.Errorf("nn: read b1: %w", err)
		}
	}
	for i := range m.w2 {
		if m.w2[i], err = readF(); err != nil {
			return nil, fmt.Errorf("nn: read w2: %w", err)
		}
	}
	for _, dst := range []*float64{&m.b2, &m.xShift, &m.xScale, &m.yShift, &m.yScale} {
		if *dst, err = readF(); err != nil {
			return nil, fmt.Errorf("nn: read scalars: %w", err)
		}
	}
	return m, nil
}
