// Package bench codifies every experiment of the paper's evaluation —
// Figures 2 through 8 — plus the extensions and ablations listed in
// DESIGN.md, as deterministic, seedable runners. The lisbench command and
// the repository's bench_test.go are thin layers over this package.
//
// Scaling: the paper's largest synthetic cells use n = 10⁷ keys, which costs
// CPU-days for the greedy RMI attack on a single core. Runners therefore
// accept a Scale that shrinks n while preserving every ratio that drives the
// figures' shape (density, model-size progression, poisoning percentages,
// per-model thresholds). EXPERIMENTS.md records which scale produced each
// reported number.
package bench

import (
	"cdfpoison/internal/core"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/xrand"
)

// Scale selects experiment sizes.
type Scale string

const (
	// ScaleQuick runs in seconds; used by tests and CI.
	ScaleQuick Scale = "quick"
	// ScaleDefault is the supported reproduction (minutes on one core).
	ScaleDefault Scale = "default"
	// ScaleLarge stresses the asymptotics (tens of minutes on one core).
	ScaleLarge Scale = "large"
)

// Options configures a runner.
type Options struct {
	Scale Scale
	Seed  uint64
	// Trials overrides the per-cell repetition count (0 = scale default).
	Trials int
	// Workers bounds the worker pool for the figure sweeps: 1 = sequential,
	// n > 1 = exactly n workers, 0 or negative = one worker per core.
	// Results are identical for every value (the engine's determinism
	// contract, enforced by the equivalence tests); Workers is purely a
	// wall-clock knob. Key-set GENERATION always stays sequential so the
	// RNG stream — and therefore every dataset — is worker-independent.
	Workers int
	// PerKeyEval disables the sorted-batch probe kernel (DESIGN.md §12) on
	// the scenario eval paths and forces the classic per-key loop — the
	// `lisbench -no-batch-eval` A/B switch. Every reported column is
	// identical either way; only the EvalStats accounting moves.
	PerKeyEval bool
}

func (o Options) fill() Options {
	if o.Scale == "" {
		o.Scale = ScaleDefault
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// rng derives the root RNG for a runner; each cell must Split() from it so
// that cells are independent of iteration order.
func (o Options) rng() *xrand.RNG { return xrand.New(o.Seed) }

// pool builds the sweep-level worker pool (see Options.Workers).
func (o Options) pool() *engine.Pool { return engine.New(o.Workers) }

// coreOpts forwards the runner's worker budget to a core attack call when
// the attack itself is the sweep's hot path (the small fig2-4 experiments
// run one attack, so parallelism belongs inside it). Cell fan-out paths
// instead keep inner attacks sequential to avoid nested oversubscription.
func (o Options) coreOpts() []core.Option {
	opts := []core.Option{core.WithWorkers(o.Workers)}
	return append(opts, o.evalOpts()...)
}

// evalOpts forwards only the eval-path ablation switch — for sweep cells
// whose inner attacks stay sequential (cell fan-out owns the pool) but
// should still honor -no-batch-eval.
func (o Options) evalOpts() []core.Option {
	if o.PerKeyEval {
		return []core.Option{core.WithPerKeyEval()}
	}
	return nil
}

// CellBox couples an experiment cell's identity with the distribution of its
// observed ratio losses.
type CellBox struct {
	Label  string
	Ratios []float64
}
