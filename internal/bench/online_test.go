package bench

import (
	"reflect"
	"testing"

	"cdfpoison/internal/dynamic"
)

// TestOnlineSweepShape: the quick sweep emits one cell per (policy ×
// budget) pair and one epoch report per epoch in every cell — the CSV
// row-per-(epoch × budget × policy) contract of the -online runner.
func TestOnlineSweepShape(t *testing.T) {
	res, err := OnlineSweep(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	n, epochs, budgets, policies := onlineShape(ScaleQuick)
	wantCells := len(budgets) * len(policies(n))
	if len(res.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(res.Cells), wantCells)
	}
	if res.EpochsPerCell != epochs {
		t.Fatalf("EpochsPerCell = %d, want %d", res.EpochsPerCell, epochs)
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		if len(c.Epochs) != epochs {
			t.Fatalf("cell %s/%v%%: %d epoch reports, want %d", c.Policy, c.BudgetPct, len(c.Epochs), epochs)
		}
		key := c.Policy.String() + "/" + string(rune('0'+int(c.BudgetPct)))
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		// FinalRatio may dip below 1 for mid-stream retrain policies (later
		// honest arrivals re-shape the CDF after poison is absorbed), but
		// some epoch must show damage and ratios must stay positive.
		if c.FinalRatio <= 0 || c.MaxRatio < 1 || c.MaxRatio < c.FinalRatio {
			t.Fatalf("cell %s/%v%%: ratios final=%v max=%v", c.Policy, c.BudgetPct, c.FinalRatio, c.MaxRatio)
		}
		for _, e := range c.Epochs {
			if e.Injected < 1 {
				t.Fatalf("cell %s/%v%% epoch %d injected nothing", c.Policy, c.BudgetPct, e.Epoch)
			}
		}
	}
	if res.MaxFinalRatio() <= 1 {
		t.Fatalf("max final ratio %v: the attack did nothing", res.MaxFinalRatio())
	}
}

// TestOnlineSweepPolicyRoster: all three retrain policies appear, and the
// manual cells retrain exactly once per epoch.
func TestOnlineSweepPolicyRoster(t *testing.T) {
	res, err := OnlineSweep(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[dynamic.PolicyKind]bool{}
	for _, c := range res.Cells {
		kinds[c.Policy.Kind] = true
		if c.Policy.Kind == dynamic.Manual {
			last := c.Epochs[len(c.Epochs)-1]
			if last.Retrains != len(c.Epochs) {
				t.Fatalf("manual cell retrained %d times over %d epochs", last.Retrains, len(c.Epochs))
			}
		}
	}
	for _, k := range []dynamic.PolicyKind{dynamic.Manual, dynamic.EveryK, dynamic.BufferThreshold} {
		if !kinds[k] {
			t.Fatalf("policy kind %s missing from the sweep", k)
		}
	}
}

// TestOnlineSweepWorkerEquivalence: the full sweep — every cell, every
// epoch report — must be byte-identical across worker counts.
func TestOnlineSweepWorkerEquivalence(t *testing.T) {
	want, err := OnlineSweep(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range equivWorkers() {
		got, err := OnlineSweep(quick(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: online sweep diverged from sequential", w)
		}
	}
}
