package bench

import (
	"reflect"
	"testing"
)

// zeroWallClock strips the machine-dependent ops/sec figures (and the
// reader/batch echo fields) so sweeps taken with different reader counts
// can be compared byte for byte on the deterministic metrics.
func zeroWallClock(r ThroughputSweepResult) ThroughputSweepResult {
	r.Readers, r.BatchSize = 0, 0
	cells := make([]ThroughputCell, len(r.Cells))
	copy(cells, r.Cells)
	for i := range cells {
		cells[i].CleanOpsPerSec, cells[i].PoisonedOpsPerSec = 0, 0
	}
	r.Cells = cells
	return r
}

func TestThroughputSweepShape(t *testing.T) {
	res, err := ThroughputSweep(Options{Scale: ScaleQuick, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 { // 3 workload mixes × 2 cost models
		t.Fatalf("%d cells, want 6", len(res.Cells))
	}
	if res.Readers != 2 {
		t.Fatalf("resolved readers = %d, want 2", res.Readers)
	}
	for _, c := range res.Cells {
		if len(c.Clean) != res.EpochsPerCell || len(c.Poisoned) != res.EpochsPerCell {
			t.Fatalf("cell %s/%s: %d/%d epochs, want %d",
				c.Workload, c.Cost, len(c.Clean), len(c.Poisoned), res.EpochsPerCell)
		}
		injected := 0
		for e, m := range c.Poisoned {
			injected += m.Injected
			if cl := c.Clean[e]; cl.Injected != 0 {
				t.Fatalf("clean run injected %d poison keys", cl.Injected)
			}
			if m.P50 > m.P99 || m.P99 > m.P999 || m.P999 > m.MaxProbes {
				t.Fatalf("cell %s/%s epoch %d: percentiles not monotone: %+v",
					c.Workload, c.Cost, e, m)
			}
		}
		if injected == 0 {
			t.Fatalf("cell %s/%s: poisoned run injected nothing (budget %d)",
				c.Workload, c.Cost, c.Budget)
		}
		if c.CleanOpsPerSec <= 0 || c.PoisonedOpsPerSec <= 0 {
			t.Fatalf("cell %s/%s: non-positive wall-clock throughput", c.Workload, c.Cost)
		}
		if c.MaxP99Ratio <= 0 || c.MaxP999Ratio <= 0 || c.FinalLossRatio <= 0 {
			t.Fatalf("cell %s/%s: summary ratios not populated: %+v", c.Workload, c.Cost, c)
		}
	}
	if res.MaxP999Ratio() < 1 {
		t.Fatalf("headline p999 ratio %v < 1 — poisoning never degraded the tail", res.MaxP999Ratio())
	}
}

// TestThroughputSweepWorkerEquivalence: every deterministic field of the
// sweep is identical whatever the reader count — only the wall-clock
// ops/sec figures may differ. This is the bench-layer face of the
// scheduler-equivalence contract.
func TestThroughputSweepWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick sweep three times")
	}
	opts := Options{Scale: ScaleQuick, Seed: 11}
	opts.Workers = 1
	want, err := ThroughputSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 0} { // 0 resolves to GOMAXPROCS
		opts.Workers = workers
		got, err := ThroughputSweep(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(zeroWallClock(got), zeroWallClock(want)) {
			t.Fatalf("workers=%d sweep diverged from workers=1 on deterministic fields", workers)
		}
	}
}

// TestThroughputSweepDeterministic: same options, byte-identical sweep
// (modulo wall clock) across repeated runs in one process.
func TestThroughputSweepDeterministic(t *testing.T) {
	opts := Options{Scale: ScaleQuick, Seed: 3, Workers: 2}
	a, err := ThroughputSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ThroughputSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroWallClock(a), zeroWallClock(b)) {
		t.Fatal("repeated sweep with identical options diverged")
	}
}
