package bench

import (
	"context"
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/workload"
)

// CascadeCell is one (leaf-target × per-epoch budget) cell of the
// split-cascade sweep: the full per-epoch trajectory of core.CascadeAttack
// plus its headline summaries.
type CascadeCell struct {
	LeafTarget int
	BudgetPct  float64 // per-EPOCH attacker budget as % of the initial keys
	Budget     int
	Epochs     []core.CascadeEpochReport
	// Trajectory summaries: final victim/clean structural-cost ratio, worst
	// probe ratio, total damage score, and the final structural accounting
	// of both indexes.
	FinalStructRatio        float64
	MaxProbeRatio           float64
	TotalDamage             float64
	VictimCost, CleanCost   int64
	Splits, CleanSplits     int
	Cascades, CleanCascades int
}

// CascadeSweepResult is the full split-cascade sweep ("-fig cascade" in
// lisbench): the cascade attack across leaf targets and budgets over a
// shared initial key set and per-cell deterministic streams.
type CascadeSweepResult struct {
	Keys          int
	Domain        int64
	EpochsPerCell int
	OpsPerEpoch   int
	Workload      workload.Spec
	Cells         []CascadeCell
}

// cascadeShape returns the sweep parameters per scale. Leaf targets span
// the regimes that matter: small leaves (tight fanout limit — the cascade
// lands within a quick budget) and production-sized leaves (shifts
// dominate; the cascade needs the large budgets).
func cascadeShape(s Scale) (n, epochs, opsPerEpoch int, leafTargets []int, budgets []float64) {
	switch s {
	case ScaleQuick:
		return 200, 4, 80, []int{8, 16}, []float64{8, 30}
	case ScaleLarge:
		return 20_000, 8, 2_000, []int{32, 128}, []float64{1, 3}
	default:
		return 4_000, 6, 400, []int{16, 64}, []float64{2, 6}
	}
}

// CascadeSweep runs the split-cascade scenario across leaf targets and
// per-epoch budgets. The initial key set is drawn once; every cell's
// operation stream uses the SAME Options.Seed, so cells differ only in
// leaf target or budget, never in stream luck. The cells fan out across
// Options.Workers with sequential inner attacks — results fold in cell
// order, identical for every worker count.
func CascadeSweep(opts Options) (CascadeSweepResult, error) {
	opts = opts.fill()
	n, epochs, opsPerEpoch, leafTargets, budgets := cascadeShape(opts.Scale)
	domain := int64(n) * 40
	mix := workload.NewZipf(1.1, 85)

	root := opts.rng()
	ks, err := DistUniform.generate(root.Split(), n, domain)
	if err != nil {
		return CascadeSweepResult{}, fmt.Errorf("bench: cascade initial set: %w", err)
	}

	type cellSpec struct {
		leafTarget int
		budgetPct  float64
	}
	var specs []cellSpec
	for _, lt := range leafTargets {
		for _, b := range budgets {
			specs = append(specs, cellSpec{leafTarget: lt, budgetPct: b})
		}
	}

	pool := opts.pool()
	cells, err := engine.Map(context.Background(), pool, len(specs), func(i int) (CascadeCell, error) {
		sp := specs[i]
		budget := int(float64(n) * sp.budgetPct / 100)
		if budget < 1 {
			budget = 1
		}
		res, err := core.CascadeAttack(ks, core.CascadeOptions{
			Epochs:      epochs,
			OpsPerEpoch: opsPerEpoch,
			EpochBudget: budget,
			LeafTarget:  sp.leafTarget,
			Workload:    mix,
			Domain:      domain,
			Seed:        opts.Seed,
		})
		if err != nil {
			return CascadeCell{}, fmt.Errorf("bench: cascade cell leaf=%d budget=%g%%: %w",
				sp.leafTarget, sp.budgetPct, err)
		}
		return CascadeCell{
			LeafTarget:       sp.leafTarget,
			BudgetPct:        sp.budgetPct,
			Budget:           budget,
			Epochs:           res.Epochs,
			FinalStructRatio: res.FinalStructRatio(),
			MaxProbeRatio:    res.MaxProbeRatio(),
			TotalDamage:      res.TotalDamage(),
			VictimCost:       res.VictimStruct.Cost(),
			CleanCost:        res.CleanStruct.Cost(),
			Splits:           res.VictimStruct.Splits,
			CleanSplits:      res.CleanStruct.Splits,
			Cascades:         res.VictimStruct.Cascades,
			CleanCascades:    res.CleanStruct.Cascades,
		}, nil
	})
	if err != nil {
		return CascadeSweepResult{}, err
	}
	return CascadeSweepResult{
		Keys:          n,
		Domain:        domain,
		EpochsPerCell: epochs,
		OpsPerEpoch:   opsPerEpoch,
		Workload:      mix,
		Cells:         cells,
	}, nil
}

// MaxStructRatio returns the worst final structural-cost ratio across
// cells — the sweep's headline number.
func (r CascadeSweepResult) MaxStructRatio() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.FinalStructRatio > best {
			best = c.FinalStructRatio
		}
	}
	return best
}

// TotalCascades returns the attacker-forced cascades summed over cells.
func (r CascadeSweepResult) TotalCascades() int {
	total := 0
	for _, c := range r.Cells {
		total += c.Cascades - c.CleanCascades
	}
	return total
}
