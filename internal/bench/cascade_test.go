package bench

import (
	"reflect"
	"runtime"
	"testing"
)

func TestCascadeSweepShape(t *testing.T) {
	opts := Options{Scale: ScaleQuick, Seed: 7}
	res, err := CascadeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 { // quick: 2 leaf targets × 2 budgets
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Epochs) != res.EpochsPerCell {
			t.Fatalf("cell leaf=%d budget=%g: %d epochs, want %d",
				c.LeafTarget, c.BudgetPct, len(c.Epochs), res.EpochsPerCell)
		}
		if c.Splits == 0 {
			t.Fatalf("cell leaf=%d budget=%g: no split ever forced", c.LeafTarget, c.BudgetPct)
		}
		if c.VictimCost <= c.CleanCost {
			t.Fatalf("cell leaf=%d budget=%g: victim cost %d not above clean %d",
				c.LeafTarget, c.BudgetPct, c.VictimCost, c.CleanCost)
		}
		if c.FinalStructRatio <= 1 {
			t.Fatalf("cell leaf=%d budget=%g: struct ratio %v", c.LeafTarget, c.BudgetPct, c.FinalStructRatio)
		}
	}
	// The super-linearity the scenario exists to show: at a fixed leaf
	// target, a bigger budget buys a strictly bigger cost RATIO, not just
	// more absolute damage.
	byLeaf := map[int][]CascadeCell{}
	for _, c := range res.Cells {
		byLeaf[c.LeafTarget] = append(byLeaf[c.LeafTarget], c)
	}
	for leaf, cells := range byLeaf {
		for i := 1; i < len(cells); i++ {
			if cells[i].Budget > cells[i-1].Budget && cells[i].FinalStructRatio <= cells[i-1].FinalStructRatio {
				t.Errorf("leaf=%d: struct ratio %v at budget %d not above %v at budget %d",
					leaf, cells[i].FinalStructRatio, cells[i].Budget,
					cells[i-1].FinalStructRatio, cells[i-1].Budget)
			}
		}
	}
	// At quick scale the fanout cascade itself must land in at least one
	// cell — the sweep's reason to exist.
	if res.TotalCascades() <= 0 {
		t.Fatal("no attacker-forced cascade in any cell")
	}
	if res.MaxStructRatio() <= 1 {
		t.Fatalf("sweep headline %v — no structural damage", res.MaxStructRatio())
	}
}

// TestCascadeSweepWorkerEquivalence: the sweep's cell fan-out preserves the
// determinism contract byte for byte.
func TestCascadeSweepWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick sweep three times")
	}
	opts := Options{Scale: ScaleQuick, Seed: 11}
	opts.Workers = 1
	want, err := CascadeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		opts.Workers = w
		got, err := CascadeSweep(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: cascade sweep diverges from sequential", w)
		}
	}
}
