package bench

import (
	"context"
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
)

// OnlineCell is one (retrain policy × attacker budget) cell of the online
// sweep: the full per-epoch trajectory of the dynamic-index scenario.
type OnlineCell struct {
	Policy    dynamic.RetrainPolicy
	BudgetPct float64 // per-EPOCH attacker budget as % of the initial keys
	Budget    int     // the same, in keys
	Epochs    []core.EpochReport
	// FinalRatio and MaxRatio summarize the trajectory (they differ when a
	// retrain mid-scenario absorbs buffered poison into the model).
	FinalRatio float64
	MaxRatio   float64
	// Eval records which probe-eval path produced the cell's columns
	// (sorted-batch kernel vs per-key loop, DESIGN.md §12).
	Eval core.EvalStats
}

// OnlineSweepResult is the full online-scenario sweep ("-fig online" in
// lisbench): loss ratio and probe count vs. epoch for every (retrain
// policy × per-epoch budget) cell, over a shared initial key set and
// honest-arrival schedule so cells are directly comparable.
type OnlineSweepResult struct {
	Keys          int // initial key count
	Domain        int64
	EpochsPerCell int
	ArrivalsPct   float64 // honest arrivals per epoch, % of initial keys
	Cells         []OnlineCell
	// Eval aggregates the cells' probe-eval accounting (worker-independent:
	// each cell's counts are deterministic and the fold is cell-ordered).
	Eval core.EvalStats
}

// onlineShape returns the sweep parameters per scale: initial keys, epochs,
// per-epoch budget percentages, and the retrain-policy roster.
func onlineShape(s Scale) (n, epochs int, budgetPcts []float64, policies func(n int) []dynamic.RetrainPolicy) {
	roster := func(every, buffer int) func(int) []dynamic.RetrainPolicy {
		return func(n int) []dynamic.RetrainPolicy {
			return []dynamic.RetrainPolicy{
				dynamic.ManualPolicy(),
				dynamic.EveryKInserts(n / every),
				dynamic.BufferLimit(n / buffer),
			}
		}
	}
	switch s {
	case ScaleQuick:
		return 300, 3, []float64{2, 5}, roster(10, 10)
	case ScaleLarge:
		return 10_000, 10, []float64{1, 2, 5}, roster(20, 20)
	default:
		return 2_000, 8, []float64{1, 2, 5}, roster(20, 20)
	}
}

// OnlineSweep runs the dynamic-index online poisoning scenario across
// retrain policies and attacker budgets. Key-set and arrival generation is
// sequential (worker-independent RNG streams); the (policy × budget) cells
// then fan out across Options.Workers with sequential inner attacks, and
// results fold in cell order — identical for every worker count.
func OnlineSweep(opts Options) (OnlineSweepResult, error) {
	opts = opts.fill()
	n, epochs, budgetPcts, policies := onlineShape(opts.Scale)
	const arrivalsPct = 2.0
	domain := int64(n) * 40

	root := opts.rng()
	ks, err := DistUniform.generate(root.Split(), n, domain)
	if err != nil {
		return OnlineSweepResult{}, fmt.Errorf("bench: online initial set: %w", err)
	}
	// One shared arrival schedule: every cell sees the same honest traffic,
	// so policy and budget are the only variables.
	arrRNG := root.Split()
	perEpoch := int(float64(n) * arrivalsPct / 100)
	arrivals := make([][]int64, epochs)
	for e := range arrivals {
		for i := 0; i < perEpoch; i++ {
			arrivals[e] = append(arrivals[e], arrRNG.Int63n(domain))
		}
	}

	type cellSpec struct {
		policy dynamic.RetrainPolicy
		pct    float64
	}
	var specs []cellSpec
	for _, p := range policies(n) {
		for _, pct := range budgetPcts {
			specs = append(specs, cellSpec{policy: p, pct: pct})
		}
	}

	pool := opts.pool()
	cells, err := engine.Map(context.Background(), pool, len(specs), func(i int) (OnlineCell, error) {
		sp := specs[i]
		budget := int(float64(n) * sp.pct / 100)
		if budget < 1 {
			budget = 1
		}
		res, err := core.OnlinePoisonAttack(ks, core.OnlineOptions{
			Epochs:      epochs,
			EpochBudget: budget,
			Policy:      sp.policy,
			Arrivals:    arrivals,
		}, opts.evalOpts()...)
		if err != nil {
			return OnlineCell{}, fmt.Errorf("bench: online cell policy=%s budget=%v%%: %w", sp.policy, sp.pct, err)
		}
		return OnlineCell{
			Policy:     sp.policy,
			BudgetPct:  sp.pct,
			Budget:     budget,
			Epochs:     res.Epochs,
			FinalRatio: res.FinalRatio(),
			MaxRatio:   res.MaxRatio(),
			Eval:       res.Eval,
		}, nil
	})
	if err != nil {
		return OnlineSweepResult{}, err
	}
	var eval core.EvalStats
	for _, c := range cells {
		eval.BatchedKeys += c.Eval.BatchedKeys
		eval.PerKeyKeys += c.Eval.PerKeyKeys
	}
	return OnlineSweepResult{
		Keys:          n,
		Domain:        domain,
		EpochsPerCell: epochs,
		ArrivalsPct:   arrivalsPct,
		Cells:         cells,
		Eval:          eval,
	}, nil
}

// MaxFinalRatio returns the largest end-of-scenario loss ratio across cells
// — the sweep's headline number.
func (r OnlineSweepResult) MaxFinalRatio() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.FinalRatio > best {
			best = c.FinalRatio
		}
	}
	return best
}
