package bench

import (
	"reflect"
	"runtime"
	"testing"
)

func TestServeSweepShape(t *testing.T) {
	opts := Options{Scale: ScaleQuick, Seed: 7}
	res, err := ServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 { // quick: shard counts {1, 4} × 3 workload mixes
		t.Fatalf("%d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Epochs) != res.EpochsPerCell {
			t.Fatalf("cell shards=%d %s: %d epochs, want %d",
				c.Shards, c.Workload, len(c.Epochs), res.EpochsPerCell)
		}
		if c.FinalRatio < 1 {
			t.Fatalf("cell shards=%d %s: final ratio %v < 1", c.Shards, c.Workload, c.FinalRatio)
		}
		if c.MaxShardRatio < c.MaxRatio {
			t.Fatalf("cell shards=%d %s: worst shard %v below aggregate %v",
				c.Shards, c.Workload, c.MaxShardRatio, c.MaxRatio)
		}
		if c.Shards > 1 && c.FinalImbalance <= 0 {
			t.Fatalf("cell shards=%d %s: imbalance missing", c.Shards, c.Workload)
		}
		for _, e := range c.Epochs {
			if len(e.Shards) != c.Shards {
				t.Fatalf("cell shards=%d: epoch %d carries %d shard rows", c.Shards, e.Epoch, len(e.Shards))
			}
		}
	}
	if res.MaxFinalRatio() <= 1 {
		t.Fatalf("sweep headline %v — no cell registered damage", res.MaxFinalRatio())
	}
}

// TestServeSweepWorkerEquivalence: the sweep's cell fan-out preserves the
// determinism contract byte for byte.
func TestServeSweepWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick sweep three times")
	}
	opts := Options{Scale: ScaleQuick, Seed: 11}
	opts.Workers = 1
	want, err := ServeSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		opts.Workers = w
		got, err := ServeSweep(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: serve sweep diverged from sequential", w)
		}
	}
}
