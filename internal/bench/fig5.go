package bench

import (
	"context"
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/stats"
	"cdfpoison/internal/xrand"
)

// Distribution names a synthetic key distribution for the regression grid.
type Distribution string

const (
	DistUniform   Distribution = "uniform"
	DistNormal    Distribution = "normal"
	DistLogNormal Distribution = "lognormal"
)

// generate draws one key set of the distribution over [0, m).
func (d Distribution) generate(rng *xrand.RNG, n int, m int64) (keys.Set, error) {
	switch d {
	case DistUniform:
		return dataset.Uniform(rng, n, m)
	case DistNormal:
		return dataset.Normal(rng, n, m)
	case DistLogNormal:
		return dataset.LogNormal(rng, n, m, 0, 2)
	default:
		return keys.Set{}, fmt.Errorf("bench: unknown distribution %q", d)
	}
}

// RegressionGridCell is one boxplot of Figures 5/8: a fixed (keys, density,
// poisoning%) triple evaluated over `trials` fresh key sets.
type RegressionGridCell struct {
	Dist       Distribution
	Keys       int
	DensityPct float64
	Domain     int64
	PoisonPct  float64
	Ratios     []float64 // one ratio loss per trial
	Box        stats.Boxplot
	Truncated  int // trials where the domain saturated before the budget
}

// RegressionGridResult is the full Figure 5 (uniform) or Figure 8 (normal)
// sweep.
type RegressionGridResult struct {
	Dist   Distribution
	Trials int
	Cells  []RegressionGridCell
}

// gridShape returns the sweep parameters per scale: numbers of legitimate
// keys, key densities (percent), poisoning percentages, and trials.
func gridShape(s Scale) (keyCounts []int, densities []float64, poisonPcts []float64, trials int) {
	switch s {
	case ScaleQuick:
		return []int{100, 400}, []float64{5, 20, 80}, []float64{5, 15}, 3
	case ScaleLarge:
		return []int{100, 1000, 5000}, []float64{5, 20, 80}, []float64{1, 2, 5, 10, 15}, 20
	default:
		return []int{100, 1000}, []float64{5, 20, 80}, []float64{1, 2, 5, 10, 15}, 20
	}
}

// RegressionGrid runs the multi-point poisoning sweep of Figure 5
// (dist = uniform) and Figure 8 (dist = normal): for every (keys, density)
// cell, 20 distinct key sets are drawn, poisoned at each percentage with
// Algorithm 1, and the ratio loss distribution is reported as a boxplot.
func RegressionGrid(dist Distribution, opts Options) (RegressionGridResult, error) {
	opts = opts.fill()
	keyCounts, densities, poisonPcts, trials := gridShape(opts.Scale)
	if opts.Trials > 0 {
		trials = opts.Trials
	}
	root := opts.rng()
	pool := opts.pool()
	res := RegressionGridResult{Dist: dist, Trials: trials}
	for _, n := range keyCounts {
		for _, dens := range densities {
			m := int64(float64(n) / (dens / 100))
			cellRng := root.Split()
			// Draw the `trials` key sets once per (n, density) cell so that
			// poisoning percentages are compared on identical data, as in
			// the paper's plots. Generation stays sequential: the RNG
			// stream must not depend on the worker count.
			sets := make([]keys.Set, trials)
			for t := 0; t < trials; t++ {
				ks, err := dist.generate(cellRng, n, m)
				if err != nil {
					return RegressionGridResult{}, fmt.Errorf("bench: grid n=%d dens=%v trial %d: %w", n, dens, t, err)
				}
				sets[t] = ks
			}
			// Fan the (percentage, trial) attack grid out across the pool;
			// each attack is pure, and results are folded back pct-major /
			// trial-minor — the exact sequential iteration order.
			type task struct {
				pct    float64
				budget int
				trial  int
			}
			var tasks []task
			for _, pct := range poisonPcts {
				budget := int(float64(n) * pct / 100)
				if budget < 1 {
					budget = 1
				}
				for t := 0; t < trials; t++ {
					tasks = append(tasks, task{pct: pct, budget: budget, trial: t})
				}
			}
			type attackOut struct {
				ratio     float64
				truncated bool
			}
			outs, err := engine.Map(context.Background(), pool, len(tasks), func(i int) (attackOut, error) {
				tk := tasks[i]
				g, err := core.GreedyMultiPoint(sets[tk.trial], tk.budget)
				if err != nil {
					return attackOut{}, fmt.Errorf("bench: grid attack n=%d dens=%v pct=%v: %w", n, dens, tk.pct, err)
				}
				return attackOut{ratio: g.RatioLoss(), truncated: g.Truncated}, nil
			})
			if err != nil {
				return RegressionGridResult{}, err
			}
			for pi, pct := range poisonPcts {
				cell := RegressionGridCell{
					Dist:       dist,
					Keys:       n,
					DensityPct: dens,
					Domain:     m,
					PoisonPct:  pct,
				}
				for t := 0; t < trials; t++ {
					out := outs[pi*trials+t]
					if out.truncated {
						cell.Truncated++
					}
					cell.Ratios = append(cell.Ratios, out.ratio)
				}
				cell.Box = stats.NewBoxplot(cell.Ratios)
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// MaxMedianRatio returns the largest per-cell median ratio in the sweep —
// the headline number ("up to 100× for uniform, up to 8× for normal").
func (r RegressionGridResult) MaxMedianRatio() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.Box.Median > best {
			best = c.Box.Median
		}
	}
	return best
}
