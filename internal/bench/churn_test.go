package bench

import (
	"reflect"
	"runtime"
	"testing"
)

func TestChurnSweepShape(t *testing.T) {
	opts := Options{Scale: ScaleQuick, Seed: 7}
	res, err := ChurnSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 { // quick: 3 cost models × 2 budgets
		t.Fatalf("%d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Epochs) != res.EpochsPerCell {
			t.Fatalf("cell cost=%s budget=%g: %d epochs, want %d",
				c.Cost, c.BudgetPct, len(c.Epochs), res.EpochsPerCell)
		}
		if c.Cost.Zero() {
			// The synchronous control: no staleness, no latency.
			if c.MaxStaleFrac != 0 || c.MaxLatency != 0 || c.StaleTicks != 0 {
				t.Fatalf("zero-cost cell accrued staleness: %+v", c)
			}
			continue
		}
		if c.Publishes == 0 {
			t.Fatalf("cell cost=%s budget=%g: no rebuild ever published", c.Cost, c.BudgetPct)
		}
		if c.MaxStaleFrac <= 0 {
			t.Fatalf("cell cost=%s budget=%g: no stale reads", c.Cost, c.BudgetPct)
		}
		if c.StaleTicks <= c.CleanStale {
			t.Fatalf("cell cost=%s budget=%g: victim stale ticks %d not above clean %d",
				c.Cost, c.BudgetPct, c.StaleTicks, c.CleanStale)
		}
	}
	if res.MaxStaleFrac() <= 0 {
		t.Fatalf("sweep headline %v — no cell registered staleness", res.MaxStaleFrac())
	}
	if res.MaxLatency() <= 0 {
		t.Fatal("no cell registered publish latency")
	}
}

// TestChurnSweepWorkerEquivalence: the sweep's cell fan-out preserves the
// determinism contract byte for byte.
func TestChurnSweepWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick sweep three times")
	}
	opts := Options{Scale: ScaleQuick, Seed: 11}
	opts.Workers = 1
	want, err := ChurnSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		opts.Workers = w
		got, err := ChurnSweep(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: churn sweep diverges from sequential", w)
		}
	}
}
