package bench

import (
	"time"

	"cdfpoison/internal/core"
	"cdfpoison/internal/pla"
	"cdfpoison/internal/regression"
)

// PLACell is Extension F: poisoning an error-bounded piecewise-linear index
// (FITing-tree / PGM family). The error bound is enforced by construction,
// so the damage surfaces as segment-count (memory) inflation instead of
// lookup error. Two attackers are compared: the paper's loss-optimal greedy
// attack (whose single poison cluster barely fragments the segmentation —
// a non-transferability finding) and the index-aware burst attack of
// pla.InflationAttack.
type PLACell struct {
	Epsilon       int
	Keys          int
	PoisonPct     float64
	CleanSegments int
	// LossAttackSegments: after the paper's MSE-maximizing attack.
	LossAttackSegments int
	LossInflation      float64
	// BurstSegments: after the segment-targeted burst attack.
	BurstSegments  int
	BurstInflation float64
	BurstInjected  int
	CleanBytes     int
	BurstBytes     int
}

// PLAInflation measures segment inflation across error bounds for both
// attack objectives.
func PLAInflation(opts Options) ([]PLACell, error) {
	opts = opts.fill()
	n := 20_000
	if opts.Scale == ScaleQuick {
		n = 4_000
	}
	const pct = 10.0
	budget := n / 10
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, int64(n)*20)
	if err != nil {
		return nil, err
	}
	atk, err := core.GreedyMultiPoint(ks, budget)
	if err != nil {
		return nil, err
	}
	var out []PLACell
	for _, eps := range []int{4, 16, 64} {
		clean, err := pla.Build(ks, eps)
		if err != nil {
			return nil, err
		}
		lossIdx, err := pla.Build(atk.Poisoned, eps)
		if err != nil {
			return nil, err
		}
		burst, err := pla.InflationAttack(ks, budget, eps)
		if err != nil {
			return nil, err
		}
		out = append(out, PLACell{
			Epsilon:            eps,
			Keys:               n,
			PoisonPct:          pct,
			CleanSegments:      clean.Segments(),
			LossAttackSegments: lossIdx.Segments(),
			LossInflation:      float64(lossIdx.Segments()) / float64(clean.Segments()),
			BurstSegments:      burst.PoisonedSegments,
			BurstInflation:     burst.InflationRatio(),
			BurstInjected:      len(burst.Poison),
			CleanBytes:         clean.MemoryBytes(),
			BurstBytes:         burst.PoisonedSegments * 32,
		})
	}
	return out, nil
}

// QuadCell is Extension G: replacing the linear second stage with a
// quadratic model — the mitigation the paper's Discussion prices out.
type QuadCell struct {
	Keys            int
	PoisonPct       float64
	LinearRatio     float64 // attack amplification against the linear model
	QuadRatio       float64 // amplification against the quadratic model
	QuadCleanLoss   float64
	LinearCleanLoss float64
	ParamsLinear    int
	ParamsQuad      int
	FitNanosLinear  int64
	FitNanosQuad    int64
}

// QuadraticMitigation measures how much of the (linear-model-optimized)
// attack survives a quadratic second stage, and what the model upgrade
// costs in parameters and fitting time.
func QuadraticMitigation(opts Options) (QuadCell, error) {
	opts = opts.fill()
	n := 2_000
	if opts.Scale == ScaleQuick {
		n = 500
	}
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, int64(n)*20)
	if err != nil {
		return QuadCell{}, err
	}
	atk, err := core.GreedyMultiPoint(ks, n/10)
	if err != nil {
		return QuadCell{}, err
	}
	cell := QuadCell{Keys: n, PoisonPct: 10, ParamsLinear: 2, ParamsQuad: 3}

	start := time.Now()
	linClean, err := regression.FitCDF(ks)
	if err != nil {
		return QuadCell{}, err
	}
	cell.FitNanosLinear = time.Since(start).Nanoseconds()
	linPois, err := regression.FitCDF(atk.Poisoned)
	if err != nil {
		return QuadCell{}, err
	}
	cell.LinearCleanLoss = linClean.Loss
	cell.LinearRatio = core.SafeRatio(linPois.Loss, linClean.Loss)

	start = time.Now()
	quadClean, err := regression.FitQuadCDF(ks)
	if err != nil {
		return QuadCell{}, err
	}
	cell.FitNanosQuad = time.Since(start).Nanoseconds()
	quadPois, err := regression.FitQuadCDF(atk.Poisoned)
	if err != nil {
		return QuadCell{}, err
	}
	cell.QuadCleanLoss = quadClean.Loss
	cell.QuadRatio = core.SafeRatio(quadPois.Loss, quadClean.Loss)
	return cell, nil
}

// ModificationCell is Extension E2: the modification adversary compared to
// pure insertion and pure deletion at the same budget.
type ModificationCell struct {
	Keys           int
	BudgetPct      float64
	InsertionRatio float64
	RemovalRatio   float64
	ModifyRatio    float64
}

// AdversaryComparison runs the three adversary capabilities on the same key
// set with the same budget.
func AdversaryComparison(opts Options) (ModificationCell, error) {
	opts = opts.fill()
	n := 2_000
	if opts.Scale == ScaleQuick {
		n = 500
	}
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, int64(n)*20)
	if err != nil {
		return ModificationCell{}, err
	}
	budget := n / 20 // 5%
	cell := ModificationCell{Keys: n, BudgetPct: 5}
	ins, err := core.GreedyMultiPoint(ks, budget)
	if err != nil {
		return ModificationCell{}, err
	}
	cell.InsertionRatio = ins.RatioLoss()
	rem, err := core.GreedyRemoval(ks, budget)
	if err != nil {
		return ModificationCell{}, err
	}
	cell.RemovalRatio = rem.RatioLoss()
	mod, err := core.GreedyModification(ks, budget)
	if err != nil {
		return ModificationCell{}, err
	}
	cell.ModifyRatio = mod.RatioLoss()
	return cell, nil
}
