package bench

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/workload"
)

func TestDefenseSweepShape(t *testing.T) {
	res, err := DefenseSweep(Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 15 { // 5 scenarios × 3 strengths
		t.Fatalf("want 15 cells, got %d", len(res.Cells))
	}
	wantScenarios := []string{"static", "online", "serve", "churn", "cascade"}
	if got := res.Scenarios(); !reflect.DeepEqual(got, wantScenarios) {
		t.Fatalf("scenarios %v, want %v", got, wantScenarios)
	}
	for _, c := range res.Cells {
		if c.Strength == "off" {
			if c.Spec != "none" || c.Report.Enabled {
				t.Fatalf("%s/off cell not inert: spec %q enabled %v", c.Scenario, c.Spec, c.Report.Enabled)
			}
			if c.Reduction != 1 && !math.IsNaN(c.Reduction) {
				t.Fatalf("%s/off reduction %v, want 1", c.Scenario, c.Reduction)
			}
			if c.Overhead != 0 {
				t.Fatalf("%s/off overhead %v, want 0", c.Scenario, c.Overhead)
			}
		} else if c.Spec == "none" || !c.Report.Enabled {
			t.Fatalf("%s/%s armed cell reads disabled", c.Scenario, c.Strength)
		}
		if c.Excess < 0 {
			t.Fatalf("%s/%s negative excess %v", c.Scenario, c.Strength, c.Excess)
		}
	}
	// Per scenario, at least one cell must sit on the Pareto frontier, and
	// the zero-overhead off cell is undominated unless an armed cell matches
	// its overhead with strictly more reduction.
	for _, s := range wantScenarios {
		any := false
		for _, c := range res.Cells {
			if c.Scenario == s && c.Frontier {
				any = true
			}
		}
		if !any {
			t.Fatalf("scenario %s has an empty Pareto frontier", s)
		}
	}
}

// TestDefenseSweepZeroStrengthGolden: the sweep's "off" cells are the
// UNDEFENDED scenarios, byte for byte — same key sets, same streams, same
// damage, same accounting — pinning that a zero DefenseSpec changes nothing
// about the historical code paths the other figures fingerprint.
func TestDefenseSweepZeroStrengthGolden(t *testing.T) {
	opts := Options{Scale: ScaleQuick}.fill()
	res, err := DefenseSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	off := map[string]DefenseCell{}
	for _, c := range res.Cells {
		if c.Strength == "off" {
			off[c.Scenario] = c
		}
	}

	// Replicate the sweep's generation order: one root RNG, one Split per
	// scenario key set, one for the online arrivals.
	dims := defenseShape(opts.Scale)
	root := opts.rng()
	staticKS, err := DistUniform.generate(root.Split(), dims.staticN, int64(dims.staticN)*40)
	if err != nil {
		t.Fatal(err)
	}
	onlineKS, err := DistUniform.generate(root.Split(), dims.onlineN, int64(dims.onlineN)*40)
	if err != nil {
		t.Fatal(err)
	}
	arrRNG := root.Split()
	arrivals := make([][]int64, dims.onlineEpochs)
	for e := range arrivals {
		for i := 0; i < dims.onlineArrivals; i++ {
			arrivals[e] = append(arrivals[e], arrRNG.Int63n(int64(dims.onlineN)*40))
		}
	}
	serveKS, err := DistUniform.generate(root.Split(), dims.serveN, int64(dims.serveN)*40)
	if err != nil {
		t.Fatal(err)
	}
	churnKS, err := DistUniform.generate(root.Split(), dims.churnN, int64(dims.churnN)*40)
	if err != nil {
		t.Fatal(err)
	}
	cascadeKS, err := DistUniform.generate(root.Split(), dims.cascadeN, int64(dims.cascadeN)*40)
	if err != nil {
		t.Fatal(err)
	}

	sRes, err := core.StaticAttack(staticKS, core.StaticOptions{
		Budget: dims.staticBudget, HonestWrites: dims.staticHonest,
		Domain: staticKS.Max() + 1, Seed: opts.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	oRes, err := core.OnlinePoisonAttack(onlineKS, core.OnlineOptions{
		Epochs: dims.onlineEpochs, EpochBudget: dims.onlineBudget,
		Policy: dynamic.ManualPolicy(), Arrivals: arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	vRes, err := core.ServeAttack(serveKS, core.ServeOptions{
		Epochs: dims.serveEpochs, OpsPerEpoch: dims.serveOps,
		EpochBudget: dims.serveBudget, Shards: dims.serveShards,
		Policy: dynamic.ManualPolicy(), Workload: workload.NewZipf(1.1, 90),
		Domain: int64(dims.serveN) * 40, Seed: opts.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cRes, err := core.ChurnAttack(churnKS, core.ChurnOptions{
		Epochs: dims.churnEpochs, OpsPerEpoch: dims.churnOps,
		EpochBudget: dims.churnBudget, Shards: dims.churnShards,
		Policy: dynamic.BufferLimit(dims.churnBufferK), Workload: workload.NewZipf(1.1, 75),
		Domain: int64(dims.churnN) * 40, Seed: opts.Seed,
		Cost: index.CostModel{Fixed: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	aRes, err := core.CascadeAttack(cascadeKS, core.CascadeOptions{
		Epochs: dims.cascadeEpochs, OpsPerEpoch: dims.cascadeOps,
		EpochBudget: dims.cascadeBudget, LeafTarget: dims.cascadeLeaf,
		Workload: workload.NewZipf(1.1, 80),
		Domain:   int64(dims.cascadeN) * 40, Seed: opts.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]struct {
		damage float64
		report core.DefenseReport
	}{
		"static":  {sRes.RatioLoss, sRes.Defense},
		"online":  {oRes.FinalRatio(), oRes.Defense},
		"serve":   {vRes.FinalRatio(), vRes.Defense},
		"churn":   {core.SafeRatio(float64(cRes.VictimChurn.RebuildTicks), float64(cRes.CleanChurn.RebuildTicks)), cRes.Defense},
		"cascade": {aRes.FinalStructRatio(), aRes.Defense},
	}
	for name, w := range want {
		cell, ok := off[name]
		if !ok {
			t.Fatalf("no off cell for scenario %s", name)
		}
		if cell.Damage != w.damage {
			t.Errorf("%s off-cell damage %v, undefended scenario %v", name, cell.Damage, w.damage)
		}
		if !reflect.DeepEqual(cell.Report, w.report) {
			t.Errorf("%s off-cell report drifted:\n sweep %+v\n direct %+v", name, cell.Report, w.report)
		}
	}
}

// TestDefenseSweepWorkerEquivalence: the Pareto sweep is byte-identical for
// every worker count (the cells fan out, the Pareto pass folds in order).
func TestDefenseSweepWorkerEquivalence(t *testing.T) {
	base, err := DefenseSweep(Options{Scale: ScaleQuick, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 3, runtime.NumCPU()} {
		got, err := DefenseSweep(Options{Scale: ScaleQuick, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("defense sweep diverged at workers=%d", w)
		}
	}
}

// TestDefenseSweepAcceptance pins the headline claim of the defense plane:
// for EVERY scenario, at least one armed tier buys >= 2x attack-damage
// reduction while blocking <= 20% of the clean twin's honest writes.
func TestDefenseSweepAcceptance(t *testing.T) {
	res, err := DefenseSweep(Options{Scale: ScaleQuick})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scenarios() {
		best, ok := res.Best(s, 0.2)
		if !ok {
			t.Errorf("scenario %s: no armed cell under the 20%% overhead bar", s)
			continue
		}
		if best.Reduction < 2 {
			t.Errorf("scenario %s: best reduction %v < 2x (spec %s, overhead %v)",
				s, best.Reduction, best.Spec, best.Overhead)
		}
		if best.Report.FlaggedPoison+best.Report.ThrottledPoison == 0 {
			t.Errorf("scenario %s: winning cell never touched the attacker (%+v)", s, best.Report)
		}
	}
}
