package bench

import (
	"context"
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/workload"
)

// ServeCell is one (shard count × workload mix) cell of the serving sweep:
// the full per-epoch trajectory of the attack-under-load scenario.
type ServeCell struct {
	Shards    int
	Workload  workload.Spec
	BudgetPct float64 // per-EPOCH attacker budget as % of the initial keys
	Budget    int
	Epochs    []core.ServeEpochReport
	// Trajectory summaries: aggregate final/max ratio, the single worst
	// per-shard ratio (sharding concentrates damage), and the victim's
	// final shard imbalance.
	FinalRatio     float64
	MaxRatio       float64
	MaxShardRatio  float64
	FinalImbalance float64
	// Eval records which probe-eval path produced the cell's columns
	// (sorted-batch kernel vs per-key loop, DESIGN.md §12).
	Eval     core.EvalStats
	Retrains int
}

// ServeSweepResult is the full serving sweep ("-fig serve" in lisbench):
// the sharded attack-under-load scenario across shard counts and workload
// mixes, over a shared initial key set and a per-cell deterministic
// operation stream.
type ServeSweepResult struct {
	Keys          int
	Domain        int64
	EpochsPerCell int
	OpsPerEpoch   int
	Cells         []ServeCell
	// Eval aggregates the cells' probe-eval accounting (worker-independent:
	// each cell's counts are deterministic and the fold is cell-ordered).
	Eval core.EvalStats
}

// serveShape returns the sweep parameters per scale.
func serveShape(s Scale) (n, epochs, opsPerEpoch int, budgetPct float64, shardCounts []int, mixes []workload.Spec) {
	mixes = []workload.Spec{
		workload.NewUniform(90),
		workload.NewZipf(1.1, 90),
		workload.NewHotspot(2, 90),
	}
	switch s {
	case ScaleQuick:
		return 400, 3, 60, 5, []int{1, 4}, mixes
	case ScaleLarge:
		return 20_000, 8, 2_000, 2, []int{1, 4, 16}, mixes
	default:
		return 4_000, 6, 400, 2, []int{1, 4, 8}, mixes
	}
}

// ServeSweep runs the attack-under-load scenario across shard counts and
// workload mixes. The initial key set is drawn once and every cell's
// operation stream uses the SAME Options.Seed — cells differ only in
// shard count or mix, never in stream luck, and each cell derives its
// stream independently so cells are order-independent. The
// (shards × workload) cells fan out across Options.Workers with
// sequential inner attacks — results fold in cell order, identical for
// every worker count.
func ServeSweep(opts Options) (ServeSweepResult, error) {
	opts = opts.fill()
	n, epochs, opsPerEpoch, budgetPct, shardCounts, mixes := serveShape(opts.Scale)
	domain := int64(n) * 40

	root := opts.rng()
	ks, err := DistUniform.generate(root.Split(), n, domain)
	if err != nil {
		return ServeSweepResult{}, fmt.Errorf("bench: serve initial set: %w", err)
	}

	type cellSpec struct {
		shards int
		mix    workload.Spec
	}
	var specs []cellSpec
	for _, sc := range shardCounts {
		for _, mix := range mixes {
			specs = append(specs, cellSpec{shards: sc, mix: mix})
		}
	}
	budget := int(float64(n) * budgetPct / 100)
	if budget < 1 {
		budget = 1
	}

	pool := opts.pool()
	cells, err := engine.Map(context.Background(), pool, len(specs), func(i int) (ServeCell, error) {
		sp := specs[i]
		res, err := core.ServeAttack(ks, core.ServeOptions{
			Epochs:      epochs,
			OpsPerEpoch: opsPerEpoch,
			EpochBudget: budget,
			Shards:      sp.shards,
			Policy:      dynamic.ManualPolicy(),
			Workload:    sp.mix,
			Domain:      domain,
			// All cells share the same stream seed: a cell differs from its
			// neighbours only in shard count or mix, never in luck.
			Seed: opts.Seed,
		}, opts.evalOpts()...)
		if err != nil {
			return ServeCell{}, fmt.Errorf("bench: serve cell shards=%d workload=%s: %w", sp.shards, sp.mix, err)
		}
		last := res.Epochs[len(res.Epochs)-1]
		return ServeCell{
			Shards:         sp.shards,
			Workload:       sp.mix,
			BudgetPct:      budgetPct,
			Budget:         budget,
			Epochs:         res.Epochs,
			FinalRatio:     res.FinalRatio(),
			MaxRatio:       res.MaxRatio(),
			MaxShardRatio:  res.MaxShardRatio(),
			FinalImbalance: last.Imbalance,
			Retrains:       res.Retrains,
			Eval:           res.Eval,
		}, nil
	})
	if err != nil {
		return ServeSweepResult{}, err
	}
	var eval core.EvalStats
	for _, c := range cells {
		eval.BatchedKeys += c.Eval.BatchedKeys
		eval.PerKeyKeys += c.Eval.PerKeyKeys
	}
	return ServeSweepResult{
		Keys:          n,
		Domain:        domain,
		EpochsPerCell: epochs,
		OpsPerEpoch:   opsPerEpoch,
		Cells:         cells,
		Eval:          eval,
	}, nil
}

// MaxFinalRatio returns the largest end-of-scenario aggregate ratio across
// cells — the sweep's headline number.
func (r ServeSweepResult) MaxFinalRatio() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.FinalRatio > best {
			best = c.FinalRatio
		}
	}
	return best
}
