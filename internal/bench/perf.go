package bench

// The machine-readable performance harness behind `lisbench -fig perf`.
//
// Every attack in this repository ultimately spins Algorithm 1's inner
// loop, so attack throughput is itself an experimental result — and until
// this harness existed the repository had no recorded trajectory proving
// any optimization actually landed. PerfSweep measures a FIXED cell list
// (attack × n × workers, identical at every Scale so reports from any two
// runs can be compared record-by-record), and the report serializes to the
// perf artifact (BENCH_PR10.json at the repository root — BENCH_PR9.json is
// the previous trajectory point; older points live under
// testdata/bench-history/): the checked-in baseline CI replays against
// (ComparePerf) and that EXPERIMENTS.md's perf table cites. Scale only
// controls how long each cell is sampled, never what it runs.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/robust"
	"cdfpoison/internal/serve"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/workload"
	"cdfpoison/internal/xrand"
)

// PerfSchema identifies the report layout; bump on incompatible change.
const PerfSchema = "cdfpoison-perf/1"

// PerfRecord is one measured cell. Attack outputs are deterministic; the
// three measured columns obviously are not, which is why ComparePerf takes
// a tolerance for ns/op but holds allocs/op (machine-independent) tighter.
type PerfRecord struct {
	Attack string `json:"attack"`
	N      int    `json:"n"`
	P      int    `json:"p"` // poison budget (0 where not applicable)
	// Workers is the REQUESTED worker count (0 = one per core), so records
	// match across machines with different core counts; Resolved is what it
	// meant on the measuring host.
	Workers     int     `json:"workers"`
	Resolved    int     `json:"workers_resolved"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Key identifies the cell for baseline matching.
func (r PerfRecord) Key() string {
	return fmt.Sprintf("%s/n=%d/p=%d/workers=%d", r.Attack, r.N, r.P, r.Workers)
}

// PerfReport is the full sweep result, serialized to the perf artifact
// (BENCH_PR10.json).
type PerfReport struct {
	Schema     string       `json:"schema"`
	Scale      string       `json:"scale"`
	Seed       uint64       `json:"seed"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Records    []PerfRecord `json:"records"`
}

// perfCell is one sweep entry: op must run the attack once, end to end.
type perfCell struct {
	attack string
	n, p   int
	op     func(ks keys.Set, workers int) error
}

// perfCells returns the fixed cell list (before the workers cross-product).
// The greedy n=100k/p=50 cell is the repository's acceptance configuration
// (BenchmarkGreedyMultiPointWorkers uses the same dataset parameters).
func perfCells() []perfCell {
	greedy := func(p int) func(keys.Set, int) error {
		return func(ks keys.Set, w int) error {
			_, err := core.GreedyMultiPoint(ks, p, core.WithWorkers(w))
			return err
		}
	}
	return []perfCell{
		{attack: "greedy", n: 2_000, p: 20, op: greedy(20)},
		{attack: "greedy", n: 100_000, p: 50, op: greedy(50)},
		{attack: "single", n: 100_000, op: func(ks keys.Set, w int) error {
			_, err := core.OptimalSinglePoint(ks, core.WithWorkers(w))
			return err
		}},
		// Scan ablation for the single-point oracle: "brute" sweeps every
		// free slot, "single-full" the classic 2(n−1) gap endpoints, and
		// "single" (above) the pruned scan — three rows, same answer, the
		// complexity ladder of DESIGN.md §11 read directly off the report.
		{attack: "single-full", n: 100_000, op: func(ks keys.Set, w int) error {
			_, err := core.OptimalSinglePoint(ks, core.WithWorkers(w), core.WithFullScan())
			return err
		}},
		{attack: "brute", n: 100_000, op: func(ks keys.Set, w int) error {
			_, err := core.BruteForceSinglePoint(ks, core.WithWorkers(w))
			return err
		}},
		{attack: "rmi", n: 10_000, p: 500, op: func(ks keys.Set, w int) error {
			_, err := core.RMIAttack(ks, core.RMIAttackOptions{
				NumModels: 20, Percent: 5, Alpha: 3,
			}, core.WithWorkers(w))
			return err
		}},
		{attack: "serve", n: 4_000, p: 80, op: func(ks keys.Set, w int) error {
			_, err := core.ServeAttack(ks, core.ServeOptions{
				Epochs:      3,
				OpsPerEpoch: 200,
				EpochBudget: 80,
				Shards:      4,
				Policy:      dynamic.ManualPolicy(),
				Workload:    workload.NewZipf(1.1, 90),
				Seed:        99,
			}, core.WithWorkers(w))
			return err
		}},
		{attack: "churn", n: 4_000, p: 80, op: func(ks keys.Set, w int) error {
			_, err := core.ChurnAttack(ks, core.ChurnOptions{
				Epochs:      3,
				OpsPerEpoch: 200,
				EpochBudget: 80,
				Shards:      4,
				Policy:      dynamic.BufferLimit(32),
				Workload:    workload.NewZipf(1.1, 90),
				Seed:        99,
				Cost:        index.CostModel{Fixed: 50},
			}, core.WithWorkers(w))
			return err
		}},
		{attack: "throughput", n: 4_000, p: 80, op: func(ks keys.Set, w int) error {
			b, err := shard.New(ks, 4, dynamic.BufferLimit(32))
			if err != nil {
				return err
			}
			_, err = serve.RunConcurrent(context.Background(), b, serve.ScenarioOptions{
				Epochs:      3,
				OpsPerEpoch: 200,
				EpochBudget: 80,
				Workload:    workload.NewZipf(1.1, 90),
				Domain:      int64(4_000) * 100,
				Seed:        99,
				Cost:        index.CostModel{Fixed: 50},
				Oracle:      GreedyOracle(),
			}, serve.Options{Readers: w})
			return err
		}},
		{attack: "cascade", n: 4_000, p: 80, op: func(ks keys.Set, w int) error {
			_, err := core.CascadeAttack(ks, core.CascadeOptions{
				Epochs:      3,
				OpsPerEpoch: 200,
				EpochBudget: 80,
				LeafTarget:  32,
				Workload:    workload.NewZipf(1.1, 90),
				Seed:        99,
			}, core.WithWorkers(w))
			return err
		}},
		// The defense plane's hot-path price: the serve cell again, but with
		// the full defense armed — detector chain on every write, trimmed
		// retrains, per-source rate limiting. Compare against the bare
		// "serve" cell to read the overhead directly.
		{attack: "defended-serve", n: 4_000, p: 80, op: func(ks keys.Set, w int) error {
			_, err := core.ServeAttack(ks, core.ServeOptions{
				Epochs:      3,
				OpsPerEpoch: 200,
				EpochBudget: 80,
				Shards:      4,
				Policy:      dynamic.ManualPolicy(),
				Workload:    workload.NewZipf(1.1, 90),
				Seed:        99,
				Defense: core.DefenseSpec{
					Policies:   defenseChain("density:8:3|dupmass:3:3"),
					Fitter:     robust.Trimmed{Pct: 10},
					RateBudget: 4, RateWindow: 20, Sources: 8,
				},
			}, core.WithWorkers(w))
			return err
		}},
		// Epoch-eval cells: the probe evaluation the serving scenarios pay
		// once per epoch, isolated from oracle and insert work, at the
		// acceptance size n=1e5. The -batch rows run the sorted-batch kernel
		// (DESIGN.md §12), the -perkey rows the classic per-key lookup loop
		// on the SAME backend and batch; both produce identical totals, so
		// perkey ns/op ÷ batch ns/op is the kernel's measured speedup
		// (EXPERIMENTS.md's batch-probe table reads it off this report). The
		// backends are built once per dataset — in the warm-up run, via
		// perfEvalBackend — so the timed iterations measure ONLY the eval
		// pass. Worker count is irrelevant here (one merged pass per side).
		{attack: "online-eval-batch", n: 100_000, op: func(ks keys.Set, w int) error {
			r, err := perfEvalBackend("online", ks)
			if err != nil {
				return err
			}
			p, nf := index.ProbeSumSorted(r, ks.Keys())
			perfProbeSink += p + int64(nf)
			return nil
		}},
		{attack: "online-eval-perkey", n: 100_000, op: func(ks keys.Set, w int) error {
			r, err := perfEvalBackend("online", ks)
			if err != nil {
				return err
			}
			p, nf := r.ProbeSum(ks.Keys())
			perfProbeSink += p + int64(nf)
			return nil
		}},
		{attack: "serve-eval-batch", n: 100_000, op: func(ks keys.Set, w int) error {
			r, err := perfEvalBackend("serve", ks)
			if err != nil {
				return err
			}
			p, nf := index.ProbeSumSorted(r, ks.Keys())
			perfProbeSink += p + int64(nf)
			return nil
		}},
		{attack: "serve-eval-perkey", n: 100_000, op: func(ks keys.Set, w int) error {
			r, err := perfEvalBackend("serve", ks)
			if err != nil {
				return err
			}
			p, nf := r.ProbeSum(ks.Keys())
			perfProbeSink += p + int64(nf)
			return nil
		}},
		{attack: "online", n: 5_000, p: 100, op: func(ks keys.Set, w int) error {
			arrivals := make([][]int64, 4)
			arng := xrand.New(99)
			for e := range arrivals {
				arrivals[e] = xrand.SampleInt64s(arng, 50, int64(5_000)*100)
			}
			_, err := core.OnlinePoisonAttack(ks, core.OnlineOptions{
				Epochs:      4,
				EpochBudget: 25,
				Policy:      dynamic.ManualPolicy(),
				Arrivals:    arrivals,
			}, core.WithWorkers(w))
			return err
		}},
	}
}

// perfProbeSink keeps the epoch-eval cells' results observable so the
// compiler cannot elide the measured work.
var perfProbeSink int64

// perfEvalBackends caches the epoch-eval cells' backends per dataset, so
// the build cost lands in the warm-up run and the timed iterations measure
// only the eval pass. The key includes the dataset's backing array address:
// a sweep over a different dataset never reuses a stale index.
var perfEvalBackends sync.Map // string -> index.PointReader

// perfEvalBackend builds (once) the reader an epoch-eval cell probes:
// "online" is the dynamic index with a quarter-full delta buffer (the
// merged base+buffer pass is the kernel's hardest case), "serve" a 4-way
// sharded index's immutable snapshot (what measureServe evaluates).
func perfEvalBackend(kind string, ks keys.Set) (index.PointReader, error) {
	key := fmt.Sprintf("%s/%p", kind, ks.Keys())
	if r, ok := perfEvalBackends.Load(key); ok {
		return r.(index.PointReader), nil
	}
	var r index.PointReader
	switch kind {
	case "online":
		idx, err := dynamic.New(ks, dynamic.ManualPolicy())
		if err != nil {
			return nil, err
		}
		step := (ks.Max() - ks.Min()) / 257
		if step < 1 {
			step = 1
		}
		for k := ks.Min() + 1; k < ks.Max(); k += step {
			idx.Insert(k) // stays buffered under the manual policy
		}
		r = idx
	case "serve":
		idx, err := shard.New(ks, 4, dynamic.ManualPolicy())
		if err != nil {
			return nil, err
		}
		r = idx.Snapshot()
	default:
		return nil, fmt.Errorf("bench: unknown eval backend %q", kind)
	}
	perfEvalBackends.Store(key, r)
	return r, nil
}

// PerfCellKeys returns the stable cell keys of the fixed sweep (both
// workers variants), without running any attack — for coverage checks
// against a checked-in baseline.
func PerfCellKeys() []string {
	var keys []string
	for _, c := range perfCells() {
		for _, w := range []int{1, 0} {
			keys = append(keys, PerfRecord{Attack: c.attack, N: c.n, P: c.p, Workers: w}.Key())
		}
	}
	return keys
}

// perfBudget is the per-cell sampling budget for one scale.
type perfBudget struct {
	minIters int
	minTime  time.Duration
	maxIters int
}

func budgetFor(o Options) perfBudget {
	if o.Trials > 0 {
		// Test hook: exactly Trials iterations, no time floor.
		return perfBudget{minIters: o.Trials, maxIters: o.Trials}
	}
	switch o.Scale {
	case ScaleQuick:
		return perfBudget{minIters: 2, minTime: 250 * time.Millisecond, maxIters: 200}
	case ScaleLarge:
		return perfBudget{minIters: 10, minTime: 4 * time.Second, maxIters: 10_000}
	default:
		return perfBudget{minIters: 5, minTime: 1500 * time.Millisecond, maxIters: 2_000}
	}
}

// PerfSweep measures every cell and returns the machine-readable report.
// Worker variants are 1 (sequential) and 0 (one per core); on a single-core
// host both resolve to one worker and the duplicate documents exactly that.
func PerfSweep(o Options) (PerfReport, error) {
	o = o.fill()
	rep := PerfReport{
		Schema:     PerfSchema,
		Scale:      string(o.Scale),
		Seed:       o.Seed,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	budget := budgetFor(o)
	// Datasets are generated once per n from the root seed, sequentially,
	// so the measured work is identical across worker variants and runs.
	sets := map[int]keys.Set{}
	for _, c := range perfCells() {
		if _, ok := sets[c.n]; ok {
			continue
		}
		ks, err := dataset.Uniform(xrand.New(o.Seed), c.n, int64(c.n)*100)
		if err != nil {
			return PerfReport{}, fmt.Errorf("bench: perf dataset n=%d: %w", c.n, err)
		}
		sets[c.n] = ks
	}
	for _, c := range perfCells() {
		for _, w := range []int{1, 0} {
			r, err := measurePerf(c, sets[c.n], w, budget)
			if err != nil {
				return PerfReport{}, fmt.Errorf("bench: perf cell %s: %w", r.Key(), err)
			}
			rep.Records = append(rep.Records, r)
		}
	}
	return rep, nil
}

// measurePerf times one cell: a warm-up run, then iterations until both the
// minimum count and minimum duration are met, with allocation figures from
// runtime.MemStats deltas (the same counters testing's -benchmem reads).
func measurePerf(c perfCell, ks keys.Set, workers int, budget perfBudget) (PerfRecord, error) {
	rec := PerfRecord{
		Attack: c.attack, N: c.n, P: c.p,
		Workers: workers, Resolved: resolveWorkers(workers),
	}
	if err := c.op(ks, workers); err != nil { // warm-up + error check
		return rec, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for iters < budget.minIters || time.Since(start) < budget.minTime {
		if iters >= budget.maxIters {
			break
		}
		if err := c.op(ks, workers); err != nil {
			return rec, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	rec.Iters = iters
	rec.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
	rec.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
	rec.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
	return rec, nil
}

func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// PerfDelta is one baseline-vs-current comparison row.
type PerfDelta struct {
	Key                   string
	BaseNs, CurNs         float64
	BaseAllocs, CurAllocs float64
	NsRatio, AllocsRatio  float64
	Regressed             bool
	Reason                string
}

// ComparePerf matches current records against a baseline by cell key and
// flags regressions: ns/op above baseline×(1+tol) — the benchstat-style
// wall-clock gate — or allocs/op above the same bound plus an absolute
// slack of 2 (allocation counts are near-deterministic, so they regress
// loudly and cleanly even across machines). Records present on only one
// side are reported with Reason "unmatched" but never fail the gate, so
// adding a cell does not break CI against an older baseline; likewise,
// cells whose REQUESTED workers resolved to different concurrency on the
// two hosts (a workers=0 cell measured on hosts with different core
// counts) are reported as "resolved-workers differ" and skipped — they
// measured different code paths with genuinely different allocation
// profiles, so comparing them would fail every cross-machine gate. The
// second return is true when no comparable record regressed.
func ComparePerf(baseline, current PerfReport, tol float64) ([]PerfDelta, bool) {
	base := map[string]PerfRecord{}
	for _, r := range baseline.Records {
		base[r.Key()] = r
	}
	ok := true
	var deltas []PerfDelta
	for _, r := range current.Records {
		b, found := base[r.Key()]
		if !found {
			deltas = append(deltas, PerfDelta{Key: r.Key(), CurNs: r.NsPerOp,
				CurAllocs: r.AllocsPerOp, Reason: "unmatched"})
			continue
		}
		if b.Resolved != r.Resolved {
			deltas = append(deltas, PerfDelta{Key: r.Key(), BaseNs: b.NsPerOp,
				CurNs: r.NsPerOp, BaseAllocs: b.AllocsPerOp,
				CurAllocs: r.AllocsPerOp,
				Reason:    fmt.Sprintf("resolved-workers differ (%d vs %d)", b.Resolved, r.Resolved)})
			continue
		}
		d := PerfDelta{
			Key:    r.Key(),
			BaseNs: b.NsPerOp, CurNs: r.NsPerOp,
			BaseAllocs: b.AllocsPerOp, CurAllocs: r.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.NsRatio = r.NsPerOp / b.NsPerOp
		}
		if b.AllocsPerOp > 0 {
			d.AllocsRatio = r.AllocsPerOp / b.AllocsPerOp
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+tol) {
			d.Regressed = true
			d.Reason = fmt.Sprintf("ns/op +%.0f%%", (d.NsRatio-1)*100)
		}
		if r.AllocsPerOp > b.AllocsPerOp*(1+tol)+2 {
			d.Regressed = true
			if d.Reason != "" {
				d.Reason += ", "
			}
			d.Reason += fmt.Sprintf("allocs/op %.1f → %.1f", b.AllocsPerOp, r.AllocsPerOp)
		}
		if d.Regressed {
			ok = false
		}
		deltas = append(deltas, d)
	}
	return deltas, ok
}
