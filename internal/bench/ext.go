package bench

import (
	"fmt"
	"time"

	"cdfpoison/internal/btree"
	"cdfpoison/internal/core"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/rmi"
)

// LookupCell compares the learned index's lookup cost before and after the
// RMI attack, on one distribution — Extension A in DESIGN.md. This is the
// consequence the paper motivates (poisoning degrades index performance) but
// could only report as ratio loss; with our own RMI substrate we can measure
// it in probes and search-window widths.
type LookupCell struct {
	Dist               Distribution
	Keys               int
	Fanout             int
	PoisonPct          float64
	CleanProbes        float64 // mean probes per stored-key lookup, clean index
	PoisonedProbes     float64 // same, after retraining on K ∪ P
	CleanAvgWindow     float64
	PoisonedAvgWindow  float64
	CleanMaxWindow     int
	PoisonedMaxWindow  int
	SecondStageMSEGain float64 // poisoned/clean second-stage MSE of the built index
}

// LookupDegradation runs Extension A for uniform and log-normal keys.
func LookupDegradation(opts Options) ([]LookupCell, error) {
	opts = opts.fill()
	n := 20_000
	if opts.Scale == ScaleQuick {
		n = 4_000
	}
	const pct = 10.0
	root := opts.rng()
	var out []LookupCell
	for _, dist := range []Distribution{DistUniform, DistLogNormal} {
		rng := root.Split()
		ks, err := dist.generate(rng, n, int64(n)*50)
		if err != nil {
			return nil, fmt.Errorf("bench: lookup %s: %w", dist, err)
		}
		fanout := n / 100
		atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
			NumModels: fanout,
			Percent:   pct,
			Alpha:     3,
			MaxMoves:  maxMovesFor(opts.Scale, fanout),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: lookup attack %s: %w", dist, err)
		}
		poisoned := ks.Union(atk.Poison)

		cleanIdx, err := rmi.Build(ks, rmi.Config{Fanout: fanout})
		if err != nil {
			return nil, err
		}
		// The victim retrains the index on the augmented data, as in the
		// paper's threat model (injection happens before initialization).
		poisIdx, err := rmi.Build(poisoned, rmi.Config{Fanout: fanout})
		if err != nil {
			return nil, err
		}
		// Query cost over the legitimate keys only: the attacker degrades
		// the honest users' workload.
		cleanProbes, _ := cleanIdx.AvgProbes(ks.Keys())
		poisProbes, _ := poisIdx.AvgProbes(ks.Keys())
		cs, ps := cleanIdx.Stats(), poisIdx.Stats()
		cell := LookupCell{
			Dist:              dist,
			Keys:              n,
			Fanout:            fanout,
			PoisonPct:         pct,
			CleanProbes:       cleanProbes,
			PoisonedProbes:    poisProbes,
			CleanAvgWindow:    cs.AvgWindow,
			PoisonedAvgWindow: ps.AvgWindow,
			CleanMaxWindow:    cs.MaxWindow,
			PoisonedMaxWindow: ps.MaxWindow,
		}
		if cs.SecondStageMSE > 0 {
			cell.SecondStageMSEGain = ps.SecondStageMSE / cs.SecondStageMSE
		}
		out = append(out, cell)
	}
	return out, nil
}

// IndexComparison pits the clean and poisoned RMI against a B-Tree on the
// same keys — Extension B. Probes are key comparisons for both structures.
type IndexComparison struct {
	Keys           int
	RMICleanProbes float64
	RMIPoisProbes  float64
	BTreeProbes    float64
	BTreeHeight    int
	RMIMemBytes    int
}

// CompareWithBTree runs Extension B on uniform keys.
func CompareWithBTree(opts Options) (IndexComparison, error) {
	opts = opts.fill()
	n := 50_000
	if opts.Scale == ScaleQuick {
		n = 5_000
	}
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, int64(n)*20)
	if err != nil {
		return IndexComparison{}, err
	}
	fanout := n / 100
	atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
		NumModels: fanout, Percent: 10, Alpha: 3,
		MaxMoves: maxMovesFor(opts.Scale, fanout),
	})
	if err != nil {
		return IndexComparison{}, err
	}
	cleanIdx, err := rmi.Build(ks, rmi.Config{Fanout: fanout})
	if err != nil {
		return IndexComparison{}, err
	}
	poisIdx, err := rmi.Build(ks.Union(atk.Poison), rmi.Config{Fanout: fanout})
	if err != nil {
		return IndexComparison{}, err
	}
	bt, err := btree.Bulk(32, ks.Keys())
	if err != nil {
		return IndexComparison{}, err
	}
	cleanProbes, _ := cleanIdx.AvgProbes(ks.Keys())
	poisProbes, _ := poisIdx.AvgProbes(ks.Keys())
	var btSum int
	for _, k := range ks.Keys() {
		_, p := bt.Get(k)
		btSum += p
	}
	return IndexComparison{
		Keys:           n,
		RMICleanProbes: cleanProbes,
		RMIPoisProbes:  poisProbes,
		BTreeProbes:    float64(btSum) / float64(n),
		BTreeHeight:    bt.Height(),
		RMIMemBytes:    cleanIdx.Stats().MemoryBytes,
	}, nil
}

// TrimCell is Extension C: the TRIM defense against the greedy CDF attack.
type TrimCell struct {
	Dist        Distribution
	Keys        int
	PoisonPct   float64
	Precision   float64
	Recall      float64
	CleanLoss   float64
	KeptLoss    float64 // loss of the set TRIM kept (collateral shows here)
	AttackRatio float64 // ratio loss before the defense
	AfterRatio  float64 // KeptLoss / CleanLoss: what the defense salvaged
	Millis      int64   // wall time: the re-calibration overhead
}

// TrimDefense runs Extension C over uniform data at several poisoning rates.
func TrimDefense(opts Options) ([]TrimCell, error) {
	opts = opts.fill()
	n := 1_000
	if opts.Scale == ScaleQuick {
		n = 300
	}
	root := opts.rng()
	var out []TrimCell
	for _, pct := range []float64{5, 10, 20} {
		rng := root.Split()
		clean, err := DistUniform.generate(rng, n, int64(n)*20)
		if err != nil {
			return nil, err
		}
		budget := int(float64(n) * pct / 100)
		g, err := core.GreedyMultiPoint(clean, budget)
		if err != nil {
			return nil, err
		}
		poisonSet, err := keys.NewStrict(g.Poison)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tr, err := defense.TrimCDF(g.Poisoned, clean.Len(), defense.TrimOptions{Restarts: 2, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		ev, err := defense.Evaluate(clean, poisonSet, tr.Removed, tr.Kept)
		if err != nil {
			return nil, err
		}
		out = append(out, TrimCell{
			Dist:        DistUniform,
			Keys:        n,
			PoisonPct:   pct,
			Precision:   ev.Precision,
			Recall:      ev.Recall,
			CleanLoss:   ev.CleanLossBefore,
			KeptLoss:    ev.KeptLoss,
			AttackRatio: g.RatioLoss(),
			AfterRatio:  core.SafeRatio(ev.KeptLoss, ev.CleanLossBefore),
			Millis:      elapsed.Milliseconds(),
		})
	}
	return out, nil
}

// EndpointAblation validates and measures the Theorem 2 endpoint enumeration
// against the brute-force sweep (Ablation 1).
type EndpointAblation struct {
	Keys            int
	Domain          int64
	OptCandidates   int
	BruteCandidates int
	Agree           bool
	OptMicros       int64
	BruteMicros     int64
}

// EndpointsVsBrute runs Ablation 1 on one uniform key set.
func EndpointsVsBrute(opts Options) (EndpointAblation, error) {
	opts = opts.fill()
	n := 2_000
	if opts.Scale == ScaleQuick {
		n = 500
	}
	domain := int64(n) * 500 // low density: brute force pays for the domain
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, domain)
	if err != nil {
		return EndpointAblation{}, err
	}
	start := time.Now()
	opt, err := core.OptimalSinglePoint(ks)
	optD := time.Since(start)
	if err != nil {
		return EndpointAblation{}, err
	}
	start = time.Now()
	brt, err := core.BruteForceSinglePoint(ks)
	brtD := time.Since(start)
	if err != nil {
		return EndpointAblation{}, err
	}
	agree := opt.PoisonedLoss >= brt.PoisonedLoss*(1-1e-9) &&
		opt.PoisonedLoss <= brt.PoisonedLoss*(1+1e-9)
	return EndpointAblation{
		Keys:            n,
		Domain:          domain,
		OptCandidates:   opt.Candidates,
		BruteCandidates: brt.Candidates,
		Agree:           agree,
		OptMicros:       optD.Microseconds(),
		BruteMicros:     brtD.Microseconds(),
	}, nil
}

// VolumeAblation compares Algorithm 2's greedy exchanges against the fixed
// uniform allocation (the paper's "natural first attempt") — Ablation 2.
type VolumeAblation struct {
	Dist         Distribution
	UniformRatio float64 // RMI ratio with exchanges disabled
	GreedyRatio  float64 // RMI ratio with exchanges enabled
	Moves        int
}

// VolumeAllocation runs Ablation 2 on a log-normal key set, where skewed
// density makes allocation matter most.
func VolumeAllocation(opts Options) (VolumeAblation, error) {
	opts = opts.fill()
	n := 20_000
	if opts.Scale == ScaleQuick {
		n = 4_000
	}
	rng := opts.rng()
	ks, err := DistLogNormal.generate(rng, n, int64(n)*50)
	if err != nil {
		return VolumeAblation{}, err
	}
	N := n / 200
	base := core.RMIAttackOptions{NumModels: N, Percent: 10, Alpha: 3,
		MaxMoves: maxMovesFor(opts.Scale, N)}
	off := base
	off.DisableExchanges = true
	uniform, err := core.RMIAttack(ks, off)
	if err != nil {
		return VolumeAblation{}, err
	}
	greedy, err := core.RMIAttack(ks, base)
	if err != nil {
		return VolumeAblation{}, err
	}
	return VolumeAblation{
		Dist:         DistLogNormal,
		UniformRatio: uniform.RMIRatio(),
		GreedyRatio:  greedy.RMIRatio(),
		Moves:        greedy.Moves,
	}, nil
}

// AlphaCell is one row of Ablation 3: the per-model poisoning threshold.
type AlphaCell struct {
	Alpha     float64 // 0 = unbounded
	RMIRatio  float64
	MaxBudget int // largest per-model allocation the attack used
}

// AlphaSweep runs Ablation 3 on a log-normal key set with α ∈ {1, 2, 3, 0}.
func AlphaSweep(opts Options) ([]AlphaCell, error) {
	opts = opts.fill()
	n := 10_000
	if opts.Scale == ScaleQuick {
		n = 3_000
	}
	rng := opts.rng()
	ks, err := DistLogNormal.generate(rng, n, int64(n)*50)
	if err != nil {
		return nil, err
	}
	N := n / 200
	var out []AlphaCell
	for _, alpha := range []float64{1, 2, 3, 0} {
		atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
			NumModels: N, Percent: 10, Alpha: alpha,
			MaxMoves: maxMovesFor(opts.Scale, N),
		})
		if err != nil {
			return nil, err
		}
		maxB := 0
		for _, m := range atk.Models {
			if m.Budget > maxB {
				maxB = m.Budget
			}
		}
		out = append(out, AlphaCell{Alpha: alpha, RMIRatio: atk.RMIRatio(), MaxBudget: maxB})
	}
	return out, nil
}
