package bench

import (
	"fmt"
	"time"

	"cdfpoison/internal/alex"
	"cdfpoison/internal/btree"
	"cdfpoison/internal/core"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/rmi"
	"cdfpoison/internal/shard"
)

// LookupCell compares the learned index's lookup cost before and after the
// RMI attack, on one distribution — Extension A in DESIGN.md. This is the
// consequence the paper motivates (poisoning degrades index performance) but
// could only report as ratio loss; with our own RMI substrate we can measure
// it in probes and search-window widths.
type LookupCell struct {
	Dist               Distribution
	Keys               int
	Fanout             int
	PoisonPct          float64
	CleanProbes        float64 // mean probes per stored-key lookup, clean index
	PoisonedProbes     float64 // same, after retraining on K ∪ P
	CleanAvgWindow     float64
	PoisonedAvgWindow  float64
	CleanMaxWindow     int
	PoisonedMaxWindow  int
	SecondStageMSEGain float64 // poisoned/clean second-stage MSE of the built index
}

// LookupDegradation runs Extension A for uniform and log-normal keys.
func LookupDegradation(opts Options) ([]LookupCell, error) {
	opts = opts.fill()
	n := 20_000
	if opts.Scale == ScaleQuick {
		n = 4_000
	}
	const pct = 10.0
	root := opts.rng()
	var out []LookupCell
	for _, dist := range []Distribution{DistUniform, DistLogNormal} {
		rng := root.Split()
		ks, err := dist.generate(rng, n, int64(n)*50)
		if err != nil {
			return nil, fmt.Errorf("bench: lookup %s: %w", dist, err)
		}
		fanout := n / 100
		atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
			NumModels: fanout,
			Percent:   pct,
			Alpha:     3,
			MaxMoves:  maxMovesFor(opts.Scale, fanout),
		})
		if err != nil {
			return nil, fmt.Errorf("bench: lookup attack %s: %w", dist, err)
		}
		poisoned := ks.Union(atk.Poison)

		cleanIdx, err := rmi.Build(ks, rmi.Config{Fanout: fanout})
		if err != nil {
			return nil, err
		}
		// The victim retrains the index on the augmented data, as in the
		// paper's threat model (injection happens before initialization).
		poisIdx, err := rmi.Build(poisoned, rmi.Config{Fanout: fanout})
		if err != nil {
			return nil, err
		}
		// Query cost over the legitimate keys only: the attacker degrades
		// the honest users' workload.
		cleanProbes, _ := cleanIdx.AvgProbes(ks.Keys())
		poisProbes, _ := poisIdx.AvgProbes(ks.Keys())
		cs, ps := cleanIdx.Stats(), poisIdx.Stats()
		cell := LookupCell{
			Dist:              dist,
			Keys:              n,
			Fanout:            fanout,
			PoisonPct:         pct,
			CleanProbes:       cleanProbes,
			PoisonedProbes:    poisProbes,
			CleanAvgWindow:    cs.AvgWindow,
			PoisonedAvgWindow: ps.AvgWindow,
			CleanMaxWindow:    cs.MaxWindow,
			PoisonedMaxWindow: ps.MaxWindow,
		}
		if cs.SecondStageMSE > 0 {
			cell.SecondStageMSEGain = ps.SecondStageMSE / cs.SecondStageMSE
		}
		out = append(out, cell)
	}
	return out, nil
}

// BackendCell is one backend of Extension B: every index substrate behind
// index.Backend, fed the same keys and the same poison, measured through
// the one ProbeSum code path. Probes are key comparisons everywhere, so
// the cells are directly comparable.
type BackendCell struct {
	Backend        string
	Keys           int
	CleanProbes    float64 // mean probes per stored-key lookup, clean build
	PoisonedProbes float64 // same, after absorbing the poison and retraining
	ProbeInflation float64 // PoisonedProbes / CleanProbes
	CleanWindow    int     // guaranteed model window (0 for model-free)
	PoisonedWindow int
	Retrains       int // retrains the poisoned side performed
}

// CompareBackends runs Extension B on uniform keys: the same greedy poison
// set (Algorithm 1, 10% budget) is inserted into each backend — updatable
// learned index, single-model RMI, 4-way sharded index, B-Tree — followed
// by one maintenance retrain, and lookup cost over the legitimate keys is
// measured before and after through index.Backend.ProbeSum alone. The
// B-Tree row is the control: a balanced structure absorbs the same keys
// with essentially unchanged probes, which is the paper's motivating
// trade-off made measurable. Every substrate also gets a "guarded-" twin
// behind the standard detector chain (defense.Guard): its probe-inflation
// column reads how much of the damage an insert-time screen recovers on
// that substrate, through the identical measurement path.
func CompareBackends(opts Options) ([]BackendCell, error) {
	opts = opts.fill()
	n := 50_000
	if opts.Scale == ScaleQuick {
		n = 5_000
	}
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, int64(n)*20)
	if err != nil {
		return nil, err
	}
	atk, err := core.GreedyMultiPoint(ks, n/10)
	if err != nil {
		return nil, err
	}
	backends := []struct {
		name  string
		build core.BackendFactory
	}{
		{"dynamic", func(ks keys.Set) (index.Backend, error) {
			return dynamic.New(ks, dynamic.ManualPolicy())
		}},
		{"rmi-single", func(ks keys.Set) (index.Backend, error) {
			return rmi.NewSingle(ks)
		}},
		{"shard-4", func(ks keys.Set) (index.Backend, error) {
			return shard.New(ks, 4, dynamic.ManualPolicy())
		}},
		{"alex", func(ks keys.Set) (index.Backend, error) {
			return alex.New(ks, 0)
		}},
		{"btree", func(ks keys.Set) (index.Backend, error) {
			return btree.Bulk(32, ks.Keys())
		}},
	}
	chain := defenseChain("density:8:3|dupmass:3:3")
	for _, b := range backends[:len(backends):len(backends)] {
		inner := b.build
		backends = append(backends, struct {
			name  string
			build core.BackendFactory
		}{"guarded-" + b.name, func(ks keys.Set) (index.Backend, error) {
			base, err := inner(ks)
			if err != nil {
				return nil, err
			}
			return defense.NewGuard(base, defense.GuardOptions{Policies: chain}), nil
		}})
	}
	legit := ks.Keys()
	var out []BackendCell
	for _, b := range backends {
		clean, err := b.build(ks)
		if err != nil {
			return nil, fmt.Errorf("bench: backend %s: %w", b.name, err)
		}
		cleanProbes, _ := clean.ProbeSum(legit)
		victim, err := b.build(ks)
		if err != nil {
			return nil, fmt.Errorf("bench: backend %s: %w", b.name, err)
		}
		for _, k := range atk.Poison {
			victim.Insert(k)
		}
		victim.Retrain()
		poisProbes, _ := victim.ProbeSum(legit)
		cell := BackendCell{
			Backend:        b.name,
			Keys:           n,
			CleanProbes:    float64(cleanProbes) / float64(n),
			PoisonedProbes: float64(poisProbes) / float64(n),
			CleanWindow:    clean.Stats().Window,
			PoisonedWindow: victim.Stats().Window,
			Retrains:       victim.Stats().Retrains,
		}
		if cell.CleanProbes > 0 {
			cell.ProbeInflation = cell.PoisonedProbes / cell.CleanProbes
		}
		out = append(out, cell)
	}
	return out, nil
}

// TrimCell is Extension C: the TRIM defense against the greedy CDF attack.
type TrimCell struct {
	Dist        Distribution
	Keys        int
	PoisonPct   float64
	Precision   float64
	Recall      float64
	CleanLoss   float64
	KeptLoss    float64 // loss of the set TRIM kept (collateral shows here)
	AttackRatio float64 // ratio loss before the defense
	AfterRatio  float64 // KeptLoss / CleanLoss: what the defense salvaged
	Millis      int64   // wall time: the re-calibration overhead
}

// TrimDefense runs Extension C over uniform data at several poisoning rates.
func TrimDefense(opts Options) ([]TrimCell, error) {
	opts = opts.fill()
	n := 1_000
	if opts.Scale == ScaleQuick {
		n = 300
	}
	root := opts.rng()
	var out []TrimCell
	for _, pct := range []float64{5, 10, 20} {
		rng := root.Split()
		clean, err := DistUniform.generate(rng, n, int64(n)*20)
		if err != nil {
			return nil, err
		}
		budget := int(float64(n) * pct / 100)
		g, err := core.GreedyMultiPoint(clean, budget)
		if err != nil {
			return nil, err
		}
		poisonSet, err := keys.NewStrict(g.Poison)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tr, err := defense.TrimCDF(g.Poisoned, clean.Len(), defense.TrimOptions{Restarts: 2, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		ev, err := defense.Evaluate(clean, poisonSet, tr.Removed, tr.Kept)
		if err != nil {
			return nil, err
		}
		out = append(out, TrimCell{
			Dist:        DistUniform,
			Keys:        n,
			PoisonPct:   pct,
			Precision:   ev.Precision,
			Recall:      ev.Recall,
			CleanLoss:   ev.CleanLossBefore,
			KeptLoss:    ev.KeptLoss,
			AttackRatio: g.RatioLoss(),
			AfterRatio:  core.SafeRatio(ev.KeptLoss, ev.CleanLossBefore),
			Millis:      elapsed.Milliseconds(),
		})
	}
	return out, nil
}

// EndpointAblation validates and measures the Theorem 2 endpoint enumeration
// against the brute-force sweep (Ablation 1).
type EndpointAblation struct {
	Keys            int
	Domain          int64
	OptCandidates   int
	BruteCandidates int
	Agree           bool
	OptMicros       int64
	BruteMicros     int64
}

// EndpointsVsBrute runs Ablation 1 on one uniform key set.
func EndpointsVsBrute(opts Options) (EndpointAblation, error) {
	opts = opts.fill()
	n := 2_000
	if opts.Scale == ScaleQuick {
		n = 500
	}
	domain := int64(n) * 500 // low density: brute force pays for the domain
	rng := opts.rng()
	ks, err := DistUniform.generate(rng, n, domain)
	if err != nil {
		return EndpointAblation{}, err
	}
	start := time.Now()
	// Pinned to the full scan so opt_candidates keeps the classic 2(n−1)
	// endpoint count this ablation's CSV has always recorded; the pruned
	// scan gets its own ablation rows in the perf sweep ("single" vs
	// "single-full" vs "brute").
	opt, err := core.OptimalSinglePoint(ks, core.WithFullScan())
	optD := time.Since(start)
	if err != nil {
		return EndpointAblation{}, err
	}
	start = time.Now()
	brt, err := core.BruteForceSinglePoint(ks)
	brtD := time.Since(start)
	if err != nil {
		return EndpointAblation{}, err
	}
	agree := opt.PoisonedLoss >= brt.PoisonedLoss*(1-1e-9) &&
		opt.PoisonedLoss <= brt.PoisonedLoss*(1+1e-9)
	return EndpointAblation{
		Keys:            n,
		Domain:          domain,
		OptCandidates:   opt.Candidates,
		BruteCandidates: brt.Candidates,
		Agree:           agree,
		OptMicros:       optD.Microseconds(),
		BruteMicros:     brtD.Microseconds(),
	}, nil
}

// VolumeAblation compares Algorithm 2's greedy exchanges against the fixed
// uniform allocation (the paper's "natural first attempt") — Ablation 2.
type VolumeAblation struct {
	Dist         Distribution
	UniformRatio float64 // RMI ratio with exchanges disabled
	GreedyRatio  float64 // RMI ratio with exchanges enabled
	Moves        int
}

// VolumeAllocation runs Ablation 2 on a log-normal key set, where skewed
// density makes allocation matter most.
func VolumeAllocation(opts Options) (VolumeAblation, error) {
	opts = opts.fill()
	n := 20_000
	if opts.Scale == ScaleQuick {
		n = 4_000
	}
	rng := opts.rng()
	ks, err := DistLogNormal.generate(rng, n, int64(n)*50)
	if err != nil {
		return VolumeAblation{}, err
	}
	N := n / 200
	base := core.RMIAttackOptions{NumModels: N, Percent: 10, Alpha: 3,
		MaxMoves: maxMovesFor(opts.Scale, N)}
	off := base
	off.DisableExchanges = true
	uniform, err := core.RMIAttack(ks, off)
	if err != nil {
		return VolumeAblation{}, err
	}
	greedy, err := core.RMIAttack(ks, base)
	if err != nil {
		return VolumeAblation{}, err
	}
	return VolumeAblation{
		Dist:         DistLogNormal,
		UniformRatio: uniform.RMIRatio(),
		GreedyRatio:  greedy.RMIRatio(),
		Moves:        greedy.Moves,
	}, nil
}

// AlphaCell is one row of Ablation 3: the per-model poisoning threshold.
type AlphaCell struct {
	Alpha     float64 // 0 = unbounded
	RMIRatio  float64
	MaxBudget int // largest per-model allocation the attack used
}

// AlphaSweep runs Ablation 3 on a log-normal key set with α ∈ {1, 2, 3, 0}.
func AlphaSweep(opts Options) ([]AlphaCell, error) {
	opts = opts.fill()
	n := 10_000
	if opts.Scale == ScaleQuick {
		n = 3_000
	}
	rng := opts.rng()
	ks, err := DistLogNormal.generate(rng, n, int64(n)*50)
	if err != nil {
		return nil, err
	}
	N := n / 200
	var out []AlphaCell
	for _, alpha := range []float64{1, 2, 3, 0} {
		atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
			NumModels: N, Percent: 10, Alpha: alpha,
			MaxMoves: maxMovesFor(opts.Scale, N),
		})
		if err != nil {
			return nil, err
		}
		maxB := 0
		for _, m := range atk.Models {
			if m.Budget > maxB {
				maxB = m.Budget
			}
		}
		out = append(out, AlphaCell{Alpha: alpha, RMIRatio: atk.RMIRatio(), MaxBudget: maxB})
	}
	return out, nil
}
