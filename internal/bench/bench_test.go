package bench

import (
	"math"
	"testing"
)

func quickOpts() Options { return Options{Scale: ScaleQuick, Seed: 7} }

func TestFig2(t *testing.T) {
	res, err := Fig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys.Len() != 10 {
		t.Fatalf("keys %d", res.Keys.Len())
	}
	if res.Keys.Contains(res.PoisonKey) {
		t.Fatal("poison key collides")
	}
	if res.After.Loss <= res.Before.Loss {
		t.Fatalf("poisoning did not increase loss: %v -> %v", res.Before.Loss, res.After.Loss)
	}
	if res.Ratio <= 1 {
		t.Fatalf("ratio %v", res.Ratio)
	}
	if res.After.N != 11 || res.Before.N != 10 {
		t.Fatalf("model sizes %d/%d", res.Before.N, res.After.N)
	}
}

func TestFig3(t *testing.T) {
	res, err := Fig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) == 0 {
		t.Fatal("empty sequence")
	}
	if len(res.Derivative) != len(res.Sequence)-1 {
		t.Fatalf("derivative %d for sequence %d", len(res.Derivative), len(res.Sequence))
	}
	if res.MaxExcess > 1e-9*(1+res.CleanLoss) {
		t.Fatalf("convexity violated: excess %v", res.MaxExcess)
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Poison) != 10 {
		t.Fatalf("poison count %d", len(res.Poison))
	}
	// Paper: 7.4×; seeds differ, assert the order of magnitude.
	if res.Ratio < 3 {
		t.Fatalf("fig4 ratio %v < 3", res.Ratio)
	}
	// Clustering diagnostic: poison keys land in wider-than-average gaps?
	// No — the paper's point is they cluster in DENSE areas; assert the
	// diagnostic exists and is positive rather than a specific direction.
	if res.MeanGapWidth <= 0 || res.MeanPoisonGapWidth <= 0 {
		t.Fatalf("gap diagnostics missing: %+v", res)
	}
}

func TestRegressionGridUniform(t *testing.T) {
	res, err := RegressionGrid(DistUniform, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*3*2 { // keys × densities × poison pcts
		t.Fatalf("cells %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if len(c.Ratios) != res.Trials {
			t.Fatalf("cell %+v has %d ratios", c, len(c.Ratios))
		}
		if c.Box.Median < 1 {
			t.Errorf("cell keys=%d dens=%v pct=%v: median ratio %v < 1",
				c.Keys, c.DensityPct, c.PoisonPct, c.Box.Median)
		}
	}
	// Shape: at fixed keys/poison, lower density → higher ratio (more room).
	var lo, hi float64
	for _, c := range res.Cells {
		if c.Keys == 400 && c.PoisonPct == 15 {
			switch c.DensityPct {
			case 5:
				lo = c.Box.Median
			case 80:
				hi = c.Box.Median
			}
		}
	}
	if lo <= hi {
		t.Errorf("density shape violated: 5%% density median %v <= 80%% median %v", lo, hi)
	}
	if res.MaxMedianRatio() < 5 {
		t.Errorf("max median ratio %v suspiciously small", res.MaxMedianRatio())
	}
}

func TestRegressionGridNormal(t *testing.T) {
	res, err := RegressionGrid(DistNormal, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Box.Median < 0.99 {
			t.Errorf("normal cell median %v < 1", c.Box.Median)
		}
	}
}

func TestRMISynthetic(t *testing.T) {
	res, err := RMISynthetic(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 2 * 2 * 2 // dist × domains × sizes × pcts × alphas
	if len(res.Cells) != want {
		t.Fatalf("cells %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.RMIRatio < 1-1e-9 {
			t.Errorf("cell %s size=%d pct=%v: RMI ratio %v < 1", c.Dist, c.ModelSize, c.PoisonPct, c.RMIRatio)
		}
		if c.Injected == 0 {
			t.Errorf("cell %s size=%d: nothing injected", c.Dist, c.ModelSize)
		}
		if c.Injected > c.Budget {
			t.Errorf("cell injected %d > budget %d", c.Injected, c.Budget)
		}
	}
	// Shape: larger models → larger ratios (fixed dist/domain/pct/alpha).
	var small, large float64
	for _, c := range res.Cells {
		if c.Dist == DistUniform && c.Domain == int64(res.Keys)*100 && c.PoisonPct == 10 && c.Alpha == 3 {
			switch c.ModelSize {
			case 40:
				small = c.RMIRatio
			case 400:
				large = c.RMIRatio
			}
		}
	}
	if large <= small {
		t.Errorf("model-size shape violated: size-400 ratio %v <= size-40 ratio %v", large, small)
	}
}

func TestRealDataSalaries(t *testing.T) {
	res, err := RealData(DatasetSalaries, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 { // quick: 2 sizes × 2 pcts
		t.Fatalf("cells %d", len(res.Cells))
	}
	if res.MaxRMIRatio() < 1.5 {
		t.Errorf("salaries max RMI ratio %v too small", res.MaxRMIRatio())
	}
	if len(res.CDFKeys) == 0 || len(res.CDFKeys) != len(res.CDFRanks) {
		t.Fatal("CDF series missing")
	}
}

func TestRealDataOSM(t *testing.T) {
	res, err := RealData(DatasetOSM, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRMIRatio() < 1.5 {
		t.Errorf("osm max RMI ratio %v too small", res.MaxRMIRatio())
	}
	if res.Density <= 0 {
		t.Error("density missing")
	}
}

func TestLookupDegradation(t *testing.T) {
	cells, err := LookupDegradation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells %d", len(cells))
	}
	for _, c := range cells {
		if c.PoisonedAvgWindow <= c.CleanAvgWindow {
			t.Errorf("%s: poisoned window %v not wider than clean %v",
				c.Dist, c.PoisonedAvgWindow, c.CleanAvgWindow)
		}
		if c.PoisonedProbes <= 0 || c.CleanProbes <= 0 {
			t.Errorf("%s: probes missing", c.Dist)
		}
		if c.SecondStageMSEGain <= 1 {
			t.Errorf("%s: second-stage MSE gain %v <= 1", c.Dist, c.SecondStageMSEGain)
		}
	}
}

func TestCompareBackends(t *testing.T) {
	cells, err := CompareBackends(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BackendCell{}
	for _, c := range cells {
		byName[c.Backend] = c
		if c.CleanProbes <= 0 || c.PoisonedProbes <= 0 {
			t.Fatalf("%s: probes missing: %+v", c.Backend, c)
		}
	}
	for _, name := range []string{"dynamic", "rmi-single", "shard-4", "alex", "btree"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("backend %s missing from the sweep", name)
		}
	}
	// The learned backends pay for the poison; the B-Tree is the control
	// whose probe count barely moves — the comparison the sweep exists for.
	for _, name := range []string{"dynamic", "rmi-single", "shard-4", "alex"} {
		if c := byName[name]; c.ProbeInflation <= 1 {
			t.Errorf("%s: probe inflation %v <= 1 after poisoning", name, c.ProbeInflation)
		}
	}
	if bt := byName["btree"]; bt.ProbeInflation > 1.10 {
		t.Errorf("btree probe inflation %v — balanced control should barely move", bt.ProbeInflation)
	}
	if bt := byName["btree"]; bt.CleanWindow != 0 || bt.Retrains != 0 {
		t.Errorf("btree reports model stats: %+v", bt)
	}
	// Every substrate has a guarded twin, the guard leaves the CLEAN build's
	// probes untouched (detectors only screen inserts), and on the learned
	// backends the screen recovers damage — guarded inflation strictly below
	// bare inflation.
	for _, name := range []string{"dynamic", "rmi-single", "shard-4", "alex", "btree"} {
		g, ok := byName["guarded-"+name]
		if !ok {
			t.Fatalf("guarded twin of %s missing from the sweep", name)
		}
		if g.CleanProbes != byName[name].CleanProbes {
			t.Errorf("guarded-%s clean probes %v != bare %v — a guard must not touch reads",
				name, g.CleanProbes, byName[name].CleanProbes)
		}
		if name != "btree" && g.ProbeInflation >= byName[name].ProbeInflation {
			t.Errorf("guarded-%s inflation %v did not improve on bare %v",
				name, g.ProbeInflation, byName[name].ProbeInflation)
		}
	}
}

func TestTrimDefense(t *testing.T) {
	cells, err := TrimDefense(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells %d", len(cells))
	}
	for _, c := range cells {
		if c.AttackRatio <= 1 {
			t.Errorf("pct=%v: attack ratio %v", c.PoisonPct, c.AttackRatio)
		}
		if c.Recall < 0 || c.Recall > 1 || c.Precision < 0 || c.Precision > 1 {
			t.Errorf("pct=%v: bad precision/recall %v/%v", c.PoisonPct, c.Precision, c.Recall)
		}
	}
}

func TestEndpointsVsBrute(t *testing.T) {
	res, err := EndpointsVsBrute(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agree {
		t.Fatal("endpoint enumeration disagrees with brute force")
	}
	if res.OptCandidates >= res.BruteCandidates {
		t.Fatalf("endpoint candidates %d not fewer than brute %d", res.OptCandidates, res.BruteCandidates)
	}
}

func TestVolumeAllocation(t *testing.T) {
	res, err := VolumeAllocation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyRatio < res.UniformRatio*(1-1e-9) {
		t.Fatalf("greedy allocation %v below uniform %v", res.GreedyRatio, res.UniformRatio)
	}
}

func TestAlphaSweep(t *testing.T) {
	cells, err := AlphaSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells %d", len(cells))
	}
	for _, c := range cells {
		if math.IsNaN(c.RMIRatio) || c.RMIRatio < 1-1e-9 {
			t.Errorf("alpha=%v ratio %v", c.Alpha, c.RMIRatio)
		}
	}
}

func TestPLAInflation(t *testing.T) {
	cells, err := PLAInflation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells %d", len(cells))
	}
	for _, c := range cells {
		// The burst attack must inflate the segmentation and must beat the
		// loss-optimal attack at the same budget (the non-transferability
		// finding of Extension F).
		if c.BurstInflation <= 1 {
			t.Errorf("eps=%d: burst inflation %v <= 1", c.Epsilon, c.BurstInflation)
		}
		if c.BurstInflation < c.LossInflation {
			t.Errorf("eps=%d: burst (%v) below loss-attack (%v)", c.Epsilon, c.BurstInflation, c.LossInflation)
		}
		if c.BurstBytes <= c.CleanBytes {
			t.Errorf("eps=%d: memory did not grow", c.Epsilon)
		}
	}
	// Larger epsilon → fewer segments.
	if cells[0].CleanSegments <= cells[2].CleanSegments {
		t.Error("epsilon/segments shape violated")
	}
}

func TestQuadraticMitigation(t *testing.T) {
	cell, err := QuadraticMitigation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if cell.LinearRatio <= 1 {
		t.Fatalf("linear ratio %v", cell.LinearRatio)
	}
	// The finding this experiment pins (supporting the paper's skepticism
	// about model-upgrade mitigations, §VI): even though the attack was
	// optimized against the LINEAR model, the quadratic second stage does
	// not meaningfully resist it — the poison cluster bends the CDF locally,
	// which a parabola absorbs no better than a line, while costing an
	// extra parameter. Assert the attack substantially survives.
	if cell.QuadRatio < 0.5*cell.LinearRatio {
		t.Fatalf("quadratic unexpectedly mitigated the attack (%v vs %v); update EXPERIMENTS.md",
			cell.QuadRatio, cell.LinearRatio)
	}
	// The quadratic does fit the clean data at least as well (it subsumes
	// the linear model).
	if cell.QuadCleanLoss > cell.LinearCleanLoss*(1+1e-9) {
		t.Fatalf("quad clean loss %v above linear %v", cell.QuadCleanLoss, cell.LinearCleanLoss)
	}
	if cell.ParamsQuad != 3 || cell.ParamsLinear != 2 {
		t.Fatal("parameter accounting")
	}
}

func TestAdversaryComparison(t *testing.T) {
	cell, err := AdversaryComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]float64{
		"insertion": cell.InsertionRatio,
		"removal":   cell.RemovalRatio,
		"modify":    cell.ModifyRatio,
	} {
		if r < 1 {
			t.Errorf("%s ratio %v < 1", name, r)
		}
	}
	// Modification subsumes removal+insertion per step and empirically
	// dominates pure insertion at equal budget.
	if cell.ModifyRatio < cell.InsertionRatio {
		t.Errorf("modification (%v) weaker than insertion (%v)", cell.ModifyRatio, cell.InsertionRatio)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Fig4(Options{Scale: ScaleQuick, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(Options{Scale: ScaleQuick, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || !a.Poisoned.Equal(b.Poisoned) {
		t.Fatal("Fig4 not deterministic")
	}
	c, err := Fig4(Options{Scale: ScaleQuick, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Poisoned.Equal(a.Poisoned) {
		t.Fatal("different seeds produced identical data")
	}
}
