package bench

import (
	"reflect"
	"runtime"
	"testing"
)

// equivWorkers compares sequential against a forced multi-goroutine pool
// and, when different, the host's core count — the workers=1 vs
// workers=NumCPU equivalence criterion.
func equivWorkers() []int {
	counts := []int{4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func quick(workers int) Options {
	return Options{Scale: ScaleQuick, Seed: 42, Workers: workers}
}

// TestRegressionGridWorkerEquivalence: the full Figure 5 sweep — every
// cell, every ratio, every boxplot — must be byte-identical across worker
// counts.
func TestRegressionGridWorkerEquivalence(t *testing.T) {
	want, err := RegressionGrid(DistUniform, quick(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range equivWorkers() {
		got, err := RegressionGrid(DistUniform, quick(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Figure 5 sweep diverged from sequential", w)
		}
	}
}

// TestRMISyntheticWorkerEquivalence: the Figure 6 sweep (Algorithm 2 per
// cell) must be identical across worker counts.
func TestRMISyntheticWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("RMI sweep equivalence is not short")
	}
	want, err := RMISynthetic(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range equivWorkers() {
		got, err := RMISynthetic(quick(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Figure 6 sweep diverged from sequential", w)
		}
	}
}

// TestRealDataWorkerEquivalence: the Figure 7 sweep on the simulated
// Miami salary dataset must be identical across worker counts.
func TestRealDataWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("real-data sweep equivalence is not short")
	}
	want, err := RealData(DatasetSalaries, quick(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range equivWorkers() {
		got, err := RealData(DatasetSalaries, quick(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Figure 7 sweep diverged from sequential", w)
		}
	}
}

// TestFig2to4WorkerEquivalence: the small single-attack figures route the
// worker budget into the core attack itself; outputs must not move.
func TestFig2to4WorkerEquivalence(t *testing.T) {
	want2, err := Fig2(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	want3, err := Fig3(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	want4, err := Fig4(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range equivWorkers() {
		got2, err := Fig2(quick(w))
		if err != nil {
			t.Fatalf("fig2 workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got2, want2) {
			t.Fatalf("workers=%d: Figure 2 diverged from sequential", w)
		}
		got3, err := Fig3(quick(w))
		if err != nil {
			t.Fatalf("fig3 workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got3, want3) {
			t.Fatalf("workers=%d: Figure 3 diverged from sequential", w)
		}
		got4, err := Fig4(quick(w))
		if err != nil {
			t.Fatalf("fig4 workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got4, want4) {
			t.Fatalf("workers=%d: Figure 4 diverged from sequential", w)
		}
	}
}
