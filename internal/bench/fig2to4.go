package bench

import (
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// Fig2Result reproduces Figure 2: the compound effect of a single optimal
// poisoning key on a small CDF — regression line before and after, and the
// rank shift of every legitimate key.
type Fig2Result struct {
	Keys      keys.Set
	PoisonKey int64
	Rank      int
	Before    regression.Model // fitted on the clean 10-key CDF
	After     regression.Model // fitted on the poisoned 11-key CDF
	Ratio     float64
}

// Fig2 runs the Figure 2 experiment: n=10 uniform keys over domain [0, 41),
// one optimal poisoning key.
func Fig2(opts Options) (Fig2Result, error) {
	opts = opts.fill()
	rng := opts.rng()
	ks, err := dataset.Uniform(rng, 10, 41)
	if err != nil {
		return Fig2Result{}, err
	}
	// A saturated draw (no interior gap) cannot illustrate the attack;
	// with n=10 over 41 slots this is astronomically unlikely, but keep the
	// retry explicit so the runner never fails spuriously.
	for attempt := 0; ks.Saturated() && attempt < 100; attempt++ {
		ks, err = dataset.Uniform(rng, 10, 41)
		if err != nil {
			return Fig2Result{}, err
		}
	}
	sp, err := core.OptimalSinglePoint(ks, opts.coreOpts()...)
	if err != nil {
		return Fig2Result{}, fmt.Errorf("bench: fig2 attack: %w", err)
	}
	before, err := regression.FitCDF(ks)
	if err != nil {
		return Fig2Result{}, err
	}
	poisoned, _ := ks.Insert(sp.Key)
	after, err := regression.FitCDF(poisoned)
	if err != nil {
		return Fig2Result{}, err
	}
	return Fig2Result{
		Keys:      ks,
		PoisonKey: sp.Key,
		Rank:      sp.Rank,
		Before:    before,
		After:     after,
		Ratio:     sp.RatioLoss(),
	}, nil
}

// Fig3Result reproduces Figure 3: the loss sequence L(kp) over the key
// space, its first discrete derivative, and the per-gap convexity check.
type Fig3Result struct {
	Keys       keys.Set
	CleanLoss  float64
	Sequence   []core.LossPoint
	Derivative []core.LossPoint
	Convexity  []core.GapConvexityReport
	// MaxExcess is the largest amount by which an interior candidate beat
	// the gap endpoints (Theorem 2 predicts <= floating-point noise).
	MaxExcess float64
}

// Fig3 evaluates the loss sequence on the same keyset family as Figure 2.
func Fig3(opts Options) (Fig3Result, error) {
	opts = opts.fill()
	rng := opts.rng()
	ks, err := dataset.Uniform(rng, 10, 41)
	if err != nil {
		return Fig3Result{}, err
	}
	for attempt := 0; ks.Saturated() && attempt < 100; attempt++ {
		ks, err = dataset.Uniform(rng, 10, 41)
		if err != nil {
			return Fig3Result{}, err
		}
	}
	seq, clean, err := core.LossSequence(ks, opts.coreOpts()...)
	if err != nil {
		return Fig3Result{}, err
	}
	conv, err := core.CheckGapConvexity(ks, opts.coreOpts()...)
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{
		Keys:       ks,
		CleanLoss:  clean,
		Sequence:   seq,
		Derivative: core.DiscreteDerivative(seq),
		Convexity:  conv,
	}
	for _, r := range conv {
		if r.Excess > res.MaxExcess {
			res.MaxExcess = r.Excess
		}
	}
	return res, nil
}

// Fig4Result reproduces Figure 4: the greedy multi-point attack on 90
// uniform keys with 10 poisoning keys (the paper reports a 7.4× error
// increase and poison keys clustering in dense regions).
type Fig4Result struct {
	Keys     keys.Set
	Poison   []int64
	Poisoned keys.Set
	Before   regression.Model
	After    regression.Model
	Ratio    float64
	// MeanPoisonGapWidth diagnoses clustering: the mean width of the gaps
	// the poison keys landed in, compared against the mean gap width.
	MeanGapWidth       float64
	MeanPoisonGapWidth float64
}

// Fig4 runs the Figure 4 experiment (n=90, domain 480, p=10).
func Fig4(opts Options) (Fig4Result, error) {
	opts = opts.fill()
	rng := opts.rng()
	ks, err := dataset.Uniform(rng, 90, 480)
	if err != nil {
		return Fig4Result{}, err
	}
	// Record gap geometry before the attack for the clustering diagnostic.
	gapOf := map[int64]float64{} // key in gap → gap width
	var totalWidth float64
	gaps := ks.Gaps()
	for _, g := range gaps {
		totalWidth += float64(g.Width())
		for k := g.Lo; k <= g.Hi; k++ {
			gapOf[k] = float64(g.Width())
		}
	}
	g, err := core.GreedyMultiPoint(ks, 10, opts.coreOpts()...)
	if err != nil {
		return Fig4Result{}, err
	}
	before, err := regression.FitCDF(ks)
	if err != nil {
		return Fig4Result{}, err
	}
	after, err := regression.FitCDF(g.Poisoned)
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{
		Keys:     ks,
		Poison:   g.Poison,
		Poisoned: g.Poisoned,
		Before:   before,
		After:    after,
		Ratio:    g.RatioLoss(),
	}
	if len(gaps) > 0 {
		res.MeanGapWidth = totalWidth / float64(len(gaps))
	}
	var sum float64
	var cnt int
	for _, p := range g.Poison {
		if w, ok := gapOf[p]; ok {
			sum += w
			cnt++
		}
	}
	if cnt > 0 {
		res.MeanPoisonGapWidth = sum / float64(cnt)
	}
	return res, nil
}
