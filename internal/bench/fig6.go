package bench

import (
	"context"
	"fmt"
	"math"

	"cdfpoison/internal/core"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/stats"
)

// RMICell is one boxplot group of Figure 6: a fixed (distribution, domain,
// model size, poisoning %, alpha) configuration of the two-stage RMI attack.
type RMICell struct {
	Dist      Distribution
	Keys      int
	Domain    int64
	ModelSize int
	NumModels int
	PoisonPct float64
	Alpha     float64

	// PerModelRatios feed the boxplot; RMIRatio is the black horizontal
	// line (poisoned L_RMI over clean L_RMI).
	PerModelRatios []float64
	Box            stats.Boxplot
	RMIRatio       float64
	MaxModelRatio  float64 // headline: individual second-stage model, up to 3000×
	Moves          int
	Injected       int
	Budget         int
}

// RMISyntheticResult is the Figure 6 sweep.
type RMISyntheticResult struct {
	Keys  int
	Cells []RMICell
}

// rmiShape returns (n, model sizes, domain multipliers, poisoning
// percentages, alphas) per scale. Domain multipliers ×5 and ×100 mirror the
// paper's 5·10⁷ and 10⁹ domains for n=10⁷ keys (20% and 1% density).
func rmiShape(s Scale) (n int, modelSizes []int, domainMults []int64, poisonPcts []float64, alphas []float64) {
	switch s {
	case ScaleQuick:
		return 4_000, []int{40, 400}, []int64{5, 100}, []float64{5, 10}, []float64{2, 3}
	case ScaleLarge:
		return 100_000, []int{100, 1000, 10000}, []int64{5, 100}, []float64{1, 5, 10}, []float64{2, 3}
	default:
		return 30_000, []int{100, 1000, 10000}, []int64{5, 100}, []float64{1, 5, 10}, []float64{2, 3}
	}
}

// RMISynthetic runs the Figure 6 sweep: Algorithm 2 against uniform and
// log-normal(0, 2) key sets across RMI architectures (many small models →
// few large models), poisoning percentages, and per-model thresholds α.
func RMISynthetic(opts Options) (RMISyntheticResult, error) {
	opts = opts.fill()
	n, modelSizes, domainMults, poisonPcts, alphas := rmiShape(opts.Scale)
	root := opts.rng()
	pool := opts.pool()
	res := RMISyntheticResult{Keys: n}
	for _, dist := range []Distribution{DistUniform, DistLogNormal} {
		for _, mult := range domainMults {
			m := int64(n) * mult
			cellRng := root.Split()
			ks, err := dist.generate(cellRng, n, m)
			if err != nil {
				return RMISyntheticResult{}, fmt.Errorf("bench: fig6 %s domain=%d: %w", dist, m, err)
			}
			// Every (model size, poisoning %, alpha) attack on this dataset
			// is independent; fan them out and append cells in the original
			// size-major iteration order.
			type combo struct {
				size       int
				pct, alpha float64
			}
			var combos []combo
			for _, size := range modelSizes {
				for _, pct := range poisonPcts {
					for _, alpha := range alphas {
						combos = append(combos, combo{size: size, pct: pct, alpha: alpha})
					}
				}
			}
			cells, err := engine.Map(context.Background(), pool, len(combos), func(i int) (RMICell, error) {
				c := combos[i]
				N := n / c.size
				if N < 1 {
					N = 1
				}
				atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
					NumModels: N,
					Percent:   c.pct,
					Alpha:     c.alpha,
					MaxMoves:  maxMovesFor(opts.Scale, N),
				})
				if err != nil {
					return RMICell{}, fmt.Errorf("bench: fig6 attack %s size=%d pct=%v α=%v: %w", dist, c.size, c.pct, c.alpha, err)
				}
				return newRMICell(dist, n, m, c.size, c.pct, c.alpha, atk), nil
			})
			if err != nil {
				return RMISyntheticResult{}, err
			}
			res.Cells = append(res.Cells, cells...)
		}
	}
	return res, nil
}

// maxMovesFor bounds the exchange phase so single-core sweeps stay tractable
// (each move costs two greedy re-attacks on ~model-size keys).
func maxMovesFor(s Scale, numModels int) int {
	cap := 2 * numModels
	var lid int
	switch s {
	case ScaleQuick:
		lid = 16
	case ScaleLarge:
		lid = 60
	default:
		lid = 30
	}
	if cap > lid {
		cap = lid
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

func newRMICell(dist Distribution, n int, m int64, size int, pct, alpha float64, atk core.RMIAttackResult) RMICell {
	cell := RMICell{
		Dist:      dist,
		Keys:      n,
		Domain:    m,
		ModelSize: size,
		NumModels: len(atk.Models),
		PoisonPct: pct,
		Alpha:     alpha,
		RMIRatio:  atk.RMIRatio(),
		Moves:     atk.Moves,
		Injected:  atk.Injected,
		Budget:    atk.Budget,
	}
	cell.PerModelRatios = atk.PerModelRatios()
	for _, r := range cell.PerModelRatios {
		if r > cell.MaxModelRatio && !math.IsInf(r, 0) {
			cell.MaxModelRatio = r
		}
	}
	if len(cell.PerModelRatios) > 0 {
		cell.Box = stats.NewBoxplot(cell.PerModelRatios)
	}
	return cell
}

// MaxRMIRatio returns the largest RMI-level ratio across cells, optionally
// filtered by distribution ("" = all) — the headline "up to 300×" number.
func (r RMISyntheticResult) MaxRMIRatio(dist Distribution) float64 {
	best := 0.0
	for _, c := range r.Cells {
		if dist != "" && c.Dist != dist {
			continue
		}
		if !math.IsInf(c.RMIRatio, 0) && c.RMIRatio > best {
			best = c.RMIRatio
		}
	}
	return best
}

// MaxModelRatioOverall returns the largest finite per-model ratio across
// cells — the headline "individual model error up to 3000×" number.
func (r RMISyntheticResult) MaxModelRatioOverall(dist Distribution) float64 {
	best := 0.0
	for _, c := range r.Cells {
		if dist != "" && c.Dist != dist {
			continue
		}
		if c.MaxModelRatio > best {
			best = c.MaxModelRatio
		}
	}
	return best
}
