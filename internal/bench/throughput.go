package bench

// The concurrent-serving throughput sweep ("-fig throughput" in lisbench):
// the tail-latency expression of the paper's attack. Each cell runs the
// serve scenario TWICE on the goroutine-concurrent plane — clean
// (EpochBudget 0) and poisoned (greedy multi-point oracle) — under one
// workload mix and rebuild-cost model, and reports per-epoch probe-latency
// percentiles (p50/p99/p999, deterministic HDR-style histograms) plus
// wall-clock ops/sec.
//
// Determinism split: every EpochMetrics field is a pure function of (seed,
// shape) — identical for any reader count, batch size, or machine — so the
// CSV the cmd layer renders is fingerprintable (EXPERIMENTS.md). The
// ops/sec figures are wall-clock and machine-dependent: they are reported
// on stdout and captured by the perf harness (BENCH_PR6.json), never
// placed in the CSV.

import (
	"context"
	"fmt"
	"time"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/serve"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/workload"
)

// GreedyOracle adapts the paper's greedy multi-point attack (Algorithm 1)
// to the serving plane's per-epoch poison oracle.
func GreedyOracle(opts ...core.Option) serve.Oracle {
	return func(visible keys.Set, budget int) ([]int64, error) {
		g, err := core.GreedyMultiPoint(visible, budget, opts...)
		if err != nil {
			return nil, err
		}
		return g.Poison, nil
	}
}

// ThroughputCell is one (workload mix × rebuild-cost model) cell: the
// clean and poisoned per-epoch trajectories plus headline summaries.
type ThroughputCell struct {
	Workload  workload.Spec
	Cost      index.CostModel
	BudgetPct float64
	Budget    int
	Clean     []serve.EpochMetrics
	Poisoned  []serve.EpochMetrics
	// Wall-clock throughput of each run — machine-dependent, stdout/perf
	// artifact only, never part of the fingerprinted CSV.
	CleanOpsPerSec    float64
	PoisonedOpsPerSec float64
	// Summaries over the deterministic trajectories: worst poisoned/clean
	// tail-latency ratios, final loss ratio, worst poisoned stale fraction.
	MaxP99Ratio    float64
	MaxP999Ratio   float64
	FinalLossRatio float64
	MaxStaleFrac   float64
}

// ThroughputSweepResult is the full sweep: shared shape plus the cells.
type ThroughputSweepResult struct {
	Keys          int
	Domain        int64
	Shards        int
	Policy        dynamic.RetrainPolicy
	EpochsPerCell int
	OpsPerEpoch   int
	// Readers/BatchSize echo the plane knobs the sweep ran with (wall-clock
	// context for the stdout report; no metric depends on them).
	Readers   int
	BatchSize int
	Cells     []ThroughputCell
}

// throughputShape returns the sweep parameters per scale: a sharded
// buffer-policy victim (organic retrain triggers, the churn regime) served
// under three workload mixes × two rebuild-cost models.
func throughputShape(s Scale) (n, epochs, opsPerEpoch, shards, bufferK int, budgetPct float64, costs []index.CostModel, mixes []workload.Spec) {
	costs = []index.CostModel{
		{Fixed: 40},                        // flat rebuild cost
		{Fixed: 10, PerKey: 25, Unit: 100}, // size-proportional
	}
	mixes = []workload.Spec{
		workload.NewUniform(90),
		workload.NewZipf(1.1, 90),
		workload.NewHotspot(2, 90),
	}
	switch s {
	case ScaleQuick:
		return 400, 3, 60, 4, 12, 3, costs, mixes
	case ScaleLarge:
		return 20_000, 8, 2_000, 16, 256, 1, costs, mixes
	default:
		return 4_000, 5, 400, 8, 64, 2, costs, mixes
	}
}

// ThroughputSweep runs the concurrent serving scenario across workload
// mixes and rebuild-cost models, clean vs poisoned. The initial key set is
// drawn once and every run uses the SAME Options.Seed, so cells differ
// only in mix and cost, and the clean/poisoned pair of a cell sees the
// byte-identical honest stream. Cells run sequentially — the concurrency
// lives INSIDE each run (Options.Workers reader goroutines), so fanning
// cells out as well would oversubscribe the host and distort ops/sec.
func ThroughputSweep(opts Options) (ThroughputSweepResult, error) {
	opts = opts.fill()
	n, epochs, opsPerEpoch, shards, bufferK, budgetPct, costs, mixes := throughputShape(opts.Scale)
	domain := int64(n) * 40
	policy := dynamic.BufferLimit(bufferK)
	budget := int(float64(n) * budgetPct / 100)
	if budget < 1 {
		budget = 1
	}

	root := opts.rng()
	ks, err := DistUniform.generate(root.Split(), n, domain)
	if err != nil {
		return ThroughputSweepResult{}, fmt.Errorf("bench: throughput initial set: %w", err)
	}

	plane := serve.Options{Readers: opts.Workers}.WithDefaults()
	res := ThroughputSweepResult{
		Keys:          n,
		Domain:        domain,
		Shards:        shards,
		Policy:        policy,
		EpochsPerCell: epochs,
		OpsPerEpoch:   opsPerEpoch,
		Readers:       plane.Readers,
		BatchSize:     plane.BatchSize,
	}
	for _, mix := range mixes {
		for _, cost := range costs {
			base := serve.ScenarioOptions{
				Epochs:      epochs,
				OpsPerEpoch: opsPerEpoch,
				Workload:    mix,
				Domain:      domain,
				Seed:        opts.Seed,
				Cost:        cost,
				Oracle:      GreedyOracle(),
			}
			cell := ThroughputCell{Workload: mix, Cost: cost, BudgetPct: budgetPct, Budget: budget}

			run := func(budget int) ([]serve.EpochMetrics, float64, error) {
				b, err := shard.New(ks, shards, policy)
				if err != nil {
					return nil, 0, err
				}
				o := base
				o.EpochBudget = budget
				start := time.Now()
				m, err := serve.RunConcurrent(context.Background(), b, o, plane)
				if err != nil {
					return nil, 0, err
				}
				elapsed := time.Since(start)
				ops := 0
				for _, e := range m {
					ops += e.Reads + e.Writes + e.Injected
				}
				return m, float64(ops) / elapsed.Seconds(), nil
			}
			if cell.Clean, cell.CleanOpsPerSec, err = run(0); err != nil {
				return ThroughputSweepResult{}, fmt.Errorf("bench: throughput clean cell %s/%s: %w", mix, cost, err)
			}
			if cell.Poisoned, cell.PoisonedOpsPerSec, err = run(budget); err != nil {
				return ThroughputSweepResult{}, fmt.Errorf("bench: throughput poisoned cell %s/%s: %w", mix, cost, err)
			}

			for e := range cell.Poisoned {
				p, c := cell.Poisoned[e], cell.Clean[e]
				if r := core.SafeRatio(float64(p.P99), float64(c.P99)); r > cell.MaxP99Ratio {
					cell.MaxP99Ratio = r
				}
				if r := core.SafeRatio(float64(p.P999), float64(c.P999)); r > cell.MaxP999Ratio {
					cell.MaxP999Ratio = r
				}
				if p.StaleFrac > cell.MaxStaleFrac {
					cell.MaxStaleFrac = p.StaleFrac
				}
			}
			last := len(cell.Poisoned) - 1
			cell.FinalLossRatio = core.SafeRatio(cell.Poisoned[last].ContentLoss, cell.Clean[last].ContentLoss)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// MaxP999Ratio returns the worst poisoned/clean p999 ratio across cells —
// the sweep's headline number.
func (r ThroughputSweepResult) MaxP999Ratio() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.MaxP999Ratio > best {
			best = c.MaxP999Ratio
		}
	}
	return best
}
