package bench

import (
	"context"
	"fmt"
	"strings"

	"cdfpoison/internal/core"
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
	"cdfpoison/internal/workload"
)

// DefenseCell is one (scenario × defense strength) cell of the Pareto sweep:
// the scenario's headline victim/clean damage ratio under that defense, its
// reduction relative to the undefended run, and the honest-traffic price the
// defense charged for it (measured on the clean twin, which runs the
// identical defense over a pure-honest stream).
type DefenseCell struct {
	// Scenario is one of "static", "online", "serve", "churn", "cascade".
	Scenario string
	// Strength labels the defense tier: "off", "mid", "full". "off" is the
	// zero DefenseSpec — byte-identical to the undefended scenario, which
	// the golden tests pin.
	Strength string
	// Spec is the human-readable defense configuration ("none" when off).
	Spec string
	// Damage is the scenario's headline victim/clean ratio under this
	// defense: content-loss ratio (static/online/serve), rebuild-tick ratio
	// (churn), structural-cost ratio (cascade).
	Damage float64
	// Excess is max(Damage-1, 0): the part of the ratio the attacker
	// actually caused — a clean run sits at exactly 1.
	Excess float64
	// Reduction is excess(off)/excess(this cell): ≥ 2 means the defense
	// halved the attacker's damage. 1 by definition for the off cell.
	Reduction float64
	// Overhead is the fraction of the clean twin's honest write attempts
	// the defense flagged or throttled — the false-positive price.
	Overhead float64
	// PoisonBlocked is the fraction of the attacker's write attempts the
	// defense stopped.
	PoisonBlocked float64
	// Report is the full defense-plane accounting.
	Report core.DefenseReport
	// Frontier marks cells on the scenario's Pareto frontier: no other cell
	// of the same scenario has both no-worse overhead and strictly better
	// reduction (or equal reduction at strictly lower overhead).
	Frontier bool
}

// DefenseSweepResult is the attack-vs-defense Pareto sweep ("-fig defense"
// in lisbench): all five attack scenarios, each at three defense strengths,
// over shared per-scenario key sets and streams so that within a scenario
// the defense is the ONLY variable.
type DefenseSweepResult struct {
	Cells []DefenseCell
}

// defenseConfig is one defense tier of a scenario.
type defenseConfig struct {
	strength string
	spec     core.DefenseSpec
}

// defenseScenario couples a scenario's name and defense roster with a
// closure running it at one spec. Closures capture the scenario's key set
// and fixed options, so every tier sees identical streams.
type defenseScenario struct {
	name    string
	configs []defenseConfig
	run     func(spec core.DefenseSpec) (damage float64, rep core.DefenseReport, err error)
}

// defenseDims sizes the five scenarios per scale. Budgets and op counts
// track the corresponding single-scenario sweeps (serveShape, churnShape,
// cascadeShape) at each scale; the static scenario keeps its honest writes
// inside the initial key range, because out-of-range writes stretch both
// twins' CDFs and drown the attack signal in shared honest loss.
type defenseDims struct {
	staticN, staticBudget, staticHonest    int
	onlineN, onlineEpochs, onlineBudget    int
	onlineArrivals                         int
	serveN, serveEpochs, serveOps          int
	serveBudget, serveShards               int
	churnN, churnEpochs, churnOps          int
	churnBudget, churnShards, churnBufferK int
	cascadeN, cascadeEpochs, cascadeOps    int
	cascadeBudget, cascadeLeaf             int
}

func defenseShape(s Scale) defenseDims {
	switch s {
	case ScaleQuick:
		return defenseDims{
			staticN: 300, staticBudget: 30, staticHonest: 120,
			onlineN: 300, onlineEpochs: 3, onlineBudget: 15, onlineArrivals: 6,
			serveN: 400, serveEpochs: 3, serveOps: 60, serveBudget: 20, serveShards: 4,
			churnN: 400, churnEpochs: 3, churnOps: 80, churnBudget: 24, churnShards: 4, churnBufferK: 8,
			cascadeN: 200, cascadeEpochs: 4, cascadeOps: 120, cascadeBudget: 30, cascadeLeaf: 16,
		}
	case ScaleLarge:
		return defenseDims{
			staticN: 10_000, staticBudget: 1_000, staticHonest: 4_000,
			onlineN: 10_000, onlineEpochs: 8, onlineBudget: 500, onlineArrivals: 200,
			serveN: 20_000, serveEpochs: 8, serveOps: 2_000, serveBudget: 400, serveShards: 16,
			churnN: 20_000, churnEpochs: 8, churnOps: 2_000, churnBudget: 400, churnShards: 16, churnBufferK: 256,
			cascadeN: 5_000, cascadeEpochs: 8, cascadeOps: 2_000, cascadeBudget: 500, cascadeLeaf: 32,
		}
	default:
		return defenseDims{
			staticN: 2_000, staticBudget: 200, staticHonest: 800,
			onlineN: 2_000, onlineEpochs: 6, onlineBudget: 100, onlineArrivals: 40,
			serveN: 4_000, serveEpochs: 6, serveOps: 400, serveBudget: 80, serveShards: 8,
			churnN: 4_000, churnEpochs: 6, churnOps: 400, churnBudget: 80, churnShards: 8, churnBufferK: 64,
			cascadeN: 1_000, cascadeEpochs: 6, cascadeOps: 400, cascadeBudget: 100, cascadeLeaf: 16,
		}
	}
}

// defenseChain parses a policy-chain spec that is a compile-time constant of
// this package; a parse failure is a programming error.
func defenseChain(spec string) []defense.Policy {
	ps, err := defense.ParsePolicyChain(spec)
	if err != nil {
		panic(fmt.Sprintf("bench: bad built-in defense chain %q: %v", spec, err))
	}
	return ps
}

// SpecLabel renders a DefenseSpec for CSV and log output; "none" for the
// zero spec.
func SpecLabel(d core.DefenseSpec) string {
	if !d.Enabled() {
		return "none"
	}
	var parts []string
	if len(d.Policies) > 0 {
		parts = append(parts, defense.ChainSpec(d.Policies))
	}
	if d.Fitter != nil {
		parts = append(parts, "fit="+d.Fitter.Name())
	}
	if d.RateBudget >= 1 && d.RateWindow >= 1 {
		parts = append(parts, fmt.Sprintf("rate=%d/%d", d.RateBudget, d.RateWindow))
	}
	if d.Sources > 1 {
		parts = append(parts, fmt.Sprintf("sources=%d", d.Sources))
	}
	if d.BalancedSplit {
		parts = append(parts, "balanced-split")
	}
	return strings.Join(parts, "+")
}

// DefenseSweep runs every attack scenario at three defense strengths and
// reports the Pareto trade-off between attack-damage reduction and
// honest-traffic overhead. Per scenario, the key set and operation streams
// are FIXED across tiers — the defense is the only variable — and the "off"
// tier is the zero DefenseSpec, byte-identical to the undefended scenario
// (TestDefenseSweepZeroStrengthGolden). Cells fan out across
// Options.Workers with sequential inner attacks; the Pareto pass folds in
// deterministic cell order, so results are identical for every worker
// count.
func DefenseSweep(opts Options) (DefenseSweepResult, error) {
	opts = opts.fill()
	dims := defenseShape(opts.Scale)
	root := opts.rng()

	// The screening chain the greedy oracles cannot dodge: Algorithm 1 and
	// the per-epoch regression oracle both pile poison into dense clusters,
	// which the density and dup-mass screens price up.
	const screenChain = "density:8:3|dupmass:3:3"

	var scenarios []defenseScenario

	// --- static: one-shot Algorithm 1 drip through the write path ---
	staticKS, err := DistUniform.generate(root.Split(), dims.staticN, int64(dims.staticN)*40)
	if err != nil {
		return DefenseSweepResult{}, fmt.Errorf("bench: defense static set: %w", err)
	}
	scenarios = append(scenarios, defenseScenario{
		name: "static",
		configs: []defenseConfig{
			{strength: "off", spec: core.DefenseSpec{}},
			{strength: "mid", spec: core.DefenseSpec{Policies: defenseChain(screenChain)}},
			{strength: "full", spec: core.DefenseSpec{
				Policies:   defenseChain(screenChain),
				RateBudget: 2, RateWindow: 20, Sources: 8,
			}},
		},
		run: func(spec core.DefenseSpec) (float64, core.DefenseReport, error) {
			res, err := core.StaticAttack(staticKS, core.StaticOptions{
				Budget:       dims.staticBudget,
				HonestWrites: dims.staticHonest,
				Domain:       staticKS.Max() + 1,
				Seed:         opts.Seed,
				Defense:      spec,
			})
			if err != nil {
				return 0, core.DefenseReport{}, err
			}
			return res.RatioLoss, res.Defense, nil
		},
	})

	// --- online: per-epoch regression oracle against the dynamic index ---
	onlineKS, err := DistUniform.generate(root.Split(), dims.onlineN, int64(dims.onlineN)*40)
	if err != nil {
		return DefenseSweepResult{}, fmt.Errorf("bench: defense online set: %w", err)
	}
	arrRNG := root.Split()
	arrivals := make([][]int64, dims.onlineEpochs)
	for e := range arrivals {
		for i := 0; i < dims.onlineArrivals; i++ {
			arrivals[e] = append(arrivals[e], arrRNG.Int63n(int64(dims.onlineN)*40))
		}
	}
	scenarios = append(scenarios, defenseScenario{
		name: "online",
		configs: []defenseConfig{
			{strength: "off", spec: core.DefenseSpec{}},
			{strength: "mid", spec: core.DefenseSpec{Policies: defenseChain(screenChain)}},
			{strength: "full", spec: core.DefenseSpec{
				Policies: defenseChain(screenChain + "|gapout:6"),
			}},
		},
		run: func(spec core.DefenseSpec) (float64, core.DefenseReport, error) {
			res, err := core.OnlinePoisonAttack(onlineKS, core.OnlineOptions{
				Epochs:      dims.onlineEpochs,
				EpochBudget: dims.onlineBudget,
				Policy:      dynamic.ManualPolicy(),
				Arrivals:    arrivals,
				Defense:     spec,
			})
			if err != nil {
				return 0, core.DefenseReport{}, err
			}
			return res.FinalRatio(), res.Defense, nil
		},
	})

	// --- serve: sharded attack-under-load ---
	serveKS, err := DistUniform.generate(root.Split(), dims.serveN, int64(dims.serveN)*40)
	if err != nil {
		return DefenseSweepResult{}, fmt.Errorf("bench: defense serve set: %w", err)
	}
	scenarios = append(scenarios, defenseScenario{
		name: "serve",
		configs: []defenseConfig{
			{strength: "off", spec: core.DefenseSpec{}},
			{strength: "mid", spec: core.DefenseSpec{Policies: defenseChain(screenChain)}},
			{strength: "full", spec: core.DefenseSpec{
				Policies:   defenseChain(screenChain),
				RateBudget: 4, RateWindow: 20, Sources: 8,
			}},
		},
		run: func(spec core.DefenseSpec) (float64, core.DefenseReport, error) {
			res, err := core.ServeAttack(serveKS, core.ServeOptions{
				Epochs:      dims.serveEpochs,
				OpsPerEpoch: dims.serveOps,
				EpochBudget: dims.serveBudget,
				Shards:      dims.serveShards,
				Policy:      dynamic.ManualPolicy(),
				Workload:    workload.NewZipf(1.1, 90),
				Domain:      int64(dims.serveN) * 40,
				Seed:        opts.Seed,
				Defense:     spec,
			})
			if err != nil {
				return 0, core.DefenseReport{}, err
			}
			return res.FinalRatio(), res.Defense, nil
		},
	})

	// --- churn: rebuild-pipeline pressure; damage = rebuild-tick ratio ---
	churnKS, err := DistUniform.generate(root.Split(), dims.churnN, int64(dims.churnN)*40)
	if err != nil {
		return DefenseSweepResult{}, fmt.Errorf("bench: defense churn set: %w", err)
	}
	scenarios = append(scenarios, defenseScenario{
		name: "churn",
		configs: []defenseConfig{
			{strength: "off", spec: core.DefenseSpec{}},
			{strength: "mid", spec: core.DefenseSpec{Policies: defenseChain(screenChain)}},
			{strength: "full", spec: core.DefenseSpec{
				Policies:   defenseChain(screenChain),
				RateBudget: 3, RateWindow: 30, Sources: 8,
			}},
		},
		run: func(spec core.DefenseSpec) (float64, core.DefenseReport, error) {
			res, err := core.ChurnAttack(churnKS, core.ChurnOptions{
				Epochs:      dims.churnEpochs,
				OpsPerEpoch: dims.churnOps,
				EpochBudget: dims.churnBudget,
				Shards:      dims.churnShards,
				Policy:      dynamic.BufferLimit(dims.churnBufferK),
				Workload:    workload.NewZipf(1.1, 75),
				Domain:      int64(dims.churnN) * 40,
				Seed:        opts.Seed,
				Cost:        index.CostModel{Fixed: 30},
				Defense:     spec,
			})
			if err != nil {
				return 0, core.DefenseReport{}, err
			}
			damage := core.SafeRatio(float64(res.VictimChurn.RebuildTicks), float64(res.CleanChurn.RebuildTicks))
			return damage, res.Defense, nil
		},
	})

	// --- cascade: structural poisoning of the gapped array ---
	cascadeKS, err := DistUniform.generate(root.Split(), dims.cascadeN, int64(dims.cascadeN)*40)
	if err != nil {
		return DefenseSweepResult{}, fmt.Errorf("bench: defense cascade set: %w", err)
	}
	scenarios = append(scenarios, defenseScenario{
		name: "cascade",
		configs: []defenseConfig{
			{strength: "off", spec: core.DefenseSpec{}},
			{strength: "mid", spec: core.DefenseSpec{
				RateBudget: 2, RateWindow: 40, Sources: 16,
			}},
			{strength: "full", spec: core.DefenseSpec{
				BalancedSplit: true,
				RateBudget:    2, RateWindow: 40, Sources: 16,
			}},
		},
		run: func(spec core.DefenseSpec) (float64, core.DefenseReport, error) {
			res, err := core.CascadeAttack(cascadeKS, core.CascadeOptions{
				Epochs:      dims.cascadeEpochs,
				OpsPerEpoch: dims.cascadeOps,
				EpochBudget: dims.cascadeBudget,
				LeafTarget:  dims.cascadeLeaf,
				Workload:    workload.NewZipf(1.1, 80),
				Domain:      int64(dims.cascadeN) * 40,
				Seed:        opts.Seed,
				Defense:     spec,
			})
			if err != nil {
				return 0, core.DefenseReport{}, err
			}
			return res.FinalStructRatio(), res.Defense, nil
		},
	})

	// Fan every (scenario × strength) cell across the pool; the inner
	// attacks stay sequential (no nested oversubscription), and the fold is
	// in spec order, so cells land identically for every worker count.
	type cellRef struct {
		scenario *defenseScenario
		config   defenseConfig
	}
	var refs []cellRef
	for i := range scenarios {
		for _, c := range scenarios[i].configs {
			refs = append(refs, cellRef{scenario: &scenarios[i], config: c})
		}
	}
	pool := opts.pool()
	cells, err := engine.Map(context.Background(), pool, len(refs), func(i int) (DefenseCell, error) {
		r := refs[i]
		damage, rep, err := r.scenario.run(r.config.spec)
		if err != nil {
			return DefenseCell{}, fmt.Errorf("bench: defense cell %s/%s: %w", r.scenario.name, r.config.strength, err)
		}
		excess := damage - 1
		if excess < 0 {
			excess = 0
		}
		return DefenseCell{
			Scenario:      r.scenario.name,
			Strength:      r.config.strength,
			Spec:          SpecLabel(r.config.spec),
			Damage:        damage,
			Excess:        excess,
			Overhead:      rep.HonestBlockedFrac(),
			PoisonBlocked: rep.PoisonBlockedFrac(),
			Report:        rep,
		}, nil
	})
	if err != nil {
		return DefenseSweepResult{}, err
	}

	// Pareto pass, per scenario: reduction relative to the off cell, then
	// the frontier flag (undominated in reduction-vs-overhead).
	baseline := map[string]float64{}
	for _, c := range cells {
		if c.Strength == "off" {
			baseline[c.Scenario] = c.Excess
		}
	}
	for i := range cells {
		cells[i].Reduction = core.SafeRatio(baseline[cells[i].Scenario], cells[i].Excess)
	}
	for i := range cells {
		dominated := false
		for j := range cells {
			if i == j || cells[j].Scenario != cells[i].Scenario {
				continue
			}
			betterOrEqual := cells[j].Reduction >= cells[i].Reduction && cells[j].Overhead <= cells[i].Overhead
			strictlyBetter := cells[j].Reduction > cells[i].Reduction || cells[j].Overhead < cells[i].Overhead
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		cells[i].Frontier = !dominated
	}
	return DefenseSweepResult{Cells: cells}, nil
}

// Scenarios returns the distinct scenario names in cell order.
func (r DefenseSweepResult) Scenarios() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Scenario] {
			seen[c.Scenario] = true
			names = append(names, c.Scenario)
		}
	}
	return names
}

// Best returns the scenario's best cell under the acceptance bar — the
// highest damage reduction among cells with overhead <= maxOverhead —
// and false when no armed cell qualifies.
func (r DefenseSweepResult) Best(scenario string, maxOverhead float64) (DefenseCell, bool) {
	var best DefenseCell
	found := false
	for _, c := range r.Cells {
		if c.Scenario != scenario || c.Strength == "off" || c.Overhead > maxOverhead {
			continue
		}
		if !found || c.Reduction > best.Reduction {
			best, found = c, true
		}
	}
	return best, found
}
