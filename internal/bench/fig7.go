package bench

import (
	"context"
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// RealDataset names one of the two Figure 7 workloads.
type RealDataset string

const (
	DatasetSalaries RealDataset = "miami-salaries"
	DatasetOSM      RealDataset = "osm-latitudes"
)

// RealDataResult is the Figure 7 sweep over one real-world (simulated)
// dataset: per-model ratio boxplots for model sizes {50, 100, 200} and
// poisoning percentages {5, 10, 20} at α = 3, plus the dataset's CDF for the
// figure's second row.
type RealDataResult struct {
	Dataset RealDataset
	Keys    keys.Set
	Density float64
	Cells   []RMICell
	// CDF is the decimated (key, rank) curve for plotting.
	CDFKeys  []float64
	CDFRanks []float64
}

// realDataKeys draws the simulated dataset at the scale-appropriate size.
func realDataKeys(ds RealDataset, s Scale, rng *xrand.RNG) (keys.Set, int64, error) {
	switch ds {
	case DatasetSalaries:
		// Small enough to always run at the paper's full size.
		n := dataset.SalaryCount
		if s == ScaleQuick {
			n = 1000
		}
		ks, err := dataset.MiamiSalariesN(rng, n)
		return ks, dataset.SalaryDomain, err
	case DatasetOSM:
		n := dataset.OSMCount // full paper size by default: the attack cost
		// is driven by model size (≤200), not n, so this stays tractable.
		if s == ScaleQuick {
			n = 8_000
		}
		ks, err := dataset.OSMLatitudesN(rng, n)
		return ks, dataset.OSMDomain, err
	default:
		return keys.Set{}, 0, fmt.Errorf("bench: unknown dataset %q", ds)
	}
}

// RealData runs the Figure 7 sweep for one dataset.
func RealData(ds RealDataset, opts Options) (RealDataResult, error) {
	opts = opts.fill()
	rng := opts.rng()
	ks, domain, err := realDataKeys(ds, opts.Scale, rng)
	if err != nil {
		return RealDataResult{}, err
	}
	res := RealDataResult{
		Dataset: ds,
		Keys:    ks,
		Density: ks.Density(domain),
	}
	// Decimate the CDF to ~500 points for plotting.
	step := ks.Len() / 500
	if step < 1 {
		step = 1
	}
	for i := 0; i < ks.Len(); i += step {
		res.CDFKeys = append(res.CDFKeys, float64(ks.At(i)))
		res.CDFRanks = append(res.CDFRanks, float64(i+1))
	}

	modelSizes := []int{50, 100, 200}
	poisonPcts := []float64{5, 10, 20}
	if opts.Scale == ScaleQuick {
		modelSizes = []int{50, 200}
		poisonPcts = []float64{5, 20}
	}
	const alpha = 3.0
	// Fan the (model size, poisoning %) grid out across the pool; cells
	// return in size-major order, matching the sequential sweep.
	type combo struct {
		size int
		pct  float64
	}
	var combos []combo
	for _, size := range modelSizes {
		for _, pct := range poisonPcts {
			combos = append(combos, combo{size: size, pct: pct})
		}
	}
	cells, err := engine.Map(context.Background(), opts.pool(), len(combos), func(i int) (RMICell, error) {
		c := combos[i]
		N := ks.Len() / c.size
		if N < 1 {
			N = 1
		}
		atk, err := core.RMIAttack(ks, core.RMIAttackOptions{
			NumModels: N,
			Percent:   c.pct,
			Alpha:     alpha,
			MaxMoves:  maxMovesFor(opts.Scale, N),
		})
		if err != nil {
			return RMICell{}, fmt.Errorf("bench: fig7 %s size=%d pct=%v: %w", ds, c.size, c.pct, err)
		}
		return newRMICell(Distribution(ds), ks.Len(), domain, c.size, c.pct, alpha, atk), nil
	})
	if err != nil {
		return RealDataResult{}, err
	}
	res.Cells = append(res.Cells, cells...)
	return res, nil
}

// MaxRMIRatio returns the largest finite RMI ratio in the sweep (paper:
// between 4× and 24× on real data).
func (r RealDataResult) MaxRMIRatio() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.RMIRatio > best {
			best = c.RMIRatio
		}
	}
	return best
}
