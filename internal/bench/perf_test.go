package bench

import (
	"encoding/json"
	"testing"
)

// perfTestOpts keeps the sweep test-sized: Trials=1 pins every cell to one
// warm-up plus one measured iteration.
func perfTestOpts() Options { return Options{Scale: ScaleQuick, Seed: 7, Trials: 1} }

func TestPerfSweepShape(t *testing.T) {
	rep, err := PerfSweep(perfTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != PerfSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if want := len(perfCells()) * 2; len(rep.Records) != want {
		t.Fatalf("%d records, want %d (cells × workers variants)", len(rep.Records), want)
	}
	seen := map[string]bool{}
	attacks := map[string]bool{}
	for _, r := range rep.Records {
		if seen[r.Key()] {
			t.Fatalf("duplicate cell key %s", r.Key())
		}
		seen[r.Key()] = true
		attacks[r.Attack] = true
		if r.Iters < 1 || r.NsPerOp <= 0 {
			t.Fatalf("degenerate measurement %+v", r)
		}
		if r.Resolved < 1 {
			t.Fatalf("unresolved workers in %+v", r)
		}
	}
	for _, a := range []string{"greedy", "single", "brute", "rmi", "serve", "online"} {
		if !attacks[a] {
			t.Fatalf("attack %q missing from the sweep", a)
		}
	}
	// The acceptance cell must be present under its stable key.
	if !seen["greedy/n=100000/p=50/workers=1"] {
		t.Fatal("acceptance cell greedy/n=100000/p=50/workers=1 missing")
	}
	// The report must round-trip through JSON (the BENCH_PR3.json format).
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(rep.Records) || back.Records[0].Key() != rep.Records[0].Key() {
		t.Fatal("JSON round-trip lost records")
	}
}

// TestPerfSweepAllocationCeiling ties the perf harness to the tentpole
// claim: the measured greedy acceptance cell must report the
// zero-allocation kernel's footprint, not the historical hundreds of
// allocations per op.
func TestPerfSweepAllocationCeiling(t *testing.T) {
	rep, err := PerfSweep(perfTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Records {
		if r.Attack == "greedy" && r.Workers == 1 {
			// Setup-only allocations plus MemStats sampling noise; the
			// pre-kernel implementation measured 300+ on this cell.
			if r.AllocsPerOp > 40 {
				t.Fatalf("%s allocs/op = %v; the incremental kernel should keep this near setup cost", r.Key(), r.AllocsPerOp)
			}
		}
	}
}

func TestComparePerf(t *testing.T) {
	base := PerfReport{Records: []PerfRecord{
		{Attack: "greedy", N: 100, P: 5, Workers: 1, NsPerOp: 1000, AllocsPerOp: 10},
		{Attack: "single", N: 100, Workers: 1, NsPerOp: 500, AllocsPerOp: 4},
	}}
	// Identical → ok.
	if _, ok := ComparePerf(base, base, 0.20); !ok {
		t.Fatal("identical reports flagged as regression")
	}
	// 10% slower within 20% tolerance → ok.
	cur := PerfReport{Records: []PerfRecord{
		{Attack: "greedy", N: 100, P: 5, Workers: 1, NsPerOp: 1100, AllocsPerOp: 10},
	}}
	if deltas, ok := ComparePerf(base, cur, 0.20); !ok {
		t.Fatalf("10%% drift flagged: %+v", deltas)
	}
	// 50% slower → regression.
	cur.Records[0].NsPerOp = 1500
	deltas, ok := ComparePerf(base, cur, 0.20)
	if ok {
		t.Fatal("50% ns/op regression not flagged")
	}
	if !deltas[0].Regressed || deltas[0].NsRatio != 1.5 {
		t.Fatalf("delta %+v", deltas[0])
	}
	// Alloc regression alone → regression.
	cur.Records[0].NsPerOp = 1000
	cur.Records[0].AllocsPerOp = 100
	if _, ok := ComparePerf(base, cur, 0.20); ok {
		t.Fatal("10× allocs/op regression not flagged")
	}
	// Small absolute alloc jitter rides the +2 slack.
	cur.Records[0].AllocsPerOp = 13
	if _, ok := ComparePerf(base, cur, 0.20); !ok {
		t.Fatal("10→13 allocs (within +20%+2 slack) flagged")
	}
	// Unmatched record: reported, not failed.
	cur.Records[0] = PerfRecord{Attack: "new", N: 1, Workers: 1, NsPerOp: 1}
	deltas, ok = ComparePerf(base, cur, 0.20)
	if !ok || deltas[0].Reason != "unmatched" {
		t.Fatalf("unmatched handling: ok=%v deltas=%+v", ok, deltas)
	}
	// A workers=0 cell measured on hosts with different core counts
	// resolved to different concurrency: skipped, never failed — otherwise
	// a baseline recorded on a 1-core host would turn multi-core CI
	// permanently red on the parallel path's different alloc profile.
	base0 := PerfReport{Records: []PerfRecord{
		{Attack: "greedy", N: 100, P: 5, Workers: 0, Resolved: 1, NsPerOp: 1000, AllocsPerOp: 10},
	}}
	cur0 := PerfReport{Records: []PerfRecord{
		{Attack: "greedy", N: 100, P: 5, Workers: 0, Resolved: 8, NsPerOp: 9000, AllocsPerOp: 400},
	}}
	deltas, ok = ComparePerf(base0, cur0, 0.20)
	if !ok || deltas[0].Regressed {
		t.Fatalf("resolved-workers mismatch failed the gate: %+v", deltas)
	}
	if deltas[0].Reason == "" {
		t.Fatal("resolved-workers mismatch not reported")
	}
}

// TestPerfCellKeysMatchesSweep: the cheap key enumeration must stay in sync
// with what PerfSweep actually measures.
func TestPerfCellKeysMatchesSweep(t *testing.T) {
	keys := PerfCellKeys()
	if len(keys) != len(perfCells())*2 {
		t.Fatalf("%d keys for %d cells", len(keys), len(perfCells()))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if !seen["greedy/n=100000/p=50/workers=1"] || !seen["online/n=5000/p=100/workers=0"] {
		t.Fatalf("expected cells missing from %v", keys)
	}
}
