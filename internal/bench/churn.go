package bench

import (
	"context"
	"fmt"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
	"cdfpoison/internal/workload"
)

// ChurnCell is one (rebuild-cost model × per-epoch budget) cell of the
// retrain-churn sweep: the full per-epoch trajectory of core.ChurnAttack
// plus its headline summaries.
type ChurnCell struct {
	Cost      index.CostModel
	BudgetPct float64 // per-EPOCH attacker budget as % of the initial keys
	Budget    int
	Epochs    []core.ChurnEpochReport
	// Trajectory summaries: worst stale-read fraction and probe ratio, the
	// final loss ratio, total publishes/coalesces, and the victim's worst
	// publish latency in ticks.
	MaxStaleFrac  float64
	MaxProbeRatio float64
	FinalRatio    float64
	Publishes     int
	Coalesced     int
	MaxLatency    int64
	StaleTicks    int64
	CleanStale    int64 // counterfactual stale ticks (honest churn baseline)
}

// ChurnSweepResult is the full retrain-churn sweep ("-fig churn" in
// lisbench): the churn attack across rebuild-cost models and budgets over
// a shared initial key set and per-cell deterministic streams.
type ChurnSweepResult struct {
	Keys          int
	Domain        int64
	Shards        int
	Policy        dynamic.RetrainPolicy
	EpochsPerCell int
	OpsPerEpoch   int
	Workload      workload.Spec
	Cells         []ChurnCell
}

// churnShape returns the sweep parameters per scale. Cost models span the
// regimes that matter: zero (the synchronous control), a flat per-rebuild
// cost, and a size-proportional cost (rebuild price grows as the victim
// absorbs keys — the complexity-attack regime).
func churnShape(s Scale) (n, epochs, opsPerEpoch, shards, bufferK int, budgets []float64, costs []index.CostModel) {
	costs = []index.CostModel{
		{},                                 // zero: synchronous control
		{Fixed: 40},                        // flat rebuild cost
		{Fixed: 10, PerKey: 25, Unit: 100}, // size-proportional
	}
	switch s {
	case ScaleQuick:
		return 400, 3, 60, 4, 12, []float64{2, 6}, costs
	case ScaleLarge:
		return 20_000, 8, 2_000, 16, 256, []float64{1, 2}, costs
	default:
		return 4_000, 6, 400, 8, 64, []float64{1, 3}, costs
	}
}

// ChurnSweep runs the retrain-churn scenario across rebuild-cost models
// and per-epoch budgets. The initial key set is drawn once; every cell's
// operation stream uses the SAME Options.Seed, so cells differ only in
// cost model or budget, never in stream luck. The cells fan out across
// Options.Workers with sequential inner attacks — results fold in cell
// order, identical for every worker count.
func ChurnSweep(opts Options) (ChurnSweepResult, error) {
	opts = opts.fill()
	n, epochs, opsPerEpoch, shards, bufferK, budgets, costs := churnShape(opts.Scale)
	domain := int64(n) * 40
	policy := dynamic.BufferLimit(bufferK)
	mix := workload.NewZipf(1.1, 90)

	root := opts.rng()
	ks, err := DistUniform.generate(root.Split(), n, domain)
	if err != nil {
		return ChurnSweepResult{}, fmt.Errorf("bench: churn initial set: %w", err)
	}

	type cellSpec struct {
		cost      index.CostModel
		budgetPct float64
	}
	var specs []cellSpec
	for _, c := range costs {
		for _, b := range budgets {
			specs = append(specs, cellSpec{cost: c, budgetPct: b})
		}
	}

	pool := opts.pool()
	cells, err := engine.Map(context.Background(), pool, len(specs), func(i int) (ChurnCell, error) {
		sp := specs[i]
		budget := int(float64(n) * sp.budgetPct / 100)
		if budget < 1 {
			budget = 1
		}
		res, err := core.ChurnAttack(ks, core.ChurnOptions{
			Epochs:      epochs,
			OpsPerEpoch: opsPerEpoch,
			EpochBudget: budget,
			Shards:      shards,
			Policy:      policy,
			Workload:    mix,
			Domain:      domain,
			Seed:        opts.Seed,
			Cost:        sp.cost,
		})
		if err != nil {
			return ChurnCell{}, fmt.Errorf("bench: churn cell cost=%s budget=%g%%: %w", sp.cost, sp.budgetPct, err)
		}
		return ChurnCell{
			Cost:          sp.cost,
			BudgetPct:     sp.budgetPct,
			Budget:        budget,
			Epochs:        res.Epochs,
			MaxStaleFrac:  res.MaxStaleFrac(),
			MaxProbeRatio: res.MaxProbeRatio(),
			FinalRatio:    res.FinalRatio(),
			Publishes:     res.VictimChurn.Publishes,
			Coalesced:     res.VictimChurn.Coalesced,
			MaxLatency:    res.VictimChurn.MaxLatencyTicks,
			StaleTicks:    res.VictimChurn.StaleTicks,
			CleanStale:    res.CleanChurn.StaleTicks,
		}, nil
	})
	if err != nil {
		return ChurnSweepResult{}, err
	}
	return ChurnSweepResult{
		Keys:          n,
		Domain:        domain,
		Shards:        shards,
		Policy:        policy,
		EpochsPerCell: epochs,
		OpsPerEpoch:   opsPerEpoch,
		Workload:      mix,
		Cells:         cells,
	}, nil
}

// MaxStaleFrac returns the worst stale-read fraction across cells — the
// sweep's headline number.
func (r ChurnSweepResult) MaxStaleFrac() float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.MaxStaleFrac > best {
			best = c.MaxStaleFrac
		}
	}
	return best
}

// MaxLatency returns the worst publish latency (ticks) across cells.
func (r ChurnSweepResult) MaxLatency() int64 {
	var best int64
	for _, c := range r.Cells {
		if c.MaxLatency > best {
			best = c.MaxLatency
		}
	}
	return best
}
