package pla

import (
	"testing"

	"cdfpoison/internal/core"
)

func TestInflationAttackBasics(t *testing.T) {
	ks := uniformSet(t, 20, 5000, 100000)
	const eps = 16
	res, err := InflationAttack(ks, 500, eps)
	if err != nil {
		t.Fatal(err)
	}
	if res.InflationRatio() <= 1 {
		t.Fatalf("inflation %v <= 1", res.InflationRatio())
	}
	if len(res.Poison) > 500 {
		t.Fatalf("budget exceeded: %d", len(res.Poison))
	}
	// Poison keys are unique, absent from the original set, and the
	// poisoned set is consistent.
	if res.Poisoned.Len() != ks.Len()+len(res.Poison) {
		t.Fatalf("poisoned size %d", res.Poisoned.Len())
	}
	seen := map[int64]bool{}
	for _, p := range res.Poison {
		if ks.Contains(p) || seen[p] {
			t.Fatalf("invalid poison key %d", p)
		}
		seen[p] = true
	}
	// The rebuilt index still honours the error bound and finds all
	// legitimate keys.
	idx, err := Build(res.Poisoned, eps)
	if err != nil {
		t.Fatal(err)
	}
	if idx.VerifyErrorBound() > eps {
		t.Fatal("error bound violated")
	}
	for i := 0; i < ks.Len(); i += 97 {
		if r := idx.Lookup(ks.At(i)); !r.Found {
			t.Fatalf("legit key %d lost", ks.At(i))
		}
	}
}

func TestInflationAttackBeatsLossAttack(t *testing.T) {
	// The non-transferability finding: at the same budget the burst attack
	// inflates segments at least as much as the MSE-optimal attack.
	ks := uniformSet(t, 21, 8000, 160000)
	const eps, budget = 16, 800
	burst, err := InflationAttack(ks, budget, eps)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := core.GreedyMultiPoint(ks, budget)
	if err != nil {
		t.Fatal(err)
	}
	lossIdx, err := Build(loss.Poisoned, eps)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Build(ks, eps)
	if err != nil {
		t.Fatal(err)
	}
	lossInflation := float64(lossIdx.Segments()) / float64(clean.Segments())
	if burst.InflationRatio() < lossInflation {
		t.Fatalf("burst %v below loss-attack %v", burst.InflationRatio(), lossInflation)
	}
	if burst.InflationRatio() < 1.3 {
		t.Fatalf("burst attack too weak: %v", burst.InflationRatio())
	}
}

func TestInflationAttackValidation(t *testing.T) {
	ks := uniformSet(t, 22, 100, 2000)
	if _, err := InflationAttack(ks, -1, 8); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := InflationAttack(ks, 10, 0); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	// Zero budget: no-op.
	res, err := InflationAttack(ks, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Poison) != 0 || res.InflationRatio() != 1 {
		t.Fatalf("zero budget result: %+v", res)
	}
}

func TestInflationAttackSaturatedDomain(t *testing.T) {
	// No gaps → nothing to inject; must not loop forever.
	raw := make([]int64, 200)
	for i := range raw {
		raw[i] = int64(i)
	}
	ks := mustKeys(t, raw)
	res, err := InflationAttack(ks, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Poison) != 0 {
		t.Fatalf("injected %d into saturated domain", len(res.Poison))
	}
}
