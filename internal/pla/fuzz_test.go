package pla

import (
	"bytes"
	"math"
	"testing"

	"cdfpoison/internal/keys"
)

// FuzzReadBinary: arbitrary bytes either fail to parse or produce an index
// that re-serializes and re-parses to an identical structure.
func FuzzReadBinary(f *testing.F) {
	seed := func(ks []int64, eps int) []byte {
		s, err := keys.NewStrict(ks)
		if err != nil {
			f.Fatal(err)
		}
		idx, err := Build(s, eps)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed([]int64{1, 5, 9, 20, 21, 22, 400, 401}, 2))
	f.Add(seed([]int64{0, 1000, 2000, 3000}, 16))
	f.Add([]byte("CDFPLA01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := idx.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary after successful read: %v", err)
		}
		idx2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		if idx.epsilon != idx2.epsilon || !idx.ks.Equal(idx2.ks) || len(idx.segs) != len(idx2.segs) {
			t.Fatal("round-trip changed the index shape")
		}
		for i := range idx.segs {
			a, b := idx.segs[i], idx2.segs[i]
			// Compare the slope by bit pattern: the format must preserve
			// bits exactly, and a fuzzed NaN slope would fail != forever.
			if a.startKey != b.startKey || a.endKey != b.endKey || a.startPos != b.startPos ||
				math.Float64bits(a.slope) != math.Float64bits(b.slope) {
				t.Fatalf("round-trip changed segment %d: %+v != %+v", i, a, b)
			}
		}
		// Drive queries through the hostile index: segments parsed from
		// arbitrary bytes may route predictions anywhere (NaN slopes,
		// huge extrapolations), but lookups must never panic, and the
		// galloping lower bound must still agree with the key set.
		n := idx.ks.Len()
		probes := []int64{0, 1 << 40, -1}
		for i := 0; i < n && i < 8; i++ {
			k := idx.ks.At(i)
			probes = append(probes, k, k-1, k+1)
		}
		if n > 0 {
			probes = append(probes, idx.ks.Min()-1, idx.ks.Max()+1)
		}
		for _, k := range probes {
			idx.Lookup(k)
			if got, want := idx.lowerBound(k), idx.ks.CountLess(k); got != want {
				t.Fatalf("lowerBound(%d) = %d, want %d", k, got, want)
			}
		}
	})
}

// TestReadBinaryRejectsZeroSegments pins the hostile-file validation: zero
// segments over a non-empty key set used to parse successfully and then
// panic on the first lowerBound query.
func TestReadBinaryRejectsZeroSegments(t *testing.T) {
	s, err := keys.NewStrict([]int64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	var hostile bytes.Buffer
	hostile.WriteString("CDFPLA01")
	var hdr [16]byte
	hdr[0] = 1 // epsilon=1, numSegs=0
	hostile.Write(hdr[:])
	if err := s.WriteBinary(&hostile); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(hostile.Bytes())); err == nil {
		t.Fatal("hostile zero-segment file parsed successfully")
	}
}

// FuzzBuildRoundTrip derives a key set and epsilon from raw fuzz bytes,
// builds a real index, and asserts the serialized copy answers every
// membership query identically — the IO round-trip on live structures.
func FuzzBuildRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 200, 1, 1}, uint8(2))
	f.Add([]byte{255, 0, 9}, uint8(1))
	f.Add([]byte{7}, uint8(64))
	f.Fuzz(func(t *testing.T, deltas []byte, epsByte uint8) {
		if len(deltas) == 0 || len(deltas) > 4096 {
			return
		}
		eps := int(epsByte%128) + 1
		ks := make([]int64, 0, len(deltas))
		cur := int64(0)
		for _, d := range deltas {
			cur += int64(d) + 1 // strictly increasing
			ks = append(ks, cur)
		}
		s, err := keys.NewStrict(ks)
		if err != nil {
			t.Fatalf("derived keys invalid: %v", err)
		}
		idx, err := Build(s, eps)
		if err != nil {
			t.Fatalf("Build(n=%d, eps=%d): %v", s.Len(), eps, err)
		}
		var buf bytes.Buffer
		if err := idx.WriteBinary(&buf); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		idx2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		for i := 0; i < s.Len(); i++ {
			k := s.At(i)
			a, b := idx.Lookup(k), idx2.Lookup(k)
			if a != b {
				t.Fatalf("lookup(%d) diverged after round-trip: %+v != %+v", k, a, b)
			}
		}
	})
}
