// Package pla implements an error-bounded piecewise-linear learned index in
// the style of the FITing-tree and the PGM-index — the alternative learned
// index family the paper's related work surveys ([9], [38]) and its
// Discussion singles out as worth attacking ("recent works propose learned
// index structures based on different regression models… It is worthwhile
// studying the vulnerabilities of these models", Section VI).
//
// The index covers the sorted keys with the fewest greedy "shrinking cone"
// segments such that every key's predicted position is within epsilon of
// its true position; lookups binary-search the segment table, predict, and
// finish with a bounded last-mile search.
//
// Against this family, CDF poisoning shows up differently than against the
// fixed-fanout RMI: the error bound is enforced by construction, so the
// attacker cannot inflate lookup error — instead every poisoning key that
// breaks a cone forces an extra segment, inflating the index's MEMORY
// footprint. The price of tailoring, paid in space instead of time.
package pla

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"cdfpoison/internal/keys"
)

// ErrEmpty is returned when building over an empty key set.
var ErrEmpty = errors.New("pla: cannot build over an empty key set")

// segment is one linear piece: positions predicted as
// pos ≈ slope·(key − startKey) + startPos for keys in [startKey, endKey].
type segment struct {
	startKey int64
	endKey   int64
	startPos int // 0-based position of startKey
	slope    float64
}

// Index is an immutable error-bounded piecewise-linear index.
type Index struct {
	ks       keys.Set
	segs     []segment
	epsilon  int
	maxProbe int
}

// Build constructs the index with the given error bound epsilon >= 1 using
// the one-pass greedy shrinking-cone algorithm: the fewest segments such
// that |predicted − actual| <= epsilon for every stored key (optimal among
// one-pass left-to-right segmentations).
func Build(ks keys.Set, epsilon int) (*Index, error) {
	n := ks.Len()
	if n == 0 {
		return nil, ErrEmpty
	}
	if epsilon < 1 {
		return nil, fmt.Errorf("pla: epsilon must be >= 1, got %d", epsilon)
	}
	idx := &Index{ks: ks, epsilon: epsilon}

	start := 0
	for start < n {
		// Open a segment at (key_start, start).
		k0 := ks.At(start)
		loSlope := math.Inf(-1)
		hiSlope := math.Inf(1)
		end := start
		for next := start + 1; next < n; next++ {
			dx := float64(ks.At(next) - k0)
			dy := float64(next - start)
			lo := (dy - float64(epsilon)) / dx
			hi := (dy + float64(epsilon)) / dx
			newLo := math.Max(loSlope, lo)
			newHi := math.Min(hiSlope, hi)
			if newLo > newHi {
				break // cone collapsed: the segment ends at `end`
			}
			loSlope, hiSlope = newLo, newHi
			end = next
		}
		var slope float64
		switch {
		case end == start:
			slope = 0 // singleton segment
		case math.IsInf(loSlope, -1) || math.IsInf(hiSlope, 1):
			slope = 0 // unreachable: two points always bound the cone
		default:
			slope = (loSlope + hiSlope) / 2
		}
		idx.segs = append(idx.segs, segment{
			startKey: k0,
			endKey:   ks.At(end),
			startPos: start,
			slope:    slope,
		})
		start = end + 1
	}
	return idx, nil
}

// Len returns the number of indexed keys.
func (idx *Index) Len() int { return idx.ks.Len() }

// Segments returns the number of linear pieces — the quantity a poisoning
// adversary inflates.
func (idx *Index) Segments() int { return len(idx.segs) }

// Epsilon returns the guaranteed error bound.
func (idx *Index) Epsilon() int { return idx.epsilon }

// MemoryBytes estimates the model storage: per segment one key (8B), one
// position (8B), and one slope (8B), plus the segment-table key array used
// for routing (8B) — matching how FITing-tree accounts its inner nodes.
func (idx *Index) MemoryBytes() int { return len(idx.segs) * 32 }

// LookupResult mirrors rmi.LookupResult for comparable accounting.
type LookupResult struct {
	Pos    int
	Found  bool
	Probes int // key comparisons: segment routing + last-mile search
}

// Lookup finds a stored key; absent keys report Found=false. Stored keys
// are always found within epsilon of their prediction, by construction.
func (idx *Index) Lookup(k int64) LookupResult {
	var res LookupResult
	res.Pos = -1
	// Route: last segment with startKey <= k.
	lo, hi := 0, len(idx.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		res.Probes++
		if idx.segs[mid].startKey <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	si := lo - 1
	if si < 0 {
		return res // below the smallest key
	}
	s := idx.segs[si]
	pred := float64(s.startPos) + s.slope*float64(k-s.startKey)
	from := int(math.Floor(pred)) - idx.epsilon
	to := int(math.Ceil(pred)) + idx.epsilon
	if from < 0 {
		from = 0
	}
	if to > idx.ks.Len()-1 {
		to = idx.ks.Len() - 1
	}
	for from <= to {
		mid := (from + to) / 2
		res.Probes++
		switch c := idx.ks.At(mid); {
		case c == k:
			res.Pos, res.Found = mid, true
			return res
		case c < k:
			from = mid + 1
		default:
			to = mid - 1
		}
	}
	return res
}

// AscendRange calls fn(pos, key) for every stored key in [lo, hi] in
// increasing order until fn returns false. The range start is located with
// one model-guided lower-bound search.
func (idx *Index) AscendRange(lo, hi int64, fn func(pos int, key int64) bool) {
	pos := idx.lowerBound(lo)
	for ; pos < idx.ks.Len(); pos++ {
		k := idx.ks.At(pos)
		if k > hi {
			return
		}
		if !fn(pos, k) {
			return
		}
	}
}

// RangeCount returns the number of stored keys in [lo, hi].
func (idx *Index) RangeCount(lo, hi int64) int {
	if hi < lo {
		return 0
	}
	return idx.lowerBound(hi+1) - idx.lowerBound(lo)
}

// lowerBound returns the smallest position whose key is >= k.
func (idx *Index) lowerBound(k int64) int {
	n := idx.ks.Len()
	if n == 0 || k > idx.ks.Max() {
		return n
	}
	if k <= idx.ks.Min() {
		return 0
	}
	// Route to the segment covering k and search its epsilon window,
	// widening if the absent-key prediction lands just outside.
	lo, hi := 0, len(idx.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx.segs[mid].startKey <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	si := lo - 1
	if si < 0 {
		si = 0
	}
	s := idx.segs[si]
	pred := float64(s.startPos) + s.slope*float64(k-s.startKey)
	// Clamp the prediction BEFORE the float→int conversion: k need not be
	// a stored key here, so the epsilon guarantee does not apply and the
	// extrapolated prediction can be arbitrarily large (found by
	// TestLowerBoundQuick), NaN, or past int64 range — where the Go
	// conversion is implementation-defined and would poison the window
	// arithmetic below. The galloping loops recover correctness from any
	// in-range starting window.
	if math.IsNaN(pred) || pred < 0 {
		pred = 0
	} else if pred > float64(n-1) {
		pred = float64(n - 1)
	}
	from := int(math.Floor(pred)) - idx.epsilon
	to := int(math.Ceil(pred)) + idx.epsilon
	if from < 0 {
		from = 0
	}
	if to > n-1 {
		to = n - 1
	}
	for from > 0 && idx.ks.At(from) >= k {
		from -= to - from + 1
		if from < 0 {
			from = 0
		}
	}
	for to < n-1 && idx.ks.At(to) < k {
		to += to - from + 1
		if to > n-1 {
			to = n - 1
		}
	}
	for from < to {
		mid := (from + to) / 2
		if idx.ks.At(mid) < k {
			from = mid + 1
		} else {
			to = mid
		}
	}
	if idx.ks.At(from) < k {
		from++
	}
	return from
}

// AvgProbes runs a lookup for every key and returns the mean probe count
// and the not-found count.
func (idx *Index) AvgProbes(queryKeys []int64) (mean float64, notFound int) {
	if len(queryKeys) == 0 {
		return 0, 0
	}
	sum := 0
	for _, k := range queryKeys {
		r := idx.Lookup(k)
		sum += r.Probes
		if !r.Found {
			notFound++
		}
	}
	return float64(sum) / float64(len(queryKeys)), notFound
}

// VerifyErrorBound recomputes every key's prediction error and returns the
// worst observed |predicted − actual| — must be <= epsilon. Used by tests
// and by callers that want a self-check after deserialization.
func (idx *Index) VerifyErrorBound() float64 {
	worst := 0.0
	for si, s := range idx.segs {
		endPos := idx.ks.Len() - 1
		if si+1 < len(idx.segs) {
			endPos = idx.segs[si+1].startPos - 1
		}
		for p := s.startPos; p <= endPos; p++ {
			pred := float64(s.startPos) + s.slope*float64(idx.ks.At(p)-s.startKey)
			if d := math.Abs(pred - float64(p)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// SegmentSizes returns the number of keys covered by each segment, sorted
// ascending — a diagnostic for how poisoning fragments the segmentation.
func (idx *Index) SegmentSizes() []int {
	sizes := make([]int, 0, len(idx.segs))
	for si, s := range idx.segs {
		endPos := idx.ks.Len() - 1
		if si+1 < len(idx.segs) {
			endPos = idx.segs[si+1].startPos - 1
		}
		sizes = append(sizes, endPos-s.startPos+1)
	}
	sort.Ints(sizes)
	return sizes
}
