package pla

import (
	"fmt"

	"cdfpoison/internal/keys"
)

// This file implements a poisoning attack whose objective is the
// piecewise-linear index itself. The paper's greedy attack maximizes the
// MSE of one global regression, which concentrates every poisoning key in
// a single dense spot — and a single cluster breaks at most a couple of
// shrinking cones, leaving a PGM/FITing-tree-style index essentially
// unharmed (measured in EXPERIMENTS.md, Extension F). An adversary who
// targets this index family must spend the budget differently: a burst of
// more than 2ε consecutive keys inside a segment shifts subsequent ranks
// beyond the ε-corridor and forcibly splits the segment.
//
// InflationAttack spreads such bursts round-robin across the clean
// segments, maximizing segment-count (memory) inflation per poisoned key.

// InflationResult describes the outcome of the segment-inflation attack.
type InflationResult struct {
	Poison   []int64
	Poisoned keys.Set
	// CleanSegments / PoisonedSegments are measured at the given epsilon.
	CleanSegments    int
	PoisonedSegments int
}

// InflationRatio returns PoisonedSegments/CleanSegments.
func (r InflationResult) InflationRatio() float64 {
	if r.CleanSegments == 0 {
		return 1
	}
	return float64(r.PoisonedSegments) / float64(r.CleanSegments)
}

// InflationAttack injects up to budget keys so as to maximize the number of
// ε-bounded segments a rebuild will need. Bursts of 2ε+2 consecutive keys
// are placed into the widest gap of each clean segment, round-robin, so
// every burst forces at least one additional segment.
func InflationAttack(ks keys.Set, budget, epsilon int) (InflationResult, error) {
	if budget < 0 {
		return InflationResult{}, fmt.Errorf("pla: negative budget %d", budget)
	}
	clean, err := Build(ks, epsilon)
	if err != nil {
		return InflationResult{}, err
	}
	res := InflationResult{CleanSegments: clean.Segments(), Poisoned: ks}

	burst := 2*epsilon + 2
	remaining := budget
	// Each round: segment the CURRENT poisoned set, drop one burst into the
	// widest interior gap of every segment, repeat. Re-segmenting between
	// rounds lets the attack keep splitting the pieces it created, so large
	// budgets are spent even when the clean index had few segments.
	for round := 0; remaining > 0 && round <= budget; round++ {
		cur, err := Build(res.Poisoned, epsilon)
		if err != nil {
			return InflationResult{}, err
		}
		type slot struct {
			lo, hi int64 // gap bounds (inclusive)
		}
		var slots []slot
		for si, s := range cur.segs {
			endPos := res.Poisoned.Len() - 1
			if si+1 < len(cur.segs) {
				endPos = cur.segs[si+1].startPos - 1
			}
			bestW := int64(0)
			var best slot
			for p := s.startPos; p < endPos; p++ {
				if w := res.Poisoned.At(p+1) - res.Poisoned.At(p) - 1; w > bestW {
					bestW = w
					best = slot{lo: res.Poisoned.At(p) + 1, hi: res.Poisoned.At(p+1) - 1}
				}
			}
			if bestW > 0 {
				slots = append(slots, best)
			}
		}
		progress := false
		for i := range slots {
			if remaining == 0 {
				break
			}
			s := &slots[i]
			take := burst
			if take > remaining {
				take = remaining
			}
			if int64(take) > s.hi-s.lo+1 {
				take = int(s.hi - s.lo + 1)
			}
			for j := 0; j < take; j++ {
				next, ok := res.Poisoned.Insert(s.lo)
				if !ok {
					return InflationResult{}, fmt.Errorf("pla: inflation bookkeeping: key %d occupied", s.lo)
				}
				res.Poisoned = next
				res.Poison = append(res.Poison, s.lo)
				s.lo++
				remaining--
				progress = true
			}
		}
		if !progress {
			break // domain saturated everywhere
		}
	}
	poisIdx, err := Build(res.Poisoned, epsilon)
	if err != nil {
		return InflationResult{}, err
	}
	res.PoisonedSegments = poisIdx.Segments()
	return res, nil
}
