package pla

import (
	"errors"
	"testing"
	"testing/quick"

	"cdfpoison/internal/core"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func uniformSet(t *testing.T, seed uint64, n int, m int64) keys.Set {
	t.Helper()
	ks, err := dataset.Uniform(xrand.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(keys.Set{}, 4); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	ks := uniformSet(t, 1, 10, 100)
	if _, err := Build(ks, 0); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
}

func TestAllKeysFound(t *testing.T) {
	for _, eps := range []int{1, 4, 16, 64} {
		ks := uniformSet(t, 2, 3000, 100000)
		idx, err := Build(ks, eps)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ks.Len(); i++ {
			r := idx.Lookup(ks.At(i))
			if !r.Found || r.Pos != i {
				t.Fatalf("eps=%d: key %d (pos %d) -> %+v", eps, ks.At(i), i, r)
			}
		}
	}
}

func TestErrorBoundHolds(t *testing.T) {
	f := func(seed uint32, epsRaw uint8) bool {
		eps := int(epsRaw)%32 + 1
		rng := xrand.New(uint64(seed))
		n := 50 + rng.Intn(500)
		ks, err := dataset.Uniform(rng, n, int64(n)*20)
		if err != nil {
			return false
		}
		idx, err := Build(ks, eps)
		if err != nil {
			return false
		}
		return idx.VerifyErrorBound() <= float64(eps)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsentKeysNotFound(t *testing.T) {
	ks := uniformSet(t, 3, 500, 50000)
	idx, err := Build(ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	for i := 0; i < 1000; i++ {
		k := rng.Int63n(50000)
		if ks.Contains(k) {
			continue
		}
		if r := idx.Lookup(k); r.Found {
			t.Fatalf("absent key %d found", k)
		}
	}
	if r := idx.Lookup(ks.Min() - 1); r.Found {
		t.Fatal("key below min found")
	}
}

func TestFewerSegmentsWithLargerEpsilon(t *testing.T) {
	ks := uniformSet(t, 5, 5000, 100000)
	prev := ks.Len() + 1
	for _, eps := range []int{1, 4, 16, 64} {
		idx, err := Build(ks, eps)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Segments() >= prev {
			t.Fatalf("eps=%d: segments %d did not decrease (prev %d)", eps, idx.Segments(), prev)
		}
		prev = idx.Segments()
	}
}

func TestPerfectlyLinearNeedsOneSegment(t *testing.T) {
	raw := make([]int64, 1000)
	for i := range raw {
		raw[i] = int64(i) * 7
	}
	ks, err := keys.New(raw)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Segments() != 1 {
		t.Fatalf("linear data needs %d segments, want 1", idx.Segments())
	}
}

func TestSingletonAndPair(t *testing.T) {
	one, _ := keys.New([]int64{42})
	idx, err := Build(one, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Segments() != 1 || !idx.Lookup(42).Found {
		t.Fatal("singleton index broken")
	}
	two, _ := keys.New([]int64{10, 1000})
	idx, err = Build(two, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range two.Keys() {
		if r := idx.Lookup(k); !r.Found || r.Pos != i {
			t.Fatalf("pair lookup %d -> %+v", k, r)
		}
	}
}

func TestSegmentSizesSumToN(t *testing.T) {
	ks := uniformSet(t, 6, 2000, 30000)
	idx, err := Build(ks, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range idx.SegmentSizes() {
		if s < 1 {
			t.Fatalf("empty segment")
		}
		total += s
	}
	if total != ks.Len() {
		t.Fatalf("segment sizes sum %d != n %d", total, ks.Len())
	}
	if idx.MemoryBytes() != idx.Segments()*32 {
		t.Fatal("memory accounting inconsistent")
	}
}

func TestPoisoningInflatesSegments(t *testing.T) {
	// The headline property: with the error bound enforced by construction,
	// CDF poisoning converts into segment-count (memory) inflation.
	ks := uniformSet(t, 7, 2000, 40000)
	atk, err := core.GreedyMultiPoint(ks, 200)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 16
	clean, err := Build(ks, eps)
	if err != nil {
		t.Fatal(err)
	}
	pois, err := Build(atk.Poisoned, eps)
	if err != nil {
		t.Fatal(err)
	}
	if pois.Segments() <= clean.Segments() {
		t.Fatalf("poisoning did not inflate segments: %d -> %d", clean.Segments(), pois.Segments())
	}
	// Lookup error stays bounded regardless.
	if pois.VerifyErrorBound() > eps {
		t.Fatal("error bound violated after poisoning")
	}
	// Legitimate keys still found in the poisoned index.
	for i := 0; i < ks.Len(); i += 37 {
		if r := pois.Lookup(ks.At(i)); !r.Found {
			t.Fatalf("legit key %d lost", ks.At(i))
		}
	}
}

func TestAvgProbes(t *testing.T) {
	ks := uniformSet(t, 8, 3000, 60000)
	idx, err := Build(ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	mean, notFound := idx.AvgProbes(ks.Keys())
	if notFound != 0 {
		t.Fatalf("%d stored keys not found", notFound)
	}
	if mean < 1 || mean > 40 {
		t.Fatalf("avg probes %v implausible", mean)
	}
	if m, nf := idx.AvgProbes(nil); m != 0 || nf != 0 {
		t.Fatal("empty query handling")
	}
}

func mustKeys(t *testing.T, raw []int64) keys.Set {
	t.Helper()
	ks, err := keys.New(raw)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}
