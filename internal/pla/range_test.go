package pla

import (
	"testing"
	"testing/quick"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func TestRangeCountAgainstReference(t *testing.T) {
	ks := uniformSet(t, 40, 2000, 40000)
	idx, err := Build(ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref := func(lo, hi int64) int {
		c := 0
		for _, k := range ks.Keys() {
			if k >= lo && k <= hi {
				c++
			}
		}
		return c
	}
	rng := xrand.New(41)
	for trial := 0; trial < 300; trial++ {
		a := rng.Int63n(42000) - 1000
		b := rng.Int63n(42000) - 1000
		if a > b {
			a, b = b, a
		}
		if got, want := idx.RangeCount(a, b), ref(a, b); got != want {
			t.Fatalf("RangeCount(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	if idx.RangeCount(9, 5) != 0 {
		t.Fatal("inverted range not empty")
	}
}

func TestAscendRange(t *testing.T) {
	ks := uniformSet(t, 42, 1000, 20000)
	idx, err := Build(ks, 16)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int64
	idx.AscendRange(4000, 16000, func(pos int, k int64) bool {
		if k < 4000 || k > 16000 || ks.At(pos) != k {
			t.Fatalf("bad visit pos=%d k=%d", pos, k)
		}
		seen = append(seen, k)
		return true
	})
	if len(seen) != idx.RangeCount(4000, 16000) {
		t.Fatalf("scan/count mismatch: %d vs %d", len(seen), idx.RangeCount(4000, 16000))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatal("out of order")
		}
	}
	n := 0
	idx.AscendRange(0, 1<<40, func(int, int64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLowerBoundQuick(t *testing.T) {
	f := func(seed uint32, epsRaw uint8) bool {
		eps := int(epsRaw)%32 + 1
		rng := xrand.New(uint64(seed))
		n := 50 + rng.Intn(400)
		ks, err := dataset.Uniform(rng, n, int64(n)*15)
		if err != nil {
			return false
		}
		idx, err := Build(ks, eps)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			k := rng.Int63n(int64(n)*15 + 100)
			if idx.lowerBound(k) != ks.CountLess(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerBoundPredictionOvershoot pins the clamp fix for absent keys in a
// wide inter-segment gap: the routing segment's slope extrapolates the
// prediction far past the end of the array (k=500 against a 20-key set),
// which used to index out of range. Deterministic twin of the time-seeded
// TestLowerBoundQuick that caught it.
func TestLowerBoundPredictionOvershoot(t *testing.T) {
	var raw []int64
	for i := int64(0); i < 10; i++ {
		raw = append(raw, i)          // dense run: slope ~1 key/rank
		raw = append(raw, 100000+i*3) // far-away second cluster
	}
	ks, err := keys.NewStrict(raw)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{500, 50_000, 99_999, 5, 100_001} {
		if got, want := idx.lowerBound(k), ks.CountLess(k); got != want {
			t.Fatalf("lowerBound(%d) = %d, want %d", k, got, want)
		}
	}
}
