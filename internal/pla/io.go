package pla

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cdfpoison/internal/keys"
)

// Binary serialization of a built piecewise-linear index: magic, epsilon,
// the key set (delta-varint), and every segment.
var plaMagic = [8]byte{'C', 'D', 'F', 'P', 'L', 'A', '0', '1'}

// WriteBinary serializes the index.
func (idx *Index) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(plaMagic[:]); err != nil {
		return fmt.Errorf("pla: write magic: %w", err)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], uint64(idx.epsilon))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(idx.segs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("pla: write header: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := idx.ks.WriteBinary(w); err != nil {
		return fmt.Errorf("pla: write keys: %w", err)
	}
	bw = bufio.NewWriter(w)
	var buf [8]byte
	put := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	for _, s := range idx.segs {
		if err := put(uint64(s.startKey)); err != nil {
			return fmt.Errorf("pla: write segment: %w", err)
		}
		if err := put(uint64(s.endKey)); err != nil {
			return fmt.Errorf("pla: write segment: %w", err)
		}
		if err := put(uint64(s.startPos)); err != nil {
			return fmt.Errorf("pla: write segment: %w", err)
		}
		if err := put(math.Float64bits(s.slope)); err != nil {
			return fmt.Errorf("pla: write segment: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes an index written by WriteBinary.
func ReadBinary(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("pla: read magic: %w", err)
	}
	if magic != plaMagic {
		return nil, fmt.Errorf("pla: bad magic %q", magic[:])
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pla: read header: %w", err)
	}
	epsilon := int(binary.LittleEndian.Uint64(hdr[:8]))
	numSegs := int(binary.LittleEndian.Uint64(hdr[8:]))
	if epsilon < 1 || numSegs < 0 || numSegs > 1<<30 {
		return nil, fmt.Errorf("pla: implausible header (epsilon=%d, segments=%d)", epsilon, numSegs)
	}
	ks, err := keys.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("pla: read keys: %w", err)
	}
	// Build always emits at least one segment for a non-empty key set; a
	// file claiming zero segments over stored keys is corrupt and would
	// leave lookups with no routing model.
	if numSegs == 0 && ks.Len() > 0 {
		return nil, fmt.Errorf("pla: zero segments for %d keys", ks.Len())
	}
	// Grow the segment slice as data actually arrives rather than trusting
	// the declared count: a hostile header can claim 2^30 segments backed
	// by nothing, and ReadFull errors out at the first missing byte.
	capHint := numSegs
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	idx := &Index{ks: ks, epsilon: epsilon, segs: make([]segment, 0, capHint)}
	var buf [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	for i := 0; i < numSegs; i++ {
		var s segment
		var v uint64
		if v, err = get(); err == nil {
			s.startKey = int64(v)
			if v, err = get(); err == nil {
				s.endKey = int64(v)
				if v, err = get(); err == nil {
					s.startPos = int(v)
					if v, err = get(); err == nil {
						s.slope = math.Float64frombits(v)
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("pla: read segment %d: %w", i, err)
		}
		idx.segs = append(idx.segs, s)
	}
	return idx, nil
}
