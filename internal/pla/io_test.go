package pla

import (
	"bytes"
	"strings"
	"testing"
)

func TestIndexBinaryRoundTrip(t *testing.T) {
	ks := uniformSet(t, 60, 1500, 40000)
	orig, err := Build(ks, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Segments() != orig.Segments() || got.Epsilon() != orig.Epsilon() || got.Len() != orig.Len() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := 0; i < ks.Len(); i++ {
		k := ks.At(i)
		if orig.Lookup(k) != got.Lookup(k) {
			t.Fatalf("lookup(%d) diverges", k)
		}
	}
	for k := ks.Min(); k < ks.Min()+300; k++ {
		if orig.Lookup(k) != got.Lookup(k) {
			t.Fatalf("absent lookup(%d) diverges", k)
		}
	}
	if got.VerifyErrorBound() > float64(got.Epsilon()) {
		t.Fatal("error bound violated after deserialization")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTPLAINDEX_")); err == nil {
		t.Fatal("garbage accepted")
	}
	ks := uniformSet(t, 61, 200, 4000)
	idx, err := Build(ks, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-4])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
