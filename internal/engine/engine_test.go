package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestNewWorkerResolution(t *testing.T) {
	if got := New(1).Workers(); got != 1 {
		t.Fatalf("New(1).Workers() = %d, want 1", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("New(7).Workers() = %d, want 7", got)
	}
	if got := New(0).Workers(); got < 1 {
		t.Fatalf("New(0).Workers() = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Fatalf("New(-3).Workers() = %d, want >= 1 (GOMAXPROCS)", got)
	}
	var nilPool *Pool
	if !nilPool.Sequential() {
		t.Fatal("nil pool must be sequential")
	}
}

func TestMapOrderedResults(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		got, err := Map(ctx, p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEveryTaskExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]int64
	_, err := Map(context.Background(), New(8), n, func(i int) (struct{}, error) {
		atomic.AddInt64(&counts[i], 1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), New(4), 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(n=0) = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), New(workers), 64, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, boom(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	// gate blocks in-flight tasks until cancel() has been issued: without
	// it, a fast single-core host can drain all 1M trivial tasks before the
	// canceling goroutine is ever scheduled, and the test flakes.
	gate := make(chan struct{})
	var ran int64
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, New(2), 1_000_000, func(i int) (int, error) {
			atomic.AddInt64(&ran, 1)
			select {
			case started <- struct{}{}:
			default:
			}
			<-gate
			return i, nil
		})
		done <- err
	}()
	<-started
	cancel()
	close(gate)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n >= 1_000_000 {
		t.Fatalf("cancellation did not stop the map early (ran %d tasks)", n)
	}
}

func TestMapChunksCoversRangeInOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, grain := range []int{1, 3, 7, 100, 1000} {
			got, err := MapChunks(context.Background(), New(workers), 101, grain,
				func(lo, hi int) ([]int, error) {
					if lo >= hi {
						return nil, fmt.Errorf("empty chunk [%d, %d)", lo, hi)
					}
					var out []int
					for i := lo; i < hi; i++ {
						out = append(out, i)
					}
					return out, nil
				})
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			var flat []int
			for _, c := range got {
				flat = append(flat, c...)
			}
			if len(flat) != 101 {
				t.Fatalf("workers=%d grain=%d: covered %d indices", workers, grain, len(flat))
			}
			for i, v := range flat {
				if v != i {
					t.Fatalf("workers=%d grain=%d: flat[%d] = %d", workers, grain, i, v)
				}
			}
		}
	}
}

func TestGrainFor(t *testing.T) {
	p := New(4)
	if g := GrainFor(0, p); g != 1 {
		t.Fatalf("GrainFor(0) = %d, want 1", g)
	}
	if g := GrainFor(1_000_000, p); g != 1_000_000/(16*4) {
		t.Fatalf("GrainFor(1e6) = %d", g)
	}
}

// TestMapDeterministicFloatReduction is the contract test: an index-ordered
// fold over Map results must not depend on the worker count, even for
// order-sensitive float64 accumulation.
func TestMapDeterministicFloatReduction(t *testing.T) {
	sum := func(workers int) float64 {
		vals, err := Map(context.Background(), New(workers), 10_000, func(i int) (float64, error) {
			return 1.0 / float64(i+1), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}
	want := sum(1)
	for _, workers := range []int{2, 4, 8} {
		if got := sum(workers); got != want {
			t.Fatalf("workers=%d: sum %v != sequential %v", workers, got, want)
		}
	}
}

func TestMapChunksIntoReusesBuffer(t *testing.T) {
	buf := make([]int, 8)
	out, err := MapChunksInto(context.Background(), New(2), 40, 10, buf,
		func(lo, hi int) (int, error) { return hi - lo, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || cap(out) != 8 {
		t.Fatalf("len/cap = %d/%d, want 4/8 (buffer not reused)", len(out), cap(out))
	}
	for _, v := range out {
		if v != 10 {
			t.Fatalf("chunk sizes %v", out)
		}
	}
	// Under-sized buffer grows.
	out2, err := MapChunksInto(context.Background(), New(1), 100, 10, out,
		func(lo, hi int) (int, error) { return lo, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 10 {
		t.Fatalf("grown len = %d, want 10", len(out2))
	}
	for i, v := range out2 {
		if v != i*10 {
			t.Fatalf("out2[%d] = %d", i, v)
		}
	}
	// n <= 0 returns an empty view of the buffer.
	empty, err := MapChunksInto(context.Background(), New(1), 0, 10, out2,
		func(lo, hi int) (int, error) { return 0, nil })
	if err != nil || len(empty) != 0 {
		t.Fatalf("n=0: (%v, %v)", empty, err)
	}
}

// TestMapChunksIntoSteadyStateZeroAlloc: repeated scans with a threaded
// buffer — the greedy attack's per-step pattern — must not allocate on a
// sequential pool.
func TestMapChunksIntoSteadyStateZeroAlloc(t *testing.T) {
	p := New(1)
	ctx := context.Background()
	buf := make([]float64, 0, 64)
	sink := 0.0
	allocs := testing.AllocsPerRun(10, func() {
		out, err := MapChunksInto(ctx, p, 10_000, 256, buf,
			func(lo, hi int) (float64, error) { return float64(hi - lo), nil })
		if err != nil {
			t.Fatal(err)
		}
		buf = out
		sink += out[0]
	})
	if allocs > 0 {
		t.Fatalf("steady-state MapChunksInto allocated %v times", allocs)
	}
	_ = sink
}

// TestNestedParallelMaps guards the deadlock-freedom claim of the helper
// pool: inner parallel maps run while every helper may be busy with outer
// tasks, because the submitting goroutine always participates.
func TestNestedParallelMaps(t *testing.T) {
	outer := New(4)
	inner := New(4)
	got, err := Map(context.Background(), outer, 16, func(i int) (int, error) {
		vals, err := Map(context.Background(), inner, 100, func(j int) (int, error) {
			return i * j, nil
		})
		if err != nil {
			return 0, err
		}
		s := 0
		for _, v := range vals {
			s += v
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := i * 4950; v != want {
			t.Fatalf("got[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestConcurrentIndependentMaps stresses many simultaneous jobs sharing the
// helper pool.
func TestConcurrentIndependentMaps(t *testing.T) {
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			for rep := 0; rep < 20; rep++ {
				vals, err := Map(context.Background(), New(3), 50, func(i int) (int, error) {
					return g*1000 + i, nil
				})
				if err != nil {
					errs <- err
					return
				}
				for i, v := range vals {
					if v != g*1000+i {
						errs <- fmt.Errorf("goroutine %d rep %d: vals[%d] = %d", g, rep, i, v)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestGrainForMin(t *testing.T) {
	p := New(4)
	if g := GrainForMin(100, p, 512); g != 512 {
		t.Fatalf("GrainForMin small n = %d, want the floor 512", g)
	}
	if g := GrainForMin(1_000_000, p, 512); g != 1_000_000/(16*4) {
		t.Fatalf("GrainForMin large n = %d, want GrainFor value", g)
	}
}

func BenchmarkEngineMapOverhead(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := New(workers)
			for i := 0; i < b.N; i++ {
				_, err := MapChunks(ctx, p, 1<<16, 1<<12, func(lo, hi int) (float64, error) {
					s := 0.0
					for j := lo; j < hi; j++ {
						s += float64(j)
					}
					return s, nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
