// Package engine is the repository's parallel execution substrate: a
// bounded worker pool with DETERMINISTIC, index-ordered results.
//
// Every sweep in this codebase — per-gap candidate evaluation inside the
// greedy attack, per-segment second-stage attacks of Algorithm 2, and the
// per-cell figure sweeps of internal/bench — is a pure function of its task
// index. The engine exploits that: tasks are distributed to workers by an
// atomic cursor (so load balances dynamically), but results land in a slice
// indexed by task, and callers reduce that slice in index order. The output
// is therefore byte-identical to a sequential run for any worker count,
// which the equivalence tests in core and bench enforce.
//
// Determinism contract:
//
//  1. Task functions must be pure with respect to the task index (no
//     dependence on execution order or shared mutable state beyond
//     memoization of deterministic values).
//  2. Map/MapChunks return results in task-index order, never completion
//     order.
//  3. Callers must fold results in index order (floating-point reductions
//     are order-sensitive).
//
// Under this contract, workers=1 and workers=NumCPU produce identical
// bytes, so parallelism is a pure performance knob.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of concurrent workers used by Map and MapChunks.
// The zero-value / nil Pool is sequential.
type Pool struct {
	workers int
}

// New returns a pool with the given worker bound. workers <= 0 selects
// runtime.GOMAXPROCS(0) — "use every core". workers == 1 is strictly
// sequential: task functions run inline on the calling goroutine.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Sequential reports whether the pool runs tasks inline.
func (p *Pool) Sequential() bool { return p.Workers() == 1 }

// ctxErr is a non-blocking cancellation check.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in index order. With a sequential pool, tasks run inline in increasing
// index order — exactly the historical single-threaded loops this package
// replaces. With a parallel pool, tasks are claimed from an atomic cursor.
//
// The first error (by task index, matching what a sequential run would have
// reported) aborts the map; remaining tasks are skipped once it is observed.
// Context cancellation aborts between tasks with ctx.Err().
func Map[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctxErr(ctx)
	}
	out := make([]T, n)
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		cursor int64 = -1 // next task = atomic add
		stop   int32      // set once a worker sees an error/cancellation
		mu     sync.Mutex
		errIdx = n // lowest failing task index seen so far
		first  error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		atomic.StoreInt32(&stop, 1)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if atomic.LoadInt32(&stop) != 0 {
					return
				}
				if err := ctxErr(ctx); err != nil {
					record(-1, err) // cancellation outranks any task error
					return
				}
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					record(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

// MapChunks partitions [0, n) into contiguous chunks of at most grain
// indices and runs fn(lo, hi) per chunk, returning per-chunk results in
// chunk order. It is the batching form of Map for very cheap per-index
// work (e.g. the O(1) candidate evaluations of the single-point attack),
// where per-task scheduling overhead would dominate.
//
// Chunk boundaries never affect results under the package's determinism
// contract: callers scan [lo, hi) in increasing order and reduce chunk
// results in chunk order, which composes to the full sequential scan.
func MapChunks[T any](ctx context.Context, p *Pool, n, grain int, fn func(lo, hi int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctxErr(ctx)
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	return Map(ctx, p, chunks, func(c int) (T, error) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// GrainFor returns a chunk size that splits n indices into roughly 16
// chunks per worker — enough slack for dynamic load balancing when per-index
// cost varies (gap widths differ wildly) without drowning cheap loops in
// scheduling overhead. Callers with very cheap per-index work should clamp
// the result up to a floor of their choosing.
func GrainFor(n int, p *Pool) int {
	g := n / (16 * p.Workers())
	if g < 1 {
		g = 1
	}
	return g
}
