// Package engine is the repository's parallel execution substrate: a
// bounded worker pool with DETERMINISTIC, index-ordered results.
//
// Every sweep in this codebase — per-gap candidate evaluation inside the
// greedy attack, per-segment second-stage attacks of Algorithm 2, and the
// per-cell figure sweeps of internal/bench — is a pure function of its task
// index. The engine exploits that: tasks are distributed to workers by an
// atomic cursor (so load balances dynamically), but results land in a slice
// indexed by task, and callers reduce that slice in index order. The output
// is therefore byte-identical to a sequential run for any worker count,
// which the equivalence tests in core and bench enforce.
//
// Determinism contract:
//
//  1. Task functions must be pure with respect to the task index (no
//     dependence on execution order or shared mutable state beyond
//     memoization of deterministic values).
//  2. Map/MapChunks return results in task-index order, never completion
//     order.
//  3. Callers must fold results in index order (floating-point reductions
//     are order-sensitive).
//
// Under this contract, workers=1 and workers=NumCPU produce identical
// bytes, so parallelism is a pure performance knob.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of concurrent workers used by Map and MapChunks.
// The zero-value / nil Pool is sequential.
type Pool struct {
	workers int
}

// New returns a pool with the given worker bound. workers <= 0 selects
// runtime.GOMAXPROCS(0) — "use every core". workers == 1 is strictly
// sequential: task functions run inline on the calling goroutine.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Sequential reports whether the pool runs tasks inline.
func (p *Pool) Sequential() bool { return p.Workers() == 1 }

// ctxErr is a non-blocking cancellation check.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in index order. With a sequential pool, tasks run inline in increasing
// index order — exactly the historical single-threaded loops this package
// replaces. With a parallel pool, tasks are claimed from an atomic cursor
// by the calling goroutine plus up to workers−1 helpers borrowed from a
// persistent package-level pool (see job), so a Map call costs no goroutine
// spawns.
//
// The first error (by task index, matching what a sequential run would have
// reported) aborts the map; remaining tasks are skipped once it is observed.
// Context cancellation aborts between tasks with ctx.Err().
func Map[T any](ctx context.Context, p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctxErr(ctx)
	}
	out := make([]T, n)
	if err := mapInto(ctx, p, n, out, fn); err != nil {
		return nil, err
	}
	return out, nil
}

// mapInto is Map writing into a caller-provided slice (len(out) >= n).
func mapInto[T any](ctx context.Context, p *Pool, n int, out []T, fn func(i int) (T, error)) error {
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			v, err := fn(i)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}

	var (
		mu     sync.Mutex
		errIdx = n // lowest failing task index seen so far
		first  error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
	}
	j := &job{n: int64(n), done: make(chan struct{})}
	j.fn = func(i int) bool {
		if err := ctxErr(ctx); err != nil {
			record(-1, err) // cancellation outranks any task error
			return false
		}
		v, err := fn(i)
		if err != nil {
			record(i, err)
			return false
		}
		out[i] = v
		return true
	}
	j.submit(workers - 1)
	return first
}

// A job is one parallel map invocation's shared work state. Task indices
// are handed out by an atomic cursor; the submitting goroutine always
// participates, and idle helpers from the package-level pool join via
// tokens. Because the submitter alone is sufficient for progress, nested
// parallel maps (Algorithm 2's per-segment phases running parallel inner
// scans) can never deadlock, no matter how busy the helpers are.
type job struct {
	fn     func(i int) bool // false poisons the cursor (error or cancellation)
	n      int64
	cursor atomic.Int64
	// state packs a "closed" gate bit with the count of helpers currently
	// inside run(). The submitter closes the gate after its own run()
	// returns, then waits for the count to drain, so fn — a closure over
	// the submitter's stack — is never invoked after the map returns.
	state atomic.Int64
	done  chan struct{} // closed by the last helper to leave a closed job
}

// jobClosed is the gate bit in job.state.
const jobClosed = int64(1) << 62

var (
	helperOnce   sync.Once
	helperTokens chan *job
)

// startHelpers parks one helper goroutine per core, once per process.
// Attack loops issue one short Map per greedy step — thousands per sweep —
// and spawning fresh goroutines for each was measurable allocation and
// latency; a parked helper costs one channel send to recruit.
func startHelpers() {
	helperTokens = make(chan *job, 1024)
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for j := range helperTokens {
				j.help()
			}
		}()
	}
}

// help joins the job unless its gate already closed (a stale token).
func (j *job) help() {
	for {
		s := j.state.Load()
		if s&jobClosed != 0 {
			return
		}
		if j.state.CompareAndSwap(s, s+1) {
			break
		}
	}
	j.run()
	if j.state.Add(-1) == jobClosed {
		close(j.done) // gate closed and this was the last helper out
	}
}

// run claims and executes tasks until the cursor is exhausted or poisoned.
func (j *job) run() {
	for {
		i := j.cursor.Add(1) - 1
		if i >= j.n {
			return
		}
		if !j.fn(int(i)) {
			j.cursor.Store(j.n) // poison: everyone else's next claim exits
			return
		}
	}
}

// submit recruits up to extra helpers, works the job on the calling
// goroutine, and returns only when every participant has left the job.
func (j *job) submit(extra int) {
	helperOnce.Do(startHelpers)
recruit:
	for i := 0; i < extra; i++ {
		select {
		case helperTokens <- j:
		default:
			break recruit // buffer full: caller still finishes the job alone
		}
	}
	j.run()
	for {
		s := j.state.Load()
		if j.state.CompareAndSwap(s, s|jobClosed) {
			if s == 0 {
				return // no helper inside; done will never be closed
			}
			break
		}
	}
	<-j.done
}

// MapChunks partitions [0, n) into contiguous chunks of at most grain
// indices and runs fn(lo, hi) per chunk, returning per-chunk results in
// chunk order. It is the batching form of Map for very cheap per-index
// work (e.g. the O(1) candidate evaluations of the single-point attack),
// where per-task scheduling overhead would dominate.
//
// Chunk boundaries never affect results under the package's determinism
// contract: callers scan [lo, hi) in increasing order and reduce chunk
// results in chunk order, which composes to the full sequential scan.
func MapChunks[T any](ctx context.Context, p *Pool, n, grain int, fn func(lo, hi int) (T, error)) ([]T, error) {
	out, err := MapChunksInto(ctx, p, n, grain, nil, fn)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapChunksInto is MapChunks with a caller-provided result buffer, reused
// when its capacity suffices and grown otherwise; it returns the buffer
// actually used. High-frequency scans — the greedy attack runs one chunked
// candidate scan per inserted key — hold one buffer across calls and reach
// a zero-allocation steady state (see DESIGN.md §3, "Allocation budget").
// On error the returned buffer is still valid for reuse but its contents
// are meaningless.
func MapChunksInto[T any](ctx context.Context, p *Pool, n, grain int, buf []T, fn func(lo, hi int) (T, error)) ([]T, error) {
	if n <= 0 {
		return buf[:0], ctxErr(ctx)
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if cap(buf) < chunks {
		buf = make([]T, chunks)
	} else {
		buf = buf[:chunks]
	}
	if p.Workers() == 1 || chunks == 1 {
		// Inline sequential loop: the adapter closure below would escape and
		// cost one heap allocation per call, which is exactly what the
		// buffer-reusing callers are here to avoid.
		for c := 0; c < chunks; c++ {
			if err := ctxErr(ctx); err != nil {
				return buf, err
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			v, err := fn(lo, hi)
			if err != nil {
				return buf, err
			}
			buf[c] = v
		}
		return buf, nil
	}
	err := mapInto(ctx, p, chunks, buf, func(c int) (T, error) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
	return buf, err
}

// GrainFor returns a chunk size that splits n indices into roughly 16
// chunks per worker — enough slack for dynamic load balancing when per-index
// cost varies (gap widths differ wildly) without drowning cheap loops in
// scheduling overhead. Callers with very cheap per-index work should clamp
// the result up to a floor of their choosing.
func GrainFor(n int, p *Pool) int {
	g := n / (16 * p.Workers())
	if g < 1 {
		g = 1
	}
	return g
}

// GrainForMin is GrainFor clamped up to floor. The incremental attack
// kernel made per-candidate work a handful of float operations, so scans
// over candidates need coarser chunks than GrainFor's default before
// scheduling overhead stops mattering; callers state their floor here
// instead of open-coding the clamp.
func GrainForMin(n int, p *Pool, floor int) int {
	g := GrainFor(n, p)
	if g < floor {
		g = floor
	}
	return g
}
