package dataset

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func checkSet(t *testing.T, s keys.Set, n int, lo, hi int64) {
	t.Helper()
	if s.Len() != n {
		t.Fatalf("got %d keys, want %d", s.Len(), n)
	}
	if n == 0 {
		return
	}
	if s.Min() < lo || s.Max() > hi {
		t.Fatalf("keys [%d,%d] outside [%d,%d]", s.Min(), s.Max(), lo, hi)
	}
	ks := s.Keys()
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("keys not strictly increasing at %d", i)
		}
	}
}

func TestUniformBasics(t *testing.T) {
	rng := xrand.New(1)
	s, err := Uniform(rng, 1000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, 1000, 0, 9999)
	// Mean of a uniform sample over [0, m) should be near m/2.
	var sum float64
	for _, k := range s.Keys() {
		sum += float64(k)
	}
	if mean := sum / 1000; math.Abs(mean-5000) > 400 {
		t.Errorf("uniform mean %v too far from 5000", mean)
	}
}

func TestUniformFullDensity(t *testing.T) {
	rng := xrand.New(2)
	s, err := Uniform(rng, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, 100, 0, 99)
	if !s.Saturated() {
		t.Error("full-density set must be saturated")
	}
}

func TestUniformInfeasible(t *testing.T) {
	rng := xrand.New(3)
	if _, err := Uniform(rng, 11, 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := Uniform(rng, -1, 10); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, _ := Uniform(xrand.New(7), 500, 5000)
	b, _ := Uniform(xrand.New(7), 500, 5000)
	if !a.Equal(b) {
		t.Fatal("same seed produced different uniform sets")
	}
}

func TestNormalBasics(t *testing.T) {
	rng := xrand.New(4)
	const n, m = 1000, 10000
	s, err := Normal(rng, n, m)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, n, 0, m-1)
	// The center should be denser than the edges: count keys in the middle
	// fifth vs the first fifth.
	mid, edge := 0, 0
	for _, k := range s.Keys() {
		if k >= 4000 && k < 6000 {
			mid++
		}
		if k < 2000 {
			edge++
		}
	}
	if mid <= edge {
		t.Errorf("normal shape wrong: middle %d <= edge %d", mid, edge)
	}
}

func TestNormalHighDensity(t *testing.T) {
	// 80% density (the hardest Figure 8 cell) must still produce exactly n
	// unique in-domain keys via monotone quantization.
	rng := xrand.New(5)
	s, err := Normal(rng, 800, 1000)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, 800, 0, 999)
}

func TestLogNormalBasics(t *testing.T) {
	rng := xrand.New(6)
	const n, m = 5000, 1000000
	s, err := LogNormal(rng, n, m, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, n, 0, m-1)
	// Skew: the median key must sit far below the domain midpoint.
	med := s.At(n / 2)
	if med > m/4 {
		t.Errorf("log-normal median key %d not skewed low (domain %d)", med, m)
	}
}

func TestLogNormalDenseCenterHasGaps(t *testing.T) {
	// The feasibility headroom must leave free slots even in the dense
	// low-end region, otherwise second-stage models there cannot be
	// poisoned at all and the Figure 6 shape collapses.
	rng := xrand.New(7)
	const n, m = 20000, 2000000
	s, err := LogNormal(rng, n, m, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, n, 0, m-1)
	quarter := s.Slice(0, n/4) // the most concentrated prefix
	if quarter.Saturated() {
		t.Error("dense log-normal prefix is fully saturated; no poisoning slots remain")
	}
	free := quarter.FreeSlots()
	span := quarter.Max() - quarter.Min() + 1
	if frac := float64(free) / float64(span); frac < 0.05 {
		t.Errorf("dense prefix free-slot fraction %.3f too small", frac)
	}
}

func TestLogNormalDeterministic(t *testing.T) {
	a, _ := LogNormal(xrand.New(9), 2000, 500000, 0, 2)
	b, _ := LogNormal(xrand.New(9), 2000, 500000, 0, 2)
	if !a.Equal(b) {
		t.Fatal("same seed produced different log-normal sets")
	}
}

func TestQuantizeMonotoneProperties(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		rng := xrand.New(uint64(seed))
		n := int(nRaw)%200 + 1
		m := int64(n) + int64(rng.Intn(3*n+1))
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * float64(m)
		}
		sort.Float64s(samples)
		out, err := quantizeMonotone(samples, m)
		if err != nil {
			return false
		}
		if len(out) != n {
			return false
		}
		for i, k := range out {
			if k < 0 || k >= m {
				return false
			}
			if i > 0 && out[i-1] >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeMonotoneExactFit(t *testing.T) {
	// n == m: the only feasible assignment is 0..n-1 regardless of samples.
	samples := []float64{5, 5, 5, 5}
	out, err := quantizeMonotone(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range out {
		if k != int64(i) {
			t.Fatalf("exact fit broken: %v", out)
		}
	}
	if _, err := quantizeMonotone([]float64{1, 2}, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatal("overfull quantization accepted")
	}
}

func TestFeasibleScale(t *testing.T) {
	// For sorted samples 1,2,3,4 with headroom 1, the binding constraint is
	// c*1 >= 1, c*2 >= 2 … → c = 1.
	if c := feasibleScale([]float64{1, 2, 3, 4}, 1); math.Abs(c-1) > 1e-12 {
		t.Errorf("scale = %v, want 1", c)
	}
	// Concentrated prefix: samples 0.001, 0.001... need big scale.
	c := feasibleScale([]float64{0.001, 0.002, 10}, 1)
	if c < 1000 {
		t.Errorf("scale = %v, want >= 1000", c)
	}
	// All non-positive → fallback 1.
	if c := feasibleScale([]float64{0, 0}, 1); c != 1 {
		t.Errorf("degenerate scale = %v", c)
	}
}

func TestMiamiSalaries(t *testing.T) {
	rng := xrand.New(10)
	s, err := MiamiSalaries(rng)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, SalaryCount, SalaryMin, SalaryMax)
	// Shape: median salary in a plausible band, right skew (mean > median).
	med := float64(s.At(SalaryCount / 2))
	var sum float64
	for _, k := range s.Keys() {
		sum += float64(k)
	}
	mean := sum / SalaryCount
	if med < 40000 || med > 90000 {
		t.Errorf("median salary %v implausible", med)
	}
	if mean <= med {
		t.Errorf("salary distribution not right-skewed: mean %v <= median %v", mean, med)
	}
}

func TestMiamiSalariesScaled(t *testing.T) {
	rng := xrand.New(11)
	s, err := MiamiSalariesN(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, 500, SalaryMin, SalaryMax)
}

func TestOSMLatitudesScaled(t *testing.T) {
	rng := xrand.New(12)
	const n = 30000
	s, err := OSMLatitudesN(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, n, 0, OSMDomain-1)
	// Multimodality: the Europe belt (48° → (48+30)*15000 = 1,170,000) region
	// must be denser than the empty southern ocean belt (−25° → 75,000).
	europe, south := 0, 0
	for _, k := range s.Keys() {
		if k > 1100000 {
			europe++
		}
		if k < 150000 {
			south++
		}
	}
	if europe <= south {
		t.Errorf("latitude mixture shape wrong: europe %d <= south %d", europe, south)
	}
}

func TestOSMFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size OSM generation in -short mode")
	}
	rng := xrand.New(13)
	s, err := OSMLatitudes(rng)
	if err != nil {
		t.Fatal(err)
	}
	checkSet(t, s, OSMCount, 0, OSMDomain-1)
	if got := s.Density(OSMDomain); math.Abs(got-0.2525) > 0.001 {
		t.Errorf("density %v, want ~0.2525", got)
	}
}

func TestBeltWeightsSumToOne(t *testing.T) {
	sum := 0.0
	for _, b := range osmBelts {
		sum += b.weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("belt weights sum to %v", sum)
	}
}
