// Package dataset generates the workloads of the paper's evaluation:
// uniform, log-normal(0,2), and normal key distributions over configurable
// integer domains, plus seeded simulators of the two real-world datasets
// (Miami-Dade employee salaries and OpenStreetMap school latitudes).
//
// Every generator returns a keys.Set of exactly n unique non-negative
// integer keys and is fully deterministic given the RNG.
//
// # Unique-integer quantization
//
// Continuous samples must become unique integers. Dropping duplicates would
// change n, so we use monotone quantization: sort the samples, assign
// k_i = max(round(s_i), k_{i-1}+1), then run a backward pass clamping from
// the domain top so everything fits in [0, m). Heavily saturated regions
// become runs of consecutive keys — exactly what deduplicated real data
// looks like at those densities.
//
// For the log-normal workload with sigma = 2, naive domain-filling scaling
// is infeasible: half the mass lands in an exponentially small prefix of
// the domain, which cannot host n/2 unique integers. feasibleScale picks
// the smallest scale factor under which every prefix AND every local window
// of the sorted sample has enough integer slots (with a headroom so gaps
// remain interleaved through dense regions for the attacker to use), and
// samples beyond the domain top -- or beyond the 99.5% quantile -- are
// redrawn (a truncated log-normal). This preserves the property the
// paper's experiments rely on: concentrated regions with small clean loss
// that are still poisonable, next to sparse tails. See EXPERIMENTS.md for
// how the residual differences from the paper's (unspecified) generator
// show up at reduced scales.
package dataset

import (
	"errors"
	"fmt"
	"sort"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// ErrInfeasible is returned when n unique keys cannot be placed in the
// requested domain (n > m) or a generator exhausted its redraw budget.
var ErrInfeasible = errors.New("dataset: cannot place n unique keys in domain")

// Uniform returns n unique keys drawn uniformly without replacement from
// [0, m). This is the workload of Figures 2–6 (uniform rows).
func Uniform(rng *xrand.RNG, n int, m int64) (keys.Set, error) {
	if err := checkNM(n, m); err != nil {
		return keys.Set{}, err
	}
	raw := xrand.SampleInt64s(rng, n, m)
	return keys.New(raw)
}

// Normal returns n unique keys in [0, m) distributed according to the
// paper's Figure 8 parameterization: a normal with mean mu = m/2 and
// standard deviation sigma = m/3, truncated to the domain (out-of-range
// draws are rejected and redrawn).
func Normal(rng *xrand.RNG, n int, m int64) (keys.Set, error) {
	if err := checkNM(n, m); err != nil {
		return keys.Set{}, err
	}
	mu := float64(m) / 2
	sigma := float64(m) / 3
	samples := make([]float64, n)
	const maxAttemptsPerSample = 10000
	for i := range samples {
		ok := false
		for a := 0; a < maxAttemptsPerSample; a++ {
			v := mu + sigma*rng.NormFloat64()
			if v >= 0 && v < float64(m) {
				samples[i] = v
				ok = true
				break
			}
		}
		if !ok {
			return keys.Set{}, fmt.Errorf("%w: truncated normal rejection stuck", ErrInfeasible)
		}
	}
	sort.Float64s(samples)
	ks, err := quantizeMonotone(samples, m)
	if err != nil {
		return keys.Set{}, err
	}
	return keys.FromSorted(ks), nil
}

// LogNormal returns n unique keys in [0, m) whose continuous law is
// log-normal with log-space parameters (mu, sigma); the paper's skewed
// synthetic workload uses mu=0, sigma=2 (Section V-B). The scale factor
// mapping variates to keys is chosen by feasibleScale; variates that would
// land at or beyond m are redrawn (truncated upper tail).
func LogNormal(rng *xrand.RNG, n int, m int64, mu, sigma float64) (keys.Set, error) {
	if err := checkNM(n, m); err != nil {
		return keys.Set{}, err
	}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = rng.LogNormFloat64(mu, sigma)
	}
	sort.Float64s(samples)

	const headroom = 1.25 // keep >=20% free slots in saturated regions
	scale := lognormalScale(samples, headroom, m)
	// Truncate the extreme upper tail: samples beyond the domain top under
	// the chosen scale are redrawn, and independently of the domain the top
	// 0.5% quantile is clipped. A sigma=2 log-normal's maximum grows like
	// exp(2·z_max) and a single straggler key would stretch the last
	// second-stage model across a nearly empty range, drowning every other
	// model's loss in the L_RMI average — a tail artifact, not the
	// distributional shape the paper's experiments target.
	qCap := samples[(len(samples)-1)*995/1000]
	// Each redraw round may shift feasibleScale slightly; iterate to a
	// fixed point.
	const maxRounds = 32
	for round := 0; ; round++ {
		if round == maxRounds {
			return keys.Set{}, fmt.Errorf("%w: log-normal truncation did not converge", ErrInfeasible)
		}
		limit := (float64(m) - 1) / scale
		if qCap < limit {
			limit = qCap
		}
		redrawn := false
		for i := range samples {
			if samples[i] > limit {
				redrawn = true
				v := samples[i]
				for a := 0; a < 100000 && v > limit; a++ {
					v = rng.LogNormFloat64(mu, sigma)
				}
				if v > limit {
					return keys.Set{}, fmt.Errorf("%w: log-normal redraw stuck", ErrInfeasible)
				}
				samples[i] = v
			}
		}
		if !redrawn {
			break
		}
		sort.Float64s(samples)
		scale = lognormalScale(samples, headroom, m)
	}
	scaled := make([]float64, n)
	for i, s := range samples {
		scaled[i] = s * scale
	}
	ks, err := quantizeMonotone(scaled, m)
	if err != nil {
		return keys.Set{}, err
	}
	return keys.FromSorted(ks), nil
}

func checkNM(n int, m int64) error {
	if n < 0 {
		return fmt.Errorf("dataset: negative key count %d", n)
	}
	if int64(n) > m {
		return fmt.Errorf("%w: n=%d, m=%d", ErrInfeasible, n, m)
	}
	return nil
}

// lognormalScale picks the multiplier mapping log-normal variates to keys:
// the smallest scale under which every concentrated region has room for
// unique integers with the headroom's worth of free slots (feasibleScale).
// The key universe [0, m) acts as an upper bound only — the skewed sample
// concentrates in the low end of generous domains, as any fixed-scale
// integer quantization of a sigma=2 log-normal must (filling a domain of
// 100n slots would require the dense center to hold more unique integers
// than it has slots). This preserves the regime the paper's log-normal
// experiments exercise: concentrated regions whose models have tiny clean
// loss but remain poisonable.
func lognormalScale(sorted []float64, headroom float64, m int64) float64 {
	return feasibleScale(sorted, headroom)
}

// feasibleScale returns a multiplier c under which the sample can be
// quantized to unique integers with the given headroom of free slots, both
// globally and locally:
//
//   - prefix feasibility: c·s_i >= (i+1)·headroom for all i, so every
//     prefix of the concentrated low end has room;
//   - windowed feasibility: for sliding windows of geometrically growing
//     widths, c·(s_j − s_i) >= (j−i)·headroom, so free slots are
//     interleaved *throughout* dense regions instead of accumulating at
//     region boundaries.
//
// The windowed constraint is what preserves the paper's log-normal regime:
// second-stage models over concentrated keys must have tiny clean loss AND
// remain poisonable (gaps inside the dense run). Without it, monotone
// quantization turns the whole dense center into one saturated consecutive
// run that no attacker can touch.
func feasibleScale(sorted []float64, headroom float64) float64 {
	c := 0.0
	for i, s := range sorted {
		if s <= 0 {
			continue
		}
		if need := float64(i+1) * headroom / s; need > c {
			c = need
		}
	}
	// Windows narrower than ~32 samples are dominated by order-statistic
	// noise (near-ties would blow the scale up); solid runs below that
	// length are harmless, since they are far shorter than any second-stage
	// model the experiments use.
	n := len(sorted)
	for w := 32; w < n/2; w *= 2 {
		for i := 0; i+w < n; i += w / 2 {
			span := sorted[i+w] - sorted[i]
			if span <= 0 {
				continue
			}
			if need := float64(w) * headroom / span; need > c {
				c = need
			}
		}
	}
	if c == 0 {
		c = 1
	}
	return c
}

// quantizeMonotone turns ascending float samples into strictly increasing
// integer keys in [0, m): a forward pass rounds and pushes collisions up,
// and, if the top overflows the domain, a backward pass pushes keys down
// from m−1. Feasible whenever len(samples) <= m.
func quantizeMonotone(sorted []float64, m int64) ([]int64, error) {
	n := len(sorted)
	if int64(n) > m {
		return nil, fmt.Errorf("%w: n=%d, m=%d", ErrInfeasible, n, m)
	}
	out := make([]int64, n)
	prev := int64(-1)
	for i, s := range sorted {
		k := int64(s + 0.5)
		if k <= prev {
			k = prev + 1
		}
		if k < 0 {
			k = 0
			if k <= prev {
				k = prev + 1
			}
		}
		out[i] = k
		prev = k
	}
	// Backward pass: clamp into the domain from the top.
	limit := m - 1
	for i := n - 1; i >= 0; i-- {
		if out[i] > limit {
			out[i] = limit
		}
		limit = out[i] - 1
	}
	if n > 0 && out[0] < 0 {
		return nil, fmt.Errorf("%w: backward pass underflow", ErrInfeasible)
	}
	return out, nil
}

// Miami-Dade salary simulation (Figure 7, dataset A). The paper filters the
// public salary records to n=5,300 unique salaries between $22,733 and
// $190,034, a key universe of m=167,301 interior values (3–4% density).
// We have no license to redistribute the CSV, so we simulate the same CDF
// shape: a right-skewed log-normal salary distribution with the median near
// $55k, truncated to the same range, quantized to unique integers.
const (
	SalaryMin   = 22733
	SalaryMax   = 190034
	SalaryCount = 5300
	// SalaryDomain is the size of the key universe as the paper states it.
	SalaryDomain = 167301
)

// MiamiSalaries returns the simulated salary key set: exactly SalaryCount
// unique keys in [SalaryMin, SalaryMax].
func MiamiSalaries(rng *xrand.RNG) (keys.Set, error) {
	return MiamiSalariesN(rng, SalaryCount)
}

// MiamiSalariesN is MiamiSalaries with a configurable key count (scaled-down
// experiment cells); the domain stays [SalaryMin, SalaryMax].
func MiamiSalariesN(rng *xrand.RNG, n int) (keys.Set, error) {
	width := int64(SalaryMax - SalaryMin + 1)
	if err := checkNM(n, width); err != nil {
		return keys.Set{}, err
	}
	const (
		logMedian = 10.37 // exp ≈ $32k above SalaryMin → median salary ≈ $55k
		logSigma  = 0.45
	)
	samples := make([]float64, n)
	for i := range samples {
		ok := false
		for a := 0; a < 10000; a++ {
			v := rng.LogNormFloat64(logMedian, logSigma)
			if v < float64(width) {
				samples[i] = v
				ok = true
				break
			}
		}
		if !ok {
			return keys.Set{}, fmt.Errorf("%w: salary redraw stuck", ErrInfeasible)
		}
	}
	sort.Float64s(samples)
	ks, err := quantizeMonotone(samples, width)
	if err != nil {
		return keys.Set{}, err
	}
	for i := range ks {
		ks[i] += SalaryMin
	}
	return keys.FromSorted(ks), nil
}

// OpenStreetMap school-latitude simulation (Figure 7, dataset B). The paper
// takes school locations with latitude in [−30, +50], scales by 15,000 and
// rounds, yielding n=302,973 unique keys in a universe of m=1,200,000
// (25.25% density). We simulate the same multimodal CDF with a mixture of
// normals centered on the real population belts, truncated to the same
// range and scaled identically.
const (
	OSMCount  = 302973
	OSMDomain = 1200000
	osmLatLo  = -30.0
	osmLatHi  = 50.0
	osmScale  = 15000.0
)

// latBelt is one mixture component of the latitude model.
type latBelt struct {
	center float64 // degrees latitude
	std    float64
	weight float64
}

var osmBelts = []latBelt{
	{center: 48, std: 5, weight: 0.28},  // Europe
	{center: 23, std: 7, weight: 0.24},  // India / SE Asia
	{center: 35, std: 5, weight: 0.18},  // East Asia
	{center: 39, std: 6, weight: 0.14},  // North America
	{center: -15, std: 7, weight: 0.08}, // South America
	{center: 5, std: 10, weight: 0.08},  // Africa
}

// OSMLatitudes returns the simulated school-latitude key set at the paper's
// full size (n=302,973 keys in [0, 1,200,000)).
func OSMLatitudes(rng *xrand.RNG) (keys.Set, error) {
	return OSMLatitudesN(rng, OSMCount)
}

// OSMLatitudesN is OSMLatitudes with a configurable key count; the domain
// stays [0, OSMDomain) so that density scales with n.
func OSMLatitudesN(rng *xrand.RNG, n int) (keys.Set, error) {
	if err := checkNM(n, OSMDomain); err != nil {
		return keys.Set{}, err
	}
	samples := make([]float64, n)
	for i := range samples {
		ok := false
		for a := 0; a < 10000; a++ {
			b := pickBelt(rng)
			lat := b.center + b.std*rng.NormFloat64()
			if lat >= osmLatLo && lat <= osmLatHi {
				samples[i] = (lat - osmLatLo) * osmScale
				ok = true
				break
			}
		}
		if !ok {
			return keys.Set{}, fmt.Errorf("%w: latitude redraw stuck", ErrInfeasible)
		}
	}
	sort.Float64s(samples)
	ks, err := quantizeMonotone(samples, OSMDomain)
	if err != nil {
		return keys.Set{}, err
	}
	return keys.FromSorted(ks), nil
}

func pickBelt(rng *xrand.RNG) latBelt {
	u := rng.Float64()
	acc := 0.0
	for _, b := range osmBelts {
		acc += b.weight
		if u < acc {
			return b
		}
	}
	return osmBelts[len(osmBelts)-1]
}
