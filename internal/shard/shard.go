// Package shard implements a range-partitioned sharded index: a router
// fitted over the initial key CDF in front of N independent dynamic shards
// (internal/dynamic), behind the index.Backend contract.
//
// This is the serving-layer shape production learned-index systems take —
// one cheap router, many small models, writes absorbed per shard — and the
// victim of core.ServeAttack: poisoning a sharded index concentrates damage
// in the shards whose ranges the attacker floods, which surfaces as shard
// imbalance and per-shard retrain churn on top of model loss.
//
// Router invariants:
//
//  1. The router is FROZEN at construction: cut keys are derived from the
//     regression line fitted on the initial key CDF (inverted at equal-mass
//     rank cuts; empirical quantile fallback when the model's cuts would
//     leave a shard under-populated). Routing is a pure function of the
//     key, so a key inserts into and is looked up from the same shard
//     forever, no matter what arrives later.
//  2. Shards own disjoint, contiguous key ranges covering the whole
//     universe: shard i serves keys in [cuts[i-1], cuts[i]) (first and last
//     ranges are open-ended). Concatenating shard contents in shard order
//     is therefore globally sorted — Keys() is a cheap ordered merge.
//  3. Routing cost is counted: Lookup adds the router's binary-search
//     comparisons over the cut keys to the probe total, so a 1-shard index
//     (no cuts) is probe-for-probe identical to the unsharded dynamic
//     index — the equivalence the serve scenario's N=1 golden test pins.
//
// Determinism under concurrency: mutation (Insert/Retrain) is
// single-writer, exactly like every other backend; Lookup and ProbeSum are
// pure reads. ProbeSumParallel fans chunks of a batch across an
// engine.Pool — integer probe sums are partition-invariant, so any worker
// count folds to the sequential total byte-identically (DESIGN.md §2).
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// ErrTooFewPerShard is returned when the initial set cannot give every
// shard the two keys its model needs.
var ErrTooFewPerShard = errors.New("shard: need at least two initial keys per shard")

var _ index.Backend = (*Index)(nil)

// Index is the range-partitioned sharded index.
type Index struct {
	cuts   []int64 // len = shards-1; shard i owns [cuts[i-1], cuts[i])
	shards []*dynamic.Index
	// lastRebuild is the key count the most recent retrain covered: ONE
	// shard on the policy-triggered insert path, every shard on an explicit
	// Retrain — the distinction that lets a rebuild cost model price
	// partitioned maintenance honestly (index.RebuildSizer).
	lastRebuild int
}

// New builds a sharded index: the router is fitted over the initial key
// CDF, the initial keys are partitioned by it, and each shard becomes an
// independent dynamic index running its own copy of the retrain policy.
// Requires n >= 1 shards and at least two initial keys per shard.
func New(initial keys.Set, n int, policy dynamic.RetrainPolicy) (*Index, error) {
	return NewWithFit(initial, n, policy, nil)
}

// NewWithFit is New with a pluggable per-shard trainer (dynamic.FitFunc):
// every shard's model fits — initial and retrains alike — go through fit.
// The ROUTER stays the exact least-squares fit regardless: it is frozen at
// construction over pre-attack data, so robustifying it defends nothing,
// while changing it would move every routing boundary and probe count. A
// nil fit is byte-identical to New.
func NewWithFit(initial keys.Set, n int, policy dynamic.RetrainPolicy, fit dynamic.FitFunc) (*Index, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need >= 1 shards, got %d", n)
	}
	if initial.Len() < 2*n {
		return nil, fmt.Errorf("%w: %d keys across %d shards", ErrTooFewPerShard, initial.Len(), n)
	}
	cuts, err := routerCuts(initial, n)
	if err != nil {
		return nil, err
	}
	x := &Index{cuts: cuts}
	parts := partition(initial, cuts)
	for i, part := range parts {
		s, err := dynamic.NewWithFit(part, policy, fit)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		x.shards = append(x.shards, s)
	}
	return x, nil
}

// routerCuts derives the shard cut keys from the CDF fit: the fitted line
// rank ≈ W·k + B is inverted at the equal-mass ranks i·len/n, giving the
// key where the model predicts each shard boundary falls. If the model's
// cuts would leave any shard with fewer than two initial keys (heavily
// skewed data a single line cannot split evenly), the cuts fall back to the
// empirical quantiles of the initial set, which by construction cannot.
func routerCuts(initial keys.Set, n int) ([]int64, error) {
	if n == 1 {
		return nil, nil
	}
	m, err := regression.FitCDF(initial)
	if err != nil {
		return nil, err
	}
	total := initial.Len()
	cuts := make([]int64, n-1)
	prev := initial.Min()
	feasible := m.Line.W > 0
	for i := 1; i < n && feasible; i++ {
		r := float64(i) * float64(total) / float64(n)
		f := (r - m.Line.B) / m.Line.W
		// Reject cuts outside the key range BEFORE the int64 conversion:
		// converting an out-of-range float is not well-defined.
		if !(f > float64(initial.Min()) && f < float64(initial.Max())) {
			feasible = false
			break
		}
		cut := int64(f)
		if cut <= prev {
			feasible = false
			break
		}
		cuts[i-1] = cut
		prev = cut
	}
	if feasible {
		for _, p := range partition(initial, cuts) {
			if p.Len() < 2 {
				feasible = false
				break
			}
		}
	}
	if !feasible {
		for i := 1; i < n; i++ {
			cuts[i-1] = initial.At(i * total / n)
		}
	}
	return cuts, nil
}

// partition splits the set into per-shard subsets by the cut keys.
func partition(ks keys.Set, cuts []int64) []keys.Set {
	raw := ks.Keys()
	parts := make([]keys.Set, 0, len(cuts)+1)
	lo := 0
	for _, cut := range cuts {
		hi := sort.Search(len(raw), func(i int) bool { return raw[i] >= cut })
		parts = append(parts, ks.Slice(lo, hi))
		lo = hi
	}
	return append(parts, ks.Slice(lo, len(raw)))
}

// route returns the shard index owning k and the number of cut-key
// comparisons performed, for any router cut set — shared by the live index
// and its snapshots (the router is frozen, so both search the same cuts).
func route(cuts []int64, k int64) (shard, probes int) {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		if cuts[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, probes
}

func (x *Index) route(k int64) (shard, probes int) { return route(x.cuts, k) }

// NumShards returns the shard count.
func (x *Index) NumShards() int { return len(x.shards) }

// Shard returns the i-th underlying dynamic index (read-only use).
func (x *Index) Shard(i int) *dynamic.Index { return x.shards[i] }

// Cuts returns the router's cut keys (len NumShards-1); read-only.
func (x *Index) Cuts() []int64 { return x.cuts }

// Lookup routes k and queries the owning shard, counting router
// comparisons plus shard probes.
func (x *Index) Lookup(k int64) index.LookupResult {
	s, rp := x.route(k)
	res := x.shards[s].Lookup(k)
	res.Probes += rp
	return res
}

// Insert routes k to its shard; (accepted, retrained) are the shard's.
func (x *Index) Insert(k int64) (accepted, retrained bool) {
	s, _ := x.route(k)
	accepted, retrained = x.shards[s].Insert(k)
	if retrained {
		x.lastRebuild = x.shards[s].LastRebuildSize()
	}
	return accepted, retrained
}

// Retrain force-retrains every shard (the manual maintenance cycle).
func (x *Index) Retrain() {
	for _, s := range x.shards {
		s.Retrain()
	}
	x.lastRebuild = x.Len()
}

// RetrainParallel force-retrains every shard with the per-shard rebuilds
// fanned out across the pool. Shards are independent and each rebuild is a
// deterministic function of that shard's own state, so the resulting index
// is byte-identical to a sequential Retrain for any worker count — the §2
// determinism contract. This is the rebuild path the background-retrain
// pipeline (index.Pipeline) uses when given a pool.
func (x *Index) RetrainParallel(ctx context.Context, pool *engine.Pool) error {
	_, err := engine.Map(ctx, pool, len(x.shards), func(i int) (struct{}, error) {
		x.shards[i].Retrain()
		return struct{}{}, nil
	})
	if err != nil {
		return err
	}
	x.lastRebuild = x.Len()
	return nil
}

// LastRebuildSize reports the key count of the most recent retrain — one
// shard for a policy-triggered rebuild, the whole index for an explicit
// Retrain (index.RebuildSizer).
func (x *Index) LastRebuildSize() int {
	if x.lastRebuild == 0 {
		return x.Len()
	}
	return x.lastRebuild
}

// RetrainPossible reports whether the next Insert could trigger a policy
// retrain in ANY shard (index.TriggerPredictor): the insert routes to one
// shard the predictor cannot know in advance, so the answer is the
// conservative disjunction.
func (x *Index) RetrainPossible() bool {
	for _, s := range x.shards {
		if s.RetrainPossible() {
			return true
		}
	}
	return false
}

// Snapshot freezes the read state: the frozen router cuts plus one O(1)
// copy-on-write snapshot per shard. Router cost through the snapshot is
// counted exactly as on the live index, so snapshot probe totals match
// live probe totals at capture time.
func (x *Index) Snapshot() index.Snapshot {
	subs := make([]index.Snapshot, len(x.shards))
	for i, s := range x.shards {
		subs[i] = s.Snapshot()
	}
	return &shardSnapshot{cuts: x.cuts, subs: subs}
}

// shardSnapshot is the composed immutable view: every shard's snapshot
// behind the same frozen router.
type shardSnapshot struct {
	cuts []int64
	subs []index.Snapshot
}

var _ index.Snapshot = (*shardSnapshot)(nil)

// Lookup routes k and queries the owning shard's snapshot, counting router
// comparisons plus shard probes.
func (s *shardSnapshot) Lookup(k int64) index.LookupResult {
	i, rp := route(s.cuts, k)
	res := s.subs[i].Lookup(k)
	res.Probes += rp
	return res
}

// ProbeSum is the snapshot's batch evaluation (reference per-key sum).
func (s *shardSnapshot) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return index.ProbeSum(s, queryKeys)
}

// Len returns the total number of keys visible in this snapshot.
func (s *shardSnapshot) Len() int {
	n := 0
	for _, sub := range s.subs {
		n += sub.Len()
	}
	return n
}

// Keys materializes the snapshot's content; shard ranges are disjoint and
// ordered, so concatenation in shard order is already sorted.
func (s *shardSnapshot) Keys() keys.Set {
	out := make([]int64, 0, s.Len())
	for _, sub := range s.subs {
		out = append(out, sub.Keys().Keys()...)
	}
	return keys.FromSorted(out)
}

// Len returns the total number of stored keys across shards.
func (x *Index) Len() int {
	n := 0
	for _, s := range x.shards {
		n += s.Len()
	}
	return n
}

// Keys materializes the full content. Shard ranges are disjoint and
// ordered, so the concatenation of shard contents is already sorted.
func (x *Index) Keys() keys.Set {
	out := make([]int64, 0, x.Len())
	for _, s := range x.shards {
		out = append(out, s.Keys().Keys()...)
	}
	return keys.FromSorted(out)
}

// Stats aggregates across shards: counts sum, losses are key-weighted
// means (each shard models its own subrange, so its loss lives in
// shard-local rank space), Window is the worst shard's.
func (x *Index) Stats() index.Stats {
	var agg index.Stats
	var lossW, contentW float64
	for _, s := range x.shards {
		st := s.Stats()
		agg.Keys += st.Keys
		agg.Buffered += st.Buffered
		agg.Retrains += st.Retrains
		lossW += st.ModelLoss * float64(st.Keys)
		contentW += st.ContentLoss * float64(st.Keys)
		if st.Window > agg.Window {
			agg.Window = st.Window
		}
	}
	if agg.Keys > 0 {
		agg.ModelLoss = lossW / float64(agg.Keys)
		agg.ContentLoss = contentW / float64(agg.Keys)
	}
	return agg
}

// ShardStats returns each shard's own summary, in shard order.
func (x *Index) ShardStats() []index.Stats {
	out := make([]index.Stats, len(x.shards))
	for i, s := range x.shards {
		out[i] = s.Stats()
	}
	return out
}

// Imbalance is the largest shard's key count over the mean shard key
// count: 1.0 is perfectly balanced; an attacker flooding one range drives
// it toward NumShards.
func (x *Index) Imbalance() float64 {
	if len(x.shards) == 0 {
		return 1
	}
	maxLen := 0
	for _, s := range x.shards {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	mean := float64(x.Len()) / float64(len(x.shards))
	if mean == 0 {
		return 1
	}
	return float64(maxLen) / mean
}

// ProbeSum runs a lookup for every query key sequentially; integer sums
// are partition-invariant (see ProbeSumParallel).
func (x *Index) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return index.ProbeSum(x, queryKeys)
}

// ProbeSumParallel is the unsorted batch entry, kept for API compatibility.
//
// Deprecated: it now sorts a copy of the batch and runs the sorted-partition
// kernel (ProbeSumSortedParallel) — callers that can sort once and reuse the
// batch should call ProbeSumSortedParallel directly and skip the per-call
// copy+sort. Probe totals and notFound counts are unchanged: integer sums
// are order-invariant, so reordering the batch cannot change either.
func (x *Index) ProbeSumParallel(ctx context.Context, pool *engine.Pool, queryKeys []int64) (probes int64, notFound int, err error) {
	return x.ProbeSumSortedParallel(ctx, pool, sortInto(nil, queryKeys))
}
