package shard

import (
	"context"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func fixture(t testing.TB, n int) keys.Set {
	t.Helper()
	ks, err := dataset.Uniform(xrand.New(5), n, int64(n)*40)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestNewValidation(t *testing.T) {
	ks := fixture(t, 20)
	if _, err := New(ks, 0, dynamic.ManualPolicy()); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := New(ks, 11, dynamic.ManualPolicy()); err == nil {
		t.Fatal("20 keys across 11 shards accepted (needs 2 per shard)")
	}
	if _, err := New(ks, 4, dynamic.EveryKInserts(0)); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

// TestRouterInvariants: the router covers the key space with disjoint
// contiguous ranges, every initial key lands in a live shard, every shard
// got at least two keys, and routing is consistent between partition (used
// at construction) and route (used forever after).
func TestRouterInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		ks := fixture(t, 800)
		x, err := New(ks, n, dynamic.ManualPolicy())
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if x.NumShards() != n {
			t.Fatalf("shards=%d: got %d", n, x.NumShards())
		}
		if len(x.Cuts()) != n-1 {
			t.Fatalf("shards=%d: %d cuts", n, len(x.Cuts()))
		}
		for i := 1; i < len(x.Cuts()); i++ {
			if x.Cuts()[i-1] >= x.Cuts()[i] {
				t.Fatalf("shards=%d: cuts not strictly increasing: %v", n, x.Cuts())
			}
		}
		total := 0
		for i := 0; i < n; i++ {
			s := x.Shard(i)
			if s.Len() < 2 {
				t.Fatalf("shards=%d: shard %d holds %d keys", n, i, s.Len())
			}
			total += s.Len()
			// Every key stored in shard i must route back to shard i.
			sk := s.Keys()
			for j := 0; j < sk.Len(); j++ {
				if got, _ := x.route(sk.At(j)); got != i {
					t.Fatalf("shards=%d: key %d stored in shard %d routes to %d",
						n, sk.At(j), i, got)
				}
			}
		}
		if total != ks.Len() {
			t.Fatalf("shards=%d: %d keys partitioned, want %d", n, total, ks.Len())
		}
		if !x.Keys().Equal(ks) {
			t.Fatalf("shards=%d: Keys() does not reassemble the initial set", n)
		}
	}
}

// TestSingleShardMatchesDynamic is the serving layer's ground truth: with
// one shard the router has no cuts and adds no probes, so every Lookup,
// Insert, Stats, and ProbeSum result is identical to a plain dynamic index
// driven with the same operations.
func TestSingleShardMatchesDynamic(t *testing.T) {
	ks := fixture(t, 400)
	policy := dynamic.BufferLimit(32)
	x, err := New(ks, 1, policy)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dynamic.New(ks, policy)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	for op := 0; op < 2_000; op++ {
		k := rng.Int63n(int64(ks.Len()) * 40)
		switch rng.Intn(3) {
		case 0:
			sa, sr := x.Insert(k)
			da, dr := d.Insert(k)
			if sa != da || sr != dr {
				t.Fatalf("op %d: Insert(%d) diverged: shard (%v,%v) vs dynamic (%v,%v)",
					op, k, sa, sr, da, dr)
			}
		case 1:
			if sr, dr := x.Lookup(k), d.Lookup(k); sr != dr {
				t.Fatalf("op %d: Lookup(%d) diverged: %+v vs %+v", op, k, sr, dr)
			}
		default:
			if ss, ds := x.Stats(), d.Stats(); ss != ds {
				t.Fatalf("op %d: Stats diverged: %+v vs %+v", op, ss, ds)
			}
		}
	}
	x.Retrain()
	d.Retrain()
	queries := ks.Keys()
	sp, sm := x.ProbeSum(queries)
	dp, dm := d.ProbeSum(queries)
	if sp != dp || sm != dm {
		t.Fatalf("ProbeSum diverged after retrain: (%d,%d) vs (%d,%d)", sp, sm, dp, dm)
	}
}

// TestShardingIsolatesDamage: flooding one shard's range leaves the other
// shards' models untouched and shows up as imbalance.
func TestShardingIsolatesDamage(t *testing.T) {
	ks := fixture(t, 600)
	x, err := New(ks, 4, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Imbalance(); got > 1.2 {
		t.Fatalf("initial imbalance %v — router should split near-evenly", got)
	}
	before := x.ShardStats()
	// Flood the first shard's range with fresh keys.
	cut := x.Cuts()[0]
	accepted := 0
	for k := ks.Min() + 1; k < cut && accepted < 200; k++ {
		if ok, _ := x.Insert(k); ok {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("flood inserted nothing")
	}
	after := x.ShardStats()
	if after[0].Buffered != accepted {
		t.Fatalf("shard 0 buffered %d, want %d", after[0].Buffered, accepted)
	}
	for i := 1; i < 4; i++ {
		if after[i] != before[i] {
			t.Fatalf("shard %d changed by a flood outside its range: %+v vs %+v",
				i, after[i], before[i])
		}
	}
	if x.Imbalance() <= 1.2 {
		t.Fatalf("imbalance %v did not register a %d-key flood", x.Imbalance(), accepted)
	}
}

// TestProbeSumParallelEquivalence: the batched lookup fan-out is
// byte-identical to the sequential sum for any worker count.
func TestProbeSumParallelEquivalence(t *testing.T) {
	ks := fixture(t, 900)
	x, err := New(ks, 4, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	queries := append(append([]int64(nil), ks.Keys()...), 1, 2, 3, 1<<50)
	wantProbes, wantMiss := x.ProbeSum(queries)
	for _, w := range []int{1, 2, 3, 8, 0} {
		p, m, err := x.ProbeSumParallel(context.Background(), engine.New(w), queries)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if p != wantProbes || m != wantMiss {
			t.Fatalf("workers=%d: (%d,%d) != sequential (%d,%d)", w, p, m, wantProbes, wantMiss)
		}
	}
}

// TestSkewedDataFallsBackToQuantiles: heavily clustered keys defeat the
// fitted-line cuts; construction must still succeed with every shard
// populated (the empirical-quantile fallback).
func TestSkewedDataFallsBackToQuantiles(t *testing.T) {
	// 200 keys clustered at the bottom, 4 far outliers: one line cannot
	// split this into 8 populated ranges.
	raw := make([]int64, 0, 204)
	for i := int64(0); i < 200; i++ {
		raw = append(raw, i)
	}
	raw = append(raw, 1<<40, 1<<41, 1<<42, 1<<43)
	ks, err := keys.NewStrict(raw)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(ks, 8, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if x.Shard(i).Len() < 2 {
			t.Fatalf("shard %d under-populated on skewed data", i)
		}
	}
	if !x.Keys().Equal(ks) {
		t.Fatal("skewed partition lost keys")
	}
}
