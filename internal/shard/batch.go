package shard

// Sorted-batch probe kernel (index.BatchReader, DESIGN.md §12). The router
// is a lower-bound binary search over the frozen cut keys, so its
// comparison count is a pure function of (cut count, owning shard) —
// constant across every key a shard receives. One gallop pass over the
// sorted batch splits it into per-shard sub-slices at the cut keys; each
// shard's own batch kernel evaluates its sub-slice and the router cost is
// added arithmetically, count × constant. (probes, notFound) are
// bit-identical to the per-key reference.

import (
	"context"
	"sort"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
)

var (
	_ index.BatchReader = (*Index)(nil)
	_ index.BatchReader = (*shardSnapshot)(nil)
)

// routeProbes replays route's comparison count for a key owned by shard s
// under m cut keys: the loop's outcome at mid is (mid < s → go right), so
// the count depends only on (m, s).
func routeProbes(m, s int) int {
	p := 0
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		p++
		if mid < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p
}

// splitSorted returns the per-shard partition boundaries of the sorted
// batch: sorted[bounds[i]:bounds[i+1]] routes to shard i. A key equal to
// cuts[i] belongs to shard i+1, exactly as route resolves it.
func splitSorted(cuts []int64, sorted []int64) []int {
	bounds := make([]int, len(cuts)+2)
	c := 0
	for i, cut := range cuts {
		c = index.GallopLower(sorted, cut, c)
		bounds[i+1] = c
	}
	bounds[len(cuts)+1] = len(sorted)
	return bounds
}

// probeSumSortedShards is the shared sequential kernel: one router pass
// (the gallop split), then each shard's sub-slice through eval with the
// constant router cost added per key.
func probeSumSortedShards(cuts []int64, nShards int, sorted []int64,
	eval func(i int, seg []int64) (int64, int)) (probes int64, notFound int) {
	c := 0
	for i := 0; i < nShards; i++ {
		e := len(sorted)
		if i < len(cuts) {
			e = index.GallopLower(sorted, cuts[i], c)
		}
		if e > c {
			p, nf := eval(i, sorted[c:e])
			probes += p + int64(e-c)*int64(routeProbes(len(cuts), i))
			notFound += nf
		}
		c = e
	}
	return probes, notFound
}

// ProbeSumSorted evaluates a sorted (non-decreasing) query batch against
// the current state, bit-identical to ProbeSum on the same batch.
func (x *Index) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	return probeSumSortedShards(x.cuts, len(x.shards), sorted, func(i int, seg []int64) (int64, int) {
		return x.shards[i].ProbeSumSorted(seg)
	})
}

// ProbeSumSorted is the snapshot-side batch kernel: same router split, each
// sub-slice dispatched to the shard snapshot's own kernel.
func (s *shardSnapshot) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	return probeSumSortedShards(s.cuts, len(s.subs), sorted, func(i int, seg []int64) (int64, int) {
		return index.ProbeSumSorted(s.subs[i], seg)
	})
}

// ProbeSumSortedParallel is ProbeSumSorted with the per-shard sub-slices
// fanned out across the pool, one task per shard. Shard evaluations are
// pure reads and the integer partials fold in shard order, so any worker
// count is byte-identical to the sequential kernel — the §2 determinism
// contract.
func (x *Index) ProbeSumSortedParallel(ctx context.Context, pool *engine.Pool, sorted []int64) (probes int64, notFound int, err error) {
	type agg struct {
		probes   int64
		notFound int
	}
	bounds := splitSorted(x.cuts, sorted)
	chunks, err := engine.Map(ctx, pool, len(x.shards), func(i int) (agg, error) {
		var a agg
		seg := sorted[bounds[i]:bounds[i+1]]
		if len(seg) > 0 {
			a.probes, a.notFound = x.shards[i].ProbeSumSorted(seg)
			a.probes += int64(len(seg)) * int64(routeProbes(len(x.cuts), i))
		}
		return a, nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, a := range chunks {
		probes += a.probes
		notFound += a.notFound
	}
	return probes, notFound, nil
}

// sortInto copies q into buf (growing it as needed) and sorts the copy —
// the shim that lets the deprecated unsorted entry reuse the sorted path.
func sortInto(buf, q []int64) []int64 {
	buf = append(buf[:0], q...)
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}
