package rmi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/nn"
)

// Binary serialization of a built index: magic, root kind, fanout, the key
// set (delta-varint, via keys.WriteBinary), the stage-1 state, and every
// second-stage model. A deserialized index answers queries identically to
// the original (golden-tested), so a trained RMI can be built offline and
// shipped.
var rmiMagic = [8]byte{'C', 'D', 'F', 'R', 'M', 'I', '0', '1'}

type fieldWriter struct {
	w   *bufio.Writer
	err error
}

func (fw *fieldWriter) u64(v uint64) {
	if fw.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, fw.err = fw.w.Write(buf[:])
}

func (fw *fieldWriter) f64(v float64) { fw.u64(math.Float64bits(v)) }
func (fw *fieldWriter) i64(v int64)   { fw.u64(uint64(v)) }

type fieldReader struct {
	r   *bufio.Reader
	err error
}

func (fr *fieldReader) u64() uint64 {
	if fr.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(fr.r, buf[:]); err != nil {
		fr.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (fr *fieldReader) f64() float64 { return math.Float64frombits(fr.u64()) }
func (fr *fieldReader) i64() int64   { return int64(fr.u64()) }

// WriteBinary serializes the index.
func (idx *Index) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(rmiMagic[:]); err != nil {
		return fmt.Errorf("rmi: write magic: %w", err)
	}
	fw := &fieldWriter{w: bw}
	fw.u64(uint64(idx.cfg.Root))
	fw.u64(uint64(len(idx.models)))
	if fw.err != nil {
		return fmt.Errorf("rmi: write header: %w", fw.err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := idx.ks.WriteBinary(w); err != nil {
		return fmt.Errorf("rmi: write keys: %w", err)
	}
	bw = bufio.NewWriter(w)
	fw = &fieldWriter{w: bw}
	switch idx.cfg.Root {
	case RootPerfect:
		fw.u64(uint64(len(idx.boundaries)))
		for _, b := range idx.boundaries {
			fw.i64(b)
		}
	case RootLinear:
		fw.f64(idx.rootLine.W)
		fw.f64(idx.rootLine.B)
	case RootNN:
		if fw.err == nil {
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := idx.rootNN.WriteBinary(w); err != nil {
				return fmt.Errorf("rmi: write nn: %w", err)
			}
			bw = bufio.NewWriter(w)
			fw = &fieldWriter{w: bw}
		}
	}
	for _, s := range idx.models {
		fw.f64(s.line.W)
		fw.f64(s.line.B)
		fw.f64(s.eLo)
		fw.f64(s.eHi)
		fw.u64(uint64(s.assigned))
		fw.i64(s.firstKey)
		fw.i64(s.lastKey)
		fw.f64(s.localMSE)
		if s.saturated {
			fw.u64(1)
		} else {
			fw.u64(0)
		}
	}
	if fw.err != nil {
		return fmt.Errorf("rmi: write models: %w", fw.err)
	}
	return bw.Flush()
}

// ReadBinary deserializes an index written by WriteBinary.
func ReadBinary(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("rmi: read magic: %w", err)
	}
	if magic != rmiMagic {
		return nil, fmt.Errorf("rmi: bad magic %q", magic[:])
	}
	fr := &fieldReader{r: br}
	root := RootKind(fr.u64())
	numModels := int(fr.u64())
	if fr.err != nil {
		return nil, fmt.Errorf("rmi: read header: %w", fr.err)
	}
	if numModels < 0 || numModels > 1<<30 {
		return nil, fmt.Errorf("rmi: implausible model count %d", numModels)
	}
	ks, err := keys.ReadBinary(br)
	if err != nil {
		return nil, fmt.Errorf("rmi: read keys: %w", err)
	}
	idx := &Index{ks: ks, cfg: Config{Fanout: numModels, Root: root}}
	switch root {
	case RootPerfect:
		nb := int(fr.u64())
		if nb < 0 || nb > 1<<30 {
			return nil, fmt.Errorf("rmi: implausible boundary count %d", nb)
		}
		idx.boundaries = make([]int64, nb)
		for i := range idx.boundaries {
			idx.boundaries[i] = fr.i64()
		}
	case RootLinear:
		idx.rootLine.W = fr.f64()
		idx.rootLine.B = fr.f64()
	case RootNN:
		mlp, err := nn.ReadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("rmi: read nn: %w", err)
		}
		idx.rootNN = mlp
	default:
		return nil, fmt.Errorf("rmi: unknown root kind %d", root)
	}
	idx.models = make([]stage2, numModels)
	for i := range idx.models {
		s := &idx.models[i]
		s.line.W = fr.f64()
		s.line.B = fr.f64()
		s.eLo = fr.f64()
		s.eHi = fr.f64()
		s.assigned = int(fr.u64())
		s.firstKey = fr.i64()
		s.lastKey = fr.i64()
		s.localMSE = fr.f64()
		s.saturated = fr.u64() == 1
	}
	if fr.err != nil {
		return nil, fmt.Errorf("rmi: read models: %w", fr.err)
	}
	return idx, nil
}
