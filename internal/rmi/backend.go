package rmi

// The index.Backend face of the single-model RMI path: a static learned
// index (one second-stage regression, exactly the substrate the paper
// poisons) wrapped with a staging area so it can sit in the serving
// scenarios next to the updatable backends. Inserts are staged and served
// by binary search; only an explicit Retrain rebuilds the model over the
// union — the "rebuild on a maintenance window" deployment the paper's
// threat model assumes.

import (
	"math"
	"sort"

	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

var _ index.Backend = (*Single)(nil)
var _ index.Snapshot = (*singleView)(nil)

// singleView is the complete read state of a Single at one instant: the
// built model (immutable after Build — Retrain swaps in a fresh one) plus
// the staged keys. It doubles as the backend's index.Snapshot: the staged
// slice is copy-on-write, so a handed-out view is frozen at capture time.
type singleView struct {
	idx    *Index
	base   keys.Set
	staged []int64 // sorted, duplicate-free keys accepted since last rebuild
}

// Single is a single-model (fanout-1) RMI behind the index.Backend
// contract. It is NOT safe for concurrent mutation; lookups are pure reads.
type Single struct {
	v singleView
	// stagedShared marks the staged slice as aliased by a snapshot: the
	// next mutation clones instead of editing in place.
	stagedShared bool
	// fit is the pluggable stage-2 trainer; nil selects the exact
	// least-squares Build path.
	fit         FitFunc
	retrains    int
	lastRebuild int // keys covered by the most recent Build (index.RebuildSizer)
}

// FitFunc is a pluggable stage-2 trainer for the single-model path: given
// the base set, produce a model predicting global 1-based ranks.
// internal/robust provides poisoning-resistant implementations; the error
// envelope is always recomputed over the full base against the returned
// line, so stored-key lookups stay guaranteed (DESIGN.md §10).
type FitFunc func(keys.Set) (regression.Model, error)

// NewSingle builds the fanout-1 learned index over the initial keys.
func NewSingle(initial keys.Set) (*Single, error) {
	return NewSingleWithFit(initial, nil)
}

// NewSingleWithFit is NewSingle with a pluggable trainer used by the
// initial build and every Retrain. A nil fit is byte-identical to
// NewSingle.
func NewSingleWithFit(initial keys.Set, fit FitFunc) (*Single, error) {
	idx, err := buildSingle(initial, fit)
	if err != nil {
		return nil, err
	}
	return &Single{v: singleView{idx: idx, base: initial}, fit: fit, lastRebuild: initial.Len()}, nil
}

// buildSingle constructs the fanout-1 index, through Build for the default
// trainer or from the supplied fit's line with a freshly recorded error
// envelope — structurally identical to what Build produces, so lookups,
// stats, and snapshots behave the same either way.
func buildSingle(base keys.Set, fit FitFunc) (*Index, error) {
	if fit == nil {
		return Build(base, Config{Fanout: 1})
	}
	n := base.Len()
	if n == 0 {
		return nil, ErrEmpty
	}
	m, err := fit(base)
	if err != nil {
		return nil, err
	}
	s := stage2{
		assigned:  n,
		firstKey:  base.Min(),
		lastKey:   base.Max(),
		line:      m.Line,
		saturated: base.Saturated(),
	}
	if n == 1 {
		s.line = regression.Line{W: 0, B: 1}
	} else {
		s.eLo, s.eHi = math.Inf(1), math.Inf(-1)
		var mse float64
		for i := 0; i < n; i++ {
			d := float64(i+1) - s.line.Predict(base.At(i))
			if d < s.eLo {
				s.eLo = d
			}
			if d > s.eHi {
				s.eHi = d
			}
			mse += d * d
		}
		s.localMSE = mse / float64(n)
	}
	return &Index{
		ks:         base,
		cfg:        Config{Fanout: 1, Root: RootPerfect},
		models:     []stage2{s},
		boundaries: []int64{base.Min()},
	}, nil
}

// LastRebuildSize reports how many keys the most recent rebuild covered —
// the size the background-retrain pipeline's cost model prices
// (index.RebuildSizer).
func (s *Single) LastRebuildSize() int { return s.lastRebuild }

// RetrainPossible is always false: a static index never retrains on the
// write path (index.TriggerPredictor).
func (s *Single) RetrainPossible() bool { return false }

// Lookup serves base keys through the model's guaranteed window and staged
// keys by binary search, counting comparisons across both.
func (s *Single) Lookup(k int64) index.LookupResult { return s.v.Lookup(k) }

// Lookup is the shared probe-counted point query both the live backend and
// its snapshots serve through.
func (v *singleView) Lookup(k int64) index.LookupResult {
	r := v.idx.Lookup(k)
	res := index.LookupResult{Found: r.Found, Probes: r.Probes, Window: r.Window}
	if res.Found {
		return res
	}
	lo, hi := 0, len(v.staged)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		res.Probes++
		switch c := v.staged[mid]; {
		case c == k:
			res.Found = true
			res.InBuffer = true
			return res
		case c < k:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return res
}

// Insert stages k; accepted is false for negative or duplicate keys.
// A static index never retrains on the write path, so retrained is always
// false — damage accrues as staging cost until the owner calls Retrain.
func (s *Single) Insert(k int64) (accepted, retrained bool) {
	if k < 0 || s.v.base.Contains(k) {
		return false, false
	}
	i := sort.Search(len(s.v.staged), func(i int) bool { return s.v.staged[i] >= k })
	if i < len(s.v.staged) && s.v.staged[i] == k {
		return false, false
	}
	s.v.staged = keys.InsertAt(s.v.staged, i, k, s.stagedShared)
	s.stagedShared = false
	return true, false
}

// Retrain rebuilds the model over base ∪ staged. Rebuilding with nothing
// staged is legal and counted, matching the dynamic index's semantics.
// Handed-out snapshots keep the OLD model: the rebuild constructs a fresh
// *Index and only the live backend's view is repointed at it.
func (s *Single) Retrain() {
	if len(s.v.staged) > 0 {
		s.v.base = s.v.base.Union(keys.FromSorted(s.v.staged))
		s.v.staged = nil
		s.stagedShared = false
	}
	idx, err := buildSingle(s.v.base, s.fit)
	if err != nil {
		// Build succeeded on this base before (or on a superset-compatible
		// one); a failure here is a programming error, not an input error.
		panic("rmi: rebuild of single-model backend failed: " + err.Error())
	}
	s.v.idx = idx
	s.retrains++
	s.lastRebuild = s.v.base.Len()
}

// Snapshot freezes the current read state in O(1): the built model and
// base set are immutable, and the staged slice goes copy-on-write.
func (s *Single) Snapshot() index.Snapshot {
	s.stagedShared = true
	v := s.v
	return &v
}

// Len returns the total number of stored keys (base + staged).
func (s *Single) Len() int { return s.v.Len() }

// Len returns the total number of keys visible in this view.
func (v *singleView) Len() int { return v.base.Len() + len(v.staged) }

// Keys materializes the full current content (base ∪ staged).
func (s *Single) Keys() keys.Set { return s.v.Keys() }

// Keys materializes the view's content (base ∪ staged).
func (v *singleView) Keys() keys.Set {
	if len(v.staged) == 0 {
		return v.base
	}
	return v.base.Union(keys.FromSorted(v.staged))
}

// Stats reports the backend summary. ContentLoss evaluates the current
// model's position predictions against the ranks of the full current
// content, so staged (unmodeled) keys surface as staleness.
func (s *Single) Stats() index.Stats {
	st := s.v.idx.Stats()
	content := s.Keys()
	var sum float64
	for i := 0; i < content.Len(); i++ {
		d := s.v.idx.PredictPosition(content.At(i)) - float64(i+1)
		sum += d * d
	}
	var contentLoss float64
	if content.Len() > 0 {
		contentLoss = sum / float64(content.Len())
	}
	return index.Stats{
		Keys:        s.Len(),
		Buffered:    len(s.v.staged),
		Retrains:    s.retrains,
		ModelLoss:   st.SecondStageMSE,
		ContentLoss: contentLoss,
		Window:      st.MaxWindow,
	}
}

// ProbeSum runs a lookup for every query key and returns the exact total
// probe count plus the not-found count; integer sums are
// partition-invariant, so chunked parallel evaluation folds exactly.
func (s *Single) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return index.ProbeSum(s, queryKeys)
}

// ProbeSum is the snapshot's batch evaluation (reference per-key sum).
func (v *singleView) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return index.ProbeSum(v, queryKeys)
}
