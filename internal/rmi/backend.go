package rmi

// The index.Backend face of the single-model RMI path: a static learned
// index (one second-stage regression, exactly the substrate the paper
// poisons) wrapped with a staging area so it can sit in the serving
// scenarios next to the updatable backends. Inserts are staged and served
// by binary search; only an explicit Retrain rebuilds the model over the
// union — the "rebuild on a maintenance window" deployment the paper's
// threat model assumes.

import (
	"sort"

	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
)

var _ index.Backend = (*Single)(nil)

// Single is a single-model (fanout-1) RMI behind the index.Backend
// contract. It is NOT safe for concurrent mutation; lookups are pure reads.
type Single struct {
	idx      *Index
	base     keys.Set
	staged   []int64 // sorted, duplicate-free keys accepted since last rebuild
	retrains int
}

// NewSingle builds the fanout-1 learned index over the initial keys.
func NewSingle(initial keys.Set) (*Single, error) {
	idx, err := Build(initial, Config{Fanout: 1})
	if err != nil {
		return nil, err
	}
	return &Single{idx: idx, base: initial}, nil
}

// Lookup serves base keys through the model's guaranteed window and staged
// keys by binary search, counting comparisons across both.
func (s *Single) Lookup(k int64) index.LookupResult {
	r := s.idx.Lookup(k)
	res := index.LookupResult{Found: r.Found, Probes: r.Probes, Window: r.Window}
	if res.Found {
		return res
	}
	lo, hi := 0, len(s.staged)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		res.Probes++
		switch c := s.staged[mid]; {
		case c == k:
			res.Found = true
			res.InBuffer = true
			return res
		case c < k:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return res
}

// Insert stages k; accepted is false for negative or duplicate keys.
// A static index never retrains on the write path, so retrained is always
// false — damage accrues as staging cost until the owner calls Retrain.
func (s *Single) Insert(k int64) (accepted, retrained bool) {
	if k < 0 || s.base.Contains(k) {
		return false, false
	}
	i := sort.Search(len(s.staged), func(i int) bool { return s.staged[i] >= k })
	if i < len(s.staged) && s.staged[i] == k {
		return false, false
	}
	s.staged = append(s.staged, 0)
	copy(s.staged[i+1:], s.staged[i:])
	s.staged[i] = k
	return true, false
}

// Retrain rebuilds the model over base ∪ staged. Rebuilding with nothing
// staged is legal and counted, matching the dynamic index's semantics.
func (s *Single) Retrain() {
	if len(s.staged) > 0 {
		s.base = s.base.Union(keys.FromSorted(s.staged))
		s.staged = nil
	}
	idx, err := Build(s.base, Config{Fanout: 1})
	if err != nil {
		// Build succeeded on this base before (or on a superset-compatible
		// one); a failure here is a programming error, not an input error.
		panic("rmi: rebuild of single-model backend failed: " + err.Error())
	}
	s.idx = idx
	s.retrains++
}

// Len returns the total number of stored keys (base + staged).
func (s *Single) Len() int { return s.base.Len() + len(s.staged) }

// Keys materializes the full current content (base ∪ staged).
func (s *Single) Keys() keys.Set {
	if len(s.staged) == 0 {
		return s.base
	}
	return s.base.Union(keys.FromSorted(s.staged))
}

// Stats reports the backend summary. ContentLoss evaluates the current
// model's position predictions against the ranks of the full current
// content, so staged (unmodeled) keys surface as staleness.
func (s *Single) Stats() index.Stats {
	st := s.idx.Stats()
	content := s.Keys()
	var sum float64
	for i := 0; i < content.Len(); i++ {
		d := s.idx.PredictPosition(content.At(i)) - float64(i+1)
		sum += d * d
	}
	var contentLoss float64
	if content.Len() > 0 {
		contentLoss = sum / float64(content.Len())
	}
	return index.Stats{
		Keys:        s.Len(),
		Buffered:    len(s.staged),
		Retrains:    s.retrains,
		ModelLoss:   st.SecondStageMSE,
		ContentLoss: contentLoss,
		Window:      st.MaxWindow,
	}
}

// ProbeSum runs a lookup for every query key and returns the exact total
// probe count plus the not-found count; integer sums are
// partition-invariant, so chunked parallel evaluation folds exactly.
func (s *Single) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	return index.ProbeSum(s, queryKeys)
}
