package rmi

import (
	"bytes"
	"strings"
	"testing"

	"cdfpoison/internal/nn"
)

func TestIndexBinaryRoundTripAllRoots(t *testing.T) {
	ks := uniformSet(t, 50, 1200, 30000)
	for _, root := range []RootKind{RootPerfect, RootLinear, RootNN} {
		cfg := Config{Fanout: 12, Root: root}
		if root == RootNN {
			cfg.NN = nn.Config{Hidden: 8, Epochs: 40, Seed: 5}
		}
		orig, err := Build(ks, cfg)
		if err != nil {
			t.Fatalf("%v: %v", root, err)
		}
		var buf bytes.Buffer
		if err := orig.WriteBinary(&buf); err != nil {
			t.Fatalf("%v: write: %v", root, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", root, err)
		}
		// The deserialized index must answer every query identically.
		if got.Fanout() != orig.Fanout() || got.Len() != orig.Len() || got.Root() != orig.Root() {
			t.Fatalf("%v: shape mismatch", root)
		}
		for i := 0; i < ks.Len(); i++ {
			k := ks.At(i)
			a, b := orig.Lookup(k), got.Lookup(k)
			if a != b {
				t.Fatalf("%v: lookup(%d) diverges: %+v vs %+v", root, k, a, b)
			}
			if orig.PredictPosition(k) != got.PredictPosition(k) {
				t.Fatalf("%v: prediction diverges at %d", root, k)
			}
		}
		// Absent keys too.
		for k := ks.Min() + 1; k < ks.Min()+200; k++ {
			if orig.Lookup(k) != got.Lookup(k) {
				t.Fatalf("%v: absent-key lookup diverges at %d", root, k)
			}
		}
		if orig.SecondStageMSE() != got.SecondStageMSE() {
			t.Fatalf("%v: MSE diverges", root)
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTANINDEX__")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	ks := uniformSet(t, 51, 100, 2000)
	idx, err := Build(ks, Config{Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
