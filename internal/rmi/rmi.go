// Package rmi implements the two-stage recursive model index of Kraska et
// al. — the learned index structure the paper attacks. A stage-1 model
// (neural network, linear model, or exact partition router) directs a queried
// key to one of N stage-2 linear regression models; the chosen model predicts
// the key's position in the sorted key array; a bounded "last-mile" binary
// search around the prediction finds the record.
//
// The index tracks per-model min/max prediction error bounds at build time,
// so lookups of stored keys are guaranteed to succeed, and it counts key
// comparisons ("probes") so that the performance damage of a poisoning
// attack is measurable in an implementation-independent way — the very
// metric the paper resorts to because the original authors' optimized C++
// harness is unpublished (Section III-C).
package rmi

import (
	"errors"
	"fmt"
	"math"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/nn"
	"cdfpoison/internal/regression"
)

// RootKind selects the stage-1 model.
type RootKind int

const (
	// RootPerfect routes by binary search over partition boundaries: the
	// equal-size-partition architecture of the paper, with the stage-1
	// "always directs to the correct model" assumption made literal.
	RootPerfect RootKind = iota
	// RootLinear routes with a single linear regression from key to model
	// index — the cheapest realistic stage-1.
	RootLinear
	// RootNN routes with a small feed-forward network trained on the key
	// CDF, as in the original RMI design.
	RootNN
)

// String names the root kind for reports.
func (r RootKind) String() string {
	switch r {
	case RootPerfect:
		return "perfect"
	case RootLinear:
		return "linear"
	case RootNN:
		return "nn"
	default:
		return fmt.Sprintf("RootKind(%d)", int(r))
	}
}

// Config parameterizes Build.
type Config struct {
	// Fanout is the number of second-stage models (N). Required >= 1.
	Fanout int
	// Root selects the stage-1 model; default RootPerfect.
	Root RootKind
	// NN configures stage-1 training when Root == RootNN.
	NN nn.Config
}

// ErrEmpty is returned when building over an empty key set.
var ErrEmpty = errors.New("rmi: cannot build over an empty key set")

// stage2 is one second-stage model: a line predicting the global 1-based
// rank, plus its guaranteed error envelope over the keys assigned to it.
type stage2 struct {
	line      regression.Line
	eLo, eHi  float64 // min/max of (actual − predicted) over assigned keys
	assigned  int
	firstKey  int64
	lastKey   int64
	localMSE  float64 // second-stage MSE on local ranks (the paper's L_i)
	saturated bool    // no interior gap: unpoisonable region
}

// Index is an immutable two-stage RMI over a sorted key set.
type Index struct {
	ks     keys.Set
	cfg    Config
	models []stage2

	// Routing state; exactly one of these is active per Root kind.
	boundaries []int64 // RootPerfect: first key of each partition
	rootLine   regression.Line
	rootNN     *nn.MLP
}

// Build constructs the index. Keys are assigned to second-stage models by
// the trained stage-1 model itself (so build-time and query-time routing
// agree and stored-key lookups always succeed); with RootPerfect the
// assignment is the equal-size partition of the paper.
func Build(ks keys.Set, cfg Config) (*Index, error) {
	n := ks.Len()
	if n == 0 {
		return nil, ErrEmpty
	}
	if cfg.Fanout < 1 {
		return nil, fmt.Errorf("rmi: fanout must be >= 1, got %d", cfg.Fanout)
	}
	if cfg.Fanout > n {
		cfg.Fanout = n // more experts than keys is wasteful but legal
	}
	idx := &Index{ks: ks, cfg: cfg}

	switch cfg.Root {
	case RootPerfect:
		parts := ks.Partition(cfg.Fanout)
		idx.boundaries = make([]int64, 0, cfg.Fanout)
		for _, p := range parts {
			if p.Len() > 0 {
				idx.boundaries = append(idx.boundaries, p.Min())
			} else {
				// Empty tail partitions route nothing; repeat last boundary.
				idx.boundaries = append(idx.boundaries, math.MaxInt64)
			}
		}
	case RootLinear:
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(ks.At(i))
			ys[i] = float64(i) / float64(n) * float64(cfg.Fanout)
		}
		line, err := regression.FitXY(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("rmi: stage-1 linear fit: %w", err)
		}
		idx.rootLine = line
	case RootNN:
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(ks.At(i))
			ys[i] = float64(i)
		}
		mlp, err := nn.Train(xs, ys, cfg.NN)
		if err != nil {
			return nil, fmt.Errorf("rmi: stage-1 nn training: %w", err)
		}
		idx.rootNN = mlp
	default:
		return nil, fmt.Errorf("rmi: unknown root kind %d", cfg.Root)
	}

	// Assign every key to the model the (now fixed) stage-1 routes it to,
	// then fit one linear regression per model on (key → global rank).
	assign := make([][]int, cfg.Fanout) // model → sorted key positions
	for i := 0; i < n; i++ {
		m := idx.route(ks.At(i))
		assign[m] = append(assign[m], i)
	}
	idx.models = make([]stage2, cfg.Fanout)
	for m, rows := range assign {
		idx.models[m] = fitStage2(ks, rows)
	}
	return idx, nil
}

// fitStage2 fits one second-stage model over the given sorted key positions.
func fitStage2(ks keys.Set, rows []int) stage2 {
	s := stage2{assigned: len(rows)}
	if len(rows) == 0 {
		return s
	}
	s.firstKey = ks.At(rows[0])
	s.lastKey = ks.At(rows[len(rows)-1])
	sub := ks.Slice(rows[0], rows[len(rows)-1]+1)
	s.saturated = sub.Saturated()

	if len(rows) == 1 {
		s.line = regression.Line{W: 0, B: float64(rows[0] + 1)}
		return s
	}
	xs := make([]float64, len(rows))
	ys := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = float64(ks.At(r))
		ys[i] = float64(r + 1) // global 1-based rank
	}
	line, err := regression.FitXY(xs, ys)
	if err != nil { // unreachable: len(rows) >= 2
		line = regression.Line{}
	}
	s.line = line
	s.eLo, s.eHi = math.Inf(1), math.Inf(-1)
	var mse float64
	for i := range xs {
		d := ys[i] - line.Predict(int64(xs[i]))
		if d < s.eLo {
			s.eLo = d
		}
		if d > s.eHi {
			s.eHi = d
		}
		mse += d * d
	}
	s.localMSE = mse / float64(len(rows))
	return s
}

// route maps a key to a second-stage model index, deterministically.
func (idx *Index) route(k int64) int {
	N := len(idx.models)
	if N == 0 {
		N = idx.cfg.Fanout
	}
	switch idx.cfg.Root {
	case RootPerfect:
		// Last boundary <= k (boundaries are ascending partition minima).
		lo, hi := 0, len(idx.boundaries)
		for lo < hi {
			mid := (lo + hi) / 2
			if idx.boundaries[mid] <= k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		m := lo - 1
		if m < 0 {
			m = 0
		}
		return m
	case RootLinear:
		return clampModel(int(idx.rootLine.Predict(k)), N)
	default: // RootNN
		pos := idx.rootNN.Predict(float64(k))
		m := int(pos / float64(idx.ks.Len()) * float64(N))
		return clampModel(m, N)
	}
}

func clampModel(m, n int) int {
	if m < 0 {
		return 0
	}
	if m >= n {
		return n - 1
	}
	return m
}

// LookupResult reports the outcome and cost of a point query.
type LookupResult struct {
	Pos    int // 0-based position among the sorted keys (valid when Found)
	Found  bool
	Model  int // second-stage model that served the query
	Probes int // key comparisons performed by the last-mile search
	Window int // width of the guaranteed search window
}

// Lookup finds a key. Stored keys are always found (the model that serves
// the query is the one that trained on the key, and its error bounds are a
// guaranteed envelope).
func (idx *Index) Lookup(k int64) LookupResult {
	m := idx.route(k)
	s := &idx.models[m]
	res := LookupResult{Model: m, Pos: -1}
	if s.assigned == 0 {
		return res // nothing was ever routed here; key cannot be stored
	}
	pred := s.line.Predict(k)
	lo := int(math.Floor(pred+s.eLo)) - 1 // 1-based rank → 0-based index
	hi := int(math.Ceil(pred+s.eHi)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > idx.ks.Len()-1 {
		hi = idx.ks.Len() - 1
	}
	if lo > hi {
		return res
	}
	res.Window = hi - lo + 1
	// Last-mile binary search within [lo, hi].
	for lo <= hi {
		mid := (lo + hi) / 2
		res.Probes++
		switch c := idx.ks.At(mid); {
		case c == k:
			res.Pos, res.Found = mid, true
			return res
		case c < k:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return res
}

// PredictPosition returns the raw second-stage prediction for k — the
// 1-based rank estimate at the center of the last-mile search window —
// without performing the search. This is the observable a black-box
// adversary gets per query (e.g. by timing or cache-probing the memory
// location the index touches first), and what the parameter-inference
// attack in internal/blackbox consumes.
func (idx *Index) PredictPosition(k int64) float64 {
	m := idx.route(k)
	s := &idx.models[m]
	if s.assigned == 0 {
		return 0
	}
	return s.line.Predict(k)
}

// Len returns the number of indexed keys.
func (idx *Index) Len() int { return idx.ks.Len() }

// Fanout returns the number of second-stage models.
func (idx *Index) Fanout() int { return len(idx.models) }

// Root returns the stage-1 kind in use.
func (idx *Index) Root() RootKind { return idx.cfg.Root }

// SecondStageMSE returns the mean of per-model MSEs — the L_RMI loss the
// paper's attack maximizes (models that received no keys contribute zero).
func (idx *Index) SecondStageMSE() float64 {
	if len(idx.models) == 0 {
		return 0
	}
	var sum float64
	for _, s := range idx.models {
		sum += s.localMSE
	}
	return sum / float64(len(idx.models))
}

// ModelMSEs returns every second-stage model's MSE (zero for empty models).
func (idx *Index) ModelMSEs() []float64 {
	out := make([]float64, len(idx.models))
	for i, s := range idx.models {
		out[i] = s.localMSE
	}
	return out
}

// Stats summarizes lookup-cost structure across second-stage models.
type Stats struct {
	Models         int
	EmptyModels    int
	MaxWindow      int     // widest guaranteed search window
	AvgWindow      float64 // key-weighted mean window width
	AvgLogWindow   float64 // key-weighted mean log2(window): ~probes per query
	SecondStageMSE float64
	MemoryBytes    int // rough model storage footprint
}

// Stats computes the summary.
func (idx *Index) Stats() Stats {
	st := Stats{Models: len(idx.models), SecondStageMSE: idx.SecondStageMSE()}
	var wsum, lsum float64
	var total int
	for _, s := range idx.models {
		if s.assigned == 0 {
			st.EmptyModels++
			continue
		}
		w := int(math.Ceil(s.eHi)-math.Floor(s.eLo)) + 1
		if w < 1 {
			w = 1
		}
		if w > st.MaxWindow {
			st.MaxWindow = w
		}
		wsum += float64(w) * float64(s.assigned)
		lsum += math.Log2(float64(w)+1) * float64(s.assigned)
		total += s.assigned
	}
	if total > 0 {
		st.AvgWindow = wsum / float64(total)
		st.AvgLogWindow = lsum / float64(total)
	}
	// Two float64 line parameters + two float64 bounds per model, plus the
	// stage-1 model.
	st.MemoryBytes = len(idx.models) * 4 * 8
	switch idx.cfg.Root {
	case RootPerfect:
		st.MemoryBytes += len(idx.boundaries) * 8
	case RootLinear:
		st.MemoryBytes += 2 * 8
	case RootNN:
		if idx.rootNN != nil {
			st.MemoryBytes += idx.rootNN.ParamCount() * 8
		}
	}
	return st
}

// AvgProbes runs a lookup for every provided key and returns the mean probe
// count and the not-found count (useful for negative-lookup workloads).
func (idx *Index) AvgProbes(queryKeys []int64) (mean float64, notFound int) {
	if len(queryKeys) == 0 {
		return 0, 0
	}
	var sum int
	for _, k := range queryKeys {
		r := idx.Lookup(k)
		sum += r.Probes
		if !r.Found {
			notFound++
		}
	}
	return float64(sum) / float64(len(queryKeys)), notFound
}
