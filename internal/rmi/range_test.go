package rmi

import (
	"testing"
	"testing/quick"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/xrand"
)

func TestRangeCountAgainstReference(t *testing.T) {
	ks := uniformSet(t, 30, 2000, 40000)
	idx, err := Build(ks, Config{Fanout: 20})
	if err != nil {
		t.Fatal(err)
	}
	ref := func(lo, hi int64) int {
		c := 0
		for _, k := range ks.Keys() {
			if k >= lo && k <= hi {
				c++
			}
		}
		return c
	}
	rng := xrand.New(31)
	for trial := 0; trial < 300; trial++ {
		a := rng.Int63n(42000) - 1000
		b := rng.Int63n(42000) - 1000
		if a > b {
			a, b = b, a
		}
		got, _ := idx.RangeCount(a, b)
		if want := ref(a, b); got != want {
			t.Fatalf("RangeCount(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// Degenerate ranges.
	if c, _ := idx.RangeCount(10, 9); c != 0 {
		t.Fatal("inverted range not empty")
	}
	if c, _ := idx.RangeCount(ks.Min(), ks.Max()); c != ks.Len() {
		t.Fatal("full range wrong")
	}
}

func TestAscendRangeOrderAndBounds(t *testing.T) {
	ks := uniformSet(t, 32, 1000, 20000)
	idx, err := Build(ks, Config{Fanout: 10})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(5000), int64(15000)
	var seen []int64
	idx.AscendRange(lo, hi, func(pos int, k int64) bool {
		if k < lo || k > hi {
			t.Fatalf("key %d outside range", k)
		}
		if ks.At(pos) != k {
			t.Fatalf("pos %d does not hold %d", pos, k)
		}
		seen = append(seen, k)
		return true
	})
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatal("range scan out of order")
		}
	}
	want, _ := idx.RangeCount(lo, hi)
	if len(seen) != want {
		t.Fatalf("scan saw %d keys, count says %d", len(seen), want)
	}
	// Early stop.
	n := 0
	idx.AscendRange(lo, hi, func(int, int64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLowerBoundQuick(t *testing.T) {
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		n := 50 + rng.Intn(500)
		ks, err := dataset.Uniform(rng, n, int64(n)*20)
		if err != nil {
			return false
		}
		idx, err := Build(ks, Config{Fanout: 1 + rng.Intn(16)})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			k := rng.Int63n(int64(n)*20 + 100)
			got, _ := idx.lowerBound(k)
			want := ks.CountLess(k)
			// CountLess is the insertion index; for stored keys they agree
			// since lowerBound returns the first position >= k.
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerBoundPredictionOvershoot is the deterministic regression for an
// out-of-range panic TestLowerBoundQuick could only find by luck: for an
// ABSENT key, a second-stage model skewed enough can predict a window
// entirely past the end (or before the start) of the key array, and
// lowerBound's widening loops then indexed out of range. Seed 5416
// reproduces the exact configuration; the fix clamps both ends of both
// bounds into [0, n-1]. (pla.lowerBound had the same bug, fixed in an
// earlier revision — this is its RMI twin.)
func TestLowerBoundPredictionOvershoot(t *testing.T) {
	rng := xrand.New(5416)
	n := 50 + rng.Intn(500)
	ks, err := dataset.Uniform(rng, n, int64(n)*20)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ks, Config{Fanout: 1 + rng.Intn(16)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		k := rng.Int63n(int64(n)*20 + 100)
		got, _ := idx.lowerBound(k) // must not panic
		if want := ks.CountLess(k); got != want {
			t.Fatalf("lowerBound(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestConcurrentLookups(t *testing.T) {
	// The index is immutable after Build; concurrent readers must be safe
	// (run with -race in CI).
	ks := uniformSet(t, 33, 5000, 100000)
	idx, err := Build(ks, Config{Fanout: 50})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- true }()
			for i := w; i < ks.Len(); i += 4 {
				if r := idx.Lookup(ks.At(i)); !r.Found {
					t.Errorf("worker %d: key %d lost", w, ks.At(i))
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
