package rmi

// Sorted-batch probe kernel for the single-model backend (index.BatchReader,
// DESIGN.md §12). Single is fanout-1 with a RootPerfect root, so routing is
// constant (model 0, zero counted probes) and the whole lookup is one
// envelope binary search over the base plus the staged-area fallback — both
// replayable arithmetically once the key's lower-bound rank is known. One
// merged gallop pass over base and staged resolves all ranks;
// (probes, notFound) are bit-identical to the per-key reference.

import (
	"math"

	"cdfpoison/internal/index"
)

var (
	_ index.BatchReader = (*Single)(nil)
	_ index.BatchReader = (*singleView)(nil)
)

// ProbeSumSorted evaluates a sorted (non-decreasing) query batch against
// the current state, bit-identical to ProbeSum on the same batch.
func (s *Single) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	return s.v.ProbeSumSorted(sorted)
}

// ProbeSumSorted is the snapshot-side batch kernel: a forward gallop
// cursor per array (base, staged) and O(1) probe-count replay per key from
// the shared depth tables (index.ProbeDepths) — the last-mile envelope
// search's probe count is a pure function of (window size, rank in
// window), Hit when the key sits inside its window and Gap (clamped) for
// every exhausting descent.
func (v *singleView) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	idx := v.idx
	st := &idx.models[0] // fanout-1: every key routes to model 0, zero probes
	base := idx.ks.Keys()
	nb := len(base)
	var stagedTab *index.SearchDepths
	if len(v.staged) > 0 {
		stagedTab = index.ProbeDepths(len(v.staged))
	}
	// Unclamped windows take exactly two sizes (see dynamic's kernel):
	// prefetch both tables; clamped edge windows fall back to the shared
	// cache through a 2-entry MRU.
	var pair [2]*index.SearchDepths
	s0 := 0
	if st.assigned > 0 && nb > 0 {
		s0 = int(math.Ceil(st.eHi-st.eLo)) + 1
		pair[0] = index.ProbeDepths(s0)
		pair[1] = index.ProbeDepths(s0 + 1)
	}
	var mruTabs [2]*index.SearchDepths
	mruSizes := [2]int{-1, -1}
	posB, posS := 0, 0
	for _, k := range sorted {
		if posB < nb && base[posB] < k {
			posB++
			if posB < nb && base[posB] < k {
				posB = index.GallopLower(base, k, posB+1)
			}
		}
		foundBase := posB < nb && base[posB] == k

		found := false
		if st.assigned > 0 {
			pred := st.line.Predict(k)
			lo := int(math.Floor(pred+st.eLo)) - 1
			hi := int(math.Ceil(pred+st.eHi)) - 1
			clamped := false
			if lo < 0 {
				lo, clamped = 0, true
			}
			if hi > nb-1 {
				hi, clamped = nb-1, true
			}
			if lo <= hi {
				s := hi - lo + 1
				var baseTab *index.SearchDepths
				if !clamped {
					baseTab = pair[s-s0]
				} else {
					switch s {
					case mruSizes[0]:
						baseTab = mruTabs[0]
					case mruSizes[1]:
						baseTab = mruTabs[1]
					default:
						baseTab = index.ProbeDepths(s)
						mruSizes[1], mruTabs[1] = mruSizes[0], mruTabs[0]
						mruSizes[0], mruTabs[0] = s, baseTab
					}
				}
				if foundBase && posB >= lo && posB <= hi {
					probes += int64(baseTab.Hit[posB-lo])
					found = true
				} else {
					g := posB - lo
					if g < 0 {
						g = 0
					} else if g > s {
						g = s
					}
					probes += int64(baseTab.Gap[g])
				}
			}
		}

		if !found && stagedTab != nil {
			// Staged-area fallback: singleView.Lookup's plain binary search,
			// replayed from the same tables.
			posS = index.GallopLower(v.staged, k, posS)
			if posS < len(v.staged) && v.staged[posS] == k {
				probes += int64(stagedTab.Hit[posS])
				found = true
			} else {
				probes += int64(stagedTab.Gap[posS])
			}
		}
		if !found {
			notFound++
		}
	}
	return probes, notFound
}
