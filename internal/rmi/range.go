package rmi

// Range queries — the operation class that motivates learned RANGE indexes
// in the first place (Kraska et al. position the RMI as a B-Tree
// replacement for range scans). A range query locates the first key >= lo
// with one model-guided lookup and then scans the sorted key array, so its
// cost is one poisonable prediction plus output size.

// AscendRange calls fn(pos, key) for every stored key in [lo, hi] in
// increasing order until fn returns false. It returns the number of key
// comparisons spent locating the range start (the poisoning-sensitive part
// of the cost).
func (idx *Index) AscendRange(lo, hi int64, fn func(pos int, key int64) bool) (probes int) {
	pos, probes := idx.lowerBound(lo)
	for ; pos < idx.ks.Len(); pos++ {
		k := idx.ks.At(pos)
		if k > hi {
			return probes
		}
		if !fn(pos, k) {
			return probes
		}
	}
	return probes
}

// RangeCount returns the number of stored keys in [lo, hi] and the key
// comparisons spent on the two boundary locations.
func (idx *Index) RangeCount(lo, hi int64) (count, probes int) {
	if hi < lo {
		return 0, 0
	}
	start, p1 := idx.lowerBound(lo)
	end, p2 := idx.lowerBound(hi + 1)
	return end - start, p1 + p2
}

// lowerBound returns the smallest position whose key is >= k, using the
// stage-2 model's guaranteed window exactly like Lookup, then a bounded
// binary search. Positions can equal Len() when k exceeds every stored key.
func (idx *Index) lowerBound(k int64) (pos, probes int) {
	n := idx.ks.Len()
	if n == 0 {
		return 0, 0
	}
	if k > idx.ks.Max() {
		return n, 0
	}
	if k <= idx.ks.Min() {
		return 0, 0
	}
	m := idx.route(k)
	s := &idx.models[m]
	lo, hi := 0, n-1
	if s.assigned > 0 {
		pred := s.line.Predict(k)
		lo = int(pred+s.eLo) - 1
		hi = int(pred+s.eHi) + 1
		// Clamp BOTH ends of both bounds: for absent keys the prediction is
		// unguaranteed, and a model poisoned (or just skewed) enough can
		// overshoot past n-1 or undershoot below 0 on either bound, which
		// previously sent the widening loops below out of range.
		lo = min(max(lo, 0), n-1)
		hi = min(max(hi, 0), n-1)
	}
	// The window is guaranteed for stored keys; for absent keys the true
	// lower bound may sit just outside — widen until bracketed.
	for lo > 0 && idx.ks.At(lo) >= k {
		lo = max(0, lo-(hi-lo+1))
		probes++
	}
	for hi < n-1 && idx.ks.At(hi) < k {
		hi = min(n-1, hi+(hi-lo+1))
		probes++
	}
	for lo < hi {
		mid := (lo + hi) / 2
		probes++
		if idx.ks.At(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if idx.ks.At(lo) < k {
		lo++
	}
	return lo, probes
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
