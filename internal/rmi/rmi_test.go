package rmi

import (
	"errors"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/nn"
	"cdfpoison/internal/xrand"
)

func uniformSet(t *testing.T, seed uint64, n int, m int64) keys.Set {
	t.Helper()
	s, err := dataset.Uniform(xrand.New(seed), n, m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// verifyAllFound asserts every stored key is found at its correct position.
func verifyAllFound(t *testing.T, idx *Index, ks keys.Set) {
	t.Helper()
	for i := 0; i < ks.Len(); i++ {
		r := idx.Lookup(ks.At(i))
		if !r.Found {
			t.Fatalf("stored key %d (pos %d) not found (root=%v)", ks.At(i), i, idx.Root())
		}
		if r.Pos != i {
			t.Fatalf("key %d found at pos %d, want %d", ks.At(i), r.Pos, i)
		}
		if r.Probes < 1 {
			t.Fatalf("found with %d probes", r.Probes)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	ks := uniformSet(t, 1, 100, 1000)
	if _, err := Build(keys.Set{}, Config{Fanout: 4}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Build(ks, Config{Fanout: 0}); err == nil {
		t.Fatal("fanout 0 accepted")
	}
	if _, err := Build(ks, Config{Fanout: 4, Root: RootKind(99)}); err == nil {
		t.Fatal("unknown root accepted")
	}
}

func TestLookupAllRoots(t *testing.T) {
	ks := uniformSet(t, 2, 2000, 50000)
	for _, root := range []RootKind{RootPerfect, RootLinear, RootNN} {
		cfg := Config{Fanout: 20, Root: root}
		if root == RootNN {
			cfg.NN = nn.Config{Hidden: 8, Epochs: 60, Seed: 7}
		}
		idx, err := Build(ks, cfg)
		if err != nil {
			t.Fatalf("%v: %v", root, err)
		}
		verifyAllFound(t, idx, ks)
	}
}

func TestLookupAbsentKeys(t *testing.T) {
	ks := uniformSet(t, 3, 500, 100000)
	idx, err := Build(ks, Config{Fanout: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	misses := 0
	for i := 0; i < 2000; i++ {
		k := rng.Int63n(100000)
		if ks.Contains(k) {
			continue
		}
		misses++
		if r := idx.Lookup(k); r.Found {
			t.Fatalf("absent key %d reported found", k)
		}
	}
	if misses == 0 {
		t.Fatal("no absent keys sampled")
	}
}

func TestFanoutOne(t *testing.T) {
	ks := uniformSet(t, 5, 300, 3000)
	idx, err := Build(ks, Config{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	verifyAllFound(t, idx, ks)
	if idx.Fanout() != 1 {
		t.Fatalf("fanout %d", idx.Fanout())
	}
}

func TestFanoutLargerThanKeys(t *testing.T) {
	ks := uniformSet(t, 6, 10, 100)
	idx, err := Build(ks, Config{Fanout: 50})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Fanout() != 10 { // clamped to n
		t.Fatalf("fanout %d, want clamp to 10", idx.Fanout())
	}
	verifyAllFound(t, idx, ks)
}

func TestSingletonIndex(t *testing.T) {
	ks, err := keys.New([]int64{42})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ks, Config{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := idx.Lookup(42); !r.Found || r.Pos != 0 {
		t.Fatalf("singleton lookup: %+v", r)
	}
	if r := idx.Lookup(41); r.Found {
		t.Fatal("absent key found in singleton index")
	}
}

func TestSkewedDataLookup(t *testing.T) {
	set, err := dataset.LogNormal(xrand.New(7), 5000, 1000000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []RootKind{RootPerfect, RootLinear} {
		idx, err := Build(set, Config{Fanout: 50, Root: root})
		if err != nil {
			t.Fatal(err)
		}
		verifyAllFound(t, idx, set)
	}
}

func TestStats(t *testing.T) {
	ks := uniformSet(t, 8, 1000, 100000)
	idx, err := Build(ks, Config{Fanout: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Models != 10 {
		t.Errorf("models %d", st.Models)
	}
	if st.MaxWindow < 1 || st.AvgWindow < 1 {
		t.Errorf("windows: %+v", st)
	}
	if st.SecondStageMSE <= 0 {
		t.Errorf("second-stage MSE %v on random data", st.SecondStageMSE)
	}
	if st.MemoryBytes <= 0 {
		t.Errorf("memory %d", st.MemoryBytes)
	}
	if len(idx.ModelMSEs()) != 10 {
		t.Errorf("ModelMSEs length %d", len(idx.ModelMSEs()))
	}
}

func TestPerfectRootMatchesPartition(t *testing.T) {
	// With RootPerfect, key i must be served by the model owning the
	// equal-size partition that contains i.
	ks := uniformSet(t, 9, 100, 10000)
	idx, err := Build(ks, Config{Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ks.Len(); i++ {
		want := i / 25
		if r := idx.Lookup(ks.At(i)); r.Model != want {
			t.Fatalf("key pos %d served by model %d, want %d", i, r.Model, want)
		}
	}
}

func TestAvgProbes(t *testing.T) {
	ks := uniformSet(t, 10, 2000, 100000)
	idx, err := Build(ks, Config{Fanout: 20})
	if err != nil {
		t.Fatal(err)
	}
	mean, notFound := idx.AvgProbes(ks.Keys())
	if notFound != 0 {
		t.Fatalf("%d stored keys not found", notFound)
	}
	if mean < 1 || mean > 16 {
		t.Fatalf("avg probes %v implausible for n=2000, fanout=20", mean)
	}
	if m, nf := idx.AvgProbes(nil); m != 0 || nf != 0 {
		t.Fatal("empty query slice mishandled")
	}
}

func TestMorePoisonedDataMeansWiderWindows(t *testing.T) {
	// Sanity link to the attack: degrading the CDF linearity (here by
	// hand-crafting a pathological cluster) must widen search windows.
	even := make([]int64, 0, 400)
	for i := int64(0); i < 400; i++ {
		even = append(even, i*100)
	}
	evenSet, _ := keys.New(even)
	clustered := make([]int64, 0, 400)
	for i := int64(0); i < 200; i++ {
		clustered = append(clustered, i) // tight cluster
	}
	for i := int64(0); i < 200; i++ {
		clustered = append(clustered, 20000+i*1000) // sparse tail
	}
	clSet, _ := keys.New(clustered)

	// Fanout 1 so a single model spans both density regimes (with larger
	// fanouts each partition here would be internally linear again).
	idxEven, err := Build(evenSet, Config{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	idxCl, err := Build(clSet, Config{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idxCl.Stats().AvgWindow <= idxEven.Stats().AvgWindow {
		t.Fatalf("clustered windows (%v) not wider than even windows (%v)",
			idxCl.Stats().AvgWindow, idxEven.Stats().AvgWindow)
	}
}

func TestPredictPositionMatchesLookupWindowCenter(t *testing.T) {
	ks := uniformSet(t, 11, 1000, 50000)
	idx, err := Build(ks, Config{Fanout: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The raw prediction must be a real rank estimate: within the model's
	// guaranteed error envelope of the true rank for every stored key.
	st := idx.Stats()
	for i := 0; i < ks.Len(); i++ {
		pred := idx.PredictPosition(ks.At(i))
		trueRank := float64(i + 1)
		if diff := pred - trueRank; diff > float64(st.MaxWindow) || diff < -float64(st.MaxWindow) {
			t.Fatalf("prediction %v for rank %v outside max window %d", pred, trueRank, st.MaxWindow)
		}
	}
}

func TestLookupOutOfRangeKeys(t *testing.T) {
	ks := uniformSet(t, 12, 500, 10000)
	idx, err := Build(ks, Config{Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Keys below min and above max must return not-found without panicking.
	for _, k := range []int64{0, ks.Min() - 1, ks.Max() + 1, 1 << 40} {
		if ks.Contains(k) {
			continue
		}
		if r := idx.Lookup(k); r.Found {
			t.Fatalf("out-of-range key %d found", k)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	ks := uniformSet(t, 13, 800, 20000)
	a, err := Build(ks, Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(ks, Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ks.Len(); i += 13 {
		k := ks.At(i)
		if a.PredictPosition(k) != b.PredictPosition(k) {
			t.Fatal("build is not deterministic")
		}
	}
}

func TestRootKindString(t *testing.T) {
	if RootPerfect.String() != "perfect" || RootLinear.String() != "linear" ||
		RootNN.String() != "nn" || RootKind(9).String() == "" {
		t.Fatal("RootKind.String broken")
	}
}
