package rmi

import (
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/xrand"
)

// TestSingleLookupMatchesIndex: the backend face serves base keys exactly
// as the underlying fanout-1 index does, with zero extra probes while the
// staging area is empty.
func TestSingleLookupMatchesIndex(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(7), 500, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSingle(ks)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ks, Config{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ks.Len(); i++ {
		k := ks.At(i)
		br, ir := s.Lookup(k), idx.Lookup(k)
		if !br.Found || br.Probes != ir.Probes || br.Window != ir.Window {
			t.Fatalf("key %d: backend %+v vs index %+v", k, br, ir)
		}
	}
}

// TestSingleStagingAndRebuild: inserts stage without touching the model;
// Retrain absorbs them; duplicates and negatives are rejected at both
// levels.
func TestSingleStagingAndRebuild(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(8), 300, 9_000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSingle(ks)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Insert(-5); ok {
		t.Fatal("negative key accepted")
	}
	if ok, _ := s.Insert(ks.At(10)); ok {
		t.Fatal("base duplicate accepted")
	}
	fresh := freshInteriorKey(ks.Keys())
	if ok, retrained := s.Insert(fresh); !ok || retrained {
		t.Fatalf("fresh key: accepted=%v retrained=%v", ok, retrained)
	}
	if ok, _ := s.Insert(fresh); ok {
		t.Fatal("staged duplicate accepted")
	}
	r := s.Lookup(fresh)
	if !r.Found || !r.InBuffer {
		t.Fatalf("staged key lookup: %+v", r)
	}
	st := s.Stats()
	if st.Buffered != 1 || st.Keys != ks.Len()+1 || st.Retrains != 0 {
		t.Fatalf("pre-rebuild stats: %+v", st)
	}
	if st.ContentLoss <= 0 {
		t.Fatalf("staged key did not surface as content loss: %+v", st)
	}
	s.Retrain()
	st = s.Stats()
	if st.Buffered != 0 || st.Retrains != 1 {
		t.Fatalf("post-rebuild stats: %+v", st)
	}
	if r := s.Lookup(fresh); !r.Found || r.InBuffer {
		t.Fatalf("absorbed key lookup: %+v", r)
	}
}

func freshInteriorKey(sorted []int64) int64 {
	for i := 1; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] >= 2 {
			return sorted[i-1] + 1
		}
	}
	panic("no gap")
}
