// Package regression implements linear regression on cumulative distribution
// functions (CDFs), the building block of learned index structures that the
// paper attacks.
//
// Definition 1 of the paper: given keys k_1 < … < k_n with ranks r_i = i,
// find (w, b) minimizing the mean squared error Σ(w·k_i + b − r_i)²/n.
// Theorem 1 gives the closed form
//
//	w* = Cov_KR / Var_K,   b* = M_R − w*·M_K,
//	L(K, R, w*, b*) = Var_R − Cov²_KR / Var_K.
//
// (The paper's Theorem 1 statement carries a typo — its own incremental
// equations in Section IV-C use the form above, which is the standard
// least-squares optimum.)
//
// Numerical design: second-stage RMI models see keys in the billions spread
// across windows a few thousand wide, where raw moments like M_K² − (M_K)²
// cancel catastrophically. Every computation here therefore centers keys at
// the set minimum first. The fitted line, the loss, and the optimal poisoning
// location are all invariant under that translation (property-tested).
package regression

import (
	"errors"
	"fmt"
	"math"

	"cdfpoison/internal/keys"
)

// ErrTooFew is returned when a fit is requested on fewer than one key.
var ErrTooFew = errors.New("regression: need at least one key")

// Line is a fitted line rank ≈ W·key + B over *uncentered* keys.
type Line struct {
	W, B float64
}

// Predict returns the predicted (fractional) rank of key k.
func (l Line) Predict(k int64) float64 { return l.W*float64(k) + l.B }

// Model is the result of fitting a CDF: the line, the optimal in-sample MSE
// (mean, not sum), and the number of points it was fitted on.
type Model struct {
	Line
	Loss float64
	N    int
}

// String renders the model compactly for logs and examples.
func (m Model) String() string {
	return fmt.Sprintf("rank ≈ %.6g·key %+.6g  (n=%d, mse=%.6g)", m.W, m.B, m.N, m.Loss)
}

// rankMean and rankSquaredMean are the exact moments of the rank multiset
// {1, …, n}: after any insertion the ranks are again exactly {1, …, n+1},
// which is the structural fact (paper, Section IV-C) that makes O(1)
// candidate evaluation possible.
func rankMean(n int) float64 { return float64(n+1) / 2 }

func rankSquaredMean(n int) float64 {
	nf := float64(n)
	return (nf + 1) * (2*nf + 1) / 6
}

// rankVar = Var of {1..n} = (n²−1)/12.
func rankVar(n int) float64 {
	nf := float64(n)
	return (nf*nf - 1) / 12
}

// FitCDF fits the linear regression of Definition 1 on the key set: x-values
// are the keys, y-values are the 1-based ranks. n == 1 yields the degenerate
// exact fit (w=0, b=1, loss 0). n == 0 returns ErrTooFew.
func FitCDF(ks keys.Set) (Model, error) {
	n := ks.Len()
	if n == 0 {
		return Model{}, ErrTooFew
	}
	if n == 1 {
		return Model{Line: Line{W: 0, B: 1}, Loss: 0, N: 1}, nil
	}
	origin := ks.Min()
	var sumX, sumXX, sumXR float64
	for i := 0; i < n; i++ {
		x := float64(ks.At(i) - origin)
		r := float64(i + 1)
		sumX += x
		sumXX += x * x
		sumXR += x * r
	}
	nf := float64(n)
	mx := sumX / nf
	mxx := sumXX / nf
	mxr := sumXR / nf
	mr := rankMean(n)
	varX := mxx - mx*mx
	cov := mxr - mx*mr
	varR := rankVar(n)
	if varX <= 0 {
		// Distinct keys guarantee varX > 0 for n >= 2; defend anyway.
		return Model{Line: Line{W: 0, B: mr}, Loss: varR, N: n}, nil
	}
	w := cov / varX
	bCentered := mr - w*mx
	loss := varR - cov*cov/varX
	if loss < 0 { // floating-point guard: MSE is non-negative by construction
		loss = 0
	}
	return Model{
		Line: Line{W: w, B: bCentered - w*float64(origin)},
		Loss: loss,
		N:    n,
	}, nil
}

// EvaluateCDF returns the MSE of an arbitrary line on the key set's CDF
// (ranks 1..n). It is used by the defense evaluation, where a model fitted
// on one set is scored against another. Returns ErrTooFew on an empty set.
func EvaluateCDF(l Line, ks keys.Set) (float64, error) {
	n := ks.Len()
	if n == 0 {
		return 0, ErrTooFew
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := l.Predict(ks.At(i)) - float64(i+1)
		sum += d * d
	}
	return sum / float64(n), nil
}

// FitXY is a general simple least-squares fit y ≈ w·x + b used by substrate
// components (e.g. the RMI stage-1 linear router). It centers x at its mean
// for stability. len(x) must equal len(y) and be >= 1.
func FitXY(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, fmt.Errorf("regression: FitXY length mismatch %d != %d", len(x), len(y))
	}
	n := len(x)
	if n == 0 {
		return Line{}, ErrTooFew
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return Line{W: 0, B: my}, nil
	}
	w := sxy / sxx
	return Line{W: w, B: my - w*mx}, nil
}

// Prefix precomputes, in O(n), everything needed to evaluate the poisoned
// loss for ANY candidate poisoning key in O(1): centered prefix moments and
// the suffix key sums that capture the compound rank shift.
//
// This is the paper's observation 2 ("the value of L(kp) can be re-used")
// realized with exact per-candidate formulas instead of running discrete
// derivatives, which is equally fast and immune to drift across gap
// boundaries.
//
// Numerical design, second layer (see DESIGN.md §2, "Incremental kernel
// invariants"): all moments are accumulated in EXACT integer arithmetic —
// sumX and the suffix sums in int64, the second-order sums in 128-bit — and
// converted to float64 only at evaluation time. Centered keys are integers,
// so every moment is an integer, and integer addition is associative: the
// state after Insert (the incremental kernel) is bit-identical to the state
// NewPrefix would build from scratch on the augmented set, for any insertion
// order and at any magnitude. That identity is what lets the greedy attack
// skip the per-step O(n) rebuild without perturbing a single output bit
// relative to a rebuild (property-tested in incremental_test.go).
//
// Relative to the HISTORICAL float64 accumulators the comparison is scoped:
// wherever float64 accumulation never rounded (all partial sums below 2⁵³,
// which covers every quick-scale experiment and recorded CSV fingerprint in
// EXPERIMENTS.md), the evaluated losses are bit-identical to the old
// implementation. At larger products — e.g. Σx² ≈ 3.3×10¹⁸ for the n=10⁵,
// span-10⁷ acceptance dataset — the old float64 sums had already rounded,
// order-sensitively; the exact sums differ from them in the final ulps
// (and are the correctly-rounded values).
type Prefix struct {
	origin int64
	n      int
	sumX   int64 // Σ x_i, exact (guarded against int64 overflow)
	sumXX  u128  // Σ x_i², exact
	sumXR  u128  // Σ x_i·r_i, exact
	// sufX[i] = Σ_{j >= i} x_j (0-based positions), sufX[n] = 0. When a
	// poisoning key lands at position i (i keys strictly smaller), exactly
	// the keys at positions i..n−1 gain one unit of rank, contributing
	// sufX[i] to Σ x·r. Entries are bounded by sumX, so int64 is safe
	// wherever sumX is.
	sufX []int64
	ks   keys.Set
	// mut is non-nil when the Prefix was built by NewPrefixMutable and owns
	// an insertable key set; ks is then a live view of it (see Insert).
	mut *keys.MutableSet
}

// ErrRange is returned when the centered key sum Σ(kᵢ−min) does not fit in
// int64, the bound under which the exact kernel's accumulators cannot
// overflow. Every dataset in this repository sits orders of magnitude below
// it; hitting it means the key span × count product exceeds ~9.2×10¹⁸.
var ErrRange = errors.New("regression: key span too large for the exact kernel (Σ centered keys exceeds int64)")

// NewPrefix builds the O(1)-evaluation state for the key set.
// The set must contain at least two keys to admit a meaningful regression.
func NewPrefix(ks keys.Set) (*Prefix, error) {
	return newPrefix(ks, nil, ks.Len())
}

// NewPrefixMutable builds the incremental attack kernel over a mutable key
// set: the returned Prefix supports Insert, with suffix capacity reserved
// for the set's spare capacity so that a greedy step never allocates. The
// caller must not mutate m except through Prefix.Insert.
func NewPrefixMutable(m *keys.MutableSet) (*Prefix, error) {
	return newPrefix(m.View(), m, m.Cap())
}

// newPrefix accumulates the exact moments; sufCap reserves suffix-array
// capacity for sufCap keys (≥ n), pre-paying Insert growth.
func newPrefix(ks keys.Set, mut *keys.MutableSet, sufCap int) (*Prefix, error) {
	n := ks.Len()
	if n < 2 {
		return nil, fmt.Errorf("regression: NewPrefix needs n >= 2, got %d", n)
	}
	p := &Prefix{origin: ks.Min(), n: n, ks: ks, mut: mut,
		sufX: make([]int64, n+1, sufCap+1)}
	for i := 0; i < n; i++ {
		x := ks.At(i) - p.origin // >= 0: keys are sorted
		if p.sumX > math.MaxInt64-x {
			return nil, ErrRange
		}
		p.sumX += x
		ux := uint64(x)
		p.sumXX = p.sumXX.add(u128Mul(ux, ux))
		p.sumXR = p.sumXR.add(u128Mul(ux, uint64(i+1)))
	}
	for i := n - 1; i >= 0; i-- {
		p.sufX[i] = p.sufX[i+1] + (ks.At(i) - p.origin)
	}
	return p, nil
}

// N returns the number of legitimate keys backing the prefix.
func (p *Prefix) N() int { return p.n }

// Set returns the key set backing the prefix. For a mutable Prefix this is
// a live view: it reflects Inserts and shares their backing array, so it is
// only valid until the next Insert (snapshot with Clone if needed longer).
func (p *Prefix) Set() keys.Set { return p.ks }

// CleanLoss returns the MSE of the optimal regression on the unpoisoned set.
func (p *Prefix) CleanLoss() float64 {
	nf := float64(p.n)
	mx := float64(p.sumX) / nf
	mxx := p.sumXX.float() / nf
	mxr := p.sumXR.float() / nf
	mr := rankMean(p.n)
	varX := mxx - mx*mx
	cov := mxr - mx*mr
	loss := rankVar(p.n) - cov*cov/varX
	if loss < 0 {
		return 0
	}
	return loss
}

// PoisonedLoss returns the optimal-regression MSE of K ∪ {kp}, where kp is a
// key NOT in the set and pos is the number of keys strictly smaller than kp
// (i.e. kp would take 1-based rank pos+1). It runs in O(1).
func (p *Prefix) PoisonedLoss(kp int64, pos int) float64 {
	xp := float64(kp - p.origin)
	t := float64(pos + 1)
	n1 := float64(p.n + 1)

	sumX := float64(p.sumX) + xp
	sumXX := p.sumXX.float() + xp*xp
	sumXR := p.sumXR.float() + float64(p.sufX[pos]) + xp*t

	mx := sumX / n1
	mxx := sumXX / n1
	mxr := sumXR / n1
	mr := rankMean(p.n + 1)

	varX := mxx - mx*mx
	cov := mxr - mx*mr
	varR := rankVar(p.n + 1)
	if varX <= 0 {
		return varR
	}
	loss := varR - cov*cov/varX
	if loss < 0 {
		return 0
	}
	return loss
}

// PoisonedLossAuto is PoisonedLoss with the insertion position looked up via
// binary search (O(log n)); ok is false if kp already occupies a slot.
func (p *Prefix) PoisonedLossAuto(kp int64) (loss float64, ok bool) {
	rank, free := p.ks.InsertedRank(kp)
	if !free {
		return 0, false
	}
	return p.PoisonedLoss(kp, rank-1), true
}

// PoisonedModel returns the full refitted model for K ∪ {kp}, used when the
// caller needs the line itself (figures, defense analysis), not just the
// loss. O(1) like PoisonedLoss.
func (p *Prefix) PoisonedModel(kp int64, pos int) Model {
	xp := float64(kp - p.origin)
	t := float64(pos + 1)
	n1 := float64(p.n + 1)

	sumX := float64(p.sumX) + xp
	sumXX := p.sumXX.float() + xp*xp
	sumXR := p.sumXR.float() + float64(p.sufX[pos]) + xp*t

	mx := sumX / n1
	mxx := sumXX / n1
	mxr := sumXR / n1
	mr := rankMean(p.n + 1)

	varX := mxx - mx*mx
	cov := mxr - mx*mr
	varR := rankVar(p.n + 1)
	m := Model{N: p.n + 1}
	if varX <= 0 {
		m.Line = Line{W: 0, B: mr}
		m.Loss = varR
		return m
	}
	w := cov / varX
	loss := varR - cov*cov/varX
	if loss < 0 {
		loss = 0
	}
	m.Line = Line{W: w, B: (mr - w*mx) - w*float64(p.origin)}
	m.Loss = loss
	return m
}

// MaxAbsResidual returns the largest |predicted − actual rank| of the model
// over the set — the quantity that dictates the last-mile search window in a
// learned index.
func MaxAbsResidual(l Line, ks keys.Set) float64 {
	worst := 0.0
	for i := 0; i < ks.Len(); i++ {
		d := math.Abs(l.Predict(ks.At(i)) - float64(i+1))
		if d > worst {
			worst = d
		}
	}
	return worst
}
