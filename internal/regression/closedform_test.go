package regression

import (
	"testing"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// sweepGapCandidates calls fn for every free candidate position of ks,
// passing (kp, pos, gap). It enumerates the exact domain PoisonedLoss
// accepts: interior keys of interior gaps.
func sweepGapCandidates(ks keys.Set, fn func(kp int64, pos, gap int)) {
	for g := 0; g+1 < ks.Len(); g++ {
		for kp := ks.At(g) + 1; kp < ks.At(g+1); kp++ {
			fn(kp, g+1, g)
		}
	}
}

// TestClosedFormLossMatchesPoisonedLoss: the snapshot evaluator must agree
// with Prefix.PoisonedLoss to the last bit on EVERY candidate of random
// sets — the foundation of the pruned scan's bit-identity claim.
func TestClosedFormLossMatchesPoisonedLoss(t *testing.T) {
	rng := xrand.New(808)
	for trial := 0; trial < 30; trial++ {
		m := randomMutable(rng, 5, 80, 5000, 4)
		p, err := NewPrefixMutable(m)
		if err != nil {
			t.Fatal(err)
		}
		cf := p.ClosedForm()
		sweepGapCandidates(p.Set(), func(kp int64, pos, _ int) {
			if got, want := cf.Loss(kp, pos), p.PoisonedLoss(kp, pos); got != want {
				t.Fatalf("trial %d: Loss(%d, %d) = %v, PoisonedLoss = %v (diff %g)",
					trial, kp, pos, got, want, got-want)
			}
		})
	}
}

// TestClosedFormBoundDominates is the correctness contract of the pruned
// scan: for arbitrary gap blocks of arbitrary width, Bound must dominate
// the float64-computed loss of every candidate the block covers. A single
// violation would let the scan prune the true maximizer.
func TestClosedFormBoundDominates(t *testing.T) {
	rng := xrand.New(2121)
	for trial := 0; trial < 25; trial++ {
		m := randomMutable(rng, 8, 120, 8000, 4)
		p, err := NewPrefixMutable(m)
		if err != nil {
			t.Fatal(err)
		}
		cf := p.ClosedForm()
		ks := p.Set()
		nGaps := ks.Len() - 1
		for _, width := range []int{1, 2, 3, 5, 8, 16, 64, nGaps} {
			if width > nGaps {
				continue
			}
			for gapLo := 0; gapLo < nGaps; gapLo += width {
				gapHi := gapLo + width
				if gapHi > nGaps {
					gapHi = nGaps
				}
				kLo, kHi := ks.At(gapLo)+1, ks.At(gapHi)-1
				if kLo > kHi {
					continue // saturated block: no candidates to cover
				}
				bound := cf.Bound(gapLo, gapHi, kLo, kHi)
				for g := gapLo; g < gapHi; g++ {
					for kp := ks.At(g) + 1; kp < ks.At(g+1); kp++ {
						if loss := p.PoisonedLoss(kp, g+1); loss > bound {
							t.Fatalf("trial %d block [%d,%d): Bound = %v < PoisonedLoss(%d, %d) = %v (excess %g)",
								trial, gapLo, gapHi, bound, kp, g+1, loss, loss-bound)
						}
					}
				}
			}
		}
	}
}

// TestClosedFormBoundAfterInsert re-checks domination on a prefix mutated
// through Insert — the exact state the greedy loop rebuilds snapshots from.
func TestClosedFormBoundAfterInsert(t *testing.T) {
	rng := xrand.New(3434)
	m := randomMutable(rng, 40, 60, 6000, 10)
	p, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		view := m.View()
		kp := view.Min() + 1 + rng.Int63n(view.Max()-view.Min()-1)
		if _, free := view.InsertedRank(kp); !free {
			continue
		}
		if _, err := p.Insert(kp); err != nil {
			t.Fatal(err)
		}
		cf := p.ClosedForm()
		ks := p.Set()
		nGaps := ks.Len() - 1
		const width = 7
		for gapLo := 0; gapLo < nGaps; gapLo += width {
			gapHi := gapLo + width
			if gapHi > nGaps {
				gapHi = nGaps
			}
			kLo, kHi := ks.At(gapLo)+1, ks.At(gapHi)-1
			if kLo > kHi {
				continue
			}
			bound := cf.Bound(gapLo, gapHi, kLo, kHi)
			for g := gapLo; g < gapHi; g++ {
				for k := ks.At(g) + 1; k < ks.At(g+1); k++ {
					if loss := p.PoisonedLoss(k, g+1); loss > bound {
						t.Fatalf("step %d block [%d,%d): Bound = %v < loss(%d) = %v",
							step, gapLo, gapHi, bound, k, loss)
					}
				}
			}
		}
	}
}

// TestClosedFormVarRCeiling: every candidate loss and every finite bound
// stays below varR plus the documented margin — the scale the pruning
// threshold arithmetic relies on.
func TestClosedFormVarRCeiling(t *testing.T) {
	rng := xrand.New(55)
	m := randomMutable(rng, 20, 50, 3000, 2)
	p, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	cf := p.ClosedForm()
	ceiling := cf.VarR() * (1 + 1e-6)
	sweepGapCandidates(p.Set(), func(kp int64, pos, _ int) {
		if l := cf.Loss(kp, pos); l > ceiling || l < 0 {
			t.Fatalf("Loss(%d, %d) = %v outside [0, varR=%v]", kp, pos, l, cf.VarR())
		}
	})
}

// FuzzClosedFormLoss is the differential fuzz of the closed-form evaluator:
// arbitrary byte scripts drive random key sets, candidate probes, and
// interleaved inserts; ClosedForm.Loss must equal Prefix.PoisonedLoss to
// the last bit on every probed candidate, and Bound must dominate every
// probed candidate it covers.
func FuzzClosedFormLoss(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x10, 0x80, 0xFF, 0x42, 0x07})
	f.Add(uint64(42), []byte{0xAA, 0xBB, 0xCC, 0x01, 0x02, 0x03})
	f.Add(uint64(7), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint64(515), []byte{0xF0, 0x0F, 0x55, 0xAA, 0x33, 0xCC, 0x5A, 0xA5})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		rng := xrand.New(seed%2048 + 1)
		m := randomMutable(rng, 4, 60, 3000, len(script)/4+1)
		p, err := NewPrefixMutable(m)
		if err != nil {
			t.Skip()
		}
		cf := p.ClosedForm()
		for i := 0; i+1 < len(script); i += 2 {
			ks := p.Set()
			nGaps := ks.Len() - 1
			sel := int(script[i])<<8 | int(script[i+1])
			if i%8 == 6 {
				// Every fourth pair mutates: insert a random free key and
				// re-derive the snapshot, as the greedy loop does.
				view := m.View()
				span := view.Max() - view.Min()
				if span <= 1 {
					break
				}
				kp := view.Min() + 1 + int64(sel)%(span-1)
				if _, free := view.InsertedRank(kp); !free {
					continue
				}
				if _, err := p.Insert(kp); err != nil {
					t.Fatalf("Insert(%d): %v", kp, err)
				}
				cf = p.ClosedForm()
				continue
			}
			// Probe: pick a gap and a candidate inside it.
			g := sel % nGaps
			lo, hi := ks.At(g)+1, ks.At(g+1)-1
			if lo > hi {
				continue
			}
			kp := lo + int64(sel)%(hi-lo+1)
			got, want := cf.Loss(kp, g+1), p.PoisonedLoss(kp, g+1)
			if got != want {
				t.Fatalf("Loss(%d, %d) = %v, PoisonedLoss = %v (diff %g)",
					kp, g+1, got, want, got-want)
			}
			// Bound over a block containing the probed gap must cover it.
			width := 1 + sel%9
			gapLo := g - g%width
			gapHi := gapLo + width
			if gapHi > nGaps {
				gapHi = nGaps
			}
			kLo, kHi := ks.At(gapLo)+1, ks.At(gapHi)-1
			if kLo > kHi {
				continue
			}
			if bound := cf.Bound(gapLo, gapHi, kLo, kHi); want > bound {
				t.Fatalf("Bound([%d,%d)) = %v < PoisonedLoss(%d, %d) = %v",
					gapLo, gapHi, bound, kp, g+1, want)
			}
		}
	})
}
