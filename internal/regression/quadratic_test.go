package regression

import (
	"math"
	"testing"
	"testing/quick"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func TestFitQuadExactParabola(t *testing.T) {
	// Keys whose ranks follow an exact parabola: k_i chosen so that
	// rank = sqrt(k) → k = rank². Fit y = a·k² + b·k + c can't be exact for
	// a square root; instead test the reverse: keys at i² have CDF
	// rank(k) = sqrt(k)… use a directly constructible case: keys where a
	// quadratic passes exactly through (k_i, i+1): pick k_i = i, so ranks
	// are linear (a=0) — the fit must recover the line with ~zero loss.
	raw := make([]int64, 50)
	for i := range raw {
		raw[i] = int64(i) * 3
	}
	ks, _ := keys.New(raw)
	q, err := FitQuadCDF(ks)
	if err != nil {
		t.Fatal(err)
	}
	if q.Loss > 1e-10 {
		t.Fatalf("linear data quad loss %v", q.Loss)
	}
	if math.Abs(q.A) > 1e-9 {
		t.Fatalf("spurious curvature %v", q.A)
	}
}

func TestQuadNeverWorseThanLinear(t *testing.T) {
	// The quadratic fit subsumes the linear model, so its optimal loss can
	// never exceed the linear optimum (up to numerical noise).
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		n := 3 + rng.Intn(80)
		raw := xrand.SampleInt64s(rng, n, 2000)
		ks, err := keys.New(raw)
		if err != nil {
			return false
		}
		lin, err := FitCDF(ks)
		if err != nil {
			return false
		}
		quad, err := FitQuadCDF(ks)
		if err != nil {
			return false
		}
		return quad.Loss <= lin.Loss*(1+1e-6)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitQuadIsMinimizer(t *testing.T) {
	rng := xrand.New(70)
	for trial := 0; trial < 30; trial++ {
		raw := xrand.SampleInt64s(rng, 40, 1000)
		ks, _ := keys.New(raw)
		m, err := FitQuadCDF(ks)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []Quad{
			{A: m.A + 1e-8, B: m.B, C: m.C},
			{A: m.A - 1e-8, B: m.B, C: m.C},
			{A: m.A, B: m.B + 1e-5, C: m.C},
			{A: m.A, B: m.B, C: m.C + 1e-3},
		} {
			l, err := EvaluateQuadCDF(d, ks)
			if err != nil {
				t.Fatal(err)
			}
			if l < m.Loss-1e-9*(1+m.Loss) {
				t.Fatalf("perturbed quad beats the fit: %v < %v", l, m.Loss)
			}
		}
	}
}

func TestFitQuadCapturesCurvature(t *testing.T) {
	// A CDF that IS a parabola: keys at C·sqrt(i+1) give rank(k) ≈ (k/C)².
	// The quadratic must fit it almost exactly (only rounding noise), while
	// the line cannot.
	raw := make([]int64, 0, 50)
	seen := map[int64]bool{}
	for i := 0; len(raw) < 50; i++ {
		k := int64(20*math.Sqrt(float64(i+1)) + 0.5)
		if !seen[k] {
			seen[k] = true
			raw = append(raw, k)
		}
	}
	ks, _ := keys.New(raw)
	lin, _ := FitCDF(ks)
	quad, err := FitQuadCDF(ks)
	if err != nil {
		t.Fatal(err)
	}
	if quad.Loss > lin.Loss/10 {
		t.Fatalf("quad %v not much better than linear %v on parabolic CDF", quad.Loss, lin.Loss)
	}
}

func TestFitQuadDegenerate(t *testing.T) {
	if _, err := FitQuadCDF(keys.Set{}); err == nil {
		t.Fatal("empty set accepted")
	}
	one, _ := keys.New([]int64{5})
	m, err := FitQuadCDF(one)
	if err != nil || m.Loss != 0 {
		t.Fatalf("singleton: %+v, %v", m, err)
	}
	two, _ := keys.New([]int64{5, 9})
	m, err = FitQuadCDF(two)
	if err != nil || m.Loss > 1e-12 {
		t.Fatalf("pair: %+v, %v", m, err)
	}
	if m.Predict(5) < 0.9 || m.Predict(9) > 2.1 {
		t.Fatalf("pair predictions off: %v %v", m.Predict(5), m.Predict(9))
	}
}

func TestQuadTranslationStability(t *testing.T) {
	// Large-magnitude keys: the centered fit must match the same data at
	// the origin.
	raw := []int64{0, 5, 13, 14, 30, 31, 32, 55, 80, 81, 100}
	shifted := make([]int64, len(raw))
	const base = 900_000_000
	for i, k := range raw {
		shifted[i] = base + k
	}
	a, _ := keys.New(raw)
	b, _ := keys.New(shifted)
	ma, err := FitQuadCDF(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := FitQuadCDF(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ma.Loss-mb.Loss) > 1e-6*(1+ma.Loss) {
		t.Fatalf("quad loss drifts at large magnitude: %v vs %v", ma.Loss, mb.Loss)
	}
}

func TestEvaluateQuadCDF(t *testing.T) {
	ks, _ := keys.New([]int64{0, 10, 20})
	// Exact line as a degenerate parabola.
	l, err := EvaluateQuadCDF(Quad{A: 0, B: 0.1, C: 1}, ks)
	if err != nil || l > 1e-12 {
		t.Fatalf("exact parabola mse %v, err %v", l, err)
	}
	if _, err := EvaluateQuadCDF(Quad{}, keys.Set{}); err == nil {
		t.Fatal("empty set accepted")
	}
	if (Quad{}).QuadParams() != 3 {
		t.Fatal("param accounting")
	}
}

func TestSolve3KnownSystem(t *testing.T) {
	// x + y + z = 6; 2y + 5z = -4; 2x + 5y - z = 27 → x=5, y=3, z=-2.
	x, y, z, ok := solve3(
		1, 1, 1, 6,
		0, 2, 5, -4,
		2, 5, -1, 27,
	)
	if !ok {
		t.Fatal("solvable system reported singular")
	}
	if math.Abs(x-5) > 1e-9 || math.Abs(y-3) > 1e-9 || math.Abs(z+2) > 1e-9 {
		t.Fatalf("solution (%v,%v,%v)", x, y, z)
	}
	// Singular system.
	if _, _, _, ok := solve3(1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3); ok {
		t.Fatal("singular system reported solvable")
	}
}
