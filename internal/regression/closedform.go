package regression

// The closed-form gap oracle: PoisonedLoss(kp, pos) as an explicit rational
// function of the centered candidate x = kp − origin, with all coefficients
// derived once per step from the exact integer moments. This is the algebra
// the pruned scan in internal/core builds its per-block upper bounds from
// (see DESIGN.md §11, "Closed-form oracle & pruned scan").
//
// Derivation. Write n for the clean count, n1 = n+1, S1 = Σx, S2 = Σx²,
// SR = Σx·r over the clean centered keys, and T(g) = sufX[g+1] for the
// exact rank-shift term of a candidate landing in gap g (between the keys
// at positions g and g+1, insertion rank t = g+2). With mr = (n+2)/2 and
// varR = n(n+2)/12, the poisoned loss of candidate x in gap g is
//
//	loss(x) = varR − W(x)²/(4·B(x))
//	W(x)    = 2·n1·cov  = v(g) + u(g)·x
//	B(x)    = n1²·varX  = n1·(S2+x²) − (S1+x)² = n·x² − 2·S1·x + b0
//
// where u(g) = 2g+2−n, v(g) = 2(SR+T(g)) − (n+2)·S1, b0 = n1·S2 − S1².
// B is one gap-independent convex quadratic. W is where the structure
// lives: a candidate's gap is determined by its key, so over the whole
// domain W is a single function of x — piecewise linear with slope u(g)
// strictly increasing in g, hence CONVEX. Per gap (u, v fixed) the
// numerator varR·4B − W² is a concave-free quadratic with positive leading
// coefficient n²(n+2) − 3u² > 0, which is Theorem 2's per-gap convexity
// rederived: the per-gap maximizer is a gap endpoint.
//
// Block bound. Over a block of gaps, W's convexity gives exact endpoint
// values, an exact minimum position (the slope sign change), and tangent /
// chord envelopes whose slack is only the slope variation across the block
// (~blockGaps/n relative — negligible). The load-bearing choice is to then
// minimize the RATIO T(x)²/(4B(x)) — T the linear envelope of W — in
// closed form (one critical point: linear-over-quadratic derivative), so
// numerator and denominator stay coupled through x. Decoupled interval
// bounds (min W² over max B, or per-coefficient envelopes of the cleared
// numerator) carry slack proportional to varR·ΔB/B, orders of magnitude
// above the loss variation between blocks, and prune nothing; the coupled
// ratio minimum leaves slack proportional to the envelope gap alone.

import "math"

// ClosedForm is the per-step snapshot of the closed-form oracle: the float64
// images of the exact integer moments, hoisted once so Loss replicates
// PoisonedLoss's float operation sequence bit-for-bit, plus the cleared
// coefficients the block bound needs. It is valid until the next Insert on
// the parent Prefix (rebuild with Prefix.ClosedForm afterwards).
type ClosedForm struct {
	origin int64
	n      int     // clean key count
	sufX   []int64 // shared with the Prefix; read-only
	s1     float64 // float64(Σx) — the exact conversions PoisonedLoss uses
	s2     float64 // float64(Σx²)
	sr     float64 // float64(Σx·r)
	n1     float64 // float64(n+1)
	mr     float64 // rankMean(n+1)
	varR   float64 // rankVar(n+1)
	fn     float64 // float64(n)
	np2    float64 // float64(n+2)
	b0     float64 // n1·S2 − S1², the gap-independent term of B(x)
	margin float64 // absolute slack added to every block bound (see Bound)
}

// ClosedForm derives the per-step oracle state from the prefix moments. O(1).
func (p *Prefix) ClosedForm() ClosedForm {
	c := ClosedForm{
		origin: p.origin,
		n:      p.n,
		sufX:   p.sufX,
		s1:     float64(p.sumX),
		s2:     p.sumXX.float(),
		sr:     p.sumXR.float(),
		n1:     float64(p.n + 1),
		mr:     rankMean(p.n + 1),
		varR:   rankVar(p.n + 1),
		fn:     float64(p.n),
		np2:    float64(p.n + 2),
	}
	c.b0 = c.n1*c.s2 - c.s1*c.s1
	// Bound must dominate the float64-evaluated PoisonedLoss of every
	// candidate it covers, not just the real-valued supremum. Both sides
	// evaluate the same rational function through short, well-conditioned
	// chains wherever W is large enough for the block to be prunable, so
	// their divergence stays within a few ulps of varR; 1e-10·varR leaves
	// ≥10²× headroom (pinned empirically by TestClosedFormBoundDominates
	// and the pruned-vs-full differential tests in internal/core).
	c.margin = 1e-10 * c.varR
	return c
}

// Loss is PoisonedLoss evaluated through the snapshot: same inputs, same
// float64 operation order, bit-identical result (pinned by
// FuzzClosedFormLoss). Exists so callers holding a ClosedForm never need the
// Prefix on the hot path.
func (c *ClosedForm) Loss(kp int64, pos int) float64 {
	xp := float64(kp - c.origin)
	t := float64(pos + 1)

	sumX := c.s1 + xp
	sumXX := c.s2 + xp*xp
	sumXR := c.sr + float64(c.sufX[pos]) + xp*t

	mx := sumX / c.n1
	mxx := sumXX / c.n1
	mxr := sumXR / c.n1

	varX := mxx - mx*mx
	cov := mxr - mx*c.mr
	if varX <= 0 {
		return c.varR
	}
	loss := c.varR - cov*cov/varX
	if loss < 0 {
		return 0
	}
	return loss
}

// VarR returns the poisoned rank variance (n(n+2)/12 as float64), the
// ceiling of every poisoned loss and the natural scale for bound margins.
func (c *ClosedForm) VarR() float64 { return c.varR }

// w evaluates W(x) for a candidate x in gap g: v(g) + u(g)·x.
func (c *ClosedForm) w(g int, x float64) float64 {
	v := 2*(c.sr+float64(c.sufX[g+1])) - c.np2*c.s1
	return v + float64(2*g+2-c.n)*x
}

// bq evaluates the denominator quadratic B(x) = n·x² − 2·S1·x + b0.
func (c *ClosedForm) bq(x float64) float64 {
	return (c.fn*x-2*c.s1)*x + c.b0
}

// Bound returns an upper bound on Loss(kp, g+1) over every candidate in the
// gap range [gapLo, gapHi) with key kp ∈ [kLo, kHi] (kLo above the set
// minimum; gap g lies between the keys at positions g and g+1). The bound
// dominates the float64-computed Loss of every covered candidate; it
// returns +Inf — "don't prune" — when the block straddles W's slope sign
// change (at most one such block per tree level, and it contains the
// covariance trough where losses approach varR anyway) or when the
// denominator envelope is too degenerate to trust (which is exactly when
// PoisonedLoss's varX ≤ 0 guard could fire).
func (c *ClosedForm) Bound(gapLo, gapHi int, kLo, kHi int64) float64 {
	x1 := float64(kLo - c.origin)
	x2 := float64(kHi - c.origin)

	// Degenerate-variance floor: below ~1e-12 relative variance the
	// individually-computed varX = mxx − mx² can round to ≤ 0, making
	// PoisonedLoss return varR — which no finite ratio bound covers. Real
	// datasets sit ≥ 1e6× above this floor (the set minimum is itself a
	// key, so varX ≥ mx²/n1).
	bv := c.s1 / c.fn
	if bv < x1 {
		bv = x1
	} else if bv > x2 {
		bv = x2
	}
	if c.bq(bv) <= 1e-12*c.n1*(c.s2+x2*x2) {
		return math.Inf(1)
	}

	uLo := float64(2*gapLo + 2 - c.n)     // slope of W in the first gap
	uHi := float64(2*(gapHi-1) + 2 - c.n) // slope in the last gap
	wL := c.w(gapLo, x1)                  // exact W at the leftmost candidate
	wR := c.w(gapHi-1, x2)                // exact W at the rightmost candidate

	// Linear envelope T of |W| over [x1, x2], pointwise below |W|:
	//   - W uniformly increasing or decreasing (slopes one-signed): the
	//     tangent at the end where W is smallest (convexity ⇒ T ≤ W).
	//   - slope sign change inside: the block holds W's global minimum;
	//     concede it rather than model the kink.
	// If W changes sign across the block, min W² is 0 and the bound
	// degenerates to varR + margin, which never prunes — correct, since
	// cov ≈ 0 candidates reach losses ≈ varR.
	var a, s float64 // T(x) = a + s·x
	switch {
	case uLo >= 0: // W nondecreasing: minimum at x1
		if wL <= 0 && 0 <= wR {
			return c.varR + c.margin
		}
		if wL > 0 {
			a, s = wL-uLo*x1, uLo // tangent at x1, positive throughout
		} else {
			// W < 0 everywhere: |W| is decreasing; the chord lies above W,
			// hence |chord| lies below |W|.
			s = (wR - wL) / (x2 - x1)
			a = wL - s*x1
		}
	case uHi <= 0: // W nonincreasing: minimum at x2
		if wR <= 0 && 0 <= wL {
			return c.varR + c.margin
		}
		if wR > 0 {
			a, s = wR-uHi*x2, uHi // tangent at x2
		} else {
			s = (wR - wL) / (x2 - x1)
			a = wL - s*x1
		}
	default:
		return math.Inf(1)
	}

	// Minimize f(x) = T(x)²/(4·B(x)) over [x1, x2] exactly: f has a single
	// critical point where 2·T'·B = T·B', a linear equation in x. Evaluate
	// the endpoints plus the interior critical point (when it exists) and
	// keep the smallest — whether the critical point is f's minimum or
	// maximum, the interval minimum is among these three.
	fmin := math.Min(c.ratio(a, s, x1), c.ratio(a, s, x2))
	den := s*(-2*c.s1) - 2*a*c.fn // s·β1 − 2·a·β2 for B = β2x² + β1x + β0
	if den != 0 {
		xc := (a*(-2*c.s1) - 2*s*c.b0) / den
		if x1 < xc && xc < x2 {
			fmin = math.Min(fmin, c.ratio(a, s, xc))
		}
	}
	bound := c.varR - fmin
	if bound < 0 {
		bound = 0 // losses clamp at 0; so does the bound
	}
	return bound + 1e-9*bound + c.margin
}

// ratio evaluates T(x)²/(4·B(x)) for T(x) = a + s·x.
func (c *ClosedForm) ratio(a, s, x float64) float64 {
	t := a + s*x
	return t * t / (4 * c.bq(x))
}
