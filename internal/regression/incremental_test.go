package regression

import (
	"math"
	"testing"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// freshPrefix rebuilds a Prefix from scratch on an independent copy of the
// mutable set's current content — the reference the incremental kernel must
// match bit-for-bit.
func freshPrefix(t testing.TB, m *keys.MutableSet) *Prefix {
	t.Helper()
	p, err := NewPrefix(m.Freeze())
	if err != nil {
		t.Fatalf("fresh NewPrefix: %v", err)
	}
	return p
}

// assertPrefixBitIdentical compares every observable of the incremental and
// the from-scratch kernel with == (no tolerance): clean loss, a full sweep
// of candidate losses, and full candidate models. This is the central
// guarantee that lets GreedyMultiPoint skip the per-step rebuild.
func assertPrefixBitIdentical(t *testing.T, inc, fresh *Prefix) {
	t.Helper()
	if inc.N() != fresh.N() {
		t.Fatalf("N: %d != %d", inc.N(), fresh.N())
	}
	if cl, fl := inc.CleanLoss(), fresh.CleanLoss(); cl != fl {
		t.Fatalf("CleanLoss: %v != %v (diff %g)", cl, fl, cl-fl)
	}
	ks := fresh.Set()
	for i := 0; i+1 < ks.Len(); i++ {
		lo, hi := ks.At(i)+1, ks.At(i+1)-1
		if lo > hi {
			continue
		}
		pos := i + 1
		for _, kp := range []int64{lo, hi, (lo + hi) / 2} {
			if li, lf := inc.PoisonedLoss(kp, pos), fresh.PoisonedLoss(kp, pos); li != lf {
				t.Fatalf("PoisonedLoss(%d, %d): %v != %v (diff %g)", kp, pos, li, lf, li-lf)
			}
			mi, mf := inc.PoisonedModel(kp, pos), fresh.PoisonedModel(kp, pos)
			if mi != mf {
				t.Fatalf("PoisonedModel(%d, %d): %+v != %+v", kp, pos, mi, mf)
			}
		}
	}
}

// randomMutable draws a random sparse set sized for repeated insertion.
func randomMutable(rng *xrand.RNG, minN, maxN int, domain int64, reserve int) *keys.MutableSet {
	n := minN + rng.Intn(maxN-minN+1)
	s, err := keys.New(xrand.SampleInt64s(rng, n, domain))
	if err != nil {
		panic(err)
	}
	return keys.NewMutable(s, reserve)
}

// TestPrefixInsertMatchesFreshRebuild is the differential property test of
// the incremental kernel: random insert sequences through Prefix.Insert
// must leave the kernel bit-identical — losses AND models — to a
// from-scratch NewPrefix on the augmented set, at every step.
func TestPrefixInsertMatchesFreshRebuild(t *testing.T) {
	rng := xrand.New(515)
	for trial := 0; trial < 40; trial++ {
		const reserve = 12
		m := randomMutable(rng, 5, 60, 4000, reserve)
		inc, err := NewPrefixMutable(m)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < reserve; step++ {
			// Pick a random free interior key.
			view := m.View()
			span := view.Max() - view.Min()
			if span <= 1 {
				break
			}
			kp := view.Min() + 1 + rng.Int63n(span-1)
			if _, free := view.InsertedRank(kp); !free {
				continue
			}
			wantPos := view.CountLess(kp)
			pos, err := inc.Insert(kp)
			if err != nil {
				t.Fatalf("trial %d step %d: Insert(%d): %v", trial, step, kp, err)
			}
			if pos != wantPos {
				t.Fatalf("Insert(%d) returned pos %d, want %d", kp, pos, wantPos)
			}
			assertPrefixBitIdentical(t, inc, freshPrefix(t, m))
		}
	}
}

// TestPrefixInsertLargeMagnitude drives the kernel where float64
// accumulation would round (sums beyond 2⁵³): exact integer moments must
// keep incremental == fresh bit-identical even there.
func TestPrefixInsertLargeMagnitude(t *testing.T) {
	rng := xrand.New(77)
	base := int64(1) << 40
	raw := make([]int64, 0, 3000)
	for i := 0; i < 3000; i++ {
		raw = append(raw, base+rng.Int63n(1<<22))
	}
	s, err := keys.New(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := keys.NewMutable(s, 8)
	inc, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		view := m.View()
		kp := view.Min() + 1 + rng.Int63n(view.Max()-view.Min()-1)
		if _, free := view.InsertedRank(kp); !free {
			continue
		}
		if _, err := inc.Insert(kp); err != nil {
			t.Fatal(err)
		}
		assertPrefixBitIdentical(t, inc, freshPrefix(t, m))
	}
}

// TestPrefixInsertZeroAllocSteadyState: after setup, Insert within the
// reserve must not allocate — the kernel's headline contract.
func TestPrefixInsertZeroAllocSteadyState(t *testing.T) {
	s, err := keys.New(xrand.SampleInt64s(xrand.New(9), 2000, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	// AllocsPerRun calls the function once extra as warm-up, so reserve two
	// batches of inserts.
	const batch = 50
	m := keys.NewMutable(s, 2*batch)
	inc, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(10)
	allocs := testing.AllocsPerRun(1, func() {
		for inserted := 0; inserted < batch; {
			view := m.View()
			kp := view.Min() + 1 + rng.Int63n(view.Max()-view.Min()-1)
			if _, free := view.InsertedRank(kp); !free {
				continue
			}
			if _, err := inc.Insert(kp); err != nil {
				t.Fatal(err)
			}
			inserted++
		}
	})
	if allocs > 0 {
		t.Fatalf("Insert allocated %v times inside the reserve", allocs)
	}
}

func TestPrefixInsertRejections(t *testing.T) {
	s, _ := keys.New([]int64{10, 20, 30, 40})
	m := keys.NewMutable(s, 4)
	inc, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert(20); err == nil {
		t.Fatal("present key accepted")
	}
	if _, err := inc.Insert(10); err == nil {
		t.Fatal("origin key accepted")
	}
	if _, err := inc.Insert(5); err == nil {
		t.Fatal("below-origin key accepted (origin would shift)")
	}
	imm, err := NewPrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := imm.Insert(25); err == nil {
		t.Fatal("immutable Prefix accepted Insert")
	}
	// Rejections must leave the kernel untouched.
	if _, err := inc.Insert(25); err != nil {
		t.Fatal(err)
	}
	assertPrefixBitIdentical(t, inc, freshPrefix(t, m))
}

// TestPrefixInsertBeyondReserve: exhausting the reserve degrades to growth,
// never to corruption.
func TestPrefixInsertBeyondReserve(t *testing.T) {
	s, _ := keys.New([]int64{0, 1000})
	m := keys.NewMutable(s, 1)
	inc, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, kp := range []int64{500, 250, 750, 125} {
		if _, err := inc.Insert(kp); err != nil {
			t.Fatalf("Insert(%d): %v", kp, err)
		}
		assertPrefixBitIdentical(t, inc, freshPrefix(t, m))
	}
}

func TestNewPrefixRangeGuard(t *testing.T) {
	// Two keys spanning nearly the whole int64 range: Σx fits (one term),
	// three such keys must trip ErrRange deterministically rather than
	// silently overflow.
	huge := int64(math.MaxInt64) - 1
	s, err := keys.New([]int64{0, huge - 1, huge})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPrefix(s); err != ErrRange {
		t.Fatalf("want ErrRange, got %v", err)
	}
	// And Insert must guard the same bound.
	s2, _ := keys.New([]int64{0, huge})
	m := keys.NewMutable(s2, 2)
	inc, err := NewPrefixMutable(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Insert(huge - 1); err != ErrRange {
		t.Fatalf("Insert overflow: want ErrRange, got %v", err)
	}
	// The failed Insert must not have mutated anything.
	assertPrefixBitIdentical(t, inc, freshPrefix(t, m))
}

// FuzzPrefixInsert feeds arbitrary byte strings as insert sequences: each
// pair of bytes selects a candidate key; valid inserts must keep the
// incremental kernel bit-identical to the from-scratch rebuild.
func FuzzPrefixInsert(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x10, 0x80, 0xFF, 0x42, 0x07})
	f.Add(uint64(42), []byte{0xAA, 0xBB, 0xCC})
	f.Add(uint64(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		rng := xrand.New(seed%1024 + 1)
		m := randomMutable(rng, 4, 40, 2000, len(script)/2+1)
		inc, err := NewPrefixMutable(m)
		if err != nil {
			t.Skip()
		}
		for i := 0; i+1 < len(script); i += 2 {
			view := m.View()
			span := view.Max() - view.Min()
			if span <= 1 {
				break
			}
			off := (int64(script[i])<<8 | int64(script[i+1])) % (span - 1)
			kp := view.Min() + 1 + off
			if _, free := view.InsertedRank(kp); !free {
				continue
			}
			if _, err := inc.Insert(kp); err != nil {
				t.Fatalf("Insert(%d): %v", kp, err)
			}
			fresh, err := NewPrefix(m.Freeze())
			if err != nil {
				t.Fatal(err)
			}
			if inc.CleanLoss() != fresh.CleanLoss() {
				t.Fatalf("CleanLoss diverged after Insert(%d): %v != %v",
					kp, inc.CleanLoss(), fresh.CleanLoss())
			}
			if l, ok := inc.PoisonedLossAuto(kp + 1); ok {
				lf, _ := fresh.PoisonedLossAuto(kp + 1)
				if l != lf {
					t.Fatalf("PoisonedLossAuto diverged: %v != %v", l, lf)
				}
			}
		}
	})
}
