package regression

import (
	"cdfpoison/internal/keys"
)

// Quadratic second-stage models are the mitigation the paper's Discussion
// weighs and rejects on cost grounds: "future learned index structures may
// choose more complex final-stage models which is a design choice that
// might negatively affect the storage overhead" (Section VI). This file
// provides the closed-form degree-2 least-squares fit so that the trade-off
// — robustness gained vs. parameters stored and multiplications spent — can
// be measured instead of asserted (lisbench extension, "quad" ablation).

// Quad is a fitted parabola over affinely normalized keys:
//
//	rank ≈ A·x² + B·x + C,  x = (key − Origin) / Scale.
//
// The normalized representation is not cosmetic: expanding to raw-key
// coefficients at key magnitudes ~10⁹ cancels catastrophically when the
// parabola is evaluated. A zero-valued Scale is treated as 1, so simple
// literals like Quad{B: 0.1, C: 1} behave as raw-key parabolas.
type Quad struct {
	A, B, C float64
	Origin  int64
	Scale   float64
}

// Predict returns the predicted (fractional) rank of key k.
func (q Quad) Predict(k int64) float64 {
	s := q.Scale
	if s == 0 {
		s = 1
	}
	x := float64(k-q.Origin) / s
	return (q.A*x+q.B)*x + q.C
}

// QuadModel is the result of a quadratic CDF fit.
type QuadModel struct {
	Quad
	Loss float64
	N    int
}

// FitQuadCDF fits rank ≈ a·k² + b·k + c by least squares on the key set's
// CDF, via the 3×3 normal equations over keys centered at the set minimum
// (same stability rationale as FitCDF). n == 1 and n == 2 degenerate to the
// exact linear/constant fits with zero loss.
func FitQuadCDF(ks keys.Set) (QuadModel, error) {
	n := ks.Len()
	if n == 0 {
		return QuadModel{}, ErrTooFew
	}
	if n <= 2 {
		lin, err := FitCDF(ks)
		if err != nil {
			return QuadModel{}, err
		}
		return QuadModel{Quad: Quad{A: 0, B: lin.W, C: lin.B, Scale: 1}, Loss: 0, N: n}, nil
	}
	origin := ks.Min()
	span := float64(ks.Max() - origin)
	if span <= 0 {
		span = 1
	}
	// Normalize x to [0, 1] so the 3×3 normal matrix is well conditioned
	// (raw moments up to Σx⁴ would span ~15 orders of magnitude otherwise):
	//   [S4 S3 S2] [a]   [Sx2y]
	//   [S3 S2 S1] [b] = [Sxy ]
	//   [S2 S1 S0] [c]   [Sy  ]
	var s0, s1, s2, s3, s4, sy, sxy, sx2y float64
	s0 = float64(n)
	for i := 0; i < n; i++ {
		x := float64(ks.At(i)-origin) / span
		y := float64(i + 1)
		x2 := x * x
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		sy += y
		sxy += x * y
		sx2y += x2 * y
	}
	a, b, c, ok := solve3(
		s4, s3, s2, sx2y,
		s3, s2, s1, sxy,
		s2, s1, s0, sy,
	)
	if !ok {
		// Singular system (e.g. keys forming a degenerate pattern): fall
		// back to the linear fit, which always exists for distinct keys.
		lin, err := FitCDF(ks)
		if err != nil {
			return QuadModel{}, err
		}
		return QuadModel{Quad: Quad{A: 0, B: lin.W, C: lin.B, Scale: 1}, Loss: lin.Loss, N: n}, nil
	}
	m := QuadModel{N: n, Quad: Quad{A: a, B: b, C: c, Origin: origin, Scale: span}}
	var ss float64
	for i := 0; i < n; i++ {
		d := m.Predict(ks.At(i)) - float64(i+1)
		ss += d * d
	}
	m.Loss = ss / float64(n)
	return m, nil
}

// solve3 solves a 3×3 linear system by Cramer's rule; ok is false when the
// determinant vanishes (relative to the matrix scale).
func solve3(a11, a12, a13, b1, a21, a22, a23, b2, a31, a32, a33, b3 float64) (x, y, z float64, ok bool) {
	det := a11*(a22*a33-a23*a32) - a12*(a21*a33-a23*a31) + a13*(a21*a32-a22*a31)
	scale := abs(a11) + abs(a22) + abs(a33)
	if abs(det) <= 1e-12*scale*scale*scale {
		return 0, 0, 0, false
	}
	dx := b1*(a22*a33-a23*a32) - a12*(b2*a33-a23*b3) + a13*(b2*a32-a22*b3)
	dy := a11*(b2*a33-a23*b3) - b1*(a21*a33-a23*a31) + a13*(a21*b3-b2*a31)
	dz := a11*(a22*b3-b2*a32) - a12*(a21*b3-b2*a31) + b1*(a21*a32-a22*a31)
	return dx / det, dy / det, dz / det, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// EvaluateQuadCDF returns the MSE of an arbitrary parabola on the key set's
// CDF, used when scoring a model fitted elsewhere.
func EvaluateQuadCDF(q Quad, ks keys.Set) (float64, error) {
	n := ks.Len()
	if n == 0 {
		return 0, ErrTooFew
	}
	var ss float64
	for i := 0; i < n; i++ {
		d := q.Predict(ks.At(i)) - float64(i+1)
		ss += d * d
	}
	return ss / float64(n), nil
}

// QuadParams returns the storage cost in float64 parameters (3 vs the
// linear model's 2) — the overhead the paper's Discussion cites.
func (q Quad) QuadParams() int { return 3 }
