package regression

import (
	"math"
	"testing"
	"testing/quick"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func mustSet(t *testing.T, ks []int64) keys.Set {
	t.Helper()
	s, err := keys.New(ks)
	if err != nil {
		t.Fatalf("keys.New: %v", err)
	}
	return s
}

func randomSet(rng *xrand.RNG, minN, maxN int, domain int64) keys.Set {
	n := minN + rng.Intn(maxN-minN+1)
	raw := xrand.SampleInt64s(rng, n, domain)
	s, err := keys.New(raw)
	if err != nil {
		panic(err)
	}
	return s
}

// naiveFit solves least squares on (key, rank) pairs via accumulation in the
// straightforward uncentered formulation — an independent implementation the
// closed form must agree with (domains are kept small enough here that the
// naive math is exact).
func naiveFit(ks keys.Set) (w, b, mse float64) {
	n := float64(ks.Len())
	var sx, sy, sxx, sxy float64
	for i := 0; i < ks.Len(); i++ {
		x, y := float64(ks.At(i)), float64(i+1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	w = (n*sxy - sx*sy) / den
	b = (sy - w*sx) / n
	var ss float64
	for i := 0; i < ks.Len(); i++ {
		d := w*float64(ks.At(i)) + b - float64(i+1)
		ss += d * d
	}
	return w, b, ss / n
}

func TestFitCDFAgainstNaive(t *testing.T) {
	rng := xrand.New(100)
	for trial := 0; trial < 200; trial++ {
		ks := randomSet(rng, 2, 60, 1000)
		m, err := FitCDF(ks)
		if err != nil {
			t.Fatal(err)
		}
		w, b, mse := naiveFit(ks)
		if math.Abs(m.W-w) > 1e-8*(1+math.Abs(w)) {
			t.Fatalf("W=%v naive=%v set=%v", m.W, w, ks)
		}
		if math.Abs(m.B-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("B=%v naive=%v set=%v", m.B, b, ks)
		}
		if math.Abs(m.Loss-mse) > 1e-8*(1+mse) {
			t.Fatalf("Loss=%v naive=%v set=%v", m.Loss, mse, ks)
		}
	}
}

func TestFitCDFIsMinimizer(t *testing.T) {
	// Perturbing the fitted parameters must never reduce the loss.
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		ks := randomSet(rng, 3, 40, 500)
		m, err := FitCDF(ks)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []struct{ dw, db float64 }{
			{1e-3, 0}, {-1e-3, 0}, {0, 1e-2}, {0, -1e-2}, {1e-3, -1e-2},
		} {
			perturbed := Line{W: m.W + d.dw, B: m.B + d.db}
			l, err := EvaluateCDF(perturbed, ks)
			if err != nil {
				t.Fatal(err)
			}
			if l < m.Loss-1e-9 {
				t.Fatalf("perturbation (%v,%v) reduced loss %v -> %v on %v", d.dw, d.db, m.Loss, l, ks)
			}
		}
	}
}

func TestFitCDFTranslationInvariance(t *testing.T) {
	f := func(seed uint32, shiftRaw uint16) bool {
		rng := xrand.New(uint64(seed))
		ks := randomSet(rng, 2, 50, 2000)
		shift := int64(shiftRaw)
		shifted := make([]int64, ks.Len())
		for i := range shifted {
			shifted[i] = ks.At(i) + shift
		}
		ks2, err := keys.New(shifted)
		if err != nil {
			return false
		}
		m1, err1 := FitCDF(ks)
		m2, err2 := FitCDF(ks2)
		if err1 != nil || err2 != nil {
			return false
		}
		// Slope and loss are invariant; intercept shifts by −W·shift.
		return math.Abs(m1.W-m2.W) < 1e-9*(1+math.Abs(m1.W)) &&
			math.Abs(m1.Loss-m2.Loss) < 1e-7*(1+m1.Loss) &&
			math.Abs((m1.B-m1.W*float64(0))-(m2.B+m2.W*float64(shift))) < 1e-5*(1+math.Abs(m1.B))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitCDFLargeMagnitudeStability(t *testing.T) {
	// Second-stage RMI models: keys near 1e9 in a narrow window. The naive
	// uncentered formulation loses most significant digits here; the centered
	// one must stay accurate. We verify against the same data shifted to the
	// origin, where naive math is exact.
	base := int64(999_000_000)
	raw := []int64{0, 13, 27, 55, 80, 81, 90, 121, 200, 301, 377, 500}
	var shifted []int64
	for _, k := range raw {
		shifted = append(shifted, base+k)
	}
	near, _ := keys.New(shifted)
	orig, _ := keys.New(raw)
	mNear, err := FitCDF(near)
	if err != nil {
		t.Fatal(err)
	}
	mOrig, err := FitCDF(orig)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mNear.Loss-mOrig.Loss) > 1e-6*(1+mOrig.Loss) {
		t.Fatalf("loss drifts at large magnitude: %v vs %v", mNear.Loss, mOrig.Loss)
	}
	if math.Abs(mNear.W-mOrig.W) > 1e-9 {
		t.Fatalf("slope drifts at large magnitude: %v vs %v", mNear.W, mOrig.W)
	}
}

func TestFitCDFDegenerate(t *testing.T) {
	if _, err := FitCDF(keys.Set{}); err == nil {
		t.Fatal("empty set must error")
	}
	m, err := FitCDF(mustSet(t, []int64{42}))
	if err != nil || m.Loss != 0 || m.Predict(42) != 1 {
		t.Fatalf("singleton fit: %+v, %v", m, err)
	}
}

func TestFitCDFPerfectLine(t *testing.T) {
	// Consecutive integers form a perfectly linear CDF: loss must be ~0 and
	// the slope must be 1.
	ks := mustSet(t, []int64{100, 101, 102, 103, 104, 105})
	m, err := FitCDF(ks)
	if err != nil {
		t.Fatal(err)
	}
	if m.Loss > 1e-12 {
		t.Errorf("perfect line loss = %v", m.Loss)
	}
	if math.Abs(m.W-1) > 1e-12 {
		t.Errorf("perfect line slope = %v", m.W)
	}
	// Evenly spaced keys are also exactly linear with slope 1/spacing.
	ks2 := mustSet(t, []int64{0, 10, 20, 30, 40})
	m2, _ := FitCDF(ks2)
	if m2.Loss > 1e-12 || math.Abs(m2.W-0.1) > 1e-12 {
		t.Errorf("even spacing: %+v", m2)
	}
}

func TestEvaluateCDF(t *testing.T) {
	ks := mustSet(t, []int64{0, 10})
	// Line predicting exactly ranks 1,2.
	l := Line{W: 0.1, B: 1}
	mse, err := EvaluateCDF(l, ks)
	if err != nil || mse > 1e-18 {
		t.Fatalf("exact line mse = %v, err %v", mse, err)
	}
	// Constant line at 1.5 has residuals ±0.5 → mse 0.25.
	mse, _ = EvaluateCDF(Line{W: 0, B: 1.5}, ks)
	if math.Abs(mse-0.25) > 1e-12 {
		t.Fatalf("constant line mse = %v, want 0.25", mse)
	}
	if _, err := EvaluateCDF(l, keys.Set{}); err == nil {
		t.Fatal("empty set must error")
	}
}

func TestFitXY(t *testing.T) {
	// Exact line.
	x := []float64{0, 1, 2, 3}
	y := []float64{5, 7, 9, 11}
	l, err := FitXY(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.W-2) > 1e-12 || math.Abs(l.B-5) > 1e-12 {
		t.Fatalf("FitXY = %+v, want w=2 b=5", l)
	}
	// Degenerate: constant x.
	l, err = FitXY([]float64{3, 3}, []float64{1, 5})
	if err != nil || l.W != 0 || l.B != 3 {
		t.Fatalf("constant-x fit = %+v, %v", l, err)
	}
	if _, err := FitXY([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := FitXY(nil, nil); err == nil {
		t.Fatal("empty must error")
	}
}

func TestPrefixCleanLossMatchesFit(t *testing.T) {
	rng := xrand.New(200)
	for trial := 0; trial < 100; trial++ {
		ks := randomSet(rng, 2, 80, 5000)
		p, err := NewPrefix(ks)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := FitCDF(ks)
		if math.Abs(p.CleanLoss()-m.Loss) > 1e-9*(1+m.Loss) {
			t.Fatalf("CleanLoss %v != Fit loss %v", p.CleanLoss(), m.Loss)
		}
	}
}

func TestPoisonedLossMatchesRefit(t *testing.T) {
	// The O(1) candidate evaluation must agree with a from-scratch refit on
	// the augmented set — the central correctness property of the attack.
	rng := xrand.New(300)
	for trial := 0; trial < 100; trial++ {
		ks := randomSet(rng, 2, 50, 400)
		p, err := NewPrefix(ks)
		if err != nil {
			t.Fatal(err)
		}
		for kp := ks.Min() + 1; kp < ks.Max(); kp++ {
			rank, free := ks.InsertedRank(kp)
			if !free {
				continue
			}
			fast := p.PoisonedLoss(kp, rank-1)
			aug, ok := ks.Insert(kp)
			if !ok {
				t.Fatal("insert failed")
			}
			m, _ := FitCDF(aug)
			if math.Abs(fast-m.Loss) > 1e-8*(1+m.Loss) {
				t.Fatalf("PoisonedLoss(%d)=%v but refit=%v on %v", kp, fast, m.Loss, ks)
			}
		}
	}
}

func TestPoisonedLossAuto(t *testing.T) {
	ks := mustSet(t, []int64{2, 6, 7, 12})
	p, err := NewPrefix(ks)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.PoisonedLossAuto(6); ok {
		t.Fatal("occupied key accepted")
	}
	l, ok := p.PoisonedLossAuto(9)
	if !ok {
		t.Fatal("free key rejected")
	}
	if direct := p.PoisonedLoss(9, 3); l != direct {
		t.Fatalf("auto %v != direct %v", l, direct)
	}
}

func TestPoisonedModelMatchesRefit(t *testing.T) {
	rng := xrand.New(400)
	for trial := 0; trial < 50; trial++ {
		ks := randomSet(rng, 3, 30, 300)
		p, err := NewPrefix(ks)
		if err != nil {
			t.Fatal(err)
		}
		kp := int64(-1)
		var pos int
		for k := ks.Min() + 1; k < ks.Max(); k++ {
			if r, free := ks.InsertedRank(k); free {
				kp, pos = k, r-1
				break
			}
		}
		if kp < 0 {
			continue // saturated
		}
		got := p.PoisonedModel(kp, pos)
		aug, _ := ks.Insert(kp)
		want, _ := FitCDF(aug)
		if math.Abs(got.W-want.W) > 1e-8*(1+math.Abs(want.W)) ||
			math.Abs(got.B-want.B) > 1e-5*(1+math.Abs(want.B)) ||
			math.Abs(got.Loss-want.Loss) > 1e-8*(1+want.Loss) {
			t.Fatalf("PoisonedModel %+v != refit %+v", got, want)
		}
	}
}

func TestNewPrefixTooFew(t *testing.T) {
	if _, err := NewPrefix(mustSet(t, []int64{9})); err == nil {
		t.Fatal("NewPrefix on singleton must error")
	}
}

func TestMaxAbsResidual(t *testing.T) {
	ks := mustSet(t, []int64{0, 10, 20})
	// Exact line → zero residual.
	if r := MaxAbsResidual(Line{W: 0.1, B: 1}, ks); r > 1e-12 {
		t.Errorf("residual on exact line = %v", r)
	}
	// Constant 0 → worst residual is rank 3.
	if r := MaxAbsResidual(Line{}, ks); math.Abs(r-3) > 1e-12 {
		t.Errorf("residual = %v, want 3", r)
	}
}

func TestModelString(t *testing.T) {
	m, _ := FitCDF(mustSet(t, []int64{1, 5, 9}))
	if m.String() == "" {
		t.Error("String empty")
	}
}
