package regression

// The incremental attack kernel: Algorithm 1 historically paid three O(n)
// passes per greedy step — a copy-on-insert of the key set, a from-scratch
// NewPrefix rebuild, and the allocations backing both. Insert collapses a
// step to O(1) moment updates plus two memmove-class passes over
// pre-reserved storage, with zero allocations after setup.
//
// Why this cannot change a single output bit: the moments are exact
// integers (see the Prefix type comment), so the state Insert produces is
// the same mathematical — and therefore the same machine — value NewPrefix
// computes from scratch on the augmented set. The differential property and
// fuzz tests in incremental_test.go pin that equivalence bit-for-bit at
// every step of random insertion sequences.

import (
	"fmt"
	"math"
	"math/bits"
)

// u128 is an unsigned 128-bit integer accumulator for the second-order
// moments Σx² and Σx·r, whose exact values overflow int64 at large key
// spans. With Σx guarded to fit int64 (ErrRange), both second-order sums
// are bounded by 2⁶³·2⁶³ = 2¹²⁶ and can never overflow u128.
type u128 struct{ hi, lo uint64 }

// u128Mul returns a×b as a u128.
func u128Mul(a, b uint64) u128 {
	hi, lo := bits.Mul64(a, b)
	return u128{hi, lo}
}

// add returns a+b, ignoring (impossible, see type comment) overflow.
func (a u128) add(b u128) u128 {
	lo, carry := bits.Add64(a.lo, b.lo, 0)
	hi, _ := bits.Add64(a.hi, b.hi, carry)
	return u128{hi, lo}
}

// addU64 returns a+v.
func (a u128) addU64(v uint64) u128 { return a.add(u128{0, v}) }

// float converts to float64. Values below 2⁵³ (every shipped experiment
// scale) convert exactly; larger values round deterministically, and both
// the incremental and the from-scratch path hold the same integer, so they
// round identically.
func (a u128) float() float64 {
	if a.hi == 0 {
		return float64(a.lo)
	}
	return float64(a.hi)*0x1p64 + float64(a.lo)
}

// Insert adds the poisoning key kp to the kernel in place: the underlying
// mutable key set absorbs kp with one memmove, the scalar moments update in
// O(1), and the suffix sums update with one memmove plus one vectorizable
// add-constant pass — no allocation as long as the reserve NewMutable set
// aside has room. It returns the 0-based position kp took.
//
// Requirements (all returned as errors, never silently mis-accounted):
// the Prefix must come from NewPrefixMutable; kp must be absent; kp must be
// greater than the set minimum so the centering origin is stable — the
// paper's attacks only ever insert strictly interior keys, so the
// constraint is free; and the new Σx must still fit int64 (ErrRange).
func (p *Prefix) Insert(kp int64) (pos int, err error) {
	if p.mut == nil {
		return 0, fmt.Errorf("regression: Insert on an immutable Prefix (build with NewPrefixMutable)")
	}
	if kp <= p.origin {
		return 0, fmt.Errorf("regression: Insert key %d not above the origin %d", kp, p.origin)
	}
	rank, free := p.mut.InsertedRank(kp)
	if !free {
		return 0, fmt.Errorf("regression: Insert key %d already present", kp)
	}
	pos = rank - 1
	xp := kp - p.origin
	if p.sumX > math.MaxInt64-xp {
		return 0, ErrRange
	}
	if _, ok := p.mut.Insert(kp); !ok {
		return 0, fmt.Errorf("regression: mutable set rejected key %d", kp)
	}

	n := p.n
	// The keys at positions >= pos each gain one unit of rank; their key sum
	// is the old sufX[pos], the exact term the rank shift adds to Σx·r.
	shifted := p.sufX[pos]

	// Suffix sums: entries above pos slide right one slot (they cover the
	// same key suffixes as before), entries at and below pos gain xp (their
	// suffixes now contain kp). Both passes are exact integer arithmetic,
	// so the result equals the from-scratch suffix scan bit-for-bit.
	if cap(p.sufX) > n+1 {
		p.sufX = p.sufX[:n+2]
	} else {
		p.sufX = append(p.sufX, 0) // reserve exhausted: pay growth once
	}
	copy(p.sufX[pos+1:], p.sufX[pos:n+1])
	for i := 0; i <= pos; i++ {
		p.sufX[i] += xp
	}

	uxp := uint64(xp)
	p.sumX += xp
	p.sumXX = p.sumXX.add(u128Mul(uxp, uxp))
	p.sumXR = p.sumXR.add(u128Mul(uxp, uint64(pos+1))).addU64(uint64(shifted))
	p.n = n + 1
	p.ks = p.mut.View()
	return pos, nil
}
