package btree

import (
	"testing"

	"cdfpoison/internal/xrand"
)

// TestProbeSumMirrorsGet: ProbeSum is the exact per-key Get sum — the same
// batch shape as dynamic.Index.ProbeSum, so the backend comparison sweep
// measures both through one code path — and is partition-invariant.
func TestProbeSumMirrorsGet(t *testing.T) {
	tr := mustTree(t, 8)
	rng := xrand.New(6)
	stored := xrand.SampleInt64s(rng, 2_000, 1<<30)
	for _, k := range stored {
		tr.Insert(k)
	}
	queries := append(append([]int64(nil), stored[:500]...), 1, 2, 3, 1<<31)
	var wantProbes int64
	wantMiss := 0
	for _, k := range queries {
		found, p := tr.Get(k)
		wantProbes += int64(p)
		if !found {
			wantMiss++
		}
	}
	gotProbes, gotMiss := tr.ProbeSum(queries)
	if gotProbes != wantProbes || gotMiss != wantMiss {
		t.Fatalf("ProbeSum = (%d, %d), Get sum = (%d, %d)", gotProbes, gotMiss, wantProbes, wantMiss)
	}
	for _, cut := range []int{1, 100, len(queries) - 1} {
		a, am := tr.ProbeSum(queries[:cut])
		b, bm := tr.ProbeSum(queries[cut:])
		if a+b != wantProbes || am+bm != wantMiss {
			t.Fatalf("ProbeSum not partition-invariant at cut %d", cut)
		}
	}
}

// TestBackendFace: Lookup/Keys/Stats/Retrain behave as the model-free
// backend the scenarios expect.
func TestBackendFace(t *testing.T) {
	tr := mustTree(t, 4)
	for k := int64(0); k < 100; k += 2 {
		tr.Insert(k)
	}
	r := tr.Lookup(42)
	if !r.Found || r.Probes < 1 || r.Window != 0 || r.InBuffer {
		t.Fatalf("Lookup(42) = %+v", r)
	}
	if r := tr.Lookup(43); r.Found {
		t.Fatalf("phantom key: %+v", r)
	}
	ks := tr.Keys()
	if ks.Len() != 50 || ks.Min() != 0 || ks.Max() != 98 {
		t.Fatalf("Keys() = len %d [%d, %d]", ks.Len(), ks.Min(), ks.Max())
	}
	tr.Retrain() // no-op, must not disturb anything
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Keys != 50 || st.Buffered != 0 || st.Retrains != 0 || st.ModelLoss != 0 ||
		st.ContentLoss != 0 || st.Window != 0 {
		t.Fatalf("model-free stats carry model fields: %+v", st)
	}
}
