// Package btree implements an in-memory B-Tree over int64 keys — the
// traditional index structure that learned index structures are measured
// against (Kraska et al. report a two-stage RMI outperforming a highly
// optimized B-Tree; the poisoning paper's premise is that this advantage is
// what an attacker erodes).
//
// The tree supports insertion, deletion, point lookup with comparison
// accounting, ordered iteration, and rank queries, using the classic
// preemptive split/merge algorithms so that every operation completes in a
// single root-to-leaf pass.
package btree

import "fmt"

// Tree is a B-Tree of minimum degree d: every node except the root holds
// between d−1 and 2d−1 keys. The zero value is not usable; call New.
type Tree struct {
	root   *node
	degree int
	size   int
}

type node struct {
	keys     []int64
	children []*node
	// counts[i] = total keys in subtree children[i]; maintained for O(log n)
	// rank queries. nil for leaves.
	counts []int
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// New creates an empty tree with the given minimum degree (>= 2). A degree
// of 32 gives node sizes comparable to cache-line-friendly production trees.
func New(degree int) (*Tree, error) {
	if degree < 2 {
		return nil, fmt.Errorf("btree: minimum degree must be >= 2, got %d", degree)
	}
	return &Tree{root: &node{}, degree: degree}, nil
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree holding only a root).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return h
}

func (n *node) subtreeSize() int {
	s := len(n.keys)
	for _, c := range n.counts {
		s += c
	}
	return s
}

// search returns the index of the first key >= k in the node and whether it
// equals k, counting comparisons into *probes (binary search within node).
func (n *node) search(k int64, probes *int) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		*probes++
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && n.keys[lo] == k
}

// Get reports whether k is stored, along with the number of key comparisons
// performed — the implementation-independent lookup-cost metric used when
// comparing against the learned index.
func (t *Tree) Get(k int64) (found bool, probes int) {
	n := t.root
	for {
		i, ok := n.search(k, &probes)
		if ok {
			return true, probes
		}
		if n.leaf() {
			return false, probes
		}
		n = n.children[i]
	}
}

// Contains reports whether k is stored.
func (t *Tree) Contains(k int64) bool {
	ok, _ := t.Get(k)
	return ok
}

// Rank returns the number of stored keys strictly less than k, in O(log n)
// via subtree counts.
func (t *Tree) Rank(k int64) int {
	rank := 0
	n := t.root
	for {
		var probes int
		i, ok := n.search(k, &probes)
		if n.leaf() {
			return rank + i
		}
		for j := 0; j < i; j++ {
			rank += n.counts[j]
		}
		rank += i
		if ok {
			// keys[0..i-1], subtrees 0..i-1, and the whole subtree i are
			// all strictly below k.
			return rank + n.counts[i]
		}
		n = n.children[i]
	}
}

// Insert adds k; accepted is false if k was already present or negative
// (the repository's key universe is [0, m), and Keys() materializes into a
// keys.Set that enforces it). The second result is index.Backend's
// retrained flag and is always false: a B-Tree rebalances incrementally on
// the way down and never retrains.
func (t *Tree) Insert(k int64) (accepted, retrained bool) {
	if k < 0 {
		return false, false
	}
	r := t.root
	if len(r.keys) == 2*t.degree-1 {
		// Preemptive root split keeps the downward pass single-phase.
		newRoot := &node{children: []*node{r}, counts: []int{r.subtreeSize()}}
		newRoot.splitChild(0, t.degree)
		t.root = newRoot
	}
	if t.root.insertNonFull(k, t.degree) {
		t.size++
		return true, false
	}
	return false, false
}

// splitChild splits the full child at index i into two d−1-key nodes,
// hoisting the median into n.
func (n *node) splitChild(i, d int) {
	child := n.children[i]
	median := child.keys[d-1]

	right := &node{keys: append([]int64(nil), child.keys[d:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[d:]...)
		right.counts = append([]int(nil), child.counts[d:]...)
		child.children = child.children[:d]
		child.counts = child.counts[:d]
	}
	child.keys = child.keys[:d-1]

	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right

	n.counts = append(n.counts, 0)
	copy(n.counts[i+2:], n.counts[i+1:])
	n.counts[i] = child.subtreeSize()
	n.counts[i+1] = right.subtreeSize()
}

func (n *node) insertNonFull(k int64, d int) bool {
	var probes int
	i, ok := n.search(k, &probes)
	if ok {
		return false
	}
	if n.leaf() {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		return true
	}
	if len(n.children[i].keys) == 2*d-1 {
		n.splitChild(i, d)
		if k == n.keys[i] {
			return false
		}
		if k > n.keys[i] {
			i++
		}
	}
	inserted := n.children[i].insertNonFull(k, d)
	if inserted {
		n.counts[i]++
	}
	return inserted
}

// Delete removes k; it reports false if k was not present.
func (t *Tree) Delete(k int64) bool {
	deleted := t.root.delete(k, t.degree)
	// The descent may restructure (merge) before discovering the key is
	// absent, so the root fix-up must run on every path, found or not.
	if len(t.root.keys) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

// delete removes k from the subtree rooted at n, assuming n has at least d
// keys (or is the root). Standard CLRS case analysis.
func (n *node) delete(k int64, d int) bool {
	var probes int
	i, ok := n.search(k, &probes)
	if n.leaf() {
		if !ok {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		return true
	}
	if ok {
		// Case 2: k lives in this internal node.
		if len(n.children[i].keys) >= d {
			pred := n.children[i].max()
			n.keys[i] = pred
			n.children[i].delete(pred, d)
			n.counts[i]--
			return true
		}
		if len(n.children[i+1].keys) >= d {
			succ := n.children[i+1].min()
			n.keys[i] = succ
			n.children[i+1].delete(succ, d)
			n.counts[i+1]--
			return true
		}
		// Both neighbours minimal: merge and recurse.
		n.mergeChildren(i)
		deleted := n.children[i].delete(k, d)
		if deleted {
			n.counts[i]--
		}
		return deleted
	}
	// Case 3: k (if present) lives in subtree i; ensure it has >= d keys.
	child := n.children[i]
	if len(child.keys) == d-1 {
		switch {
		case i > 0 && len(n.children[i-1].keys) >= d:
			n.borrowFromLeft(i)
		case i < len(n.children)-1 && len(n.children[i+1].keys) >= d:
			n.borrowFromRight(i)
		default:
			if i == len(n.children)-1 {
				i--
			}
			n.mergeChildren(i)
		}
	}
	deleted := n.children[i].delete(k, d)
	if deleted {
		n.counts[i]--
	}
	return deleted
}

func (n *node) min() int64 {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

func (n *node) max() int64 {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1]
}

// borrowFromLeft rotates a key from child i−1 through the separator into
// child i.
func (n *node) borrowFromLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.keys = append(child.keys, 0)
	copy(child.keys[1:], child.keys)
	child.keys[0] = n.keys[i-1]
	n.keys[i-1] = left.keys[len(left.keys)-1]
	left.keys = left.keys[:len(left.keys)-1]
	moved := 1
	if !left.leaf() {
		c := left.children[len(left.children)-1]
		cc := left.counts[len(left.counts)-1]
		left.children = left.children[:len(left.children)-1]
		left.counts = left.counts[:len(left.counts)-1]
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = c
		child.counts = append(child.counts, 0)
		copy(child.counts[1:], child.counts)
		child.counts[0] = cc
		moved += cc
	}
	n.counts[i-1] -= moved
	n.counts[i] += moved
}

// borrowFromRight rotates a key from child i+1 through the separator into
// child i.
func (n *node) borrowFromRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	n.keys[i] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	moved := 1
	if !right.leaf() {
		c := right.children[0]
		cc := right.counts[0]
		right.children = append(right.children[:0], right.children[1:]...)
		right.counts = append(right.counts[:0], right.counts[1:]...)
		child.children = append(child.children, c)
		child.counts = append(child.counts, cc)
		moved += cc
	}
	n.counts[i+1] -= moved
	n.counts[i] += moved
}

// mergeChildren folds child i+1 and the separator key into child i.
func (n *node) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.keys = append(child.keys, n.keys[i])
	child.keys = append(child.keys, right.keys...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
		child.counts = append(child.counts, right.counts...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	merged := n.counts[i] + n.counts[i+1] + 1
	n.counts = append(n.counts[:i], n.counts[i+1:]...)
	n.counts[i] = merged
}

// Ascend calls fn on every key in increasing order until fn returns false.
func (t *Tree) Ascend(fn func(k int64) bool) {
	t.root.ascend(fn)
}

func (n *node) ascend(fn func(k int64) bool) bool {
	for i, k := range n.keys {
		if !n.leaf() && !n.children[i].ascend(fn) {
			return false
		}
		if !fn(k) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(fn)
	}
	return true
}

// AscendRange calls fn on every key in [lo, hi] in increasing order until fn
// returns false.
func (t *Tree) AscendRange(lo, hi int64, fn func(k int64) bool) {
	t.root.ascendRange(lo, hi, fn)
}

func (n *node) ascendRange(lo, hi int64, fn func(k int64) bool) bool {
	var probes int
	start, _ := n.search(lo, &probes)
	for i := start; i < len(n.keys); i++ {
		if !n.leaf() && !n.children[i].ascendRange(lo, hi, fn) {
			return false
		}
		if n.keys[i] > hi {
			return true
		}
		if !fn(n.keys[i]) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascendRange(lo, hi, fn)
	}
	return true
}

// clone deep-copies the subtree: fresh nodes, fresh key/count slices, same
// contents. Probe counts through the copy are identical to the original's
// because the structure is identical.
func (n *node) clone() *node {
	c := &node{keys: append([]int64(nil), n.keys...)}
	if !n.leaf() {
		c.children = make([]*node, len(n.children))
		for i, ch := range n.children {
			c.children[i] = ch.clone()
		}
		c.counts = append([]int(nil), n.counts...)
	}
	return c
}

// Clone returns an independent structural copy of the tree in O(n): same
// keys, same node layout, so every lookup answers with the same probe
// count. Mutating either tree afterwards leaves the other untouched.
func (t *Tree) Clone() *Tree {
	return &Tree{root: t.root.clone(), degree: t.degree, size: t.size}
}

// Bulk builds a tree from keys by repeated insertion.
func Bulk(degree int, ks []int64) (*Tree, error) {
	t, err := New(degree)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		t.Insert(k)
	}
	return t, nil
}

// checkInvariants walks the tree verifying ordering, occupancy, and count
// bookkeeping. Exposed to tests via export_test.go.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		return fmt.Errorf("btree: nil root")
	}
	n, err := t.root.check(t.degree, true, nil, nil)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, n)
	}
	return nil
}

func (n *node) check(d int, isRoot bool, lo, hi *int64) (int, error) {
	if !isRoot && len(n.keys) < d-1 {
		return 0, fmt.Errorf("btree: underfull node (%d keys, degree %d)", len(n.keys), d)
	}
	if len(n.keys) > 2*d-1 {
		return 0, fmt.Errorf("btree: overfull node (%d keys)", len(n.keys))
	}
	for i, k := range n.keys {
		if i > 0 && n.keys[i-1] >= k {
			return 0, fmt.Errorf("btree: unsorted keys in node")
		}
		if lo != nil && k <= *lo {
			return 0, fmt.Errorf("btree: key %d violates lower bound %d", k, *lo)
		}
		if hi != nil && k >= *hi {
			return 0, fmt.Errorf("btree: key %d violates upper bound %d", k, *hi)
		}
	}
	if n.leaf() {
		return len(n.keys), nil
	}
	if len(n.children) != len(n.keys)+1 || len(n.counts) != len(n.children) {
		return 0, fmt.Errorf("btree: fanout mismatch: %d keys, %d children, %d counts",
			len(n.keys), len(n.children), len(n.counts))
	}
	total := len(n.keys)
	for i, c := range n.children {
		var clo, chi *int64
		if i > 0 {
			clo = &n.keys[i-1]
		} else {
			clo = lo
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		} else {
			chi = hi
		}
		cnt, err := c.check(d, false, clo, chi)
		if err != nil {
			return 0, err
		}
		if cnt != n.counts[i] {
			return 0, fmt.Errorf("btree: count cache %d but subtree holds %d", n.counts[i], cnt)
		}
		total += cnt
	}
	return total, nil
}
