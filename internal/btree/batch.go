package btree

// Sorted-batch probe kernel (index.BatchReader, DESIGN.md §12). Get's cost
// decomposes per node: the in-node search is a no-early-exit lower-bound
// binary search, so its comparison count is a pure function of (node key
// count, landing index) — identical for every query key that lands on the
// same partition. Walking the tree once with the sorted batch, partitioning
// it at each node's keys (one gallop pass per node), charges each partition
// its constant per-key node cost and recurses only into children that
// actually receive queries. (probes, notFound) are bit-identical to the
// per-key reference; the tree is visited in key order, touching each node
// at most once.

import "cdfpoison/internal/index"

var _ index.BatchReader = (*Tree)(nil)

// searchProbes replays node.search's comparison count for a key whose
// lower-bound index in a node of m keys is i: the loop's outcome at mid is
// (mid < i → go right), so the count depends only on (m, i).
func searchProbes(m, i int) int {
	p := 0
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		p++
		if mid < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p
}

// batchGet descends with the sorted query slice q, all of whose keys fall
// strictly between this subtree's bounding node keys.
func batchGet(n *node, q []int64, probes *int64, notFound *int) {
	m := len(n.keys)
	c := 0
	for j := 0; j <= m; j++ {
		e := len(q)
		if j < m {
			e = index.GallopLower(q, n.keys[j], c)
		}
		if e > c {
			// q[c:e) lands between node keys j-1 and j: every key pays the
			// same in-node search cost, then descends (or misses at a leaf).
			*probes += int64(e-c) * int64(searchProbes(m, j))
			if n.leaf() {
				*notFound += e - c
			} else {
				batchGet(n.children[j], q[c:e], probes, notFound)
			}
		}
		c = e
		if j < m {
			// The run equal to keys[j] is found at this node.
			f := c
			for f < len(q) && q[f] == n.keys[j] {
				f++
			}
			if f > c {
				*probes += int64(f-c) * int64(searchProbes(m, j))
			}
			c = f
		}
	}
}

// ProbeSumSorted evaluates a sorted (non-decreasing) query batch,
// bit-identical to ProbeSum on the same batch. Snapshots are structural
// clones (*Tree), so they serve the same kernel.
func (t *Tree) ProbeSumSorted(sorted []int64) (probes int64, notFound int) {
	if len(sorted) == 0 {
		return 0, 0
	}
	batchGet(t.root, sorted, &probes, &notFound)
	return probes, notFound
}
