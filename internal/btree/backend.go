package btree

// The index.Backend face of the tree: the B-Tree is the model-free baseline
// every serving scenario can swap in where a learned backend runs, which is
// what makes "the learned index pays for adapting to the data; the B-Tree
// does not" a measurable statement rather than a slogan.

import (
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
)

var _ index.Backend = (*Tree)(nil)

// Lookup is the probe-counted point query in index.Backend form. A B-Tree
// has no model, so Window is 0 and InBuffer never fires.
func (t *Tree) Lookup(k int64) index.LookupResult {
	found, probes := t.Get(k)
	return index.LookupResult{Found: found, Probes: probes}
}

// Retrain is a no-op: the tree rebalances on every write and has no model
// to refit. It still satisfies the maintenance hook of index.Backend, so a
// manual-policy serving scenario can force "retrains" uniformly across
// backends.
func (t *Tree) Retrain() {}

// RetrainPossible is always false: the tree rebalances incrementally and
// never retrains on the write path (index.TriggerPredictor) — which is
// what spares a pipeline-wrapped B-Tree the O(n) clone a pre-insert
// snapshot would otherwise cost on every write.
func (t *Tree) RetrainPossible() bool { return false }

// Snapshot freezes the current content as an independent structural clone.
// A B-Tree restructures on every write, so — unlike the learned backends,
// whose bases are immutable and whose buffers are copy-on-write — nothing
// cheaper than an O(n) copy can be frozen; the probe counts through the
// clone are identical to the live tree's at capture time. Backends that
// retrain rarely (or never, like this one) pay this only when a snapshot
// is actually requested.
func (t *Tree) Snapshot() index.Snapshot { return t.Clone() }

// Keys materializes the stored keys as a sorted set, O(n). Insert rejects
// negative keys, so the content always satisfies the set's invariants.
func (t *Tree) Keys() keys.Set {
	out := make([]int64, 0, t.size)
	t.Ascend(func(k int64) bool {
		out = append(out, k)
		return true
	})
	return keys.FromSorted(out)
}

// Stats reports the model-free summary: only Keys is non-zero.
func (t *Tree) Stats() index.Stats {
	return index.Stats{Keys: t.size}
}

// ProbeSum runs a lookup for every query key and returns the exact total
// comparison count plus how many keys were not found — the same batch shape
// as dynamic.Index.ProbeSum, so the backend comparison sweep measures both
// structures through one code path. Integer sums are partition-invariant:
// callers may chunk queryKeys across workers and fold in any grouping.
func (t *Tree) ProbeSum(queryKeys []int64) (probes int64, notFound int) {
	for _, k := range queryKeys {
		found, p := t.Get(k)
		probes += int64(p)
		if !found {
			notFound++
		}
	}
	return probes, notFound
}
