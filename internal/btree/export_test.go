package btree

// CheckInvariants exposes the internal structural validator to tests.
func (t *Tree) CheckInvariants() error { return t.checkInvariants() }
