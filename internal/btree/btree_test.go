package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"cdfpoison/internal/xrand"
)

func mustTree(t *testing.T, degree int) *Tree {
	t.Helper()
	tr, err := New(degree)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsBadDegree(t *testing.T) {
	for _, d := range []int{-1, 0, 1} {
		if _, err := New(d); err == nil {
			t.Errorf("degree %d accepted", d)
		}
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := mustTree(t, 2)
	keys := []int64{5, 3, 8, 1, 4, 9, 7, 2, 6, 0}
	for i, k := range keys {
		if ok, retrained := tr.Insert(k); !ok || retrained {
			t.Fatalf("insert %d: accepted=%v retrained=%v", k, ok, retrained)
		}
		if tr.Len() != i+1 {
			t.Fatalf("len %d after %d inserts", tr.Len(), i+1)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", k, err)
		}
	}
	for _, k := range keys {
		if found, _ := tr.Get(k); !found {
			t.Errorf("key %d lost", k)
		}
	}
	if found, _ := tr.Get(42); found {
		t.Error("phantom key found")
	}
	if ok, _ := tr.Insert(5); ok {
		t.Error("duplicate insert succeeded")
	}
	if tr.Len() != 10 {
		t.Errorf("len %d after duplicate insert", tr.Len())
	}
}

func TestAscendSorted(t *testing.T) {
	tr := mustTree(t, 3)
	rng := xrand.New(1)
	want := xrand.SampleInt64s(rng, 500, 100000)
	for _, k := range want {
		tr.Insert(k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []int64
	tr.Ascend(func(k int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := mustTree(t, 2)
	for k := int64(0); k < 100; k++ {
		tr.Insert(k)
	}
	count := 0
	tr.Ascend(func(k int64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := mustTree(t, 2)
	for k := int64(0); k < 100; k += 2 { // evens 0..98
		tr.Insert(k)
	}
	var got []int64
	tr.AscendRange(10, 20, func(k int64) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range got %v, want %v", got, want)
		}
	}
	// Empty range.
	got = nil
	tr.AscendRange(11, 11, func(k int64) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestRank(t *testing.T) {
	tr := mustTree(t, 2)
	for k := int64(0); k < 200; k += 2 {
		tr.Insert(k)
	}
	for _, c := range []struct {
		k    int64
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {100, 50}, {199, 100}, {500, 100}} {
		if got := tr.Rank(c.k); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestDeleteSmall(t *testing.T) {
	tr := mustTree(t, 2)
	keys := []int64{5, 3, 8, 1, 4, 9, 7, 2, 6, 0}
	for _, k := range keys {
		tr.Insert(k)
	}
	order := []int64{5, 0, 9, 3, 7, 1, 8, 4, 2, 6}
	for i, k := range order {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", k, err)
		}
		if tr.Len() != len(keys)-i-1 {
			t.Fatalf("len %d after %d deletes", tr.Len(), i+1)
		}
		if found, _ := tr.Get(k); found {
			t.Fatalf("key %d still present after delete", k)
		}
	}
	if tr.Delete(5) {
		t.Error("delete from empty tree succeeded")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	// Mixed insert/delete/lookup workload validated against a map+slice
	// reference, with invariant checks along the way.
	for _, degree := range []int{2, 3, 8, 32} {
		tr := mustTree(t, degree)
		ref := map[int64]bool{}
		rng := xrand.New(uint64(degree) * 97)
		for op := 0; op < 5000; op++ {
			k := rng.Int63n(800)
			switch rng.Intn(3) {
			case 0:
				got, _ := tr.Insert(k)
				want := !ref[k]
				if got != want {
					t.Fatalf("degree %d op %d: Insert(%d) = %v, want %v", degree, op, k, got, want)
				}
				ref[k] = true
			case 1:
				got := tr.Delete(k)
				if got != ref[k] {
					t.Fatalf("degree %d op %d: Delete(%d) = %v, want %v", degree, op, k, got, ref[k])
				}
				delete(ref, k)
			default:
				got, _ := tr.Get(k)
				if got != ref[k] {
					t.Fatalf("degree %d op %d: Get(%d) = %v, want %v", degree, op, k, got, ref[k])
				}
			}
			if tr.Len() != len(ref) {
				t.Fatalf("degree %d op %d: len %d, want %d", degree, op, tr.Len(), len(ref))
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("degree %d final invariants: %v", degree, err)
		}
		// Rank cross-check on the final state.
		var sorted []int64
		for k := range ref {
			sorted = append(sorted, k)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, k := range sorted {
			if got := tr.Rank(k); got != i {
				t.Fatalf("degree %d: Rank(%d) = %d, want %d", degree, k, got, i)
			}
		}
	}
}

func TestQuickInsertAll(t *testing.T) {
	f := func(raw []int64) bool {
		tr, err := New(4)
		if err != nil {
			return false
		}
		ref := map[int64]bool{}
		for _, k := range raw {
			if k < 0 {
				// Outside the [0, m) key universe: must be rejected.
				if ok, _ := tr.Insert(k); ok {
					return false
				}
				continue
			}
			tr.Insert(k)
			ref[k] = true
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if found, _ := tr.Get(k); !found {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := mustTree(t, 32)
	rng := xrand.New(3)
	for _, k := range xrand.SampleInt64s(rng, 100000, 1<<40) {
		tr.Insert(k)
	}
	if h := tr.Height(); h > 4 {
		t.Errorf("height %d too large for degree-32 tree with 1e5 keys", h)
	}
}

func TestGetProbesBounded(t *testing.T) {
	tr := mustTree(t, 32)
	rng := xrand.New(4)
	ks := xrand.SampleInt64s(rng, 50000, 1<<40)
	for _, k := range ks {
		tr.Insert(k)
	}
	worst := 0
	for _, k := range ks[:1000] {
		found, probes := tr.Get(k)
		if !found {
			t.Fatalf("key %d lost", k)
		}
		if probes > worst {
			worst = probes
		}
	}
	// Each level costs ~log2(2*32) ≈ 6 comparisons; 4 levels ≈ 24.
	if worst > 30 {
		t.Errorf("worst-case probes %d implausibly high", worst)
	}
}

func TestBulk(t *testing.T) {
	ks := []int64{9, 1, 5, 3}
	tr, err := Bulk(2, ks)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 || !tr.Contains(3) {
		t.Fatal("bulk build wrong")
	}
	if _, err := Bulk(1, ks); err == nil {
		t.Fatal("bad degree accepted")
	}
}

func TestEmptyTreeOps(t *testing.T) {
	tr := mustTree(t, 2)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Error("empty tree shape wrong")
	}
	if found, _ := tr.Get(1); found {
		t.Error("empty tree found a key")
	}
	if tr.Rank(10) != 0 {
		t.Error("empty tree rank wrong")
	}
	tr.Ascend(func(int64) bool { t.Error("empty tree iterated"); return false })
}
