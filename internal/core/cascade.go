package core

// The split-cascade attack: the structural complexity attack against the
// ALEX-family gapped-array backend (internal/alex). Where ChurnAttack
// maximizes rebuild frequency × staleness on the retrain pipeline,
// CascadeAttack's adversary maximizes the index's STRUCTURAL maintenance
// cost — slot writes from shifts, leaf splits, and fanout-overflow rebuild
// cascades — by drip-feeding keys into the densest gapped leaf, where each
// insert shifts the longest occupied runs and pushes occupancy toward the
// split threshold ("Poisoning Learned Index Structures: Static and Dynamic
// Adversarial Attacks on ALEX", PAPERS.md; design in DESIGN.md §9).

import (
	"fmt"
	"sort"

	"cdfpoison/internal/alex"
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/workload"
)

// CascadeOptions parameterizes the split-cascade scenario.
type CascadeOptions struct {
	// Epochs is the number of serving epochs (>= 1).
	Epochs int
	// OpsPerEpoch is the honest operation count per epoch, drawn from
	// Workload (>= 0).
	OpsPerEpoch int
	// EpochBudget is the attacker's poison-key budget per epoch (>= 0),
	// drip-fed evenly through the epoch's honest traffic.
	EpochBudget int
	// LeafTarget is the victim's bulk-load leaf size (0 selects
	// alex.DefaultLeafTarget). Smaller leaves mean a tighter fanout limit —
	// cascades within reach of a smaller budget.
	LeafTarget int
	// Workload is the honest traffic mix.
	Workload workload.Spec
	// Domain is the write-key universe size; 0 defaults to twice the
	// initial key span.
	Domain int64
	// Seed drives the workload stream.
	Seed uint64
	// Defense arms the defense plane on victim and clean twin alike; the
	// zero value changes nothing (see DefenseSpec). The cascade-native
	// mechanisms are BalancedSplit (splits land in the widest key-space gap,
	// so the attacker's dense corner stops concentrating occupancy), the
	// gap-outlier detector (poison keys sit at gap edges by construction),
	// and rate limiting (the drip needs sustained write pressure). The
	// Fitter field is ignored — the gapped-array backend has no pluggable
	// CDF fit.
	Defense DefenseSpec
}

func (o CascadeOptions) domain(initial keys.Set) int64 {
	if o.Domain > 0 {
		return o.Domain
	}
	return 2 * (initial.Max() + 1)
}

func (o CascadeOptions) validate() error {
	if o.Epochs < 1 {
		return fmt.Errorf("core: cascade scenario needs Epochs >= 1, got %d", o.Epochs)
	}
	if o.OpsPerEpoch < 0 {
		return fmt.Errorf("core: negative ops per epoch %d", o.OpsPerEpoch)
	}
	if o.EpochBudget < 0 {
		return fmt.Errorf("core: negative per-epoch budget %d", o.EpochBudget)
	}
	if o.LeafTarget < 0 {
		return fmt.Errorf("core: negative leaf target %d", o.LeafTarget)
	}
	return o.Workload.Validate()
}

// CascadeEpochReport is the scenario state measured at the end of one
// epoch. Structural columns (shift writes, splits, cascades, rebuilt keys)
// are CUMULATIVE; DamageScore is this epoch's delta, composed as the
// attacker's objective: shift cost × split depth × triggered rebuilds.
type CascadeEpochReport struct {
	Epoch int // 1-based
	// Reads/Writes count this epoch's honest operations; Injected is this
	// epoch's accepted poison; TargetNode/TargetDensity describe the leaf
	// the attacker chose.
	Reads, Writes int
	Injected      int
	TargetNode    int
	TargetDensity float64
	PoisonTotal   int // cumulative accepted poison
	// Structural accounting, cumulative, victim vs clean counterfactual.
	ShiftWrites, CleanShiftWrites int64
	Splits, CleanSplits           int
	Cascades, CleanCascades       int
	Nodes, CleanNodes             int
	Retrains, CleanRetrains       int
	// StructCost is the total slot-write cost of structural maintenance
	// (shift writes + keys rehomed by splits and cascades); StructRatio is
	// victim/clean — the headline "price of tailoring" number, which grows
	// super-linearly in the budget when cascades land.
	StructCost, CleanStructCost int64
	StructRatio                 float64
	// DamageScore is this epoch's structural damage: shift-write delta ×
	// (1 + split delta) × (1 + retrain delta).
	DamageScore float64
	// Probe cost of this epoch's inline reads on both indexes.
	CleanProbeTotal, PoisonedProbeTotal int64
	CleanProbes, PoisonedProbes         float64
	ProbeRatio                          float64
	// Live model-vs-content loss and the victim/clean ratio: structural
	// drift (keys shifted off their predicted slots) shows up here.
	CleanLoss, PoisonedLoss float64
	RatioLoss               float64
}

// CascadeResult reports the full split-cascade scenario.
type CascadeResult struct {
	Epochs []CascadeEpochReport
	Poison keys.Set // union of all accepted poison keys
	// VictimStruct / CleanStruct are the final structural accountings.
	VictimStruct, CleanStruct alex.StructStats
	// Defense is the defense-plane accounting (zero when no defense armed).
	Defense DefenseReport
}

// FinalStructRatio returns the last epoch's victim/clean structural-cost
// ratio.
func (r CascadeResult) FinalStructRatio() float64 {
	if len(r.Epochs) == 0 {
		return 1
	}
	return r.Epochs[len(r.Epochs)-1].StructRatio
}

// MaxProbeRatio returns the worst per-epoch victim/clean probe ratio.
func (r CascadeResult) MaxProbeRatio() float64 {
	best := 0.0
	for _, e := range r.Epochs {
		if e.ProbeRatio > best {
			best = e.ProbeRatio
		}
	}
	return best
}

// TotalDamage sums the per-epoch damage scores.
func (r CascadeResult) TotalDamage() float64 {
	total := 0.0
	for _, e := range r.Epochs {
		total += e.DamageScore
	}
	return total
}

// cascadeCandidate is one craftable poison key: an absent integer key
// interior to a leaf's stored range, so the router is guaranteed to deliver
// it to that leaf.
type cascadeCandidate struct {
	node int
	key  int64
}

// cascadePlan is the per-epoch oracle. The attacker ranks leaves by
// occupancy density (the densest leaf is where shifts are longest and the
// split threshold nearest), harvests candidate keys from the key-space gaps
// of the densest leaves, prices each candidate with the victim's pure
// insert-cost oracle — slot writes the current layout would pay — and keeps
// the budget's worth of most expensive keys. Scoring fans over the worker
// pool; candidate order, scores, and the final sort are all deterministic,
// so any worker count picks identical poison (TestCascadeWorkerEquivalence).
func cascadePlan(v *alex.Index, budget int, ex exec) ([]int64, int, float64, error) {
	type rank struct {
		i       int
		density float64
	}
	ranks := make([]rank, v.NumNodes())
	for i := range ranks {
		ranks[i] = rank{i: i, density: v.NodeInfo(i).Density()}
	}
	sort.SliceStable(ranks, func(a, b int) bool { return ranks[a].density > ranks[b].density })
	target, targetDensity := ranks[0].i, ranks[0].density

	var cands []cascadeCandidate
	for _, r := range ranks {
		ks := v.NodeKeys(r.i)
		for j := 1; j < len(ks); j++ {
			a, b := ks[j-1], ks[j]
			if b-a >= 2 {
				cands = append(cands, cascadeCandidate{node: r.i, key: a + 1})
			}
			if b-a >= 3 {
				cands = append(cands, cascadeCandidate{node: r.i, key: b - 1})
			}
		}
		if len(cands) >= 4*budget {
			break
		}
	}
	if len(cands) == 0 {
		return nil, target, targetDensity, nil
	}
	costs, err := engine.Map(ex.ctx, ex.pool, len(cands), func(i int) (int64, error) {
		return int64(v.InsertCost(cands[i].node, cands[i].key)), nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if costs[ca] != costs[cb] {
			return costs[ca] > costs[cb]
		}
		return cands[ca].key < cands[cb].key
	})
	if len(order) > budget {
		order = order[:budget]
	}
	poison := make([]int64, len(order))
	for i, idx := range order {
		poison[i] = cands[idx].key
	}
	return poison, target, targetDensity, nil
}

// CascadeAttack mounts the split-cascade scenario: an adversary with a
// per-epoch key budget drip-feeds crafted keys into the gapped-array
// index's densest leaf while an honest population reads and writes it. The
// clean counterfactual runs the identical operation stream without poison,
// so every shift write, split, and cascade beyond the counterfactual's is
// attacker-caused.
//
// Each epoch:
//
//  1. The attacker inspects the victim's live leaf table, targets the
//     densest leaf, and prices candidate keys with the insert-cost oracle
//     (cascadePlan) — the most expensive B keys become the epoch's poison.
//  2. The epoch's honest operations stream through both indexes; reads are
//     probe-counted inline on both. The poison budget is drip-fed evenly
//     through the honest stream, exactly as in ChurnAttack.
//  3. Maintenance is the structure's own: leaves split as occupancy
//     crosses the threshold, and the root rebuilds when splitting
//     overflows its fanout — the cascade the attacker is farming. No
//     explicit retrain is issued.
//  4. The epoch report captures cumulative structural accounting for both
//     indexes, the victim/clean structural-cost and probe ratios, and the
//     epoch's damage score.
//
// Determinism contract: WithWorkers parallelism reaches only the oracle's
// candidate pricing, which folds in task-index order — any worker count
// produces byte-identical results (TestCascadeWorkerEquivalence).
// WithCancellation aborts between epochs and inside the oracle.
func CascadeAttack(initial keys.Set, opts CascadeOptions, execOpts ...Option) (CascadeResult, error) {
	if err := opts.validate(); err != nil {
		return CascadeResult{}, err
	}
	build := alex.New
	if opts.Defense.BalancedSplit {
		build = alex.NewBalanced
	}
	victim, err := build(initial, opts.LeafTarget)
	if err != nil {
		return CascadeResult{}, err
	}
	clean, err := build(initial, opts.LeafTarget)
	if err != nil {
		return CascadeResult{}, err
	}
	gen, err := workload.NewGenerator(opts.Workload, initial, opts.domain(initial), opts.Seed)
	if err != nil {
		return CascadeResult{}, err
	}
	gen.SetSources(opts.Defense.Sources)
	ex := newExec(execOpts)

	res := CascadeResult{Epochs: make([]CascadeEpochReport, 0, opts.Epochs)}
	// The guard wraps only the WRITE path: the oracle and the structural
	// accounting keep reading the concrete gapped-array index.
	res.Defense.Enabled = opts.Defense.Enabled()
	vWriter, vGuard := opts.Defense.wrap(victim)
	cWriter, cGuard := opts.Defense.wrap(clean)
	vArm := opts.Defense.newArm(vWriter, vGuard, &res.Defense, false)
	cArm := opts.Defense.newArm(cWriter, cGuard, &res.Defense, true)
	atkSrc := opts.Defense.attackerSource()
	opClock := 0
	var allPoison []int64
	for e := 0; e < opts.Epochs; e++ {
		if err := ex.ctx.Err(); err != nil {
			return CascadeResult{}, err
		}
		rep := CascadeEpochReport{Epoch: e + 1}
		preV, preC := victim.Struct(), clean.Struct()
		preRetrains := victim.Stats().Retrains

		// 1. Plan: densest leaf, priced candidates, top-budget poison.
		var poison []int64
		if opts.EpochBudget > 0 {
			poison, rep.TargetNode, rep.TargetDensity, err = cascadePlan(victim, opts.EpochBudget, ex)
			if err != nil {
				return CascadeResult{}, fmt.Errorf("core: cascade epoch %d oracle: %w", e+1, err)
			}
		}

		// 2. Serve: honest ops with the poison drip interleaved.
		inject := func() {
			opClock++
			if ok, _ := vArm.insert(poison[0], atkSrc, opClock, true); ok {
				allPoison = append(allPoison, poison[0])
				rep.Injected++
			}
			poison = poison[1:]
		}
		for op := 0; op < opts.OpsPerEpoch; op++ {
			for len(poison) > 0 && rep.Injected*opts.OpsPerEpoch <= op*opts.EpochBudget {
				inject()
			}
			opClock++
			o := gen.Next()
			if o.Read {
				rep.Reads++
				rep.PoisonedProbeTotal += int64(victim.Lookup(o.Key).Probes)
				rep.CleanProbeTotal += int64(clean.Lookup(o.Key).Probes)
				continue
			}
			rep.Writes++
			cArm.insert(o.Key, o.Source, opClock, false)
			vArm.insert(o.Key, o.Source, opClock, false)
		}
		for len(poison) > 0 { // leftover drip (OpsPerEpoch == 0 or rounding)
			inject()
		}

		// 3. Maintenance is structural and already happened inline.
		// 4. Measurement.
		rep.PoisonTotal = len(allPoison)
		sv, sc := victim.Struct(), clean.Struct()
		rep.ShiftWrites, rep.CleanShiftWrites = sv.ShiftWrites, sc.ShiftWrites
		rep.Splits, rep.CleanSplits = sv.Splits, sc.Splits
		rep.Cascades, rep.CleanCascades = sv.Cascades, sc.Cascades
		rep.Nodes, rep.CleanNodes = sv.Nodes, sc.Nodes
		rep.StructCost, rep.CleanStructCost = sv.Cost(), sc.Cost()
		rep.StructRatio = SafeRatio(float64(rep.StructCost), float64(rep.CleanStructCost))
		vStats, cStats := victim.Stats(), clean.Stats()
		rep.Retrains, rep.CleanRetrains = vStats.Retrains, cStats.Retrains
		rep.DamageScore = float64(sv.ShiftWrites-preV.ShiftWrites) *
			float64(1+sv.Splits-preV.Splits) *
			float64(1+vStats.Retrains-preRetrains)
		_ = preC
		rep.CleanLoss = cStats.ContentLoss
		rep.PoisonedLoss = vStats.ContentLoss
		rep.RatioLoss = SafeRatio(rep.PoisonedLoss, rep.CleanLoss)
		if rep.Reads > 0 {
			rep.CleanProbes = float64(rep.CleanProbeTotal) / float64(rep.Reads)
			rep.PoisonedProbes = float64(rep.PoisonedProbeTotal) / float64(rep.Reads)
			rep.ProbeRatio = SafeRatio(rep.PoisonedProbes, rep.CleanProbes)
		}
		res.Epochs = append(res.Epochs, rep)
	}
	res.VictimStruct = victim.Struct()
	res.CleanStruct = clean.Struct()
	ps, err := keys.NewStrict(allPoison)
	if err != nil {
		return CascadeResult{}, fmt.Errorf("core: cascade poison keys collide: %w", err)
	}
	res.Poison = ps
	return res, nil
}
