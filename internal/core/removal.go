package core

import (
	"fmt"

	"cdfpoison/internal/keys"
)

// This file implements the deletion adversary the paper lists as future
// work (Section VI: "adversaries that are capable of removing and
// modif[ying] keys"). Removing a key k decrements the rank of every larger
// key — the mirror image of the insertion attack's compound effect — so the
// same prefix-moment machinery yields an O(n) optimal single-removal attack
// and a greedy multi-removal attack.

// RemovalResult describes a single-key removal attack.
type RemovalResult struct {
	Key          int64   // the key whose removal maximizes the loss
	CleanLoss    float64 // MSE before the removal
	PoisonedLoss float64 // MSE after removing Key and re-ranking
	Candidates   int
}

// RatioLoss returns PoisonedLoss/CleanLoss.
func (r RemovalResult) RatioLoss() float64 { return SafeRatio(r.PoisonedLoss, r.CleanLoss) }

// OptimalSingleRemoval finds the stored key whose deletion maximizes the
// MSE of the re-trained regression, in O(n).
//
// Derivation: with centered keys x_i and ranks i+1, removing position j
// leaves n−1 points whose rank multiset is again exactly {1, …, n−1};
// the moments of the survivor set are
//
//	ΣX    = S_x − x_j
//	ΣX²   = S_xx − x_j²
//	ΣXR   = S_xr − x_j·(j+1) − Suf_x(j+1)
//
// (keys above j lose one unit of rank, subtracting their key sum), all
// O(1) from the same prefix/suffix state the insertion attack uses.
func OptimalSingleRemoval(ks keys.Set) (RemovalResult, error) {
	n := ks.Len()
	if n < 3 {
		// Removing from a 2-key set leaves a degenerate regression.
		return RemovalResult{}, ErrTooFew
	}
	origin := ks.Min()
	x := make([]float64, n)
	var sx, sxx, sxr float64
	for i := 0; i < n; i++ {
		x[i] = float64(ks.At(i) - origin)
		sx += x[i]
		sxx += x[i] * x[i]
		sxr += x[i] * float64(i+1)
	}
	suf := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + x[i]
	}
	cleanLoss := lossFromMoments(sx, sxx, sxr, n)

	res := RemovalResult{CleanLoss: cleanLoss, PoisonedLoss: -1}
	for j := 0; j < n; j++ {
		nsx := sx - x[j]
		nsxx := sxx - x[j]*x[j]
		nsxr := sxr - x[j]*float64(j+1) - suf[j+1]
		l := lossFromMoments(nsx, nsxx, nsxr, n-1)
		res.Candidates++
		if l > res.PoisonedLoss {
			res.PoisonedLoss = l
			res.Key = ks.At(j)
		}
	}
	return res, nil
}

// lossFromMoments evaluates the optimal-regression MSE from raw sums over
// points (x_i, rank i+1), i = 0..n−1.
func lossFromMoments(sx, sxx, sxr float64, n int) float64 {
	nf := float64(n)
	mx := sx / nf
	mxx := sxx / nf
	mxr := sxr / nf
	mr := (nf + 1) / 2
	varX := mxx - mx*mx
	varR := (nf*nf - 1) / 12
	if varX <= 0 {
		return varR
	}
	cov := mxr - mx*mr
	loss := varR - cov*cov/varX
	if loss < 0 {
		return 0
	}
	return loss
}

// GreedyRemovalResult describes a multi-key removal attack.
type GreedyRemovalResult struct {
	Removed    []int64  // removed keys in deletion order
	Remaining  keys.Set // K \ R
	CleanLoss  float64
	Trajectory []float64 // MSE after each removal
	Stopped    bool      // ended early: no removal could increase the loss
}

// FinalLoss returns the MSE after the last removal.
func (g GreedyRemovalResult) FinalLoss() float64 {
	if len(g.Trajectory) == 0 {
		return g.CleanLoss
	}
	return g.Trajectory[len(g.Trajectory)-1]
}

// RatioLoss returns FinalLoss/CleanLoss.
func (g GreedyRemovalResult) RatioLoss() float64 { return SafeRatio(g.FinalLoss(), g.CleanLoss) }

// GreedyRemoval deletes up to p keys, each chosen by OptimalSingleRemoval
// against the surviving set, stopping early when no deletion helps.
// It mirrors Algorithm 1 for the deletion adversary.
func GreedyRemoval(ks keys.Set, p int) (GreedyRemovalResult, error) {
	if p < 0 {
		return GreedyRemovalResult{}, fmt.Errorf("core: negative removal budget %d", p)
	}
	if ks.Len() < 3 {
		return GreedyRemovalResult{}, ErrTooFew
	}
	res := GreedyRemovalResult{Remaining: ks}
	clean, err := OptimalSingleRemoval(ks)
	if err != nil {
		return GreedyRemovalResult{}, err
	}
	res.CleanLoss = clean.CleanLoss
	current := res.CleanLoss
	for j := 0; j < p; j++ {
		if res.Remaining.Len() < 3 {
			res.Stopped = true
			break
		}
		step, err := OptimalSingleRemoval(res.Remaining)
		if err != nil {
			return GreedyRemovalResult{}, err
		}
		if step.PoisonedLoss < current {
			res.Stopped = true
			break
		}
		current = step.PoisonedLoss
		next, ok := res.Remaining.Remove(step.Key)
		if !ok {
			return GreedyRemovalResult{}, fmt.Errorf("core: removal bookkeeping: chosen key %d absent", step.Key)
		}
		res.Remaining = next
		res.Removed = append(res.Removed, step.Key)
		res.Trajectory = append(res.Trajectory, step.PoisonedLoss)
	}
	return res, nil
}
