package core

import (
	"fmt"

	"cdfpoison/internal/keys"
)

// The modification adversary — the third capability the paper's future-work
// list names ("adversaries that are capable of removing and modify[ing]
// keys", Section VI). A modification is modeled as one deletion plus one
// insertion, keeping the key count constant: the attacker controls records
// it contributed earlier and rewrites their keys before the index retrains.

// ModificationStep records one applied modification.
type ModificationStep struct {
	Removed  int64
	Inserted int64
	Loss     float64 // MSE after this modification
}

// ModificationResult describes a greedy multi-modification attack.
type ModificationResult struct {
	Steps     []ModificationStep
	Modified  keys.Set // the key set after all modifications
	CleanLoss float64
	Stopped   bool // ended early: no modification could increase the loss
}

// FinalLoss returns the MSE after the last applied modification.
func (m ModificationResult) FinalLoss() float64 {
	if len(m.Steps) == 0 {
		return m.CleanLoss
	}
	return m.Steps[len(m.Steps)-1].Loss
}

// RatioLoss returns FinalLoss/CleanLoss.
func (m ModificationResult) RatioLoss() float64 { return SafeRatio(m.FinalLoss(), m.CleanLoss) }

// GreedyModification applies up to p key modifications, each chosen
// greedily: first the optimal single removal against the current set, then
// the optimal single insertion against the survivor set (each O(n), so a
// step costs O(n) like the base attacks — the survivor set itself is built
// by keys.Set.Remove in one copy, not a re-sort). The pair is applied only if the
// resulting loss exceeds the current loss, so the trajectory is
// non-decreasing and the ratio is >= 1.
//
// The pairwise-greedy choice is a heuristic — the jointly optimal
// (removal, insertion) pair would cost O(n²) per step — mirroring the
// paper's greedy treatment of the multi-point problem.
func GreedyModification(ks keys.Set, p int) (ModificationResult, error) {
	if p < 0 {
		return ModificationResult{}, fmt.Errorf("core: negative modification budget %d", p)
	}
	if ks.Len() < 3 {
		return ModificationResult{}, ErrTooFew
	}
	res := ModificationResult{Modified: ks}
	first, err := OptimalSingleRemoval(ks)
	if err != nil {
		return ModificationResult{}, err
	}
	res.CleanLoss = first.CleanLoss
	current := res.CleanLoss

	for j := 0; j < p; j++ {
		if res.Modified.Len() < 3 {
			res.Stopped = true
			break
		}
		rem, err := OptimalSingleRemoval(res.Modified)
		if err != nil {
			return ModificationResult{}, err
		}
		survivors, ok := res.Modified.Remove(rem.Key)
		if !ok {
			return ModificationResult{}, fmt.Errorf("core: modification bookkeeping: chosen key %d absent", rem.Key)
		}
		ins, err := OptimalSinglePoint(survivors)
		if err != nil {
			// Saturated survivor set: fall back to pure removal only if it
			// still helps; otherwise stop.
			if rem.PoisonedLoss >= current {
				res.Modified = survivors
				res.Steps = append(res.Steps, ModificationStep{
					Removed: rem.Key, Inserted: -1, Loss: rem.PoisonedLoss,
				})
				current = rem.PoisonedLoss
				continue
			}
			res.Stopped = true
			break
		}
		if ins.PoisonedLoss < current {
			res.Stopped = true
			break
		}
		next, ok := survivors.Insert(ins.Key)
		if !ok {
			return ModificationResult{}, fmt.Errorf("core: modification bookkeeping: key %d occupied", ins.Key)
		}
		res.Modified = next
		res.Steps = append(res.Steps, ModificationStep{
			Removed: rem.Key, Inserted: ins.Key, Loss: ins.PoisonedLoss,
		})
		current = ins.PoisonedLoss
	}
	return res, nil
}
