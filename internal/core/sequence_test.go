package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cdfpoison/internal/xrand"
)

func TestLossSequenceCoversFreeSlots(t *testing.T) {
	ks := mustSet(t, []int64{2, 6, 7, 12})
	seq, clean, err := LossSequence(ks)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(seq)) != ks.FreeSlots() {
		t.Fatalf("sequence length %d != free slots %d", len(seq), ks.FreeSlots())
	}
	if clean <= 0 {
		t.Fatalf("clean loss %v", clean)
	}
	// Keys strictly increasing, all absent from the set.
	for i, p := range seq {
		if ks.Contains(p.Key) {
			t.Fatalf("sequence contains stored key %d", p.Key)
		}
		if i > 0 && seq[i-1].Key >= p.Key {
			t.Fatalf("sequence not increasing at %d", i)
		}
	}
}

func TestLossSequenceMaxEqualsOptimal(t *testing.T) {
	rng := xrand.New(10)
	for trial := 0; trial < 50; trial++ {
		ks := randomSet(rng, 3, 40, 250)
		seq, _, err := LossSequence(ks)
		if errors.Is(err, ErrNoGap) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		best := seq[0]
		for _, p := range seq {
			if p.Loss > best.Loss {
				best = p
			}
		}
		opt, err := OptimalSinglePoint(ks)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(best.Loss-opt.PoisonedLoss) > 1e-9*(1+best.Loss) {
			t.Fatalf("sequence max %v != optimal %v", best.Loss, opt.PoisonedLoss)
		}
	}
}

func TestLossSequenceErrors(t *testing.T) {
	if _, _, err := LossSequence(mustSet(t, []int64{7})); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
	if _, _, err := LossSequence(mustSet(t, []int64{7, 8, 9})); !errors.Is(err, ErrNoGap) {
		t.Fatalf("want ErrNoGap, got %v", err)
	}
}

func TestDiscreteDerivative(t *testing.T) {
	seq := []LossPoint{{Key: 1, Loss: 10}, {Key: 2, Loss: 12}, {Key: 5, Loss: 11}}
	d := DiscreteDerivative(seq)
	if len(d) != 2 {
		t.Fatalf("derivative length %d", len(d))
	}
	if d[0].Key != 1 || d[0].Loss != 2 {
		t.Errorf("d[0] = %+v", d[0])
	}
	if d[1].Key != 2 || d[1].Loss != -1 {
		t.Errorf("d[1] = %+v", d[1])
	}
	if DiscreteDerivative(seq[:1]) != nil {
		t.Error("derivative of singleton should be nil")
	}
}

func TestDerivativeSumsTelescope(t *testing.T) {
	rng := xrand.New(11)
	ks := randomSet(rng, 5, 30, 200)
	seq, _, err := LossSequence(ks)
	if errors.Is(err, ErrNoGap) {
		t.Skip("saturated")
	}
	if err != nil {
		t.Fatal(err)
	}
	d := DiscreteDerivative(seq)
	sum := 0.0
	for _, p := range d {
		sum += p.Loss
	}
	want := seq[len(seq)-1].Loss - seq[0].Loss
	if math.Abs(sum-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("telescoped sum %v != %v", sum, want)
	}
}

// TestGapConvexityTheorem2 verifies the corollary of Theorem 2 on random
// instances: within every gap, the loss maximum sits at an endpoint.
func TestGapConvexityTheorem2(t *testing.T) {
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		ks := randomSet(rng, 4, 40, 400)
		reports, err := CheckGapConvexity(ks)
		if err != nil {
			return errors.Is(err, ErrNoGap) || errors.Is(err, ErrTooFew)
		}
		for _, r := range reports {
			// Allow only floating-point noise above the endpoint max.
			if r.Excess > 1e-9*(1+r.EndpointMax) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGapConvexitySecondDifference(t *testing.T) {
	// Stronger check on one instance: within each gap the second difference
	// of the loss sequence is non-negative (discrete convexity).
	rng := xrand.New(12)
	ks := randomSet(rng, 10, 20, 500)
	seq, _, err := LossSequence(ks)
	if errors.Is(err, ErrNoGap) {
		t.Skip("saturated")
	}
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int64]float64{}
	for _, p := range seq {
		byKey[p.Key] = p.Loss
	}
	for _, g := range ks.Gaps() {
		for k := g.Lo; k+2 <= g.Hi; k++ {
			second := byKey[k+2] - 2*byKey[k+1] + byKey[k]
			if second < -1e-7*(1+math.Abs(byKey[k])) {
				t.Fatalf("second difference %v < 0 at key %d in gap %v", second, k, g)
			}
		}
	}
}

func TestCheckGapConvexitySkipsNarrowGaps(t *testing.T) {
	// Gaps of width < 3 have no interior candidate and produce no report.
	ks := mustSet(t, []int64{1, 3, 5, 7})
	reports, err := CheckGapConvexity(ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("got %d reports for width-1 gaps", len(reports))
	}
}
