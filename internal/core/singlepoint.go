// Package core implements the paper's primary contribution: poisoning
// attacks against linear regression models trained on CDFs, and their
// extension to the two-stage recursive model index (RMI).
//
// Contents:
//
//   - OptimalSinglePoint — Section IV-C: the O(n) optimal single-key attack,
//     exploiting the convexity of the loss sequence on each gap (Theorem 2)
//     to test only gap endpoints, each in O(1).
//   - BruteForceSinglePoint — the paper's "first attempt" oracle, used to
//     validate optimality and as the ablation baseline.
//   - GreedyMultiPoint — Algorithm 1: repeated locally-optimal insertion.
//   - LossSequence / DiscreteDerivative — the Figure 3 instrumentation.
//   - RMIAttack — Algorithm 2: greedy volume allocation across second-stage
//     models with per-model thresholds (in rmiattack.go).
package core

import (
	"errors"
	"fmt"
	"math"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// ErrNoGap is returned when the key set has no unoccupied interior key, so
// no in-range poisoning key exists (the paper's feasibility constraint).
var ErrNoGap = errors.New("core: key set is saturated; no in-range poisoning key exists")

// ErrTooFew is returned when the key set is too small to attack (< 2 keys).
var ErrTooFew = errors.New("core: need at least two keys to poison a regression")

// SinglePointResult describes the outcome of a single-key attack.
type SinglePointResult struct {
	Key          int64   // the chosen poisoning key
	Rank         int     // 1-based rank the key takes upon insertion
	CleanLoss    float64 // MSE of the optimal regression before poisoning
	PoisonedLoss float64 // MSE of the optimal regression after poisoning
	Candidates   int     // number of candidate locations evaluated
	// Pruned-scan accounting (DESIGN.md §11): of BlocksTotal fixed-size gap
	// blocks, BlocksVisited had their endpoints evaluated; the rest were
	// excluded by closed-form loss bounds. Both stay zero when the full scan
	// ran (small sets, WithFullScan, BruteForceSinglePoint). The visited set
	// is deterministic — identical for every worker count.
	BlocksVisited int
	BlocksTotal   int
}

// RatioLoss returns PoisonedLoss/CleanLoss, the paper's evaluation metric.
// A zero clean loss with positive poisoned loss yields +Inf.
func (r SinglePointResult) RatioLoss() float64 { return SafeRatio(r.PoisonedLoss, r.CleanLoss) }

// SafeRatio returns poisoned/clean with the convention 0/0 = 1, x/0 = +Inf.
// (A clean loss of exactly zero happens only on perfectly linear CDFs, e.g.
// runs of consecutive integers.)
func SafeRatio(poisoned, clean float64) float64 {
	if clean == 0 {
		if poisoned == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return poisoned / clean
}

// OptimalSinglePoint finds the in-range poisoning key that maximizes the MSE
// of the re-trained regression.
//
// By Theorem 2 the loss sequence restricted to one gap (a maximal run of
// unoccupied keys) is convex, so its maximum over the gap is attained at one
// of the two endpoints; at most 2(n−1) candidates exist, each evaluated in
// O(1) via regression.Prefix. On large sets the pruned scan (pruned.go)
// excludes most gap blocks via closed-form loss bounds before any endpoint
// is touched, for the same — bit-identical — answer sublinearly in practice;
// WithFullScan forces the exhaustive O(n) endpoint sweep.
//
// Ties are broken toward the smaller key so results are deterministic, for
// any worker count (see WithWorkers).
func OptimalSinglePoint(ks keys.Set, opts ...Option) (SinglePointResult, error) {
	if ks.Len() < 2 {
		return SinglePointResult{}, ErrTooFew
	}
	pre, err := regression.NewPrefix(ks)
	if err != nil {
		return SinglePointResult{}, err
	}
	return newPrunedScan(pre).run(newExec(opts))
}

// candidateBest is one chunk's locally-best candidate. Reducing these in
// chunk order with a strict ">" comparison reproduces exactly the "first
// maximum in scan order" the sequential loop picks, because chunks cover
// contiguous, increasing index ranges.
type candidateBest struct {
	key        int64
	rank       int
	loss       float64
	candidates int
}

// foldBest reduces per-chunk bests into res in chunk order. The strict ">"
// preserves the sequential tie-break contract (first maximum in scan order);
// both single-point attacks must fold through here so the contract lives in
// one place.
func foldBest(chunks []candidateBest, res *SinglePointResult) {
	for _, b := range chunks {
		res.Candidates += b.candidates
		if b.candidates > 0 && b.loss > res.PoisonedLoss {
			res.Key, res.Rank, res.PoisonedLoss = b.key, b.rank, b.loss
		}
	}
}

// endpointGrainFloor keeps chunks of the O(1)-per-candidate endpoint scan
// large enough that scheduling overhead stays negligible. The incremental
// kernel shrank per-candidate work to a few dozen float operations, so the
// floor sits well above GrainFor's sweep default.
const endpointGrainFloor = 1024

// endpointScan is the optimal single-point inner loop bound to one Prefix:
// the chunk callback and the chunk-result buffer are allocated once per
// attack, not once per step, so the greedy loop — which runs one scan per
// inserted key — reaches a zero-allocation steady state. run() re-reads the
// Prefix's (possibly mutable) key view each call, so the same scan instance
// stays valid across kernel Inserts.
type endpointScan struct {
	pre *regression.Prefix
	ks  keys.Set // view refreshed by run(); read-only during a scan
	buf []candidateBest
	fn  func(clo, chi int) (candidateBest, error)
}

func newEndpointScan(pre *regression.Prefix) *endpointScan {
	s := &endpointScan{pre: pre}
	s.fn = s.chunk // bind the method value once; a per-call closure would allocate
	return s
}

// chunk scans neighbour pairs [clo, chi) and reduces them locally; chunk
// results fold in index order (foldBest), preserving the sequential
// tie-break contract.
func (s *endpointScan) chunk(clo, chi int) (candidateBest, error) {
	ks := s.ks
	b := candidateBest{loss: -1}
	for i := clo; i < chi; i++ {
		lo, hi := ks.At(i)+1, ks.At(i+1)-1
		if lo > hi {
			continue // no gap between these neighbours
		}
		pos := i + 1 // keys strictly smaller than any key in this gap
		if l := s.pre.PoisonedLoss(lo, pos); l > b.loss {
			b.key, b.rank, b.loss = lo, pos+1, l
		}
		b.candidates++
		if hi != lo {
			if l := s.pre.PoisonedLoss(hi, pos); l > b.loss {
				b.key, b.rank, b.loss = hi, pos+1, l
			}
			b.candidates++
		}
	}
	return b, nil
}

// run executes one chunked endpoint scan across the exec's worker pool.
func (s *endpointScan) run(ex exec) (SinglePointResult, error) {
	s.ks = s.pre.Set()
	res := SinglePointResult{CleanLoss: s.pre.CleanLoss(), PoisonedLoss: -1}
	grain := engine.GrainForMin(s.ks.Len()-1, ex.pool, endpointGrainFloor)
	chunks, err := engine.MapChunksInto(ex.ctx, ex.pool, s.ks.Len()-1, grain, s.buf, s.fn)
	s.buf = chunks
	if err != nil {
		return SinglePointResult{}, err
	}
	foldBest(chunks, &res)
	if res.PoisonedLoss < 0 {
		return SinglePointResult{}, ErrNoGap
	}
	return res, nil
}

// BruteForceSinglePoint evaluates EVERY unoccupied interior key — the
// paper's "first attempt". With the O(1) per-candidate evaluation this is
// O(m + n) rather than the naive O(m·n), but it still touches the whole key
// domain; it exists as the correctness oracle for OptimalSinglePoint and as
// the measured baseline of the endpoint-enumeration ablation.
func BruteForceSinglePoint(ks keys.Set, opts ...Option) (SinglePointResult, error) {
	if ks.Len() < 2 {
		return SinglePointResult{}, ErrTooFew
	}
	pre, err := regression.NewPrefix(ks)
	if err != nil {
		return SinglePointResult{}, err
	}
	ex := newExec(opts)
	res := SinglePointResult{CleanLoss: pre.CleanLoss(), PoisonedLoss: -1}
	// Chunk over neighbour pairs; per-pair cost is the gap width, so chunks
	// stay small (GrainFor) to let the pool balance wide gaps dynamically.
	chunks, err := engine.MapChunks(ex.ctx, ex.pool, ks.Len()-1, engine.GrainFor(ks.Len()-1, ex.pool),
		func(clo, chi int) (candidateBest, error) {
			b := candidateBest{loss: -1}
			for i := clo; i < chi; i++ {
				pos := i + 1
				for k := ks.At(i) + 1; k < ks.At(i+1); k++ {
					if l := pre.PoisonedLoss(k, pos); l > b.loss {
						b.key, b.rank, b.loss = k, pos+1, l
					}
					b.candidates++
				}
			}
			return b, nil
		})
	if err != nil {
		return SinglePointResult{}, err
	}
	foldBest(chunks, &res)
	if res.PoisonedLoss < 0 {
		return SinglePointResult{}, ErrNoGap
	}
	return res, nil
}

// GreedyResult describes a multi-point attack (Algorithm 1).
type GreedyResult struct {
	Poison     []int64   // poisoning keys in insertion order
	Poisoned   keys.Set  // K ∪ P
	CleanLoss  float64   // MSE before any poisoning
	Trajectory []float64 // MSE after the 1st, 2nd, … insertion
	Truncated  bool      // true if the domain saturated before p keys fit
	// Stopped is true when the attack ended early because even the optimal
	// next insertion would have DECREASED the loss. The paper's pseudocode
	// inserts exactly p keys, but Definition 2 only constrains |P| <= λ; on
	// dense, strongly non-linear CDFs (e.g. 80%-density normal keys) every
	// feasible insertion straightens the CDF, so a rational attacker keeps
	// the smaller poison set. Stopping at the first harmful step makes the
	// trajectory non-decreasing and guarantees RatioLoss() >= 1.
	Stopped bool
	// Scan accounting, summed over all steps (DESIGN.md §11): Candidates
	// endpoint evaluations were spent in total; of BlocksTotal gap blocks
	// considered across the steps, BlocksVisited were actually scanned.
	// The block counters stay zero when every step ran the full scan
	// (small sets or WithFullScan) — block accounting exists only under
	// pruning, while Candidates accumulates either way.
	Candidates    int
	BlocksVisited int
	BlocksTotal   int
}

// FinalLoss returns the MSE after the last insertion (CleanLoss when no key
// could be inserted).
func (g GreedyResult) FinalLoss() float64 {
	if len(g.Trajectory) == 0 {
		return g.CleanLoss
	}
	return g.Trajectory[len(g.Trajectory)-1]
}

// RatioLoss returns FinalLoss/CleanLoss, the paper's evaluation metric.
func (g GreedyResult) RatioLoss() float64 { return SafeRatio(g.FinalLoss(), g.CleanLoss) }

// GreedyMultiPoint implements Algorithm 1: insert p poisoning keys, each
// chosen by the optimal single-point attack against the current augmented
// set. Each step runs the pruned scan (sublinear in practice, O(n) worst
// case; DESIGN.md §11), so the whole attack costs O(p·n) worst case and far
// less on real key sets. If the key domain saturates early the result is
// truncated rather than failing: the attacker simply has nowhere left to
// inject, which the RMI volume allocator must be able to observe.
//
// This is the repository's hottest loop, and it runs on the incremental
// attack kernel: the key set and the regression moments live in mutable,
// capacity-reserved storage (keys.MutableSet + regression.NewPrefixMutable)
// and absorb each chosen key in place, so a greedy step costs one candidate
// scan plus memmove-class updates — no per-step set copy, no O(n) prefix
// rebuild, and zero allocations after setup. The kernel's exact integer
// moments guarantee every chosen key, loss, and trajectory entry is
// bit-identical to rebuilding the prefix state from scratch each step (see
// DESIGN.md §2, "Incremental kernel invariants"; where the pre-kernel
// float64 accumulators had already lost exactness — sums beyond 2⁵³ —
// values can differ from THAT implementation in final ulps, in the exact
// arithmetic's favor).
//
// The per-step candidate scan parallelizes across WithWorkers(n) workers;
// the chosen keys, trajectory, and all losses are identical for every
// worker count (index-ordered reduction — see internal/engine).
func GreedyMultiPoint(ks keys.Set, p int, opts ...Option) (GreedyResult, error) {
	if p < 0 {
		return GreedyResult{}, fmt.Errorf("core: negative poison budget %d", p)
	}
	if ks.Len() < 2 {
		return GreedyResult{}, ErrTooFew
	}
	mut := keys.NewMutable(ks, p)
	pre, err := regression.NewPrefixMutable(mut)
	if err != nil {
		return GreedyResult{}, err
	}
	ex := newExec(opts)
	res := GreedyResult{
		CleanLoss: pre.CleanLoss(),
		Poisoned:  ks,
	}
	current := res.CleanLoss
	scan := newPrunedScan(pre)
	for j := 0; j < p; j++ {
		step, err := scan.run(ex)
		if errors.Is(err, ErrNoGap) {
			res.Truncated = true
			break
		}
		if err != nil {
			return GreedyResult{}, err
		}
		res.Candidates += step.Candidates
		res.BlocksVisited += step.BlocksVisited
		res.BlocksTotal += step.BlocksTotal
		if step.PoisonedLoss < current {
			res.Stopped = true
			break
		}
		current = step.PoisonedLoss
		if _, err := pre.Insert(step.Key); err != nil {
			return GreedyResult{}, fmt.Errorf("core: internal error inserting chosen poison key: %w", err)
		}
		if res.Poison == nil {
			res.Poison = make([]int64, 0, p)
			res.Trajectory = make([]float64, 0, p)
		}
		res.Poison = append(res.Poison, step.Key)
		res.Trajectory = append(res.Trajectory, step.PoisonedLoss)
	}
	if len(res.Poison) > 0 {
		res.Poisoned = mut.Freeze()
	}
	return res, nil
}
