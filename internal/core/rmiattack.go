package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
)

// RMIAttackOptions parameterizes Algorithm 2 (GreedyPoisoningRMI).
type RMIAttackOptions struct {
	// NumModels is the number N of second-stage models (the RMI fanout).
	NumModels int
	// Percent is the overall poisoning percentage φ·100 relative to the
	// number of legitimate keys; the paper evaluates 1–20%.
	Percent float64
	// Alpha is the per-model threshold multiplier: each model may receive at
	// most t = ceil(Alpha·φ·n/N) poisoning keys (Section V, "Poisoning
	// Threshold per Regression Model"). Alpha <= 0 disables the cap
	// (used by the ablation).
	Alpha float64
	// Epsilon is the termination bound: the greedy exchange loop stops when
	// the best available move improves the summed second-stage loss by less
	// than Epsilon. Defaults to 1e-9 when zero.
	Epsilon float64
	// MaxMoves bounds the number of greedy exchanges; 0 means the default
	// 8·N. Exchanges also stop when no move clears Epsilon.
	MaxMoves int
	// DisableExchanges skips the exchange phase entirely, leaving the
	// uniform "natural first attempt" allocation — the volume-allocation
	// ablation baseline.
	DisableExchanges bool
}

func (o RMIAttackOptions) validate(n int) error {
	if o.NumModels < 1 {
		return fmt.Errorf("core: RMI attack needs NumModels >= 1, got %d", o.NumModels)
	}
	if o.NumModels > n {
		return fmt.Errorf("core: NumModels %d exceeds key count %d", o.NumModels, n)
	}
	if o.Percent <= 0 || o.Percent > 100 {
		return fmt.Errorf("core: poisoning percent must be in (0, 100], got %v", o.Percent)
	}
	return nil
}

// ModelReport describes one second-stage model after the attack.
type ModelReport struct {
	Index        int     // model position in the second stage
	LegitKeys    int     // legitimate keys assigned after boundary moves
	Budget       int     // poisoning keys allocated by volume allocation
	Injected     int     // poisoning keys actually inserted (≤ Budget)
	CleanLoss    float64 // MSE of the model trained on its legit keys only
	PoisonedLoss float64 // MSE of the model trained on legit ∪ poison
	RatioLoss    float64 // PoisonedLoss / CleanLoss (SafeRatio convention)
	Poison       []int64 // injected keys, in insertion order
}

// RMIAttackResult is the outcome of Algorithm 2.
type RMIAttackResult struct {
	Models []ModelReport
	// Poison is the union of all injected keys.
	Poison keys.Set
	// CleanRMILoss is L_RMI of the unpoisoned index: the mean second-stage
	// loss over the ORIGINAL equal-size partitioning of K (the baseline the
	// paper's black horizontal line divides by).
	CleanRMILoss float64
	// PoisonedRMILoss is the mean second-stage loss after the attack.
	PoisonedRMILoss float64
	// Budget and Injected are the requested (φ·n) and achieved totals.
	Budget, Injected int
	// Moves counts applied greedy exchanges; Threshold is t.
	Moves, Threshold int
}

// RMIRatio returns PoisonedRMILoss/CleanRMILoss, the paper's headline metric
// for the two-stage attack (up to 300× on synthetic log-normal data).
func (r RMIAttackResult) RMIRatio() float64 { return SafeRatio(r.PoisonedRMILoss, r.CleanRMILoss) }

// PerModelRatios returns the ratio losses of all models that admit a finite
// ratio, the series summarized by the paper's boxplots.
func (r RMIAttackResult) PerModelRatios() []float64 {
	out := make([]float64, 0, len(r.Models))
	for _, m := range r.Models {
		if !math.IsInf(m.RatioLoss, 0) && !math.IsNaN(m.RatioLoss) {
			out = append(out, m.RatioLoss)
		}
	}
	return out
}

// memoKey identifies a (key range, budget) attack evaluation. Boundary
// moves shift ranges by single keys, so the exchange loop re-queries the
// same triples constantly; memoization turns that into cache hits.
type memoKey struct {
	lo, hi, budget int
}

type memoVal struct {
	loss     float64
	injected int
}

// memoShardCount shards the range-attack memo so Algorithm 2's parallel
// per-segment phases stop serializing on a single map mutex at high worker
// counts: adjacent segments hash to independent locks, and the exchange
// loop's constant re-queries of hot triples contend only within a shard.
// 64 shards keep the fixed cost trivial while exceeding any realistic
// worker count. Power of two so the hash folds with a mask.
const memoShardCount = 64

// rangeMemo is the sharded (lo, hi, budget) → attack-outcome cache.
// Values are deterministic, so two workers racing to evaluate the same
// triple store identical bytes and the race is harmless; the shards exist
// purely to cut lock contention (BenchmarkRangeMemoContention measures it).
type rangeMemo struct {
	shards [memoShardCount]struct {
		mu sync.Mutex
		m  map[memoKey]memoVal
	}
}

func newRangeMemo(sizeHint int) *rangeMemo {
	rm := &rangeMemo{}
	per := sizeHint/memoShardCount + 1
	for i := range rm.shards {
		rm.shards[i].m = make(map[memoKey]memoVal, per)
	}
	return rm
}

// shard mixes the triple with splitmix64 constants; quality matters only
// enough to spread adjacent (lo, hi) ranges across shards.
func (k memoKey) shard() uint64 {
	h := uint64(k.lo)*0x9e3779b97f4a7c15 ^ uint64(k.hi)*0xbf58476d1ce4e5b9 ^ uint64(k.budget)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h & (memoShardCount - 1)
}

func (rm *rangeMemo) get(k memoKey) (memoVal, bool) {
	s := &rm.shards[k.shard()]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	return v, ok
}

func (rm *rangeMemo) put(k memoKey, v memoVal) {
	s := &rm.shards[k.shard()]
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// rmiAttackState carries Algorithm 2's mutable state.
type rmiAttackState struct {
	ks     keys.Set
	n      int
	N      int
	bounds []int // model i owns sorted positions [bounds[i], bounds[i+1])
	budget []int
	loss   []float64 // current poisoned loss per model
	thresh int
	ex     exec

	memo *rangeMemo
}

// evalRange runs the greedy attack (Algorithm 1) on the key range
// [lo, hi) with the given budget, memoized. Degenerate ranges (< 2 keys)
// evaluate to zero loss and zero injections.
//
// Safe for concurrent use: the memo is shard-locked and the greedy attack
// itself runs outside any lock. Two workers may race to evaluate the same
// triple, but GreedyMultiPoint is deterministic, so both compute the same
// value and the double store is harmless.
//
// The attack context is threaded into the inner greedy attack so a
// cancellation aborts mid-segment rather than after the full O(p·n) run;
// the poisoned value is NOT memoized in that case, and the surrounding
// engine.Map surfaces ctx.Err() at its next task boundary, discarding it.
func (st *rmiAttackState) evalRange(lo, hi, budget int) memoVal {
	k := memoKey{lo, hi, budget}
	if v, ok := st.memo.get(k); ok {
		return v
	}
	var v memoVal
	if hi-lo >= 2 {
		sub := st.ks.Slice(lo, hi)
		g, err := GreedyMultiPoint(sub, budget, WithContext(st.ex.ctx))
		if err != nil {
			// Cancelled mid-attack (ErrTooFew is excluded by the guard
			// above): return a zero value without memoizing it.
			return memoVal{}
		}
		v = memoVal{loss: g.FinalLoss(), injected: len(g.Poison)}
	}
	st.memo.put(k, v)
	return v
}

// exchange describes one candidate CHANGELOSS entry: moving a poisoning-key
// slot across the boundary between models i and i+1, paired with the reverse
// move of one boundary legitimate key, keeping every model's total size
// fixed (Section V-A).
type exchange struct {
	valid  bool
	delta  float64 // change in Σ second-stage losses if applied
	li, lj float64 // hypothetical new losses of models i and i+1
}

// computeForward evaluates the i → i+1 exchange: model i+1 gains a poison
// slot and loses its smallest legitimate key to model i; model i loses a
// poison slot.
func (st *rmiAttackState) computeForward(i int) exchange {
	if st.budget[i] < 1 {
		return exchange{}
	}
	if st.thresh > 0 && st.budget[i+1]+1 > st.thresh {
		return exchange{}
	}
	// Model i+1 must retain at least 2 legitimate keys to stay a regression.
	if st.bounds[i+2]-(st.bounds[i+1]+1) < 2 {
		return exchange{}
	}
	li := st.evalRange(st.bounds[i], st.bounds[i+1]+1, st.budget[i]-1)
	lj := st.evalRange(st.bounds[i+1]+1, st.bounds[i+2], st.budget[i+1]+1)
	return exchange{
		valid: true,
		delta: (li.loss + lj.loss) - (st.loss[i] + st.loss[i+1]),
		li:    li.loss,
		lj:    lj.loss,
	}
}

// computeBackward evaluates the i ← i+1 exchange: model i gains a poison
// slot and its largest legitimate key migrates to model i+1; model i+1 loses
// a poison slot.
func (st *rmiAttackState) computeBackward(i int) exchange {
	if st.budget[i+1] < 1 {
		return exchange{}
	}
	if st.thresh > 0 && st.budget[i]+1 > st.thresh {
		return exchange{}
	}
	if (st.bounds[i+1]-1)-st.bounds[i] < 2 {
		return exchange{}
	}
	li := st.evalRange(st.bounds[i], st.bounds[i+1]-1, st.budget[i]+1)
	lj := st.evalRange(st.bounds[i+1]-1, st.bounds[i+2], st.budget[i+1]-1)
	return exchange{
		valid: true,
		delta: (li.loss + lj.loss) - (st.loss[i] + st.loss[i+1]),
		li:    li.loss,
		lj:    lj.loss,
	}
}

// RMIAttack implements Algorithm 2 (GreedyPoisoningRMI): poison the
// second-stage linear regression models of a two-stage RMI built over ks.
//
// Phases:
//  1. Partition K into N equal contiguous chunks (the designer's
//     initialization step) and give each model φ·n/N poisoning keys,
//     injected by Algorithm 1 ("Initial Volume Allocation").
//  2. Populate the CHANGELOSS table for every adjacent-model exchange in
//     both directions.
//  3. Greedily apply the exchange with the largest positive loss change,
//     subject to the per-model threshold t = ceil(α·φ·n/N); after each move
//     only the ≤6 entries referencing the touched models are recomputed.
//  4. Stop when the best move improves by less than ε or MaxMoves is hit.
//
// The returned result contains per-model reports, the union of poisoning
// keys, and the RMI-level loss ratio.
//
// Per-segment work — the clean baseline, the initial volume allocation, the
// CHANGELOSS table, the post-move recomputes, and the final materialization
// — fans out across WithWorkers(n) workers. Results are reduced in model
// index order, so the outcome is identical for every worker count.
func RMIAttack(ks keys.Set, opts RMIAttackOptions, execOpts ...Option) (RMIAttackResult, error) {
	n := ks.Len()
	if err := opts.validate(n); err != nil {
		return RMIAttackResult{}, err
	}
	N := opts.NumModels
	total := int(math.Round(opts.Percent / 100 * float64(n)))
	if total < 1 {
		return RMIAttackResult{}, fmt.Errorf("core: poisoning budget rounds to zero (n=%d, percent=%v)", n, opts.Percent)
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-9
	}
	maxMoves := opts.MaxMoves
	if maxMoves == 0 {
		maxMoves = 8 * N
	}

	st := &rmiAttackState{
		ks:     ks,
		n:      n,
		N:      N,
		bounds: make([]int, N+1),
		budget: make([]int, N),
		loss:   make([]float64, N),
		memo:   newRangeMemo(4 * N),
		ex:     newExec(execOpts),
	}

	// Equal-size contiguous partitioning, first n%N chunks one key larger
	// (matching keys.Set.Partition).
	base, extra := n/N, n%N
	for i := 0; i < N; i++ {
		size := base
		if i < extra {
			size++
		}
		st.bounds[i+1] = st.bounds[i] + size
	}

	// Uniform initial budget, remainder spread over the first models.
	bBase, bExtra := total/N, total%N
	for i := 0; i < N; i++ {
		st.budget[i] = bBase
		if i < bExtra {
			st.budget[i]++
		}
	}

	// Per-model threshold t = ceil(α·φ·n/N). The uniform share is φ·n/N, so
	// α=2,3 allow skewing up to 2–3× the even split.
	if opts.Alpha > 0 {
		st.thresh = int(math.Ceil(opts.Alpha * float64(total) / float64(N)))
		if st.thresh < 1 {
			st.thresh = 1
		}
		// An initial remainder bump may not exceed t; clamp defensively and
		// return surplus to the largest-room models.
		surplus := 0
		for i := range st.budget {
			if st.budget[i] > st.thresh {
				surplus += st.budget[i] - st.thresh
				st.budget[i] = st.thresh
			}
		}
		for i := 0; i < N && surplus > 0; i++ {
			room := st.thresh - st.budget[i]
			if room > 0 {
				add := room
				if add > surplus {
					add = surplus
				}
				st.budget[i] += add
				surplus -= add
			}
		}
	}

	// Clean RMI loss on the original partitioning (the attack baseline).
	// Per-model attacks are independent; fan them out and sum the returned
	// losses in model order so the float accumulation is order-stable.
	cleanLosses, err := engine.Map(st.ex.ctx, st.ex.pool, N, func(i int) (float64, error) {
		return st.evalRange(st.bounds[i], st.bounds[i+1], 0).loss, nil
	})
	if err != nil {
		return RMIAttackResult{}, err
	}
	cleanSum := 0.0
	for _, l := range cleanLosses {
		cleanSum += l
	}
	cleanRMI := cleanSum / float64(N)

	// Phase 1: initial volume allocation via Algorithm 1 on every model.
	initLosses, err := engine.Map(st.ex.ctx, st.ex.pool, N, func(i int) (float64, error) {
		return st.evalRange(st.bounds[i], st.bounds[i+1], st.budget[i]).loss, nil
	})
	if err != nil {
		return RMIAttackResult{}, err
	}
	copy(st.loss, initLosses)

	// Phases 2–4: CHANGELOSS table + greedy exchanges.
	moves := 0
	if !opts.DisableExchanges && N > 1 {
		fwd := make([]exchange, N-1)
		bwd := make([]exchange, N-1)
		type fbPair struct{ f, b exchange }
		table, err := engine.Map(st.ex.ctx, st.ex.pool, N-1, func(i int) (fbPair, error) {
			return fbPair{st.computeForward(i), st.computeBackward(i)}, nil
		})
		if err != nil {
			return RMIAttackResult{}, err
		}
		for i, p := range table {
			fwd[i], bwd[i] = p.f, p.b
		}
		for moves < maxMoves {
			bestDelta := eps
			bestIdx, bestDir := -1, 0
			for i := 0; i < N-1; i++ {
				if fwd[i].valid && fwd[i].delta > bestDelta {
					bestDelta, bestIdx, bestDir = fwd[i].delta, i, +1
				}
				if bwd[i].valid && bwd[i].delta > bestDelta {
					bestDelta, bestIdx, bestDir = bwd[i].delta, i, -1
				}
			}
			if bestIdx < 0 {
				break
			}
			i := bestIdx
			if bestDir > 0 {
				st.loss[i], st.loss[i+1] = fwd[i].li, fwd[i].lj
				st.bounds[i+1]++
				st.budget[i]--
				st.budget[i+1]++
			} else {
				st.loss[i], st.loss[i+1] = bwd[i].li, bwd[i].lj
				st.bounds[i+1]--
				st.budget[i]++
				st.budget[i+1]--
			}
			moves++
			// Only entries referencing models i−1, i, i+1, i+2 changed;
			// recompute those (up to three fwd/bwd pairs) concurrently.
			var touched []int
			for _, j := range []int{i - 1, i, i + 1} {
				if j >= 0 && j < N-1 {
					touched = append(touched, j)
				}
			}
			type jPair struct {
				j    int
				f, b exchange
			}
			recomputed, err := engine.Map(st.ex.ctx, st.ex.pool, len(touched), func(t int) (jPair, error) {
				j := touched[t]
				return jPair{j, st.computeForward(j), st.computeBackward(j)}, nil
			})
			if err != nil {
				return RMIAttackResult{}, err
			}
			for _, p := range recomputed {
				fwd[p.j], bwd[p.j] = p.f, p.b
			}
		}
	}

	// Materialize the final attack: per-model poison keys and reports.
	res := RMIAttackResult{
		Models:       make([]ModelReport, N),
		CleanRMILoss: cleanRMI,
		Budget:       total,
		Moves:        moves,
		Threshold:    st.thresh,
	}
	reports, err := engine.Map(st.ex.ctx, st.ex.pool, N, func(i int) (ModelReport, error) {
		lo, hi := st.bounds[i], st.bounds[i+1]
		rep := ModelReport{
			Index:     i,
			LegitKeys: hi - lo,
			Budget:    st.budget[i],
		}
		rep.CleanLoss = st.evalRange(lo, hi, 0).loss
		if hi-lo >= 2 && st.budget[i] > 0 {
			g, err := GreedyMultiPoint(st.ks.Slice(lo, hi), st.budget[i], WithContext(st.ex.ctx))
			if err != nil && !errors.Is(err, ErrNoGap) {
				return ModelReport{}, fmt.Errorf("core: final attack on model %d: %w", i, err)
			}
			if err == nil {
				rep.Injected = len(g.Poison)
				rep.Poison = g.Poison
				rep.PoisonedLoss = g.FinalLoss()
			} else {
				rep.PoisonedLoss = rep.CleanLoss
			}
		} else {
			rep.PoisonedLoss = rep.CleanLoss
		}
		rep.RatioLoss = SafeRatio(rep.PoisonedLoss, rep.CleanLoss)
		return rep, nil
	})
	if err != nil {
		return RMIAttackResult{}, err
	}
	// A cancellation inside the LAST task of a phase yields a zero-valued
	// evalRange with no Map task left to surface ctx.Err(); never let such
	// a partial result escape as a success.
	if err := st.ex.ctx.Err(); err != nil {
		return RMIAttackResult{}, err
	}
	poisonedSum := 0.0
	var allPoison []int64
	for i, rep := range reports {
		poisonedSum += rep.PoisonedLoss
		res.Injected += rep.Injected
		allPoison = append(allPoison, rep.Poison...)
		res.Models[i] = rep
	}
	res.PoisonedRMILoss = poisonedSum / float64(N)
	ps, err := keys.NewStrict(allPoison)
	if err != nil {
		return RMIAttackResult{}, fmt.Errorf("core: poison keys collide across models: %w", err)
	}
	res.Poison = ps
	return res, nil
}
