package core

// Tests for the scenario-side batch-eval plumbing (probeeval.go): the
// steady-state allocation budget and the batched-vs-per-key scenario
// differential (WithPerKeyEval must change the Eval accounting and nothing
// else). The kernel-vs-reference bit-identity itself is pinned where the
// kernels live, in internal/index's differential and fuzz suites.

import (
	"reflect"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/xrand"
)

// TestProbeEvalZeroAllocs pins the epoch-eval allocation budget: once the
// scratch is warm, a steady-state epoch (unchanged workload) allocates
// NOTHING — no sorted-cache copy, no chunk buffer, no closure — on the
// sequential path the worker-equivalence contract makes canonical.
func TestProbeEvalZeroAllocs(t *testing.T) {
	initial, err := dataset.Uniform(xrand.New(31), 2000, 80000)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := dynamic.New(initial, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := dynamic.New(initial, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	legit := initial.Keys()
	ex := newExec(nil) // sequential: the canonical byte-identical path
	pe := newProbeEval()
	pe.refresh(legit)
	allocs := testing.AllocsPerRun(20, func() {
		pe.refresh(legit) // steady state: length unchanged, no copy
		if _, err := pe.measurePair(ex, endpointGrainFloor, pe.sorted, clean, victim); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state epoch eval allocates %.1f objects/run, want 0", allocs)
	}
}

// TestPerKeyEvalEquivalence is the scenario-level ablation differential:
// for each serving scenario, the batched run and the WithPerKeyEval run
// must agree on every column — only the Eval accounting may differ, and it
// must land on the expected side in each run.
func TestPerKeyEvalEquivalence(t *testing.T) {
	checkEval := func(t *testing.T, batched, perKey EvalStats) {
		t.Helper()
		if batched.BatchedKeys == 0 || batched.PerKeyKeys != 0 {
			t.Fatalf("batched run accounting = %+v, want all keys on BatchedKeys", batched)
		}
		if perKey.PerKeyKeys == 0 || perKey.BatchedKeys != 0 {
			t.Fatalf("per-key run accounting = %+v, want all keys on PerKeyKeys", perKey)
		}
		if batched.BatchedKeys != perKey.PerKeyKeys {
			t.Fatalf("eval key counts differ: batched evaluated %d, per-key %d",
				batched.BatchedKeys, perKey.PerKeyKeys)
		}
	}

	t.Run("static", func(t *testing.T) {
		initial := serveFixture(t, 400)
		opts := StaticOptions{Budget: 30, HonestWrites: 60, Seed: 3}
		want, err := StaticAttack(initial, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := StaticAttack(initial, opts, WithPerKeyEval())
		if err != nil {
			t.Fatal(err)
		}
		checkEval(t, want.Eval, got.Eval)
		want.Eval, got.Eval = EvalStats{}, EvalStats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("static scenario diverged under WithPerKeyEval\n got: %+v\nwant: %+v", got, want)
		}
	})

	t.Run("online", func(t *testing.T) {
		initial, arrivals := onlineFixture(t, 400, 3, 10)
		opts := OnlineOptions{Epochs: 3, EpochBudget: 20, Policy: dynamic.ManualPolicy(), Arrivals: arrivals}
		want, err := OnlinePoisonAttack(initial, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := OnlinePoisonAttack(initial, opts, WithPerKeyEval())
		if err != nil {
			t.Fatal(err)
		}
		checkEval(t, want.Eval, got.Eval)
		want.Eval, got.Eval = EvalStats{}, EvalStats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("online scenario diverged under WithPerKeyEval\n got: %+v\nwant: %+v",
				got.Epochs, want.Epochs)
		}
	})

	t.Run("serve", func(t *testing.T) {
		initial := serveFixture(t, 400)
		opts := serveOpts(3)
		want, err := ServeAttack(initial, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ServeAttack(initial, opts, WithPerKeyEval())
		if err != nil {
			t.Fatal(err)
		}
		checkEval(t, want.Eval, got.Eval)
		want.Eval, got.Eval = EvalStats{}, EvalStats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("serve scenario diverged under WithPerKeyEval\n got: %+v\nwant: %+v",
				got.Epochs, want.Epochs)
		}
	})
}
