package core

import (
	"cdfpoison/internal/engine"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
)

// LossPoint is one evaluation of the loss sequence L(kp): the MSE of the
// optimal regression re-trained on K ∪ {kp}.
type LossPoint struct {
	Key  int64
	Loss float64
}

// LossSequence evaluates L(kp) for every unoccupied interior key kp, in
// increasing key order — the sequence plotted in Figure 3. Cost is
// O(n + f) where f is the number of free interior slots (the paper's
// O(m + n) once the prefix trick replaces from-scratch refits).
//
// The second return value is the clean (pre-poisoning) loss, drawn as the
// horizontal reference line in the figure.
func LossSequence(ks keys.Set, opts ...Option) ([]LossPoint, float64, error) {
	if ks.Len() < 2 {
		return nil, 0, ErrTooFew
	}
	pre, err := regression.NewPrefix(ks)
	if err != nil {
		return nil, 0, err
	}
	ex := newExec(opts)
	// Each chunk of neighbour pairs emits its slice of the sequence; chunk
	// slices concatenate in chunk order, reproducing the sequential scan.
	chunks, err := engine.MapChunks(ex.ctx, ex.pool, ks.Len()-1, engine.GrainFor(ks.Len()-1, ex.pool),
		func(clo, chi int) ([]LossPoint, error) {
			var part []LossPoint
			for i := clo; i < chi; i++ {
				pos := i + 1
				for k := ks.At(i) + 1; k < ks.At(i+1); k++ {
					part = append(part, LossPoint{Key: k, Loss: pre.PoisonedLoss(k, pos)})
				}
			}
			return part, nil
		})
	if err != nil {
		return nil, 0, err
	}
	var seq []LossPoint
	for _, part := range chunks {
		seq = append(seq, part...)
	}
	if len(seq) == 0 {
		return nil, 0, ErrNoGap
	}
	return seq, pre.CleanLoss(), nil
}

// DiscreteDerivative returns ΔA(i) = A(i+1) − A(i) over consecutive entries
// of the loss sequence (Definition 3). The derivative point is attributed to
// the left key. Non-adjacent keys (separated by an occupied slot) still form
// consecutive sequence entries, matching the paper's sequence-of-candidates
// view.
func DiscreteDerivative(seq []LossPoint) []LossPoint {
	if len(seq) < 2 {
		return nil
	}
	out := make([]LossPoint, 0, len(seq)-1)
	for i := 0; i+1 < len(seq); i++ {
		out = append(out, LossPoint{Key: seq[i].Key, Loss: seq[i+1].Loss - seq[i].Loss})
	}
	return out
}

// GapConvexityReport summarizes, for one gap, how far the interior maximum
// of the loss sequence exceeds the best endpoint. Theorem 2 predicts
// Excess <= 0 up to floating-point noise for every gap.
type GapConvexityReport struct {
	Gap         keys.Gap
	EndpointMax float64 // max(L(lo), L(hi))
	InteriorMax float64 // max over keys strictly inside the gap
	Excess      float64 // InteriorMax − EndpointMax (≤ ~0 when the corollary holds)
}

// CheckGapConvexity evaluates the Theorem 2 corollary — "the maximum loss
// for each convex subsequence is given either by the first or the last
// poisoning key of its domain" — on every gap of the set. It returns one
// report per gap that has interior keys (width ≥ 3). Used by property tests
// and by the lisbench convexity ablation.
func CheckGapConvexity(ks keys.Set, opts ...Option) ([]GapConvexityReport, error) {
	if ks.Len() < 2 {
		return nil, ErrTooFew
	}
	pre, err := regression.NewPrefix(ks)
	if err != nil {
		return nil, err
	}
	ex := newExec(opts)
	gaps := ks.Gaps()
	// One task per gap (gap widths vary wildly, so per-gap scheduling load
	// balances); nil results for sub-width gaps are dropped in gap order.
	perGap, err := engine.Map(ex.ctx, ex.pool, len(gaps), func(gi int) (*GapConvexityReport, error) {
		g := gaps[gi]
		if g.Width() < 3 {
			return nil, nil
		}
		pos := g.Rank - 1
		epMax := pre.PoisonedLoss(g.Lo, pos)
		if l := pre.PoisonedLoss(g.Hi, pos); l > epMax {
			epMax = l
		}
		inMax := 0.0
		first := true
		for k := g.Lo + 1; k < g.Hi; k++ {
			l := pre.PoisonedLoss(k, pos)
			if first || l > inMax {
				inMax, first = l, false
			}
		}
		return &GapConvexityReport{
			Gap:         g,
			EndpointMax: epMax,
			InteriorMax: inMax,
			Excess:      inMax - epMax,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var reports []GapConvexityReport
	for _, r := range perGap {
		if r != nil {
			reports = append(reports, *r)
		}
	}
	return reports, nil
}
