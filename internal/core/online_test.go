package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// onlineFixture draws a deterministic initial set plus an arrival schedule.
func onlineFixture(t testing.TB, n, epochs, perEpoch int) (keys.Set, [][]int64) {
	t.Helper()
	rng := xrand.New(2025)
	initial, err := dataset.Uniform(rng, n, int64(n)*40)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([][]int64, epochs)
	for e := range arrivals {
		for i := 0; i < perEpoch; i++ {
			arrivals[e] = append(arrivals[e], rng.Int63n(int64(n)*40))
		}
	}
	return initial, arrivals
}

func TestOnlineValidation(t *testing.T) {
	initial, _ := onlineFixture(t, 50, 1, 0)
	for name, opts := range map[string]OnlineOptions{
		"no-epochs":       {EpochBudget: 5},
		"negative-budget": {Epochs: 2, EpochBudget: -1},
		"long-arrivals":   {Epochs: 1, Arrivals: [][]int64{{1}, {2}}},
		"rmi-no-models":   {Epochs: 2, EpochBudget: 5, Oracle: OracleRMI},
		"bad-oracle":      {Epochs: 2, EpochBudget: 5, Oracle: OnlineOracle(99)},
		"bad-policy":      {Epochs: 2, Policy: dynamic.EveryKInserts(0)},
	} {
		if _, err := OnlinePoisonAttack(initial, opts); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
	tiny, _ := keys.New([]int64{7})
	if _, err := OnlinePoisonAttack(tiny, OnlineOptions{Epochs: 1}); !errors.Is(err, ErrTooFew) {
		t.Fatalf("single-key initial set: err = %v, want ErrTooFew", err)
	}
}

// TestOnlineManualPolicy: with the manual policy every epoch ends in exactly
// one retrain, the buffer is always empty at measurement time, and the
// poisoned loss ratio grows as the attacker's cumulative budget compounds.
func TestOnlineManualPolicy(t *testing.T) {
	initial, arrivals := onlineFixture(t, 400, 4, 10)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:      4,
		EpochBudget: 20,
		Policy:      dynamic.ManualPolicy(),
		Arrivals:    arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 4 {
		t.Fatalf("%d epoch reports, want 4", len(res.Epochs))
	}
	for i, e := range res.Epochs {
		if e.Epoch != i+1 {
			t.Fatalf("epoch %d numbered %d", i, e.Epoch)
		}
		if e.Retrains != i+1 {
			t.Fatalf("epoch %d: %d retrains, want %d", e.Epoch, e.Retrains, i+1)
		}
		if e.BufferLen != 0 {
			t.Fatalf("epoch %d: manual policy left %d buffered keys after forced retrain", e.Epoch, e.BufferLen)
		}
		if e.Injected < 1 || e.Injected > 20 {
			t.Fatalf("epoch %d: injected %d keys (budget 20)", e.Epoch, e.Injected)
		}
		if e.RatioLoss < 1 {
			t.Fatalf("epoch %d: ratio %v < 1 — the oracle should never help the victim", e.Epoch, e.RatioLoss)
		}
	}
	first, last := res.Epochs[0], res.Epochs[len(res.Epochs)-1]
	if last.RatioLoss <= first.RatioLoss {
		t.Fatalf("ratio did not compound across epochs: %v -> %v", first.RatioLoss, last.RatioLoss)
	}
	if last.PoisonedProbes <= last.CleanProbes {
		t.Fatalf("poisoning did not raise probe cost: clean %v, poisoned %v",
			last.CleanProbes, last.PoisonedProbes)
	}
	if res.Poison.Len() != last.PoisonTotal {
		t.Fatalf("poison set %d != cumulative total %d", res.Poison.Len(), last.PoisonTotal)
	}
	if res.Retrains != 4 {
		t.Fatalf("total retrains %d, want 4", res.Retrains)
	}
}

// TestOnlineBufferPolicy: with a buffer-threshold policy retrains fire only
// when accepted inserts reach the limit, so the buffer is non-empty at most
// epoch boundaries and the model lags the content.
func TestOnlineBufferPolicy(t *testing.T) {
	initial, arrivals := onlineFixture(t, 400, 3, 10)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:      3,
		EpochBudget: 15,
		Policy:      dynamic.BufferLimit(1_000_000), // never fires: pure staleness
		Arrivals:    arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retrains != 0 {
		t.Fatalf("oversized buffer limit retrained %d times", res.Retrains)
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.BufferLen == 0 {
		t.Fatal("no keys buffered despite zero retrains")
	}
	if last.BufferLen != last.PoisonTotal+arrivalAcceptance(t, initial, arrivals) {
		t.Fatalf("buffer %d != poison %d + accepted arrivals %d",
			last.BufferLen, last.PoisonTotal, arrivalAcceptance(t, initial, arrivals))
	}

	// A tight limit must retrain during the scenario.
	res2, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:      3,
		EpochBudget: 15,
		Policy:      dynamic.BufferLimit(8),
		Arrivals:    arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retrains == 0 {
		t.Fatal("buffer limit 8 never fired")
	}
}

// arrivalAcceptance counts arrivals a clean index (same initial set) accepts
// — the expected buffered-legit count when no retrain ever fires. The victim
// accepts the same arrivals in this scenario because poison keys are chosen
// from slots unoccupied at injection time and the fixture's arrival keys are
// compared against the same evolving content.
func arrivalAcceptance(t *testing.T, initial keys.Set, arrivals [][]int64) int {
	t.Helper()
	x, err := dynamic.New(initial, dynamic.ManualPolicy())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, epoch := range arrivals {
		for _, k := range epoch {
			if ok, _ := x.Insert(k); ok {
				n++
			}
		}
	}
	return n
}

// TestOnlineEveryKPolicy: the attacker's own inserts advance the write
// counter, so the retrain cadence follows total writes.
func TestOnlineEveryKPolicy(t *testing.T) {
	initial, _ := onlineFixture(t, 300, 2, 0)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:      2,
		EpochBudget: 10,
		Policy:      dynamic.EveryKInserts(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 writes per epoch, retrain every 5 writes: 2 per epoch, 4 total.
	if res.Retrains != 4 {
		t.Fatalf("retrains = %d, want 4 (attacker-driven cadence)", res.Retrains)
	}
}

// TestOnlineRMIOracle: the Algorithm 2 oracle drives the scenario end to
// end and injects within budget.
func TestOnlineRMIOracle(t *testing.T) {
	initial, arrivals := onlineFixture(t, 600, 3, 5)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:      3,
		EpochBudget: 30,
		Policy:      dynamic.ManualPolicy(),
		Arrivals:    arrivals,
		Oracle:      OracleRMI,
		RMI:         RMIAttackOptions{NumModels: 6, Alpha: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.Injected > 30 {
			t.Fatalf("epoch %d: injected %d > budget 30", e.Epoch, e.Injected)
		}
	}
	if res.Poison.Len() == 0 {
		t.Fatal("RMI oracle injected nothing")
	}
	if res.FinalRatio() < 1 {
		t.Fatalf("final ratio %v < 1", res.FinalRatio())
	}
}

// TestOnlineZeroBudget: with no attacker the victim IS the counterfactual —
// every epoch must report ratio exactly 1 and identical probe costs.
func TestOnlineZeroBudget(t *testing.T) {
	initial, arrivals := onlineFixture(t, 300, 3, 20)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:   3,
		Policy:   dynamic.BufferLimit(16),
		Arrivals: arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.Injected != 0 || e.PoisonTotal != 0 {
			t.Fatalf("epoch %d injected keys with zero budget", e.Epoch)
		}
		if e.RatioLoss != 1 {
			t.Fatalf("epoch %d: ratio %v != 1 with no poisoning", e.Epoch, e.RatioLoss)
		}
		if e.CleanProbes != e.PoisonedProbes {
			t.Fatalf("epoch %d: probe costs diverged without poisoning", e.Epoch)
		}
	}
	if res.Poison.Len() != 0 {
		t.Fatal("poison set non-empty with zero budget")
	}
}

// TestOnlineWorkerEquivalence is the scenario's determinism contract: the
// ENTIRE result — every epoch report, every poison key, every probe mean —
// must be byte-identical for workers=1 and workers=NumCPU, for both oracles.
func TestOnlineWorkerEquivalence(t *testing.T) {
	initial, arrivals := onlineFixture(t, 500, 3, 15)
	for _, tc := range []struct {
		name string
		opts OnlineOptions
	}{
		{"regression-manual", OnlineOptions{
			Epochs: 3, EpochBudget: 25, Policy: dynamic.ManualPolicy(), Arrivals: arrivals}},
		{"regression-buffer", OnlineOptions{
			Epochs: 3, EpochBudget: 25, Policy: dynamic.BufferLimit(40), Arrivals: arrivals}},
		{"rmi-manual", OnlineOptions{
			Epochs: 3, EpochBudget: 25, Policy: dynamic.ManualPolicy(), Arrivals: arrivals,
			Oracle: OracleRMI, RMI: RMIAttackOptions{NumModels: 5, Alpha: 3}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := OnlinePoisonAttack(initial, tc.opts, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				got, err := OnlinePoisonAttack(initial, tc.opts, WithWorkers(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: online scenario diverged from sequential\n got: %+v\nwant: %+v",
						w, got.Epochs, want.Epochs)
				}
			}
		})
	}
}

// TestOnlineCancellation: a cancelled context aborts the scenario instead of
// returning a partial result.
func TestOnlineCancellation(t *testing.T) {
	initial, _ := onlineFixture(t, 2_000, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs: 5, EpochBudget: 50, Policy: dynamic.ManualPolicy(),
	}, WithWorkers(2), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOnlineEpochsDefaultToArrivals: omitting Epochs runs one epoch per
// arrival batch.
func TestOnlineEpochsDefaultToArrivals(t *testing.T) {
	initial, arrivals := onlineFixture(t, 200, 3, 5)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		EpochBudget: 5, Policy: dynamic.ManualPolicy(), Arrivals: arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("%d epochs, want 3 (from arrivals)", len(res.Epochs))
	}
}
