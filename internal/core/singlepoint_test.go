package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
	"cdfpoison/internal/xrand"
)

func mustSet(t *testing.T, ks []int64) keys.Set {
	t.Helper()
	s, err := keys.New(ks)
	if err != nil {
		t.Fatalf("keys.New: %v", err)
	}
	return s
}

func randomSet(rng *xrand.RNG, minN, maxN int, domain int64) keys.Set {
	n := minN + rng.Intn(maxN-minN+1)
	raw := xrand.SampleInt64s(rng, n, domain)
	s, err := keys.New(raw)
	if err != nil {
		panic(err)
	}
	return s
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	// The headline correctness property: endpoint enumeration (backed by
	// Theorem 2) finds exactly the same maximum loss as trying every
	// unoccupied interior key.
	rng := xrand.New(1)
	for trial := 0; trial < 300; trial++ {
		ks := randomSet(rng, 2, 40, 200)
		opt, errOpt := OptimalSinglePoint(ks)
		brt, errBrt := BruteForceSinglePoint(ks)
		if errors.Is(errOpt, ErrNoGap) != errors.Is(errBrt, ErrNoGap) {
			t.Fatalf("feasibility disagreement on %v", ks)
		}
		if errOpt != nil {
			continue
		}
		if math.Abs(opt.PoisonedLoss-brt.PoisonedLoss) > 1e-9*(1+brt.PoisonedLoss) {
			t.Fatalf("optimal %v (key %d) != brute force %v (key %d) on %v",
				opt.PoisonedLoss, opt.Key, brt.PoisonedLoss, brt.Key, ks)
		}
	}
}

func TestOptimalMatchesBruteForceQuick(t *testing.T) {
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		ks := randomSet(rng, 3, 25, 120)
		opt, errOpt := OptimalSinglePoint(ks)
		brt, errBrt := BruteForceSinglePoint(ks)
		if (errOpt != nil) != (errBrt != nil) {
			return false
		}
		if errOpt != nil {
			return true
		}
		return math.Abs(opt.PoisonedLoss-brt.PoisonedLoss) <= 1e-9*(1+brt.PoisonedLoss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSinglePointResultConsistency(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 100; trial++ {
		ks := randomSet(rng, 2, 50, 300)
		res, err := OptimalSinglePoint(ks)
		if errors.Is(err, ErrNoGap) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// The chosen key must be absent, interior, and its reported rank and
		// poisoned loss must match an independent refit.
		if ks.Contains(res.Key) {
			t.Fatalf("poison key %d already stored", res.Key)
		}
		if res.Key <= ks.Min() || res.Key >= ks.Max() {
			t.Fatalf("poison key %d not interior", res.Key)
		}
		r, ok := ks.InsertedRank(res.Key)
		if !ok || r != res.Rank {
			t.Fatalf("reported rank %d, actual %d", res.Rank, r)
		}
		aug, _ := ks.Insert(res.Key)
		m, err := regression.FitCDF(aug)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Loss-res.PoisonedLoss) > 1e-8*(1+m.Loss) {
			t.Fatalf("reported poisoned loss %v, refit %v", res.PoisonedLoss, m.Loss)
		}
		clean, _ := regression.FitCDF(ks)
		if math.Abs(clean.Loss-res.CleanLoss) > 1e-9*(1+clean.Loss) {
			t.Fatalf("reported clean loss %v, refit %v", res.CleanLoss, clean.Loss)
		}
	}
}

func TestSinglePointErrors(t *testing.T) {
	if _, err := OptimalSinglePoint(mustSet(t, []int64{5})); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
	if _, err := OptimalSinglePoint(mustSet(t, []int64{5, 6, 7})); !errors.Is(err, ErrNoGap) {
		t.Fatalf("want ErrNoGap, got %v", err)
	}
	if _, err := BruteForceSinglePoint(mustSet(t, []int64{5})); !errors.Is(err, ErrTooFew) {
		t.Fatalf("brute: want ErrTooFew, got %v", err)
	}
	if _, err := BruteForceSinglePoint(mustSet(t, []int64{5, 6})); !errors.Is(err, ErrNoGap) {
		t.Fatalf("brute: want ErrNoGap, got %v", err)
	}
}

func TestSinglePointCandidateCount(t *testing.T) {
	// 2,6,7,12 has gaps {3..5} and {8..11} → 4 endpoint candidates, while
	// brute force tries all 7 free slots.
	ks := mustSet(t, []int64{2, 6, 7, 12})
	opt, err := OptimalSinglePoint(ks)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Candidates != 4 {
		t.Errorf("endpoint candidates = %d, want 4", opt.Candidates)
	}
	brt, err := BruteForceSinglePoint(ks)
	if err != nil {
		t.Fatal(err)
	}
	if brt.Candidates != 7 {
		t.Errorf("brute candidates = %d, want 7", brt.Candidates)
	}
}

func TestSinglePointWidthOneGap(t *testing.T) {
	// A single free slot: both methods must pick it.
	ks := mustSet(t, []int64{1, 2, 4, 5})
	opt, err := OptimalSinglePoint(ks)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Key != 3 || opt.Candidates != 1 {
		t.Fatalf("got key %d candidates %d, want key 3 candidates 1", opt.Key, opt.Candidates)
	}
}

func TestPoisoningIncreasesLossOnUniformData(t *testing.T) {
	// On the workloads the paper evaluates (uniform keys with free slots),
	// the optimal single poison key strictly increases the loss.
	rng := xrand.New(3)
	for trial := 0; trial < 100; trial++ {
		raw := xrand.SampleInt64s(rng, 50, 500)
		ks := mustSet(t, raw)
		res, err := OptimalSinglePoint(ks)
		if errors.Is(err, ErrNoGap) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.PoisonedLoss < res.CleanLoss {
			t.Fatalf("optimal poisoning decreased loss: %v -> %v on %v",
				res.CleanLoss, res.PoisonedLoss, ks)
		}
	}
}

func TestGreedyMultiPointBasics(t *testing.T) {
	rng := xrand.New(4)
	raw := xrand.SampleInt64s(rng, 90, 480)
	ks := mustSet(t, raw)
	g, err := GreedyMultiPoint(ks, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Poison) != 10 || g.Truncated {
		t.Fatalf("expected 10 poison keys, got %d (truncated=%v)", len(g.Poison), g.Truncated)
	}
	if g.Poisoned.Len() != 100 {
		t.Fatalf("poisoned set size %d, want 100", g.Poisoned.Len())
	}
	// Every poison key must be unique, absent from K, and interior.
	seen := map[int64]bool{}
	for _, p := range g.Poison {
		if seen[p] || ks.Contains(p) || p <= ks.Min() || p >= ks.Max() {
			t.Fatalf("invalid poison key %d", p)
		}
		seen[p] = true
	}
	// Final loss must match an independent refit of the augmented set.
	m, err := regression.FitCDF(g.Poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Loss-g.FinalLoss()) > 1e-8*(1+m.Loss) {
		t.Fatalf("final loss %v != refit %v", g.FinalLoss(), m.Loss)
	}
	if g.RatioLoss() < 1 {
		t.Fatalf("greedy attack did not increase loss: ratio %v", g.RatioLoss())
	}
	if len(g.Trajectory) != 10 {
		t.Fatalf("trajectory length %d", len(g.Trajectory))
	}
}

func TestGreedyEachStepIsLocallyOptimal(t *testing.T) {
	// After j insertions, the (j+1)-th poison key must achieve exactly the
	// loss the single-point attack reports on the current augmented set.
	rng := xrand.New(5)
	raw := xrand.SampleInt64s(rng, 30, 200)
	ks := mustSet(t, raw)
	g, err := GreedyMultiPoint(ks, 5)
	if err != nil {
		t.Fatal(err)
	}
	cur := ks
	for j, p := range g.Poison {
		step, err := OptimalSinglePoint(cur)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(step.PoisonedLoss-g.Trajectory[j]) > 1e-9*(1+step.PoisonedLoss) {
			t.Fatalf("step %d: trajectory %v != single-point optimum %v", j, g.Trajectory[j], step.PoisonedLoss)
		}
		var ok bool
		cur, ok = cur.Insert(p)
		if !ok {
			t.Fatalf("step %d: duplicate insertion of %d", j, p)
		}
	}
}

func TestGreedyTruncatesOnSaturation(t *testing.T) {
	// {1,3} has one free slot and zero clean loss; inserting 2 keeps the
	// loss at zero (consecutive run), after which the domain saturates.
	ks := mustSet(t, []int64{1, 3})
	g, err := GreedyMultiPoint(ks, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Truncated {
		t.Fatal("expected truncation")
	}
	if len(g.Poison) != 1 || g.Poison[0] != 2 {
		t.Fatalf("poison = %v, want [2]", g.Poison)
	}
	if !g.Poisoned.Saturated() {
		t.Fatal("domain should be saturated after truncation")
	}
}

func TestGreedyStopsWhenEveryInsertionHelpsDefender(t *testing.T) {
	// Dense near-saturated sets cannot be poisoned profitably: filling the
	// remaining slots only straightens the CDF. The attack must stop early
	// (Definition 2 allows |P| <= λ) and never report a ratio below 1.
	ks := mustSet(t, []int64{0, 1, 2, 3, 5, 6, 7, 8, 9, 10})
	g, err := GreedyMultiPoint(ks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Stopped {
		t.Fatalf("expected early stop, got poison %v (ratio %v)", g.Poison, g.RatioLoss())
	}
	if len(g.Poison) != 0 || g.RatioLoss() != 1 {
		t.Fatalf("stop semantics wrong: %+v", g)
	}
	// Trajectories are non-decreasing under stop-on-dip.
	rng := xrand.New(77)
	for trial := 0; trial < 30; trial++ {
		set := randomSet(rng, 10, 60, 300)
		g, err := GreedyMultiPoint(set, 10)
		if err != nil {
			t.Fatal(err)
		}
		prev := g.CleanLoss
		for i, l := range g.Trajectory {
			if l < prev {
				t.Fatalf("trajectory decreased at step %d: %v -> %v", i, prev, l)
			}
			prev = l
		}
		if g.RatioLoss() < 1 {
			t.Fatalf("ratio %v < 1", g.RatioLoss())
		}
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	ks := mustSet(t, []int64{1, 5, 9})
	g, err := GreedyMultiPoint(ks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Poison) != 0 || g.FinalLoss() != g.CleanLoss || g.RatioLoss() != 1 {
		t.Fatalf("zero budget result: %+v", g)
	}
}

func TestGreedyErrors(t *testing.T) {
	if _, err := GreedyMultiPoint(mustSet(t, []int64{1, 5}), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := GreedyMultiPoint(mustSet(t, []int64{1}), 1); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
}

func TestGreedyMatchesExhaustiveSearchSmall(t *testing.T) {
	// For tiny instances, compare greedy two-point poisoning to exhaustive
	// search over ordered insertions. Greedy is a heuristic (the paper
	// observed it matches brute force on its datasets, but gives no
	// optimality proof, and tiny adversarial instances do exhibit ~10%
	// gaps); we assert it reaches at least 80% of the exhaustive optimum so
	// that a real regression in the implementation trips the test while
	// legitimate greedy suboptimality does not.
	rng := xrand.New(6)
	for trial := 0; trial < 20; trial++ {
		ks := randomSet(rng, 5, 9, 40)
		if ks.FreeSlots() < 2 {
			continue
		}
		g, err := GreedyMultiPoint(ks, 2)
		if err != nil || len(g.Poison) < 2 {
			continue
		}
		best := 0.0
		min0, max0 := ks.Min(), ks.Max()
		for k1 := min0 + 1; k1 < max0; k1++ {
			s1, ok := ks.Insert(k1)
			if !ok {
				continue
			}
			for k2 := min0 + 1; k2 < max0; k2++ {
				s2, ok := s1.Insert(k2)
				if !ok {
					continue
				}
				m, err := regression.FitCDF(s2)
				if err != nil {
					t.Fatal(err)
				}
				if m.Loss > best {
					best = m.Loss
				}
			}
		}
		if g.FinalLoss() < 0.80*best {
			t.Fatalf("greedy %v far below exhaustive %v on %v", g.FinalLoss(), best, ks)
		}
	}
}

func TestSafeRatio(t *testing.T) {
	if SafeRatio(0, 0) != 1 {
		t.Error("0/0 != 1")
	}
	if !math.IsInf(SafeRatio(1, 0), 1) {
		t.Error("1/0 not +Inf")
	}
	if SafeRatio(6, 3) != 2 {
		t.Error("6/3 != 2")
	}
}

func TestFigure4Shape(t *testing.T) {
	// Figure 4: 90 uniform keys over ~480 domain, 10 poison keys, error
	// increase about 7.4×. Seeds differ from the authors', so assert the
	// shape: a substantial (>3×) increase.
	rng := xrand.New(44)
	raw := xrand.SampleInt64s(rng, 90, 480)
	ks := mustSet(t, raw)
	g, err := GreedyMultiPoint(ks, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r := g.RatioLoss(); r < 3 {
		t.Fatalf("Figure 4 shape violated: ratio %v < 3", r)
	}
}
