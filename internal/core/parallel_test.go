package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// testSets draws a spread of fixed-seed key sets covering the regimes the
// attacks behave differently in: sparse/dense, uniform/skewed, tiny/large.
func testSets(t testing.TB) map[string]keys.Set {
	t.Helper()
	sets := map[string]keys.Set{}
	add := func(name string, gen func(*xrand.RNG) (keys.Set, error)) {
		ks, err := gen(xrand.New(12345))
		if err != nil {
			t.Fatalf("dataset %s: %v", name, err)
		}
		sets[name] = ks
	}
	add("uniform-sparse", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 500, 50_000) })
	add("uniform-dense", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 400, 520) })
	add("normal", func(r *xrand.RNG) (keys.Set, error) { return dataset.Normal(r, 300, 9_000) })
	add("lognormal", func(r *xrand.RNG) (keys.Set, error) { return dataset.LogNormal(r, 600, 200_000, 0, 2) })
	add("tiny", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 10, 41) })
	return sets
}

// workerCounts exercises sequential, a forced multi-goroutine pool, and the
// host's NumCPU, per the equivalence criterion workers=1 vs workers=NumCPU.
func workerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestOptimalSinglePointEquivalence: identical SinglePointResult for every
// worker count on every dataset regime.
func TestOptimalSinglePointEquivalence(t *testing.T) {
	for name, ks := range testSets(t) {
		want, wantErr := OptimalSinglePoint(ks, WithWorkers(1))
		for _, w := range workerCounts() {
			got, err := OptimalSinglePoint(ks, WithWorkers(w))
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s workers=%d: err %v vs sequential %v", name, w, err, wantErr)
			}
			if got != want {
				t.Fatalf("%s workers=%d: %+v != sequential %+v", name, w, got, want)
			}
		}
	}
}

func TestBruteForceSinglePointEquivalence(t *testing.T) {
	for name, ks := range testSets(t) {
		if ks.Len() > 500 && ks.FreeSlots() > 1_000_000 {
			continue // keep brute force test-sized
		}
		want, wantErr := BruteForceSinglePoint(ks, WithWorkers(1))
		for _, w := range workerCounts() {
			got, err := BruteForceSinglePoint(ks, WithWorkers(w))
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s workers=%d: err %v vs sequential %v", name, w, err, wantErr)
			}
			if got != want {
				t.Fatalf("%s workers=%d: %+v != sequential %+v", name, w, got, want)
			}
		}
	}
}

// TestGreedyMultiPointEquivalence is the headline determinism test: the
// full greedy trajectory — every chosen key, every intermediate loss —
// must be byte-identical across worker counts.
func TestGreedyMultiPointEquivalence(t *testing.T) {
	for name, ks := range testSets(t) {
		budget := ks.Len() / 10
		if budget < 3 {
			budget = 3
		}
		want, wantErr := GreedyMultiPoint(ks, budget, WithWorkers(1))
		if wantErr != nil {
			t.Fatalf("%s: sequential greedy: %v", name, wantErr)
		}
		for _, w := range workerCounts() {
			got, err := GreedyMultiPoint(ks, budget, WithWorkers(w))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: result diverged from sequential\n got: %+v\nwant: %+v", name, w, got, want)
			}
		}
	}
}

func TestLossSequenceEquivalence(t *testing.T) {
	for name, ks := range testSets(t) {
		if ks.FreeSlots() > 200_000 {
			continue
		}
		wantSeq, wantClean, wantErr := LossSequence(ks, WithWorkers(1))
		for _, w := range workerCounts() {
			seq, clean, err := LossSequence(ks, WithWorkers(w))
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s workers=%d: err %v vs %v", name, w, err, wantErr)
			}
			if clean != wantClean || !reflect.DeepEqual(seq, wantSeq) {
				t.Fatalf("%s workers=%d: loss sequence diverged from sequential", name, w)
			}
		}
	}
}

func TestCheckGapConvexityEquivalence(t *testing.T) {
	for name, ks := range testSets(t) {
		if ks.FreeSlots() > 200_000 {
			continue
		}
		want, wantErr := CheckGapConvexity(ks, WithWorkers(1))
		for _, w := range workerCounts() {
			got, err := CheckGapConvexity(ks, WithWorkers(w))
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s workers=%d: err %v vs %v", name, w, err, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: convexity reports diverged", name, w)
			}
		}
	}
}

// TestRMIAttackEquivalence: Algorithm 2's full output — per-model reports,
// poison keys, exchange count — must match the sequential run exactly.
func TestRMIAttackEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(*xrand.RNG) (keys.Set, error)
		opts RMIAttackOptions
	}{
		{"uniform", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 2_000, 100_000) },
			RMIAttackOptions{NumModels: 20, Percent: 10, Alpha: 3}},
		{"lognormal", func(r *xrand.RNG) (keys.Set, error) { return dataset.LogNormal(r, 2_000, 200_000, 0, 2) },
			RMIAttackOptions{NumModels: 25, Percent: 5, Alpha: 2}},
		{"no-threshold", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 1_000, 50_000) },
			RMIAttackOptions{NumModels: 10, Percent: 15}},
		{"no-exchanges", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 1_000, 50_000) },
			RMIAttackOptions{NumModels: 10, Percent: 10, Alpha: 3, DisableExchanges: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ks, err := tc.gen(xrand.New(777))
			if err != nil {
				t.Fatal(err)
			}
			want, err := RMIAttack(ks, tc.opts, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				got, err := RMIAttack(ks, tc.opts, WithWorkers(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: RMI attack diverged from sequential\n got moves=%d injected=%d ratio=%v\nwant moves=%d injected=%d ratio=%v",
						w, got.Moves, got.Injected, got.RMIRatio(), want.Moves, want.Injected, want.RMIRatio())
				}
			}
		})
	}
}

// TestGreedyMultiPointCancellation: a cancelled context aborts the attack.
func TestGreedyMultiPointCancellation(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(9), 5_000, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = GreedyMultiPoint(ks, 50, WithWorkers(4), WithContext(ctx))
	if err == nil {
		t.Fatal("expected cancellation error, got nil")
	}
}

// BenchmarkGreedyMultiPointWorkers is the acceptance benchmark: Algorithm 1
// at n >= 1e5 keys, p >= 50, sequential vs one-worker-per-core. On a
// multi-core host the workers=NumCPU variant must be >= 2x faster; results
// are identical regardless (enforced by TestGreedyMultiPointEquivalence).
func BenchmarkGreedyMultiPointWorkers(b *testing.B) {
	ks, err := dataset.Uniform(xrand.New(4242), 100_000, 10_000_000)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 50
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("n=100k/p=%d/workers=%d", budget, w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := GreedyMultiPoint(ks, budget, WithWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestGreedyMultiPointAllocationBudget pins the incremental kernel's
// zero-allocation steady state: a sequential greedy attack allocates only
// its setup (mutable set, kernel, scratch buffer, result slices) — if any
// per-step allocation crept back in, the count would scale with the budget
// and blow far past this bound.
func TestGreedyMultiPointAllocationBudget(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(321), 2_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := GreedyMultiPoint(ks, budget, WithWorkers(1)); err != nil {
			t.Fatal(err)
		}
	})
	// Setup costs ~17 allocations (mutable set, kernel, scan + pruned-scan
	// structs and their worst-case-sized scratch buffers); 24 leaves slack
	// for runtime noise while still catching any O(budget) regression
	// (50 steps ⇒ ≥ 50 allocs).
	if allocs > 24 {
		t.Fatalf("GreedyMultiPoint(p=%d) allocated %v times; the kernel must not allocate per step", budget, allocs)
	}
}

// BenchmarkBruteForceSinglePointWorkers measures the parallel brute-force
// oracle (per-candidate O(1) over the whole free domain).
func BenchmarkBruteForceSinglePointWorkers(b *testing.B) {
	ks, err := dataset.Uniform(xrand.New(4242), 50_000, 5_000_000)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BruteForceSinglePoint(ks, WithWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRMIAttackCancellation: cancellation must reach inside Algorithm 2's
// inner greedy attacks (not just phase boundaries) and always surface as an
// error, never as a partial result.
func TestRMIAttackCancellation(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(9), 4_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RMIAttack(ks, RMIAttackOptions{NumModels: 1, Percent: 10, Alpha: 3},
		WithWorkers(2), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
