package core

// probeEval is the scenario-side face of the sorted-batch probe kernel
// (DESIGN.md §12): one struct owns every piece of scratch the per-epoch
// probe evaluation needs — the sorted workload cache, the chunk-result
// buffer, and the bound-once chunk closure — so the steady-state epoch
// loop runs with ZERO allocations (TestProbeEvalZeroAllocs), matching the
// allocation-budget discipline of the pruned endpoint scan (DESIGN.md §3).
//
// Correctness leans on two invariants:
//
//   - the batch kernel is bit-identical to the per-key reference on the
//     same batch (index.BatchReader's contract, pinned by the differential
//     suite in internal/index), and
//   - integer probe sums are order- and partition-invariant, so sorting
//     the workload once and chunking the SORTED batch folds to the exact
//     totals the historical per-key loop produced — every CSV fingerprint
//     stays byte-identical.
//
// A chunk of a sorted batch is itself sorted, so the worker fan-out and
// the kernel compose: each chunk runs the merged pass independently and
// the chunk sums fold in index order (the determinism contract, §2).

import (
	"slices"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/index"
)

// EvalStats counts how many (key, index-side) probe evaluations went
// through the sorted-batch kernel versus the per-key reference loop —
// surfaced on every scenario result so the CLI can report which eval path
// produced the numbers (and so -no-batch-eval visibly changes the
// accounting while changing none of the measured columns).
type EvalStats struct {
	// BatchedKeys / PerKeyKeys count evaluated keys per index side (one
	// epoch evaluating n keys against victim and clean adds 2n).
	BatchedKeys int64
	PerKeyKeys  int64
}

func (s *EvalStats) add(keys int64, perKey bool) {
	if perKey {
		s.PerKeyKeys += keys
	} else {
		s.BatchedKeys += keys
	}
}

// probeEval carries the eval scratch across epochs. The zero value is NOT
// ready: newProbeEval binds the chunk closure once (a per-epoch method
// value would allocate).
type probeEval struct {
	sorted []int64 // sorted workload cache (refresh)
	srcLen int     // source length the cache was built from
	buf    []probeAgg
	fn     func(lo, hi int) (probeAgg, error)
	// Per-call bindings for fn — set by measurePair, cleared after, so the
	// struct never pins an index or batch beyond the call.
	batch         []int64
	clean, victim index.PointReader
	perKey        bool
	stats         EvalStats
}

func newProbeEval() *probeEval {
	pe := &probeEval{}
	pe.fn = pe.evalChunk
	return pe
}

func (pe *probeEval) evalChunk(lo, hi int) (probeAgg, error) {
	var a probeAgg
	seg := pe.batch[lo:hi]
	if pe.perKey {
		a.clean, _ = pe.clean.ProbeSum(seg)
		a.victim, _ = pe.victim.ProbeSum(seg)
	} else {
		a.clean, _ = index.ProbeSumSorted(pe.clean, seg)
		a.victim, _ = index.ProbeSumSorted(pe.victim, seg)
	}
	return a, nil
}

// refresh (re)builds the sorted cache from an APPEND-ONLY source workload:
// equal length means identical content, so steady-state epochs (no new
// arrivals) skip the copy and sort entirely and the cache's capacity is
// reused across the epochs that do grow.
func (pe *probeEval) refresh(src []int64) {
	if pe.srcLen == len(src) {
		return
	}
	pe.sorted = append(pe.sorted[:0], src...)
	slices.Sort(pe.sorted)
	pe.srcLen = len(src)
}

// measurePair evaluates one sorted batch against both indexes, fanning
// chunks of the batch across the exec's worker pool and folding the chunk
// sums in index order. With ex.perKeyEval the chunks run the per-key
// reference instead — same totals, classic cost.
func (pe *probeEval) measurePair(ex exec, grainFloor int, sorted []int64, clean, victim index.PointReader) (probeAgg, error) {
	n := len(sorted)
	pe.batch, pe.clean, pe.victim, pe.perKey = sorted, clean, victim, ex.perKeyEval
	grain := engine.GrainForMin(n, ex.pool, grainFloor)
	var err error
	pe.buf, err = engine.MapChunksInto(ex.ctx, ex.pool, n, grain, pe.buf, pe.fn)
	pe.batch, pe.clean, pe.victim = nil, nil, nil
	if err != nil {
		return probeAgg{}, err
	}
	var total probeAgg
	for _, a := range pe.buf {
		total.clean += a.clean
		total.victim += a.victim
	}
	pe.stats.add(2*int64(n), ex.perKeyEval)
	return total, nil
}
