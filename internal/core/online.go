package core

import (
	"fmt"
	"math"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
)

// BackendFactory builds a fresh index backend over an initial key set. The
// serving scenarios call it once per index they need (victim plus clean
// counterfactual), so both sides start from identical state.
type BackendFactory func(initial keys.Set) (index.Backend, error)

// OnlineOracle selects the attacker's per-epoch poisoning oracle.
type OnlineOracle int

const (
	// OracleRegression runs Algorithm 1 (GreedyMultiPoint) against the
	// index's full visible content each epoch — the strongest adversary for
	// the single-regression dynamic index.
	OracleRegression OnlineOracle = iota
	// OracleRMI runs Algorithm 2 (RMIAttack) against the visible content,
	// modeling an attacker who targets the second-stage partitioning a
	// future RMI rebuild would use. Requires OnlineOptions.RMI.NumModels.
	OracleRMI
)

// String names the oracle for reports and CSV cells.
func (o OnlineOracle) String() string {
	switch o {
	case OracleRegression:
		return "regression"
	case OracleRMI:
		return "rmi"
	default:
		return fmt.Sprintf("OnlineOracle(%d)", int(o))
	}
}

// OnlineOptions parameterizes the online (dynamic-index) poisoning scenario.
type OnlineOptions struct {
	// Epochs is the number of attack rounds. Zero defaults to len(Arrivals);
	// at least one epoch is required.
	Epochs int
	// EpochBudget is the number of poisoning keys the attacker may inject
	// per epoch (>= 0; zero models a pure staleness/arrival workload).
	EpochBudget int
	// Policy is the victim index's merge-and-retrain policy. With
	// dynamic.Manual the scenario forces one retrain at the END of every
	// epoch (epoch == maintenance cycle); other policies retrain organically
	// as inserts trigger them — including the attacker's own inserts, which
	// under dynamic.EveryK lets the adversary drive the retrain cadence.
	Policy dynamic.RetrainPolicy
	// Arrivals is the honest insert stream: Arrivals[e] lands in epoch e,
	// BEFORE the attacker moves (the adversary observes the current state).
	// May be shorter than Epochs (later epochs get no honest traffic) but
	// not longer.
	Arrivals [][]int64
	// Oracle selects the per-epoch attack; default OracleRegression.
	Oracle OnlineOracle
	// RMI configures the per-epoch Algorithm 2 call when Oracle == OracleRMI
	// (NumModels, Alpha, …). Percent is overridden each epoch so the total
	// matches EpochBudget against the current visible content.
	RMI RMIAttackOptions
	// Backend builds the victim and counterfactual indexes. nil selects the
	// default: the updatable learned index (internal/dynamic) running
	// Policy. Any index.Backend works — the scenario drives backends only
	// through the interface, so the B-Tree baseline, the single-model RMI
	// path, a sharded index, or a defense wrapper can stand in as victim.
	//
	// Policy serves double duty, and a custom factory must align with it:
	// besides configuring the DEFAULT backend, Policy.Kind == Manual is the
	// scenario-level switch that force-retrains both indexes at the end of
	// every epoch (step 3) — regardless of what the factory built. A
	// factory whose backend retrains on its own schedule (buffer/every-k
	// inside the backend) should therefore be paired with a non-Manual
	// Policy so the scenario adds no forced retrains; with the zero-value
	// Policy (Manual) every backend gets the one-retrain-per-epoch
	// maintenance cycle, which is a no-op for model-free backends.
	Backend BackendFactory
	// Defense arms the defense plane on victim and clean twin alike; the
	// zero value changes nothing (see DefenseSpec). The Fitter reaches only
	// the DEFAULT dynamic-index construction — a custom Backend factory
	// composes its own fitter — while the guard chain and rate limiter wrap
	// whatever the factory builds.
	Defense DefenseSpec
}

func (o OnlineOptions) epochs() int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	return len(o.Arrivals)
}

func (o OnlineOptions) validate() error {
	if o.epochs() < 1 {
		return fmt.Errorf("core: online attack needs Epochs >= 1 (or a non-empty Arrivals schedule)")
	}
	if len(o.Arrivals) > o.epochs() {
		return fmt.Errorf("core: %d arrival epochs exceed the %d attack epochs", len(o.Arrivals), o.epochs())
	}
	if o.EpochBudget < 0 {
		return fmt.Errorf("core: negative per-epoch budget %d", o.EpochBudget)
	}
	switch o.Oracle {
	case OracleRegression:
	case OracleRMI:
		if o.RMI.NumModels < 1 {
			return fmt.Errorf("core: OracleRMI needs RMI.NumModels >= 1, got %d", o.RMI.NumModels)
		}
	default:
		return fmt.Errorf("core: unknown online oracle %d", int(o.Oracle))
	}
	return nil
}

// EpochReport is the state of the scenario measured at the end of one epoch
// (after that epoch's arrivals, injections, and any retrains).
type EpochReport struct {
	Epoch    int // 1-based
	Injected int // poison keys inserted this epoch (≤ EpochBudget)
	// PoisonTotal and Retrains are cumulative over the scenario so far.
	PoisonTotal int
	Retrains    int
	BufferLen   int // victim delta-buffer size at epoch end
	// Displaced counts honest arrivals the victim index rejected because a
	// previously injected poison key already occupied their slot —
	// cumulative over the scenario so far, like PoisonTotal.
	Displaced int
	// CleanLoss / PoisonedLoss evaluate each index's CURRENT model against
	// its CURRENT full content (base ∪ buffer): a stale model shows up as
	// loss even before any retrain absorbs the poison.
	CleanLoss    float64
	PoisonedLoss float64
	RatioLoss    float64 // SafeRatio(PoisonedLoss, CleanLoss)
	// CleanProbes / PoisonedProbes are the mean lookup probes over the
	// honest-key workload against the counterfactual and victim indexes.
	CleanProbes    float64
	PoisonedProbes float64
}

// OnlineResult reports the full online poisoning scenario.
type OnlineResult struct {
	Epochs []EpochReport
	// Poison is the union of all injected keys.
	Poison keys.Set
	// Retrains is the victim's total completed retrain count.
	Retrains int
	// Defense is the defense-plane accounting (zero when no defense armed).
	Defense DefenseReport
	// Eval reports which probe-evaluation path produced the probe columns
	// (sorted-batch kernel by default, per-key under WithPerKeyEval).
	Eval EvalStats
}

// FinalRatio returns the last epoch's loss ratio — the scenario's headline.
func (r OnlineResult) FinalRatio() float64 {
	if len(r.Epochs) == 0 {
		return 1
	}
	return r.Epochs[len(r.Epochs)-1].RatioLoss
}

// MaxRatio returns the largest per-epoch loss ratio, which can exceed the
// final ratio when a retrain mid-scenario absorbs buffered poison.
func (r OnlineResult) MaxRatio() float64 {
	best := 1.0
	for _, e := range r.Epochs {
		if e.RatioLoss > best {
			best = e.RatioLoss
		}
	}
	return best
}

// probeAgg is one chunk's exact probe totals for both indexes. Integer sums
// are partition-invariant, so any chunking folds to the sequential totals.
type probeAgg struct {
	clean, victim int64
}

// onlineState carries the scenario's mutable state between epochs. Both
// indexes are driven purely through index.Backend.
type onlineState struct {
	victim index.Backend // receives arrivals AND poison
	clean  index.Backend // counterfactual: arrivals only, same policy
	legit  []int64       // honest workload: initial keys + accepted arrivals
	pe     *probeEval    // sorted-workload cache + eval scratch, reused across epochs
	ex     exec
}

// measure evaluates both indexes at an epoch boundary: model-vs-content MSE
// (Stats().ContentLoss, so model staleness is visible) and the mean probe
// cost of the honest workload. The workload is sorted once per growth step
// (st.legit is append-only, so an unchanged length skips the sort) and fed
// to the sorted-batch kernel in chunks across the exec's worker pool; the
// kernel is bit-identical to the per-key reference and integer sums fold in
// index order, so the result is byte-identical for any worker count AND for
// the per-key path (WithPerKeyEval).
func (st *onlineState) measure(rep *EpochReport) error {
	cleanStats := st.clean.Stats()
	victimStats := st.victim.Stats()
	rep.Retrains = victimStats.Retrains
	rep.BufferLen = victimStats.Buffered
	rep.CleanLoss = cleanStats.ContentLoss
	rep.PoisonedLoss = victimStats.ContentLoss
	rep.RatioLoss = SafeRatio(rep.PoisonedLoss, rep.CleanLoss)

	st.pe.refresh(st.legit)
	n := len(st.pe.sorted)
	total, err := st.pe.measurePair(st.ex, endpointGrainFloor, st.pe.sorted, st.clean, st.victim)
	if err != nil {
		return err
	}
	if n > 0 {
		rep.CleanProbes = float64(total.clean) / float64(n)
		rep.PoisonedProbes = float64(total.victim) / float64(n)
	}
	return nil
}

// oracle computes this epoch's poison keys against the victim's visible
// content, in the order the attacker submits them.
func (st *onlineState) oracle(opts OnlineOptions, execOpts []Option) ([]int64, error) {
	visible := st.victim.Keys()
	switch opts.Oracle {
	case OracleRMI:
		ro := opts.RMI
		ro.Percent = float64(opts.EpochBudget) / float64(visible.Len()) * 100
		if ro.Percent > 100 {
			ro.Percent = 100
		}
		if int(math.Round(ro.Percent/100*float64(visible.Len()))) < 1 {
			return nil, nil // budget rounds to zero against this set
		}
		res, err := RMIAttack(visible, ro, execOpts...)
		if err != nil {
			return nil, fmt.Errorf("core: online epoch RMI oracle: %w", err)
		}
		return res.Poison.Keys(), nil
	default: // OracleRegression
		g, err := GreedyMultiPoint(visible, opts.EpochBudget, execOpts...)
		if err != nil {
			return nil, fmt.Errorf("core: online epoch greedy oracle: %w", err)
		}
		return g.Poison, nil
	}
}

// OnlinePoisonAttack mounts the dynamic-index (online) poisoning scenario:
// an adversary with a fixed per-epoch key budget drip-feeds poison into an
// updatable learned index (internal/dynamic) interleaved with an honest
// insert stream, across retrain cycles.
//
// Each epoch:
//
//  1. The honest arrivals for the epoch are inserted (into both the victim
//     and a clean counterfactual index running the same retrain policy).
//  2. The attacker observes the victim's full visible content and computes
//     up to EpochBudget poison keys with the selected oracle — Algorithm 1
//     (GreedyMultiPoint) or Algorithm 2 (RMIAttack) — then inserts them.
//     Inserts can trigger the victim's own retrain policy mid-epoch.
//  3. With the Manual policy both indexes are force-retrained (the epoch IS
//     the maintenance cycle); otherwise retrains happen only when the
//     policy fires.
//  4. The epoch report captures loss (model vs current content, so model
//     staleness is visible), the loss ratio against the counterfactual, and
//     mean lookup probes over the honest workload.
//
// The scenario drives its victim purely through index.Backend:
// OnlineOptions.Backend swaps in any substrate (dynamic index by default,
// B-Tree baseline, single-model RMI, sharded index, defense wrapper)
// without touching the scenario.
//
// Determinism contract: WithWorkers parallelism reaches only the per-epoch
// oracle's candidate scans and the probe evaluation, all of which reduce in
// index order; the result is byte-identical for every worker count (see
// TestOnlineWorkerEquivalence). WithCancellation aborts between and inside
// epochs with ctx.Err().
func OnlinePoisonAttack(initial keys.Set, opts OnlineOptions, execOpts ...Option) (OnlineResult, error) {
	if err := opts.validate(); err != nil {
		return OnlineResult{}, err
	}
	if initial.Len() < 2 {
		return OnlineResult{}, ErrTooFew
	}
	factory := opts.Backend
	if factory == nil {
		factory = func(ks keys.Set) (index.Backend, error) {
			return dynamic.NewWithFit(ks, opts.Policy, opts.Defense.fitFunc())
		}
	}
	victim, err := factory(initial)
	if err != nil {
		return OnlineResult{}, err
	}
	clean, err := factory(initial)
	if err != nil {
		return OnlineResult{}, err
	}
	vBack, vGuard := opts.Defense.wrap(victim)
	cBack, cGuard := opts.Defense.wrap(clean)
	st := &onlineState{
		victim: vBack,
		clean:  cBack,
		legit:  append([]int64(nil), initial.Keys()...),
		pe:     newProbeEval(),
		ex:     newExec(execOpts),
	}

	epochs := opts.epochs()
	res := OnlineResult{Epochs: make([]EpochReport, 0, epochs)}
	res.Defense.Enabled = opts.Defense.Enabled()
	vArm := opts.Defense.newArm(vBack, vGuard, &res.Defense, false)
	cArm := opts.Defense.newArm(cBack, cGuard, &res.Defense, true)
	atkSrc := opts.Defense.attackerSource()
	// The online scenario has no workload generator, so honest sources
	// rotate over a plain arrival counter; the op clock counts every write
	// attempt on the victim's side of the stream.
	honestSeen, opClock := 0, 0
	var allPoison []int64
	displaced := 0
	for e := 0; e < epochs; e++ {
		if err := st.ex.ctx.Err(); err != nil {
			return OnlineResult{}, err
		}
		// 1. Honest traffic. A key enters the workload iff the clean index
		// accepts it; when the victim rejects such a key, a poison key has
		// displaced an honest one.
		if e < len(opts.Arrivals) {
			for _, k := range opts.Arrivals[e] {
				src := 0
				if opts.Defense.Sources > 1 {
					src = honestSeen % opts.Defense.Sources
				}
				honestSeen++
				opClock++
				cleanOK, _ := cArm.insert(k, src, opClock, false)
				victimOK, _ := vArm.insert(k, src, opClock, false)
				if cleanOK {
					st.legit = append(st.legit, k)
					if !victimOK {
						displaced++
					}
				}
			}
		}
		// 2. The attack.
		injected := 0
		if opts.EpochBudget > 0 {
			poison, err := st.oracle(opts, execOpts)
			if err != nil {
				return OnlineResult{}, err
			}
			for _, k := range poison {
				opClock++
				if ok, _ := vArm.insert(k, atkSrc, opClock, true); ok {
					allPoison = append(allPoison, k)
					injected++
				}
			}
		}
		// 3. Maintenance.
		if opts.Policy.Kind == dynamic.Manual {
			st.victim.Retrain()
			st.clean.Retrain()
		}
		// 4. Measurement (measure fills Retrains/BufferLen from backend
		// stats alongside the loss and probe columns).
		rep := EpochReport{
			Epoch:       e + 1,
			Injected:    injected,
			PoisonTotal: len(allPoison),
			Displaced:   displaced,
		}
		if err := st.measure(&rep); err != nil {
			return OnlineResult{}, err
		}
		res.Epochs = append(res.Epochs, rep)
	}
	// epochs >= 1 is validated, so the last report is always present; its
	// cumulative retrain count is the scenario total (no extra Stats scan).
	res.Retrains = res.Epochs[len(res.Epochs)-1].Retrains
	res.Eval = st.pe.stats
	ps, err := keys.NewStrict(allPoison)
	if err != nil {
		return OnlineResult{}, fmt.Errorf("core: online poison keys collide: %w", err)
	}
	res.Poison = ps
	return res, nil
}
