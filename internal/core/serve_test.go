package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"cdfpoison/internal/btree"
	"cdfpoison/internal/dataset"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/workload"
	"cdfpoison/internal/xrand"
)

func serveFixture(t testing.TB, n int) keys.Set {
	t.Helper()
	initial, err := dataset.Uniform(xrand.New(2026), n, int64(n)*40)
	if err != nil {
		t.Fatal(err)
	}
	return initial
}

func serveOpts(shards int) ServeOptions {
	return ServeOptions{
		Epochs:      3,
		OpsPerEpoch: 80,
		EpochBudget: 20,
		Shards:      shards,
		Policy:      dynamic.ManualPolicy(),
		Workload:    workload.NewZipf(1.1, 85),
		Seed:        7,
	}
}

func TestServeValidation(t *testing.T) {
	initial := serveFixture(t, 100)
	base := serveOpts(2)
	for name, mutate := range map[string]func(*ServeOptions){
		"no-epochs":       func(o *ServeOptions) { o.Epochs = 0 },
		"negative-ops":    func(o *ServeOptions) { o.OpsPerEpoch = -1 },
		"negative-budget": func(o *ServeOptions) { o.EpochBudget = -1 },
		"no-shards":       func(o *ServeOptions) { o.Shards = 0 },
		"bad-workload":    func(o *ServeOptions) { o.Workload = workload.NewZipf(-1, 90) },
		"bad-policy":      func(o *ServeOptions) { o.Policy = dynamic.EveryKInserts(0) },
	} {
		opts := base
		mutate(&opts)
		if _, err := ServeAttack(initial, opts); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
	// Too few keys per shard.
	tiny := serveFixture(t, 10)
	opts := base
	opts.Shards = 6
	if _, err := ServeAttack(tiny, opts); err == nil {
		t.Error("6 shards over 10 keys accepted")
	}
}

// TestServeTrajectory: the scenario's basic shape under the manual policy —
// reads+writes counted, poison injected within budget, every shard
// retrained once per epoch, damage compounds against the counterfactual.
func TestServeTrajectory(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := serveOpts(4)
	res, err := ServeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || len(res.Epochs) != opts.Epochs {
		t.Fatalf("shape: %d shards, %d epochs", res.Shards, len(res.Epochs))
	}
	for i, e := range res.Epochs {
		if e.Epoch != i+1 {
			t.Fatalf("epoch %d numbered %d", i, e.Epoch)
		}
		if e.Reads+e.Writes != opts.OpsPerEpoch {
			t.Fatalf("epoch %d: %d reads + %d writes != %d ops", e.Epoch, e.Reads, e.Writes, opts.OpsPerEpoch)
		}
		if e.Injected < 1 || e.Injected > opts.EpochBudget {
			t.Fatalf("epoch %d: injected %d (budget %d)", e.Epoch, e.Injected, opts.EpochBudget)
		}
		// Manual policy: 4 shards × epoch forced retrains on both sides.
		if e.Retrains != 4*(i+1) || e.CleanRetrains != 4*(i+1) {
			t.Fatalf("epoch %d: retrains %d/%d, want %d", e.Epoch, e.Retrains, e.CleanRetrains, 4*(i+1))
		}
		if e.BufferLen != 0 {
			t.Fatalf("epoch %d: %d buffered after forced retrain", e.Epoch, e.BufferLen)
		}
		if e.RatioLoss <= 0 {
			t.Fatalf("epoch %d: degenerate ratio %v", e.Epoch, e.RatioLoss)
		}
		if len(e.Shards) != 4 {
			t.Fatalf("epoch %d: %d shard reports", e.Epoch, len(e.Shards))
		}
		if e.Reads > 0 && (e.CleanProbes <= 0 || e.PoisonedProbes <= 0) {
			t.Fatalf("epoch %d: probe means missing", e.Epoch)
		}
	}
	last := res.Epochs[len(res.Epochs)-1]
	if res.MaxRatio() <= 1 {
		t.Fatalf("no epoch registered aggregate damage: max ratio %v", res.MaxRatio())
	}
	// The sharded signature: the oracle optimizes the GLOBAL CDF, so its
	// poison cluster lands inside ONE shard's range — the aggregate
	// (key-weighted) ratio dilutes across shards while the hit shard's own
	// ratio compounds epoch over epoch. Asserting both directions pins the
	// per-shard visibility the sharded report exists for.
	worstPerEpoch := func(e ServeEpochReport) float64 {
		best := 0.0
		for _, s := range e.Shards {
			if s.RatioLoss > best {
				best = s.RatioLoss
			}
		}
		return best
	}
	if wf, wl := worstPerEpoch(res.Epochs[0]), worstPerEpoch(last); wl <= wf {
		t.Fatalf("worst-shard ratio did not compound: %v -> %v", wf, wl)
	}
	if res.MaxShardRatio() < 2 {
		t.Fatalf("worst shard ratio %v — concentration missing", res.MaxShardRatio())
	}
	if res.MaxShardRatio() < res.MaxRatio() {
		t.Fatalf("worst shard ratio %v below aggregate %v", res.MaxShardRatio(), res.MaxRatio())
	}
	// Poisoning must cost honest readers probes over the whole scenario.
	var cleanTotal, poisTotal int64
	for _, e := range res.Epochs {
		cleanTotal += e.CleanProbeTotal
		poisTotal += e.PoisonedProbeTotal
	}
	if poisTotal <= cleanTotal {
		t.Fatalf("poisoning did not raise cumulative read cost: %d vs %d", poisTotal, cleanTotal)
	}
	if res.Poison.Len() != last.PoisonTotal {
		t.Fatalf("poison set %d != cumulative %d", res.Poison.Len(), last.PoisonTotal)
	}
}

// TestServeWorkerEquivalence is the serving scenario's half of the
// acceptance contract: the ENTIRE result — every epoch report, every
// per-shard row, every probe total — is byte-identical for workers=1 and
// workers=NumCPU.
// TestServeZeroCostGolden: the zero-cost pipeline is byte-identical to the
// historical synchronous path. The zero VALUE and an explicitly spelled
// zero model must both produce exactly the default scenario output —
// reports, poison set, probe totals, everything. (The CSV-level half of
// this golden lives in EXPERIMENTS.md: the serve.csv fingerprint is
// unchanged across the plane refactor.)
func TestServeZeroCostGolden(t *testing.T) {
	initial := serveFixture(t, 400)
	base, err := ServeAttack(initial, serveOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for name, cost := range map[string]index.CostModel{
		"zero-value":     {},
		"explicit-fixed": {Fixed: 0},
	} {
		opts := serveOpts(4)
		opts.RebuildCost = cost
		got, err := ServeAttack(initial, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("%s: output differs from the synchronous golden", name)
		}
	}
	for _, e := range base.Epochs {
		if e.Stale {
			t.Fatalf("epoch %d measured stale under zero cost", e.Epoch)
		}
	}
	if base.VictimChurn.StaleTicks != 0 || base.VictimChurn.Triggers != base.VictimChurn.Publishes {
		t.Fatalf("zero-cost churn accounting: %+v", base.VictimChurn)
	}
}

// TestServeRebuildCostStaleness: a non-zero rebuild cost opens stale
// windows — epoch-end retrains are still in flight when probes are
// measured, the pipelines accrue stale ticks, and the probe columns now
// read the frozen pre-rebuild plane (so they can only differ from the
// zero-cost run).
func TestServeRebuildCostStaleness(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := serveOpts(4)
	opts.RebuildCost = index.CostModel{Fixed: 1_000} // far longer than an epoch
	res, err := ServeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if !e.Stale {
			t.Fatalf("epoch %d: expected a stale read plane under fixed cost 1000", e.Epoch)
		}
	}
	if res.VictimChurn.StaleTicks == 0 || res.CleanChurn.StaleTicks == 0 {
		t.Fatalf("no stale ticks accrued: victim %+v clean %+v", res.VictimChurn, res.CleanChurn)
	}
	if res.VictimChurn.Coalesced == 0 {
		t.Fatalf("epoch-end retrains behind a slow rebuild never coalesced: %+v", res.VictimChurn)
	}
	// The scenario stays deterministic across worker counts with costs on.
	res2, err := ServeAttack(initial, opts, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("rebuild-cost scenario diverges across worker counts")
	}
}

func TestServeWorkerEquivalence(t *testing.T) {
	initial := serveFixture(t, 500)
	for _, tc := range []struct {
		name string
		opts ServeOptions
	}{
		{"manual-4", serveOpts(4)},
		{"manual-1", serveOpts(1)},
		{"buffer-2", func() ServeOptions {
			o := serveOpts(2)
			o.Policy = dynamic.BufferLimit(16)
			o.Workload = workload.NewHotspot(2, 85)
			return o
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ServeAttack(initial, tc.opts, WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts() {
				got, err := ServeAttack(initial, tc.opts, WithWorkers(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: serve scenario diverged from sequential", w)
				}
			}
		})
	}
}

// TestServeSingleShardMatchesDynamicGolden is the other half: with N=1 the
// sharded scenario must reproduce, number for number, a hand-driven
// unsharded dynamic index fed the same operation and poison stream. The
// golden loop below IS the scenario spec, written against the concrete
// dynamic index with no shard package involvement.
func TestServeSingleShardMatchesDynamicGolden(t *testing.T) {
	initial := serveFixture(t, 300)
	opts := serveOpts(1)
	res, err := ServeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}

	victim, err := dynamic.New(initial, opts.Policy)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := dynamic.New(initial, opts.Policy)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(opts.Workload, initial, 2*(initial.Max()+1), opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < opts.Epochs; e++ {
		var reads []int64
		for _, op := range gen.Ops(opts.OpsPerEpoch) {
			if op.Read {
				reads = append(reads, op.Key)
				continue
			}
			clean.Insert(op.Key)
			victim.Insert(op.Key)
		}
		g, err := GreedyMultiPoint(victim.Keys(), opts.EpochBudget)
		if err != nil {
			t.Fatal(err)
		}
		injected := 0
		for _, k := range g.Poison {
			if ok, _ := victim.Insert(k); ok {
				injected++
			}
		}
		victim.Retrain()
		clean.Retrain()

		rep := res.Epochs[e]
		if rep.Injected != injected {
			t.Fatalf("epoch %d: injected %d, golden %d", e+1, rep.Injected, injected)
		}
		vst, cst := victim.Stats(), clean.Stats()
		if rep.PoisonedLoss != vst.ContentLoss || rep.CleanLoss != cst.ContentLoss {
			t.Fatalf("epoch %d: losses (%v, %v) != golden (%v, %v)",
				e+1, rep.PoisonedLoss, rep.CleanLoss, vst.ContentLoss, cst.ContentLoss)
		}
		if rep.Retrains != vst.Retrains {
			t.Fatalf("epoch %d: retrains %d != golden %d", e+1, rep.Retrains, vst.Retrains)
		}
		vProbes, _ := victim.ProbeSum(reads)
		cProbes, _ := clean.ProbeSum(reads)
		if rep.PoisonedProbeTotal != vProbes || rep.CleanProbeTotal != cProbes {
			t.Fatalf("epoch %d: probe totals (%d, %d) != golden (%d, %d)",
				e+1, rep.PoisonedProbeTotal, rep.CleanProbeTotal, vProbes, cProbes)
		}
		if len(rep.Shards) != 1 || rep.Shards[0].PoisLoss != vst.ContentLoss {
			t.Fatalf("epoch %d: single-shard report mismatch: %+v", e+1, rep.Shards)
		}
		if rep.Imbalance != 1 {
			t.Fatalf("epoch %d: imbalance %v with one shard", e+1, rep.Imbalance)
		}
	}
	// Poison accounting: the victim holds exactly the poison keys on top of
	// the clean index, minus the honest arrivals poison displaced.
	lastDisplaced := res.Epochs[len(res.Epochs)-1].Displaced
	if victim.Len()-clean.Len() != res.Poison.Len()-lastDisplaced {
		t.Fatalf("poison accounting: victim-clean delta %d, poison %d - displaced %d",
			victim.Len()-clean.Len(), res.Poison.Len(), lastDisplaced)
	}
}

// TestServeShardingConcentratesDamage: under a hotspot mix the worst
// per-shard ratio of a sharded victim must exceed its aggregate ratio —
// the per-shard visibility is the point of the sharded report.
func TestServeShardingConcentratesDamage(t *testing.T) {
	initial := serveFixture(t, 600)
	opts := serveOpts(4)
	opts.Workload = workload.NewHotspot(5, 85)
	res, err := ServeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxShardRatio() <= 1 {
		t.Fatalf("no shard damaged: worst ratio %v", res.MaxShardRatio())
	}
}

// TestServeZeroBudget: with no attacker the victim IS the counterfactual.
func TestServeZeroBudget(t *testing.T) {
	initial := serveFixture(t, 300)
	opts := serveOpts(3)
	opts.EpochBudget = 0
	res, err := ServeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.Injected != 0 || e.PoisonTotal != 0 || e.Displaced != 0 {
			t.Fatalf("epoch %d: attacker activity with zero budget: %+v", e.Epoch, e)
		}
		if e.RatioLoss != 1 {
			t.Fatalf("epoch %d: ratio %v != 1", e.Epoch, e.RatioLoss)
		}
		if e.CleanProbeTotal != e.PoisonedProbeTotal {
			t.Fatalf("epoch %d: probe totals diverged without poisoning", e.Epoch)
		}
		if e.Imbalance != e.CleanImbalance {
			t.Fatalf("epoch %d: imbalance diverged without poisoning", e.Epoch)
		}
	}
	if res.Poison.Len() != 0 {
		t.Fatal("poison set non-empty")
	}
}

// TestServeCancellation: a cancelled context aborts the scenario.
func TestServeCancellation(t *testing.T) {
	initial := serveFixture(t, 2_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ServeAttack(initial, serveOpts(2), WithWorkers(2), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOnlineBackendSwap: the rewritten online scenario drives ANY
// index.Backend — here the B-Tree baseline stands in as victim, and being
// model-free it reports ratio exactly 1 at every epoch while still
// absorbing the poison keys. The same swap point is what lets defense
// wrappers and the sharded index ride the scenario unchanged.
func TestOnlineBackendSwap(t *testing.T) {
	initial := serveFixture(t, 300)
	res, err := OnlinePoisonAttack(initial, OnlineOptions{
		Epochs:      3,
		EpochBudget: 15,
		Policy:      dynamic.ManualPolicy(),
		Backend: func(ks keys.Set) (index.Backend, error) {
			return btree.Bulk(32, ks.Keys())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Poison.Len() == 0 {
		t.Fatal("no poison injected into the B-Tree victim")
	}
	for _, e := range res.Epochs {
		if e.RatioLoss != 1 {
			t.Fatalf("epoch %d: model-free backend reported ratio %v", e.Epoch, e.RatioLoss)
		}
		if e.Retrains != 0 {
			t.Fatalf("epoch %d: B-Tree reported %d retrains", e.Epoch, e.Retrains)
		}
	}
}
