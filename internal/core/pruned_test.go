package core

import (
	"reflect"
	"testing"

	"cdfpoison/internal/dataset"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

// prunedSets draws key sets large enough that OptimalSinglePoint actually
// takes the pruned path (nGaps >= prunedMinGaps), across the dataset
// regimes whose loss landscapes differ: uniform (flat peak plateaus),
// normal/lognormal (sharp tail gaps), and a near-dense set where most
// blocks saturate.
// prunesHard names the regimes where the bound provably excludes blocks;
// on near-dense sets the loss landscape is flat enough that the scan may
// legitimately visit everything (pruning is best-effort, identity is not).
var prunesHard = map[string]bool{"uniform": true, "normal": true, "lognormal": true}

func prunedSets(t testing.TB) map[string]keys.Set {
	t.Helper()
	sets := map[string]keys.Set{}
	add := func(name string, gen func(*xrand.RNG) (keys.Set, error)) {
		ks, err := gen(xrand.New(616))
		if err != nil {
			t.Fatalf("dataset %s: %v", name, err)
		}
		if ks.Len()-1 < prunedMinGaps {
			t.Fatalf("dataset %s: %d gaps, below the pruning threshold %d — the test would silently degrade to the full scan", name, ks.Len()-1, prunedMinGaps)
		}
		sets[name] = ks
	}
	add("uniform", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 3_000, 400_000) })
	add("normal", func(r *xrand.RNG) (keys.Set, error) { return dataset.Normal(r, 2_000, 120_000) })
	add("lognormal", func(r *xrand.RNG) (keys.Set, error) { return dataset.LogNormal(r, 2_500, 900_000, 0, 2) })
	add("near-dense", func(r *xrand.RNG) (keys.Set, error) { return dataset.Uniform(r, 1_500, 1_900) })
	return sets
}

// TestPrunedScanEquivalence is the headline differential test of the pruned
// scan: the chosen key, rank, and both losses must be bit-identical to the
// exhaustive full scan on every dataset regime, while visiting strictly
// fewer blocks.
func TestPrunedScanEquivalence(t *testing.T) {
	for name, ks := range prunedSets(t) {
		full, err := OptimalSinglePoint(ks, WithFullScan())
		if err != nil {
			t.Fatalf("%s: full scan: %v", name, err)
		}
		pruned, err := OptimalSinglePoint(ks)
		if err != nil {
			t.Fatalf("%s: pruned scan: %v", name, err)
		}
		if pruned.Key != full.Key || pruned.Rank != full.Rank ||
			pruned.CleanLoss != full.CleanLoss || pruned.PoisonedLoss != full.PoisonedLoss {
			t.Fatalf("%s: pruned diverged from full scan\n got: %+v\nwant: %+v", name, pruned, full)
		}
		if full.BlocksTotal != 0 || full.BlocksVisited != 0 {
			t.Fatalf("%s: full scan must report zero block accounting, got %+v", name, full)
		}
		if pruned.Candidates > full.Candidates {
			t.Fatalf("%s: pruned evaluated %d candidates, full scan only %d", name, pruned.Candidates, full.Candidates)
		}
		if prunesHard[name] && pruned.BlocksVisited >= pruned.BlocksTotal {
			t.Fatalf("%s: pruning had no effect: visited %d of %d blocks", name, pruned.BlocksVisited, pruned.BlocksTotal)
		}
	}
}

// TestPrunedScanGreedyEquivalence extends bit-identity to the full greedy
// trajectory: every chosen poison key and every intermediate loss must
// match the full-scan run exactly — the property the acceptance benchmark's
// speedup is worthless without.
func TestPrunedScanGreedyEquivalence(t *testing.T) {
	for name, ks := range prunedSets(t) {
		const budget = 12
		full, err := GreedyMultiPoint(ks, budget, WithFullScan())
		if err != nil {
			t.Fatalf("%s: full greedy: %v", name, err)
		}
		pruned, err := GreedyMultiPoint(ks, budget)
		if err != nil {
			t.Fatalf("%s: pruned greedy: %v", name, err)
		}
		if !reflect.DeepEqual(pruned.Poison, full.Poison) {
			t.Fatalf("%s: poison sequences diverged\n got: %v\nwant: %v", name, pruned.Poison, full.Poison)
		}
		if !reflect.DeepEqual(pruned.Trajectory, full.Trajectory) {
			t.Fatalf("%s: loss trajectories diverged\n got: %v\nwant: %v", name, pruned.Trajectory, full.Trajectory)
		}
		if pruned.CleanLoss != full.CleanLoss || pruned.Stopped != full.Stopped || pruned.Truncated != full.Truncated {
			t.Fatalf("%s: scalar fields diverged\n got: %+v\nwant: %+v", name, pruned, full)
		}
		if pruned.Candidates > full.Candidates || (prunesHard[name] && pruned.Candidates == full.Candidates) {
			t.Fatalf("%s: pruned spent %d candidates, full scan %d — no savings", name, pruned.Candidates, full.Candidates)
		}
	}
}

// TestPrunedScanWorkerEquivalence pins the determinism contract on sets
// large enough to prune: the entire result — including the BlocksVisited /
// BlocksTotal / Candidates accounting — must be identical for every worker
// count, because the bound sweep and threshold pass run sequentially and
// only survivor evaluation fans out.
func TestPrunedScanWorkerEquivalence(t *testing.T) {
	for name, ks := range prunedSets(t) {
		want, err := OptimalSinglePoint(ks, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantG, err := GreedyMultiPoint(ks, 8, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range workerCounts() {
			got, err := OptimalSinglePoint(ks, WithWorkers(w))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if got != want {
				t.Fatalf("%s workers=%d: single-point result diverged\n got: %+v\nwant: %+v", name, w, got, want)
			}
			gotG, err := GreedyMultiPoint(ks, 8, WithWorkers(w))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(gotG, wantG) {
				t.Fatalf("%s workers=%d: greedy result diverged\n got: %+v\nwant: %+v", name, w, gotG, wantG)
			}
		}
	}
}

// TestPrunedScanAccounting is the property test of the pruning statistics:
// across random key sets and worker counts, 1 <= visited <= total, the
// candidate count never exceeds the full scan's, and the reported best
// candidate lies inside a visited block — certified by its loss equalling
// the full scan's maximum, which a scan that skipped the winning block
// could not reproduce.
func TestPrunedScanAccounting(t *testing.T) {
	rng := xrand.New(4747)
	for trial := 0; trial < 6; trial++ {
		n := prunedMinGaps + 1 + rng.Intn(3_000)
		ks, err := dataset.Uniform(rng, n, int64(n)*40)
		if err != nil {
			t.Fatal(err)
		}
		full, err := OptimalSinglePoint(ks, WithFullScan())
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			got, err := OptimalSinglePoint(ks, WithWorkers(w))
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			if got.BlocksTotal <= 0 || got.BlocksVisited < 1 || got.BlocksVisited > got.BlocksTotal {
				t.Fatalf("trial %d workers=%d: inconsistent accounting: visited %d of %d",
					trial, w, got.BlocksVisited, got.BlocksTotal)
			}
			wantTotal := (ks.Len() - 1 + prunedLeafGaps - 1) / prunedLeafGaps
			if got.BlocksTotal != wantTotal {
				t.Fatalf("trial %d workers=%d: BlocksTotal = %d, want %d blocks of %d gaps",
					trial, w, got.BlocksTotal, wantTotal, prunedLeafGaps)
			}
			if got.Candidates > full.Candidates || got.Candidates <= 0 {
				t.Fatalf("trial %d workers=%d: Candidates = %d outside (0, full=%d]",
					trial, w, got.Candidates, full.Candidates)
			}
			if got.Key != full.Key || got.PoisonedLoss != full.PoisonedLoss {
				t.Fatalf("trial %d workers=%d: best candidate not the full-scan maximum: %+v vs %+v",
					trial, w, got, full)
			}
		}
	}
}

// TestPrunedScanSmallSetFallsBack: below prunedMinGaps the pruned path must
// defer to the plain scan — zero block accounting, classic candidate count.
func TestPrunedScanSmallSetFallsBack(t *testing.T) {
	ks, err := dataset.Uniform(xrand.New(31), prunedMinGaps/2, int64(prunedMinGaps)*20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimalSinglePoint(ks)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksTotal != 0 || res.BlocksVisited != 0 {
		t.Fatalf("small set took the pruned path: %+v", res)
	}
	full, err := OptimalSinglePoint(ks, WithFullScan())
	if err != nil {
		t.Fatal(err)
	}
	if res != full {
		t.Fatalf("small-set scan differs from full scan: %+v vs %+v", res, full)
	}
}
