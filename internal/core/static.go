package core

// The static (one-shot) attack as a defense-aware SCENARIO: the paper's
// Algorithm 1 computed once against the initial key set, drip-fed into a
// live dynamic index through the defense plane, with an honest write stream
// interleaved. GreedyMultiPoint is the raw oracle; StaticAttack is what the
// Pareto sweep drives, because a defense only means something on a write
// path — a detector chain, rate limiter, or robust fitter all act between
// the attacker's computed keys and the victim's model.

import (
	"fmt"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/workload"
)

// StaticOptions parameterizes the static poisoning scenario.
type StaticOptions struct {
	// Budget is the attacker's one-shot poison budget (>= 0), computed by
	// Algorithm 1 against the initial key set.
	Budget int
	// HonestWrites is the number of honest uniform writes interleaved with
	// the poison drip (>= 0).
	HonestWrites int
	// Domain is the write-key universe size; 0 defaults to twice the
	// initial key span.
	Domain int64
	// Seed drives the honest write stream.
	Seed uint64
	// Defense arms the defense plane on victim and clean twin alike; the
	// zero value changes nothing (see DefenseSpec). The static-native
	// mechanisms are the detector chain (Algorithm 1 piles poison into
	// dense regions the density and dup-mass screens price up) and the
	// robust fitter (a trimmed or Theil–Sen retrain simply refuses to chase
	// the poison mass).
	Defense DefenseSpec
}

func (o StaticOptions) domain(initial keys.Set) int64 {
	if o.Domain > 0 {
		return o.Domain
	}
	return 2 * (initial.Max() + 1)
}

func (o StaticOptions) validate() error {
	if o.Budget < 0 {
		return fmt.Errorf("core: negative static budget %d", o.Budget)
	}
	if o.HonestWrites < 0 {
		return fmt.Errorf("core: negative honest write count %d", o.HonestWrites)
	}
	return nil
}

// StaticResult reports the static poisoning scenario.
type StaticResult struct {
	// Poison is the set of accepted poison keys; Injected its size.
	Poison   keys.Set
	Injected int
	// Displaced counts honest writes the victim rejected because poison
	// occupied the slot.
	Displaced int
	// Model-vs-content loss after the final retrain, and the victim/clean
	// ratio — the headline damage number.
	CleanLoss, PoisonedLoss float64
	RatioLoss               float64
	// Mean lookup probes over the initial keys on both indexes.
	CleanProbes, PoisonedProbes float64
	ProbeRatio                  float64
	// Eval reports which probe-evaluation path produced the columns above
	// (sorted-batch kernel by default, per-key under WithPerKeyEval).
	Eval EvalStats
	// Defense is the defense-plane accounting (zero when no defense armed).
	Defense DefenseReport
}

// StaticAttack mounts the one-shot poisoning scenario: Algorithm 1's keys
// against the INITIAL content, drip-fed evenly through HonestWrites honest
// uniform writes into a dynamic index (victim), with a clean counterfactual
// absorbing the identical honest stream. Both indexes retrain once at the
// end (the static maintenance cycle), then loss and probe columns are
// measured. The defense plane — detector chain, rate limiter, robust
// fitter — sits on both write paths exactly as in the online scenarios.
//
// Determinism contract: the honest stream is a pure function of
// (initial, Domain, Seed); WithWorkers parallelism reaches only the
// oracle's candidate scans and the probe evaluation, both folding in index
// order, so any worker count produces identical bytes
// (TestStaticWorkerEquivalence). WithCancellation aborts via ctx.Err().
func StaticAttack(initial keys.Set, opts StaticOptions, execOpts ...Option) (StaticResult, error) {
	if err := opts.validate(); err != nil {
		return StaticResult{}, err
	}
	if initial.Len() < 2 {
		return StaticResult{}, ErrTooFew
	}
	fit := opts.Defense.fitFunc()
	victim, err := dynamic.NewWithFit(initial, dynamic.ManualPolicy(), fit)
	if err != nil {
		return StaticResult{}, err
	}
	clean, err := dynamic.NewWithFit(initial, dynamic.ManualPolicy(), fit)
	if err != nil {
		return StaticResult{}, err
	}
	gen, err := workload.NewGenerator(workload.NewUniform(0), initial, opts.domain(initial), opts.Seed)
	if err != nil {
		return StaticResult{}, err
	}
	gen.SetSources(opts.Defense.Sources)
	ex := newExec(execOpts)

	var res StaticResult
	res.Defense.Enabled = opts.Defense.Enabled()
	vBack, vGuard := opts.Defense.wrap(victim)
	cBack, cGuard := opts.Defense.wrap(clean)
	vArm := opts.Defense.newArm(vBack, vGuard, &res.Defense, false)
	cArm := opts.Defense.newArm(cBack, cGuard, &res.Defense, true)
	atkSrc := opts.Defense.attackerSource()

	var poison []int64
	if opts.Budget > 0 {
		g, err := GreedyMultiPoint(initial, opts.Budget, execOpts...)
		if err != nil {
			return StaticResult{}, err
		}
		poison = g.Poison
	}

	// Drip the budget evenly through the honest stream, as in the churn and
	// cascade scenarios; leftovers land after the stream ends.
	var accepted []int64
	opClock := 0
	inject := func() {
		opClock++
		if ok, _ := vArm.insert(poison[0], atkSrc, opClock, true); ok {
			accepted = append(accepted, poison[0])
			res.Injected++
		}
		poison = poison[1:]
	}
	for op := 0; op < opts.HonestWrites; op++ {
		for len(poison) > 0 && res.Injected*opts.HonestWrites <= op*opts.Budget {
			inject()
		}
		if err := ex.ctx.Err(); err != nil {
			return StaticResult{}, err
		}
		opClock++
		o := gen.Next()
		cleanOK, _ := cArm.insert(o.Key, o.Source, opClock, false)
		victimOK, _ := vArm.insert(o.Key, o.Source, opClock, false)
		if cleanOK && !victimOK {
			res.Displaced++
		}
	}
	for len(poison) > 0 {
		inject()
	}

	vBack.Retrain()
	cBack.Retrain()

	vStats, cStats := vBack.Stats(), cBack.Stats()
	res.CleanLoss = cStats.ContentLoss
	res.PoisonedLoss = vStats.ContentLoss
	res.RatioLoss = SafeRatio(res.PoisonedLoss, res.CleanLoss)

	// keys.Set stores its keys sorted and duplicate-free, so the initial
	// workload already satisfies the batch kernel's precondition — no copy,
	// no sort (DESIGN.md §12).
	legit := initial.Keys()
	n := len(legit)
	pe := newProbeEval()
	total, err := pe.measurePair(ex, endpointGrainFloor, legit, cBack, vBack)
	if err != nil {
		return StaticResult{}, err
	}
	res.Eval = pe.stats
	if n > 0 {
		res.CleanProbes = float64(total.clean) / float64(n)
		res.PoisonedProbes = float64(total.victim) / float64(n)
		res.ProbeRatio = SafeRatio(res.PoisonedProbes, res.CleanProbes)
	}
	ps, err := keys.NewStrict(accepted)
	if err != nil {
		return StaticResult{}, fmt.Errorf("core: static poison keys collide: %w", err)
	}
	res.Poison = ps
	return res, nil
}
